//===- tests/cache_test.cpp - cache/ unit tests ---------------------------===//

#include "cache/Cache.h"
#include "cache/Directory.h"
#include "cache/Mshr.h"
#include "cache/Scratchpad.h"

#include <gtest/gtest.h>

using namespace hetsim;

namespace {
/// A small cache for focused tests: 4 sets x 2 ways x 64B = 512B.
CacheConfig tinyCache(ReplacementKind Replacement = ReplacementKind::Lru) {
  CacheConfig Config;
  Config.Name = "tiny";
  Config.SizeBytes = 512;
  Config.Ways = 2;
  Config.HitLatency = 2;
  Config.Replacement = Replacement;
  return Config;
}

/// Address mapping to set S with tag T for the tiny cache (4 sets, 64B
/// lines): addr = T * 256 + S * 64.
Addr tinyAddr(unsigned Set, unsigned Tag) {
  return Addr(Tag) * 256 + Addr(Set) * 64;
}
} // namespace

//===----------------------------------------------------------------------===//
// Geometry.
//===----------------------------------------------------------------------===//

TEST(CacheConfig, TableTwoPresets) {
  EXPECT_EQ(CacheConfig::cpuL1D().SizeBytes, 32u * 1024);
  EXPECT_EQ(CacheConfig::cpuL1D().Ways, 8u);
  EXPECT_EQ(CacheConfig::cpuL1D().HitLatency, 2u);
  EXPECT_EQ(CacheConfig::cpuL2().SizeBytes, 256u * 1024);
  EXPECT_EQ(CacheConfig::cpuL2().HitLatency, 8u);
  EXPECT_EQ(CacheConfig::sharedL3().SizeBytes, 8u * 1024 * 1024);
  EXPECT_EQ(CacheConfig::sharedL3().Ways, 32u);
  EXPECT_EQ(CacheConfig::sharedL3().HitLatency, 20u);
  EXPECT_EQ(CacheConfig::gpuL1I().SizeBytes, 4u * 1024);
}

TEST(CacheConfig, Validation) {
  EXPECT_TRUE(tinyCache().isValid());
  CacheConfig Bad = tinyCache();
  Bad.SizeBytes = 500; // Not ways*lines multiple.
  EXPECT_FALSE(Bad.isValid());
}

TEST(CacheConfig, NumSets) {
  EXPECT_EQ(tinyCache().numSets(), 4u);
  EXPECT_EQ(CacheConfig::sharedL3().numSets(), 4096u);
}

//===----------------------------------------------------------------------===//
// Basic hit/miss and LRU.
//===----------------------------------------------------------------------===//

TEST(Cache, MissThenHit) {
  Cache C(tinyCache());
  EXPECT_FALSE(C.access(tinyAddr(0, 1), false).Hit);
  EXPECT_TRUE(C.access(tinyAddr(0, 1), false).Hit);
  EXPECT_EQ(C.stats().Accesses, 2u);
  EXPECT_EQ(C.stats().Hits, 1u);
  EXPECT_EQ(C.stats().Misses, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  Cache C(tinyCache());
  C.access(tinyAddr(0, 1), false);
  EXPECT_TRUE(C.access(tinyAddr(0, 1) + 32, false).Hit);
}

TEST(Cache, LruEviction) {
  Cache C(tinyCache());
  C.access(tinyAddr(2, 1), false); // Fill way 0.
  C.access(tinyAddr(2, 2), false); // Fill way 1.
  C.access(tinyAddr(2, 1), false); // Touch tag 1 (tag 2 is now LRU).
  C.access(tinyAddr(2, 3), false); // Evicts tag 2.
  EXPECT_TRUE(C.probe(tinyAddr(2, 1)));
  EXPECT_FALSE(C.probe(tinyAddr(2, 2)));
  EXPECT_TRUE(C.probe(tinyAddr(2, 3)));
}

TEST(Cache, SetsAreIndependent) {
  Cache C(tinyCache());
  C.access(tinyAddr(0, 1), false);
  C.access(tinyAddr(1, 1), false);
  C.access(tinyAddr(2, 1), false);
  EXPECT_EQ(C.stats().Evictions, 0u);
  EXPECT_EQ(C.residentLines(), 3u);
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache C(tinyCache());
  C.access(tinyAddr(1, 1), /*IsWrite=*/true);
  C.access(tinyAddr(1, 2), false);
  CacheAccessResult R = C.access(tinyAddr(1, 3), false); // Evicts dirty tag 1.
  EXPECT_TRUE(R.WroteBack);
  EXPECT_EQ(R.VictimAddr, tinyAddr(1, 1));
  EXPECT_EQ(C.stats().Writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache C(tinyCache());
  C.access(tinyAddr(1, 1), false);
  C.access(tinyAddr(1, 2), false);
  CacheAccessResult R = C.access(tinyAddr(1, 3), false);
  EXPECT_FALSE(R.WroteBack);
  EXPECT_EQ(C.stats().Evictions, 1u);
}

TEST(Cache, WriteMarksDirtyOnHit) {
  Cache C(tinyCache());
  C.access(tinyAddr(3, 1), false);          // Clean fill.
  C.access(tinyAddr(3, 1), /*IsWrite=*/true); // Dirty on hit.
  C.access(tinyAddr(3, 2), false);
  CacheAccessResult R = C.access(tinyAddr(3, 4), false); // Evict tag 1.
  EXPECT_TRUE(R.WroteBack);
}

TEST(Cache, InvalidateReturnsDirty) {
  Cache C(tinyCache());
  C.access(tinyAddr(0, 1), true);
  EXPECT_TRUE(C.invalidate(tinyAddr(0, 1)));
  EXPECT_FALSE(C.probe(tinyAddr(0, 1)));
  EXPECT_FALSE(C.invalidate(tinyAddr(0, 1))); // Already gone.
}

TEST(Cache, DowngradeToShared) {
  Cache C(tinyCache());
  C.access(tinyAddr(0, 1), true);
  EXPECT_EQ(C.lineState(tinyAddr(0, 1)), CohState::Modified);
  EXPECT_TRUE(C.downgradeToShared(tinyAddr(0, 1)));
  EXPECT_EQ(C.lineState(tinyAddr(0, 1)), CohState::Shared);
  EXPECT_FALSE(C.downgradeToShared(tinyAddr(0, 1))); // Now clean.
}

TEST(Cache, FlushAllWritesBackDirtyLines) {
  Cache C(tinyCache());
  C.access(tinyAddr(0, 1), true);
  C.access(tinyAddr(1, 1), false);
  C.access(tinyAddr(2, 1), true);
  std::vector<Addr> Written;
  C.flushAll([&Written](Addr A) { Written.push_back(A); });
  EXPECT_EQ(Written.size(), 2u);
  EXPECT_EQ(C.residentLines(), 0u);
}

TEST(Cache, CoherenceStateTransitions) {
  Cache C(tinyCache());
  C.access(tinyAddr(0, 1), false);
  EXPECT_EQ(C.lineState(tinyAddr(0, 1)), CohState::Exclusive);
  C.access(tinyAddr(0, 1), true);
  EXPECT_EQ(C.lineState(tinyAddr(0, 1)), CohState::Modified);
  C.setLineState(tinyAddr(0, 1), CohState::Shared);
  EXPECT_EQ(C.lineState(tinyAddr(0, 1)), CohState::Shared);
  EXPECT_EQ(C.lineState(tinyAddr(0, 7)), CohState::Invalid); // Absent.
}

//===----------------------------------------------------------------------===//
// Hybrid locality replacement (Section II-B5).
//===----------------------------------------------------------------------===//

TEST(CacheHybrid, ImplicitCannotEvictExplicit) {
  Cache C(tinyCache(ReplacementKind::HybridLru));
  // Fill way 0 explicit, way 1 implicit.
  C.access(tinyAddr(0, 1), false, /*MarkExplicit=*/true);
  C.access(tinyAddr(0, 2), false, /*MarkExplicit=*/false);
  // An implicit fill must evict the implicit line (tag 2) even though the
  // explicit line (tag 1) is older (LRU).
  C.access(tinyAddr(0, 3), false, /*MarkExplicit=*/false);
  EXPECT_TRUE(C.probe(tinyAddr(0, 1)));
  EXPECT_FALSE(C.probe(tinyAddr(0, 2)));
  EXPECT_TRUE(C.probe(tinyAddr(0, 3)));
}

TEST(CacheHybrid, ExplicitCapLeavesImplicitRoom) {
  // MaxExplicitWays defaults to Ways-1 = 1: a second explicit fill in the
  // same set must replace the first explicit line, not the implicit one.
  Cache C(tinyCache(ReplacementKind::HybridLru));
  C.access(tinyAddr(0, 1), false, true);  // Explicit.
  C.access(tinyAddr(0, 2), false, false); // Implicit.
  C.access(tinyAddr(0, 3), false, true);  // Explicit; evicts tag 1.
  EXPECT_FALSE(C.probe(tinyAddr(0, 1)));
  EXPECT_TRUE(C.probe(tinyAddr(0, 2)));
  EXPECT_TRUE(C.probe(tinyAddr(0, 3)));
  EXPECT_EQ(C.residentExplicitLines(), 1u);
}

TEST(CacheHybrid, BypassWhenAllWaysExplicit) {
  CacheConfig Config = tinyCache(ReplacementKind::HybridLru);
  Config.MaxExplicitWays = 2; // Allow explicit to fill the whole set.
  Cache C(Config);
  C.access(tinyAddr(0, 1), false, true);
  C.access(tinyAddr(0, 2), false, true);
  // Implicit fill finds no candidate way: the access bypasses the cache.
  CacheAccessResult R = C.access(tinyAddr(0, 3), false, false);
  EXPECT_FALSE(R.Hit);
  EXPECT_TRUE(R.BypassedFill);
  EXPECT_FALSE(C.probe(tinyAddr(0, 3)));
  EXPECT_EQ(C.stats().BypassedFills, 1u);
}

TEST(CacheHybrid, HitMayPromoteToExplicit) {
  Cache C(tinyCache(ReplacementKind::HybridLru));
  C.access(tinyAddr(1, 1), false, false);
  C.access(tinyAddr(1, 1), false, true); // Promote on hit.
  EXPECT_EQ(C.residentExplicitLines(), 1u);
}

TEST(CacheHybrid, PlainLruIgnoresExplicitBit) {
  Cache C(tinyCache(ReplacementKind::Lru));
  C.access(tinyAddr(0, 1), false, true);  // Explicit, LRU.
  C.access(tinyAddr(0, 2), false, false);
  C.access(tinyAddr(0, 3), false, false); // Evicts tag 1 despite explicit.
  EXPECT_FALSE(C.probe(tinyAddr(0, 1)));
}

TEST(CacheHybrid, RandomPolicyStaysInSet) {
  Cache C(tinyCache(ReplacementKind::Random));
  for (unsigned Tag = 1; Tag <= 20; ++Tag)
    C.access(tinyAddr(0, Tag), false);
  EXPECT_LE(C.residentLines(), 2u + 0u); // Only set 0 used: <= 2 lines.
  EXPECT_EQ(C.stats().Misses, 20u);
}

//===----------------------------------------------------------------------===//
// MSHR.
//===----------------------------------------------------------------------===//

TEST(Mshr, MergesSameLine) {
  MshrFile Mshr(4);
  MshrDecision First = Mshr.onMiss(0x1000, 10, 110);
  EXPECT_FALSE(First.Merged);
  EXPECT_EQ(First.ReadyCycle, 110u);
  MshrDecision Second = Mshr.onMiss(0x1000, 20, 140);
  EXPECT_TRUE(Second.Merged);
  EXPECT_EQ(Second.ReadyCycle, 110u); // Joins the in-flight fill.
  EXPECT_EQ(Mshr.mergedCount(), 1u);
}

TEST(Mshr, DistinctLinesAllocate) {
  MshrFile Mshr(4);
  Mshr.onMiss(0x1000, 0, 100);
  Mshr.onMiss(0x2000, 0, 100);
  EXPECT_EQ(Mshr.inFlight(50), 2u);
}

TEST(Mshr, EntriesExpire) {
  MshrFile Mshr(4);
  Mshr.onMiss(0x1000, 0, 100);
  EXPECT_EQ(Mshr.inFlight(100), 0u);
  MshrDecision Again = Mshr.onMiss(0x1000, 200, 300);
  EXPECT_FALSE(Again.Merged); // Old entry expired; new fill.
}

TEST(Mshr, FullFileStalls) {
  MshrFile Mshr(2);
  Mshr.onMiss(0x1000, 0, 100);
  Mshr.onMiss(0x2000, 0, 150);
  MshrDecision Blocked = Mshr.onMiss(0x3000, 10, 210);
  EXPECT_GT(Blocked.StallCycles, 0u);
  EXPECT_EQ(Blocked.StallCycles, 90u); // Waits for the 100-cycle fill.
  EXPECT_EQ(Mshr.fullStallCount(), 1u);
}

TEST(Mshr, MergeFloorsAtAccruedLatency) {
  // A merging access that already paid its own pre-miss latency (TLB
  // walk, page fault) may not complete before that latency: MinReady
  // floors the merged ReadyCycle.
  MshrFile Mshr(4);
  Mshr.onMiss(0x1000, 0, 100);
  MshrDecision Cheap = Mshr.onMiss(0x1000, 10, 500, /*MinReady=*/60);
  EXPECT_TRUE(Cheap.Merged);
  EXPECT_EQ(Cheap.ReadyCycle, 100u); // Fill still dominates.
  MshrDecision Expensive = Mshr.onMiss(0x1000, 20, 500, /*MinReady=*/42020);
  EXPECT_TRUE(Expensive.Merged);
  EXPECT_EQ(Expensive.ReadyCycle, 42020u); // Accrued latency dominates.
}

TEST(Mshr, ClearResets) {
  MshrFile Mshr(2);
  Mshr.onMiss(0x1000, 0, 100);
  Mshr.clear();
  EXPECT_EQ(Mshr.inFlight(0), 0u);
  EXPECT_EQ(Mshr.mergedCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Scratchpad.
//===----------------------------------------------------------------------===//

TEST(Scratchpad, FixedLatencyAndCounters) {
  Scratchpad Smem(16 * 1024, 2);
  EXPECT_EQ(Smem.access(0, 4, false), 2u);
  EXPECT_EQ(Smem.access(16 * 1024 - 4, 4, true), 2u);
  EXPECT_EQ(Smem.readCount(), 1u);
  EXPECT_EQ(Smem.writeCount(), 1u);
}

TEST(ScratchpadDeath, OutOfBoundsAborts) {
  Scratchpad Smem(1024, 2);
  EXPECT_DEATH(Smem.access(1024, 4, false), "out of bounds");
}

TEST(Scratchpad, WordStrideIsConflictFree) {
  Scratchpad Smem(16 * 1024, 2, 16);
  // 8 lanes, 4B stride: each lane a different bank.
  EXPECT_EQ(Smem.conflictDegree(0, 8, 4), 1u);
  EXPECT_EQ(Smem.warpAccess(0, 4, 8, 4, false), 2u);
  EXPECT_EQ(Smem.bankConflictCount(), 0u);
}

TEST(Scratchpad, BankStrideFullyConflicts) {
  Scratchpad Smem(16 * 1024, 2, 16);
  // Stride of 64B = 16 words: every lane lands in bank 0.
  EXPECT_EQ(Smem.conflictDegree(0, 8, 64), 8u);
  EXPECT_EQ(Smem.warpAccess(0, 4, 8, 64, false), 16u); // 2 * 8-way.
  EXPECT_EQ(Smem.bankConflictCount(), 7u);
}

TEST(Scratchpad, TwoWayConflict) {
  Scratchpad Smem(16 * 1024, 2, 16);
  // Stride of 32B = 8 words: lanes pair up per bank (8 lanes, 8 banks
  // hit twice... lanes at words 0,8,16,24,...: banks 0,8,0,8 -> 4-way).
  EXPECT_EQ(Smem.conflictDegree(0, 8, 32), 4u);
}

TEST(Scratchpad, BroadcastSameWordIsFree) {
  Scratchpad Smem(16 * 1024, 2, 16);
  // Stride 0: all lanes read the same word (broadcast).
  EXPECT_EQ(Smem.conflictDegree(0, 8, 0), 1u);
  EXPECT_EQ(Smem.warpAccess(128, 4, 8, 0, false), 2u);
}

TEST(ScratchpadDeath, WarpOutOfBoundsAborts) {
  Scratchpad Smem(1024, 2, 16);
  EXPECT_DEATH(Smem.warpAccess(1000, 4, 8, 4, false), "out of bounds");
}

//===----------------------------------------------------------------------===//
// MESI directory.
//===----------------------------------------------------------------------===//

TEST(Directory, FirstReadIsExclusive) {
  Directory Dir;
  CoherenceAction A = Dir.onAccess(PuKind::Cpu, 0x40, false);
  EXPECT_FALSE(A.InvalidateRemote);
  EXPECT_FALSE(A.FetchFromRemote);
  EXPECT_EQ(Dir.state(0x40), DirState::ExclusiveCpu);
}

TEST(Directory, ReadSharingCleanLine) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, false);
  CoherenceAction A = Dir.onAccess(PuKind::Gpu, 0x40, false);
  EXPECT_FALSE(A.FetchFromRemote); // Clean: memory supplies data.
  EXPECT_EQ(Dir.state(0x40), DirState::SharedBoth);
  EXPECT_TRUE(Dir.isSharer(PuKind::Cpu, 0x40));
  EXPECT_TRUE(Dir.isSharer(PuKind::Gpu, 0x40));
}

TEST(Directory, ReadOfRemoteDirtyFetches) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, true); // CPU holds Modified.
  CoherenceAction A = Dir.onAccess(PuKind::Gpu, 0x40, false);
  EXPECT_TRUE(A.FetchFromRemote);
  EXPECT_FALSE(A.InvalidateRemote);
  EXPECT_GT(A.Messages, 0u);
  EXPECT_EQ(Dir.state(0x40), DirState::SharedBoth);
}

TEST(Directory, WriteInvalidatesSharer) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, false);
  Dir.onAccess(PuKind::Gpu, 0x40, false); // SharedBoth.
  CoherenceAction A = Dir.onAccess(PuKind::Cpu, 0x40, true);
  EXPECT_TRUE(A.InvalidateRemote);
  EXPECT_EQ(Dir.state(0x40), DirState::ExclusiveCpu);
  EXPECT_FALSE(Dir.isSharer(PuKind::Gpu, 0x40));
}

TEST(Directory, WriteToRemoteDirtyFetchesAndInvalidates) {
  Directory Dir;
  Dir.onAccess(PuKind::Gpu, 0x40, true); // GPU Modified.
  CoherenceAction A = Dir.onAccess(PuKind::Cpu, 0x40, true);
  EXPECT_TRUE(A.FetchFromRemote);
  EXPECT_TRUE(A.InvalidateRemote);
  EXPECT_EQ(Dir.state(0x40), DirState::ExclusiveCpu);
}

TEST(Directory, LocalUpgradeIsSilent) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, false);
  CoherenceAction A = Dir.onAccess(PuKind::Cpu, 0x40, true);
  EXPECT_FALSE(A.InvalidateRemote);
  EXPECT_FALSE(A.FetchFromRemote);
  EXPECT_EQ(A.Messages, 0u);
}

TEST(Directory, EvictionRemovesSharer) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, false);
  Dir.onAccess(PuKind::Gpu, 0x40, false);
  Dir.onEviction(PuKind::Cpu, 0x40);
  EXPECT_EQ(Dir.state(0x40), DirState::ExclusiveGpu);
  Dir.onEviction(PuKind::Gpu, 0x40);
  EXPECT_EQ(Dir.state(0x40), DirState::Uncached);
  EXPECT_EQ(Dir.trackedLines(), 0u);
}

TEST(Directory, StaleEvictionIgnored) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, false);
  Dir.onEviction(PuKind::Gpu, 0x40); // GPU never had it.
  EXPECT_EQ(Dir.state(0x40), DirState::ExclusiveCpu);
}

TEST(Directory, StatsAccumulate) {
  Directory Dir;
  Dir.onAccess(PuKind::Cpu, 0x40, true);
  Dir.onAccess(PuKind::Gpu, 0x40, true);
  EXPECT_EQ(Dir.stats().Lookups, 2u);
  EXPECT_EQ(Dir.stats().RemoteInvalidations, 1u);
  EXPECT_EQ(Dir.stats().RemoteFetches, 1u);
  EXPECT_GT(Dir.stats().Messages, 0u);
}
