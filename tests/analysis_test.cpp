//===- tests/analysis_test.cpp - Static memory-model linter ---------------===//
//
// Injected-bug fixtures: each mutation of a shipped lowering must produce
// exactly the expected diagnostic at the expected step, and the whole
// shipped design space must lint clean with the dynamic ConsistencyChecker
// agreeing (the differential oracle).
//
//===----------------------------------------------------------------------===//

#include "analysis/SweepLinter.h"
#include "core/ConsistencyValidation.h"
#include "core/HeteroSimulator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hetsim;

namespace {

size_t firstStepOfKind(const LoweredProgram &Program, ExecKind Kind) {
  for (size_t I = 0; I != Program.Steps.size(); ++I)
    if (Program.Steps[I].Kind == Kind)
      return I;
  ADD_FAILURE() << "no step of kind " << execKindName(Kind);
  return 0;
}

void eraseStep(LoweredProgram &Program, size_t Index) {
  Program.Steps.erase(Program.Steps.begin() + long(Index));
}

} // namespace

//===----------------------------------------------------------------------===//
// Happens-before graph
//===----------------------------------------------------------------------===//

TEST(HbGraph, DriverOrderReachesEnd) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  HbGraph Graph = HbGraph::build(Program, Config);
  EXPECT_TRUE(Graph.reaches(Graph.startNode(), Graph.endNode()));
  for (size_t I = 0; I != Program.Steps.size(); ++I)
    EXPECT_TRUE(Graph.reaches(Graph.stepNode(I), Graph.endNode()));
  EXPECT_FALSE(Graph.reaches(Graph.endNode(), Graph.startNode()));
  EXPECT_TRUE(Graph.undrainedTransfers().empty());
}

TEST(HbGraph, AsyncTransfersGetCompletionNodes) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::KMeans, Config);
  HbGraph Graph = HbGraph::build(Program, Config);
  unsigned Completions = 0;
  for (size_t I = 0; I != Program.Steps.size(); ++I)
    if (Graph.dmaNode(I) != HbGraph::npos)
      ++Completions;
  EXPECT_EQ(Completions, Program.countSteps(ExecKind::Transfer));
  // The terminal DmaWait drains everything.
  EXPECT_TRUE(Graph.undrainedTransfers().empty());
}

TEST(HbGraph, DotRenderingNamesEverything) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  HbGraph Graph = HbGraph::build(Program, Config);
  std::string Dot = Graph.renderDot(Program);
  EXPECT_NE(Dot.find("digraph hb"), std::string::npos);
  EXPECT_NE(Dot.find("dma-drain"), std::string::npos);
  EXPECT_NE(Dot.find("parallel"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Injected-bug fixtures
//===----------------------------------------------------------------------===//

TEST(LintFixture, DroppedOwnershipTransfer) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t Release = firstStepOfKind(Program, ExecKind::OwnershipToGpu);
  eraseStep(Program, Release);

  LintReport Report = lintProgram(Program, Config);
  ASSERT_TRUE(Report.hasKind(LintKind::MissingOwnership));
  const LintDiagnostic *D = Report.findKind(LintKind::MissingOwnership);
  EXPECT_EQ(D->Severity, LintSeverity::Error);
  EXPECT_EQ(Program.Steps[D->StepIndex].Kind, ExecKind::ParallelCompute);
  EXPECT_EQ(D->StepIndex,
            firstStepOfKind(Program, ExecKind::ParallelCompute));
  // Note the dynamic checker does NOT catch this one: the kernel
  // launch/join still orders every access, so the replay is race-free.
  // The ownership discipline is a static-only rule — exactly why the
  // linter exists alongside the ConsistencyChecker.
  EXPECT_TRUE(validateRaceFree(Program, ConsistencyModel::Weak));
}

TEST(LintFixture, RemovedDmaWait) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::KMeans, Config);
  ASSERT_EQ(Program.Steps.back().Kind, ExecKind::DmaWait);
  size_t LastTransfer = Program.Steps.size();
  for (size_t I = Program.Steps.size(); I-- != 0;)
    if (Program.Steps[I].Kind == ExecKind::Transfer) {
      LastTransfer = I;
      break;
    }
  eraseStep(Program, Program.Steps.size() - 1);

  LintReport Report = lintProgram(Program, Config);
  ASSERT_TRUE(Report.hasKind(LintKind::MissingDmaWait));
  const LintDiagnostic *D = Report.findKind(LintKind::MissingDmaWait);
  EXPECT_EQ(D->Severity, LintSeverity::Error);
  // Anchored at the copy nothing drains: the final device-to-host
  // transfer of the last round.
  EXPECT_EQ(D->StepIndex, LastTransfer);
  EXPECT_EQ(Report.Diags.size(), 1u);
}

TEST(LintFixture, DroppedInitialTransfer) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t First = firstStepOfKind(Program, ExecKind::Transfer);
  ASSERT_EQ(Program.Steps[First].Dir, TransferDir::HostToDevice);
  eraseStep(Program, First);

  LintReport Report = lintProgram(Program, Config);
  ASSERT_TRUE(Report.hasKind(LintKind::UseBeforeTransfer));
  const LintDiagnostic *D = Report.findKind(LintKind::UseBeforeTransfer);
  EXPECT_EQ(D->Severity, LintSeverity::Error);
  EXPECT_EQ(Program.Steps[D->StepIndex].Kind, ExecKind::ParallelCompute);
}

TEST(LintFixture, ReorderedTransferOut) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t Par = firstStepOfKind(Program, ExecKind::ParallelCompute);
  size_t Out = Par + 1;
  ASSERT_EQ(Program.Steps[Out].Kind, ExecKind::Transfer);
  ASSERT_EQ(Program.Steps[Out].Dir, TransferDir::DeviceToHost);
  std::swap(Program.Steps[Par], Program.Steps[Out]);

  LintReport Report = lintProgram(Program, Config);
  // Moved before the round, the copy is dead (nothing to read back yet)
  // and the host later merges results that never came back.
  ASSERT_TRUE(Report.hasKind(LintKind::RedundantTransfer));
  EXPECT_EQ(Report.findKind(LintKind::RedundantTransfer)->StepIndex, Par);
  ASSERT_TRUE(Report.hasKind(LintKind::StaleReadback));
  // One StaleReadback anchors at the serial merge that reads results
  // never copied back (a second, end-anchored one reports the results
  // still stranded on the device when the program exits).
  bool AtSerial = false;
  for (const LintDiagnostic &Diag : Report.Diags)
    if (Diag.Kind == LintKind::StaleReadback &&
        Program.Steps[Diag.StepIndex].Kind == ExecKind::SerialCompute) {
      AtSerial = true;
      EXPECT_EQ(Diag.Severity, LintSeverity::Error);
    }
  EXPECT_TRUE(AtSerial);
}

TEST(LintFixture, DuplicatedTransfer) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t First = firstStepOfKind(Program, ExecKind::Transfer);
  Program.Steps.insert(Program.Steps.begin() + long(First),
                       Program.Steps[First]);

  LintReport Report = lintProgram(Program, Config);
  EXPECT_EQ(Report.errorCount(), 0u);
  ASSERT_TRUE(Report.hasKind(LintKind::RedundantTransfer));
  EXPECT_EQ(Report.findKind(LintKind::RedundantTransfer)->StepIndex,
            First + 1);
}

TEST(LintFixture, StaleReadbackAtProgramEnd) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  // Convolution ends on a TransferOut; dropping it leaves the last
  // round's results on the device when the program exits.
  LoweredProgram Program = lowerKernel(KernelId::Convolution, Config);
  ASSERT_EQ(Program.Steps.back().Kind, ExecKind::Transfer);
  ASSERT_EQ(Program.Steps.back().Dir, TransferDir::DeviceToHost);
  eraseStep(Program, Program.Steps.size() - 1);

  LintReport Report = lintProgram(Program, Config);
  ASSERT_TRUE(Report.hasKind(LintKind::StaleReadback));
  const LintDiagnostic *D = Report.findKind(LintKind::StaleReadback);
  EXPECT_EQ(Program.Steps[D->StepIndex].Kind, ExecKind::ParallelCompute);
}

TEST(LintFixture, DoubleOwnershipRelease) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t Release = firstStepOfKind(Program, ExecKind::OwnershipToGpu);
  Program.Steps.insert(Program.Steps.begin() + long(Release),
                       Program.Steps[Release]);

  LintReport Report = lintProgram(Program, Config);
  EXPECT_EQ(Report.errorCount(), 0u);
  ASSERT_TRUE(Report.hasKind(LintKind::DoubleOwnership));
  EXPECT_EQ(Report.findKind(LintKind::DoubleOwnership)->StepIndex,
            Release + 1);
}

TEST(LintFixture, TransferInUnifiedSpaceIsModelMismatch) {
  SystemConfig Config =
      SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  ExecStep Step;
  Step.Kind = ExecKind::Transfer;
  Step.Dir = TransferDir::HostToDevice;
  Step.Objects.push_back(
      kernelDataObjects(KernelId::Reduction).front().Name);
  Program.Steps.insert(Program.Steps.begin(), std::move(Step));

  LintReport Report = lintProgram(Program, Config);
  ASSERT_TRUE(Report.hasKind(LintKind::ModelMismatch));
  EXPECT_EQ(Report.findKind(LintKind::ModelMismatch)->StepIndex, 0u);
}

TEST(LintFixture, MangledStructureIsReported) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  eraseStep(Program, firstStepOfKind(Program, ExecKind::SerialCompute));

  LintReport Report = lintProgram(Program, Config);
  EXPECT_TRUE(Report.hasKind(LintKind::StructureMismatch));
}

//===----------------------------------------------------------------------===//
// Pre-run driver hook
//===----------------------------------------------------------------------===//

using LintHookDeathTest = ::testing::Test;

TEST(LintHookDeathTest, BrokenLoweringAbortsBeforeSimulation) {
  // The missing-wait fixture is invisible to the dynamic checker (a
  // DmaWait emits no events) and to the locality validator, so only the
  // pre-run lint hook can refuse it.
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::KMeans, Config);
  ASSERT_EQ(Program.Steps.back().Kind, ExecKind::DmaWait);
  Program.Steps.pop_back();
  HeteroSimulator Simulator(Config);
  EXPECT_DEATH(Simulator.runLowered(Program), "pre-run lint");
}

//===----------------------------------------------------------------------===//
// Sweep-wide differential oracle
//===----------------------------------------------------------------------===//

TEST(SweepLint, ShippedDesignSpaceIsClean) {
  std::vector<SweepPoint> Points = shippedDesignSpace();
  EXPECT_EQ(Points.size(), size_t(9 * NumKernels));
  SweepLintSummary Summary = lintSweep(Points, 4);
  ASSERT_EQ(Summary.points(), Points.size());
  for (const SweepLintResult &R : Summary.Results) {
    EXPECT_TRUE(R.Report.clean())
        << R.System << " / " << kernelName(R.Kernel) << ": "
        << R.Report.Diags.size() << " diagnostic(s), first: "
        << (R.Report.Diags.empty() ? ""
                                   : R.Report.Diags.front().Message);
    EXPECT_TRUE(R.DynamicallyRaceFree)
        << R.System << " / " << kernelName(R.Kernel);
    EXPECT_FALSE(R.disagreement());
  }
  EXPECT_TRUE(Summary.clean());
  EXPECT_NE(Summary.summary().find("0 static/dynamic disagreements"),
            std::string::npos);
}

TEST(SweepLint, SummaryCountsFixturePoints) {
  // A deliberately empty sweep stays clean and renders.
  SweepLintSummary Empty = lintSweep({}, 1);
  EXPECT_EQ(Empty.points(), 0u);
  EXPECT_TRUE(Empty.clean());
}
