//===- tests/check_test.cpp - Regression-check engine tests ---------------===//
//
// Covers the check subsystem end to end: value parsing, tolerance bands
// at their boundaries, cfg parsing (including malformed input), document
// diffing with perturbed values, metrics-JSON documents, fidelity checks,
// and the bless round-trip through a scratch refs/ tree.
//
//===----------------------------------------------------------------------===//

#include "check/Compare.h"
#include "check/Fidelity.h"
#include "check/Golden.h"
#include "check/ResultDoc.h"
#include "check/Tolerance.h"
#include "common/TextTable.h"
#include "obs/Json.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

using namespace hetsim;

namespace {

//===----------------------------------------------------------------------===//
// Value parsing
//===----------------------------------------------------------------------===//

TEST(ResultValue, ParsesPlainNumbers) {
  ResultValue V = parseResultValue("159.75");
  EXPECT_TRUE(V.IsNumber);
  EXPECT_DOUBLE_EQ(V.Number, 159.75);
  EXPECT_EQ(V.Text, "159.75");
}

TEST(ResultValue, StripsThousandsSeparators) {
  ResultValue V = parseResultValue("8,585,229");
  EXPECT_TRUE(V.IsNumber);
  EXPECT_DOUBLE_EQ(V.Number, 8585229.0);
}

TEST(ResultValue, StripsTrailingPercent) {
  ResultValue V = parseResultValue("30.7%");
  EXPECT_TRUE(V.IsNumber);
  EXPECT_DOUBLE_EQ(V.Number, 30.7);
}

TEST(ResultValue, KeepsTextAsText) {
  ResultValue V = parseResultValue("CPU+GPU");
  EXPECT_FALSE(V.IsNumber);
  EXPECT_EQ(V.Text, "CPU+GPU");
}

//===----------------------------------------------------------------------===//
// Tolerance bands
//===----------------------------------------------------------------------===//

TEST(Tolerance, AbsBoundaryIsInclusive) {
  Tolerance T{0.5, 0.0};
  EXPECT_TRUE(T.accepts(10.0, 10.5));
  EXPECT_TRUE(T.accepts(10.0, 9.5));
  EXPECT_FALSE(T.accepts(10.0, 10.51));
}

TEST(Tolerance, RelBoundaryIsInclusive) {
  Tolerance T{0.0, 0.01};
  EXPECT_TRUE(T.accepts(100.0, 101.0));
  EXPECT_TRUE(T.accepts(100.0, 99.0));
  EXPECT_FALSE(T.accepts(100.0, 101.1));
  // Relative band scales with the reference magnitude.
  EXPECT_TRUE(T.accepts(-200.0, -198.0));
}

TEST(Tolerance, WiderOfAbsAndRelWins) {
  Tolerance T{5.0, 0.001};
  EXPECT_TRUE(T.accepts(10.0, 14.9)); // abs dominates near zero
  Tolerance T2{0.1, 0.1};
  EXPECT_TRUE(T2.accepts(1000.0, 1090.0)); // rel dominates at scale
}

TEST(Tolerance, ZeroBandMeansExact) {
  Tolerance T{0.0, 0.0};
  EXPECT_TRUE(T.accepts(42.0, 42.0));
  EXPECT_FALSE(T.accepts(42.0, 42.0000001));
}

TEST(Tolerance, GlobMatchesStarsAndLiterals) {
  EXPECT_TRUE(globMatch("*", "anything"));
  EXPECT_TRUE(globMatch("norm_*", "norm_to_ideal"));
  EXPECT_TRUE(globMatch("*comms", "# comms"));
  EXPECT_TRUE(globMatch("*_frac", "comm_frac"));
  EXPECT_FALSE(globMatch("norm_*", "comm_us"));
  EXPECT_TRUE(globMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(globMatch("a*b*c", "aXXbYY"));
}

TEST(ToleranceSpec, LastMatchingRuleWins) {
  ToleranceSpec Spec;
  std::string Error;
  ASSERT_TRUE(Spec.parse("default abs=0 rel=0.002\n"
                         "rule * total_us abs=1 rel=0\n"
                         "rule fig5.csv total_us abs=9 rel=0\n",
                         Error))
      << Error;
  EXPECT_DOUBLE_EQ(Spec.lookup("fig5.csv", "total_us").Abs, 9.0);
  EXPECT_DOUBLE_EQ(Spec.lookup("fig6.csv", "total_us").Abs, 1.0);
  EXPECT_DOUBLE_EQ(Spec.lookup("fig6.csv", "comm_us").Rel, 0.002);
}

TEST(ToleranceSpec, RejectsMalformedLinesWithLineNumber) {
  ToleranceSpec Spec;
  std::string Error;
  EXPECT_FALSE(Spec.parse("default abs=0\nrule onlyonearg\n", Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
}

TEST(ToleranceSpec, ShippedConfigParses) {
  // Guards the checked-in policy file itself against grammar rot.
  ToleranceSpec Spec;
  std::string Error;
  ASSERT_TRUE(ToleranceSpec::loadFile(std::string(HETSIM_SOURCE_DIR) +
                                          "/refs/tolerances.cfg",
                                      Spec, Error))
      << Error;
  EXPECT_FALSE(Spec.Rules.empty());
}

//===----------------------------------------------------------------------===//
// Document parsing
//===----------------------------------------------------------------------===//

TEST(ResultDoc, CsvRepairsUnquotedThousandsSplits) {
  // "480,768" was written unquoted, so the raw row has one extra cell.
  ResultDoc Doc = ResultDoc::fromCsv(
      "t.csv", "kernel,bytes,count\nreduction,480,768,2\n");
  ASSERT_EQ(Doc.Rows.size(), 1u);
  const ResultValue *Bytes = Doc.Rows[0].find("bytes");
  ASSERT_NE(Bytes, nullptr);
  EXPECT_TRUE(Bytes->IsNumber);
  EXPECT_DOUBLE_EQ(Bytes->Number, 480768.0);
  EXPECT_EQ(Doc.Rows[0].Label, "reduction");
}

TEST(ResultDoc, ArtifactTextSplitsTablesAndProse) {
  const char *Text = "Figure 5: case studies\n"
                     "\n"
                     "system      total_us   comm_us\n"
                     "------------------------------\n"
                     "CPU+GPU       159.75     49.05\n"
                     "Fusion        137.84     27.26\n"
                     "\n"
                     "footnote line\n";
  ResultDoc Doc = ResultDoc::fromArtifactText("fig5.txt", Text);
  ASSERT_EQ(Doc.Rows.size(), 2u);
  EXPECT_EQ(Doc.Rows[0].Label, "CPU+GPU");
  const ResultValue *Total = Doc.Rows[0].find("total_us");
  ASSERT_NE(Total, nullptr);
  EXPECT_DOUBLE_EQ(Total->Number, 159.75);
  // Title and footnote survive as exact-match prose.
  ASSERT_GE(Doc.Prose.size(), 2u);
  EXPECT_EQ(Doc.Prose.front(), "Figure 5: case studies");
  EXPECT_EQ(Doc.Prose.back(), "footnote line");
}

TEST(ResultDoc, FromTextTableMatchesRenderedParse) {
  // The in-memory path (what a sweep hands over directly) must agree
  // with re-parsing the table's rendered text.
  TextTable Table({"kernel", "system", "total_us"});
  Table.addRow({"reduction", "CPU+GPU", "159.75"});
  Table.addRow({"reduction", "Fusion", "137.84"});
  ResultDoc Direct = ResultDoc::fromTextTable("t", Table);
  ResultDoc Reparsed = ResultDoc::fromArtifactText("t", Table.render());
  ToleranceSpec Spec;
  EXPECT_TRUE(compareDocs(Direct, Reparsed, Spec).ok());
  ASSERT_EQ(Direct.Rows.size(), 2u);
  EXPECT_EQ(Direct.Rows[1].Label, "reduction/Fusion");
}

TEST(ResultDoc, MetricsJsonBecomesRunRow) {
  MetricsSnapshot M;
  M.add("dram.cpu.reads", 1024);
  M.add("noc.hops", 77);
  ResultDoc Doc;
  std::string Error;
  ASSERT_TRUE(ResultDoc::fromMetricsJson("m.json", renderMetricsJson(M), Doc,
                                         Error))
      << Error;
  ASSERT_EQ(Doc.Rows.size(), 1u);
  EXPECT_EQ(Doc.Rows[0].Label, "run");
  const ResultValue *Reads = Doc.Rows[0].find("dram.cpu.reads");
  ASSERT_NE(Reads, nullptr);
  EXPECT_DOUBLE_EQ(Reads->Number, 1024.0);
}

TEST(ResultDoc, RejectsMalformedMetricsJson) {
  ResultDoc Doc;
  std::string Error;
  EXPECT_FALSE(ResultDoc::fromMetricsJson("m.json", "{\"schema\":\"nope\"}",
                                          Doc, Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Comparison engine
//===----------------------------------------------------------------------===//

ResultDoc twoRowDoc(double CpuGpuTotal) {
  std::string Csv = "kernel,system,total_us,comm_us\n"
                    "reduction,CPU+GPU," + std::to_string(CpuGpuTotal) +
                    ",49.05\n"
                    "reduction,Fusion,137.84,27.26\n";
  return ResultDoc::fromCsv("fig5.csv", Csv);
}

TEST(Compare, IdenticalDocsAreClean) {
  ToleranceSpec Spec;
  DiffReport Report = compareDocs(twoRowDoc(159.75), twoRowDoc(159.75), Spec);
  EXPECT_TRUE(Report.ok()) << Report.render("diff");
  EXPECT_EQ(Report.RowsCompared, 2u);
  EXPECT_GE(Report.ValuesCompared, 4u);
}

TEST(Compare, PerturbedValueFailsWithRankedDrift) {
  ToleranceSpec Spec; // zero default band
  DiffReport Report = compareDocs(twoRowDoc(159.75), twoRowDoc(171.20), Spec);
  ASSERT_EQ(Report.Entries.size(), 1u);
  const DiffEntry &E = Report.Entries[0];
  EXPECT_EQ(E.Kind, DiffKind::ValueDrift);
  EXPECT_EQ(E.Doc, "fig5.csv");
  EXPECT_EQ(E.Row, "reduction/CPU+GPU");
  EXPECT_EQ(E.Field, "total_us");
  EXPECT_NEAR(E.AbsDelta, 11.45, 1e-9);
}

TEST(Compare, PerturbationWithinTolerancePasses) {
  ToleranceSpec Spec;
  Spec.Default = Tolerance{0.0, 0.002};
  // 0.19% drift sits inside the 0.2% band.
  DiffReport Report = compareDocs(twoRowDoc(159.75), twoRowDoc(160.05), Spec);
  EXPECT_TRUE(Report.ok()) << Report.render("diff");
}

TEST(Compare, PerturbedMetricsDocFailsDiff) {
  MetricsSnapshot Ref, Act;
  Ref.add("dram.cpu.reads", 1024);
  Act.add("dram.cpu.reads", 1025);
  ResultDoc RefDoc, ActDoc;
  std::string Error;
  ASSERT_TRUE(ResultDoc::fromMetricsJson("m.json", renderMetricsJson(Ref),
                                         RefDoc, Error));
  ASSERT_TRUE(ResultDoc::fromMetricsJson("m.json", renderMetricsJson(Act),
                                         ActDoc, Error));
  ToleranceSpec Spec;
  DiffReport Report = compareDocs(RefDoc, ActDoc, Spec);
  ASSERT_EQ(Report.Entries.size(), 1u);
  EXPECT_EQ(Report.Entries[0].Kind, DiffKind::ValueDrift);
  EXPECT_EQ(Report.Entries[0].Field, "dram.cpu.reads");
}

TEST(Compare, MissingRowAndFieldAreStructural) {
  ResultDoc Ref = ResultDoc::fromCsv(
      "t.csv", "kernel,total_us,comm_us\nreduction,159.75,49.05\n");
  ResultDoc NoRow = ResultDoc::fromCsv("t.csv", "kernel,total_us,comm_us\n");
  ResultDoc NoField =
      ResultDoc::fromCsv("t.csv", "kernel,total_us\nreduction,159.75\n");
  ToleranceSpec Spec;
  DiffReport RowReport = compareDocs(Ref, NoRow, Spec);
  ASSERT_FALSE(RowReport.ok());
  EXPECT_EQ(RowReport.Entries[0].Kind, DiffKind::MissingRow);
  DiffReport FieldReport = compareDocs(Ref, NoField, Spec);
  ASSERT_FALSE(FieldReport.ok());
  EXPECT_EQ(FieldReport.Entries[0].Kind, DiffKind::MissingField);
}

TEST(Compare, ProseMismatchFailsExactly) {
  ResultDoc Ref = ResultDoc::fromArtifactText("a.txt", "exact footnote\n");
  ResultDoc Act = ResultDoc::fromArtifactText("a.txt", "changed footnote\n");
  ToleranceSpec Spec;
  DiffReport Report = compareDocs(Ref, Act, Spec);
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.Entries[0].Kind, DiffKind::TextMismatch);
}

TEST(Compare, StructuralBreaksRankAboveDrifts) {
  DiffReport Report;
  DiffEntry Drift;
  Drift.Kind = DiffKind::ValueDrift;
  Drift.RelDelta = 0.5;
  DiffEntry SmallDrift = Drift;
  SmallDrift.RelDelta = 0.01;
  DiffEntry Missing;
  Missing.Kind = DiffKind::MissingRow;
  Report.Entries = {SmallDrift, Drift, Missing};
  Report.sortBySeverity();
  EXPECT_EQ(Report.Entries[0].Kind, DiffKind::MissingRow);
  EXPECT_DOUBLE_EQ(Report.Entries[1].RelDelta, 0.5);
  EXPECT_DOUBLE_EQ(Report.Entries[2].RelDelta, 0.01);
}

//===----------------------------------------------------------------------===//
// Fidelity checks
//===----------------------------------------------------------------------===//

TEST(Fidelity, ParsesValueAndTrendLines) {
  FidelitySet Set;
  std::string Error;
  ASSERT_TRUE(Set.parse(
      "# comment\n"
      "value t.csv :: reduction :: #inst CPU == 70006 rel=0.02\n"
      "trend t.csv :: comm_us :: a < b <= c\n",
      Error))
      << Error;
  ASSERT_EQ(Set.Checks.size(), 2u);
  EXPECT_FALSE(Set.Checks[0].IsTrend);
  EXPECT_EQ(Set.Checks[0].Field, "#inst CPU"); // mid-line '#' is data
  EXPECT_DOUBLE_EQ(Set.Checks[0].Expected, 70006.0);
  EXPECT_DOUBLE_EQ(Set.Checks[0].Band.Rel, 0.02);
  ASSERT_TRUE(Set.Checks[1].IsTrend);
  ASSERT_EQ(Set.Checks[1].TrendRows.size(), 3u);
  ASSERT_EQ(Set.Checks[1].TrendOps.size(), 2u);
  EXPECT_EQ(Set.Checks[1].TrendOps[0], FidelityOp::Lt);
  EXPECT_EQ(Set.Checks[1].TrendOps[1], FidelityOp::Le);
}

TEST(Fidelity, RejectsMalformedLines) {
  FidelitySet Set;
  std::string Error;
  EXPECT_FALSE(Set.parse("value missing-separators\n", Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;
}

TEST(Fidelity, EvaluatesValuesAndTrends) {
  ResultDoc Doc = ResultDoc::fromCsv("f.csv",
                                     "kernel,system,comm_us\n"
                                     "reduction,GMAC,4.75\n"
                                     "reduction,Fusion,27.26\n"
                                     "reduction,CPU+GPU,49.05\n");
  auto Lookup = [&Doc](const std::string &Name) -> const ResultDoc * {
    return Name == "f.csv" ? &Doc : nullptr;
  };
  FidelitySet Good;
  std::string Error;
  ASSERT_TRUE(Good.parse(
      "value f.csv :: reduction/GMAC :: comm_us == 4.75 abs=0.01\n"
      "trend f.csv :: comm_us :: reduction/GMAC < reduction/Fusion < "
      "reduction/CPU+GPU\n",
      Error))
      << Error;
  EXPECT_TRUE(evaluateFidelity(Good, Lookup).ok());

  FidelitySet Inverted;
  ASSERT_TRUE(Inverted.parse("trend f.csv :: comm_us :: reduction/CPU+GPU < "
                             "reduction/GMAC\n",
                             Error));
  DiffReport Report = evaluateFidelity(Inverted, Lookup);
  ASSERT_EQ(Report.Entries.size(), 1u);
  EXPECT_EQ(Report.Entries[0].Kind, DiffKind::FidelityTrend);

  FidelitySet MissingDocSet;
  ASSERT_TRUE(
      MissingDocSet.parse("value nope.csv :: r :: comm_us == 1\n", Error));
  DiffReport MissingReport = evaluateFidelity(MissingDocSet, Lookup);
  ASSERT_EQ(MissingReport.Entries.size(), 1u);
  EXPECT_EQ(MissingReport.Entries[0].Kind, DiffKind::MissingDoc);
}

TEST(Fidelity, ShippedConfigParses) {
  FidelitySet Set;
  std::string Error;
  ASSERT_TRUE(FidelitySet::loadFile(std::string(HETSIM_SOURCE_DIR) +
                                        "/refs/paper/fidelity.cfg",
                                    Set, Error))
      << Error;
  EXPECT_GE(Set.Checks.size(), 50u);
}

//===----------------------------------------------------------------------===//
// Golden driver: manifest, bless round-trip, missing refs
//===----------------------------------------------------------------------===//

class GoldenFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Root = std::filesystem::path(::testing::TempDir()) /
           ("hetsim_check_test_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(Root);
    std::filesystem::create_directories(Root / "out");
    std::filesystem::create_directories(Root / "refs");
    Paths.OutDir = (Root / "out").string();
    Paths.RefsDir = (Root / "refs").string();
  }
  void TearDown() override { std::filesystem::remove_all(Root); }

  std::filesystem::path Root;
  CheckPaths Paths;
};

TEST_F(GoldenFixture, BlessRoundTripThenDiffIsClean) {
  ASSERT_TRUE(writeTextFile(Paths.OutDir + "/a.csv",
                            "kernel,total_us\nreduction,159.75\n"));
  std::vector<std::string> Names = {"a.csv"};
  std::string Error;
  ASSERT_TRUE(blessGoldens(Paths, Names, Error)) << Error;

  ToleranceSpec Spec;
  DiffReport Clean = diffGoldens(Paths, Names, Spec);
  EXPECT_TRUE(Clean.ok()) << Clean.render("diff");

  // Drift the candidate: the blessed golden must now catch it.
  ASSERT_TRUE(writeTextFile(Paths.OutDir + "/a.csv",
                            "kernel,total_us\nreduction,171.20\n"));
  DiffReport Dirty = diffGoldens(Paths, Names, Spec);
  ASSERT_EQ(Dirty.Entries.size(), 1u);
  EXPECT_EQ(Dirty.Entries[0].Kind, DiffKind::ValueDrift);

  // Re-bless accepts the new truth.
  ASSERT_TRUE(blessGoldens(Paths, Names, Error)) << Error;
  EXPECT_TRUE(diffGoldens(Paths, Names, Spec).ok());
}

TEST_F(GoldenFixture, MissingGoldenAndCandidateAreReported) {
  ToleranceSpec Spec;
  std::vector<std::string> Names = {"ghost.csv"};
  DiffReport Report = diffGoldens(Paths, Names, Spec);
  ASSERT_EQ(Report.Entries.size(), 1u);
  EXPECT_EQ(Report.Entries[0].Kind, DiffKind::MissingDoc);

  // Golden present, candidate absent: still one MissingDoc entry.
  std::filesystem::create_directories(Root / "refs" / "golden");
  ASSERT_TRUE(writeTextFile(Paths.goldenPath("ghost.csv"),
                            "kernel,total_us\nreduction,1\n"));
  DiffReport Report2 = diffGoldens(Paths, Names, Spec);
  ASSERT_EQ(Report2.Entries.size(), 1u);
  EXPECT_EQ(Report2.Entries[0].Kind, DiffKind::MissingDoc);
}

TEST_F(GoldenFixture, ManifestRejectsMissingOrEmptyFiles) {
  std::vector<std::string> Names;
  std::string Error;
  EXPECT_FALSE(loadManifest(Paths.manifestPath(), Names, Error));
  ASSERT_TRUE(writeTextFile(Paths.manifestPath(), "# only comments\n"));
  EXPECT_FALSE(loadManifest(Paths.manifestPath(), Names, Error));
  ASSERT_TRUE(writeTextFile(Paths.manifestPath(),
                            "# header\na.csv\nb.txt # trailing\n"));
  ASSERT_TRUE(loadManifest(Paths.manifestPath(), Names, Error)) << Error;
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "a.csv");
  EXPECT_EQ(Names[1], "b.txt");
}

} // namespace
