//===- tests/trace_cache_stress_test.cpp - Cache concurrency invariants ---===//
///
/// \file
/// Hammers the sharded single-flight TraceCache from many threads over a
/// fixed set of keys and asserts the PR-6 contract: the miss counter
/// equals the number of distinct keys (no duplicate generation at any
/// thread count), every request for a key observes the same buffer
/// pointer (stable pointers), and the block path hands out one recipe
/// per key. These invariants are exactly what the old per-kernel GenMutex
/// design violated under parallel sweeps.
///
//===----------------------------------------------------------------------===//

#include "memory/AddressSpaceModel.h"
#include "trace/TraceCache.h"

#include "gtest/gtest.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace hetsim;

namespace {

/// Builds the K-th distinct compute request (seed varies, so every key is
/// a genuinely different generated trace).
GenRequest requestFor(unsigned K) {
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = 4096;
  Req.Seed = K + 1;
  return Req;
}

class TraceCacheStress : public ::testing::Test {
protected:
  void SetUp() override {
    if (!TraceCache::global().enabled())
      GTEST_SKIP() << "HETSIM_TRACE_CACHE=0 set in environment";
    TraceCache::global().clear();
  }
};

TEST_F(TraceCacheStress, ExactlyOneGenerationPerKeyUnderContention) {
  constexpr unsigned NumThreads = 8;
  constexpr unsigned NumKeys = 6;
  constexpr unsigned Rounds = 25;
  const KernelDataLayout Layout = KernelDataLayout::makeLinear(
      KernelId::Reduction, region::CpuPrivateBase);

  // Every thread records the pointer it saw for every key on every round.
  std::vector<std::vector<const TraceBuffer *>> Seen(NumThreads);
  std::atomic<unsigned> Ready{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Seen[T].reserve(size_t(NumKeys) * Rounds);
      // Barrier: maximize the window where all threads miss at once.
      Ready.fetch_add(1);
      while (Ready.load() != NumThreads) {
      }
      for (unsigned R = 0; R != Rounds; ++R)
        for (unsigned K = 0; K != NumKeys; ++K) {
          // Stagger key order per thread so shards are hit in every
          // interleaving, not in lockstep.
          unsigned Key = (K + T) % NumKeys;
          auto Trace = TraceCache::global().compute(KernelId::Reduction,
                                                    requestFor(Key), Layout);
          ASSERT_EQ(Trace->size(), 4096u);
          Seen[T].push_back(Trace.get());
        }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  // Single-flight: misses == generations == distinct keys, regardless of
  // how many threads raced the cold window.
  TraceCacheStats Stats = TraceCache::global().stats();
  EXPECT_EQ(Stats.Misses, NumKeys);
  EXPECT_EQ(TraceCache::global().generations(), NumKeys);
  EXPECT_EQ(Stats.lookups(),
            uint64_t(NumThreads) * NumKeys * Rounds);
  EXPECT_EQ(Stats.Hits, Stats.lookups() - NumKeys);
  EXPECT_EQ(TraceCache::global().entryCount(), size_t(NumKeys));

  // Stable pointers: all threads and rounds observed one buffer per key.
  // Thread T's J-th request was for key ((J % NumKeys) + T) % NumKeys.
  std::vector<const TraceBuffer *> Canonical(NumKeys, nullptr);
  for (unsigned T = 0; T != NumThreads; ++T) {
    ASSERT_EQ(Seen[T].size(), size_t(NumKeys) * Rounds);
    for (size_t J = 0; J != Seen[T].size(); ++J) {
      unsigned Key = unsigned((J % NumKeys) + T) % NumKeys;
      if (!Canonical[Key])
        Canonical[Key] = Seen[T][J];
      EXPECT_EQ(Seen[T][J], Canonical[Key])
          << "thread " << T << " request " << J << " key " << Key;
    }
  }
  // Distinct keys resolve to distinct buffers.
  for (unsigned A = 0; A != NumKeys; ++A)
    for (unsigned B = A + 1; B != NumKeys; ++B)
      EXPECT_NE(Canonical[A], Canonical[B]);
}

TEST_F(TraceCacheStress, BlockPathHandsOutOneRecipePerKey) {
  constexpr unsigned NumThreads = 8;
  constexpr unsigned NumKeys = 4;
  const KernelDataLayout Layout = KernelDataLayout::makeLinear(
      KernelId::Reduction, region::CpuPrivateBase);

  std::vector<std::vector<const BlockTrace *>> Seen(NumThreads);
  std::atomic<unsigned> Ready{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (Ready.load() != NumThreads) {
      }
      for (unsigned R = 0; R != 20; ++R)
        for (unsigned K = 0; K != NumKeys; ++K) {
          SharedTrace Trace = TraceCache::global().computeShared(
              KernelId::Reduction, requestFor(K), Layout);
          Seen[T].push_back(Trace.blocks());
        }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  // Losers of an insertion race must adopt the winner's block: per key,
  // one pointer (or everywhere-materialized when the fast path is off).
  std::vector<const BlockTrace *> Canonical(NumKeys, nullptr);
  bool SawBlock = false;
  for (unsigned T = 0; T != NumThreads; ++T) {
    ASSERT_EQ(Seen[T].size(), size_t(NumKeys) * 20);
    for (size_t J = 0; J != Seen[T].size(); ++J) {
      unsigned Key = unsigned(J % NumKeys);
      if (Seen[T][J])
        SawBlock = true;
      if (!Canonical[Key])
        Canonical[Key] = Seen[T][J];
      EXPECT_EQ(Seen[T][J], Canonical[Key]);
    }
  }
  if (SawBlock)
    EXPECT_EQ(TraceCache::global().stats().Misses, NumKeys);
}

TEST_F(TraceCacheStress, SerialAndComputeKeysDoNotCollide) {
  const KernelDataLayout Layout = KernelDataLayout::makeLinear(
      KernelId::Reduction, region::CpuPrivateBase);
  GenRequest Req = requestFor(0);
  auto Compute =
      TraceCache::global().compute(KernelId::Reduction, Req, Layout);
  auto Serial = TraceCache::global().serial(KernelId::Reduction,
                                            Req.InstCount, Layout, Req.Seed);
  EXPECT_NE(Compute.get(), Serial.get());
  EXPECT_EQ(TraceCache::global().stats().Misses, 2u);
  EXPECT_EQ(TraceCache::global().generations(), 2u);
}

TEST_F(TraceCacheStress, WaitCounterOnlyGrowsOnContendedMisses) {
  const KernelDataLayout Layout = KernelDataLayout::makeLinear(
      KernelId::Reduction, region::CpuPrivateBase);
  uint64_t Before = traceCacheWaitNanos();
  auto First =
      TraceCache::global().compute(KernelId::Reduction, requestFor(0), Layout);
  // An uncontended hit takes the shared lock only; it must not charge the
  // wait counter (the telemetry that feeds lock_wait_s).
  uint64_t AfterMiss = traceCacheWaitNanos();
  auto Again =
      TraceCache::global().compute(KernelId::Reduction, requestFor(0), Layout);
  EXPECT_EQ(First.get(), Again.get());
  EXPECT_EQ(traceCacheWaitNanos(), AfterMiss);
  EXPECT_GE(AfterMiss, Before);
}

} // namespace
