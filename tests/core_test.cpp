//===- tests/core_test.cpp - core/ unit + integration tests ---------------===//

#include "core/Experiments.h"
#include "core/SystemDescriptor.h"

#include <gtest/gtest.h>

#include <map>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Design space.
//===----------------------------------------------------------------------===//

TEST(DesignSpace, LocalitySchemeRendering) {
  LocalityScheme Scheme{LocalityMgmt::Implicit, LocalityMgmt::Explicit,
                        SharedLocality::Hybrid};
  EXPECT_EQ(Scheme.render(), "impl-pri/expl-pri/hybrid-shared");
  EXPECT_TRUE(Scheme.mixedPrivate());
}

TEST(DesignSpace, PartiallySharedAdmitsMostLocalityOptions) {
  // The paper's conclusion 3: the partially shared address space allows
  // the most locality-management options.
  unsigned Pas = localityOptionCount(AddressSpaceKind::PartiallyShared);
  EXPECT_GT(Pas, localityOptionCount(AddressSpaceKind::Unified));
  EXPECT_GT(Pas, localityOptionCount(AddressSpaceKind::Disjoint));
  EXPECT_GT(Pas, localityOptionCount(AddressSpaceKind::Adsm));
  EXPECT_EQ(Pas, canonicalLocalitySchemes().size());
}

TEST(DesignSpace, EnumNamesAreTotal) {
  // Every enumerator renders (the tables print them all).
  for (ConnectionKind Kind :
       {ConnectionKind::PciExpress, ConnectionKind::MemoryController,
        ConnectionKind::Interconnection, ConnectionKind::CacheFsb,
        ConnectionKind::Bus, ConnectionKind::None})
    EXPECT_NE(connectionName(Kind), nullptr);
  for (CoherenceKind Kind :
       {CoherenceKind::None, CoherenceKind::HardwareDirectory,
        CoherenceKind::HardwareOrSoftware, CoherenceKind::RuntimeProtocol,
        CoherenceKind::OneSideOnly, CoherenceKind::Possible})
    EXPECT_NE(coherenceName(Kind), nullptr);
  for (ConsistencyKind Kind :
       {ConsistencyKind::Weak, ConsistencyKind::CentralizedRelease,
        ConsistencyKind::Strong, ConsistencyKind::Unspecified})
    EXPECT_NE(consistencyName(Kind), nullptr);
  EXPECT_STREQ(localityMgmtName(LocalityMgmt::Implicit), "impl");
  EXPECT_STREQ(sharedLocalityName(SharedLocality::Hybrid), "hybrid-shared");
}

TEST(DesignSpace, CanonicalSchemesCoverSectionIIB) {
  // II-B5's hybrid second level must be among the canonical options.
  bool HasHybrid = false;
  for (const LocalityScheme &Scheme : canonicalLocalitySchemes())
    HasHybrid |= Scheme.Shared == SharedLocality::Hybrid;
  EXPECT_TRUE(HasHybrid);
}

//===----------------------------------------------------------------------===//
// Table I survey.
//===----------------------------------------------------------------------===//

TEST(Survey, ThirteenRows) { EXPECT_EQ(tableOneSurvey().size(), 13u); }

TEST(Survey, DisjointDominatesExistingSystems) {
  // "Most proposed/existing systems have disjoint memory systems."
  unsigned Disjoint = surveyCount(AddressSpaceKind::Disjoint);
  EXPECT_GT(Disjoint, surveyCount(AddressSpaceKind::PartiallyShared));
  EXPECT_GT(Disjoint, surveyCount(AddressSpaceKind::Adsm));
  EXPECT_EQ(Disjoint, 6u);
}

TEST(Survey, NoUnifiedFullyCoherentStrongSystemExists) {
  // "None of the heterogeneous computing systems has employed a unified,
  // fully-coherent, strong-consistent memory system yet."
  EXPECT_FALSE(surveyHasUnifiedFullyCoherentStrong());
}

TEST(Survey, LookupByName) {
  const SystemDescriptor *Gmac = findSurveyEntry("GMAC");
  ASSERT_NE(Gmac, nullptr);
  EXPECT_EQ(Gmac->AddrSpace, AddressSpaceKind::Adsm);
  EXPECT_EQ(Gmac->Connection, ConnectionKind::PciExpress);
  EXPECT_EQ(findSurveyEntry("NotASystem"), nullptr);
}

TEST(Survey, LrbIsPartiallySharedWithOwnership) {
  const SystemDescriptor *Lrb = findSurveyEntry("CPU+LRB");
  ASSERT_NE(Lrb, nullptr);
  EXPECT_EQ(Lrb->AddrSpace, AddressSpaceKind::PartiallyShared);
  EXPECT_NE(Lrb->SharedDataUse.find("ownership"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// System configurations.
//===----------------------------------------------------------------------===//

TEST(SystemConfig, CaseStudyPresetsMatchSectionVA) {
  SystemConfig CpuGpu = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  EXPECT_EQ(CpuGpu.AddrSpace, AddressSpaceKind::Disjoint);
  EXPECT_EQ(CpuGpu.Connection, ConnectionKind::PciExpress);
  EXPECT_TRUE(CpuGpu.Hier.SeparateGpuDram);

  SystemConfig Lrb = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  EXPECT_EQ(Lrb.AddrSpace, AddressSpaceKind::PartiallyShared);
  EXPECT_TRUE(Lrb.UseOwnership);
  EXPECT_TRUE(Lrb.FirstTouchFaults);

  SystemConfig Gmac = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  EXPECT_EQ(Gmac.AddrSpace, AddressSpaceKind::Adsm);
  EXPECT_TRUE(Gmac.AsyncCopies);

  SystemConfig Fusion = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  EXPECT_EQ(Fusion.AddrSpace, AddressSpaceKind::Disjoint);
  EXPECT_EQ(Fusion.Connection, ConnectionKind::MemoryController);
  EXPECT_FALSE(Fusion.Hier.SeparateGpuDram);

  SystemConfig Ideal = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  EXPECT_EQ(Ideal.AddrSpace, AddressSpaceKind::Unified);
  EXPECT_TRUE(Ideal.IdealComm);
  EXPECT_TRUE(Ideal.Hier.HwCoherence);
  EXPECT_TRUE(Ideal.Hier.GpuSharesL3);
}

TEST(SystemConfig, OverridesApply) {
  ConfigStore Overrides;
  Overrides.setInt("comm.api_pci_base", 123);
  Overrides.setInt("cpu.rob_entries", 32);
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::CpuGpu, Overrides);
  EXPECT_EQ(C.Comm.ApiPciBase, 123u);
  EXPECT_EQ(C.Cpu.RobEntries, 32u);
}

TEST(SystemConfig, AddressSpaceStudySharesCache) {
  SystemConfig C =
      SystemConfig::forAddressSpaceStudy(AddressSpaceKind::Disjoint);
  EXPECT_TRUE(C.IdealComm);
  EXPECT_TRUE(C.Hier.GpuSharesL3);
  EXPECT_FALSE(C.Hier.SeparateGpuDram);
  EXPECT_EQ(C.Name, "DIS");
}

//===----------------------------------------------------------------------===//
// Kernel programs.
//===----------------------------------------------------------------------===//

class KernelProgramTest : public ::testing::TestWithParam<KernelId> {};

TEST_P(KernelProgramTest, ReproducesTableThree) {
  KernelId Id = GetParam();
  const KernelCharacteristics &K = kernelCharacteristics(Id);
  KernelProgram P = KernelProgram::build(Id);
  EXPECT_EQ(P.totalCpuInsts(), K.CpuInsts);
  EXPECT_EQ(P.totalGpuInsts(), K.GpuInsts);
  EXPECT_EQ(P.totalSerialInsts(), K.SerialInsts);
  EXPECT_EQ(P.communicationCount(), K.NumComms);
  EXPECT_EQ(P.initialTransferBytes(), K.InitialTransferBytes);
  EXPECT_EQ(P.rounds(), K.GpuRounds);
}

TEST_P(KernelProgramTest, ParallelPhasesEqualRounds) {
  KernelProgram P = KernelProgram::build(GetParam());
  unsigned Parallel = 0;
  for (const KernelPhase &Phase : P.phases())
    if (Phase.Kind == PhaseKind::Parallel)
      ++Parallel;
  EXPECT_EQ(Parallel, P.rounds());
}

TEST_P(KernelProgramTest, FirstParallelPhaseFollowsTransferIn) {
  // The first GPU round always needs its inputs moved in first. (Later
  // rounds may reuse in-place data, e.g. convolution's second pass.)
  KernelProgram P = KernelProgram::build(GetParam());
  const auto &Phases = P.phases();
  for (size_t I = 0; I != Phases.size(); ++I) {
    if (Phases[I].Kind != PhaseKind::Parallel)
      continue;
    ASSERT_GT(I, 0u);
    EXPECT_EQ(Phases[I - 1].Kind, PhaseKind::TransferIn);
    break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelProgramTest,
                         ::testing::ValuesIn(allKernels()));

//===----------------------------------------------------------------------===//
// Table V: programmability.
//===----------------------------------------------------------------------===//

TEST(SourceLines, TableFiveExactly) {
  // The paper's Table V, cell by cell.
  struct Row {
    KernelId Kernel;
    unsigned Uni, Pas, Dis, Adsm;
  };
  const Row Rows[] = {
      {KernelId::MatrixMul, 0, 2, 9, 6}, {KernelId::MergeSort, 0, 2, 6, 4},
      {KernelId::Dct, 0, 2, 6, 4},       {KernelId::Reduction, 0, 2, 9, 6},
      {KernelId::Convolution, 0, 4, 9, 6}, {KernelId::KMeans, 0, 6, 6, 4},
  };
  for (const Row &R : Rows) {
    EXPECT_EQ(communicationSourceLines(R.Kernel, AddressSpaceKind::Unified),
              R.Uni)
        << kernelName(R.Kernel);
    EXPECT_EQ(communicationSourceLines(R.Kernel,
                                       AddressSpaceKind::PartiallyShared),
              R.Pas)
        << kernelName(R.Kernel);
    EXPECT_EQ(communicationSourceLines(R.Kernel, AddressSpaceKind::Disjoint),
              R.Dis)
        << kernelName(R.Kernel);
    EXPECT_EQ(communicationSourceLines(R.Kernel, AddressSpaceKind::Adsm),
              R.Adsm)
        << kernelName(R.Kernel);
  }
}

TEST(SourceLines, OrderingMatchesSectionVC) {
  // "Unified < partially shared <= ADSM < disjoint" (per kernel).
  for (KernelId Kernel : allKernels()) {
    unsigned Uni = communicationSourceLines(Kernel, AddressSpaceKind::Unified);
    unsigned Pas =
        communicationSourceLines(Kernel, AddressSpaceKind::PartiallyShared);
    unsigned Adsm = communicationSourceLines(Kernel, AddressSpaceKind::Adsm);
    unsigned Dis =
        communicationSourceLines(Kernel, AddressSpaceKind::Disjoint);
    EXPECT_LT(Uni, Pas) << kernelName(Kernel);
    EXPECT_LE(Pas, std::max(Adsm, Pas)) << kernelName(Kernel);
    EXPECT_LE(Adsm, Dis) << kernelName(Kernel);
  }
}

TEST(SourceLines, StatementsAreConcreteCode) {
  HostSource S =
      emitCommunicationSource(KernelId::Reduction, AddressSpaceKind::Disjoint);
  ASSERT_EQ(S.lineCount(), 9u);
  EXPECT_NE(S.Statements[0].find("GPUmemallocate"), std::string::npos);
  EXPECT_NE(S.Statements[3].find("MemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(S.Statements[8].find("GPUfree"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Lowering.
//===----------------------------------------------------------------------===//

TEST(Lowering, UnifiedHasNoCommunicationSteps) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  EXPECT_EQ(P.countSteps(ExecKind::Transfer), 0u);
  EXPECT_EQ(P.countSteps(ExecKind::OwnershipToGpu), 0u);
  EXPECT_EQ(P.countSteps(ExecKind::ParallelCompute), 1u);
  EXPECT_EQ(P.countSteps(ExecKind::SerialCompute), 1u);
}

TEST(Lowering, DisjointTransfersMatchTableThreeComms) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  for (KernelId Kernel : allKernels()) {
    LoweredProgram P = lowerKernel(Kernel, C);
    EXPECT_EQ(P.countSteps(ExecKind::Transfer),
              kernelCharacteristics(Kernel).NumComms)
        << kernelName(Kernel);
  }
}

TEST(Lowering, DisjointInitialTransferBytes) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  for (const ExecStep &Step : P.Steps) {
    if (Step.Kind == ExecKind::Transfer) {
      EXPECT_EQ(Step.Bytes, 320512u); // First transfer = Table III.
      break;
    }
  }
}

TEST(Lowering, LrbHasOwnershipAndApertureAndFaults) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  EXPECT_EQ(P.countSteps(ExecKind::OwnershipToGpu), 1u);
  EXPECT_EQ(P.countSteps(ExecKind::OwnershipToCpu), 1u);
  EXPECT_EQ(P.countSteps(ExecKind::Transfer), 1u); // Initial placement only.
  EXPECT_GT(P.totalPageFaultPages(), 0u);
}

TEST(Lowering, LrbKMeansFaultsOnlyFirstRound) {
  // Later k-means rounds revisit the same shared pages: no new faults.
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram P = lowerKernel(KernelId::KMeans, C);
  std::vector<uint64_t> FaultsPerParallel;
  for (const ExecStep &Step : P.Steps)
    if (Step.Kind == ExecKind::ParallelCompute)
      FaultsPerParallel.push_back(Step.PageFaultPages);
  ASSERT_EQ(FaultsPerParallel.size(), 3u);
  EXPECT_GT(FaultsPerParallel[0], 0u);
  EXPECT_EQ(FaultsPerParallel[1], 0u);
  EXPECT_EQ(FaultsPerParallel[2], 0u);
}

TEST(Lowering, GmacUsesAsyncTransfersAndWaits) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  unsigned AsyncTransfers = 0;
  for (const ExecStep &Step : P.Steps)
    if (Step.Kind == ExecKind::Transfer && Step.Async)
      ++AsyncTransfers;
  EXPECT_EQ(AsyncTransfers, 2u);
  EXPECT_GE(P.countSteps(ExecKind::DmaWait), 1u);
}

TEST(Lowering, ComputeTracesHaveExactBudgets) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram P = lowerKernel(KernelId::MergeSort, C);
  const KernelCharacteristics &K = kernelCharacteristics(KernelId::MergeSort);
  uint64_t Cpu = 0, Gpu = 0, Serial = 0;
  for (const ExecStep &Step : P.Steps) {
    if (Step.Kind == ExecKind::ParallelCompute) {
      Cpu += Step.CpuTrace.size();
      Gpu += Step.GpuTrace.size();
    } else if (Step.Kind == ExecKind::SerialCompute) {
      Serial += Step.CpuTrace.size();
    }
  }
  EXPECT_EQ(Cpu, K.CpuInsts);
  EXPECT_EQ(Gpu, K.GpuInsts);
  EXPECT_EQ(Serial, K.SerialInsts);
}

TEST(Lowering, DisjointTracesUseDistinctSpaces) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  for (const ExecStep &Step : P.Steps) {
    if (Step.Kind != ExecKind::ParallelCompute)
      continue;
    for (const TraceRecord &R : Step.CpuTrace) {
      if (isGlobalMemoryOp(R.Op)) {
        EXPECT_EQ(regionOf(R.MemAddr), MemRegion::CpuPrivate);
      }
    }
    for (const TraceRecord &R : Step.GpuTrace) {
      if (isGlobalMemoryOp(R.Op)) {
        EXPECT_EQ(regionOf(R.MemAddr), MemRegion::GpuPrivate);
      }
    }
  }
}

TEST(Lowering, IdealCommSuppressesPageFaults) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  C.IdealComm = true;
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  EXPECT_EQ(P.totalPageFaultPages(), 0u);
}

TEST(Lowering, ExplicitSharedLocalityInsertsPush) {
  SystemConfig C = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  C.Locality.Shared = SharedLocality::Explicit;
  LoweredProgram P = lowerKernel(KernelId::Reduction, C);
  EXPECT_EQ(P.countSteps(ExecKind::PushLocality), 1u);
}

//===----------------------------------------------------------------------===//
// HeteroSimulator end-to-end behaviour.
//===----------------------------------------------------------------------===//

TEST(Simulator, BreakdownIsPositiveAndConsistent) {
  HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::CpuGpu));
  RunResult R = Sim.run(KernelId::Reduction);
  EXPECT_GT(R.Time.SequentialNs, 0.0);
  EXPECT_GT(R.Time.ParallelNs, 0.0);
  EXPECT_GT(R.Time.CommunicationNs, 0.0);
  EXPECT_NEAR(R.Time.totalNs(), R.Time.SequentialNs + R.Time.ParallelNs +
                                    R.Time.CommunicationNs,
              1e-6);
  EXPECT_EQ(R.CpuTotal.Insts, 70006u + 99996u);
  EXPECT_EQ(R.GpuTotal.Insts, 70001u);
}

TEST(Simulator, IdealHasZeroCommunication) {
  HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::IdealHetero));
  RunResult R = Sim.run(KernelId::Reduction);
  EXPECT_DOUBLE_EQ(R.Time.CommunicationNs, 0.0);
  EXPECT_EQ(R.TransferredBytes, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::Lrb));
  RunResult A = Sim.run(KernelId::MergeSort);
  RunResult B = Sim.run(KernelId::MergeSort);
  EXPECT_DOUBLE_EQ(A.Time.totalNs(), B.Time.totalNs());
  EXPECT_EQ(A.PageFaults, B.PageFaults);
}

TEST(Simulator, CommunicationOrderingAcrossSystems) {
  // Fig. 6's shape: IDEAL = 0 < Fusion < CPU+GPU; GMAC hides most of its
  // copy cost relative to the synchronous PCI-E system. Checked on the
  // single-round reduction AND the two-round convolution (whose round-2
  // coherence behaviour once regressed this).
  for (KernelId Kernel : {KernelId::Reduction, KernelId::Convolution}) {
    std::map<std::string, double> Comm;
    for (CaseStudy Study : allCaseStudies()) {
      HeteroSimulator Sim(SystemConfig::forCaseStudy(Study));
      RunResult R = Sim.run(Kernel);
      Comm[caseStudyName(Study)] = R.Time.CommunicationNs;
    }
    EXPECT_EQ(Comm["IDEAL-HETERO"], 0.0) << kernelName(Kernel);
    EXPECT_LT(Comm["Fusion"], Comm["CPU+GPU"]) << kernelName(Kernel);
    EXPECT_LT(Comm["GMAC"], Comm["CPU+GPU"]) << kernelName(Kernel);
    EXPECT_GT(Comm["Fusion"], 0.0) << kernelName(Kernel);
  }
}

TEST(Simulator, GmacConvolutionMovesNoMoreBytesThanDisjoint) {
  // The ADSM runtime must not re-copy the merged output into the GPU for
  // convolution's second round: the abstract program (3 communications,
  // Table III) says round-2 inputs stay in place.
  HeteroSimulator Gmac(SystemConfig::forCaseStudy(CaseStudy::Gmac));
  RunResult GmacR = Gmac.run(KernelId::Convolution);
  HeteroSimulator Disjoint(SystemConfig::forCaseStudy(CaseStudy::CpuGpu));
  RunResult DisR = Disjoint.run(KernelId::Convolution);
  EXPECT_LE(GmacR.TransferredBytes, DisR.TransferredBytes);
}

TEST(Simulator, LrbPaysPageFaults) {
  HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::Lrb));
  RunResult R = Sim.run(KernelId::Reduction);
  EXPECT_GT(R.PageFaults, 0u);
  EXPECT_GT(R.OwnershipActions, 0u);
}

TEST(Simulator, PageFaultCostScalesWithLibPf) {
  ConfigStore Cheap, Costly;
  Cheap.setInt("comm.lib_pf", 0);
  Costly.setInt("comm.lib_pf", 100000);
  HeteroSimulator SimCheap(
      SystemConfig::forCaseStudy(CaseStudy::Lrb, Cheap));
  HeteroSimulator SimCostly(
      SystemConfig::forCaseStudy(CaseStudy::Lrb, Costly));
  RunResult A = SimCheap.run(KernelId::Reduction);
  RunResult B = SimCostly.run(KernelId::Reduction);
  EXPECT_LT(A.Time.CommunicationNs, B.Time.CommunicationNs);
}

TEST(Simulator, AddressSpaceStudyBarsNearlyEqual) {
  // Figure 7: with ideal communication and a shared cache, the address
  // space choice barely affects performance (within a few percent).
  ConfigStore NoOverrides;
  double MinTotal = 1e300, MaxTotal = 0;
  for (AddressSpaceKind Kind :
       {AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
        AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm}) {
    HeteroSimulator Sim(SystemConfig::forAddressSpaceStudy(Kind));
    RunResult R = Sim.run(KernelId::MergeSort);
    MinTotal = std::min(MinTotal, R.Time.totalNs());
    MaxTotal = std::max(MaxTotal, R.Time.totalNs());
  }
  EXPECT_LT(MaxTotal / MinTotal, 1.05);
}

TEST(Simulator, CaseStudyRunsHaveNoSpaceViolations) {
  // The driver enforces each model's visibility rules on every access;
  // lowered programs must only touch space their model grants.
  for (CaseStudy Study : allCaseStudies()) {
    HeteroSimulator Sim(SystemConfig::forCaseStudy(Study));
    Sim.run(KernelId::MergeSort);
    EXPECT_EQ(Sim.memory().stats().counter("mem.space_violations"), 0u)
        << caseStudyName(Study);
  }
}

TEST(Simulator, CommSourceLinesExposedInResult) {
  HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::CpuGpu));
  RunResult R = Sim.run(KernelId::Reduction);
  EXPECT_EQ(R.CommSourceLines, 9u); // Disjoint reduction, Table V.
}

//===----------------------------------------------------------------------===//
// Experiment rendering.
//===----------------------------------------------------------------------===//

TEST(Experiments, TableRenderersProduceRows) {
  EXPECT_EQ(renderTable1().rowCount(), 13u);
  EXPECT_GT(renderTable2(SystemConfig::forCaseStudy(CaseStudy::IdealHetero))
                .rowCount(),
            5u);
  EXPECT_EQ(renderTable3().rowCount(), 6u);
  EXPECT_EQ(renderTable4(CommParams()).rowCount(), 4u);
  EXPECT_EQ(renderTable5().rowCount(), 6u);
}

TEST(Experiments, TableFiveRendersPaperValues) {
  std::string Csv = renderTable5().renderCsv();
  EXPECT_NE(Csv.find("matrix mul,39,0,2,9,6"), std::string::npos);
  EXPECT_NE(Csv.find("k-mean,332,0,6,6,4"), std::string::npos);
}

TEST(Experiments, TableThreeRendersPaperValues) {
  std::string Csv = renderTable3().renderCsv();
  EXPECT_NE(Csv.find("reduction"), std::string::npos);
  EXPECT_NE(Csv.find("320512"), std::string::npos);
  EXPECT_NE(Csv.find("8,585,229"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Explicit-locality (Sequoia-style) validation.
//===----------------------------------------------------------------------===//

#include "core/LocalityValidation.h"

TEST(LocalityValidation, ExplicitSchemePushesEveryRound) {
  // The lowering inserts a push before each parallel round under an
  // explicit shared scheme; multi-round k-means must re-push after each
  // CPU re-acquisition.
  SystemConfig Config =
      SystemConfig::forAddressSpaceStudy(AddressSpaceKind::PartiallyShared);
  Config.Locality.Shared = SharedLocality::Explicit;
  LoweredProgram Program = lowerKernel(KernelId::KMeans, Config);
  EXPECT_TRUE(validateExplicitLocality(Program))
      << findUnstagedSharedUses(Program).size() << " unstaged uses";
}

TEST(LocalityValidation, MissingPushIsReported) {
  SystemConfig Config =
      SystemConfig::forAddressSpaceStudy(AddressSpaceKind::PartiallyShared);
  Config.Locality.Shared = SharedLocality::Explicit;
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  // Strip the push steps to fabricate an undisciplined program.
  std::vector<ExecStep> Kept;
  for (ExecStep &Step : Program.Steps)
    if (Step.Kind != ExecKind::PushLocality)
      Kept.push_back(std::move(Step));
  Program.Steps = std::move(Kept);
  auto Violations = findUnstagedSharedUses(Program);
  ASSERT_EQ(Violations.size(), 3u); // a, b, c unstaged in round 0.
  EXPECT_EQ(Violations[0].Round, 0u);
}

TEST(LocalityValidation, OwnershipReturnInvalidatesStaging) {
  // Build a tiny program by hand: push, round 0, ownership back to CPU,
  // round 1 without a second push -> round 1 violates.
  SystemConfig Config =
      SystemConfig::forAddressSpaceStudy(AddressSpaceKind::PartiallyShared);
  LoweredProgram Program;
  Program.Place =
      AddressSpaceModel::forKind(AddressSpaceKind::PartiallyShared)
          .place(KernelId::MergeSort);
  ExecStep Push;
  Push.Kind = ExecKind::PushLocality;
  Push.Objects = Program.Place.SharedObjects;
  Program.Steps.push_back(Push);
  ExecStep Par0;
  Par0.Kind = ExecKind::ParallelCompute;
  Par0.Round = 0;
  Program.Steps.push_back(Par0);
  ExecStep Back;
  Back.Kind = ExecKind::OwnershipToCpu;
  Back.Objects = Program.Place.SharedObjects;
  Program.Steps.push_back(Back);
  ExecStep Par1;
  Par1.Kind = ExecKind::ParallelCompute;
  Par1.Round = 1;
  Program.Steps.push_back(Par1);

  auto Violations = findUnstagedSharedUses(Program);
  ASSERT_FALSE(Violations.empty());
  for (const LocalityViolation &V : Violations)
    EXPECT_EQ(V.Round, 1u);
}

TEST(LocalityValidation, ImplicitSchemesAreVacuouslyFine) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  // No pushes exist, but the checker is only meaningful for explicit
  // schemes; callers gate on the configuration. Here it reports the
  // unstaged uses, demonstrating the data the scheme decision needs.
  EXPECT_FALSE(validateExplicitLocality(Program));
}
