//===- tests/threadpool_test.cpp - ThreadPool unit tests ------------------===//
///
/// \file
/// Lifecycle, exception propagation, and parallelFor bounds coverage for
/// the sweep engine's worker pool.
///
//===----------------------------------------------------------------------===//

#include "common/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace hetsim;

namespace {

/// RAII helper: set an environment variable for one test, restore after.
class ScopedEnv {
public:
  ScopedEnv(const char *Var, const char *Value) : Name(Var) {
    const char *Old = std::getenv(Var);
    if (Old) {
      HadOld = true;
      OldValue = Old;
    }
    ::setenv(Var, Value, 1);
  }
  ~ScopedEnv() {
    if (HadOld)
      ::setenv(Name, OldValue.c_str(), 1);
    else
      ::unsetenv(Name);
  }

private:
  const char *Name;
  bool HadOld = false;
  std::string OldValue;
};

TEST(ThreadPool, DefaultJobsReadsEnv) {
  ScopedEnv Env("HETSIM_JOBS", "3");
  EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
}

TEST(ThreadPool, DefaultJobsIgnoresInvalidEnv) {
  {
    ScopedEnv Env("HETSIM_JOBS", "0");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
  }
  {
    ScopedEnv Env("HETSIM_JOBS", "not-a-number");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
  }
}

TEST(ThreadPool, ConstructDestroyWithoutWork) {
  // Pools must shut their workers down cleanly even when never used.
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Jobs);
    EXPECT_EQ(Pool.jobs(), Jobs);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr size_t N = 1000;
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Counts(N);
  Pool.parallelFor(N, [&](size_t I) {
    ASSERT_LT(I, N);
    Counts[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParallelForZeroIterationsRunsNothing) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleIterationRunsInline) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    Calls.fetch_add(1);
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPool, MoreWorkersThanIterations) {
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Counts(3);
  Pool.parallelFor(3, [&](size_t I) { Counts[I].fetch_add(1); });
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(Counts[I].load(), 1);
}

TEST(ThreadPool, SerialFallbackPreservesOrder) {
  // jobs=1 must execute 0..N-1 in order on the calling thread.
  ThreadPool Pool(1);
  std::vector<size_t> Seen;
  Pool.parallelFor(16, [&](size_t I) { Seen.push_back(I); });
  std::vector<size_t> Expected(16);
  std::iota(Expected.begin(), Expected.end(), size_t(0));
  EXPECT_EQ(Seen, Expected);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(64,
                                [&](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionInSerialModePropagates) {
  ThreadPool Pool(1);
  EXPECT_THROW(
      Pool.parallelFor(4, [&](size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool Pool(4);
  try {
    Pool.parallelFor(32, [&](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected exception";
  } catch (const std::runtime_error &) {
  }
  std::atomic<size_t> Sum{0};
  Pool.parallelFor(100, [&](size_t I) { Sum.fetch_add(I + 1); });
  EXPECT_EQ(Sum.load(), 5050u);
}

TEST(ThreadPool, ReusedAcrossManyCalls) {
  ThreadPool Pool(4);
  for (int Round = 0; Round != 10; ++Round) {
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(64, [&](size_t I) { Sum.fetch_add(I); });
    EXPECT_EQ(Sum.load(), 64u * 63u / 2);
  }
}

// Work-stealing dispatch: parallelForWorkers must cover every index
// exactly once at any (N, jobs) shape, hand each share a stable worker id
// in [0, min(N, jobs)), and survive pathologically skewed work without
// losing indices to a premature steal-loop exit.

TEST(ThreadPool, WorkersCoverEveryIndexExactlyOnce) {
  const size_t N = 501;
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Counts(N);
  std::atomic<unsigned> MaxWorker{0};
  Pool.parallelForWorkers(N, [&](size_t I, unsigned Worker) {
    Counts[I].fetch_add(1);
    unsigned Seen = MaxWorker.load();
    while (Worker > Seen && !MaxWorker.compare_exchange_weak(Seen, Worker)) {
    }
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
  EXPECT_LT(MaxWorker.load(), 4u);
}

TEST(ThreadPool, WorkersSingleJobRunsInlineAsWorkerZero) {
  ThreadPool Pool(1);
  std::vector<size_t> Order;
  Pool.parallelForWorkers(16, [&](size_t I, unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    Order.push_back(I);
  });
  ASSERT_EQ(Order.size(), 16u);
  for (size_t I = 0; I != Order.size(); ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, WorkersIdBoundedByIterationCount) {
  // 3 indices on an 8-thread pool: only min(N, jobs) shares exist.
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Counts(3);
  Pool.parallelForWorkers(3, [&](size_t I, unsigned Worker) {
    EXPECT_LT(Worker, 3u);
    Counts[I].fetch_add(1);
  });
  for (auto &Count : Counts)
    EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPool, WorkersStealFromSkewedRanges) {
  // One index is ~1000x heavier than the rest; the other workers must
  // steal the slow owner's remaining range instead of idling, and every
  // index still runs exactly once.
  const size_t N = 256;
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Counts(N);
  Pool.parallelForWorkers(N, [&](size_t I, unsigned) {
    if (I == 0) {
      volatile uint64_t Spin = 0;
      for (uint64_t J = 0; J != 2000000; ++J)
        Spin += J;
    }
    Counts[I].fetch_add(1);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, WorkersZeroIterationsRunNothing) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelForWorkers(0, [&](size_t, unsigned) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPool, WorkersExceptionPropagatesAndPoolSurvives) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelForWorkers(
                   64,
                   [](size_t I, unsigned) {
                     if (I == 17)
                       throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  std::atomic<size_t> Sum{0};
  Pool.parallelForWorkers(100, [&](size_t I, unsigned) {
    Sum.fetch_add(I + 1);
  });
  EXPECT_EQ(Sum.load(), 5050u);
}

} // namespace
