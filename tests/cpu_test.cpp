//===- tests/cpu_test.cpp - cpu/ unit tests -------------------------------===//

#include "cpu/CpuCore.h"
#include "memory/AddressSpaceModel.h"
#include "memory/MemorySystem.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// gshare predictor.
//===----------------------------------------------------------------------===//

TEST(Gshare, LearnsAlwaysTaken) {
  GsharePredictor P(10);
  for (int I = 0; I != 100; ++I)
    P.update(0x400, true);
  EXPECT_TRUE(P.predict(0x400));
  EXPECT_GT(P.stats().accuracy(), 0.95);
}

TEST(Gshare, LearnsAlternatingViaHistory) {
  // With global history, a strict T/NT alternation becomes predictable
  // once the counters warm up.
  GsharePredictor P(12);
  bool Taken = false;
  for (int I = 0; I != 2000; ++I) {
    P.update(0x400, Taken);
    Taken = !Taken;
  }
  // Count mispredictions in the steady-state tail.
  uint64_t Before = P.stats().Mispredictions;
  for (int I = 0; I != 200; ++I) {
    P.update(0x400, Taken);
    Taken = !Taken;
  }
  EXPECT_LT(P.stats().Mispredictions - Before, 20u);
}

TEST(Gshare, RandomBranchesMispredictOften) {
  GsharePredictor P(12);
  XorShiftRng Rng(3);
  uint64_t Wrong = 0;
  const int N = 4000;
  for (int I = 0; I != N; ++I)
    if (!P.update(0x400 + (I % 7) * 4, Rng.nextBool(0.5)))
      ++Wrong;
  // Should be near 50%; definitely above 30%.
  EXPECT_GT(double(Wrong) / N, 0.3);
}

TEST(Gshare, ResetClearsState) {
  GsharePredictor P(10);
  for (int I = 0; I != 50; ++I)
    P.update(0x100, false);
  P.reset();
  EXPECT_TRUE(P.predict(0x100)); // Back to weakly taken.
  EXPECT_EQ(P.stats().Predictions, 0u);
}

//===----------------------------------------------------------------------===//
// Out-of-order core timing.
//===----------------------------------------------------------------------===//

namespace {

struct CpuFixture : ::testing::Test {
  MemHierConfig HierConfig;
  std::unique_ptr<MemorySystem> Mem;
  CpuConfig Config;

  void SetUp() override {
    Mem = std::make_unique<MemorySystem>(HierConfig);
    Mem->mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  }

  SegmentResult run(const TraceBuffer &Trace) {
    CpuCore Core(Config, *Mem);
    return Core.run(Trace, 0);
  }
};

} // namespace

TEST_F(CpuFixture, EmptyTraceIsFree) {
  TraceBuffer Trace;
  SegmentResult R = run(Trace);
  EXPECT_EQ(R.Cycles, 0u);
  EXPECT_EQ(R.Insts, 0u);
}

TEST_F(CpuFixture, IndependentAluReachesIssueWidth) {
  // A tight loop body (I-cache resident) of independent ALU ops.
  TraceBuffer Trace;
  for (unsigned I = 0; I != 4000; ++I)
    Trace.emitAlu(Opcode::IntAlu, 0x100 + (I % 16) * 4,
                  uint8_t(8 + I % 24), 0);
  SegmentResult R = run(Trace);
  // 4-wide fetch/issue/retire: ~1000 cycles.
  EXPECT_GT(R.ipc(), 3.0);
}

TEST_F(CpuFixture, LargeCodeFootprintMissesICache) {
  // Straight-line code streaming through 1MB of instructions cannot stay
  // in the 32KB L1I; the front end pays the miss penalty repeatedly.
  auto MakeStraightLine = [](uint32_t Span) {
    TraceBuffer Trace;
    for (unsigned I = 0; I != 8000; ++I)
      Trace.emitAlu(Opcode::IntAlu, 0x100 + (I * 4) % Span,
                    uint8_t(8 + I % 24), 0);
    return Trace;
  };
  SegmentResult Tight = run(MakeStraightLine(64));
  SegmentResult Huge = run(MakeStraightLine(1 << 20));
  EXPECT_EQ(Tight.ICacheMisses, 1u);
  EXPECT_GT(Huge.ICacheMisses, 100u);
  EXPECT_GT(Huge.Cycles, Tight.Cycles);
}

TEST_F(CpuFixture, InstructionFetchModelingCanBeDisabled) {
  Config.ModelInstructionFetch = false;
  TraceBuffer Trace;
  for (unsigned I = 0; I != 2000; ++I)
    Trace.emitAlu(Opcode::IntAlu, 0x100 + I * 64, uint8_t(8 + I % 24), 0);
  SegmentResult R = run(Trace);
  EXPECT_EQ(R.ICacheMisses, 0u);
}

TEST_F(CpuFixture, DependentChainSerializes) {
  TraceBuffer Trace;
  for (unsigned I = 0; I != 2000; ++I)
    Trace.emitAlu(Opcode::FpMul, 0x100, 8, 8); // 5-cycle loop-carried chain.
  SegmentResult R = run(Trace);
  // Must take about 5 cycles per instruction.
  EXPECT_LT(R.ipc(), 0.25);
  EXPECT_GT(R.ipc(), 0.15);
}

TEST_F(CpuFixture, MispredictsAddBubbles) {
  Config.MispredictPenalty = 20;
  TraceBuffer Predictable, Random;
  XorShiftRng Rng(5);
  for (unsigned I = 0; I != 3000; ++I) {
    Predictable.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
    Predictable.emitBranch(0x200, true);
    Random.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
    Random.emitBranch(0x200, Rng.nextBool(0.5));
  }
  SegmentResult P = run(Predictable);
  SegmentResult R = run(Random);
  EXPECT_LT(P.BranchMispredicts * 10, R.BranchMispredicts);
  EXPECT_LT(P.Cycles * 3, R.Cycles); // Bubbles dominate the random run.
}

TEST_F(CpuFixture, RobLimitsMemoryLevelParallelism) {
  // A long stream of independent cold loads: a small ROB exposes memory
  // latency, a large ROB hides it.
  auto MakeLoads = []() {
    TraceBuffer Trace;
    for (unsigned I = 0; I != 4000; ++I)
      Trace.emitLoad(0x100, uint8_t(8 + I % 24),
                     region::CpuPrivateBase + I * 64, 4);
    return Trace;
  };

  Config.RobEntries = 8;
  SegmentResult Small = run(MakeLoads());

  SetUp(); // Fresh memory system (cold caches again).
  Config.RobEntries = 256;
  SegmentResult Large = run(MakeLoads());

  EXPECT_LT(Large.Cycles, Small.Cycles);
}

TEST_F(CpuFixture, StoresDoNotStallRetire) {
  // Stores drain through the store buffer: a stream of cold stores should
  // run near issue width, unlike cold loads.
  TraceBuffer Stores;
  for (unsigned I = 0; I != 2000; ++I)
    Stores.emitStore(0x100, 8, region::CpuPrivateBase + I * 64, 4);
  SegmentResult R = run(Stores);
  EXPECT_GT(R.ipc(), 1.0);
}

TEST_F(CpuFixture, LoadLatencyPropagatesToDependents) {
  // ld -> alu chain on a cold line vs. a warm line.
  TraceBuffer Cold;
  Cold.emitLoad(0x100, 8, region::CpuPrivateBase, 4);
  Cold.emitAlu(Opcode::IntAlu, 0x104, 9, 8);
  SegmentResult ColdR = run(Cold);

  TraceBuffer Warm;
  Warm.emitLoad(0x100, 8, region::CpuPrivateBase, 4);
  Warm.emitAlu(Opcode::IntAlu, 0x104, 9, 8);
  SegmentResult WarmR = run(Warm); // Caches retained in the fixture.
  EXPECT_LT(WarmR.Cycles, ColdR.Cycles);
}

TEST_F(CpuFixture, CountsMemoryOps) {
  TraceBuffer Trace;
  Trace.emitLoad(0x100, 8, region::CpuPrivateBase, 4);
  Trace.emitStore(0x104, 8, region::CpuPrivateBase + 64, 4);
  Trace.emitAlu(Opcode::IntAlu, 0x108, 9, 8);
  SegmentResult R = run(Trace);
  EXPECT_EQ(R.MemAccesses, 2u);
  EXPECT_EQ(R.Insts, 3u);
  EXPECT_GT(R.MemLatencySum, 0u);
}

TEST_F(CpuFixture, StartCycleOffsetsDoNotChangeDuration) {
  // Fetch modeling off so cold-vs-warm I-cache state does not differ
  // between the two runs; the property under test is time-shift
  // invariance of the pipeline model.
  Config.ModelInstructionFetch = false;
  TraceBuffer Trace;
  for (unsigned I = 0; I != 500; ++I)
    Trace.emitAlu(Opcode::IntAlu, 0x100 + I * 4, uint8_t(8 + I % 8), 0);
  CpuCore Core(Config, *Mem);
  SegmentResult AtZero = Core.run(Trace, 0);
  SegmentResult Later = Core.run(Trace, 1000000);
  EXPECT_EQ(AtZero.Cycles, Later.Cycles);
}

TEST_F(CpuFixture, StoreForwardingShortCircuitsReload) {
  // store x; load x: the load forwards from the store buffer instead of
  // paying the hierarchy (the line is cold, so the difference is large).
  TraceBuffer Trace;
  Trace.emitStore(0x100, 8, region::CpuPrivateBase + 0x4000, 4);
  Trace.emitLoad(0x104, 9, region::CpuPrivateBase + 0x4000, 4);
  Trace.emitAlu(Opcode::IntAlu, 0x108, 10, 9);
  SegmentResult Forwarded = run(Trace);
  EXPECT_EQ(Forwarded.StoreForwards, 1u);

  SetUp(); // Cold caches again.
  Config.EnableStoreForwarding = false;
  SegmentResult NotForwarded = run(Trace);
  EXPECT_EQ(NotForwarded.StoreForwards, 0u);
  EXPECT_LT(Forwarded.Cycles, NotForwarded.Cycles);
}

TEST_F(CpuFixture, ForwardingNeedsExactAddressMatch) {
  TraceBuffer Trace;
  Trace.emitStore(0x100, 8, region::CpuPrivateBase + 0x4000, 4);
  Trace.emitLoad(0x104, 9, region::CpuPrivateBase + 0x4004, 4); // Next word.
  SegmentResult R = run(Trace);
  EXPECT_EQ(R.StoreForwards, 0u);
}

TEST_F(CpuFixture, CpiStackDecomposes) {
  TraceBuffer Trace;
  XorShiftRng Rng(9);
  for (unsigned I = 0; I != 4000; ++I) {
    Trace.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
    Trace.emitBranch(0x104, Rng.nextBool(0.5));
  }
  SegmentResult R = run(Trace);
  CpiStack Stack = computeCpiStack(R, Config);
  EXPECT_NEAR(Stack.totalCpi(), double(R.Cycles) / double(R.Insts), 1e-9);
  EXPECT_GT(Stack.BranchCpi, 0.5); // Random branches dominate this run.
  EXPECT_DOUBLE_EQ(Stack.BaseCpi, 0.25);
  EXPECT_GE(Stack.MemDepCpi, 0.0);
}

TEST_F(CpuFixture, CpiStackEmptySegment) {
  CpiStack Stack = computeCpiStack(SegmentResult(), Config);
  EXPECT_DOUBLE_EQ(Stack.totalCpi(), 0.0);
}

TEST_F(CpuFixture, PredictorStatePersistsAcrossSegments) {
  // First segment trains the predictor on an always-taken branch; the
  // second segment should mispredict less than the first.
  TraceBuffer Trace;
  for (unsigned I = 0; I != 64; ++I) {
    Trace.emitAlu(Opcode::IntAlu, 0x100, 8, 0);
    Trace.emitBranch(0x104, true);
  }
  CpuCore Core(Config, *Mem);
  SegmentResult First = Core.run(Trace, 0);
  SegmentResult Second = Core.run(Trace, First.Cycles);
  EXPECT_LE(Second.BranchMispredicts, First.BranchMispredicts);
}
