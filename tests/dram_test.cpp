//===- tests/dram_test.cpp - dram/ unit tests -----------------------------===//

#include "common/Random.h"
#include "dram/Dram.h"

#include <gtest/gtest.h>

using namespace hetsim;

namespace {
/// Line address with a given channel, bank, and row for the default
/// geometry (4 channels, 8 banks, 8KB rows): channel bits [6,8), bank
/// [8,11), then 128 lines per row per bank.
Addr makeAddr(unsigned Channel, unsigned Bank, uint64_t Row,
              uint64_t LineInRow = 0) {
  return (((Row * 128 + LineInRow) << 5 | Bank << 2 | Channel) << 6);
}
} // namespace

TEST(DramConfig, DefaultsValid) {
  EXPECT_TRUE(DramConfig().isValid());
}

TEST(DramConfig, RejectsNonPow2) {
  DramConfig Config;
  Config.Channels = 3;
  EXPECT_FALSE(Config.isValid());
}

TEST(Dram, AddressMapping) {
  DramSystem Dram;
  Addr A = makeAddr(2, 5, 7, 3);
  EXPECT_EQ(Dram.channelOf(A), 2u);
  EXPECT_EQ(Dram.bankOf(A), 5u);
  EXPECT_EQ(Dram.rowOf(A), 7u);
}

TEST(Dram, ConsecutiveLinesInterleaveChannels) {
  DramSystem Dram;
  EXPECT_EQ(Dram.channelOf(0), 0u);
  EXPECT_EQ(Dram.channelOf(64), 1u);
  EXPECT_EQ(Dram.channelOf(128), 2u);
  EXPECT_EQ(Dram.channelOf(192), 3u);
  EXPECT_EQ(Dram.channelOf(256), 0u);
}

TEST(Dram, FirstAccessIsRowMiss) {
  DramSystem Dram;
  Cycle Done = Dram.access(makeAddr(0, 0, 1), 0, false);
  EXPECT_EQ(Done, DramConfig().RowMissLatency + DramConfig().BusCyclesPerLine);
  EXPECT_EQ(Dram.stats().RowMisses, 1u);
  EXPECT_EQ(Dram.stats().RowHits, 0u);
}

TEST(Dram, SecondAccessSameRowHits) {
  DramSystem Dram;
  Cycle First = Dram.access(makeAddr(0, 0, 1, 0), 0, false);
  Cycle Second = Dram.access(makeAddr(0, 0, 1, 1), First, false);
  EXPECT_EQ(Dram.stats().RowHits, 1u);
  EXPECT_EQ(Second - First,
            DramConfig().RowHitLatency + DramConfig().BusCyclesPerLine);
}

TEST(Dram, RowConflictReopens) {
  DramSystem Dram;
  Cycle First = Dram.access(makeAddr(0, 0, 1), 0, false);
  Dram.access(makeAddr(0, 0, 2), First, false); // Different row, same bank.
  EXPECT_EQ(Dram.stats().RowMisses, 2u);
}

TEST(Dram, ChannelBusSerializes) {
  DramSystem Dram;
  // Two simultaneous accesses to different banks of the same channel: the
  // second's data must wait for the shared channel bus.
  Cycle A = Dram.access(makeAddr(1, 0, 0), 0, false);
  Cycle B = Dram.access(makeAddr(1, 1, 0), 0, false);
  EXPECT_GE(B, A + DramConfig().BusCyclesPerLine);
}

TEST(Dram, DifferentChannelsAreParallel) {
  DramSystem Dram;
  Cycle A = Dram.access(makeAddr(0, 0, 0), 0, false);
  Cycle B = Dram.access(makeAddr(1, 0, 0), 0, false);
  EXPECT_EQ(A, B); // Identical uncontended paths.
}

TEST(Dram, QueueDelayIsCapped) {
  DramConfig Config;
  Config.MaxQueueDelay = 100;
  DramSystem Dram(Config);
  // A request far in the future ratchets the busy state.
  Dram.access(makeAddr(0, 0, 0), 1000000, false);
  // An "early" request (skewed timeline) must not wait a million cycles.
  Cycle Done = Dram.access(makeAddr(0, 0, 0, 1), 0, false);
  EXPECT_LE(Done, 0 + Config.MaxQueueDelay * 2 + Config.RowMissLatency +
                      Config.BusCyclesPerLine);
}

TEST(Dram, StatsCountBytes) {
  DramSystem Dram;
  Dram.access(0, 0, false);
  Dram.access(64, 0, true);
  EXPECT_EQ(Dram.stats().Reads, 1u);
  EXPECT_EQ(Dram.stats().Writes, 1u);
  EXPECT_EQ(Dram.stats().BytesTransferred, 128u);
}

//===----------------------------------------------------------------------===//
// FR-FCFS batch scheduling.
//===----------------------------------------------------------------------===//

TEST(DramFrFcfs, DrainServicesEverything) {
  DramSystem Dram;
  for (unsigned I = 0; I != 16; ++I)
    Dram.enqueue(64 * I, false);
  EXPECT_EQ(Dram.queuedRequests(), 16u);
  Cycle Finish = Dram.drainFrFcfs(0);
  EXPECT_EQ(Dram.queuedRequests(), 0u);
  EXPECT_GT(Finish, 0u);
  EXPECT_EQ(Dram.stats().Reads, 16u);
}

TEST(DramFrFcfs, RowHitsServedBeforeOlderMisses) {
  DramSystem Dram;
  // Open row 5 in (ch0, bank0).
  Dram.access(makeAddr(0, 0, 5), 0, false);
  Dram.resetStats();
  // Queue: first a conflicting row, then a row-5 hit. FR-FCFS serves the
  // row hit first, so row 5 stays open for it and only ONE miss occurs
  // (the conflicting row afterwards). FCFS order would close row 5 first
  // and pay two misses.
  Dram.enqueue(makeAddr(0, 0, 9), false);
  Dram.enqueue(makeAddr(0, 0, 5, 1), false);
  Dram.drainFrFcfs(0);
  EXPECT_EQ(Dram.stats().RowHits, 1u);
  EXPECT_EQ(Dram.stats().RowMisses, 1u);
}

TEST(DramFrFcfs, StreamingBatchMostlyRowHits) {
  DramSystem Dram;
  // 256 sequential lines = 16KB: within each bank the lines fall in one
  // row, so after the first activation per bank everything hits.
  for (unsigned I = 0; I != 256; ++I)
    Dram.enqueue(64 * I, false);
  Dram.drainFrFcfs(0);
  EXPECT_GT(Dram.stats().rowHitRate(), 0.85);
}

TEST(DramFrFcfs, BatchStatsTrackDrainsAndQueueDepth) {
  DramSystem Dram;
  for (unsigned I = 0; I != 16; ++I)
    Dram.enqueue(64 * I, false);
  EXPECT_EQ(Dram.stats().PeakQueueDepth, 16u);
  Dram.drainFrFcfs(0);
  EXPECT_EQ(Dram.stats().BatchDrains, 1u);
  EXPECT_EQ(Dram.stats().BatchedRequests, 16u);
  // Draining an empty queue does no work and counts no drain.
  Dram.drainFrFcfs(1000);
  EXPECT_EQ(Dram.stats().BatchDrains, 1u);
  // The high-water mark persists across drains and only grows.
  Dram.enqueue(0, false);
  EXPECT_EQ(Dram.stats().PeakQueueDepth, 16u);
  Dram.drainFrFcfs(2000);
  EXPECT_EQ(Dram.stats().BatchDrains, 2u);
  EXPECT_EQ(Dram.stats().BatchedRequests, 17u);
}

TEST(DramFrFcfs, ParallelChannelsBeatSingleChannel) {
  // The same 64 lines spread over 4 channels finish faster than crammed
  // into one channel.
  DramSystem Spread;
  for (unsigned I = 0; I != 64; ++I)
    Spread.enqueue(64 * I, false); // Interleaves channels 0..3.
  Cycle SpreadFinish = Spread.drainFrFcfs(0);

  DramSystem Single;
  for (unsigned I = 0; I != 64; ++I)
    Single.enqueue(makeAddr(0, 0, 0, I % 128), false); // All channel 0.
  Cycle SingleFinish = Single.drainFrFcfs(0);

  EXPECT_LT(SpreadFinish, SingleFinish);
}

TEST(DramFrFcfs, EmptyDrainIsFree) {
  DramSystem Dram;
  EXPECT_EQ(Dram.drainFrFcfs(123), 123u);
}

//===----------------------------------------------------------------------===//
// Page policy.
//===----------------------------------------------------------------------===//

TEST(DramPagePolicy, ClosedPageNeverRowHits) {
  DramConfig Config;
  Config.ClosedPage = true;
  DramSystem Dram(Config);
  Cycle Now = 0;
  for (unsigned I = 0; I != 8; ++I)
    Now = Dram.access(makeAddr(0, 0, 1, I), Now, false);
  EXPECT_EQ(Dram.stats().RowHits, 0u);
  EXPECT_EQ(Dram.stats().RowMisses, 8u);
}

TEST(DramPagePolicy, ClosedPageBeatsOpenPageOnRandomRows) {
  // Random-row traffic: open-page pays full conflicts, closed-page pays
  // the cheaper activate-only path every time.
  auto RunRandom = [](bool Closed) {
    DramConfig Config;
    Config.ClosedPage = Closed;
    DramSystem Dram(Config);
    XorShiftRng Rng(5);
    Cycle Now = 0;
    for (unsigned I = 0; I != 512; ++I)
      Now = Dram.access(makeAddr(0, 0, Rng.nextBelow(512)), Now, false);
    return Now;
  };
  EXPECT_LT(RunRandom(true), RunRandom(false));
}

TEST(DramPagePolicy, OpenPageBeatsClosedPageOnStreams) {
  auto RunStream = [](bool Closed) {
    DramConfig Config;
    Config.ClosedPage = Closed;
    DramSystem Dram(Config);
    Cycle Now = 0;
    for (unsigned I = 0; I != 512; ++I)
      Now = Dram.access(makeAddr(0, 0, 0, I % 128), Now, false);
    return Now;
  };
  EXPECT_LT(RunStream(false), RunStream(true));
}
