//===- tests/sweep_test.cpp - SweepRunner + determinism tests -------------===//
///
/// \file
/// The parallel sweep engine must be a drop-in replacement for the serial
/// experiment loops: same results, in submission order, at any job count.
/// The figure-level determinism tests assert byte-identical rendered
/// tables between jobs=1 and jobs=8.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/HeteroSimulator.h"
#include "trace/TraceCache.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace hetsim;

namespace {

std::vector<SweepPoint> smallGrid() {
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : {CaseStudy::IdealHetero, CaseStudy::CpuGpu})
    for (KernelId Kernel : {KernelId::Reduction, KernelId::MergeSort})
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);
  return Points;
}

TEST(SweepRunner, MatchesSerialSimulation) {
  std::vector<SweepPoint> Points = smallGrid();
  SweepRunner Runner(2);
  std::vector<RunResult> Parallel = Runner.run(Points);
  ASSERT_EQ(Parallel.size(), Points.size());
  for (size_t I = 0; I != Points.size(); ++I) {
    SystemConfig Config = Points[I].Config;
    Config.applyOverrides(Points[I].Overrides);
    HeteroSimulator Simulator(Config);
    RunResult Serial = Simulator.run(Points[I].Kernel);
    EXPECT_DOUBLE_EQ(Parallel[I].Time.totalNs(), Serial.Time.totalNs())
        << "point " << I;
    EXPECT_EQ(Parallel[I].TransferredBytes, Serial.TransferredBytes);
    EXPECT_EQ(Parallel[I].PageFaults, Serial.PageFaults);
  }
}

TEST(SweepRunner, ResultsInSubmissionOrderAcrossJobCounts) {
  std::vector<SweepPoint> Points = smallGrid();
  SweepRunner Serial(1);
  SweepRunner Wide(8);
  std::vector<RunResult> A = Serial.run(Points);
  std::vector<RunResult> B = Wide.run(Points);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_DOUBLE_EQ(A[I].Time.totalNs(), B[I].Time.totalNs());
    EXPECT_EQ(A[I].TransferredBytes, B[I].TransferredBytes);
    EXPECT_EQ(A[I].OwnershipActions, B[I].OwnershipActions);
  }
}

TEST(SweepRunner, CommOverridesBakedIntoConfigSurvive) {
  // Regression: SweepRunner must not reset comm.* params that were baked
  // into the config via forCaseStudy(Study, Overrides) — applyOverrides
  // with an empty store would rebuild CommParams at Table IV defaults.
  ConfigStore Overrides;
  Overrides.setInt("comm.lib_pf", 0);
  std::vector<SweepPoint> Points;
  Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Lrb),
                      KernelId::Reduction);
  Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Lrb, Overrides),
                      KernelId::Reduction);
  SweepRunner Runner(1);
  std::vector<RunResult> Results = Runner.run(Points);
  EXPECT_LT(Results[1].Time.CommunicationNs, Results[0].Time.CommunicationNs);
}

TEST(SweepRunner, PointOverridesApply) {
  // Overrides carried in the SweepPoint itself must also take effect.
  ConfigStore Overrides;
  Overrides.setInt("comm.lib_pf", 168000);
  std::vector<SweepPoint> Points;
  Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Lrb),
                      KernelId::Reduction);
  Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Lrb),
                      KernelId::Reduction, Overrides);
  SweepRunner Runner(1);
  std::vector<RunResult> Results = Runner.run(Points);
  EXPECT_GT(Results[1].Time.CommunicationNs, Results[0].Time.CommunicationNs);
}

TEST(SweepRunner, TelemetryCountsPoints) {
  std::vector<SweepPoint> Points = smallGrid();
  SweepRunner Runner(2);
  Runner.run(Points);
  const SweepTelemetry &T = Runner.telemetry();
  EXPECT_EQ(T.Points, Points.size());
  EXPECT_EQ(T.Jobs, 2u);
  EXPECT_GT(T.WallSeconds, 0.0);
  EXPECT_GT(T.SimNsTotal, 0.0);
  EXPECT_GT(T.pointsPerSecond(), 0.0);
}

TEST(SweepRunner, TelemetryMergeAccumulates) {
  SweepTelemetry A, B;
  A.Jobs = 2;
  A.Points = 3;
  A.WallSeconds = 1.5;
  A.CacheHits = 4;
  A.BusySeconds = 1.25;
  A.LockWaitSeconds = 0.25;
  A.StoreHits = 2;
  B.Jobs = 4;
  B.Points = 7;
  B.WallSeconds = 0.5;
  B.CacheMisses = 6;
  B.BusySeconds = 0.75;
  B.LockWaitSeconds = 0.05;
  B.StoreMisses = 5;
  A.merge(B);
  EXPECT_EQ(A.Jobs, 4u);
  EXPECT_EQ(A.Points, 10u);
  EXPECT_DOUBLE_EQ(A.WallSeconds, 2.0);
  EXPECT_EQ(A.CacheHits, 4u);
  EXPECT_EQ(A.CacheMisses, 6u);
  EXPECT_DOUBLE_EQ(A.BusySeconds, 2.0);
  EXPECT_DOUBLE_EQ(A.LockWaitSeconds, 0.3);
  EXPECT_EQ(A.StoreHits, 2u);
  EXPECT_EQ(A.StoreMisses, 5u);
}

TEST(SweepRunner, PhaseSecondsNormalizePerWorker) {
  // The old formula (wall - gen, clamped at 0) reported simulate=0 the
  // moment summed per-thread gen time exceeded the wall clock — exactly
  // what happens on an oversubscribed host. The normalized form scales
  // phase shares of busy time into wall seconds instead.
  SweepTelemetry T;
  T.WallSeconds = 1.0;
  T.BusySeconds = 4.0; // 4 workers, fully busy.
  T.TraceGenSeconds = 3.0;
  T.LockWaitSeconds = 0.5;
  EXPECT_DOUBLE_EQ(T.traceGenWallSeconds(), 0.75);
  EXPECT_DOUBLE_EQ(T.lockWaitWallSeconds(), 0.125);
  EXPECT_DOUBLE_EQ(T.simulateSeconds(), 0.125);
  // Serial reduction: busy == wall, so the phases are plain seconds.
  SweepTelemetry S;
  S.WallSeconds = 2.0;
  S.BusySeconds = 2.0;
  S.TraceGenSeconds = 0.5;
  EXPECT_DOUBLE_EQ(S.traceGenWallSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(S.simulateSeconds(), 1.5);
  // A phase share can never exceed the wall clock.
  SweepTelemetry O;
  O.WallSeconds = 1.0;
  O.BusySeconds = 2.0;
  O.TraceGenSeconds = 3.0; // inconsistent input: clamp to wall, not 0.
  EXPECT_DOUBLE_EQ(O.traceGenWallSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(O.simulateSeconds(), 0.0);
}

TEST(SweepRunner, TelemetryAttributesBusyAndSimulateTime) {
  std::vector<SweepPoint> Points = smallGrid();
  SweepRunner Runner(2);
  Runner.run(Points);
  const SweepTelemetry &T = Runner.telemetry();
  EXPECT_GT(T.BusySeconds, 0.0);
  // The simulate share must survive parallel gen attribution (the
  // clamp-to-0 regression), and the three phases partition the wall.
  EXPECT_GT(T.simulateSeconds(), 0.0);
  EXPECT_LE(T.traceGenWallSeconds() + T.lockWaitWallSeconds() +
                T.simulateSeconds(),
            T.WallSeconds * 1.0001);
  EXPECT_GE(T.TraceGenSeconds, 0.0);
  EXPECT_GE(T.LockWaitSeconds, 0.0);
  // No result store configured: counters stay zero.
  EXPECT_EQ(T.StoreHits, 0u);
  EXPECT_EQ(T.StoreMisses, 0u);
}

TEST(SweepRunner, AppendBenchTimingWritesJsonLine) {
  std::string Path = ::testing::TempDir() + "hetsim_timing_test.json";
  std::remove(Path.c_str());
  ::setenv("HETSIM_TIMING_JSON", Path.c_str(), 1);
  SweepTelemetry T;
  T.Jobs = 2;
  T.Points = 4;
  T.WallSeconds = 0.25;
  T.SimNsTotal = 1000.0;
  T.CacheHits = 3;
  T.CacheMisses = 1;
  bool Ok = appendBenchTiming("unit", T);
  ::unsetenv("HETSIM_TIMING_JSON");
  ASSERT_TRUE(Ok);
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Line = Buffer.str();
  EXPECT_NE(Line.find("\"bench\":\"unit\""), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"points\":4"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"jobs\":2"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"wall_s\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"points_per_s\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"cache_hit_rate\":"), std::string::npos) << Line;
  // Schema evolution: the new keys append after "simulate_s" so existing
  // line parsers keep matching the prefix.
  EXPECT_NE(Line.find("\"lock_wait_s\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"store_hits\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"store_misses\":"), std::string::npos) << Line;
  EXPECT_LT(Line.find("\"simulate_s\":"), Line.find("\"lock_wait_s\":"))
      << Line;
  std::remove(Path.c_str());
}

TEST(TraceCache, RepeatedSweepHitsCache) {
  TraceCache &Cache = TraceCache::global();
  if (!Cache.enabled())
    GTEST_SKIP() << "HETSIM_TRACE_CACHE=0 set in environment";
  std::vector<SweepPoint> Points;
  for (int I = 0; I != 3; ++I)
    Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::IdealHetero),
                        KernelId::Reduction);
  SweepRunner Runner(1);
  Runner.run(Points);
  // Identical (kernel, layout, split) points share generated traces, so at
  // most the first point misses.
  EXPECT_GE(Runner.telemetry().CacheHits, 2u * Points.size() - 2);
}

// Figure-level determinism: the rendered tables feeding the paper's
// Figures 5-7 must be byte-identical between the serial and the widest
// parallel harness.
TEST(Determinism, Figures5And6AreJobCountInvariant) {
  std::vector<ExperimentRow> Serial = runCaseStudies({}, 1);
  std::vector<ExperimentRow> Wide = runCaseStudies({}, 8);
  EXPECT_EQ(renderFigure5(Serial).render(), renderFigure5(Wide).render());
  EXPECT_EQ(renderFigure6(Serial).render(), renderFigure6(Wide).render());
}

TEST(Determinism, Figure7IsJobCountInvariant) {
  std::vector<ExperimentRow> Serial = runAddressSpaceStudy({}, 1);
  std::vector<ExperimentRow> Wide = runAddressSpaceStudy({}, 8);
  EXPECT_EQ(renderFigure7(Serial).render(), renderFigure7(Wide).render());
}

TEST(Determinism, PartitionSweepIsJobCountInvariant) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  std::vector<PartitionPoint> Serial =
      sweepPartition(Config, KernelId::Reduction, 10, 1);
  std::vector<PartitionPoint> Wide =
      sweepPartition(Config, KernelId::Reduction, 10, 8);
  ASSERT_EQ(Serial.size(), Wide.size());
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_DOUBLE_EQ(Serial[I].CpuFraction, Wide[I].CpuFraction);
    EXPECT_DOUBLE_EQ(Serial[I].TotalNs, Wide[I].TotalNs);
    EXPECT_DOUBLE_EQ(Serial[I].ParallelNs, Wide[I].ParallelNs);
  }
}

} // namespace
