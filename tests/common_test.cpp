//===- tests/common_test.cpp - common/ unit tests -------------------------===//

#include "common/Config.h"
#include "common/Random.h"
#include "common/Stats.h"
#include "common/StringUtil.h"
#include "common/TextTable.h"
#include "common/Types.h"
#include "common/Units.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Types helpers.
//===----------------------------------------------------------------------===//

TEST(Types, AlignHelpers) {
  EXPECT_EQ(alignUp(0, 64), 0u);
  EXPECT_EQ(alignUp(1, 64), 64u);
  EXPECT_EQ(alignUp(64, 64), 64u);
  EXPECT_EQ(alignUp(65, 64), 128u);
  EXPECT_EQ(alignDown(63, 64), 0u);
  EXPECT_EQ(alignDown(64, 64), 64u);
  EXPECT_EQ(alignDown(127, 64), 64u);
}

TEST(Types, PowerOf2AndLog2) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(64));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(96));
  EXPECT_EQ(log2Exact(1), 0u);
  EXPECT_EQ(log2Exact(64), 6u);
  EXPECT_EQ(log2Exact(4096), 12u);
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceilDiv(0, 4), 0u);
  EXPECT_EQ(ceilDiv(1, 4), 1u);
  EXPECT_EQ(ceilDiv(4, 4), 1u);
  EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(Types, PuHelpers) {
  EXPECT_STREQ(puKindName(PuKind::Cpu), "CPU");
  EXPECT_STREQ(puKindName(PuKind::Gpu), "GPU");
  EXPECT_EQ(otherPu(PuKind::Cpu), PuKind::Gpu);
  EXPECT_EQ(otherPu(PuKind::Gpu), PuKind::Cpu);
  EXPECT_EQ(puIndex(PuKind::Cpu), 0u);
  EXPECT_EQ(puIndex(PuKind::Gpu), 1u);
}

//===----------------------------------------------------------------------===//
// Units: clock-domain conversion.
//===----------------------------------------------------------------------===//

TEST(Units, CyclesToNs) {
  // 3.5 cycles per ns on the CPU; 1.5 on the GPU.
  EXPECT_DOUBLE_EQ(cyclesToNs(PuKind::Cpu, 3500), 1000.0);
  EXPECT_DOUBLE_EQ(cyclesToNs(PuKind::Gpu, 1500), 1000.0);
}

TEST(Units, NsToCyclesRoundsUp) {
  EXPECT_EQ(nsToCycles(PuKind::Cpu, 1.0), 4u);  // 3.5 -> 4.
  EXPECT_EQ(nsToCycles(PuKind::Cpu, 2.0), 7u);  // Exactly 7.
  EXPECT_EQ(nsToCycles(PuKind::Gpu, 1.0), 2u);  // 1.5 -> 2.
}

TEST(Units, ConvertCyclesBetweenDomains) {
  // 7 CPU cycles = 2ns = exactly 3 GPU cycles.
  EXPECT_EQ(convertCycles(PuKind::Cpu, PuKind::Gpu, 7), 3u);
  // 3 GPU cycles = 2ns = exactly 7 CPU cycles.
  EXPECT_EQ(convertCycles(PuKind::Gpu, PuKind::Cpu, 3), 7u);
  // Identity.
  EXPECT_EQ(convertCycles(PuKind::Cpu, PuKind::Cpu, 123), 123u);
}

TEST(Units, TransferCycles) {
  // 16 bytes at 16GB/s = 1ns = 3.5 CPU cycles -> rounds to 4.
  EXPECT_EQ(transferCycles(PuKind::Cpu, 16, 16e9), 4u);
  // 0 bytes costs 0.
  EXPECT_EQ(transferCycles(PuKind::Cpu, 0, 16e9), 0u);
}

//===----------------------------------------------------------------------===//
// ConfigStore.
//===----------------------------------------------------------------------===//

TEST(Config, TypedAccessors) {
  ConfigStore Config;
  Config.setInt("a", 42);
  Config.setDouble("b", 2.5);
  Config.setBool("c", true);
  Config.set("d", "hello");
  EXPECT_EQ(Config.getInt("a", 0), 42);
  EXPECT_DOUBLE_EQ(Config.getDouble("b", 0), 2.5);
  EXPECT_TRUE(Config.getBool("c", false));
  EXPECT_EQ(Config.getString("d", ""), "hello");
}

TEST(Config, DefaultsForMissingKeys) {
  ConfigStore Config;
  EXPECT_EQ(Config.getInt("missing", -7), -7);
  EXPECT_EQ(Config.getUInt("missing", 9), 9u);
  EXPECT_FALSE(Config.getBool("missing", false));
  EXPECT_FALSE(Config.has("missing"));
}

TEST(Config, ParseAssignment) {
  ConfigStore Config;
  EXPECT_TRUE(Config.parseAssignment("  key = 17 "));
  EXPECT_EQ(Config.getInt("key", 0), 17);
  EXPECT_FALSE(Config.parseAssignment("no-equals-sign"));
  EXPECT_FALSE(Config.parseAssignment("=value"));
}

TEST(Config, ParseLinesWithComments) {
  ConfigStore Config;
  unsigned Applied = Config.parseLines("a=1\n# comment\nb=2 # trailing\n\n");
  EXPECT_EQ(Applied, 2u);
  EXPECT_EQ(Config.getInt("a", 0), 1);
  EXPECT_EQ(Config.getInt("b", 0), 2);
}

TEST(Config, MergeOtherWins) {
  ConfigStore A, B;
  A.setInt("x", 1);
  A.setInt("y", 2);
  B.setInt("y", 20);
  A.mergeFrom(B);
  EXPECT_EQ(A.getInt("x", 0), 1);
  EXPECT_EQ(A.getInt("y", 0), 20);
}

TEST(Config, KeysSorted) {
  ConfigStore Config;
  Config.setInt("zebra", 1);
  Config.setInt("alpha", 2);
  auto Keys = Config.keys();
  ASSERT_EQ(Keys.size(), 2u);
  EXPECT_EQ(Keys[0], "alpha");
  EXPECT_EQ(Keys[1], "zebra");
}

TEST(Config, HexValues) {
  ConfigStore Config;
  Config.set("addr", "0x40");
  EXPECT_EQ(Config.getInt("addr", 0), 64);
}

//===----------------------------------------------------------------------===//
// Stats.
//===----------------------------------------------------------------------===//

TEST(Stats, CountersDefaultZero) {
  StatRegistry Stats;
  EXPECT_EQ(Stats.counter("never.set"), 0u);
}

TEST(Stats, IncrementAndSet) {
  StatRegistry Stats;
  Stats.increment("hits");
  Stats.increment("hits", 4);
  EXPECT_EQ(Stats.counter("hits"), 5u);
  Stats.setCounter("hits", 2);
  EXPECT_EQ(Stats.counter("hits"), 2u);
}

TEST(Stats, PrefixQuery) {
  StatRegistry Stats;
  Stats.increment("l1.hits", 3);
  Stats.increment("l1.misses", 1);
  Stats.increment("l2.hits", 7);
  auto L1 = Stats.countersWithPrefix("l1.");
  ASSERT_EQ(L1.size(), 2u);
  EXPECT_EQ(L1[0].first, "l1.hits");
  EXPECT_EQ(L1[1].first, "l1.misses");
}

TEST(Stats, Distribution) {
  StatRegistry Stats;
  Stats.addSample("lat", 10.0);
  Stats.addSample("lat", 30.0);
  Stats.addSample("lat", 20.0);
  const StatDistribution &D = Stats.distribution("lat");
  EXPECT_EQ(D.count(), 3u);
  EXPECT_DOUBLE_EQ(D.min(), 10.0);
  EXPECT_DOUBLE_EQ(D.max(), 30.0);
  EXPECT_DOUBLE_EQ(D.mean(), 20.0);
}

TEST(Stats, EmptyDistribution) {
  StatRegistry Stats;
  const StatDistribution &D = Stats.distribution("nothing");
  EXPECT_EQ(D.count(), 0u);
  EXPECT_DOUBLE_EQ(D.mean(), 0.0);
}

TEST(Stats, RenderCounters) {
  StatRegistry Stats;
  Stats.increment("a", 1);
  Stats.increment("b", 2);
  EXPECT_EQ(Stats.renderCounters(), "a = 1\nb = 2\n");
}

//===----------------------------------------------------------------------===//
// StringUtil.
//===----------------------------------------------------------------------===//

TEST(StringUtil, Split) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtil, Formatters) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(0.1234, 1), "12.3%");
  EXPECT_EQ(formatBytes(32 * 1024), "32KB");
  EXPECT_EQ(formatBytes(8ull << 20), "8MB");
  EXPECT_EQ(formatBytes(100), "100B");
  EXPECT_EQ(formatCount(1234567), "1,234,567");
  EXPECT_EQ(formatCount(12), "12");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(startsWith("hetsim.cache", "hetsim"));
  EXPECT_FALSE(startsWith("het", "hetsim"));
}

//===----------------------------------------------------------------------===//
// TextTable.
//===----------------------------------------------------------------------===//

TEST(TextTable, AlignsColumns) {
  TextTable Table({"name", "value"});
  Table.addRow({"x", "1"});
  Table.addRow({"longer", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("name    value"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable Table({"a", "b"});
  Table.addRow({"1", "2"});
  EXPECT_EQ(Table.renderCsv(), "a,b\n1,2\n");
}

TEST(TextTable, ShortRowsPadded) {
  TextTable Table({"a", "b", "c"});
  Table.addRow({"only"});
  EXPECT_EQ(Table.rowCount(), 1u);
  std::string Csv = Table.renderCsv();
  EXPECT_NE(Csv.find("only,,"), std::string::npos);
}

TEST(TextTable, NumericRow) {
  TextTable Table({"k", "v1", "v2"});
  Table.addNumericRow("row", {1.5, 2.25}, 2);
  EXPECT_NE(Table.renderCsv().find("row,1.50,2.25"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Logger.
//===----------------------------------------------------------------------===//

#include "common/Log.h"

TEST(Logger, LevelRoundTrips) {
  LogLevel Before = Logger::level();
  Logger::setLevel(LogLevel::Debug);
  EXPECT_EQ(Logger::level(), LogLevel::Debug);
  Logger::setLevel(LogLevel::Quiet);
  EXPECT_EQ(Logger::level(), LogLevel::Quiet);
  // Emitting below the threshold must be a no-op (and not crash).
  HETSIM_DEBUG("suppressed %d", 42);
  Logger::setLevel(Before);
}

//===----------------------------------------------------------------------===//
// AsciiChart.
//===----------------------------------------------------------------------===//

#include "common/AsciiChart.h"

TEST(AsciiChart, BarsScaleToMax) {
  std::string Out = renderBarChart({{"big", 100.0}, {"half", 50.0}}, 10);
  // The largest bar uses the full width; the half bar uses half.
  EXPECT_NE(Out.find("big  |##########"), std::string::npos);
  EXPECT_NE(Out.find("half |#####"), std::string::npos);
  EXPECT_NE(Out.find("100.0"), std::string::npos);
}

TEST(AsciiChart, ZeroValuesDrawNothing) {
  std::string Out = renderBarChart({{"a", 0.0}, {"b", 0.0}}, 10);
  EXPECT_EQ(Out.find('#'), std::string::npos);
}

TEST(AsciiChart, UnitAppended) {
  std::string Out = renderBarChart({{"x", 3.0}}, 5, "us");
  EXPECT_NE(Out.find("3.0us"), std::string::npos);
}

TEST(AsciiChart, StackedBarsUseDistinctGlyphs) {
  std::vector<StackedBar> Bars = {{"run", {2.0, 2.0, 2.0}}};
  std::string Out =
      renderStackedBarChart(Bars, {"a", "b", "c"}, "#=.", 12);
  EXPECT_NE(Out.find("####===="), std::string::npos);
  EXPECT_NE(Out.find("...."), std::string::npos);
  EXPECT_NE(Out.find("legend: #=a ==b .=c"), std::string::npos);
  EXPECT_NE(Out.find("6.0"), std::string::npos);
}

TEST(AsciiChart, StackedBarsShareScale) {
  std::vector<StackedBar> Bars = {{"big", {10.0}}, {"small", {5.0}}};
  std::string Out = renderStackedBarChart(Bars, {"only"}, "#", 10);
  EXPECT_NE(Out.find("big   |##########"), std::string::npos);
  EXPECT_NE(Out.find("small |#####"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Random.
//===----------------------------------------------------------------------===//

TEST(Random, Deterministic) {
  XorShiftRng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, SeedsDiffer) {
  XorShiftRng A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Random, BoundsRespected) {
  XorShiftRng Rng(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(17), 17u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, BoolProbabilityRoughlyCorrect) {
  XorShiftRng Rng(99);
  int True = 0;
  const int N = 10000;
  for (int I = 0; I != N; ++I)
    True += Rng.nextBool(0.25);
  EXPECT_NEAR(double(True) / N, 0.25, 0.03);
}

TEST(Random, ZeroSeedRemapped) {
  XorShiftRng Rng(0); // A zero state would be a fixed point; must not be.
  EXPECT_NE(Rng.next(), 0u);
}
