//===- tests/memory_test.cpp - memory/ unit tests -------------------------===//

#include "memory/AddressSpaceModel.h"
#include "memory/FirstTouchTracker.h"
#include "memory/MemorySystem.h"
#include "memory/Ownership.h"
#include "memory/PageTable.h"
#include "memory/Tlb.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// PhysicalMemory + PageTable.
//===----------------------------------------------------------------------===//

TEST(PhysicalMemory, BumpAllocatorAligns) {
  PhysicalMemory Device("test", 1 << 20);
  Addr A = Device.allocate(100, 64);
  Addr B = Device.allocate(100, 64);
  EXPECT_EQ(A % 64, 0u);
  EXPECT_EQ(B % 64, 0u);
  EXPECT_GE(B, A + 100);
}

TEST(PhysicalMemoryDeath, ExhaustionAborts) {
  PhysicalMemory Device("tiny", 128);
  Device.allocate(100, 64);
  EXPECT_DEATH(Device.allocate(100, 64), "exhausted");
}

TEST(PageTable, MapAndTranslate) {
  PhysicalMemory Device("test", 1 << 20);
  PageTable Pt(PuKind::Cpu, 4096);
  Pt.mapRange(0x10000000, 10000, Device);
  EXPECT_EQ(Pt.mappedPages(), 3u); // 10000B spans 3 pages.
  auto Pa = Pt.translate(0x10000000 + 5000);
  ASSERT_TRUE(Pa.has_value());
  // Offset within the page is preserved.
  EXPECT_EQ(*Pa % 4096, 5000u % 4096);
  EXPECT_FALSE(Pt.translate(0x20000000).has_value());
}

TEST(PageTable, RemapKeepsExistingPages) {
  PhysicalMemory Device("test", 1 << 20);
  PageTable Pt(PuKind::Cpu, 4096);
  Pt.mapRange(0x1000, 4096, Device);
  Addr First = *Pt.translate(0x1000);
  Pt.mapRange(0x1000, 8192, Device); // Overlapping remap.
  EXPECT_EQ(*Pt.translate(0x1000), First);
  EXPECT_EQ(Pt.mappedPages(), 2u); // [0x1000, 0x3000) spans pages 1 and 2.
}

TEST(PageTable, UnmapRange) {
  PhysicalMemory Device("test", 1 << 20);
  PageTable Pt(PuKind::Cpu, 4096);
  Pt.mapRange(0, 3 * 4096, Device);
  Pt.unmapRange(4096, 4096);
  EXPECT_TRUE(Pt.isMapped(0));
  EXPECT_FALSE(Pt.isMapped(4096));
  EXPECT_TRUE(Pt.isMapped(2 * 4096));
}

TEST(PageTable, LargePagesCoverMoreWithFewerEntries) {
  PhysicalMemory Device("test", 1 << 24);
  PageTable Small(PuKind::Cpu, 4096);
  PageTable Large(PuKind::Gpu, 65536);
  Small.mapRange(0, 1 << 20, Device);
  Large.mapRange(0, 1 << 20, Device);
  EXPECT_EQ(Small.mappedPages(), 256u);
  EXPECT_EQ(Large.mappedPages(), 16u);
}

//===----------------------------------------------------------------------===//
// TLB.
//===----------------------------------------------------------------------===//

TEST(Tlb, MissThenHit) {
  Tlb T(64, 4, 4096);
  EXPECT_FALSE(T.lookup(0x1000));
  EXPECT_TRUE(T.lookup(0x1000));
  EXPECT_TRUE(T.lookup(0x1FFF)); // Same page.
  EXPECT_FALSE(T.lookup(0x2000)); // Next page.
  EXPECT_EQ(T.stats().Misses, 2u);
  EXPECT_EQ(T.stats().Hits, 2u);
}

TEST(Tlb, LruWithinSet) {
  // 4 entries, 2 ways, 2 sets: pages 0,2,4 share set 0.
  Tlb T(4, 2, 4096);
  T.lookup(0 * 4096);
  T.lookup(2 * 4096);
  T.lookup(0 * 4096);      // Touch page 0.
  T.lookup(4 * 4096);      // Evicts page 2.
  EXPECT_TRUE(T.lookup(0 * 4096));
  EXPECT_FALSE(T.lookup(2 * 4096));
}

TEST(Tlb, FlushInvalidatesAll) {
  Tlb T(64, 4, 4096);
  T.lookup(0x1000);
  T.flush();
  EXPECT_FALSE(T.lookup(0x1000));
}

TEST(Tlb, LargePagesReduceMisses) {
  Tlb Small(32, 4, 4096);
  Tlb Large(32, 4, 65536);
  for (Addr A = 0; A < (1 << 20); A += 4096) {
    Small.lookup(A);
    Large.lookup(A);
  }
  EXPECT_GT(Small.stats().Misses, Large.stats().Misses);
}

//===----------------------------------------------------------------------===//
// Address-space models (Section II-A / Figure 1).
//===----------------------------------------------------------------------===//

TEST(AddressSpace, Names) {
  EXPECT_STREQ(addressSpaceShortName(AddressSpaceKind::Unified), "UNI");
  EXPECT_STREQ(addressSpaceShortName(AddressSpaceKind::PartiallyShared),
               "PAS");
  EXPECT_STREQ(addressSpaceShortName(AddressSpaceKind::Disjoint), "DIS");
  EXPECT_STREQ(addressSpaceShortName(AddressSpaceKind::Adsm), "ADSM");
}

TEST(AddressSpace, RegionClassification) {
  EXPECT_EQ(regionOf(region::CpuPrivateBase), MemRegion::CpuPrivate);
  EXPECT_EQ(regionOf(region::GpuPrivateBase + 100), MemRegion::GpuPrivate);
  EXPECT_EQ(regionOf(region::SharedBase + 4096), MemRegion::Shared);
  EXPECT_EQ(regionOf(0x0), MemRegion::Unknown);
}

TEST(AddressSpace, UnifiedLayoutsIdentical) {
  Placement P = AddressSpaceModel::forKind(AddressSpaceKind::Unified)
                    .place(KernelId::Reduction);
  ASSERT_EQ(P.CpuLayout.segments().size(), P.GpuLayout.segments().size());
  for (size_t I = 0; I != P.CpuLayout.segments().size(); ++I)
    EXPECT_EQ(P.CpuLayout.segments()[I].Base,
              P.GpuLayout.segments()[I].Base);
  EXPECT_EQ(P.SharedObjects.size(), 3u);
  EXPECT_EQ(P.DuplicatedBytes, 0u);
}

TEST(AddressSpace, DisjointDuplicatesIntoGpuSpace) {
  Placement P = AddressSpaceModel::forKind(AddressSpaceKind::Disjoint)
                    .place(KernelId::Reduction);
  for (const DataSegment &S : P.CpuLayout.segments())
    EXPECT_EQ(regionOf(S.Base), MemRegion::CpuPrivate);
  for (const DataSegment &S : P.GpuLayout.segments())
    EXPECT_EQ(regionOf(S.Base), MemRegion::GpuPrivate);
  EXPECT_TRUE(P.SharedObjects.empty());
  EXPECT_EQ(P.DuplicatedBytes, P.GpuLayout.totalBytes());
}

TEST(AddressSpace, PartiallySharedPlacesInSharedRegion) {
  Placement P =
      AddressSpaceModel::forKind(AddressSpaceKind::PartiallyShared)
          .place(KernelId::KMeans);
  for (const DataSegment &S : P.CpuLayout.segments())
    EXPECT_EQ(regionOf(S.Base), MemRegion::Shared);
  EXPECT_TRUE(P.isShared("points"));
  EXPECT_TRUE(P.isShared("centroids"));
  EXPECT_FALSE(P.isShared("nonexistent"));
}

TEST(AddressSpace, AccessRules) {
  const AddressSpaceModel &Unified =
      AddressSpaceModel::forKind(AddressSpaceKind::Unified);
  const AddressSpaceModel &Disjoint =
      AddressSpaceModel::forKind(AddressSpaceKind::Disjoint);
  const AddressSpaceModel &Adsm =
      AddressSpaceModel::forKind(AddressSpaceKind::Adsm);

  // Unified: everything accessible from both PUs.
  EXPECT_TRUE(Unified.canAccess(PuKind::Gpu, region::CpuPrivateBase));

  // Disjoint: strictly private.
  EXPECT_TRUE(Disjoint.canAccess(PuKind::Cpu, region::CpuPrivateBase));
  EXPECT_FALSE(Disjoint.canAccess(PuKind::Gpu, region::CpuPrivateBase));
  EXPECT_FALSE(Disjoint.canAccess(PuKind::Cpu, region::GpuPrivateBase));

  // ADSM: CPU sees all; GPU sees only its own and shared space
  // (Section II-A4).
  EXPECT_TRUE(Adsm.canAccess(PuKind::Cpu, region::GpuPrivateBase));
  EXPECT_TRUE(Adsm.canAccess(PuKind::Gpu, region::SharedBase));
  EXPECT_FALSE(Adsm.canAccess(PuKind::Gpu, region::CpuPrivateBase));
}

TEST(AddressSpace, ExplicitTransferAndOwnershipTraits) {
  EXPECT_TRUE(AddressSpaceModel::forKind(AddressSpaceKind::Disjoint)
                  .needsExplicitTransfer());
  EXPECT_FALSE(AddressSpaceModel::forKind(AddressSpaceKind::Unified)
                   .needsExplicitTransfer());
  EXPECT_TRUE(AddressSpaceModel::forKind(AddressSpaceKind::PartiallyShared)
                  .supportsOwnership());
  EXPECT_TRUE(
      AddressSpaceModel::forKind(AddressSpaceKind::Adsm).supportsOwnership());
  EXPECT_FALSE(AddressSpaceModel::forKind(AddressSpaceKind::Disjoint)
                   .supportsOwnership());
}

//===----------------------------------------------------------------------===//
// Ownership (Section II-A3).
//===----------------------------------------------------------------------===//

TEST(Ownership, InitialOwnerChecks) {
  OwnershipRegistry Reg;
  Reg.registerObject("a", 0x1000, 256, PuKind::Cpu);
  EXPECT_TRUE(Reg.checkAccess(PuKind::Cpu, 0x1000));
  EXPECT_FALSE(Reg.checkAccess(PuKind::Gpu, 0x1080));
  EXPECT_EQ(Reg.violationCount(), 1u);
}

TEST(Ownership, ReleaseAcquireHandoff) {
  OwnershipRegistry Reg;
  Reg.registerObject("a", 0x1000, 256, PuKind::Cpu);
  Reg.release("a", PuKind::Cpu);
  EXPECT_FALSE(Reg.ownerOf(0x1000).has_value());
  Reg.acquire("a", PuKind::Gpu);
  EXPECT_EQ(Reg.ownerOf(0x1000), PuKind::Gpu);
  EXPECT_TRUE(Reg.checkAccess(PuKind::Gpu, 0x1000));
  EXPECT_EQ(Reg.transitionCount(), 2u);
}

TEST(Ownership, AcquireWithoutReleaseIsViolation) {
  OwnershipRegistry Reg;
  Reg.registerObject("a", 0x1000, 256, PuKind::Cpu);
  Reg.acquire("a", PuKind::Gpu); // CPU still owns it.
  EXPECT_EQ(Reg.violationCount(), 1u);
  EXPECT_EQ(Reg.ownerOf(0x1000), PuKind::Gpu); // Transfer still recorded.
}

TEST(Ownership, UnregisteredAddressesAreFree) {
  OwnershipRegistry Reg;
  Reg.registerObject("a", 0x1000, 256);
  EXPECT_TRUE(Reg.checkAccess(PuKind::Gpu, 0x9000));
  EXPECT_EQ(Reg.violationCount(), 0u);
}

TEST(OwnershipDeath, UnknownObjectAborts) {
  OwnershipRegistry Reg;
  EXPECT_DEATH(Reg.release("ghost", PuKind::Cpu), "unknown object");
}

//===----------------------------------------------------------------------===//
// First-touch tracking (lib-pf).
//===----------------------------------------------------------------------===//

TEST(FirstTouch, FaultsOncePerPage) {
  FirstTouchTracker Tracker(0x10000, 1 << 20, 4096);
  EXPECT_TRUE(Tracker.touch(0x10000));
  EXPECT_FALSE(Tracker.touch(0x10004)); // Same page.
  EXPECT_TRUE(Tracker.touch(0x10000 + 4096));
  EXPECT_EQ(Tracker.faultCount(), 2u);
}

TEST(FirstTouch, OutOfRangeIgnored) {
  FirstTouchTracker Tracker(0x10000, 4096, 4096);
  EXPECT_FALSE(Tracker.touch(0x0));
  EXPECT_EQ(Tracker.faultCount(), 0u);
}

TEST(FirstTouch, PreTouchSuppressesFaults) {
  FirstTouchTracker Tracker(0x10000, 1 << 20, 4096);
  Tracker.preTouch(0x10000, 8192);
  EXPECT_FALSE(Tracker.touch(0x10000));
  EXPECT_FALSE(Tracker.touch(0x10000 + 4096));
  EXPECT_TRUE(Tracker.touch(0x10000 + 8192));
}

TEST(FirstTouch, PagesInRange) {
  FirstTouchTracker Tracker(0, 1 << 20, 65536);
  EXPECT_EQ(Tracker.pagesIn(1), 1u);
  EXPECT_EQ(Tracker.pagesIn(65536), 1u);
  EXPECT_EQ(Tracker.pagesIn(65537), 2u);
}

TEST(FirstTouch, ResetForgets) {
  FirstTouchTracker Tracker(0, 1 << 20, 4096);
  Tracker.touch(0);
  Tracker.reset();
  EXPECT_TRUE(Tracker.touch(0));
  EXPECT_EQ(Tracker.faultCount(), 1u);
}

//===----------------------------------------------------------------------===//
// MemorySystem: the assembled hierarchy.
//===----------------------------------------------------------------------===//

namespace {
MemorySystem makeIntegrated() {
  MemHierConfig Config;
  Config.GpuSharesL3 = true;
  Config.SeparateGpuDram = false;
  return MemorySystem(Config);
}
} // namespace

TEST(MemorySystem, L1HitLatency) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 16);
  // Warm up (fill TLB and caches).
  Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 0);
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 100);
  EXPECT_EQ(R.Level, HitLevel::L1);
  EXPECT_EQ(R.Latency, Mem.config().CpuL1.HitLatency);
  EXPECT_FALSE(R.TlbMiss);
}

TEST(MemorySystem, ColdMissGoesToDram) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 16);
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 0);
  EXPECT_EQ(R.Level, HitLevel::Dram);
  EXPECT_TRUE(R.TlbMiss);
  EXPECT_GT(R.Latency, Mem.config().CpuL2.HitLatency +
                           Mem.config().L3.HitLatency);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  // Fill far more than L1 (32KB) but within L2 (256KB), then revisit.
  for (Addr Offset = 0; Offset < (64 << 10); Offset += 64)
    Mem.access(PuKind::Cpu, region::CpuPrivateBase + Offset, 4, false, 0);
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 1000000);
  EXPECT_EQ(R.Level, HitLevel::L2);
}

TEST(MemorySystem, GpuWithoutSharedL3UsesOwnDram) {
  MemHierConfig Config;
  Config.GpuSharesL3 = false;
  Config.SeparateGpuDram = true;
  MemorySystem Mem(Config);
  Mem.mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 16);
  MemAccessResult R =
      Mem.access(PuKind::Gpu, region::GpuPrivateBase, 4, false, 0);
  EXPECT_EQ(R.Level, HitLevel::Dram);
  EXPECT_EQ(Mem.gpuDram().stats().Reads, 1u);
  EXPECT_EQ(Mem.cpuDram().stats().Reads, 0u);
  EXPECT_EQ(Mem.l3().stats().Accesses, 0u);
}

TEST(MemorySystem, GpuSharedL3Path) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 1 << 16);
  Mem.access(PuKind::Gpu, region::SharedBase, 4, false, 0);
  EXPECT_EQ(Mem.l3().stats().Accesses, 1u);
  // Second access from a cold L1 line in the same L3 line hits L3.
  Mem.gpuL1().invalidate(*Mem.pageTable(PuKind::Gpu)
                              .translate(region::SharedBase));
  MemAccessResult R =
      Mem.access(PuKind::Gpu, region::SharedBase, 4, false, 100000);
  EXPECT_EQ(R.Level, HitLevel::L3);
}

TEST(MemorySystem, TlbMissPenaltyCharged) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  MemAccessResult Cold =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 0);
  // Same line again: TLB now hot, line cached.
  MemAccessResult Warm =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 10000);
  EXPECT_TRUE(Cold.TlbMiss);
  EXPECT_FALSE(Warm.TlbMiss);
  EXPECT_GT(Cold.Latency, Warm.Latency + Mem.config().TlbMissPenalty - 1);
}

TEST(MemorySystem, DemandMapsUnmappedPages) {
  MemorySystem Mem = makeIntegrated();
  // No explicit mapping: the access must demand-map, not crash.
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase + 0x5000, 4, false, 0);
  EXPECT_GT(R.Latency, 0u);
  EXPECT_EQ(Mem.stats().counter("mem.demand_maps"), 1u);
}

TEST(MemorySystem, FirstTouchPolicyFaultsGpuOnly) {
  MemorySystem Mem = makeIntegrated();
  FirstTouchTracker Tracker(region::SharedBase, 1 << 20, 65536);
  SharedSpacePolicy Policy;
  Policy.FirstTouch = &Tracker;
  Policy.PageFaultLatency = 42000;
  Policy.FaultOnlyGpu = true;
  Mem.setSharedPolicy(Policy);
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 20);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 1 << 20);

  // CPU access does not fault.
  MemAccessResult CpuR =
      Mem.access(PuKind::Cpu, region::SharedBase, 4, false, 0);
  EXPECT_FALSE(CpuR.PageFault);

  // First GPU access faults and pays lib-pf.
  MemAccessResult GpuR =
      Mem.access(PuKind::Gpu, region::SharedBase, 4, false, 0);
  EXPECT_TRUE(GpuR.PageFault);
  EXPECT_GE(GpuR.Latency, 42000u);

  // Second GPU access to the same page does not fault.
  MemAccessResult GpuR2 =
      Mem.access(PuKind::Gpu, region::SharedBase + 64, 4, false, 100000);
  EXPECT_FALSE(GpuR2.PageFault);
  EXPECT_EQ(Mem.stats().counter("mem.pagefaults"), 1u);
}

TEST(MemorySystem, OwnershipPolicyCountsViolations) {
  MemorySystem Mem = makeIntegrated();
  OwnershipRegistry Reg;
  Reg.registerObject("obj", region::SharedBase, 4096, PuKind::Cpu);
  SharedSpacePolicy Policy;
  Policy.Ownership = &Reg;
  Mem.setSharedPolicy(Policy);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 4096);

  MemAccessResult R =
      Mem.access(PuKind::Gpu, region::SharedBase, 4, false, 0);
  EXPECT_TRUE(R.OwnershipViolation);
  EXPECT_EQ(Mem.stats().counter("mem.ownership_violations"), 1u);
}

TEST(MemorySystem, CoherenceInvalidatesRemoteCopy) {
  MemHierConfig Config;
  Config.HwCoherence = true;
  MemorySystem Mem(Config);
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 16);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 1 << 16);

  // GPU reads a shared line (cached in GPU L1), then the CPU writes it:
  // the GPU copy must be invalidated.
  Mem.access(PuKind::Gpu, region::SharedBase, 4, false, 0);
  Addr GpuPa = *Mem.pageTable(PuKind::Gpu).translate(region::SharedBase);
  // With an integrated device both PUs share physical pages only if they
  // map to the same PA; translate both to compare.
  Addr CpuPa = *Mem.pageTable(PuKind::Cpu).translate(region::SharedBase);
  // The directory keys on physical line addresses; in this setup each PU
  // maps its own pages, so emulate true sharing by checking the GPU line.
  (void)CpuPa;
  EXPECT_TRUE(Mem.gpuL1().probe(GpuPa));
}

TEST(MemorySystem, FlushPrivateWritesBackDirtyLines) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 16);
  Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, true, 0);
  Mem.access(PuKind::Cpu, region::CpuPrivateBase + 64, 4, true, 0);
  uint64_t Writebacks = Mem.flushPrivate(PuKind::Cpu);
  EXPECT_GE(Writebacks, 2u);
  // After the flush the lines are gone from L1.
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 100000);
  EXPECT_NE(R.Level, HitLevel::L1);
}

TEST(MemorySystem, PushMarksLinesExplicitInL3) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 16);
  Cycle Cost = Mem.pushToShared(PuKind::Cpu, region::SharedBase, 4096, 0);
  EXPECT_GT(Cost, 0u);
  EXPECT_EQ(Mem.l3().residentExplicitLines(), 4096u / CacheLineBytes);
  EXPECT_EQ(Mem.stats().counter("mem.push_lines"), 4096u / CacheLineBytes);
}

TEST(MemorySystem, ScratchpadAccess) {
  MemorySystem Mem = makeIntegrated();
  EXPECT_EQ(Mem.scratchpadAccess(0, 4, false),
            Mem.config().ScratchpadLatency);
  EXPECT_EQ(Mem.scratchpad().readCount(), 1u);
}

TEST(MemorySystem, SpaceModelViolationsCounted) {
  MemorySystem Mem = makeIntegrated();
  SharedSpacePolicy Policy;
  Policy.SpaceModel = &AddressSpaceModel::forKind(AddressSpaceKind::Adsm);
  Mem.setSharedPolicy(Policy);
  Mem.mapRange(PuKind::Gpu, region::CpuPrivateBase, 4096);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 4096);

  // ADSM: the GPU may not reach CPU-private space...
  MemAccessResult Bad =
      Mem.access(PuKind::Gpu, region::CpuPrivateBase, 4, false, 0);
  EXPECT_TRUE(Bad.SpaceViolation);
  // ...but the shared space is fine.
  MemAccessResult Ok =
      Mem.access(PuKind::Gpu, region::SharedBase, 4, false, 0);
  EXPECT_FALSE(Ok.SpaceViolation);
  EXPECT_EQ(Mem.stats().counter("mem.space_violations"), 1u);
}

//===----------------------------------------------------------------------===//
// Hybrid (Cohesion-style) coherence domains.
//===----------------------------------------------------------------------===//

TEST(HybridCoherence, DomainAssignmentAndDefault) {
  HybridCoherenceMap Map(CoherenceDomain::Hardware);
  EXPECT_EQ(Map.domainOf(0x1000), CoherenceDomain::Hardware);
  Map.assign(0x1000, 0x1000, CoherenceDomain::Software);
  EXPECT_EQ(Map.domainOf(0x1000), CoherenceDomain::Software);
  EXPECT_EQ(Map.domainOf(0x1FFF), CoherenceDomain::Software);
  EXPECT_EQ(Map.domainOf(0x2000), CoherenceDomain::Hardware);
}

TEST(HybridCoherence, LaterAssignmentsOverride) {
  HybridCoherenceMap Map;
  Map.assign(0x0, 0x10000, CoherenceDomain::Software);
  Map.assign(0x4000, 0x1000, CoherenceDomain::Hardware);
  EXPECT_EQ(Map.domainOf(0x4000), CoherenceDomain::Hardware);
  EXPECT_EQ(Map.domainOf(0x3000), CoherenceDomain::Software);
}

TEST(HybridCoherence, TransitionCostScalesWithLines) {
  HybridCoherenceMap Map;
  Cycle Small = Map.transition(0x0, 64, CoherenceDomain::Software);
  Cycle Large = Map.transition(0x10000, 64 * 100, CoherenceDomain::Software);
  EXPECT_EQ(Large, Small * 100);
  EXPECT_EQ(Map.stats().Transitions, 2u);
  EXPECT_EQ(Map.stats().LinesTransitioned, 101u);
  // Transition also reassigns the domain.
  EXPECT_EQ(Map.domainOf(0x10000), CoherenceDomain::Software);
}

TEST(HybridCoherence, RoutesDirectoryTraffic) {
  MemHierConfig Config;
  Config.HwCoherence = true;
  MemorySystem Mem(Config);
  HybridCoherenceMap Map(CoherenceDomain::Hardware);
  // First half of the shared region is software-managed.
  Map.assign(region::SharedBase, 1 << 16, CoherenceDomain::Software);
  SharedSpacePolicy Policy;
  Policy.HybridDomains = &Map;
  Mem.setSharedPolicy(Policy);
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 20);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 1 << 20);

  // Software-domain access: the directory must stay empty.
  Mem.access(PuKind::Cpu, region::SharedBase, 4, true, 0);
  EXPECT_EQ(Mem.directory().stats().Lookups, 0u);
  EXPECT_EQ(Map.stats().SoftwareLookups, 1u);

  // Hardware-domain access: the directory tracks it.
  Mem.access(PuKind::Cpu, region::SharedBase + (1 << 16), 4, true, 0);
  EXPECT_EQ(Mem.directory().stats().Lookups, 1u);
  EXPECT_EQ(Map.stats().HardwareLookups, 1u);
}

TEST(HybridCoherence, SoftwareDomainSkipsRemoteInvalidation) {
  // A GPU write to a software-domain line does NOT invalidate the CPU's
  // cached copy — exactly the hazard the software discipline (flushes at
  // ownership transfer) must handle instead.
  MemHierConfig Config;
  Config.HwCoherence = true;
  MemorySystem Mem(Config);
  HybridCoherenceMap Map(CoherenceDomain::Software);
  SharedSpacePolicy Policy;
  Policy.HybridDomains = &Map;
  Mem.setSharedPolicy(Policy);
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 16);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 1 << 16);

  Mem.access(PuKind::Cpu, region::SharedBase, 4, false, 0);
  Addr CpuPa = *Mem.pageTable(PuKind::Cpu).translate(region::SharedBase);
  ASSERT_TRUE(Mem.cpuL1().probe(CpuPa));
  Mem.access(PuKind::Gpu, region::SharedBase, 4, true, 0);
  EXPECT_TRUE(Mem.cpuL1().probe(CpuPa)); // Stale copy survives.
}

TEST(MemorySystem, RemapMovesRangeAndFlushesTlb) {
  // Globalization (Section II-A3): a private object moves into the
  // shared region at run time.
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 64 * 1024);
  // Warm the TLB on the old range.
  Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 0);
  EXPECT_TRUE(Mem.pageTable(PuKind::Cpu).isMapped(region::CpuPrivateBase));

  Cycle Cost = Mem.remapRange(PuKind::Cpu, region::CpuPrivateBase,
                              region::SharedBase, 64 * 1024);
  EXPECT_GT(Cost, 0u);
  EXPECT_FALSE(Mem.pageTable(PuKind::Cpu).isMapped(region::CpuPrivateBase));
  EXPECT_TRUE(Mem.pageTable(PuKind::Cpu).isMapped(region::SharedBase));
  EXPECT_EQ(Mem.stats().counter("mem.remap_pages"), 16u); // 64KB / 4KB.

  // The TLB was flushed: the next access misses translation again.
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::SharedBase, 4, false, 100000);
  EXPECT_TRUE(R.TlbMiss);
}

TEST(MemorySystem, RemapCostScalesWithPages) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  Cycle Small = Mem.remapRange(PuKind::Cpu, region::CpuPrivateBase,
                               region::SharedBase, 4096);
  Cycle Large = Mem.remapRange(PuKind::Cpu, region::CpuPrivateBase + 65536,
                               region::SharedBase + 65536, 256 * 1024);
  EXPECT_GT(Large, Small * 10);
}

TEST(MemorySystem, RemapZeroBytesIsFree) {
  MemorySystem Mem = makeIntegrated();
  EXPECT_EQ(Mem.remapRange(PuKind::Cpu, 0x1000, 0x2000, 0), 0u);
}

//===----------------------------------------------------------------------===//
// DRAM background-traffic accounting (conservation contract).
//===----------------------------------------------------------------------===//

namespace {
/// A hierarchy small enough that modest strides evict at every level.
MemHierConfig makeTinyHierarchy() {
  MemHierConfig Config;
  Config.CpuL1.SizeBytes = 4 * 1024;
  Config.CpuL2.SizeBytes = 8 * 1024;
  Config.L3.SizeBytes = 16 * 1024;
  Config.GpuSharesL3 = true;
  Config.SeparateGpuDram = false;
  return Config;
}
} // namespace

TEST(MemorySystem, VictimWritebacksDrainAtAccessBoundary) {
  // Regression: L2 victim writebacks are posted into the CPU DRAM
  // FR-FCFS queue. They must be drained (and charged to the writeback
  // category) at the access boundary, not stranded until some transfer
  // fabric happens to drain the queue.
  MemorySystem Mem(makeTinyHierarchy());
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  Cycle Now = 0;
  for (Addr Offset = 0; Offset < (64 << 10); Offset += 64) {
    MemAccessResult R =
        Mem.access(PuKind::Cpu, region::CpuPrivateBase + Offset, 4,
                   /*IsWrite=*/true, Now);
    Now += R.Latency;
    // Quiescent after every single access.
    ASSERT_EQ(Mem.cpuDram().queuedRequests(), 0u);
  }
  EXPECT_GT(Mem.stats().counter("dram.cpu.writebacks"), 0u);
  EXPECT_GT(Mem.stats().counter("dram.cpu.bg_drains"), 0u);
  EXPECT_EQ(Mem.stats().counter("dram.cpu.bg_reqs"),
            Mem.cpuDram().stats().BatchedRequests);
  // Served requests reconcile with the charged categories.
  EXPECT_EQ(Mem.cpuDram().stats().Reads + Mem.cpuDram().stats().Writes,
            Mem.stats().counter("dram.cpu.demand") +
                Mem.stats().counter("dram.cpu.writebacks"));
}

TEST(MemorySystem, PrefetchTrafficDrainsEvenOnL2Hits) {
  // Prefetch fills post background traffic before the L2-hit early
  // return; that path must drain too.
  MemHierConfig Config = makeTinyHierarchy();
  Config.EnableL2Prefetch = true;
  MemorySystem Mem(Config);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  Cycle Now = 0;
  for (Addr Offset = 0; Offset < (32 << 10); Offset += 64) {
    MemAccessResult R = Mem.access(PuKind::Cpu,
                                   region::CpuPrivateBase + Offset, 4,
                                   /*IsWrite=*/false, Now);
    Now += R.Latency;
    ASSERT_EQ(Mem.cpuDram().queuedRequests(), 0u);
  }
  EXPECT_GT(Mem.stats().counter("dram.cpu.prefetch_reads"), 0u);
  EXPECT_EQ(Mem.cpuDram().stats().Reads + Mem.cpuDram().stats().Writes,
            Mem.stats().counter("dram.cpu.demand") +
                Mem.stats().counter("dram.cpu.writebacks") +
                Mem.stats().counter("dram.cpu.prefetch_reads"));
}

TEST(MemorySystem, PushToSharedChargesVictimWritebacks) {
  // Regression: pushToShared used to ignore CacheAccessResult.WroteBack
  // on its L3 fills, silently dropping victim writeback traffic.
  MemorySystem Mem(makeTinyHierarchy());
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 20);
  // Dirty the whole (16KB) L3 with write misses.
  Cycle Now = 0;
  for (Addr Offset = 0; Offset < (16 << 10); Offset += 64) {
    MemAccessResult R = Mem.access(PuKind::Cpu, region::SharedBase + Offset,
                                   4, /*IsWrite=*/true, Now);
    Now += R.Latency;
  }
  uint64_t WritebacksBefore = Mem.stats().counter("dram.cpu.writebacks");
  uint64_t DramWritesBefore = Mem.cpuDram().stats().Writes;
  // Push a fresh range through the L3: fills evict the dirty lines.
  Mem.pushToShared(PuKind::Cpu, region::SharedBase + (512 << 10),
                   16 << 10, Now);
  EXPECT_GT(Mem.stats().counter("dram.cpu.writebacks"), WritebacksBefore);
  // The victims were actually serviced by the device, not just counted.
  EXPECT_GT(Mem.cpuDram().stats().Writes, DramWritesBefore);
  EXPECT_EQ(Mem.cpuDram().queuedRequests(), 0u);
}

TEST(MemorySystem, MergedMissKeepsAccruedFaultLatency) {
  // Regression: a miss that merges onto an in-flight fill used to adopt
  // the earlier entry's ReadyCycle wholesale, letting a cheap fill erase
  // the merging access's own accrued page-fault latency.
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::SharedBase, 1 << 16);
  // First access: plain cold miss; its fill stays in flight for a while.
  Mem.access(PuKind::Cpu, region::SharedBase, 4, false, 0);

  // Second access faults (fresh tracker, CPU faults too) and merges.
  FirstTouchTracker Tracker(region::SharedBase, 1 << 16, 4096);
  SharedSpacePolicy Policy;
  Policy.FirstTouch = &Tracker;
  Policy.PageFaultLatency = 50000;
  Policy.FaultOnlyGpu = false;
  Mem.setSharedPolicy(Policy);
  Addr Pa = *Mem.pageTable(PuKind::Cpu).translate(region::SharedBase);
  Mem.cpuL1().invalidate(Pa);
  Mem.cpuL2().invalidate(Pa);
  MemAccessResult R =
      Mem.access(PuKind::Cpu, region::SharedBase, 4, false, 1);
  EXPECT_TRUE(R.PageFault);
  EXPECT_EQ(Mem.stats().counter("mem.mshr_merges"), 1u);
  // The merge may not undercut the fault cost already paid.
  EXPECT_GE(R.Latency, 50000u);
}

TEST(MemorySystem, MshrMergesConcurrentMisses) {
  MemorySystem Mem = makeIntegrated();
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 16);
  // Two accesses to the same cold line at the same cycle: the second is
  // an L1 miss that merges onto the first fill.
  Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 0);
  Mem.cpuL1().invalidate(
      *Mem.pageTable(PuKind::Cpu).translate(region::CpuPrivateBase));
  Mem.cpuL2().invalidate(
      *Mem.pageTable(PuKind::Cpu).translate(region::CpuPrivateBase));
  // Re-trigger a miss while the prior fill is still in flight.
  Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 1);
  EXPECT_EQ(Mem.stats().counter("mem.mshr_merges"), 1u);
}
