//===- tests/experiments_test.cpp - Experiment-harness tests --------------===//

#include "core/Experiments.h"
#include "core/ExtraWorkloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Render helpers.
//===----------------------------------------------------------------------===//

namespace {
std::vector<ExperimentRow> smallStudy() {
  // Two cheap kernels on two systems: enough structure for the renderers.
  std::vector<ExperimentRow> Rows;
  for (CaseStudy Study : {CaseStudy::CpuGpu, CaseStudy::IdealHetero}) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    HeteroSimulator Sim(Config);
    for (KernelId Kernel : {KernelId::Reduction, KernelId::MergeSort}) {
      ExperimentRow Row;
      Row.System = Config.Name;
      Row.Kernel = Kernel;
      Row.Result = Sim.run(Kernel);
      Rows.push_back(std::move(Row));
    }
  }
  return Rows;
}
} // namespace

TEST(ExperimentRender, Figure5NormalizesToIdeal) {
  std::vector<ExperimentRow> Rows = smallStudy();
  std::string Csv = renderFigure5(Rows).renderCsv();
  // The IDEAL rows normalize to exactly 1.000.
  EXPECT_NE(Csv.find("IDEAL-HETERO"), std::string::npos);
  EXPECT_NE(Csv.find(",1.000,"), std::string::npos);
}

TEST(ExperimentRender, Figure6ReportsBytes) {
  std::vector<ExperimentRow> Rows = smallStudy();
  std::string Csv = renderFigure6(Rows).renderCsv();
  EXPECT_NE(Csv.find("480,768"), std::string::npos); // Reduction traffic.
}

TEST(ExperimentRender, RowCountsMatchInputs) {
  std::vector<ExperimentRow> Rows = smallStudy();
  EXPECT_EQ(renderFigure5(Rows).rowCount(), Rows.size());
  EXPECT_EQ(renderFigure6(Rows).rowCount(), Rows.size());
}

//===----------------------------------------------------------------------===//
// CSV export.
//===----------------------------------------------------------------------===//

TEST(CsvExport, DisabledWithoutEnvVar) {
  unsetenv("HETSIM_CSV_DIR");
  TextTable Table({"a"});
  EXPECT_FALSE(maybeExportCsv("unused", Table));
}

TEST(CsvExport, WritesFileWhenEnabled) {
  setenv("HETSIM_CSV_DIR", "/tmp", 1);
  TextTable Table({"col1", "col2"});
  Table.addRow({"x", "y"});
  EXPECT_TRUE(maybeExportCsv("hetsim_csv_export_test", Table));
  unsetenv("HETSIM_CSV_DIR");

  std::FILE *File = std::fopen("/tmp/hetsim_csv_export_test.csv", "r");
  ASSERT_NE(File, nullptr);
  char Buffer[64] = {};
  ASSERT_NE(std::fgets(Buffer, sizeof(Buffer), File), nullptr);
  std::fclose(File);
  EXPECT_STREQ(Buffer, "col1,col2\n");
  std::remove("/tmp/hetsim_csv_export_test.csv");
}

TEST(CsvExport, UnwritableDirectoryFailsGracefully) {
  setenv("HETSIM_CSV_DIR", "/nonexistent_hetsim_dir", 1);
  TextTable Table({"a"});
  EXPECT_FALSE(maybeExportCsv("x", Table));
  unsetenv("HETSIM_CSV_DIR");
}

//===----------------------------------------------------------------------===//
// Sandy-Bridge-style preset (Section II-A2).
//===----------------------------------------------------------------------===//

TEST(SandyBridge, DisjointButSharedLlc) {
  SystemConfig Config = SystemConfig::sandyBridgeStyle();
  EXPECT_EQ(Config.AddrSpace, AddressSpaceKind::Disjoint);
  EXPECT_TRUE(Config.Hier.GpuSharesL3);
  EXPECT_EQ(Config.Connection, ConnectionKind::MemoryController);
}

TEST(SandyBridge, GpuTrafficReachesSharedL3) {
  HeteroSimulator Sim(SystemConfig::sandyBridgeStyle());
  Sim.run(KernelId::Reduction);
  EXPECT_GT(Sim.memory().l3().stats().Accesses, 0u);

  HeteroSimulator Fusion(SystemConfig::forCaseStudy(CaseStudy::Fusion));
  Fusion.run(KernelId::Reduction);
  // Fusion's GPU bypasses the L3; only CPU L2 misses reach it.
  EXPECT_LT(Fusion.memory().l3().stats().Accesses,
            Sim.memory().l3().stats().Accesses);
}

//===----------------------------------------------------------------------===//
// Workload-characteristic sanity: the extra workloads behave like what
// they model.
//===----------------------------------------------------------------------===//

TEST(WorkloadCharacter, BfsBranchesAreHardToPredict) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  HeteroSimulator Sim(Config);
  RunResult Triad = Sim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::StreamTriad, Config, 32768));
  RunResult Bfs = Sim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::Bfs, Config, 32768));
  double TriadRate = double(Triad.CpuTotal.BranchMispredicts) /
                     double(Triad.CpuTotal.Insts);
  double BfsRate =
      double(Bfs.CpuTotal.BranchMispredicts) / double(Bfs.CpuTotal.Insts);
  EXPECT_GT(BfsRate, TriadRate * 5);
}

TEST(WorkloadCharacter, SpmvGathersHitLessThanTriadStreams) {
  // Large enough that SpMV's x[] (Elements bytes) exceeds the L1: its
  // random gathers must lower the L1 hit rate versus pure streaming.
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  HeteroSimulator TriadSim(Config);
  TriadSim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::StreamTriad, Config, 262144));
  double TriadHit = TriadSim.memory().cpuL1().stats().hitRate();
  HeteroSimulator SpmvSim(Config);
  SpmvSim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::Spmv, Config, 262144));
  double SpmvHit = SpmvSim.memory().cpuL1().stats().hitRate();
  EXPECT_LT(SpmvHit, TriadHit);
}

TEST(WorkloadCharacter, HistogramBinsStayHot) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  HeteroSimulator Sim(Config);
  Sim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::Histogram, Config, 65536));
  // The 1KB bin table is L1-resident: overall CPU L1 hit rate stays high.
  EXPECT_GT(Sim.memory().cpuL1().stats().hitRate(), 0.5);
}

//===----------------------------------------------------------------------===//
// Push accounting.
//===----------------------------------------------------------------------===//

TEST(PushAccounting, ExplicitSharedLocalityChargesPushTime) {
  SystemConfig Config =
      SystemConfig::forAddressSpaceStudy(AddressSpaceKind::PartiallyShared);
  Config.Locality.Shared = SharedLocality::Explicit;
  HeteroSimulator Sim(Config);
  RunResult R = Sim.run(KernelId::Reduction);
  EXPECT_GT(R.PushNs, 0.0);
  // Push time is part of the 3-way breakdown (attributed to comm).
  EXPECT_GE(R.Time.CommunicationNs, R.PushNs - 1e-6);
}