//===- tests/comm_test.cpp - comm/ unit tests -----------------------------===//

#include "comm/CommParams.h"
#include "comm/DmaEngine.h"
#include "comm/MemControllerLink.h"
#include "comm/PciAperture.h"
#include "comm/PciExpressLink.h"
#include "common/Stats.h"
#include "common/Units.h"
#include "dram/Dram.h"

#include <gtest/gtest.h>

#include <memory>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// CommParams (Table IV).
//===----------------------------------------------------------------------===//

TEST(CommParams, TableFourDefaults) {
  CommParams P;
  EXPECT_EQ(P.ApiPciBase, 33250u);
  EXPECT_EQ(P.ApiAcquire, 1000u);
  EXPECT_EQ(P.ApiTransfer, 7000u);
  EXPECT_EQ(P.LibPageFault, 42000u);
  EXPECT_DOUBLE_EQ(P.PciBytesPerSec, 16e9);
}

TEST(CommParams, PciCopyFormula) {
  CommParams P;
  // api-pci = 33250 + bytes at 16GB/s in 3.5GHz cycles.
  EXPECT_EQ(P.pciCopyCycles(0), 33250u);
  Cycle C = P.pciCopyCycles(1 << 20);
  Cycle Expected = 33250 + transferCycles(PuKind::Cpu, 1 << 20, 16e9);
  EXPECT_EQ(C, Expected);
  // 1MB at 16GB/s = 65.5us = ~229k cycles.
  EXPECT_NEAR(double(C - 33250), 229376.0, 2.0);
}

TEST(CommParams, ConfigRoundTrip) {
  CommParams P;
  P.ApiPciBase = 1234;
  P.LibPageFault = 99;
  ConfigStore Config;
  P.toConfig(Config);
  CommParams Q = CommParams::fromConfig(Config);
  EXPECT_EQ(Q.ApiPciBase, 1234u);
  EXPECT_EQ(Q.LibPageFault, 99u);
  EXPECT_EQ(Q.ApiAcquire, P.ApiAcquire);
}

TEST(CommParams, OverridesFromConfig) {
  ConfigStore Config;
  Config.setInt("comm.api_pci_base", 1000);
  CommParams P = CommParams::fromConfig(Config);
  EXPECT_EQ(P.ApiPciBase, 1000u);
  EXPECT_EQ(P.ApiTransfer, 7000u); // Untouched default.
}

TEST(CommParams, PageableHostMemoryCostsMore) {
  CommParams Pinned;
  CommParams Pageable;
  Pageable.PinnedHostMemory = false;
  uint64_t Bytes = 1 << 20;
  Cycle PinnedCost = Pinned.pciCopyCycles(Bytes);
  Cycle PageableCost = Pageable.pciCopyCycles(Bytes);
  EXPECT_GT(PageableCost, PinnedCost);
  // The bandwidth term scales by the rate factor plus staging.
  Cycle Expected = Pinned.ApiPciBase + Pageable.PageableStagingOverhead +
                   transferCycles(PuKind::Cpu, Bytes, 16e9 * 0.55);
  EXPECT_EQ(PageableCost, Expected);
}

TEST(CommParams, PageableConfigKeys) {
  ConfigStore Config;
  Config.setBool("comm.pinned_host", false);
  Config.setDouble("comm.pageable_rate_factor", 0.25);
  CommParams P = CommParams::fromConfig(Config);
  EXPECT_FALSE(P.PinnedHostMemory);
  EXPECT_DOUBLE_EQ(P.PageableRateFactor, 0.25);
}

//===----------------------------------------------------------------------===//
// PCI-E link.
//===----------------------------------------------------------------------===//

TEST(PciExpress, SynchronousCost) {
  PciExpressLink Link{CommParams()};
  TransferTiming T = Link.transfer(320512, TransferDir::HostToDevice, 100);
  EXPECT_FALSE(T.Asynchronous);
  EXPECT_EQ(T.CpuBusyCycles, CommParams().pciCopyCycles(320512));
  EXPECT_EQ(T.CompleteCycle, 100 + T.CpuBusyCycles);
  EXPECT_EQ(Link.bytesMoved(), 320512u);
  EXPECT_EQ(Link.transferCount(), 1u);
  EXPECT_EQ(Link.waitAll(1000), 0u); // Synchronous: nothing pending.
}

//===----------------------------------------------------------------------===//
// PCI aperture (LRB).
//===----------------------------------------------------------------------===//

TEST(PciAperture, OneWindowOneApiTr) {
  PciAperture Aperture{CommParams()};
  TransferTiming T = Aperture.transfer(320512, TransferDir::HostToDevice, 0);
  EXPECT_EQ(T.CpuBusyCycles, CommParams().ApiTransfer);
}

TEST(PciAperture, LargeTransfersPayPerWindow) {
  PciAperture Aperture(CommParams(), /*WindowBytes=*/64 * 1024);
  TransferTiming T =
      Aperture.transfer(320512, TransferDir::HostToDevice, 0);
  EXPECT_EQ(T.CpuBusyCycles, ceilDiv(320512, 64 * 1024) * 7000u);
}

TEST(PciAperture, MuchCheaperThanPciMemcpy) {
  CommParams P;
  PciAperture Aperture{P};
  PciExpressLink Link{P};
  uint64_t Bytes = 524288;
  EXPECT_LT(Aperture.transfer(Bytes, TransferDir::HostToDevice, 0)
                .CpuBusyCycles,
            Link.transfer(Bytes, TransferDir::HostToDevice, 0)
                    .CpuBusyCycles /
                10);
}

//===----------------------------------------------------------------------===//
// DMA engine (GMAC async copies).
//===----------------------------------------------------------------------===//

TEST(DmaEngine, IssueIsCheapCompletionIsLater) {
  CommParams P;
  DmaEngine Dma(P, std::make_unique<PciExpressLink>(P));
  TransferTiming T = Dma.transfer(1 << 20, TransferDir::HostToDevice, 0);
  EXPECT_TRUE(T.Asynchronous);
  EXPECT_EQ(T.CpuBusyCycles, P.AsyncIssueOverhead);
  EXPECT_GT(T.CompleteCycle, P.pciCopyCycles(1 << 20));
}

TEST(DmaEngine, WaitChargesOnlyUnhiddenTime) {
  CommParams P;
  DmaEngine Dma(P, std::make_unique<PciExpressLink>(P));
  TransferTiming T = Dma.transfer(1 << 20, TransferDir::HostToDevice, 0);
  // Waiting immediately pays nearly the whole copy.
  Cycle FullStall = Dma.waitAll(P.AsyncIssueOverhead);
  EXPECT_NEAR(double(FullStall),
              double(T.CompleteCycle - P.AsyncIssueOverhead), 1.0);
  // Waiting after the copy finished costs nothing.
  EXPECT_EQ(Dma.waitAll(T.CompleteCycle + 10), 0u);
}

TEST(DmaEngine, FullyHiddenCopyIsFree) {
  CommParams P;
  DmaEngine Dma(P, std::make_unique<PciExpressLink>(P));
  Dma.transfer(4096, TransferDir::HostToDevice, 0);
  Cycle Busy = Dma.busyUntil();
  EXPECT_GT(Busy, 0u);
  EXPECT_EQ(Dma.waitAll(Busy + 1000), 0u); // Compute outlasted the copy.
  EXPECT_GT(Dma.hiddenCycles(), 0u);
}

TEST(DmaEngine, BackToBackCopiesSerializeOnEngine) {
  CommParams P;
  DmaEngine Dma(P, std::make_unique<PciExpressLink>(P));
  TransferTiming A = Dma.transfer(1 << 20, TransferDir::HostToDevice, 0);
  TransferTiming B = Dma.transfer(1 << 20, TransferDir::HostToDevice, 10);
  EXPECT_GE(B.CompleteCycle, A.CompleteCycle + P.pciCopyCycles(1 << 20));
}

//===----------------------------------------------------------------------===//
// Memory-controller link (Fusion).
//===----------------------------------------------------------------------===//

TEST(MemControllerLink, GeneratesDramTraffic) {
  DramSystem Dram;
  MemControllerLink Link(Dram);
  Link.transfer(64 * 100, TransferDir::HostToDevice, 0);
  // One read + one write per line.
  EXPECT_EQ(Dram.stats().Reads, 100u);
  EXPECT_EQ(Dram.stats().Writes, 100u);
}

TEST(MemControllerLink, StreamingTransfersRowHit) {
  DramSystem Dram;
  MemControllerLink Link(Dram);
  Link.transfer(1 << 20, TransferDir::HostToDevice, 0);
  EXPECT_GT(Dram.stats().rowHitRate(), 0.8);
}

TEST(MemControllerLink, CheaperThanPciE) {
  // Large transfers: bandwidth-bound on both sides, and DRAM (41.6GB/s,
  // read+write per line) still beats PCI-E 2.0 (16GB/s + api-pci base).
  DramSystem Dram;
  MemControllerLink Link(Dram);
  PciExpressLink Pci{CommParams()};
  uint64_t Bytes = 320512;
  Cycle McCost =
      Link.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles;
  Cycle PciCost =
      Pci.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles;
  EXPECT_LT(McCost, PciCost);
}

TEST(MemControllerLink, MuchCheaperForSmallTransfers) {
  // Small transfers: PCI-E pays its 33250-cycle API cost; the on-chip
  // path is an order of magnitude cheaper (the Fusion advantage).
  DramSystem Dram;
  MemControllerLink Link(Dram);
  PciExpressLink Pci{CommParams()};
  uint64_t Bytes = 4096;
  Cycle McCost =
      Link.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles;
  Cycle PciCost =
      Pci.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles;
  EXPECT_LT(McCost * 10, PciCost);
}

TEST(MemControllerLink, ZeroBytesOnlyApiOverhead) {
  DramSystem Dram;
  MemControllerLink Link(Dram, /*ApiOverhead=*/500);
  TransferTiming T = Link.transfer(0, TransferDir::HostToDevice, 100);
  EXPECT_EQ(T.CpuBusyCycles, 500u);
}

TEST(MemControllerLink, StaleBacklogNotBilledToTransfer) {
  // Regression: background traffic (victim writebacks, prefetch fills)
  // left in the FR-FCFS queue by earlier cache activity must not inflate
  // the next transfer's cost. The link drains the backlog first, so the
  // transfer is billed the same as with a clean queue.
  uint64_t Bytes = 64 * 32;
  DramSystem CleanDram;
  MemControllerLink Clean(CleanDram);
  Cycle CleanCost =
      Clean.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles;

  // The backlog is small enough to drain inside the 1000-cycle API
  // overhead, so only genuinely-stale-request billing (the old bug)
  // could make the costs differ; residual bank/bus state cannot.
  DramSystem StaleDram;
  StatRegistry Stats;
  MemControllerLink Stale(StaleDram, 1000, &Stats);
  for (unsigned I = 0; I != 32; ++I)
    StaleDram.enqueue(0x900000000ull + I * 64, /*IsWrite=*/true);
  Cycle StaleCost =
      Stale.transfer(Bytes, TransferDir::HostToDevice, 0).CpuBusyCycles;

  EXPECT_EQ(StaleCost, CleanCost);
  EXPECT_EQ(Stats.counter("dram.cpu.stale_drained"), 32u);
  EXPECT_EQ(StaleDram.queuedRequests(), 0u);
}

TEST(MemControllerLink, ChargesTransferRequestsForConservation) {
  DramSystem Dram;
  StatRegistry Stats;
  MemControllerLink Link(Dram, 1000, &Stats);
  Link.transfer(64 * 100, TransferDir::HostToDevice, 0);
  // One read + one write per line, all charged to the transfer category.
  EXPECT_EQ(Stats.counter("dram.cpu.transfer_reqs"), 200u);
  EXPECT_EQ(Dram.stats().Reads + Dram.stats().Writes,
            Stats.counter("dram.cpu.transfer_reqs"));
  // Zero-byte transfers charge nothing.
  Link.transfer(0, TransferDir::HostToDevice, 0);
  EXPECT_EQ(Stats.counter("dram.cpu.transfer_reqs"), 200u);
}
