//===- tests/lint_fuzz_test.cpp - Differential fuzz oracle ----------------===//
//
// The seeded mutation fuzzer: the static verifier must flag every
// constructed ordering bug with a valid witness, must never call a
// dynamically racy program clean, and the whole run must be
// reproducible from its seed.
//
//===----------------------------------------------------------------------===//

#include "analysis/LintFuzzer.h"

#include <gtest/gtest.h>

using namespace hetsim;

namespace {

TEST(LintFuzzer, ContractHoldsOverSeededCases) {
  FuzzStats Stats = fuzzVerifier(/*Cases=*/400, /*Seed=*/3);
  EXPECT_TRUE(Stats.passed()) << Stats.render();
  EXPECT_EQ(Stats.Cases, 400u);
  // The run must actually exercise the interesting classes.
  EXPECT_GT(Stats.RacesInjected, 0u);
  EXPECT_EQ(Stats.RacesFlagged, Stats.RacesInjected);
  EXPECT_GT(Stats.WitnessesChecked, 0u);
  EXPECT_GT(Stats.DynamicReplays, 0u);
  for (size_t Kind = 0; Kind != NumMutationKinds; ++Kind)
    EXPECT_GT(Stats.ByKind[Kind], 0u)
        << "mutation class never drawn: "
        << mutationKindName(static_cast<MutationKind>(Kind));
}

TEST(LintFuzzer, RunsAreReproducibleFromTheSeed) {
  FuzzStats A = fuzzVerifier(120, 77);
  FuzzStats B = fuzzVerifier(120, 77);
  EXPECT_EQ(A.ByKind, B.ByKind);
  EXPECT_EQ(A.RacesInjected, B.RacesInjected);
  EXPECT_EQ(A.RacesFlagged, B.RacesFlagged);
  EXPECT_EQ(A.WitnessesChecked, B.WitnessesChecked);
  EXPECT_EQ(A.DynamicReplays, B.DynamicReplays);
  EXPECT_EQ(A.render(), B.render());

  FuzzStats C = fuzzVerifier(120, 78);
  EXPECT_NE(A.render(), C.render());
}

TEST(LintFuzzer, WitnessValidatorRejectsTamperedWitnesses) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  CorunProgram Corun =
      lowerCorun({KernelId::Reduction, KernelId::Reduction}, Config, {"c"});
  RaceDetector Detector(Corun);
  RaceReport Report = Detector.detect();
  ASSERT_FALSE(Report.clean());
  RaceWitness Genuine = Report.Races.front();
  std::string Error;
  ASSERT_TRUE(validateWitness(Detector, Genuine, Error)) << Error;

  RaceWitness ReadRead = Genuine;
  ReadRead.First.IsWrite = ReadRead.Second.IsWrite = false;
  EXPECT_FALSE(validateWitness(Detector, ReadRead, Error));

  RaceWitness WrongLocation = Genuine;
  WrongLocation.Location = "nowhere";
  EXPECT_FALSE(validateWitness(Detector, WrongLocation, Error));

  RaceWitness SameResource = Genuine;
  SameResource.Second.Agent = SameResource.First.Agent;
  SameResource.Second.Lane = SameResource.First.Lane;
  EXPECT_FALSE(validateWitness(Detector, SameResource, Error));

  RaceWitness OrderedPair = Genuine;
  // The global start reaches every node, so an (entry, X) pair is
  // ordered and must be rejected.
  OrderedPair.First.Node = Detector.graph().startNode();
  OrderedPair.First.OwnershipScoped = OrderedPair.Second.OwnershipScoped;
  EXPECT_FALSE(validateWitness(Detector, OrderedPair, Error));

  RaceWitness NoHint = Genuine;
  NoHint.MissingEdge.clear();
  EXPECT_FALSE(validateWitness(Detector, NoHint, Error));
}

TEST(LintFuzzer, NamesCoverEveryEnumerator) {
  for (size_t Kind = 0; Kind != NumMutationKinds; ++Kind)
    EXPECT_NE(mutationKindName(static_cast<MutationKind>(Kind)),
              nullptr);
  EXPECT_STREQ(expectedVerdictName(ExpectedVerdict::RaceInjected),
               "race-injected");
}

} // namespace
