//===- tests/properties_test.cpp - Property-based invariants --------------===//
///
/// \file
/// Parameterized property sweeps: invariants that must hold across whole
/// regions of the configuration space, not just single examples —
/// capacity bounds, inclusion/monotonicity properties, bandwidth floors,
/// conservation of instruction budgets, and cross-run determinism.
///
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "trace/KernelTraceGenerator.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Cache properties over geometry.
//===----------------------------------------------------------------------===//

class CacheGeometryProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

TEST_P(CacheGeometryProperty, StatsAreConsistentAndCapacityHolds) {
  auto [SizeBytes, Ways] = GetParam();
  CacheConfig Config;
  Config.SizeBytes = SizeBytes;
  Config.Ways = Ways;
  if (!Config.isValid())
    GTEST_SKIP() << "geometry not representable";
  Cache C(Config);

  XorShiftRng Rng(SizeBytes + Ways);
  for (unsigned I = 0; I != 20000; ++I)
    C.access(Rng.nextBelow(1 << 20) * CacheLineBytes, Rng.nextBool(0.3));

  const CacheStats &Stats = C.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses, Stats.Accesses);
  EXPECT_LE(C.residentLines(), SizeBytes / CacheLineBytes);
  EXPECT_GE(Stats.hitRate(), 0.0);
  EXPECT_LE(Stats.hitRate(), 1.0);
}

TEST_P(CacheGeometryProperty, RepeatedAccessAlwaysHits) {
  auto [SizeBytes, Ways] = GetParam();
  CacheConfig Config;
  Config.SizeBytes = SizeBytes;
  Config.Ways = Ways;
  if (!Config.isValid())
    GTEST_SKIP();
  Cache C(Config);
  C.access(0x40, false);
  EXPECT_TRUE(C.access(0x40, false).Hit); // Immediate re-access hits.
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryProperty,
    ::testing::Combine(::testing::Values(1024ull, 8192ull, 32768ull,
                                         262144ull),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(CacheProperty, MoreWaysNeverHurtLruHits) {
  // LRU is a stack algorithm per set: with the same number of sets,
  // doubling associativity (doubling capacity) can only add hits.
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Convolution, 0);
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = 40000;
  TraceBuffer Trace = KernelTraceGenerator::forKernel(KernelId::Convolution)
                          .generateCompute(Req, Layout);

  uint64_t PreviousHits = 0;
  for (unsigned Ways : {1u, 2u, 4u, 8u}) {
    CacheConfig Config;
    Config.Ways = Ways;
    Config.SizeBytes = uint64_t(Ways) * 64 * CacheLineBytes; // 64 sets.
    Cache C(Config);
    for (const TraceRecord &R : Trace)
      if (isGlobalMemoryOp(R.Op))
        C.access(R.MemAddr, isStoreOp(R.Op));
    EXPECT_GE(C.stats().Hits, PreviousHits) << "ways=" << Ways;
    PreviousHits = C.stats().Hits;
  }
}

//===----------------------------------------------------------------------===//
// DRAM properties.
//===----------------------------------------------------------------------===//

class DramGeometryProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(DramGeometryProperty, DrainRespectsBandwidthFloor) {
  auto [Channels, Banks] = GetParam();
  DramConfig Config;
  Config.Channels = Channels;
  Config.BanksPerChannel = Banks;
  DramSystem Dram(Config);

  const unsigned Lines = 512;
  for (unsigned I = 0; I != Lines; ++I)
    Dram.enqueue(uint64_t(I) * CacheLineBytes, false);
  Cycle Finish = Dram.drainFrFcfs(0);

  // The per-channel bus limits throughput: finish >= lines-per-channel
  // times the bus occupancy.
  Cycle Floor = Cycle(Lines / Channels) * Config.BusCyclesPerLine;
  EXPECT_GE(Finish, Floor);
  EXPECT_EQ(Dram.stats().Reads, Lines);
}

INSTANTIATE_TEST_SUITE_P(Geometries, DramGeometryProperty,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u),
                                            ::testing::Values(2u, 8u)));

TEST(DramProperty, MoreChannelsNeverSlowerOnStreams) {
  Cycle Previous = ~Cycle(0);
  for (unsigned Channels : {1u, 2u, 4u, 8u}) {
    DramConfig Config;
    Config.Channels = Channels;
    DramSystem Dram(Config);
    for (unsigned I = 0; I != 1024; ++I)
      Dram.enqueue(uint64_t(I) * CacheLineBytes, false);
    Cycle Finish = Dram.drainFrFcfs(0);
    EXPECT_LE(Finish, Previous) << "channels=" << Channels;
    Previous = Finish;
  }
}

//===----------------------------------------------------------------------===//
// Ring properties.
//===----------------------------------------------------------------------===//

class RingSizeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RingSizeProperty, HopCountBounds) {
  RingConfig Config;
  Config.NumStops = GetParam();
  RingBus Ring(Config);
  for (unsigned A = 0; A != Config.NumStops; ++A) {
    for (unsigned B = 0; B != Config.NumStops; ++B) {
      unsigned Hops = Ring.hopCount(A, B);
      EXPECT_LE(Hops, Config.NumStops / 2);
      EXPECT_EQ(Hops == 0, A == B);
      EXPECT_EQ(Hops, Ring.hopCount(B, A));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeProperty,
                         ::testing::Values(2u, 3u, 5u, 7u, 8u, 16u));

//===----------------------------------------------------------------------===//
// Core-model properties.
//===----------------------------------------------------------------------===//

TEST(CpuProperty, IpcNeverExceedsIssueWidth) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  for (unsigned Width : {1u, 2u, 4u}) {
    CpuConfig Config;
    Config.FetchWidth = Width;
    Config.IssueWidth = Width;
    Config.RetireWidth = Width;
    CpuCore Core(Config, Mem);
    TraceBuffer Trace;
    for (unsigned I = 0; I != 5000; ++I)
      Trace.emitAlu(Opcode::IntAlu, 0x100 + I * 4, uint8_t(8 + I % 24), 0);
    SegmentResult R = Core.run(Trace, 0);
    EXPECT_LE(R.ipc(), double(Width) + 1e-9) << "width=" << Width;
  }
}

TEST(CpuProperty, CyclesMonotoneInMispredictPenalty) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  TraceBuffer Trace;
  XorShiftRng Rng(11);
  for (unsigned I = 0; I != 4000; ++I) {
    Trace.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
    Trace.emitBranch(0x104, Rng.nextBool(0.5));
  }
  Cycle Previous = 0;
  for (Cycle Penalty : {0u, 5u, 15u, 40u}) {
    CpuConfig Config;
    Config.MispredictPenalty = Penalty;
    CpuCore Core(Config, Mem);
    SegmentResult R = Core.run(Trace, 0);
    EXPECT_GE(R.Cycles, Previous) << "penalty=" << Penalty;
    Previous = R.Cycles;
  }
}

TEST(GpuProperty, CyclesRespectIssueFloor) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 20);
  for (unsigned Warps : {1u, 4u, 16u, 32u}) {
    GpuConfig Config;
    Config.NumWarps = Warps;
    GpuCore Core(Config, Mem);
    TraceBuffer Trace;
    for (unsigned I = 0; I != 3000; ++I)
      Trace.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 24), 0);
    SegmentResult R = Core.run(Trace, 0);
    EXPECT_GE(R.Cycles, Trace.size() / Config.IssueWidth);
  }
}

TEST(GpuProperty, MoreWarpsNeverSlowerOnIndependentWork) {
  TraceBuffer Trace;
  for (unsigned I = 0; I != 4000; ++I) {
    Trace.emitSimdLoad(0x100, 8, region::GpuPrivateBase + (I % 2048) * 64, 4,
                       8, 4);
    Trace.emitAlu(Opcode::FpAlu, 0x104, 9, 8);
    Trace.emitBranch(0x108, true);
  }
  Cycle Previous = ~Cycle(0);
  for (unsigned Warps : {1u, 2u, 4u, 8u, 16u}) {
    MemHierConfig HierConfig;
    MemorySystem Mem(HierConfig);
    Mem.mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 20);
    GpuConfig Config;
    Config.NumWarps = Warps;
    GpuCore Core(Config, Mem);
    SegmentResult R = Core.run(Trace, 0);
    EXPECT_LE(R.Cycles, Previous + Previous / 10) << "warps=" << Warps;
    Previous = R.Cycles;
  }
}

//===----------------------------------------------------------------------===//
// Lowering conservation properties across the whole (kernel x system)
// matrix.
//===----------------------------------------------------------------------===//

class LoweringMatrixProperty
    : public ::testing::TestWithParam<std::tuple<KernelId, CaseStudy>> {};

TEST_P(LoweringMatrixProperty, InstructionBudgetsConserved) {
  auto [Kernel, Study] = GetParam();
  if (Kernel == KernelId::MatrixMul || Kernel == KernelId::Dct)
    GTEST_SKIP() << "large kernels exercised in benches";
  SystemConfig Config = SystemConfig::forCaseStudy(Study);
  LoweredProgram Program = lowerKernel(Kernel, Config);
  const KernelCharacteristics &K = kernelCharacteristics(Kernel);
  uint64_t Cpu = 0, Gpu = 0, Serial = 0;
  for (const ExecStep &Step : Program.Steps) {
    if (Step.Kind == ExecKind::ParallelCompute) {
      Cpu += Step.CpuTrace.size();
      Gpu += Step.GpuTrace.size();
    } else if (Step.Kind == ExecKind::SerialCompute) {
      Serial += Step.CpuTrace.size();
    }
  }
  EXPECT_EQ(Cpu, K.CpuInsts);
  EXPECT_EQ(Gpu, K.GpuInsts);
  EXPECT_EQ(Serial, K.SerialInsts);
}

TEST_P(LoweringMatrixProperty, RunsAreDeterministic) {
  auto [Kernel, Study] = GetParam();
  if (Kernel == KernelId::MatrixMul || Kernel == KernelId::Dct)
    GTEST_SKIP() << "large kernels exercised in benches";
  SystemConfig Config = SystemConfig::forCaseStudy(Study);
  HeteroSimulator Sim(Config);
  RunResult A = Sim.run(Kernel);
  RunResult B = Sim.run(Kernel);
  EXPECT_DOUBLE_EQ(A.Time.totalNs(), B.Time.totalNs());
  EXPECT_EQ(A.TransferredBytes, B.TransferredBytes);
  EXPECT_EQ(A.PageFaults, B.PageFaults);
}

TEST_P(LoweringMatrixProperty, BreakdownComponentsNonNegative) {
  auto [Kernel, Study] = GetParam();
  if (Kernel == KernelId::MatrixMul || Kernel == KernelId::Dct)
    GTEST_SKIP();
  SystemConfig Config = SystemConfig::forCaseStudy(Study);
  HeteroSimulator Sim(Config);
  RunResult R = Sim.run(Kernel);
  EXPECT_GE(R.Time.SequentialNs, 0.0);
  EXPECT_GE(R.Time.ParallelNs, 0.0);
  EXPECT_GE(R.Time.CommunicationNs, -1e-9);
  EXPECT_GT(R.Time.totalNs(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LoweringMatrixProperty,
    ::testing::Combine(::testing::ValuesIn(allKernels()),
                       ::testing::Values(CaseStudy::CpuGpu, CaseStudy::Lrb,
                                         CaseStudy::Gmac, CaseStudy::Fusion,
                                         CaseStudy::IdealHetero)));

//===----------------------------------------------------------------------===//
// Memory-system latency ordering.
//===----------------------------------------------------------------------===//

TEST(MemoryProperty, LatencyRespectsHierarchyOrdering) {
  MemHierConfig Config;
  MemorySystem Mem(Config);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);

  // Cold (DRAM) access.
  Cycle Dram =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 0).Latency;
  // Warm L1.
  Cycle L1 =
      Mem.access(PuKind::Cpu, region::CpuPrivateBase, 4, false, 100000)
          .Latency;
  EXPECT_LT(L1, Dram);
  EXPECT_EQ(L1, Config.CpuL1.HitLatency);
}

TEST(MemoryProperty, AccessLatencyAlwaysPositive) {
  MemHierConfig Config;
  MemorySystem Mem(Config);
  XorShiftRng Rng(3);
  for (unsigned I = 0; I != 2000; ++I) {
    PuKind Pu = Rng.nextBool(0.5) ? PuKind::Cpu : PuKind::Gpu;
    Addr A = region::SharedBase + Rng.nextBelow(1 << 20);
    MemAccessResult R = Mem.access(Pu, A, 4, Rng.nextBool(0.3), I * 10);
    EXPECT_GT(R.Latency, 0u);
  }
}
