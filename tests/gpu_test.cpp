//===- tests/gpu_test.cpp - gpu/ unit tests -------------------------------===//

#include "gpu/Coalescer.h"
#include "gpu/GpuCore.h"
#include "memory/AddressSpaceModel.h"
#include "memory/MemorySystem.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Coalescer.
//===----------------------------------------------------------------------===//

namespace {
TraceRecord warpLoad(Addr Base, uint16_t BytesPerLane, uint8_t Lanes,
                     uint16_t Stride) {
  TraceRecord R;
  R.Op = Opcode::Load;
  R.MemAddr = Base;
  R.MemBytes = BytesPerLane;
  R.SimdLanes = Lanes;
  R.LaneStrideBytes = Stride;
  return R;
}
} // namespace

TEST(Coalescer, UnitStrideWordsCoalesceToOneLine) {
  // 8 lanes x 4B, stride 4, line-aligned: 32B inside one 64B line.
  auto Lines = coalesceWarpAccess(warpLoad(0x1000, 4, 8, 4));
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_EQ(Lines[0], 0x1000u);
}

TEST(Coalescer, MisalignedUnitStrideTouchesTwoLines) {
  auto Lines = coalesceWarpAccess(warpLoad(0x1030, 4, 8, 4));
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0], 0x1000u);
  EXPECT_EQ(Lines[1], 0x1040u);
}

TEST(Coalescer, LargeStrideScattersOneLinePerLane) {
  auto Lines = coalesceWarpAccess(warpLoad(0x1000, 4, 8, 256));
  EXPECT_EQ(Lines.size(), 8u);
}

TEST(Coalescer, LaneStraddlingLineBoundary) {
  // An 8B lane access starting at line end touches both lines.
  auto Lines = coalesceWarpAccess(warpLoad(0x103C, 8, 1, 0));
  ASSERT_EQ(Lines.size(), 2u);
}

TEST(Coalescer, SingleLaneScalar) {
  auto Lines = coalesceWarpAccess(warpLoad(0x2000, 4, 1, 0));
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_EQ(Lines[0], 0x2000u);
}

TEST(Coalescer, ResultIsSortedUnique) {
  auto Lines = coalesceWarpAccess(warpLoad(0x1000, 4, 8, 16));
  for (size_t I = 1; I < Lines.size(); ++I)
    EXPECT_LT(Lines[I - 1], Lines[I]);
}

//===----------------------------------------------------------------------===//
// GPU core timing.
//===----------------------------------------------------------------------===//

namespace {

struct GpuFixture : ::testing::Test {
  MemHierConfig HierConfig;
  std::unique_ptr<MemorySystem> Mem;
  GpuConfig Config;

  void SetUp() override {
    Mem = std::make_unique<MemorySystem>(HierConfig);
    Mem->mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 20);
  }

  SegmentResult run(const TraceBuffer &Trace) {
    GpuCore Core(Config, *Mem);
    return Core.run(Trace, 0);
  }
};

} // namespace

TEST_F(GpuFixture, EmptyTraceIsFree) {
  TraceBuffer Trace;
  EXPECT_EQ(run(Trace).Cycles, 0u);
}

TEST_F(GpuFixture, BandwidthFloorAtIssueWidth) {
  TraceBuffer Trace;
  for (unsigned I = 0; I != 5000; ++I)
    Trace.emitAlu(Opcode::IntAlu, 0x100 + I * 4, uint8_t(8 + I % 24), 0);
  SegmentResult R = run(Trace);
  EXPECT_GE(R.Cycles, 5000u); // IssueWidth = 1.
  EXPECT_LE(R.Cycles, 5200u); // And not much more: independent work.
}

TEST_F(GpuFixture, EveryBranchStallsItsWarp) {
  Config.NumWarps = 1;
  Config.BranchStall = 8;
  TraceBuffer NoBranch, WithBranch;
  for (unsigned I = 0; I != 1000; ++I) {
    NoBranch.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
    WithBranch.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
    WithBranch.emitBranch(0x104, true);
  }
  SegmentResult A = run(NoBranch);
  SegmentResult B = run(WithBranch);
  EXPECT_EQ(B.BranchMispredicts, 1000u); // All branches pay.
  // Each branch adds >= BranchStall cycles to the single warp.
  EXPECT_GT(B.Cycles, A.Cycles + 1000 * Config.BranchStall);
}

TEST_F(GpuFixture, MoreWarpsHideBranchStalls) {
  auto MakeBranchy = []() {
    TraceBuffer Trace;
    for (unsigned I = 0; I != 4000; ++I) {
      Trace.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
      Trace.emitBranch(0x104, true);
    }
    return Trace;
  };
  Config.NumWarps = 1;
  SegmentResult OneWarp = run(MakeBranchy());
  Config.NumWarps = 16;
  SegmentResult SixteenWarps = run(MakeBranchy());
  EXPECT_LT(SixteenWarps.Cycles * 2, OneWarp.Cycles);
}

TEST_F(GpuFixture, MoreWarpsHideMemoryLatency) {
  auto MakeLoads = []() {
    TraceBuffer Trace;
    for (unsigned I = 0; I != 2000; ++I) {
      // Dependent use after each load inside an iteration.
      Trace.emitSimdLoad(0x100, 8, region::GpuPrivateBase + I * 64, 4, 8, 4);
      Trace.emitAlu(Opcode::FpAlu, 0x104, 9, 8);
    }
    return Trace;
  };
  Config.NumWarps = 1;
  SegmentResult OneWarp = run(MakeLoads());
  SetUp(); // Cold caches again.
  Config.NumWarps = 16;
  SegmentResult SixteenWarps = run(MakeLoads());
  EXPECT_LT(SixteenWarps.Cycles * 2, OneWarp.Cycles);
}

TEST_F(GpuFixture, CoalescedAccessCountsLineTransactions) {
  TraceBuffer Trace;
  // Scattered warp load: 8 distinct lines.
  Trace.emitSimdLoad(0x100, 8, region::GpuPrivateBase, 4, 8, 256);
  SegmentResult R = run(Trace);
  EXPECT_EQ(R.MemAccesses, 8u);

  TraceBuffer Trace2;
  Trace2.emitSimdLoad(0x100, 8, region::GpuPrivateBase + (1 << 18), 4, 8, 4);
  SegmentResult R2 = run(Trace2);
  EXPECT_EQ(R2.MemAccesses, 1u);
}

TEST_F(GpuFixture, ScratchpadFixedLatency) {
  TraceBuffer Trace;
  Trace.emitSmem(false, 0x100, 8, 0, 4);
  Trace.emitAlu(Opcode::IntAlu, 0x104, 9, 8);
  SegmentResult R = run(Trace);
  EXPECT_EQ(Mem->scratchpad().readCount(), 1u);
  // Smem latency (2) + dependent ALU: small, deterministic.
  EXPECT_LE(R.Cycles, 8u);
}

TEST_F(GpuFixture, StoresDoNotBlockWarpProgress) {
  TraceBuffer Trace;
  for (unsigned I = 0; I != 1000; ++I)
    Trace.emitSimdStore(0x100, 8, region::GpuPrivateBase + I * 64, 4, 8, 4);
  SegmentResult R = run(Trace);
  // Stores retire into the hierarchy without stalling dependents.
  EXPECT_LE(R.Cycles, 2500u);
}

TEST_F(GpuFixture, DataDependentBranchesDivergeAndCostMore) {
  Config.NumWarps = 1;
  Config.BranchStall = 8;
  Config.DivergentBranchFactor = 2;
  auto MakeBranchy = [](uint8_t CondReg) {
    TraceBuffer Trace;
    for (unsigned I = 0; I != 1000; ++I) {
      Trace.emitAlu(Opcode::IntAlu, 0x100, uint8_t(8 + I % 8), 0);
      Trace.emitBranch(0x104, I % 2 == 0, CondReg);
    }
    return Trace;
  };
  SegmentResult Loop = run(MakeBranchy(0));       // Uniform loop branch.
  SegmentResult Divergent = run(MakeBranchy(9));  // Data-dependent.
  // Each divergent branch pays an extra BranchStall (the final branch's
  // stall does not extend the segment, hence the - on the bound).
  EXPECT_GE(Divergent.Cycles + 8, Loop.Cycles + 1000 * 8);
}

TEST_F(GpuFixture, DivergenceFactorConfigurable) {
  Config.NumWarps = 1;
  Config.DivergentBranchFactor = 1; // Divergence modeling off.
  TraceBuffer Trace;
  for (unsigned I = 0; I != 500; ++I) {
    Trace.emitAlu(Opcode::IntAlu, 0x100, 8, 0);
    Trace.emitBranch(0x104, true, 9);
  }
  SegmentResult Off = run(Trace);
  Config.DivergentBranchFactor = 4;
  SegmentResult On = run(Trace);
  EXPECT_GT(On.Cycles, Off.Cycles);
}

TEST_F(GpuFixture, DeterministicAcrossRuns) {
  TraceBuffer Trace;
  for (unsigned I = 0; I != 3000; ++I) {
    Trace.emitSimdLoad(0x100, 8, region::GpuPrivateBase + (I % 512) * 64, 4,
                       8, 4);
    Trace.emitAlu(Opcode::FpMac, 0x104, 9, 8, 9);
    Trace.emitBranch(0x108, true);
  }
  SegmentResult A = run(Trace);
  SetUp();
  SegmentResult B = run(Trace);
  EXPECT_EQ(A.Cycles, B.Cycles);
}
