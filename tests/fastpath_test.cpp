//===- tests/fastpath_test.cpp - Fast-path differential equivalence -------===//
///
/// \file
/// The fast path's contract is *exact* equivalence: block-backed traces,
/// windowed expansion, and the Pattern-block closed-form fold must produce
/// results byte-identical to the fully materialized per-record reference
/// path. These tests run both paths (HETSIM_FASTPATH toggled through the
/// setFastPathForTesting hook) and assert identical RunResults and metrics
/// documents, plus targeted unit checks of the CPU/GPU fold against their
/// per-record references.
///
//===----------------------------------------------------------------------===//

#include "core/HeteroSimulator.h"
#include "gpu/GpuCore.h"
#include "memory/MemorySystem.h"
#include "obs/Metrics.h"
#include "trace/ComputeBlock.h"
#include "trace/TraceCache.h"

#include <gtest/gtest.h>

using namespace hetsim;

namespace {

/// Restores the environment-driven fast-path setting (and a cold trace
/// cache) no matter how a test exits.
struct FastPathGuard {
  ~FastPathGuard() {
    setFastPathForTesting(-1);
    TraceCache::global().clear();
  }
};

void expectSegmentEq(const SegmentResult &A, const SegmentResult &B,
                     const std::string &What) {
  EXPECT_EQ(A.Cycles, B.Cycles) << What;
  EXPECT_EQ(A.Insts, B.Insts) << What;
  EXPECT_EQ(A.MemAccesses, B.MemAccesses) << What;
  EXPECT_EQ(A.MemLatencySum, B.MemLatencySum) << What;
  EXPECT_EQ(A.MemLatencyMax, B.MemLatencyMax) << What;
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts) << What;
  EXPECT_EQ(A.ICacheMisses, B.ICacheMisses) << What;
  EXPECT_EQ(A.StoreForwards, B.StoreForwards) << What;
  EXPECT_EQ(A.PageFaults, B.PageFaults) << What;
  EXPECT_EQ(A.PageFaultCycles, B.PageFaultCycles) << What;
}

void expectRunResultEq(const RunResult &A, const RunResult &B,
                       const std::string &What) {
  EXPECT_EQ(A.Time.SequentialNs, B.Time.SequentialNs) << What;
  EXPECT_EQ(A.Time.ParallelNs, B.Time.ParallelNs) << What;
  EXPECT_EQ(A.Time.CommunicationNs, B.Time.CommunicationNs) << What;
  for (unsigned P = 0; P != NumRunPhases; ++P)
    EXPECT_EQ(A.Phases.Ns[P], B.Phases.Ns[P]) << What << " phase " << P;
  expectSegmentEq(A.CpuTotal, B.CpuTotal, What + " cpu");
  expectSegmentEq(A.GpuTotal, B.GpuTotal, What + " gpu");
  EXPECT_EQ(A.TransferredBytes, B.TransferredBytes) << What;
  EXPECT_EQ(A.TransferCount, B.TransferCount) << What;
  EXPECT_EQ(A.PageFaults, B.PageFaults) << What;
  EXPECT_EQ(A.OwnershipActions, B.OwnershipActions) << What;
  EXPECT_EQ(A.PushNs, B.PushNs) << What;
  EXPECT_EQ(A.CommSourceLines, B.CommSourceLines) << What;
}

/// Runs (Study, Kernel) with the fast path forced to \p Mode from a cold
/// trace cache and returns the result plus the metrics snapshot.
std::pair<RunResult, MetricsSnapshot> runOne(CaseStudy Study, KernelId Kernel,
                                             int Mode) {
  setFastPathForTesting(Mode);
  TraceCache::global().clear();
  HeteroSimulator Sim(SystemConfig::forCaseStudy(Study));
  RunResult Result = Sim.run(Kernel);
  MetricsSnapshot Metrics = Sim.collectMetrics(Result);
  return {Result, Metrics};
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-simulation differential: every kernel on every memory model.
//===----------------------------------------------------------------------===//

TEST(FastPathDifferential, AllKernelsAllModelsIdentical) {
  FastPathGuard Guard;
  for (CaseStudy Study : allCaseStudies()) {
    for (KernelId Kernel : allKernels()) {
      std::string What = std::string(caseStudyName(Study)) + "/" +
                         kernelName(Kernel);
      auto [RefResult, RefMetrics] = runOne(Study, Kernel, /*Mode=*/0);
      auto [FastResult, FastMetrics] = runOne(Study, Kernel, /*Mode=*/1);
      expectRunResultEq(RefResult, FastResult, What);
      // The metrics documents must match verbatim: same keys, same values.
      EXPECT_EQ(renderMetricsJson(RefMetrics), renderMetricsJson(FastMetrics))
          << What;
    }
  }
}

//===----------------------------------------------------------------------===//
// Pattern-block fold vs per-record reference.
//===----------------------------------------------------------------------===//

namespace {

/// A CPU steady-state loop body without global memory: ALU dependence
/// chain plus a loop branch (always taken) and a data-dependent branch
/// with a periodic outcome the gshare predictor learns.
PatternBlock makeCpuPattern(uint64_t Repeats, bool WithMemory) {
  PatternBlock P;
  const uint32_t Pc = 0x400;
  for (unsigned I = 0; I != 6; ++I)
    P.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  P.Body.emitAlu(Opcode::IntAlu, Pc + 0x40, 8, 9);
  P.Body.emitAlu(Opcode::FpMul, Pc + 0x44, 9, 8, 10);
  if (WithMemory)
    P.Body.emitLoad(Pc + 0x48, 10, region::CpuPrivateBase + 0x100, 4);
  else
    P.Body.emitAlu(Opcode::FpMac, Pc + 0x48, 10, 9, 8);
  P.Body.emitAlu(Opcode::IntAlu, Pc + 0x4C, 11, 10);
  P.Body.emitBranch(Pc + 0x50, /*Taken=*/true, 11);
  P.Body.emitAlu(Opcode::IntAlu, Pc + 0x54, 12, 11);
  P.Body.emitBranch(Pc + 0x58, /*Taken=*/true);
  P.BodyRepeats = Repeats;
  for (unsigned I = 0; I != 4; ++I)
    P.Epilogue.emitAlu(Opcode::FpAlu, Pc + 0x80 + I * 4, uint8_t(16 + I), 8);
  return P;
}

/// A GPU steady-state body sized to a whole number of warp rotations
/// (NumWarps * WarpChunkRecords records) with scratchpad traffic only.
PatternBlock makeGpuPattern(const GpuConfig &Config, uint64_t Repeats) {
  PatternBlock P;
  const uint32_t Pc = 0x800;
  const unsigned Rotation = Config.NumWarps * Config.WarpChunkRecords;
  for (unsigned I = 0; I != 8; ++I)
    P.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  for (unsigned I = 0; I != Rotation; ++I) {
    uint8_t Reg = uint8_t(8 + I % 24);
    switch (I % 4) {
    case 0:
      P.Body.emitSmem(/*IsStore=*/false, Pc + 0x100 + I * 4, Reg,
                      (I * 32) % (16 * 1024), 4, 8, 4);
      break;
    case 1:
      P.Body.emitAlu(Opcode::FpMac, Pc + 0x100 + I * 4, Reg, uint8_t(8),
                     uint8_t(9));
      break;
    case 2:
      P.Body.emitSmem(/*IsStore=*/true, Pc + 0x100 + I * 4, Reg,
                      (I * 32) % (16 * 1024), 4, 8, 4);
      break;
    case 3:
      P.Body.emitBranch(Pc + 0x100 + I * 4, /*Taken=*/true);
      break;
    }
  }
  P.BodyRepeats = Repeats;
  for (unsigned I = 0; I != 4; ++I)
    P.Epilogue.emitAlu(Opcode::IntAlu, Pc + 0x40 + I * 4, uint8_t(16 + I), 8);
  return P;
}

SegmentResult runCpuPattern(const std::shared_ptr<const BlockTrace> &Block,
                            bool Fast) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  CpuCore Core(CpuConfig(), Mem);
  if (!Fast)
    return Core.run(Block->materialized(), 0);
  setFastPathForTesting(1);
  SegmentResult R = Core.run(SharedTrace(Block), 0);
  setFastPathForTesting(-1);
  return R;
}

SegmentResult runGpuPattern(const std::shared_ptr<const BlockTrace> &Block,
                            bool Fast) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 20);
  GpuCore Core(GpuConfig(), Mem);
  if (!Fast)
    return Core.run(Block->materialized(), 0);
  setFastPathForTesting(1);
  SegmentResult R = Core.run(SharedTrace(Block), 0);
  setFastPathForTesting(-1);
  return R;
}

} // namespace

TEST(FastPathFold, CpuPatternFoldMatchesReference) {
  FastPathGuard Guard;
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(20000, /*WithMemory=*/false));
  SegmentResult Ref = runCpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runCpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "cpu fold");
  EXPECT_EQ(Ref.Insts, Block->totalRecords());
}

TEST(FastPathFold, CpuPatternWithMemoryFallsBackExactly) {
  // Global memory in the body disqualifies the fold; the windowed
  // per-record remainder must still match the reference bit for bit.
  FastPathGuard Guard;
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(2000, /*WithMemory=*/true));
  SegmentResult Ref = runCpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runCpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "cpu fallback");
}

TEST(FastPathFold, CpuShortPatternBelowWarmupMatches) {
  // Too few repeats to ever fold: exercises the pure per-record route
  // through runPatternBlock.
  FastPathGuard Guard;
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(3, /*WithMemory=*/false));
  SegmentResult Ref = runCpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runCpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "cpu short pattern");
}

TEST(FastPathFold, GpuPatternFoldMatchesReference) {
  FastPathGuard Guard;
  GpuConfig Config;
  auto Block =
      std::make_shared<const BlockTrace>(makeGpuPattern(Config, 64));
  SegmentResult Ref = runGpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runGpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "gpu fold");
  EXPECT_EQ(Ref.Insts, Block->totalRecords());
}

TEST(FastPathFold, GpuShortPatternMatches) {
  FastPathGuard Guard;
  GpuConfig Config;
  auto Block =
      std::make_shared<const BlockTrace>(makeGpuPattern(Config, 2));
  SegmentResult Ref = runGpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runGpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "gpu short pattern");
}

//===----------------------------------------------------------------------===//
// Windowed expansion equivalence at the trace layer.
//===----------------------------------------------------------------------===//

TEST(FastPathExpansion, WindowsConcatenateToMaterializedStream) {
  FastPathGuard Guard;
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::KMeans, region::CpuPrivateBase);
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = 50000;
  Req.Seed = 7;
  BlockTrace Block(KernelId::KMeans, Req, Layout);

  const TraceBuffer &Reference = Block.materialized();
  BlockExpander Expander(Block);
  TraceBuffer Window;
  size_t Pos = 0;
  while (!Expander.done()) {
    uint64_t Got = Expander.next(Window);
    ASSERT_GT(Got, 0u);
    for (size_t I = 0; I != Got; ++I, ++Pos) {
      ASSERT_LT(Pos, Reference.size());
      const TraceRecord &A = Window[I], &B = Reference[Pos];
      ASSERT_TRUE(A.MemAddr == B.MemAddr && A.Pc == B.Pc &&
                  A.MemBytes == B.MemBytes &&
                  A.LaneStrideBytes == B.LaneStrideBytes && A.Op == B.Op &&
                  A.DstReg == B.DstReg && A.SrcRegA == B.SrcRegA &&
                  A.SrcRegB == B.SrcRegB && A.SimdLanes == B.SimdLanes &&
                  A.IsTaken == B.IsTaken)
          << "record " << Pos;
    }
  }
  EXPECT_EQ(Pos, Reference.size());
}
