//===- tests/fastpath_test.cpp - Fast-path differential equivalence -------===//
///
/// \file
/// The fast path's contract is *exact* equivalence: block-backed traces,
/// windowed expansion, and the Pattern-block closed-form fold must produce
/// results byte-identical to the fully materialized per-record reference
/// path. These tests run both paths (HETSIM_FASTPATH toggled through the
/// setFastPathForTesting hook) and assert identical RunResults and metrics
/// documents, plus targeted unit checks of the CPU/GPU fold against their
/// per-record references.
///
//===----------------------------------------------------------------------===//

#include "core/HeteroSimulator.h"
#include "gpu/GpuCore.h"
#include "memory/FirstTouchTracker.h"
#include "memory/MemFast.h"
#include "memory/MemorySystem.h"
#include "obs/Metrics.h"
#include "trace/ComputeBlock.h"
#include "trace/TraceCache.h"

#include <gtest/gtest.h>

#include <map>

using namespace hetsim;

namespace {

/// Restores the environment-driven fast-path and memory-fidelity
/// settings (and a cold trace cache) no matter how a test exits.
struct FastPathGuard {
  ~FastPathGuard() {
    setFastPathForTesting(-1);
    setMemFastForTesting(-1);
    TraceCache::global().clear();
  }
};

void expectSegmentEq(const SegmentResult &A, const SegmentResult &B,
                     const std::string &What) {
  EXPECT_EQ(A.Cycles, B.Cycles) << What;
  EXPECT_EQ(A.Insts, B.Insts) << What;
  EXPECT_EQ(A.MemAccesses, B.MemAccesses) << What;
  EXPECT_EQ(A.MemLatencySum, B.MemLatencySum) << What;
  EXPECT_EQ(A.MemLatencyMax, B.MemLatencyMax) << What;
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts) << What;
  EXPECT_EQ(A.ICacheMisses, B.ICacheMisses) << What;
  EXPECT_EQ(A.StoreForwards, B.StoreForwards) << What;
  EXPECT_EQ(A.PageFaults, B.PageFaults) << What;
  EXPECT_EQ(A.PageFaultCycles, B.PageFaultCycles) << What;
  EXPECT_EQ(A.SampledRecords, B.SampledRecords) << What;
  EXPECT_EQ(A.SampledErrorCycles, B.SampledErrorCycles) << What;
}

void expectRunResultEq(const RunResult &A, const RunResult &B,
                       const std::string &What) {
  EXPECT_EQ(A.Time.SequentialNs, B.Time.SequentialNs) << What;
  EXPECT_EQ(A.Time.ParallelNs, B.Time.ParallelNs) << What;
  EXPECT_EQ(A.Time.CommunicationNs, B.Time.CommunicationNs) << What;
  for (unsigned P = 0; P != NumRunPhases; ++P)
    EXPECT_EQ(A.Phases.Ns[P], B.Phases.Ns[P]) << What << " phase " << P;
  expectSegmentEq(A.CpuTotal, B.CpuTotal, What + " cpu");
  expectSegmentEq(A.GpuTotal, B.GpuTotal, What + " gpu");
  EXPECT_EQ(A.TransferredBytes, B.TransferredBytes) << What;
  EXPECT_EQ(A.TransferCount, B.TransferCount) << What;
  EXPECT_EQ(A.PageFaults, B.PageFaults) << What;
  EXPECT_EQ(A.OwnershipActions, B.OwnershipActions) << What;
  EXPECT_EQ(A.PushNs, B.PushNs) << What;
  EXPECT_EQ(A.CommSourceLines, B.CommSourceLines) << What;
}

/// Runs (Study, Kernel) with the fast path forced to \p Mode from a cold
/// trace cache and returns the result plus the metrics snapshot.
std::pair<RunResult, MetricsSnapshot> runOne(CaseStudy Study, KernelId Kernel,
                                             int Mode) {
  setFastPathForTesting(Mode);
  TraceCache::global().clear();
  HeteroSimulator Sim(SystemConfig::forCaseStudy(Study));
  RunResult Result = Sim.run(Kernel);
  MetricsSnapshot Metrics = Sim.collectMetrics(Result);
  return {Result, Metrics};
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-simulation differential: every kernel on every memory model.
//===----------------------------------------------------------------------===//

TEST(FastPathDifferential, AllKernelsAllModelsIdentical) {
  FastPathGuard Guard;
  for (CaseStudy Study : allCaseStudies()) {
    for (KernelId Kernel : allKernels()) {
      std::string What = std::string(caseStudyName(Study)) + "/" +
                         kernelName(Kernel);
      auto [RefResult, RefMetrics] = runOne(Study, Kernel, /*Mode=*/0);
      auto [FastResult, FastMetrics] = runOne(Study, Kernel, /*Mode=*/1);
      expectRunResultEq(RefResult, FastResult, What);
      // The metrics documents must match verbatim: same keys, same values.
      EXPECT_EQ(renderMetricsJson(RefMetrics), renderMetricsJson(FastMetrics))
          << What;
    }
  }
}

//===----------------------------------------------------------------------===//
// Pattern-block fold vs per-record reference.
//===----------------------------------------------------------------------===//

namespace {

/// A CPU steady-state loop body without global memory: ALU dependence
/// chain plus a loop branch (always taken) and a data-dependent branch
/// with a periodic outcome the gshare predictor learns.
PatternBlock makeCpuPattern(uint64_t Repeats, bool WithMemory) {
  PatternBlock P;
  const uint32_t Pc = 0x400;
  for (unsigned I = 0; I != 6; ++I)
    P.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  P.Body.emitAlu(Opcode::IntAlu, Pc + 0x40, 8, 9);
  P.Body.emitAlu(Opcode::FpMul, Pc + 0x44, 9, 8, 10);
  if (WithMemory)
    P.Body.emitLoad(Pc + 0x48, 10, region::CpuPrivateBase + 0x100, 4);
  else
    P.Body.emitAlu(Opcode::FpMac, Pc + 0x48, 10, 9, 8);
  P.Body.emitAlu(Opcode::IntAlu, Pc + 0x4C, 11, 10);
  P.Body.emitBranch(Pc + 0x50, /*Taken=*/true, 11);
  P.Body.emitAlu(Opcode::IntAlu, Pc + 0x54, 12, 11);
  P.Body.emitBranch(Pc + 0x58, /*Taken=*/true);
  P.BodyRepeats = Repeats;
  for (unsigned I = 0; I != 4; ++I)
    P.Epilogue.emitAlu(Opcode::FpAlu, Pc + 0x80 + I * 4, uint8_t(16 + I), 8);
  return P;
}

/// A GPU steady-state body sized to a whole number of warp rotations
/// (NumWarps * WarpChunkRecords records) with scratchpad traffic only.
PatternBlock makeGpuPattern(const GpuConfig &Config, uint64_t Repeats) {
  PatternBlock P;
  const uint32_t Pc = 0x800;
  const unsigned Rotation = Config.NumWarps * Config.WarpChunkRecords;
  for (unsigned I = 0; I != 8; ++I)
    P.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  for (unsigned I = 0; I != Rotation; ++I) {
    uint8_t Reg = uint8_t(8 + I % 24);
    switch (I % 4) {
    case 0:
      P.Body.emitSmem(/*IsStore=*/false, Pc + 0x100 + I * 4, Reg,
                      (I * 32) % (16 * 1024), 4, 8, 4);
      break;
    case 1:
      P.Body.emitAlu(Opcode::FpMac, Pc + 0x100 + I * 4, Reg, uint8_t(8),
                     uint8_t(9));
      break;
    case 2:
      P.Body.emitSmem(/*IsStore=*/true, Pc + 0x100 + I * 4, Reg,
                      (I * 32) % (16 * 1024), 4, 8, 4);
      break;
    case 3:
      P.Body.emitBranch(Pc + 0x100 + I * 4, /*Taken=*/true);
      break;
    }
  }
  P.BodyRepeats = Repeats;
  for (unsigned I = 0; I != 4; ++I)
    P.Epilogue.emitAlu(Opcode::IntAlu, Pc + 0x40 + I * 4, uint8_t(16 + I), 8);
  return P;
}

SegmentResult runCpuPattern(const std::shared_ptr<const BlockTrace> &Block,
                            bool Fast) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  CpuCore Core(CpuConfig(), Mem);
  if (!Fast)
    return Core.run(Block->materialized(), 0);
  setFastPathForTesting(1);
  SegmentResult R = Core.run(SharedTrace(Block), 0);
  setFastPathForTesting(-1);
  return R;
}

SegmentResult runGpuPattern(const std::shared_ptr<const BlockTrace> &Block,
                            bool Fast) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 20);
  GpuCore Core(GpuConfig(), Mem);
  if (!Fast)
    return Core.run(Block->materialized(), 0);
  setFastPathForTesting(1);
  SegmentResult R = Core.run(SharedTrace(Block), 0);
  setFastPathForTesting(-1);
  return R;
}

} // namespace

TEST(FastPathFold, CpuPatternFoldMatchesReference) {
  FastPathGuard Guard;
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(20000, /*WithMemory=*/false));
  SegmentResult Ref = runCpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runCpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "cpu fold");
  EXPECT_EQ(Ref.Insts, Block->totalRecords());
}

TEST(FastPathFold, CpuPatternWithMemoryOracleModeFallsBackExactly) {
  // With the memory fast path forced off (the HETSIM_MEMFAST=0 oracle),
  // global memory in the body disqualifies the fold; the windowed
  // per-record remainder must still match the reference bit for bit.
  FastPathGuard Guard;
  setMemFastForTesting(0);
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(2000, /*WithMemory=*/true));
  SegmentResult Ref = runCpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runCpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "cpu fallback");
}

TEST(FastPathFold, CpuShortPatternBelowWarmupMatches) {
  // Too few repeats to ever fold: exercises the pure per-record route
  // through runPatternBlock.
  FastPathGuard Guard;
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(3, /*WithMemory=*/false));
  SegmentResult Ref = runCpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runCpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "cpu short pattern");
}

TEST(FastPathFold, GpuPatternFoldMatchesReference) {
  FastPathGuard Guard;
  GpuConfig Config;
  auto Block =
      std::make_shared<const BlockTrace>(makeGpuPattern(Config, 64));
  SegmentResult Ref = runGpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runGpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "gpu fold");
  EXPECT_EQ(Ref.Insts, Block->totalRecords());
}

TEST(FastPathFold, GpuShortPatternMatches) {
  FastPathGuard Guard;
  GpuConfig Config;
  auto Block =
      std::make_shared<const BlockTrace>(makeGpuPattern(Config, 2));
  SegmentResult Ref = runGpuPattern(Block, /*Fast=*/false);
  SegmentResult Fast = runGpuPattern(Block, /*Fast=*/true);
  expectSegmentEq(Ref, Fast, "gpu short pattern");
}

//===----------------------------------------------------------------------===//
// Windowed expansion equivalence at the trace layer.
//===----------------------------------------------------------------------===//

TEST(FastPathExpansion, WindowsConcatenateToMaterializedStream) {
  FastPathGuard Guard;
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::KMeans, region::CpuPrivateBase);
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = 50000;
  Req.Seed = 7;
  BlockTrace Block(KernelId::KMeans, Req, Layout);

  const TraceBuffer &Reference = Block.materialized();
  BlockExpander Expander(Block);
  TraceBuffer Window;
  size_t Pos = 0;
  while (!Expander.done()) {
    uint64_t Got = Expander.next(Window);
    ASSERT_GT(Got, 0u);
    for (size_t I = 0; I != Got; ++I, ++Pos) {
      ASSERT_LT(Pos, Reference.size());
      const TraceRecord &A = Window[I], &B = Reference[Pos];
      ASSERT_TRUE(A.MemAddr == B.MemAddr && A.Pc == B.Pc &&
                  A.MemBytes == B.MemBytes &&
                  A.LaneStrideBytes == B.LaneStrideBytes && A.Op == B.Op &&
                  A.DstReg == B.DstReg && A.SrcRegA == B.SrcRegA &&
                  A.SrcRegB == B.SrcRegB && A.SimdLanes == B.SimdLanes &&
                  A.IsTaken == B.IsTaken)
          << "record " << Pos;
    }
  }
  EXPECT_EQ(Pos, Reference.size());
}

//===----------------------------------------------------------------------===//
// Memory-phase fast path (DESIGN.md §11): differential equivalence.
//===----------------------------------------------------------------------===//

namespace {

/// Runs (Study, Kernel) with the block fast path on and the memory
/// fidelity tier forced to \p MemFast, from a cold trace cache.
std::pair<RunResult, MetricsSnapshot>
runOneMemFast(CaseStudy Study, KernelId Kernel, int MemFast) {
  setMemFastForTesting(MemFast);
  setFastPathForTesting(1);
  TraceCache::global().clear();
  HeteroSimulator Sim(SystemConfig::forCaseStudy(Study));
  RunResult Result = Sim.run(Kernel);
  MetricsSnapshot Metrics = Sim.collectMetrics(Result);
  return {Result, Metrics};
}

/// The metrics document minus the memfast.* observability counters,
/// which legitimately differ between fidelity tiers (fold attempts and
/// fall-back tallies are *about* the tier, not about the simulated
/// machine).
std::map<std::string, double> nonMemfastValues(const MetricsSnapshot &M) {
  std::map<std::string, double> Out;
  for (const auto &KV : M.values())
    if (KV.first.compare(0, 8, "memfast.") != 0)
      Out.insert(KV);
  return Out;
}

} // namespace

TEST(MemFastDifferential, ExactTierIdenticalAllKernelsAllModels) {
  // The exact tier's contract mirrors the block fast path's: verified
  // steady-state folding must be invisible in every simulated quantity,
  // across all six kernels on all five memory models.
  FastPathGuard Guard;
  for (CaseStudy Study : allCaseStudies()) {
    for (KernelId Kernel : allKernels()) {
      std::string What = std::string(caseStudyName(Study)) + "/" +
                         kernelName(Kernel);
      auto [RefResult, RefMetrics] = runOneMemFast(Study, Kernel, 0);
      auto [FoldResult, FoldMetrics] = runOneMemFast(Study, Kernel, 1);
      expectRunResultEq(RefResult, FoldResult, What);
      EXPECT_EQ(nonMemfastValues(RefMetrics), nonMemfastValues(FoldMetrics))
          << What;
      // The observability contract: the exact tier always reports its
      // mode, whether or not any fold engaged on this point. The six
      // paper kernels stream over large arrays with advancing cursors,
      // so their windows never repeat and a per-period fixed point never
      // forms — engagement on genuinely steady streams is covered by the
      // MemFastFold pattern tests below.
      EXPECT_EQ(FoldMetrics.get("memfast.mode"), 1.0) << What;
    }
  }
}

TEST(MemFastModes, WarmModeRunsAndReportsWarmAccesses) {
  FastPathGuard Guard;
  auto [Ref, RefMetrics] = runOneMemFast(CaseStudy::CpuGpu,
                                         KernelId::Reduction, 0);
  auto [Warm, WarmMetrics] = runOneMemFast(CaseStudy::CpuGpu,
                                           KernelId::Reduction, 2);
  // Functional warming changes timing, never instruction counts.
  EXPECT_EQ(Ref.CpuTotal.Insts, Warm.CpuTotal.Insts);
  EXPECT_EQ(Ref.GpuTotal.Insts, Warm.GpuTotal.Insts);
  EXPECT_GT(WarmMetrics.get("memfast.warm_accesses"), 0.0);
  EXPECT_GT(Warm.CpuTotal.Cycles, 0u);
  EXPECT_GT(Warm.GpuTotal.Cycles, 0u);
}

TEST(MemFastModes, SampledModeExtrapolatesWithBoundedError) {
  FastPathGuard Guard;
  auto [Ref, RefMetrics] = runOneMemFast(CaseStudy::CpuGpu,
                                         KernelId::Reduction, 0);
  auto [Samp, SampMetrics] = runOneMemFast(CaseStudy::CpuGpu,
                                           KernelId::Reduction, 3);
  // Sampling skips simulation, not records: instruction totals are exact.
  EXPECT_EQ(Ref.CpuTotal.Insts, Samp.CpuTotal.Insts);
  EXPECT_EQ(Ref.GpuTotal.Insts, Samp.GpuTotal.Insts);
  EXPECT_GT(SampMetrics.get("run.sampled_records"), 0.0);
  // Loose sanity bound on the estimate; goldens never use this tier.
  double RefC = double(Ref.CpuTotal.Cycles + Ref.GpuTotal.Cycles);
  double SampC = double(Samp.CpuTotal.Cycles + Samp.GpuTotal.Cycles);
  EXPECT_GT(SampC, 0.5 * RefC);
  EXPECT_LT(SampC, 2.0 * RefC);
}

//===----------------------------------------------------------------------===//
// Memory-phase fold vs per-record reference at the core level.
//===----------------------------------------------------------------------===//

namespace {

struct TierRun {
  SegmentResult Result;
  uint64_t Folds = 0;
  std::string Fallbacks; ///< "reason xN ..." diagnostic for failures.
};

std::string describeFallbacks(MemorySystem &Mem) {
  std::string Out;
  for (unsigned I = 0; I != NumMemFoldReasons; ++I) {
    uint64_t *C = Mem.memfastCounters().Fallback[I];
    if (C && *C != 0)
      Out += std::string(memFoldReasonName(MemFoldReason(I))) + " x" +
             std::to_string(*C) + " ";
  }
  return Out.empty() ? "none" : Out;
}

/// Runs a CPU pattern block at fidelity tier \p MemFast (the tier must
/// be set before the MemorySystem is built — the constructor caches it).
TierRun runCpuPatternTier(const std::shared_ptr<const BlockTrace> &Block,
                          int MemFast) {
  setMemFastForTesting(MemFast);
  setFastPathForTesting(1);
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);
  CpuCore Core(CpuConfig(), Mem);
  SegmentResult R = Core.run(SharedTrace(Block), 0);
  return {R, *Mem.memfastCounters().Folds, describeFallbacks(Mem)};
}

TierRun runGpuPatternTier(const std::shared_ptr<const BlockTrace> &Block,
                          int MemFast) {
  setMemFastForTesting(MemFast);
  setFastPathForTesting(1);
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Gpu, region::GpuPrivateBase, 1 << 20);
  GpuCore Core(GpuConfig(), Mem);
  SegmentResult R = Core.run(SharedTrace(Block), 0);
  return {R, *Mem.memfastCounters().Folds, describeFallbacks(Mem)};
}

/// GPU pattern whose body loads a fixed global address every rotation:
/// the memory side settles to L1 hits, so the memory-phase fold should
/// engage. The register pattern repeats every four records so each
/// warp's chunk is identical — asymmetric warps settle at different
/// per-window rates and there is no single-D fixed point to fold.
PatternBlock makeGpuPatternGlobal(const GpuConfig &Config,
                                  uint64_t Repeats) {
  PatternBlock P;
  const uint32_t Pc = 0x900;
  const unsigned Rotation = Config.NumWarps * Config.WarpChunkRecords;
  for (unsigned I = 0; I != 8; ++I)
    P.Prologue.emitAlu(Opcode::IntAlu, Pc + I * 4, uint8_t(8 + I), 0);
  for (unsigned I = 0; I != Rotation; ++I) {
    uint8_t Reg = uint8_t(8 + I % 4);
    if (I % 4 == 0)
      P.Body.emitLoad(Pc + 0x100 + I * 4, Reg,
                      region::GpuPrivateBase + 0x200, 4);
    else if (I % 4 == 3)
      P.Body.emitBranch(Pc + 0x100 + I * 4, /*Taken=*/true);
    else
      P.Body.emitAlu(Opcode::FpMac, Pc + 0x100 + I * 4, Reg, uint8_t(8),
                     uint8_t(9));
  }
  P.BodyRepeats = Repeats;
  for (unsigned I = 0; I != 4; ++I)
    P.Epilogue.emitAlu(Opcode::IntAlu, Pc + 0x40 + I * 4, uint8_t(16 + I), 8);
  return P;
}

} // namespace

TEST(MemFastFold, CpuPatternWithMemoryFoldsBitExactly) {
  // Steady L1-hit loads in the body: the whole-memory-system fold must
  // engage and still match the oracle bit for bit.
  FastPathGuard Guard;
  auto Block = std::make_shared<const BlockTrace>(
      makeCpuPattern(2000, /*WithMemory=*/true));
  TierRun Ref = runCpuPatternTier(Block, 0);
  TierRun Fold = runCpuPatternTier(Block, 1);
  expectSegmentEq(Ref.Result, Fold.Result, "cpu mem fold");
  EXPECT_EQ(Ref.Folds, 0u);
  EXPECT_GE(Fold.Folds, 1u) << "fallbacks: " << Fold.Fallbacks;
}

TEST(MemFastFold, GpuPatternWithMemoryFoldsBitExactly) {
  FastPathGuard Guard;
  GpuConfig Config;
  auto Block = std::make_shared<const BlockTrace>(
      makeGpuPatternGlobal(Config, 64));
  TierRun Ref = runGpuPatternTier(Block, 0);
  TierRun Fold = runGpuPatternTier(Block, 1);
  expectSegmentEq(Ref.Result, Fold.Result, "gpu mem fold");
  EXPECT_EQ(Ref.Folds, 0u);
  EXPECT_GE(Fold.Folds, 1u) << "fallbacks: " << Fold.Fallbacks;
}

//===----------------------------------------------------------------------===//
// Steady-state detector edge cases.
//===----------------------------------------------------------------------===//

TEST(SteadyStreamDetectorTest, SettlesOnConstantStride) {
  SteadyStreamDetector Det;
  for (Addr A = 0x1000; A != 0x1100; A += 0x40)
    Det.observe(A);
  EXPECT_TRUE(Det.steady());
  EXPECT_EQ(Det.stride(), 0x40);
  EXPECT_FALSE(Det.strideChanged());
}

TEST(SteadyStreamDetectorTest, StrideChangeMidWindowBreaksSteadyState) {
  SteadyStreamDetector Det;
  for (Addr A = 0x1000; A != 0x1100; A += 0x40)
    Det.observe(A);
  ASSERT_TRUE(Det.steady());
  Det.observe(0x1100 + 0x8); // Delta 0x48, not the established 0x40.
  EXPECT_TRUE(Det.strideChanged());
  EXPECT_FALSE(Det.steady());
  // The new stride (0x48, seeded by the breaking observation) must
  // re-earn MinRun consecutive deltas.
  Det.observe(0x1150);
  EXPECT_FALSE(Det.steady());
  Det.observe(0x1198);
  EXPECT_TRUE(Det.steady());
  EXPECT_EQ(Det.stride(), 0x48);
}

TEST(SteadyStreamDetectorTest, FlagsPageBoundaryCrossing) {
  SteadyStreamDetector Det(/*PageBytes=*/4096);
  Det.observe(4096 - 128);
  Det.observe(4096 - 64);
  EXPECT_FALSE(Det.crossedPage());
  Det.observe(4096); // First address of the next page.
  EXPECT_TRUE(Det.crossedPage());
  Det.observe(4096 + 64);
  EXPECT_FALSE(Det.crossedPage());
}

//===----------------------------------------------------------------------===//
// Component fixed-point check edge cases.
//===----------------------------------------------------------------------===//

namespace {

MshrFile::FoldSnap mshrSnap(std::vector<std::pair<Addr, Cycle>> Entries,
                            uint64_t FullStalls = 0) {
  MshrFile::FoldSnap S;
  S.Entries = std::move(Entries);
  S.FullStalls = FullStalls;
  return S;
}

} // namespace

TEST(MemFoldChecks, MshrEntryChurnRejectsFold) {
  // An entry allocated between window boundaries (MSHR filling toward
  // saturation) has no per-period fixed point.
  auto S1 = mshrSnap({});
  auto S2 = mshrSnap({{0x4000, 150}});
  auto S3 = mshrSnap({{0x4000, 150}, {0x4040, 250}});
  EXPECT_FALSE(checkMshrFold(S1, S2, S3, /*D=*/100, /*Floor=*/0));
}

TEST(MemFoldChecks, MshrSaturationStallBurstRejectsFold) {
  // Full-stall counts must advance uniformly; a saturation burst in one
  // window but not the other is not steady state.
  auto S1 = mshrSnap({{0x4000, 100}}, /*FullStalls=*/0);
  auto S2 = mshrSnap({{0x4000, 200}}, /*FullStalls=*/7);
  auto S3 = mshrSnap({{0x4000, 300}}, /*FullStalls=*/7);
  EXPECT_FALSE(checkMshrFold(S1, S2, S3, /*D=*/100, /*Floor=*/0));
}

TEST(MemFoldChecks, MshrAcceptsTranslatingAndExpiredEntries) {
  // Entries moving with the pipeline delta fold; an entry frozen at a
  // completion cycle at/below the floor is behaviorally dead and also
  // folds. A frozen entry *above* the floor could still merge a future
  // miss, so it must reject.
  auto S1 = mshrSnap({{0x4000, 1000}, {0x8000, 40}});
  auto S2 = mshrSnap({{0x4000, 1100}, {0x8000, 40}});
  auto S3 = mshrSnap({{0x4000, 1200}, {0x8000, 40}});
  EXPECT_TRUE(checkMshrFold(S1, S2, S3, /*D=*/100, /*Floor=*/50));
  EXPECT_FALSE(checkMshrFold(S1, S2, S3, /*D=*/100, /*Floor=*/30));
}

TEST(MemFoldChecks, CacheMixedSetUnderRefillRejectsFold) {
  // One touched (stamp-advancing) way plus one untouched valid way in
  // the same set cannot be certified while misses refill lines: the
  // growing stamps eventually pass the constants and flip LRU choices.
  Cache::FoldSnap S1, S2, S3;
  for (Cache::FoldSnap *S : {&S1, &S2, &S3}) {
    S->Ways = 2;
    S->Lines.resize(2);
    S->Lines[0].Valid = S->Lines[1].Valid = true;
    S->Lines[0].Tag = 0x10;
    S->Lines[1].Tag = 0x20;
    S->Lines[1].LruStamp = 5;
  }
  S1.NextStamp = 100;
  S2.NextStamp = 110;
  S3.NextStamp = 120;
  S1.Lines[0].LruStamp = 90;
  S2.Lines[0].LruStamp = 100;
  S3.Lines[0].LruStamp = 110;
  S1.Stats.Misses = 0;
  S2.Stats.Misses = 2;
  S3.Stats.Misses = 4;
  EXPECT_FALSE(checkCacheFold(S1, S2, S3));
  // With no refills in the window the same shape is safe: hits only
  // reorder stamps among the touched lines.
  S1.Stats.Misses = S2.Stats.Misses = S3.Stats.Misses = 0;
  EXPECT_TRUE(checkCacheFold(S1, S2, S3));
}

//===----------------------------------------------------------------------===//
// Whole-system fold observer edge cases.
//===----------------------------------------------------------------------===//

TEST(MemFoldObserverTest, FaultDuringSteadyStateRejectsWithFaultReason) {
  // A first-touch page fault inside an observation window breaks the
  // window-log match; the fault takes precedence over every other
  // classification.
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Gpu, region::SharedBase, 1 << 20);
  FirstTouchTracker FirstTouch(region::SharedBase, 1 << 20,
                               SmallPageBytes);
  SharedSpacePolicy Policy;
  Policy.FirstTouch = &FirstTouch;
  Mem.setSharedPolicy(Policy);

  MemFoldObserver Obs(Mem, PuKind::Gpu);
  Obs.snapshot(0);
  Obs.beginLog(0);
  Mem.access(PuKind::Gpu, region::SharedBase + 64, 4, /*IsWrite=*/false,
             /*NowPu=*/1000); // First touch of a shared page: faults.
  Obs.endLog();
  Obs.snapshot(1);
  Obs.beginLog(1);
  Mem.access(PuKind::Gpu, region::SharedBase + 64, 4, /*IsWrite=*/false,
             /*NowPu=*/2000); // Same page, already touched: no fault.
  Obs.endLog();
  Obs.snapshot(2);
  MemFoldReason Reason = MemFoldReason::None;
  EXPECT_FALSE(Obs.check(/*D=*/1000, /*FloorPu=*/0, Reason));
  EXPECT_EQ(Reason, MemFoldReason::Fault);
}

TEST(MemFoldObserverTest, StrideChangeAcrossWindowsRejects) {
  MemHierConfig HierConfig;
  MemorySystem Mem(HierConfig);
  Mem.mapRange(PuKind::Cpu, region::CpuPrivateBase, 1 << 20);

  MemFoldObserver Obs(Mem, PuKind::Cpu);
  Obs.snapshot(0);
  Obs.beginLog(0);
  Mem.access(PuKind::Cpu, region::CpuPrivateBase + 0x100, 4,
             /*IsWrite=*/false, /*NowPu=*/1000);
  Obs.endLog();
  Obs.snapshot(1);
  Obs.beginLog(1);
  Mem.access(PuKind::Cpu, region::CpuPrivateBase + 0x1100, 4,
             /*IsWrite=*/false, /*NowPu=*/2000); // Different address.
  Obs.endLog();
  Obs.snapshot(2);
  MemFoldReason Reason = MemFoldReason::None;
  EXPECT_FALSE(Obs.check(/*D=*/1000, /*FloorPu=*/0, Reason));
  EXPECT_EQ(Reason, MemFoldReason::StrideChange);
}
