//===- tests/result_store_test.cpp - Content-addressed result cache -------===//
///
/// \file
/// The result store's whole contract is "serving a stored entry is
/// indistinguishable from simulating": every RunResult field (doubles
/// included) must round-trip exactly, keys must separate any two inputs
/// the simulator distinguishes, corrupt files must read as misses, and an
/// interrupted-then-resumed sweep must render byte-identically to an
/// uninterrupted one.
///
//===----------------------------------------------------------------------===//

#include "core/ResultStore.h"
#include "core/SweepRunner.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace hetsim;

namespace {

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

void expectSegmentEq(const SegmentResult &A, const SegmentResult &B) {
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Insts, B.Insts);
  EXPECT_EQ(A.MemAccesses, B.MemAccesses);
  EXPECT_EQ(A.MemLatencySum, B.MemLatencySum);
  EXPECT_EQ(A.MemLatencyMax, B.MemLatencyMax);
  EXPECT_EQ(A.BranchMispredicts, B.BranchMispredicts);
  EXPECT_EQ(A.ICacheMisses, B.ICacheMisses);
  EXPECT_EQ(A.StoreForwards, B.StoreForwards);
  EXPECT_EQ(A.PageFaults, B.PageFaults);
  EXPECT_EQ(A.PageFaultCycles, B.PageFaultCycles);
}

/// Exact equality, doubles included — hex-float serialization means a
/// loaded entry must be bit-for-bit what was saved.
void expectResultEq(const RunResult &A, const RunResult &B) {
  EXPECT_EQ(A.Time.SequentialNs, B.Time.SequentialNs);
  EXPECT_EQ(A.Time.ParallelNs, B.Time.ParallelNs);
  EXPECT_EQ(A.Time.CommunicationNs, B.Time.CommunicationNs);
  for (unsigned P = 0; P != NumRunPhases; ++P)
    EXPECT_EQ(A.Phases.Ns[P], B.Phases.Ns[P]) << "phase " << P;
  expectSegmentEq(A.CpuTotal, B.CpuTotal);
  expectSegmentEq(A.GpuTotal, B.GpuTotal);
  EXPECT_EQ(A.TransferredBytes, B.TransferredBytes);
  EXPECT_EQ(A.TransferCount, B.TransferCount);
  EXPECT_EQ(A.PageFaults, B.PageFaults);
  EXPECT_EQ(A.OwnershipActions, B.OwnershipActions);
  EXPECT_EQ(A.PushNs, B.PushNs);
  EXPECT_EQ(A.CommSourceLines, B.CommSourceLines);
}

ResultStore::Entry simulateOne(const SystemConfig &Config,
                               const LoweredProgram &Program) {
  HeteroSimulator Simulator(Config);
  ResultStore::Entry E;
  E.Result = Simulator.runLowered(Program);
  E.Metrics = Simulator.collectMetrics(E.Result);
  return E;
}

TEST(ResultStore, RoundTripIsExact) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  ResultStore::Entry Saved = simulateOne(Config, Program);

  ResultStore Store(freshDir("result_store_roundtrip"));
  ASSERT_TRUE(Store.enabled());
  ResultStore::Key K = ResultStore::keyFor(Config, Program);

  ResultStore::Entry Loaded;
  EXPECT_FALSE(Store.load(K, Loaded)) << "cold store must miss";
  ASSERT_TRUE(Store.save(K, Saved));
  ASSERT_TRUE(Store.load(K, Loaded));
  expectResultEq(Loaded.Result, Saved.Result);
  ASSERT_EQ(Loaded.Metrics.values().size(), Saved.Metrics.values().size());
  for (const auto &[Name, Value] : Saved.Metrics.values()) {
    auto It = Loaded.Metrics.values().find(Name);
    ASSERT_NE(It, Loaded.Metrics.values().end()) << Name;
    EXPECT_EQ(It->second, Value) << Name;
  }
  EXPECT_EQ(Store.hits(), 1u);
  EXPECT_EQ(Store.misses(), 1u);
  EXPECT_EQ(Store.stores(), 1u);
}

TEST(ResultStore, KeysSeparateConfigsAndKernels) {
  SystemConfig Gmac = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  SystemConfig Fusion = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  LoweredProgram GmacRed = lowerKernel(KernelId::Reduction, Gmac);
  LoweredProgram FusionRed = lowerKernel(KernelId::Reduction, Fusion);
  LoweredProgram GmacSort = lowerKernel(KernelId::MergeSort, Gmac);

  ResultStore::Key A = ResultStore::keyFor(Gmac, GmacRed);
  ResultStore::Key B = ResultStore::keyFor(Fusion, FusionRed);
  ResultStore::Key C = ResultStore::keyFor(Gmac, GmacSort);
  EXPECT_NE(A.ConfigHash, B.ConfigHash);
  EXPECT_NE(A.TraceHash, C.TraceHash);
  EXPECT_EQ(A.CodeVersion, ResultStoreCodeVersion);

  // Keys are pure content functions: rederiving yields the same key.
  ResultStore::Key A2 =
      ResultStore::keyFor(Gmac, lowerKernel(KernelId::Reduction, Gmac));
  EXPECT_EQ(A.ConfigHash, A2.ConfigHash);
  EXPECT_EQ(A.TraceHash, A2.TraceHash);
}

TEST(ResultStore, ConfigOverrideChangesKey) {
  SystemConfig Base = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  ConfigStore Overrides;
  Overrides.setInt("comm.lib_pf", 0);
  SystemConfig Tweaked = SystemConfig::forCaseStudy(CaseStudy::Lrb, Overrides);
  EXPECT_NE(hashSystemConfig(Base), hashSystemConfig(Tweaked));
}

TEST(ResultStore, DisabledStoreMissesAndRefusesSaves) {
  ResultStore Store((std::string()));
  EXPECT_FALSE(Store.enabled());
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  ResultStore::Key K = ResultStore::keyFor(Config, Program);
  ResultStore::Entry E;
  EXPECT_FALSE(Store.load(K, E));
  EXPECT_FALSE(Store.save(K, simulateOne(Config, Program)));
}

TEST(ResultStore, TruncatedEntryReadsAsMiss) {
  std::string Dir = freshDir("result_store_truncated");
  ResultStore Store(Dir);
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  ResultStore::Key K = ResultStore::keyFor(Config, Program);
  ASSERT_TRUE(Store.save(K, simulateOne(Config, Program)));

  // Chop every stored entry in half — a killed writer can't produce this
  // (writes are temp+rename), but a resume must still survive it.
  for (const auto &File : std::filesystem::directory_iterator(Dir)) {
    auto Size = std::filesystem::file_size(File.path());
    std::filesystem::resize_file(File.path(), Size / 2);
  }
  ResultStore::Entry E;
  EXPECT_FALSE(Store.load(K, E));

  // And garbage content is equally a miss, not a crash.
  for (const auto &File : std::filesystem::directory_iterator(Dir)) {
    std::ofstream Out(File.path(), std::ios::trunc);
    Out << "not a result file\n";
  }
  EXPECT_FALSE(Store.load(K, E));
}

TEST(ResultStore, InterruptedSweepResumesByteIdentically) {
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : {CaseStudy::CpuGpu, CaseStudy::Gmac})
    for (KernelId Kernel : {KernelId::Reduction, KernelId::MergeSort})
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);

  // Reference: one uninterrupted run with no store.
  SweepRunner Reference(1);
  std::vector<RunResult> Want = Reference.run(Points);

  // "Killed" run: only the first half of the sweep completes, persisting
  // its points into the store.
  std::string Dir = freshDir("result_store_resume");
  std::vector<SweepPoint> Half(Points.begin(),
                               Points.begin() + long(Points.size() / 2));
  SweepRunner Interrupted(1);
  Interrupted.setResultStoreDir(Dir);
  Interrupted.run(Half);
  EXPECT_EQ(Interrupted.telemetry().StoreMisses, Half.size());

  // Resume: the full sweep against the same store serves the completed
  // half and simulates the rest — and matches the reference exactly.
  SweepRunner Resumed(1);
  Resumed.setResultStoreDir(Dir);
  std::vector<RunResult> Got = Resumed.run(Points);
  EXPECT_EQ(Resumed.telemetry().StoreHits, Half.size());
  EXPECT_EQ(Resumed.telemetry().StoreMisses, Points.size() - Half.size());
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I != Got.size(); ++I) {
    SCOPED_TRACE("point " + std::to_string(I));
    expectResultEq(Got[I], Want[I]);
  }
  // The rendered metrics document — what experiment scripts diff — is
  // byte-identical too.
  EXPECT_EQ(renderSweepMetricsJson(Points, Resumed.metrics()),
            renderSweepMetricsJson(Points, Reference.metrics()));

  // A third run is served entirely from the store.
  SweepRunner Warm(1);
  Warm.setResultStoreDir(Dir);
  std::vector<RunResult> Served = Warm.run(Points);
  EXPECT_EQ(Warm.telemetry().StoreHits, Points.size());
  EXPECT_EQ(Warm.telemetry().StoreMisses, 0u);
  for (size_t I = 0; I != Served.size(); ++I)
    expectResultEq(Served[I], Want[I]);
}

TEST(ResultStore, FromEnvironmentHonorsVariable) {
  std::string Dir = freshDir("result_store_env");
  ::setenv("HETSIM_RESULT_STORE", Dir.c_str(), 1);
  ResultStore Enabled = ResultStore::fromEnvironment();
  ::unsetenv("HETSIM_RESULT_STORE");
  ResultStore Disabled = ResultStore::fromEnvironment();
  EXPECT_TRUE(Enabled.enabled());
  EXPECT_EQ(Enabled.root(), Dir);
  EXPECT_FALSE(Disabled.enabled());
}

} // namespace
