//===- tests/trace_test.cpp - trace/ unit tests ---------------------------===//

#include "trace/DataLayout.h"
#include "trace/Kernel.h"
#include "trace/KernelTraceGenerator.h"
#include "trace/Opcode.h"
#include "trace/TraceBuffer.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Opcode classification and latencies.
//===----------------------------------------------------------------------===//

TEST(Opcode, Classification) {
  EXPECT_TRUE(isMemoryOp(Opcode::Load));
  EXPECT_TRUE(isMemoryOp(Opcode::SmemStore));
  EXPECT_FALSE(isMemoryOp(Opcode::FpMac));
  EXPECT_TRUE(isGlobalMemoryOp(Opcode::Store));
  EXPECT_FALSE(isGlobalMemoryOp(Opcode::SmemLoad));
  EXPECT_TRUE(isStoreOp(Opcode::Store));
  EXPECT_FALSE(isStoreOp(Opcode::Load));
  EXPECT_TRUE(isBranchOp(Opcode::Branch));
}

TEST(Opcode, LatenciesArePositive) {
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    EXPECT_GE(executeLatency(PuKind::Cpu, Op), 1u) << opcodeName(Op);
    EXPECT_GE(executeLatency(PuKind::Gpu, Op), 1u) << opcodeName(Op);
  }
}

TEST(Opcode, DividesAreLong) {
  EXPECT_GT(executeLatency(PuKind::Cpu, Opcode::IntDiv),
            executeLatency(PuKind::Cpu, Opcode::IntAlu));
  EXPECT_GT(executeLatency(PuKind::Gpu, Opcode::FpDiv),
            executeLatency(PuKind::Gpu, Opcode::FpMul));
}

//===----------------------------------------------------------------------===//
// TraceBuffer emission.
//===----------------------------------------------------------------------===//

TEST(TraceBuffer, EmittersRecordFields) {
  TraceBuffer Buffer;
  Buffer.emitLoad(0x100, 5, 0xABC0, 4);
  Buffer.emitStore(0x104, 6, 0xABD0, 8);
  Buffer.emitAlu(Opcode::FpMac, 0x108, 7, 5, 6);
  Buffer.emitBranch(0x10C, true, 7);
  ASSERT_EQ(Buffer.size(), 4u);

  EXPECT_EQ(Buffer[0].Op, Opcode::Load);
  EXPECT_EQ(Buffer[0].DstReg, 5);
  EXPECT_EQ(Buffer[0].MemAddr, 0xABC0u);
  EXPECT_EQ(Buffer[0].MemBytes, 4);

  EXPECT_EQ(Buffer[1].Op, Opcode::Store);
  EXPECT_EQ(Buffer[1].SrcRegA, 6);

  EXPECT_EQ(Buffer[2].Op, Opcode::FpMac);
  EXPECT_EQ(Buffer[2].SrcRegB, 6);

  EXPECT_TRUE(Buffer[3].IsTaken);
  EXPECT_EQ(Buffer[3].SrcRegA, 7);
}

TEST(TraceBuffer, SimdFields) {
  TraceBuffer Buffer;
  Buffer.emitSimdLoad(0x200, 9, 0x1000, 4, 8, 4);
  ASSERT_EQ(Buffer.size(), 1u);
  EXPECT_EQ(Buffer[0].SimdLanes, 8);
  EXPECT_EQ(Buffer[0].LaneStrideBytes, 4);
  EXPECT_EQ(Buffer[0].totalBytes(), 32u);
}

TEST(TraceBuffer, MixCounts) {
  TraceBuffer Buffer;
  Buffer.emitLoad(0, 1, 0x40, 4);
  Buffer.emitStore(4, 1, 0x80, 4);
  Buffer.emitAlu(Opcode::IntAlu, 8, 2, 1);
  Buffer.emitBranch(12, false);
  Buffer.emitSmem(false, 16, 3, 0, 4);
  TraceMix Mix = Buffer.computeMix();
  EXPECT_EQ(Mix.Total, 5u);
  EXPECT_EQ(Mix.Loads, 1u);
  EXPECT_EQ(Mix.Stores, 1u);
  EXPECT_EQ(Mix.Alu, 1u);
  EXPECT_EQ(Mix.Branches, 1u);
  EXPECT_EQ(Mix.Smem, 1u);
  EXPECT_EQ(Mix.MemBytes, 8u);
}

TEST(TraceBuffer, RecordIsCompact) {
  EXPECT_LE(sizeof(TraceRecord), 24u);
}

//===----------------------------------------------------------------------===//
// Kernel metadata: Table III invariants.
//===----------------------------------------------------------------------===//

class KernelMetaTest : public ::testing::TestWithParam<KernelId> {};

TEST_P(KernelMetaTest, HostToDeviceSizesMatchInitialTransfer) {
  KernelId Id = GetParam();
  const KernelCharacteristics &K = kernelCharacteristics(Id);
  uint64_t H2D = 0;
  for (const DataObjectSpec &Spec : kernelDataObjects(Id))
    if (Spec.Dir == TransferDir::HostToDevice)
      H2D += Spec.Bytes;
  EXPECT_EQ(H2D, K.InitialTransferBytes);
}

TEST_P(KernelMetaTest, HasInputsAndOutputs) {
  KernelId Id = GetParam();
  bool HasIn = false, HasOut = false;
  for (const DataObjectSpec &Spec : kernelDataObjects(Id)) {
    HasIn |= Spec.Dir == TransferDir::HostToDevice;
    HasOut |= Spec.Dir == TransferDir::DeviceToHost;
    EXPECT_GT(Spec.Bytes, 0u);
  }
  EXPECT_TRUE(HasIn);
  EXPECT_TRUE(HasOut);
}

TEST_P(KernelMetaTest, RoundTripByName) {
  KernelId Id = GetParam();
  KernelId Found;
  ASSERT_TRUE(kernelByName(kernelName(Id), Found));
  EXPECT_EQ(Found, Id);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelMetaTest,
                         ::testing::ValuesIn(allKernels()));

TEST(KernelMeta, TableThreeValues) {
  // Spot-check the exact Table III numbers.
  const KernelCharacteristics &R =
      kernelCharacteristics(KernelId::Reduction);
  EXPECT_EQ(R.CpuInsts, 70006u);
  EXPECT_EQ(R.GpuInsts, 70001u);
  EXPECT_EQ(R.SerialInsts, 99996u);
  EXPECT_EQ(R.NumComms, 2u);
  EXPECT_EQ(R.InitialTransferBytes, 320512u);

  const KernelCharacteristics &M = kernelCharacteristics(KernelId::MatrixMul);
  EXPECT_EQ(M.CpuInsts, 8585229u);
  EXPECT_EQ(M.InitialTransferBytes, 524288u);

  const KernelCharacteristics &KM = kernelCharacteristics(KernelId::KMeans);
  EXPECT_EQ(KM.NumComms, 6u);
  EXPECT_EQ(KM.GpuRounds, 3u);
}

TEST(KernelMeta, UnknownNameRejected) {
  KernelId Out;
  EXPECT_FALSE(kernelByName("not a kernel", Out));
}

//===----------------------------------------------------------------------===//
// DataLayout.
//===----------------------------------------------------------------------===//

TEST(DataLayout, LinearPlacementIsAlignedAndDisjoint) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Reduction, 0x10000000, 4096);
  const auto &Segments = Layout.segments();
  ASSERT_EQ(Segments.size(), 3u);
  for (size_t I = 0; I != Segments.size(); ++I) {
    EXPECT_EQ(Segments[I].Base % 4096, 0u);
    if (I > 0) {
      EXPECT_GE(Segments[I].Base,
                Segments[I - 1].Base + Segments[I - 1].Bytes);
    }
  }
}

TEST(DataLayout, LookupAndContainment) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::MergeSort, 0x1000, 64);
  const DataSegment &Keys = Layout.segment("keys");
  EXPECT_TRUE(Keys.contains(Keys.Base));
  EXPECT_TRUE(Keys.contains(Keys.Base + Keys.Bytes - 1));
  EXPECT_FALSE(Keys.contains(Keys.Base + Keys.Bytes));
  EXPECT_TRUE(Layout.hasSegment("sorted"));
  EXPECT_FALSE(Layout.hasSegment("nope"));
  EXPECT_EQ(Layout.segmentContaining(Keys.Base + 8), &Keys);
  EXPECT_EQ(Layout.segmentContaining(0x10), nullptr);
}

TEST(DataLayout, TotalBytes) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::KMeans, 0x2000);
  EXPECT_EQ(Layout.totalBytes(), 136192u + 5120u);
}

//===----------------------------------------------------------------------===//
// Generators: exact budgets, containment, determinism.
//===----------------------------------------------------------------------===//

struct GenCase {
  KernelId Kernel;
  PuKind Pu;
};

class GeneratorTest
    : public ::testing::TestWithParam<std::tuple<KernelId, PuKind>> {};

TEST_P(GeneratorTest, ExactInstructionBudget) {
  auto [Kernel, Pu] = GetParam();
  KernelDataLayout Layout = KernelDataLayout::makeLinear(Kernel, 0x10000000);
  GenRequest Req;
  Req.Pu = Pu;
  Req.InstCount = 5000;
  Req.Split = Pu == PuKind::Cpu ? WorkSplit::FirstHalf
                                : WorkSplit::SecondHalf;
  TraceBuffer Trace =
      KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
  EXPECT_EQ(Trace.size(), 5000u);
}

TEST_P(GeneratorTest, AddressesStayInsidePlacedObjects) {
  auto [Kernel, Pu] = GetParam();
  KernelDataLayout Layout = KernelDataLayout::makeLinear(Kernel, 0x10000000);
  GenRequest Req;
  Req.Pu = Pu;
  Req.InstCount = 8000;
  TraceBuffer Trace =
      KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
  for (const TraceRecord &R : Trace) {
    if (!isGlobalMemoryOp(R.Op))
      continue;
    Addr Last = R.MemAddr + (R.SimdLanes - 1) * uint64_t(R.LaneStrideBytes) +
                R.MemBytes - 1;
    EXPECT_NE(Layout.segmentContaining(R.MemAddr), nullptr)
        << kernelName(Kernel) << " base address escaped";
    EXPECT_NE(Layout.segmentContaining(Last), nullptr)
        << kernelName(Kernel) << " last lane escaped";
  }
}

TEST_P(GeneratorTest, Deterministic) {
  auto [Kernel, Pu] = GetParam();
  KernelDataLayout Layout = KernelDataLayout::makeLinear(Kernel, 0x10000000);
  GenRequest Req;
  Req.Pu = Pu;
  Req.InstCount = 3000;
  Req.Seed = 17;
  const KernelTraceGenerator &Gen = KernelTraceGenerator::forKernel(Kernel);
  TraceBuffer A = Gen.generateCompute(Req, Layout);
  TraceBuffer B = Gen.generateCompute(Req, Layout);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Op, B[I].Op);
    EXPECT_EQ(A[I].MemAddr, B[I].MemAddr);
    EXPECT_EQ(A[I].IsTaken, B[I].IsTaken);
  }
}

TEST_P(GeneratorTest, MixIsPlausible) {
  auto [Kernel, Pu] = GetParam();
  KernelDataLayout Layout = KernelDataLayout::makeLinear(Kernel, 0x10000000);
  GenRequest Req;
  Req.Pu = Pu;
  Req.InstCount = 20000;
  TraceBuffer Trace =
      KernelTraceGenerator::forKernel(Kernel).generateCompute(Req, Layout);
  TraceMix Mix = Trace.computeMix();
  // Every kernel loop has memory traffic, ALU work, and loop branches.
  EXPECT_GT(Mix.Loads, 0u);
  EXPECT_GT(Mix.Alu, 0u);
  EXPECT_GT(Mix.Branches, 0u);
  double MemFrac = double(Mix.Loads + Mix.Stores) / double(Mix.Total);
  EXPECT_GT(MemFrac, 0.05);
  EXPECT_LT(MemFrac, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsBothPus, GeneratorTest,
    ::testing::Combine(::testing::ValuesIn(allKernels()),
                       ::testing::Values(PuKind::Cpu, PuKind::Gpu)));

TEST(Generator, GpuTracesUseSimd) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Reduction, 0x10000000);
  GenRequest Req;
  Req.Pu = PuKind::Gpu;
  Req.InstCount = 600;
  TraceBuffer Trace = KernelTraceGenerator::forKernel(KernelId::Reduction)
                          .generateCompute(Req, Layout);
  bool SawWideAccess = false;
  for (const TraceRecord &R : Trace)
    if (isGlobalMemoryOp(R.Op) && R.SimdLanes == 8)
      SawWideAccess = true;
  EXPECT_TRUE(SawWideAccess);
}

TEST(Generator, MatrixMulGpuUsesScratchpad) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::MatrixMul, 0x10000000);
  GenRequest Req;
  Req.Pu = PuKind::Gpu;
  Req.InstCount = 1000;
  TraceBuffer Trace = KernelTraceGenerator::forKernel(KernelId::MatrixMul)
                          .generateCompute(Req, Layout);
  EXPECT_GT(Trace.computeMix().Smem, 0u);
}

TEST(Generator, MergeSortBranchesAreDataDependent) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::MergeSort, 0x10000000);
  GenRequest Req;
  Req.Pu = PuKind::Cpu;
  Req.InstCount = 14000;
  TraceBuffer Trace = KernelTraceGenerator::forKernel(KernelId::MergeSort)
                          .generateCompute(Req, Layout);
  uint64_t Taken = 0, NotTaken = 0;
  for (const TraceRecord &R : Trace) {
    if (!isBranchOp(R.Op))
      continue;
    // Only the compare branch (it has a condition register and alternates).
    if (R.IsTaken)
      ++Taken;
    else
      ++NotTaken;
  }
  // Roughly half the compare branches go each way; loop branches are all
  // taken, so "taken" dominates but "not taken" must be a solid fraction.
  EXPECT_GT(NotTaken, Taken / 8);
}

TEST(Generator, SerialBudgetExact) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Reduction, 0x10000000);
  TraceBuffer Trace = KernelTraceGenerator::forKernel(KernelId::Reduction)
                          .generateSerial(99996, Layout);
  EXPECT_EQ(Trace.size(), 99996u);
}

TEST(Generator, SerialZeroBudgetEmpty) {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Dct, 0x10000000);
  TraceBuffer Trace =
      KernelTraceGenerator::forKernel(KernelId::Dct).generateSerial(0, Layout);
  EXPECT_TRUE(Trace.empty());
}

TEST(Generator, CpuAndGpuHalvesAreDisjoint) {
  // The CPU takes the first half of each (large) object and the GPU the
  // second; their address footprints must not overlap for split objects.
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::Reduction, 0x10000000);
  const KernelTraceGenerator &Gen =
      KernelTraceGenerator::forKernel(KernelId::Reduction);
  GenRequest CpuReq{PuKind::Cpu, 6000, 1, WorkSplit::FirstHalf};
  GenRequest GpuReq{PuKind::Gpu, 6000, 1, WorkSplit::SecondHalf};
  TraceBuffer CpuTrace = Gen.generateCompute(CpuReq, Layout);
  TraceBuffer GpuTrace = Gen.generateCompute(GpuReq, Layout);

  Addr CpuMax = 0;
  for (const TraceRecord &R : CpuTrace)
    if (isGlobalMemoryOp(R.Op))
      CpuMax = std::max(CpuMax, R.MemAddr);
  Addr GpuMin = ~Addr(0);
  for (const TraceRecord &R : GpuTrace)
    if (isGlobalMemoryOp(R.Op))
      GpuMin = std::min(GpuMin, R.MemAddr);
  // Compare within the first object only: take segment "a".
  const DataSegment &A = Layout.segment("a");
  Addr CpuMaxInA = 0, GpuMinInA = ~Addr(0);
  for (const TraceRecord &R : CpuTrace)
    if (isGlobalMemoryOp(R.Op) && A.contains(R.MemAddr))
      CpuMaxInA = std::max(CpuMaxInA, R.MemAddr);
  for (const TraceRecord &R : GpuTrace)
    if (isGlobalMemoryOp(R.Op) && A.contains(R.MemAddr))
      GpuMinInA = std::min(GpuMinInA, R.MemAddr);
  EXPECT_LT(CpuMaxInA, GpuMinInA);
}
