//===- tests/extensions_test.cpp - Extension-module tests -----------------===//
///
/// \file
/// Tests for the modules that extend the paper's core evaluation: trace
/// serialization, the GMAC-style software coherence runtime, the L2
/// stream prefetcher, the energy model, and the work-partitioning sweep.
///
//===----------------------------------------------------------------------===//

#include "cache/StreamPrefetcher.h"
#include "core/Experiments.h"
#include "core/ExtraWorkloads.h"
#include "energy/EnergyModel.h"
#include "memory/SoftwareCoherence.h"
#include "trace/KernelTraceGenerator.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Trace serialization.
//===----------------------------------------------------------------------===//

namespace {
TraceBuffer makeSampleTrace() {
  KernelDataLayout Layout =
      KernelDataLayout::makeLinear(KernelId::MergeSort, 0x10000000);
  GenRequest Req;
  Req.Pu = PuKind::Gpu;
  Req.InstCount = 2000;
  Req.Seed = 99;
  return KernelTraceGenerator::forKernel(KernelId::MergeSort)
      .generateCompute(Req, Layout);
}

bool tracesEqual(const TraceBuffer &A, const TraceBuffer &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    const TraceRecord &X = A[I], &Y = B[I];
    if (X.Op != Y.Op || X.MemAddr != Y.MemAddr || X.Pc != Y.Pc ||
        X.MemBytes != Y.MemBytes || X.LaneStrideBytes != Y.LaneStrideBytes ||
        X.DstReg != Y.DstReg || X.SrcRegA != Y.SrcRegA ||
        X.SrcRegB != Y.SrcRegB || X.SimdLanes != Y.SimdLanes ||
        X.IsTaken != Y.IsTaken)
      return false;
  }
  return true;
}
} // namespace

TEST(TraceIO, InMemoryRoundTrip) {
  TraceBuffer Original = makeSampleTrace();
  std::string Bytes = serializeTrace(Original);
  TraceBuffer Restored;
  ASSERT_TRUE(deserializeTrace(Bytes, Restored));
  EXPECT_TRUE(tracesEqual(Original, Restored));
}

TEST(TraceIO, EmptyTraceRoundTrip) {
  TraceBuffer Empty;
  TraceBuffer Restored;
  ASSERT_TRUE(deserializeTrace(serializeTrace(Empty), Restored));
  EXPECT_TRUE(Restored.empty());
}

TEST(TraceIO, RejectsBadMagic) {
  std::string Bytes = serializeTrace(makeSampleTrace());
  Bytes[0] = 'X';
  TraceBuffer Out;
  EXPECT_FALSE(deserializeTrace(Bytes, Out));
}

TEST(TraceIO, RejectsWrongVersion) {
  std::string Bytes = serializeTrace(makeSampleTrace());
  Bytes[8] = char(TraceFileVersion + 1);
  TraceBuffer Out;
  EXPECT_FALSE(deserializeTrace(Bytes, Out));
}

TEST(TraceIO, RejectsTruncation) {
  std::string Bytes = serializeTrace(makeSampleTrace());
  Bytes.resize(Bytes.size() - 5);
  TraceBuffer Out;
  EXPECT_FALSE(deserializeTrace(Bytes, Out));
}

TEST(TraceIO, RejectsTrailingGarbage) {
  std::string Bytes = serializeTrace(makeSampleTrace());
  Bytes += "junk";
  TraceBuffer Out;
  EXPECT_FALSE(deserializeTrace(Bytes, Out));
}

TEST(TraceIO, RejectsInvalidOpcode) {
  TraceBuffer One;
  One.emitLoad(0x100, 1, 0x40, 4);
  std::string Bytes = serializeTrace(One);
  // The opcode byte is at header(24) + 8 + 4 + 2 + 2 = offset 40.
  Bytes[40] = char(200);
  TraceBuffer Out;
  EXPECT_FALSE(deserializeTrace(Bytes, Out));
}

TEST(TraceIO, FileRoundTrip) {
  TraceBuffer Original = makeSampleTrace();
  std::string Path = "/tmp/hetsim_traceio_test.trace";
  ASSERT_TRUE(saveTrace(Original, Path));
  TraceBuffer Restored;
  ASSERT_TRUE(loadTrace(Path, Restored));
  EXPECT_TRUE(tracesEqual(Original, Restored));
  std::remove(Path.c_str());
}

TEST(TraceIO, LoadMissingFileFails) {
  TraceBuffer Out;
  EXPECT_FALSE(loadTrace("/tmp/does_not_exist_hetsim.trace", Out));
}

TEST(TraceIO, RandomBytesNeverCrash) {
  // Fuzz the deserializer: arbitrary input must be rejected, not crash.
  XorShiftRng Rng(0xF00D);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    std::string Bytes;
    size_t Length = Rng.nextBelow(256);
    for (size_t I = 0; I != Length; ++I)
      Bytes.push_back(char(Rng.nextBelow(256)));
    TraceBuffer Out;
    // Almost surely invalid; deserialize must return false (or, if the
    // fuzz happened to build a valid empty file, succeed gracefully).
    deserializeTrace(Bytes, Out);
  }
  SUCCEED();
}

TEST(TraceIO, CorruptedHeaderCountRejected) {
  TraceBuffer One;
  One.emitLoad(0x100, 1, 0x40, 4);
  std::string Bytes = serializeTrace(One);
  Bytes[16] = 50; // Claim 50 records; body has 1.
  TraceBuffer Out;
  EXPECT_FALSE(deserializeTrace(Bytes, Out));
}

//===----------------------------------------------------------------------===//
// Software coherence (GMAC runtime protocol).
//===----------------------------------------------------------------------===//

TEST(SwCoherence, FirstAccAccessMovesHostData) {
  SoftwareCoherence Runtime;
  Runtime.registerObject("a", 1000);
  EXPECT_EQ(Runtime.onAccAccess("a", false), 1000u);
  EXPECT_EQ(Runtime.state("a"), SwCohState::BothValid);
  // Already coherent: no second copy.
  EXPECT_EQ(Runtime.onAccAccess("a", false), 0u);
  EXPECT_EQ(Runtime.stats().HostToDevTransfers, 1u);
  EXPECT_EQ(Runtime.stats().AvoidedTransfers, 1u);
}

TEST(SwCoherence, AccWriteInvalidatesHostCopy) {
  SoftwareCoherence Runtime;
  Runtime.registerObject("c", 500, SwCohState::AccValid);
  EXPECT_EQ(Runtime.onAccAccess("c", true), 0u); // Output: nothing to move.
  EXPECT_EQ(Runtime.state("c"), SwCohState::AccValid);
  // The host reading it afterwards pulls the data back.
  EXPECT_EQ(Runtime.onHostAccess("c", false), 500u);
  EXPECT_EQ(Runtime.state("c"), SwCohState::BothValid);
}

TEST(SwCoherence, HostWriteForcesNextAccCopy) {
  SoftwareCoherence Runtime;
  Runtime.registerObject("centroids", 5120, SwCohState::AccValid);
  Runtime.onHostAccess("centroids", /*IsWrite=*/true); // Host updates.
  EXPECT_EQ(Runtime.state("centroids"), SwCohState::HostValid);
  EXPECT_EQ(Runtime.onAccAccess("centroids", true), 5120u);
}

TEST(SwCoherence, PingPongCountsEveryMove) {
  SoftwareCoherence Runtime;
  Runtime.registerObject("x", 64);
  for (int I = 0; I != 3; ++I) {
    Runtime.onAccAccess("x", true);
    Runtime.onHostAccess("x", true);
  }
  EXPECT_EQ(Runtime.stats().HostToDevTransfers, 3u);
  EXPECT_EQ(Runtime.stats().DevToHostTransfers, 3u);
  EXPECT_EQ(Runtime.stats().BytesMoved, 6u * 64);
}

TEST(SwCoherence, ReadsKeepBothValid) {
  SoftwareCoherence Runtime;
  Runtime.registerObject("t", 128);
  Runtime.onAccAccess("t", false);
  Runtime.onHostAccess("t", false);
  Runtime.onAccAccess("t", false);
  EXPECT_EQ(Runtime.stats().HostToDevTransfers, 1u); // Only the first.
}

TEST(SwCoherenceDeath, UnknownObjectAborts) {
  SoftwareCoherence Runtime;
  EXPECT_DEATH(Runtime.onAccAccess("ghost", false), "unknown object");
}

TEST(SwCoherence, DrivesAdsmLoweringTransfers) {
  // The ADSM lowering consults the runtime: k-means' "points" move once,
  // centroids ping-pong every round.
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::KMeans, Config);
  EXPECT_EQ(Program.countSteps(ExecKind::Transfer), 6u);
  // Initial sync moves points (+ nothing for the output object).
  for (const ExecStep &Step : Program.Steps) {
    if (Step.Kind == ExecKind::Transfer) {
      EXPECT_EQ(Step.Bytes, 136192u);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Stream prefetcher.
//===----------------------------------------------------------------------===//

TEST(Prefetcher, LearnsUnitStride) {
  StreamPrefetcher Prefetcher;
  std::vector<Addr> Got;
  for (Addr Line = 0; Line != 16; ++Line)
    Got = Prefetcher.onAccess(0x10000 + Line * CacheLineBytes);
  ASSERT_EQ(Got.size(), 2u); // Default degree.
  EXPECT_EQ(Got[0], 0x10000 + 16 * CacheLineBytes);
  EXPECT_EQ(Got[1], 0x10000 + 17 * CacheLineBytes);
}

TEST(Prefetcher, SilentWhileTraining) {
  StreamPrefetcher Prefetcher;
  EXPECT_TRUE(Prefetcher.onAccess(0x1000).empty());  // Allocation.
  EXPECT_TRUE(Prefetcher.onAccess(0x1040).empty());  // First stride.
}

TEST(Prefetcher, LearnsNegativeStride) {
  StreamPrefetcher Prefetcher;
  std::vector<Addr> Got;
  for (int I = 40; I >= 20; --I)
    Got = Prefetcher.onAccess(Addr(I) * CacheLineBytes);
  ASSERT_FALSE(Got.empty());
  EXPECT_EQ(Got[0], Addr(19) * CacheLineBytes);
}

TEST(Prefetcher, TracksMultipleStreams) {
  StreamPrefetcher Prefetcher;
  std::vector<Addr> A, B;
  for (unsigned I = 0; I != 8; ++I) {
    A = Prefetcher.onAccess(0x100000 + I * CacheLineBytes);
    B = Prefetcher.onAccess(0x900000 + I * CacheLineBytes);
  }
  EXPECT_FALSE(A.empty());
  EXPECT_FALSE(B.empty());
  EXPECT_EQ(Prefetcher.stats().StreamAllocations, 2u);
}

TEST(Prefetcher, StrideChangeRetrains) {
  StreamPrefetcher Prefetcher;
  for (unsigned I = 0; I != 8; ++I)
    Prefetcher.onAccess(0x10000 + I * CacheLineBytes);
  // Switch the same region to stride 2: first irregular access must not
  // prefetch.
  std::vector<Addr> Got = Prefetcher.onAccess(0x10000 + 20 * CacheLineBytes);
  EXPECT_TRUE(Got.empty());
}

TEST(Prefetcher, ReducesDramTrafficLatencyOnStreams) {
  // End to end: a streaming CPU workload on the memory system with and
  // without L2 prefetching; demand misses at the L2 must drop.
  auto RunStream = [](bool Enable) {
    MemHierConfig Config;
    Config.EnableL2Prefetch = Enable;
    MemorySystem Mem(Config);
    Mem.mapRange(PuKind::Cpu, 0x10000000, 4 << 20);
    uint64_t LatencySum = 0;
    for (Addr Offset = 0; Offset < (2 << 20); Offset += CacheLineBytes)
      LatencySum +=
          Mem.access(PuKind::Cpu, 0x10000000 + Offset, 4, false, Offset)
              .Latency;
    return LatencySum;
  };
  uint64_t Without = RunStream(false);
  uint64_t With = RunStream(true);
  EXPECT_LT(With, Without);
}

//===----------------------------------------------------------------------===//
// Energy model.
//===----------------------------------------------------------------------===//

TEST(Energy, ParamsFromConfig) {
  ConfigStore Config;
  Config.setDouble("energy.cpu_inst_pj", 123.0);
  EnergyParams Params = EnergyParams::fromConfig(Config);
  EXPECT_DOUBLE_EQ(Params.CpuInstPj, 123.0);
  EXPECT_DOUBLE_EQ(Params.GpuInstPj, EnergyParams().GpuInstPj);
}

TEST(Energy, RunEnergyIsPositiveAndDecomposes) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  HeteroSimulator Simulator(Config);
  RunResult Result = Simulator.run(KernelId::Reduction);
  EnergyReport Report =
      computeEnergy(EnergyParams(), Simulator.memory(), Result, true);
  EXPECT_GT(Report.CoreNj, 0.0);
  EXPECT_GT(Report.CacheNj, 0.0);
  EXPECT_GT(Report.DramNj, 0.0);
  EXPECT_GT(Report.CommNj, 0.0);
  EXPECT_NEAR(Report.totalNj(), Report.CoreNj + Report.CacheNj +
                                    Report.DramNj + Report.NetworkNj +
                                    Report.CommNj,
              1e-9);
}

TEST(Energy, IdealSystemSpendsNoCommEnergyOnTransfers) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  HeteroSimulator Simulator(Config);
  RunResult Result = Simulator.run(KernelId::Reduction);
  EnergyReport Report =
      computeEnergy(EnergyParams(), Simulator.memory(), Result, false);
  // No transferred bytes, no faults; comm energy is TLB walks only.
  EXPECT_LT(Report.CommNj, Report.CoreNj / 100.0);
}

TEST(Energy, PciTransfersCostMoreThanOnChip) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  HeteroSimulator Simulator(Config);
  RunResult Result = Simulator.run(KernelId::Reduction);
  EnergyReport Pci =
      computeEnergy(EnergyParams(), Simulator.memory(), Result, true);
  EnergyReport OnChip =
      computeEnergy(EnergyParams(), Simulator.memory(), Result, false);
  EXPECT_GT(Pci.CommNj, OnChip.CommNj);
}

TEST(Energy, SummaryMentionsTotal) {
  EnergyReport Report;
  Report.CoreNj = 500;
  Report.DramNj = 500;
  std::string Summary = Report.renderSummary();
  EXPECT_NE(Summary.find("total 1.0uJ"), std::string::npos);
  EXPECT_NE(Summary.find("core 50%"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Work partitioning.
//===----------------------------------------------------------------------===//

TEST(Partition, EvenSplitMatchesBaseline) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  HeteroSimulator Baseline(Config);
  RunResult Base = Baseline.run(KernelId::MergeSort);

  SystemConfig Half = Config;
  Half.CpuWorkFraction = 0.5;
  HeteroSimulator Sim(Half);
  RunResult R = Sim.run(KernelId::MergeSort);
  EXPECT_DOUBLE_EQ(R.Time.totalNs(), Base.Time.totalNs());
}

TEST(Partition, ExtremesShiftWork) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  Config.CpuWorkFraction = 1.0; // All work on the CPU.
  HeteroSimulator AllCpu(Config);
  RunResult R = AllCpu.run(KernelId::Reduction);
  EXPECT_EQ(R.GpuTotal.Insts, 0u);
  EXPECT_EQ(R.CpuTotal.Insts, 2u * 70006 + 99996);

  Config.CpuWorkFraction = 0.0;
  HeteroSimulator AllGpu(Config);
  RunResult R2 = AllGpu.run(KernelId::Reduction);
  EXPECT_EQ(R2.GpuTotal.Insts, 2u * 70001);
  EXPECT_EQ(R2.CpuTotal.Insts, 99996u); // Serial part stays on the CPU.
}

TEST(Partition, SweepCoversRangeAndFindsMinimum) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  std::vector<PartitionPoint> Points =
      sweepPartition(Config, KernelId::MergeSort, 4);
  ASSERT_EQ(Points.size(), 5u);
  EXPECT_DOUBLE_EQ(Points.front().CpuFraction, 0.0);
  EXPECT_DOUBLE_EQ(Points.back().CpuFraction, 1.0);

  PartitionPoint Best = findBestPartition(Config, KernelId::MergeSort, 4);
  for (const PartitionPoint &Point : Points)
    EXPECT_LE(Best.TotalNs, Point.TotalNs + 1e-9);
}

TEST(Partition, OverrideKeyApplies) {
  ConfigStore Overrides;
  Overrides.setDouble("sys.cpu_work_fraction", 0.25);
  SystemConfig Config =
      SystemConfig::forCaseStudy(CaseStudy::IdealHetero, Overrides);
  EXPECT_DOUBLE_EQ(Config.CpuWorkFraction, 0.25);
}

TEST(Partition, OverrideClamped) {
  ConfigStore Overrides;
  Overrides.setDouble("sys.cpu_work_fraction", 1.5);
  SystemConfig Config =
      SystemConfig::forCaseStudy(CaseStudy::IdealHetero, Overrides);
  EXPECT_DOUBLE_EQ(Config.CpuWorkFraction, 1.0);
}

//===----------------------------------------------------------------------===//
// Extra workloads.
//===----------------------------------------------------------------------===//

class ExtraWorkloadTest : public ::testing::TestWithParam<ExtraWorkloadId> {};

TEST_P(ExtraWorkloadTest, BuildsAndRunsOnDisjointSystem) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = buildExtraWorkload(GetParam(), Config, 8192);
  EXPECT_EQ(Program.countSteps(ExecKind::Transfer), 2u);
  EXPECT_EQ(Program.countSteps(ExecKind::ParallelCompute), 1u);
  HeteroSimulator Sim(Config);
  RunResult R = Sim.runLowered(Program);
  EXPECT_GT(R.Time.ParallelNs, 0.0);
  EXPECT_GT(R.Time.CommunicationNs, 0.0);
  EXPECT_GT(R.TransferredBytes, 0u);
}

TEST_P(ExtraWorkloadTest, UnifiedSystemNeedsNoTransfers) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::IdealHetero);
  LoweredProgram Program = buildExtraWorkload(GetParam(), Config, 8192);
  EXPECT_EQ(Program.countSteps(ExecKind::Transfer), 0u);
  HeteroSimulator Sim(Config);
  RunResult R = Sim.runLowered(Program);
  EXPECT_DOUBLE_EQ(R.Time.CommunicationNs, 0.0);
}

TEST_P(ExtraWorkloadTest, AccessesStayInsidePlacedObjects) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = buildExtraWorkload(GetParam(), Config, 4096);
  for (const ExecStep &Step : Program.Steps) {
    if (Step.Kind != ExecKind::ParallelCompute)
      continue;
    for (const TraceRecord &R : Step.CpuTrace) {
      if (isGlobalMemoryOp(R.Op)) {
        EXPECT_NE(Program.Place.CpuLayout.segmentContaining(R.MemAddr),
                  nullptr);
      }
    }
    for (const TraceRecord &R : Step.GpuTrace) {
      if (isGlobalMemoryOp(R.Op)) {
        EXPECT_NE(Program.Place.GpuLayout.segmentContaining(R.MemAddr),
                  nullptr);
      }
    }
  }
}

TEST_P(ExtraWorkloadTest, Deterministic) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  HeteroSimulator Sim(Config);
  RunResult A =
      Sim.runLowered(buildExtraWorkload(GetParam(), Config, 8192));
  RunResult B =
      Sim.runLowered(buildExtraWorkload(GetParam(), Config, 8192));
  EXPECT_DOUBLE_EQ(A.Time.totalNs(), B.Time.totalNs());
}

INSTANTIATE_TEST_SUITE_P(AllExtra, ExtraWorkloadTest,
                         ::testing::ValuesIn(allExtraWorkloads()));

TEST(ExtraWorkload, LargerProblemsLowerCommFraction) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  HeteroSimulator Sim(Config);
  RunResult Small = Sim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::StreamTriad, Config, 4096));
  RunResult Large = Sim.runLowered(
      buildExtraWorkload(ExtraWorkloadId::StreamTriad, Config, 262144));
  EXPECT_GT(Small.Time.commFraction(), Large.Time.commFraction());
}

//===----------------------------------------------------------------------===//
// Interleaved-contention mode.
//===----------------------------------------------------------------------===//

TEST(Interleaved, MatchesDefaultModeClosely) {
  // The interleaving changes uncore access order, not the workload; totals
  // must agree within a few percent.
  ConfigStore On;
  On.setBool("sys.interleaved_contention", true);
  HeteroSimulator Default(SystemConfig::forCaseStudy(CaseStudy::IdealHetero));
  HeteroSimulator Inter(
      SystemConfig::forCaseStudy(CaseStudy::IdealHetero, On));
  RunResult A = Default.run(KernelId::MergeSort);
  RunResult B = Inter.run(KernelId::MergeSort);
  EXPECT_NEAR(B.Time.totalNs() / A.Time.totalNs(), 1.0, 0.08);
  EXPECT_EQ(A.CpuTotal.Insts, B.CpuTotal.Insts);
  EXPECT_EQ(A.GpuTotal.Insts, B.GpuTotal.Insts);
}

TEST(Interleaved, Deterministic) {
  ConfigStore On;
  On.setBool("sys.interleaved_contention", true);
  HeteroSimulator Sim(SystemConfig::forCaseStudy(CaseStudy::Fusion, On));
  RunResult A = Sim.run(KernelId::Reduction);
  RunResult B = Sim.run(KernelId::Reduction);
  EXPECT_DOUBLE_EQ(A.Time.totalNs(), B.Time.totalNs());
}

TEST(Interleaved, SliceSizeDoesNotChangeWorkDone) {
  ConfigStore On;
  On.setBool("sys.interleaved_contention", true);
  SystemConfig Config =
      SystemConfig::forCaseStudy(CaseStudy::IdealHetero, On);
  Config.ContentionSliceRecords = 512;
  HeteroSimulator Small(Config);
  Config.ContentionSliceRecords = 16384;
  HeteroSimulator Large(Config);
  RunResult A = Small.run(KernelId::MergeSort);
  RunResult B = Large.run(KernelId::MergeSort);
  EXPECT_EQ(A.CpuTotal.MemAccesses, B.CpuTotal.MemAccesses);
  EXPECT_EQ(A.GpuTotal.MemAccesses, B.GpuTotal.MemAccesses);
}

//===----------------------------------------------------------------------===//
// Config-file loading.
//===----------------------------------------------------------------------===//

TEST(ConfigFile, LoadsAssignments) {
  std::string Path = "/tmp/hetsim_config_test.cfg";
  std::FILE *File = std::fopen(Path.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fputs("# comment\ncomm.lib_pf = 777\nmem.gpu_page_bytes = 8192\n",
             File);
  std::fclose(File);

  ConfigStore Config;
  ASSERT_TRUE(Config.loadFile(Path));
  EXPECT_EQ(Config.getInt("comm.lib_pf", 0), 777);
  EXPECT_EQ(Config.getInt("mem.gpu_page_bytes", 0), 8192);
  std::remove(Path.c_str());
}

TEST(ConfigFile, MissingFileFails) {
  ConfigStore Config;
  EXPECT_FALSE(Config.loadFile("/tmp/definitely_missing_hetsim.cfg"));
}
