//===- tests/consistency_test.cpp - Consistency-model checking ------------===//

#include "core/ConsistencyValidation.h"

#include <gtest/gtest.h>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// Basic checker semantics.
//===----------------------------------------------------------------------===//

TEST(Consistency, UnsynchronizedCrossPuWriteReadRaces) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.read(PuKind::Gpu, "a");
  auto Violations = Checker.check();
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Object, "a");
  EXPECT_EQ(Violations[0].EarlierIndex, 0u);
  EXPECT_EQ(Violations[0].LaterIndex, 1u);
}

TEST(Consistency, ReadReadNeverConflicts) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.read(PuKind::Cpu, "a");
  Checker.read(PuKind::Gpu, "a");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, SamePuIsProgramOrdered) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.write(PuKind::Cpu, "a");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, DifferentObjectsDoNotConflict) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.write(PuKind::Gpu, "b");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, ReleaseAcquireOrders) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.release(PuKind::Cpu, "a");
  Checker.acquire(PuKind::Gpu, "a");
  Checker.read(PuKind::Gpu, "a");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, AcquireWithoutReleaseDoesNotOrder) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.acquire(PuKind::Gpu, "a"); // No matching release before it.
  Checker.read(PuKind::Gpu, "a");
  EXPECT_FALSE(Checker.isRaceFree());
}

TEST(Consistency, ReleasePublishesAllPriorWrites) {
  // Standard release semantics: a release is a one-way fence that
  // publishes everything before it, not only the released object; the
  // matching acquire therefore orders the earlier write of 'a' too.
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.release(PuKind::Cpu, "b");
  Checker.acquire(PuKind::Gpu, "b");
  Checker.read(PuKind::Gpu, "a");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, AcquireBeforeReleaseInHistoryDoesNotOrder) {
  // The acquire precedes the only release in the history: no edge.
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.acquire(PuKind::Gpu, "b");
  Checker.write(PuKind::Cpu, "a");
  Checker.release(PuKind::Cpu, "b");
  Checker.read(PuKind::Gpu, "a");
  EXPECT_FALSE(Checker.isRaceFree());
}

TEST(Consistency, ReleaseAcquireIsTransitiveWithProgramOrder) {
  // CPU writes a, releases it; GPU acquires, then writes b; CPU acquires
  // b... ordering chains through program order on the GPU.
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.release(PuKind::Cpu, "a");
  Checker.acquire(PuKind::Gpu, "a");
  Checker.write(PuKind::Gpu, "b");
  Checker.release(PuKind::Gpu, "b");
  Checker.acquire(PuKind::Cpu, "b");
  Checker.read(PuKind::Cpu, "b");
  Checker.read(PuKind::Cpu, "a"); // Ordered transitively via b's edge? No:
  // a's release was CPU's own; CPU reading a is program-ordered anyway.
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, KernelLaunchOrdersPriorCpuWork) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "in");
  Checker.kernelLaunch();
  Checker.read(PuKind::Gpu, "in");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, KernelReturnOrdersGpuResults) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.kernelLaunch();
  Checker.write(PuKind::Gpu, "out");
  Checker.kernelReturn();
  Checker.read(PuKind::Cpu, "out");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, MissingJoinIsARace) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.kernelLaunch();
  Checker.write(PuKind::Gpu, "out");
  // No kernelReturn: the CPU reads unsynchronized GPU data.
  Checker.read(PuKind::Cpu, "out");
  EXPECT_FALSE(Checker.isRaceFree());
}

TEST(Consistency, LaunchDoesNotOrderLaterCpuWrites) {
  // Work the CPU does *after* the launch is not ordered before GPU reads.
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.kernelLaunch();
  Checker.write(PuKind::Cpu, "in"); // Late host update: racy.
  Checker.read(PuKind::Gpu, "in");
  EXPECT_FALSE(Checker.isRaceFree());
}

TEST(Consistency, BarrierOrdersEverything) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.write(PuKind::Gpu, "b");
  Checker.barrier(PuKind::Cpu);
  Checker.read(PuKind::Gpu, "a");
  Checker.read(PuKind::Cpu, "b");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, StrongModelNeverReports) {
  ConsistencyChecker Checker(ConsistencyModel::Strong);
  Checker.write(PuKind::Cpu, "a");
  Checker.write(PuKind::Gpu, "a"); // Racy under weak; defined under SC.
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, WriteWriteConflictDetected) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "a");
  Checker.write(PuKind::Gpu, "a");
  EXPECT_EQ(Checker.check().size(), 1u);
}

TEST(Consistency, CentralizedReleaseUsesSameEdges) {
  ConsistencyChecker Checker(ConsistencyModel::CentralizedRelease);
  Checker.write(PuKind::Cpu, "a");
  Checker.release(PuKind::Cpu, "a");
  Checker.acquire(PuKind::Gpu, "a");
  Checker.write(PuKind::Gpu, "a");
  EXPECT_TRUE(Checker.isRaceFree());
}

TEST(Consistency, ViolationDescriptionIsReadable) {
  ConsistencyChecker Checker(ConsistencyModel::Weak);
  Checker.write(PuKind::Cpu, "data");
  Checker.read(PuKind::Gpu, "data");
  auto Violations = Checker.check();
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_NE(Violations[0].Description.find("CPU write"), std::string::npos);
  EXPECT_NE(Violations[0].Description.find("GPU read"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Lowered programs are race-free under weak consistency.
//===----------------------------------------------------------------------===//

class ProgramRaceFreedom
    : public ::testing::TestWithParam<std::tuple<KernelId, CaseStudy>> {};

TEST_P(ProgramRaceFreedom, LoweredProgramsAreRaceFree) {
  auto [Kernel, Study] = GetParam();
  SystemConfig Config = SystemConfig::forCaseStudy(Study);
  LoweredProgram Program = lowerKernel(Kernel, Config);
  ConsistencyChecker Checker =
      buildSyncHistory(Program, ConsistencyModel::Weak);
  auto Violations = Checker.check();
  EXPECT_TRUE(Violations.empty())
      << kernelName(Kernel) << " on " << caseStudyName(Study) << ": "
      << (Violations.empty() ? "" : Violations.front().Description);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProgramRaceFreedom,
    ::testing::Combine(::testing::Values(KernelId::Reduction,
                                         KernelId::Convolution,
                                         KernelId::MergeSort,
                                         KernelId::KMeans),
                       ::testing::Values(CaseStudy::CpuGpu, CaseStudy::Lrb,
                                         CaseStudy::Gmac, CaseStudy::Fusion,
                                         CaseStudy::IdealHetero)));

TEST(ProgramRaceFreedomExtra, ValidateHelper) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  EXPECT_TRUE(validateRaceFree(Program));
  EXPECT_TRUE(validateRaceFree(Program, ConsistencyModel::Strong));
}
