//===- tests/race_detector_test.cpp - Whole-system race verifier ----------===//
//
// The cross-agent static race verifier: every shipped lowering must
// verify race-free, every constructed ordering bug must produce a
// structurally valid witness, co-run composition must distinguish
// private from shared allocations, and the sweep-wide lint report must
// be byte-identical across worker counts.
//
//===----------------------------------------------------------------------===//

#include "analysis/LintFuzzer.h"
#include "analysis/LintJson.h"
#include "analysis/SweepLinter.h"
#include "core/ConsistencyValidation.h"
#include "memory/FenceSemantics.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hetsim;

namespace {

size_t firstStepOfKind(const LoweredProgram &Program, ExecKind Kind) {
  for (size_t I = 0; I != Program.Steps.size(); ++I)
    if (Program.Steps[I].Kind == Kind)
      return I;
  ADD_FAILURE() << "no step of kind " << execKindName(Kind);
  return 0;
}

TEST(FenceSemantics, TableIFencesPerAddressSpace) {
  FenceSemantics Uni = FenceSemantics::make(AddressSpaceKind::Unified, false,
                                            false, ConsistencyModel::Weak);
  EXPECT_EQ(Uni.TransferInst, SpecialInst::None);
  EXPECT_TRUE(Uni.LaunchOrdersSharedRegion);
  EXPECT_FALSE(Uni.LazySerialPull);

  FenceSemantics Pas = FenceSemantics::make(AddressSpaceKind::PartiallyShared,
                                            true, false,
                                            ConsistencyModel::Weak);
  EXPECT_EQ(Pas.TransferInst, SpecialInst::ApiTr);
  EXPECT_TRUE(Pas.OwnershipRequired);
  EXPECT_FALSE(Pas.LaunchOrdersSharedRegion);

  FenceSemantics Dis = FenceSemantics::make(AddressSpaceKind::Disjoint, false,
                                            false, ConsistencyModel::Weak);
  EXPECT_EQ(Dis.TransferInst, SpecialInst::ApiPci);

  FenceSemantics Adsm = FenceSemantics::make(AddressSpaceKind::Adsm, false,
                                             true, ConsistencyModel::Weak);
  EXPECT_EQ(Adsm.TransferInst, SpecialInst::ApiPci);
  EXPECT_TRUE(Adsm.LazySerialPull);
  EXPECT_TRUE(Adsm.AsyncCopies);

  FenceSemantics Strong = FenceSemantics::make(
      AddressSpaceKind::Unified, false, false, ConsistencyModel::Strong);
  EXPECT_TRUE(Strong.everythingOrdered());
}

TEST(FenceSemantics, SpecialInstFenceEffects) {
  EXPECT_EQ(fenceEffect(SpecialInst::ApiAcq), FenceEffect::AcquireRelease);
  EXPECT_EQ(fenceEffect(SpecialInst::ApiPci), FenceEffect::TransferComplete);
  EXPECT_EQ(fenceEffect(SpecialInst::ApiTr), FenceEffect::TransferComplete);
  EXPECT_EQ(fenceEffect(SpecialInst::DmaWait), FenceEffect::EngineDrain);
  EXPECT_EQ(fenceEffect(SpecialInst::KernelLaunch), FenceEffect::Release);
  EXPECT_EQ(fenceEffect(SpecialInst::KernelJoin), FenceEffect::Acquire);
  EXPECT_EQ(fenceEffect(SpecialInst::None), FenceEffect::None);
}

TEST(RaceDetectorShipped, WholeDesignSpaceVerifiesRaceFree) {
  for (const SweepPoint &Point : shippedDesignSpace()) {
    SystemConfig Config = Point.Config;
    Config.applyOverrides(Point.Overrides);
    LoweredProgram Program = lowerKernel(Point.Kernel, Config);
    RaceReport Report = RaceDetector::analyze(Program, Config);
    EXPECT_TRUE(Report.clean())
        << Config.Name << " / " << kernelName(Point.Kernel) << ": "
        << Report.summary();
  }
}

TEST(RaceDetectorShipped, StrongConsistencyOrdersEverything) {
  // A lowering bug that races under weak ordering is ordered (and so
  // unreported) under Strong, mirroring the dynamic checker.
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t I = firstStepOfKind(Program, ExecKind::OwnershipToGpu);
  Program.Steps.erase(Program.Steps.begin() + static_cast<long>(I));
  EXPECT_FALSE(
      RaceDetector::analyze(Program, Config, ConsistencyModel::Weak)
          .clean());
  EXPECT_TRUE(
      RaceDetector::analyze(Program, Config, ConsistencyModel::Strong)
          .clean());
}

TEST(RaceDetectorWitness, DroppedOwnershipNamesTheSharedRegion) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t I = firstStepOfKind(Program, ExecKind::OwnershipToGpu);
  Program.Steps.erase(Program.Steps.begin() + static_cast<long>(I));

  CorunProgram Corun = corunFromSingle(std::move(Program), Config);
  RaceDetector Detector(Corun);
  RaceReport Report = Detector.detect();
  ASSERT_FALSE(Report.clean());
  const RaceWitness &Witness = Report.Races.front();
  EXPECT_NE(Witness.Location.find("@shared"), std::string::npos);
  EXPECT_TRUE(Witness.First.OwnershipScoped);
  EXPECT_NE(Witness.MissingEdge.find("api-acq"), std::string::npos);
  std::string Error;
  EXPECT_TRUE(validateWitness(Detector, Witness, Error)) << Error;
}

TEST(RaceDetectorWitness, UndrainedReadbackRacesWithProgramEnd) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t Last = HbGraph::npos;
  for (size_t I = 0; I != Program.Steps.size(); ++I)
    if (Program.Steps[I].Kind == ExecKind::Transfer &&
        Program.Steps[I].Dir == TransferDir::DeviceToHost)
      Last = I;
  ASSERT_NE(Last, HbGraph::npos);
  Program.Steps[Last].Async = true;

  CorunProgram Corun = corunFromSingle(std::move(Program), Config);
  RaceDetector Detector(Corun);
  RaceReport Report = Detector.detect();
  ASSERT_FALSE(Report.clean());
  const RaceWitness &Witness = Report.Races.front();
  EXPECT_NE(Witness.Location.find("@host"), std::string::npos);
  EXPECT_NE(Witness.MissingEdge.find("dma-wait"), std::string::npos);
  // One side of the pair executes on the DMA engine.
  EXPECT_TRUE(Witness.First.Lane == HbLane::Dma ||
              Witness.Second.Lane == HbLane::Dma);
  std::string Error;
  EXPECT_TRUE(validateWitness(Detector, Witness, Error)) << Error;
}

TEST(RaceDetectorCorun, PrivateCorunsStayRaceFreeEverywhere) {
  for (CaseStudy Study : allCaseStudies()) {
    SystemConfig Config = SystemConfig::forCaseStudy(Study);
    CorunProgram Corun =
        lowerCorun({KernelId::Reduction, KernelId::MatrixMul}, Config);
    RaceReport Report = RaceDetector(Corun).detect();
    EXPECT_TRUE(Report.clean())
        << Config.Name << ": " << Report.summary();
    EXPECT_TRUE(validateCorunRaceFree(Corun)) << Config.Name;
  }
}

TEST(RaceDetectorCorun, SharedOutputRacesAcrossAgents) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  CorunProgram Corun =
      lowerCorun({KernelId::Reduction, KernelId::Reduction}, Config, {"c"});
  ASSERT_EQ(Corun.SharedBases.size(), 1u);
  RaceDetector Detector(Corun);
  RaceReport Report = Detector.detect();
  ASSERT_FALSE(Report.clean());
  for (const RaceWitness &Witness : Report.Races) {
    EXPECT_NE(Witness.First.Agent, Witness.Second.Agent);
    EXPECT_EQ(Witness.Location.find("a0."), std::string::npos)
        << "shared location must be unqualified: " << Witness.Location;
    std::string Error;
    EXPECT_TRUE(validateWitness(Detector, Witness, Error)) << Error;
  }
}

TEST(RaceDetectorCorun, SharedInputIsHarmlessWithoutApertureCopies) {
  // Agents only read a shared input in host/unified spaces, so sharing
  // one is legal there; under an ownership-disciplined shared region
  // each agent stages its own aperture copy into the same allocation,
  // which the verifier must flag as cross-agent write-write.
  CorunProgram Ok = lowerCorun({KernelId::Reduction, KernelId::Reduction},
                               SystemConfig::forCaseStudy(CaseStudy::Fusion),
                               {"a"});
  EXPECT_TRUE(RaceDetector(Ok).detect().clean());
  CorunProgram Aperture =
      lowerCorun({KernelId::Reduction, KernelId::Reduction},
                 SystemConfig::forCaseStudy(CaseStudy::Lrb), {"a"});
  EXPECT_FALSE(RaceDetector(Aperture).detect().clean());
}

TEST(RaceDetectorCorun, WitnessCapTruncatesAndSaysSo) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Fusion);
  CorunProgram Corun =
      lowerCorun({KernelId::Reduction, KernelId::Reduction}, Config, {"c"});
  RaceReport Report = RaceDetector(Corun).detect(/*MaxRaces=*/2);
  EXPECT_EQ(Report.Races.size(), 2u);
  EXPECT_TRUE(Report.Truncated);
}

TEST(CorunSchedules, EveryScheduleIsAFairMergeOfProgramOrders) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  CorunProgram Corun =
      lowerCorun({KernelId::Reduction, KernelId::Dct}, Config);
  std::vector<CorunSchedule> Schedules = corunSchedules(Corun, 3, 17);
  // Two rotations + round-robin + three random merges.
  ASSERT_EQ(Schedules.size(), 6u);
  for (const CorunSchedule &Schedule : Schedules) {
    ASSERT_EQ(Schedule.size(), Corun.totalSteps());
    std::vector<size_t> Next(Corun.Agents.size(), 0);
    for (const auto &Entry : Schedule) {
      ASSERT_LT(Entry.first, Corun.Agents.size());
      EXPECT_EQ(Entry.second, Next[Entry.first]) << "out of program order";
      Next[Entry.first] += 1;
    }
    for (size_t A = 0; A != Corun.Agents.size(); ++A)
      EXPECT_EQ(Next[A], Corun.Agents[A].Program.Steps.size());
  }
}

TEST(SweepLint, ReportIsByteIdenticalAcrossWorkerCounts) {
  std::vector<SweepPoint> Points = shippedDesignSpace();
  SweepLintSummary Serial = lintSweep(Points, /*Jobs=*/1);
  SweepLintSummary Parallel = lintSweep(Points, /*Jobs=*/8);
  ASSERT_EQ(Serial.points(), Parallel.points());
  EXPECT_EQ(Serial.render(), Parallel.render());
  for (size_t I = 0; I != Serial.Results.size(); ++I) {
    EXPECT_EQ(Serial.Results[I].System, Parallel.Results[I].System);
    EXPECT_EQ(Serial.Results[I].Rendered, Parallel.Results[I].Rendered);
    EXPECT_EQ(Serial.Results[I].Races.clean(),
              Parallel.Results[I].Races.clean());
  }
}

TEST(SweepLint, DirtyPointsRenderDeterministicallyToo) {
  // Push a racy point through the sweep path: diagnostics and witnesses
  // must come out in the same bytes at any job count.
  std::vector<SweepPoint> Points;
  SystemConfig Broken = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  for (KernelId Kernel : allKernels())
    Points.emplace_back(Broken, Kernel);
  SweepLintSummary A = lintSweep(Points, 1);
  SweepLintSummary B = lintSweep(Points, 4);
  EXPECT_EQ(A.render(), B.render());
}

TEST(LintJson, RoundTripsAndValidates) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Lrb);
  LoweredProgram Program = lowerKernel(KernelId::Reduction, Config);
  size_t I = firstStepOfKind(Program, ExecKind::OwnershipToCpu);
  Program.Steps.erase(Program.Steps.begin() + static_cast<long>(I));

  LintJsonPoint Point;
  Point.System = Config.Name;
  Point.Kernels = {kernelName(KernelId::Reduction)};
  Point.Report = lintProgram(Program, Config);
  Point.Races = RaceDetector::analyze(Program, Config);
  Point.DynamicallyRaceFree = validateRaceFree(Program);
  ASSERT_FALSE(Point.Races.clean());

  std::string Doc = writeLintJson({Point}, ConsistencyModel::Weak);
  std::string Error;
  EXPECT_TRUE(validateLintJson(Doc, Error)) << Error;

  // Tampering with a summary count must be caught.
  size_t Pos = Doc.rfind("\"races\":");
  ASSERT_NE(Pos, std::string::npos);
  std::string Tampered = Doc;
  Tampered.replace(Pos, 9, "\"races\":9");
  EXPECT_FALSE(validateLintJson(Tampered, Error));

  EXPECT_FALSE(validateLintJson("{\"schema\":\"hetsim-metrics-v1\"}", Error));
  EXPECT_NE(Error.find("unknown schema"), std::string::npos);
}

} // namespace
