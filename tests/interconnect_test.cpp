//===- tests/interconnect_test.cpp - interconnect/ unit tests -------------===//

#include "interconnect/RingBus.h"

#include <gtest/gtest.h>

using namespace hetsim;

TEST(RingBus, HopCountsTakeShorterDirection) {
  RingBus Ring; // 7 stops.
  EXPECT_EQ(Ring.hopCount(0, 0), 0u);
  EXPECT_EQ(Ring.hopCount(0, 1), 1u);
  EXPECT_EQ(Ring.hopCount(0, 3), 3u);
  EXPECT_EQ(Ring.hopCount(0, 4), 3u); // Counter-clockwise: 7-4=3.
  EXPECT_EQ(Ring.hopCount(0, 6), 1u); // Wraps.
  EXPECT_EQ(Ring.hopCount(6, 0), 1u); // Symmetric.
}

TEST(RingBus, HopCountSymmetry) {
  RingConfig Config;
  Config.NumStops = 8;
  RingBus Ring(Config);
  for (unsigned A = 0; A != 8; ++A)
    for (unsigned B = 0; B != 8; ++B)
      EXPECT_EQ(Ring.hopCount(A, B), Ring.hopCount(B, A));
}

TEST(RingBus, UncontendedTraverseLatency) {
  RingBus Ring;
  Cycle Arrival = Ring.traverse(ring::CpuStop, ring::L3Tile0, 100);
  EXPECT_EQ(Arrival, 100u + Ring.hopCount(ring::CpuStop, ring::L3Tile0));
}

TEST(RingBus, InjectionPortSerializesBackToBack) {
  RingBus Ring;
  Cycle First = Ring.traverse(0, 3, 50);
  Cycle Second = Ring.traverse(0, 3, 50); // Same cycle, same port.
  EXPECT_EQ(Second, First + Ring.config().InjectOccupancy);
  EXPECT_EQ(Ring.stats().ContentionCycles, Ring.config().InjectOccupancy);
}

TEST(RingBus, DifferentPortsDoNotContend) {
  RingBus Ring;
  Cycle A = Ring.traverse(0, 3, 50);
  Cycle B = Ring.traverse(1, 3, 50);
  EXPECT_EQ(A, 50u + 3);
  EXPECT_EQ(B, 50u + 2);
  EXPECT_EQ(Ring.stats().ContentionCycles, 0u);
}

TEST(RingBus, QueueDelayCapped) {
  RingConfig Config;
  Config.MaxQueueDelay = 16;
  RingBus Ring(Config);
  Ring.traverse(0, 1, 1000000); // Ratchets port 0 far into the future.
  Cycle Arrival = Ring.traverse(0, 1, 0);
  EXPECT_LE(Arrival, 0u + Config.MaxQueueDelay + Config.HopLatency);
}

TEST(RingBus, RoundTrip) {
  RingBus Ring;
  EXPECT_EQ(Ring.roundTripLatency(ring::CpuStop, ring::MemCtrlStop),
            2u * Ring.hopCount(ring::CpuStop, ring::MemCtrlStop));
}

TEST(RingBus, TileInterleaving) {
  RingBus Ring;
  EXPECT_EQ(Ring.tileStopFor(0 * 64), ring::L3Tile0 + 0);
  EXPECT_EQ(Ring.tileStopFor(1 * 64), ring::L3Tile0 + 1);
  EXPECT_EQ(Ring.tileStopFor(2 * 64), ring::L3Tile0 + 2);
  EXPECT_EQ(Ring.tileStopFor(3 * 64), ring::L3Tile0 + 3);
  EXPECT_EQ(Ring.tileStopFor(4 * 64), ring::L3Tile0 + 0);
  // Same-line offsets map to the same tile.
  EXPECT_EQ(Ring.tileStopFor(32), Ring.tileStopFor(0));
}

TEST(RingBus, StatsAndReset) {
  RingBus Ring;
  Ring.traverse(0, 2, 0);
  Ring.traverse(0, 2, 0);
  EXPECT_EQ(Ring.stats().Messages, 2u);
  EXPECT_EQ(Ring.stats().TotalHops, 4u);
  Ring.resetStats();
  EXPECT_EQ(Ring.stats().Messages, 0u);
  // Port state also cleared: no contention after reset.
  Ring.traverse(0, 2, 0);
  EXPECT_EQ(Ring.stats().ContentionCycles, 0u);
}

TEST(RingBusDeath, TooFewStopsAborts) {
  RingConfig Config;
  Config.NumStops = 1;
  EXPECT_DEATH(RingBus Ring(Config), "at least two stops");
}

//===----------------------------------------------------------------------===//
// 2D mesh NoC.
//===----------------------------------------------------------------------===//

#include "interconnect/MeshNoc.h"

TEST(MeshNoc, ManhattanHopCounts) {
  MeshNoc Mesh; // 3x3, row-major stops.
  // Stop 0 = (0,0), stop 4 = (1,1), stop 8 = (2,2).
  EXPECT_EQ(Mesh.hopCount(0, 0), 0u);
  EXPECT_EQ(Mesh.hopCount(0, 1), 1u);
  EXPECT_EQ(Mesh.hopCount(0, 4), 2u);
  EXPECT_EQ(Mesh.hopCount(0, 8), 4u);
  EXPECT_EQ(Mesh.hopCount(2, 6), 4u); // (2,0) -> (0,2).
}

TEST(MeshNoc, HopSymmetry) {
  MeshNoc Mesh;
  for (unsigned A = 0; A != 9; ++A)
    for (unsigned B = 0; B != 9; ++B)
      EXPECT_EQ(Mesh.hopCount(A, B), Mesh.hopCount(B, A));
}

TEST(MeshNoc, TraverseAndContention) {
  MeshNoc Mesh;
  Cycle First = Mesh.traverse(0, 8, 10);
  EXPECT_EQ(First, 10u + 4);
  Cycle Second = Mesh.traverse(0, 8, 10); // Same injection port.
  EXPECT_EQ(Second, First + Mesh.config().InjectOccupancy);
}

TEST(MeshNoc, CoordinateHelpers) {
  MeshNoc Mesh;
  EXPECT_EQ(Mesh.xOf(5), 2u);
  EXPECT_EQ(Mesh.yOf(5), 1u);
}

TEST(MeshNoc, TileMappingMatchesRingNumbering) {
  MeshNoc Mesh;
  RingBus Ring;
  for (Addr Line = 0; Line != 8 * 64; Line += 64)
    EXPECT_EQ(Mesh.tileStopFor(Line), Ring.tileStopFor(Line));
}

TEST(MeshNoc, WorksAsMemorySystemNoc) {
  // Just topology plumbing: both topologies name themselves correctly.
  MeshNoc Mesh;
  RingBus Ring;
  EXPECT_STREQ(Mesh.name(), "mesh");
  EXPECT_STREQ(Ring.name(), "ring");
  Interconnect *Noc = &Mesh;
  EXPECT_EQ(Noc->roundTripLatency(0, 8), 8u);
}

TEST(MeshNocDeath, EmptyMeshAborts) {
  MeshConfig Config;
  Config.Width = 0;
  EXPECT_DEATH(MeshNoc Mesh(Config), "at least two nodes");
}
