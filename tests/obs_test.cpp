//===- tests/obs_test.cpp - Observability layer tests ---------------------===//
//
// Covers the obs/ library (JSON writer/reader, phase taxonomy, trace
// events, metrics + conservation) and its integration through the
// simulator: phase sums must reconcile with the coarse TimeBreakdown,
// and every point of the shipped design space must conserve DRAM
// traffic under the category-charging contract of obs/Metrics.h.
//
//===----------------------------------------------------------------------===//

#include "analysis/SweepLinter.h"
#include "core/HeteroSimulator.h"
#include "core/SweepRunner.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Phase.h"
#include "obs/TraceEvents.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

using namespace hetsim;

//===----------------------------------------------------------------------===//
// JSON writer.
//===----------------------------------------------------------------------===//

TEST(JsonWriter, ObjectsArraysAndValues) {
  JsonWriter W;
  W.beginObject();
  W.value("name", "hetsim");
  W.value("count", uint64_t(42));
  W.value("ratio", 0.5);
  W.value("on", true);
  W.beginArray("list");
  W.value(uint64_t(1));
  W.value(uint64_t(2));
  W.endArray();
  W.beginObject("nested");
  W.value("k", "v");
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.take(), "{\"name\":\"hetsim\",\"count\":42,\"ratio\":0.5,"
                      "\"on\":true,\"list\":[1,2],\"nested\":{\"k\":\"v\"}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter W;
  W.beginObject();
  W.value("k", "a\"b\\c\n\t");
  W.endObject();
  std::string Doc = W.take();
  EXPECT_EQ(Doc, "{\"k\":\"a\\\"b\\\\c\\n\\t\"}");
  EXPECT_TRUE(isValidJson(Doc));
}

TEST(JsonWriter, IntegralDoublesPrintExactly) {
  JsonWriter W;
  W.beginArray();
  W.value(3.0);
  W.value(1048576.0);
  W.endArray();
  EXPECT_EQ(W.take(), "[3,1048576]");
}

//===----------------------------------------------------------------------===//
// JSON reader.
//===----------------------------------------------------------------------===//

TEST(JsonReader, RoundTripsWriterOutput) {
  JsonWriter W;
  W.beginObject();
  W.value("s", "text \\ \"quoted\"");
  W.value("n", 2.25);
  W.beginArray("a");
  W.value(uint64_t(7));
  W.endArray();
  W.endObject();

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(W.take(), Doc, Error)) << Error;
  ASSERT_TRUE(Doc.isObject());
  EXPECT_EQ(Doc.find("s")->StringValue, "text \\ \"quoted\"");
  EXPECT_EQ(Doc.find("n")->NumberValue, 2.25);
  ASSERT_TRUE(Doc.find("a")->isArray());
  EXPECT_EQ(Doc.find("a")->Elements[0].NumberValue, 7.0);
}

TEST(JsonReader, RejectsMalformedInput) {
  JsonValue Doc;
  std::string Error;
  EXPECT_FALSE(parseJson("{\"k\":}", Doc, Error));
  EXPECT_FALSE(parseJson("{\"k\":1} trailing", Doc, Error));
  EXPECT_FALSE(parseJson("[1,]", Doc, Error));
  EXPECT_FALSE(parseJson("", Doc, Error));
  EXPECT_FALSE(isValidJson("{'single':1}"));
}

TEST(JsonReader, ParsesEscapesAndLiterals) {
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(
      parseJson("{\"u\":\"\\u0041\",\"t\":true,\"z\":null}", Doc, Error))
      << Error;
  EXPECT_EQ(Doc.find("u")->StringValue, "A");
  EXPECT_TRUE(Doc.find("t")->BoolValue);
  EXPECT_EQ(Doc.find("z")->Type, JsonValue::Kind::Null);
  EXPECT_EQ(Doc.find("missing"), nullptr);
}

//===----------------------------------------------------------------------===//
// Phase taxonomy.
//===----------------------------------------------------------------------===//

TEST(Phase, NamesAreUniqueAndStable) {
  std::set<std::string> Names;
  for (unsigned P = 0; P != NumRunPhases; ++P)
    Names.insert(runPhaseName(RunPhase(P)));
  EXPECT_EQ(Names.size(), NumRunPhases);
  EXPECT_STREQ(runPhaseName(RunPhase::SerialCompute), "serial_compute");
  EXPECT_STREQ(runPhaseName(RunPhase::CopyOverlapStall),
               "copy_overlap_stall");
}

TEST(Phase, BreakdownSplitsComputeFromCommunication) {
  PhaseBreakdown B;
  B.add(RunPhase::SerialCompute, 10.0);
  B.add(RunPhase::ParallelCompute, 30.0);
  B.add(RunPhase::Transfer, 5.0);
  B.add(RunPhase::PageFault, 2.0);
  EXPECT_DOUBLE_EQ(B.computeNs(), 40.0);
  EXPECT_DOUBLE_EQ(B.communicationNs(), 7.0);
  EXPECT_DOUBLE_EQ(B.totalNs(), 47.0);
  EXPECT_DOUBLE_EQ(B.ns(RunPhase::Transfer), 5.0);
}

//===----------------------------------------------------------------------===//
// Trace events.
//===----------------------------------------------------------------------===//

TEST(TraceEvents, RendersValidChromeJson) {
  TraceEventLog Log;
  Log.complete(TraceTrack::Cpu, "serial_compute", 0.0, 12.5);
  Log.complete(TraceTrack::Fabric, "transfer", 12.5, 3.0, "bytes", 4096);

  std::string Doc = Log.renderChromeJson("test/run");
  JsonValue Root;
  std::string Error;
  ASSERT_TRUE(parseJson(Doc, Root, Error)) << Error;
  const JsonValue *Events = Root.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  unsigned Metadata = 0, Complete = 0;
  for (const JsonValue &E : Events->Elements) {
    const std::string &Ph = E.find("ph")->StringValue;
    if (Ph == "M") {
      ++Metadata;
      continue;
    }
    ASSERT_EQ(Ph, "X");
    ++Complete;
    EXPECT_NE(E.find("ts"), nullptr);
    EXPECT_NE(E.find("dur"), nullptr);
    EXPECT_NE(E.find("tid"), nullptr);
  }
  // process_name + one thread_name per track, then the two events.
  EXPECT_EQ(Metadata, 1u + NumTraceTracks);
  EXPECT_EQ(Complete, 2u);
}

TEST(TraceEvents, ArgumentsSurviveRendering) {
  TraceEventLog Log;
  Log.complete(TraceTrack::Dram, "bg_drain", 1.0, 2.0, "requests", 17);
  JsonValue Root;
  std::string Error;
  ASSERT_TRUE(parseJson(Log.renderChromeJson("p"), Root, Error)) << Error;
  for (const JsonValue &E : Root.find("traceEvents")->Elements) {
    if (E.find("ph")->StringValue != "X")
      continue;
    const JsonValue *Args = E.find("args");
    ASSERT_NE(Args, nullptr);
    EXPECT_EQ(Args->find("requests")->NumberValue, 17.0);
  }
}

TEST(TraceEvents, CapsRetainedEventsAndCountsDrops) {
  TraceEventLog Log;
  for (size_t I = 0; I != TraceEventLog::MaxEvents + 10; ++I)
    Log.complete(TraceTrack::Cpu, "e", double(I), 1.0);
  EXPECT_EQ(Log.size(), TraceEventLog::MaxEvents);
  EXPECT_EQ(Log.dropped(), 10u);
  Log.clear();
  EXPECT_TRUE(Log.empty());
  EXPECT_EQ(Log.dropped(), 0u);
}

TEST(TraceEvents, PathSanitizesRunNames) {
  std::set<std::string> Names;
  for (unsigned T = 0; T != NumTraceTracks; ++T)
    Names.insert(traceTrackName(TraceTrack(T)));
  EXPECT_EQ(Names.size(), NumTraceTracks);

#ifdef _WIN32
  GTEST_SKIP() << "setenv not available";
#else
  setenv("HETSIM_TRACE_EVENTS", "/tmp/traces", 1);
  EXPECT_TRUE(traceEventsEnabled());
  EXPECT_EQ(traceEventPath("CPU+GPU/merge sort"),
            "/tmp/traces/CPU_GPU_merge_sort.trace.json");
  unsetenv("HETSIM_TRACE_EVENTS");
  EXPECT_FALSE(traceEventsEnabled());
  EXPECT_EQ(traceEventPath("x"), "");
#endif
}

//===----------------------------------------------------------------------===//
// Metrics documents.
//===----------------------------------------------------------------------===//

TEST(Metrics, SingleRunDocumentValidates) {
  MetricsSnapshot M;
  M.add("dram.cpu.reads", 10);
  M.add("run.total_ns", 123.5);
  std::string Doc = renderMetricsJson(M);
  std::string Error;
  EXPECT_TRUE(validateMetricsJson(Doc, Error)) << Error;

  JsonValue Root;
  ASSERT_TRUE(parseJson(Doc, Root, Error));
  EXPECT_EQ(Root.find("schema")->StringValue, "hetsim-metrics-v1");
  EXPECT_EQ(Root.find("metrics")->find("dram.cpu.reads")->NumberValue, 10.0);
}

TEST(Metrics, ValidatorRejectsBadDocuments) {
  std::string Error;
  EXPECT_FALSE(validateMetricsJson("not json", Error));
  EXPECT_FALSE(validateMetricsJson("{\"schema\":\"wrong\"}", Error));
  EXPECT_FALSE(validateMetricsJson(
      "{\"schema\":\"hetsim-metrics-v1\",\"metrics\":{\"k\":\"str\"}}",
      Error));
  EXPECT_FALSE(validateMetricsJson(
      "{\"schema\":\"hetsim-sweep-metrics-v1\",\"points\":[{}]}", Error));
}

TEST(Metrics, SweepDocumentValidates) {
  std::vector<SweepPoint> Points;
  Points.emplace_back(SystemConfig::forCaseStudy(CaseStudy::Fusion),
                      KernelId::Reduction);
  MetricsSnapshot M;
  M.add("run.total_ns", 1.0);
  std::string Doc = renderSweepMetricsJson(Points, {M});
  std::string Error;
  EXPECT_TRUE(validateMetricsJson(Doc, Error)) << Error;

  JsonValue Root;
  ASSERT_TRUE(parseJson(Doc, Root, Error));
  const JsonValue &Point = Root.find("points")->Elements[0];
  EXPECT_EQ(Point.find("kernel")->StringValue, "reduction");
  EXPECT_EQ(Point.find("metrics")->find("run.total_ns")->NumberValue, 1.0);
}

TEST(Metrics, FileRoundTrip) {
  MetricsSnapshot M;
  M.add("a", 1);
  std::string Path = testing::TempDir() + "obs_metrics_roundtrip.json";
  ASSERT_TRUE(writeMetricsJson(Path, M));
  std::string Text, Error;
  ASSERT_TRUE(readTextFile(Path, Text));
  EXPECT_TRUE(validateMetricsJson(Text, Error)) << Error;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Simulator integration: phases, metrics, conservation.
//===----------------------------------------------------------------------===//

TEST(Observability, PhasesReconcileWithTimeBreakdown) {
  for (CaseStudy Study : allCaseStudies()) {
    HeteroSimulator Simulator(SystemConfig::forCaseStudy(Study));
    RunResult Result = Simulator.run(KernelId::KMeans);
    const PhaseBreakdown &P = Result.Phases;
    EXPECT_NEAR(P.computeNs(),
                Result.Time.SequentialNs + Result.Time.ParallelNs,
                1e-6 * (1.0 + P.computeNs()))
        << caseStudyName(Study);
    EXPECT_NEAR(P.communicationNs(), Result.Time.CommunicationNs,
                1e-6 * (1.0 + P.communicationNs()))
        << caseStudyName(Study);
  }
}

TEST(Observability, EveryRunRecordsTraceEvents) {
  HeteroSimulator Simulator(
      SystemConfig::forCaseStudy(CaseStudy::Fusion));
  Simulator.run(KernelId::Reduction);
  EXPECT_FALSE(Simulator.trace().empty());
}

TEST(Observability, CollectMetricsCarriesRunAndMemoryState) {
  HeteroSimulator Simulator(SystemConfig::forCaseStudy(CaseStudy::Gmac));
  RunResult Result = Simulator.run(KernelId::Reduction);
  MetricsSnapshot M = Simulator.collectMetrics(Result);
  EXPECT_TRUE(M.has("run.total_ns"));
  EXPECT_TRUE(M.has("cache.cpu_l1.accesses"));
  EXPECT_TRUE(M.has("dram.cpu.reads"));
  EXPECT_TRUE(M.has("run.phase.serial_compute_ns"));
  EXPECT_NEAR(M.get("run.total_ns"), Result.Time.totalNs(), 1e-9);
  EXPECT_EQ(M.get("run.conservation_ok"), 1.0);
  // Quiescent after the run: no stranded background traffic.
  EXPECT_EQ(M.get("dram.cpu.queued"), 0.0);
}

TEST(Observability, ConservationHoldsAcrossShippedDesignSpace) {
  // The 54-point shipped space (5 case studies + 4 address-space studies,
  // all six kernels): every point must satisfy the DRAM conservation
  // contract and leave its background queue empty.
  std::vector<SweepPoint> Points = shippedDesignSpace();
  ASSERT_EQ(Points.size(), 54u);

  SweepRunner Runner;
  Runner.run(Points);
  const std::vector<MetricsSnapshot> &Metrics = Runner.metrics();
  ASSERT_EQ(Metrics.size(), Points.size());
  for (size_t I = 0; I != Metrics.size(); ++I) {
    EXPECT_EQ(Metrics[I].get("run.conservation_ok"), 1.0)
        << Points[I].Config.Name << " / " << kernelName(Points[I].Kernel);
    EXPECT_EQ(Metrics[I].get("dram.cpu.queued"), 0.0)
        << Points[I].Config.Name << " / " << kernelName(Points[I].Kernel);
  }

  std::string Doc = renderSweepMetricsJson(Points, Metrics);
  std::string Error;
  EXPECT_TRUE(validateMetricsJson(Doc, Error)) << Error;
}

TEST(Observability, ConservationCheckFlagsUnchargedTraffic) {
  // Traffic reaching a device without a category charge must trip the
  // audit: touch DRAM behind the accounting's back.
  MemorySystem Mem((MemHierConfig()));
  Mem.cpuDram().access(0x1000, 0, false);
  ConservationReport Report = checkConservation(Mem);
  EXPECT_FALSE(Report.Ok);
  EXPECT_FALSE(Report.Violations.empty());
  EXPECT_NE(Report.summary(), "ok");
}
