//===- tests/hb_graph_test.cpp - Happens-before graph edge cases ----------===//
//
// The HbGraph builder API and its two reachability relations: empty
// programs, cycle detection (self edges included), duplicate-edge
// tolerance, and transitive reduction — exactness checked against
// reachability equivalence and minimality on randomized DAGs.
//
//===----------------------------------------------------------------------===//

#include "analysis/HbGraph.h"
#include "common/Random.h"

#include <gtest/gtest.h>

using namespace hetsim;

namespace {

/// A builder-API chain of \p N Step nodes with no edges.
HbGraph makeNodes(size_t N) {
  HbGraph Graph;
  for (size_t I = 0; I != N; ++I)
    Graph.addNode({HbNodeKind::Step, I, 0, HbLane::Cpu});
  return Graph;
}

/// The full reachability matrix of a finalized graph.
std::vector<std::vector<bool>> reachMatrix(const HbGraph &Graph) {
  size_t N = Graph.nodeCount();
  std::vector<std::vector<bool>> M(N, std::vector<bool>(N));
  for (size_t F = 0; F != N; ++F)
    for (size_t T = 0; T != N; ++T)
      M[F][T] = Graph.reaches(F, T);
  return M;
}

/// Rebuilds a graph with \p Nodes nodes and exactly \p Edges, finalized.
HbGraph fromEdges(size_t Nodes, const std::vector<HbEdge> &Edges) {
  HbGraph Graph = makeNodes(Nodes);
  for (const HbEdge &Edge : Edges)
    Graph.addEdge(Edge.From, Edge.To, Edge.Kind);
  Graph.finalize();
  return Graph;
}

TEST(HbGraphEdgeCases, EmptyProgramStillOrdersStartBeforeEnd) {
  LoweredProgram Program;
  Program.Steps.clear();
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::CpuGpu);
  HbGraph Graph = HbGraph::build(Program, Config);
  ASSERT_EQ(Graph.nodeCount(), 2u);
  EXPECT_TRUE(Graph.reaches(Graph.startNode(), Graph.endNode()));
  EXPECT_FALSE(Graph.reaches(Graph.endNode(), Graph.startNode()));
  EXPECT_FALSE(Graph.hasCycle());
  EXPECT_TRUE(Graph.undrainedTransfers().empty());
  EXPECT_EQ(Graph.transitiveReduction().size(), 1u);
}

TEST(HbGraphEdgeCases, DetectsCycles) {
  HbGraph Acyclic = makeNodes(3);
  Acyclic.addEdge(0, 1, HbEdgeKind::DriverOrder);
  Acyclic.addEdge(1, 2, HbEdgeKind::DriverOrder);
  EXPECT_FALSE(Acyclic.hasCycle());

  HbGraph Cyclic = makeNodes(3);
  Cyclic.addEdge(0, 1, HbEdgeKind::DriverOrder);
  Cyclic.addEdge(1, 2, HbEdgeKind::DriverOrder);
  Cyclic.addEdge(2, 0, HbEdgeKind::ReleaseAcquire);
  EXPECT_TRUE(Cyclic.hasCycle());
}

TEST(HbGraphEdgeCases, SelfEdgeIsACycleAndNeverSurvivesReduction) {
  HbGraph Graph = makeNodes(2);
  Graph.addEdge(0, 1, HbEdgeKind::DriverOrder);
  Graph.addEdge(1, 1, HbEdgeKind::DriverOrder);
  EXPECT_TRUE(Graph.hasCycle());
  Graph.finalize();
  for (const HbEdge &Edge : Graph.transitiveReduction())
    EXPECT_NE(Edge.From, Edge.To);
}

TEST(HbGraphEdgeCases, DuplicateEdgesCollapseInReduction) {
  HbGraph Graph = makeNodes(3);
  Graph.addEdge(0, 1, HbEdgeKind::DriverOrder);
  Graph.addEdge(0, 1, HbEdgeKind::ReleaseAcquire);
  Graph.addEdge(1, 2, HbEdgeKind::DriverOrder);
  Graph.finalize();
  EXPECT_FALSE(Graph.hasCycle());
  std::vector<HbEdge> Reduced = Graph.transitiveReduction();
  ASSERT_EQ(Reduced.size(), 2u);
  // The first-added parallel edge survives.
  EXPECT_EQ(Reduced[0].Kind, HbEdgeKind::DriverOrder);
}

TEST(HbGraphEdgeCases, ReductionDropsImpliedShortcut) {
  HbGraph Graph = makeNodes(3);
  Graph.addEdge(0, 1, HbEdgeKind::DriverOrder);
  Graph.addEdge(1, 2, HbEdgeKind::DriverOrder);
  Graph.addEdge(0, 2, HbEdgeKind::DriverOrder); // implied by 0->1->2
  Graph.finalize();
  std::vector<HbEdge> Reduced = Graph.transitiveReduction();
  ASSERT_EQ(Reduced.size(), 2u);
  for (const HbEdge &Edge : Reduced)
    EXPECT_FALSE(Edge.From == 0 && Edge.To == 2);
}

TEST(HbGraphEdgeCases, ScopedRelationIgnoresLaunchAndJoinEdges) {
  HbGraph Graph = makeNodes(4);
  Graph.addEdge(0, 1, HbEdgeKind::KernelLaunch);
  Graph.addEdge(1, 2, HbEdgeKind::KernelJoin);
  Graph.addEdge(2, 3, HbEdgeKind::ReleaseAcquire);
  Graph.finalize();
  EXPECT_TRUE(Graph.reaches(0, 3));
  EXPECT_FALSE(Graph.reachesScoped(0, 3));
  EXPECT_TRUE(Graph.reachesScoped(2, 3));
}

TEST(HbGraphEdgeCases, RandomizedDagReductionIsExactAndMinimal) {
  XorShiftRng Rng(0xC0FFEE);
  for (int Trial = 0; Trial != 30; ++Trial) {
    size_t N = 3 + Rng.nextBelow(10);
    HbGraph Graph = makeNodes(N);
    // Random DAG: edges only from lower to higher ids, so acyclic by
    // construction; duplicates allowed on purpose.
    for (size_t F = 0; F != N; ++F)
      for (size_t T = F + 1; T != N; ++T)
        if (Rng.nextBool(0.35))
          Graph.addEdge(F, T, HbEdgeKind::DriverOrder);
    Graph.finalize();
    ASSERT_FALSE(Graph.hasCycle());
    std::vector<std::vector<bool>> Want = reachMatrix(Graph);
    std::vector<HbEdge> Reduced = Graph.transitiveReduction();

    // Equivalence: the reduced edge set reproduces reachability exactly.
    HbGraph Rebuilt = fromEdges(N, Reduced);
    EXPECT_EQ(reachMatrix(Rebuilt), Want) << "trial " << Trial;

    // Minimality: removing any reduced edge loses its ordering.
    for (size_t Drop = 0; Drop != Reduced.size(); ++Drop) {
      std::vector<HbEdge> Fewer = Reduced;
      Fewer.erase(Fewer.begin() + static_cast<long>(Drop));
      HbGraph Thinner = fromEdges(N, Fewer);
      EXPECT_FALSE(Thinner.reaches(Reduced[Drop].From, Reduced[Drop].To))
          << "trial " << Trial << " edge " << Drop;
    }
  }
}

TEST(HbGraphEdgeCases, UndrainedTransferSurfacesWhenTheWaitGoes) {
  SystemConfig Config = SystemConfig::forCaseStudy(CaseStudy::Gmac);
  LoweredProgram Program = lowerKernel(KernelId::Convolution, Config);
  HbGraph Drained = HbGraph::build(Program, Config);
  EXPECT_TRUE(Drained.undrainedTransfers().empty());
  for (size_t I = Program.Steps.size(); I-- != 0;)
    if (Program.Steps[I].Kind == ExecKind::DmaWait) {
      Program.Steps.erase(Program.Steps.begin() + static_cast<long>(I));
      break;
    }
  HbGraph Undrained = HbGraph::build(Program, Config);
  EXPECT_FALSE(Undrained.undrainedTransfers().empty());
}

} // namespace
