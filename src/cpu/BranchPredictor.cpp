//===- cpu/BranchPredictor.cpp --------------------------------------------===//

#include "cpu/BranchPredictor.h"

#include "common/Error.h"

using namespace hetsim;

GsharePredictor::GsharePredictor(unsigned Bits) : TableBits(Bits) {
  if (Bits == 0 || Bits > 24)
    fatalError("gshare table size out of range");
  // Weakly taken: loops predict well immediately.
  Counters.assign(1u << Bits, 2);
}

unsigned GsharePredictor::index(Addr Pc) const {
  uint64_t Mask = (1ull << TableBits) - 1;
  return unsigned(((Pc >> 2) ^ History) & Mask);
}

bool GsharePredictor::predict(Addr Pc) const {
  return Counters[index(Pc)] >= 2;
}

bool GsharePredictor::update(Addr Pc, bool Taken) {
  unsigned Idx = index(Pc);
  bool Predicted = Counters[Idx] >= 2;
  ++Stats.Predictions;
  if (Predicted != Taken)
    ++Stats.Mispredictions;

  uint8_t &Counter = Counters[Idx];
  if (Taken && Counter < 3)
    ++Counter;
  else if (!Taken && Counter > 0)
    --Counter;

  History = ((History << 1) | (Taken ? 1 : 0)) & ((1ull << TableBits) - 1);
  return Predicted == Taken;
}

void GsharePredictor::reset() {
  Counters.assign(1u << TableBits, 2);
  History = 0;
  Stats = BranchStats();
}
