//===- cpu/CpuCore.cpp ----------------------------------------------------===//

#include "cpu/CpuCore.h"

#include "common/FlatMap.h"
#include "memory/MemFast.h"
#include "memory/MemorySystem.h"
#include "trace/ComputeBlock.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace hetsim;

CpiStack hetsim::computeCpiStack(const SegmentResult &Result,
                                 const CpuConfig &Config) {
  CpiStack Stack;
  if (Result.Insts == 0)
    return Stack;
  double Insts = double(Result.Insts);
  Stack.BaseCpi = 1.0 / double(Config.IssueWidth);
  Stack.BranchCpi =
      double(Result.BranchMispredicts) * double(Config.MispredictPenalty) /
      Insts;
  Stack.FetchCpi =
      double(Result.ICacheMisses) * double(Config.L1IMissPenalty) / Insts;
  double Total = double(Result.Cycles) / Insts;
  Stack.MemDepCpi = Total - Stack.BaseCpi - Stack.BranchCpi - Stack.FetchCpi;
  if (Stack.MemDepCpi < 0)
    Stack.MemDepCpi = 0; // Overlap can hide charged penalties.
  return Stack;
}

CpuCore::CpuCore(const CpuConfig &Cfg, MemorySystem &Memory)
    : Config(Cfg), Mem(Memory), Predictor(Cfg.GshareTableBits),
      ICache(CacheConfig::cpuL1I(), /*RngSeed=*/23) {}

namespace {

/// The full per-segment pipeline state, with the reference per-record
/// update in step(). Extracted from the old monolithic run() loop so the
/// windowed and closed-form paths drive the *same* update code — exactness
/// by construction, not by parallel maintenance of two loops.
struct CpuPipeline {
  const CpuConfig &Config;
  MemorySystem &Mem;
  GsharePredictor &Predictor;
  Cache &ICache;
  SegmentResult &Result;

  // Operand readiness per architectural register.
  std::vector<Cycle> RegReady;
  // Retire times of in-flight instructions, a ring buffer of ROB size:
  // instruction I cannot dispatch until instruction I - RobEntries retired.
  std::vector<Cycle> RobRetire;
  uint64_t RobHead = 0;
  // Fetch: FetchWidth per cycle, stalled by mispredicted branches.
  Cycle FetchCycle;
  unsigned FetchedThisCycle = 0;
  // Issue bandwidth: IssueWidth per cycle.
  Cycle IssueBusyCycle;
  unsigned IssuedThisCycle = 0;
  // In-order retirement.
  Cycle LastRetire;
  unsigned RetiredThisCycle = 0;
  Addr LastFetchLine = ~Addr(0);
  // Store buffer for store-to-load forwarding: exact address -> cycle at
  // which the stored data is forwardable.
  FlatU64Map<Cycle> StoreBuffer;

  /// When set, every new-line L1I access is appended here (fixed-point
  /// verification records each window's fetch-line sequence).
  std::vector<Addr> *TouchLog = nullptr;

  CpuPipeline(const CpuConfig &Cfg, MemorySystem &Memory,
              GsharePredictor &Pred, Cache &L1I, SegmentResult &Res,
              Cycle StartCycle)
      : Config(Cfg), Mem(Memory), Predictor(Pred), ICache(L1I), Result(Res),
        RegReady(NumTraceRegs, StartCycle),
        RobRetire(Cfg.RobEntries, StartCycle), FetchCycle(StartCycle),
        IssueBusyCycle(StartCycle), LastRetire(StartCycle) {}

  void step(const TraceRecord &R) {
    // --- Fetch ---
    if (FetchedThisCycle >= Config.FetchWidth) {
      ++FetchCycle;
      FetchedThisCycle = 0;
    }
    // Instruction fetch goes through the L1I one line at a time; a miss
    // stalls the front end.
    if (Config.ModelInstructionFetch) {
      Addr FetchLine = alignDown(R.Pc, CacheLineBytes);
      if (FetchLine != LastFetchLine) {
        LastFetchLine = FetchLine;
        if (TouchLog)
          TouchLog->push_back(FetchLine);
        if (!ICache.access(FetchLine, /*IsWrite=*/false).Hit) {
          ++Result.ICacheMisses;
          FetchCycle += Config.L1IMissPenalty;
          FetchedThisCycle = 0;
        }
      }
    }
    ++FetchedThisCycle;

    // --- Dispatch: needs a ROB slot ---
    Cycle RobFree = RobRetire[RobHead % Config.RobEntries];
    Cycle DispatchCycle = std::max(FetchCycle, RobFree);

    // --- Issue: operands + an issue slot ---
    Cycle Ready = DispatchCycle;
    if (R.SrcRegA != NoReg)
      Ready = std::max(Ready, RegReady[R.SrcRegA]);
    if (R.SrcRegB != NoReg)
      Ready = std::max(Ready, RegReady[R.SrcRegB]);
    if (Ready > IssueBusyCycle) {
      IssueBusyCycle = Ready;
      IssuedThisCycle = 0;
    } else if (IssuedThisCycle >= Config.IssueWidth) {
      ++IssueBusyCycle;
      IssuedThisCycle = 0;
      Ready = IssueBusyCycle;
    } else {
      Ready = IssueBusyCycle;
    }
    ++IssuedThisCycle;
    Cycle IssueCycle = Ready;

    // --- Execute ---
    Cycle Complete = IssueCycle + executeLatency(PuKind::Cpu, R.Op);
    if (isGlobalMemoryOp(R.Op)) {
      MemAccessResult MemResult = Mem.access(
          PuKind::Cpu, R.MemAddr, std::max<uint32_t>(R.MemBytes, 1),
          isStoreOp(R.Op), IssueCycle);
      ++Result.MemAccesses;
      Result.MemLatencySum += MemResult.Latency;
      Result.MemLatencyMax = std::max(Result.MemLatencyMax,
                                      MemResult.Latency);
      if (MemResult.PageFault) {
        ++Result.PageFaults;
        Result.PageFaultCycles += MemResult.Latency;
      }
      // Stores complete for dependence purposes after address+data issue;
      // the store buffer hides their memory time. Loads wait for data —
      // unless a recent store to the same address forwards it.
      if (isStoreOp(R.Op)) {
        if (Config.EnableStoreForwarding)
          StoreBuffer[R.MemAddr] = IssueCycle + 1;
      } else {
        Complete = IssueCycle + MemResult.Latency;
        if (Config.EnableStoreForwarding) {
          if (const Cycle *Fwd = StoreBuffer.find(R.MemAddr)) {
            ++Result.StoreForwards;
            Complete = std::max(IssueCycle + 1, *Fwd);
          }
        }
      }
    }

    if (R.DstReg != NoReg)
      RegReady[R.DstReg] = Complete;

    // --- Branch resolution ---
    if (isBranchOp(R.Op)) {
      bool Correct = Predictor.update(R.Pc, R.IsTaken);
      if (!Correct) {
        ++Result.BranchMispredicts;
        // Refetch from the resolved target.
        Cycle Refetch = Complete + Config.MispredictPenalty;
        if (Refetch > FetchCycle) {
          FetchCycle = Refetch;
          FetchedThisCycle = 0;
        }
      }
    }

    // --- In-order retirement ---
    Cycle Retire = std::max(Complete, LastRetire);
    if (Retire > LastRetire) {
      LastRetire = Retire;
      RetiredThisCycle = 0;
    } else if (RetiredThisCycle >= Config.RetireWidth) {
      ++LastRetire;
      RetiredThisCycle = 0;
      Retire = LastRetire;
    } else {
      Retire = LastRetire;
    }
    ++RetiredThisCycle;

    RobRetire[RobHead % Config.RobEntries] = Retire;
    ++RobHead;
  }

  void runSpan(const TraceRecord *Records, size_t Count) {
    for (size_t Index = 0; Index != Count; ++Index)
      step(Records[Index]);
  }
};

/// A boundary snapshot of everything the fixed-point check compares.
struct CpuSnap {
  std::vector<Cycle> RegReady;
  std::vector<Cycle> RobRetire;
  uint64_t RobHead;
  Cycle FetchCycle, IssueBusyCycle, LastRetire;
  unsigned FetchedThisCycle, IssuedThisCycle, RetiredThisCycle;
  Addr LastFetchLine;
  std::vector<uint8_t> PredCounters;
  uint64_t PredHistory;
  uint64_t BranchMispredicts, ICacheMisses;

  // Memory-side result scalars and the store buffer, captured only when
  // the body touches global memory (the memory-phase fold, DESIGN.md §11).
  uint64_t MemAccesses = 0, MemLatencySum = 0, StoreForwards = 0,
           PageFaults = 0;
  Cycle MemLatencyMax = 0, PageFaultCycles = 0;
  std::vector<std::pair<Addr, Cycle>> StoreDump; ///< Sorted by address.

  static CpuSnap of(const CpuPipeline &P, bool WithMem = false) {
    CpuSnap S;
    S.RegReady = P.RegReady;
    S.RobRetire = P.RobRetire;
    S.RobHead = P.RobHead;
    S.FetchCycle = P.FetchCycle;
    S.IssueBusyCycle = P.IssueBusyCycle;
    S.LastRetire = P.LastRetire;
    S.FetchedThisCycle = P.FetchedThisCycle;
    S.IssuedThisCycle = P.IssuedThisCycle;
    S.RetiredThisCycle = P.RetiredThisCycle;
    S.LastFetchLine = P.LastFetchLine;
    S.PredCounters = P.Predictor.counters();
    S.PredHistory = P.Predictor.history();
    S.BranchMispredicts = P.Result.BranchMispredicts;
    S.ICacheMisses = P.Result.ICacheMisses;
    if (WithMem) {
      S.MemAccesses = P.Result.MemAccesses;
      S.MemLatencySum = P.Result.MemLatencySum;
      S.MemLatencyMax = P.Result.MemLatencyMax;
      S.StoreForwards = P.Result.StoreForwards;
      S.PageFaults = P.Result.PageFaults;
      S.PageFaultCycles = P.Result.PageFaultCycles;
      // FlatU64Map iteration is mutable-only; the callback leaves the
      // buffer untouched.
      const_cast<FlatU64Map<Cycle> &>(P.StoreBuffer)
          .forEach([&](uint64_t A, Cycle &C) {
            S.StoreDump.emplace_back(Addr(A), C);
          });
      std::sort(S.StoreDump.begin(), S.StoreDump.end());
    }
    return S;
  }
};

/// What the closed-form fold applies per remaining body repetition.
struct CpuFoldPlan {
  Cycle D = 0;                  ///< Uniform cycle advance per repetition.
  std::vector<bool> RegMoves;   ///< Per-register: advances by D (vs inert).
  uint64_t DBm = 0;             ///< Mispredicts per repetition.
  bool FetchDead = false;       ///< Fetch clock is unobservable dead state.

  // Memory-body extension: per-window deltas of the memory result
  // scalars and which store-buffer entries translate (vs sit inert).
  uint64_t DMemAccesses = 0, DMemLatencySum = 0, DStoreForwards = 0;
  std::vector<Addr> StoreMoves;
};

/// Verifies that s1 -> s2 -> s3 are two consecutive body boundaries in a
/// translation-invariant steady state: every cycle-valued component
/// advanced by the same D across both windows, every discrete component
/// (width counters, fetch line, predictor table+history) is unchanged, the
/// I-cache saw the identical all-hit line sequence, and any register whose
/// readiness did NOT advance is provably inert (its constant value is at
/// or below the dispatch lower bound, which only grows). Under these
/// conditions the per-record update is a pure translation per window, so
/// repeating it Rem more times is the same as adding D*Rem — see
/// DESIGN.md §8 for the induction argument.
bool checkCpuFold(const CpuSnap &S1, const CpuSnap &S2, const CpuSnap &S3,
                  const std::vector<Addr> &Touch1,
                  const std::vector<Addr> &Touch2, const CpuConfig &Config,
                  size_t K, size_t EpilogueRecords, uint64_t Rem,
                  CpuFoldPlan &Plan) {
  const unsigned RobEntries = Config.RobEntries;
  if (S2.LastRetire < S1.LastRetire)
    return false;
  Cycle D = S2.LastRetire - S1.LastRetire;
  if (S3.LastRetire - S2.LastRetire != D)
    return false;

  // The fetch clock either translates with the pipeline (fetch-bound
  // bodies) or is dead state (latency-bound bodies). A body that retires
  // D cycles per window while fetching only ~K/FetchWidth of them leaves
  // the fetch clock trailing the ROB dispatch floor by a gap that grows
  // every window; a fetch clock at or below that floor can never win the
  // dispatch max, so its exact value — and the wrap phase in
  // FetchedThisCycle — is unobservable. Requirements: no mispredict
  // refetch re-anchors inside the window (those jump fetch up to
  // Complete+penalty), the per-window fetch advance upper bound DfUB fits
  // under D so the gap is monotone, the gap at s3 already covers DfUB,
  // and the end-of-body gap covers the epilogue's worst-case fetch
  // advance (wraps plus an I-miss penalty per record). If the epilogue
  // does mispredict, the refetch target Complete+penalty exceeds both
  // runs' below-floor fetch clocks, so both re-anchor to the identical
  // value with FetchedThisCycle reset — the states converge exactly.
  const bool FetchTranslates =
      S2.FetchCycle - S1.FetchCycle == D &&
      S3.FetchCycle - S2.FetchCycle == D &&
      S1.FetchedThisCycle == S2.FetchedThisCycle &&
      S2.FetchedThisCycle == S3.FetchedThisCycle;
  bool FetchDead = false;
  if (!FetchTranslates) {
    if (S2.BranchMispredicts != S1.BranchMispredicts ||
        S3.BranchMispredicts != S2.BranchMispredicts)
      return false;
    const Cycle Floor3 = S3.RobRetire[S3.RobHead % RobEntries];
    const Cycle DfUB = Cycle(K / Config.FetchWidth) + 2;
    const Cycle EpiAdvUB = Cycle(EpilogueRecords / Config.FetchWidth) + 2 +
                           Cycle(EpilogueRecords) * Config.L1IMissPenalty;
    if (DfUB > D)
      return false;
    if (S3.FetchCycle + DfUB > Floor3)
      return false;
    if (Floor3 - (S3.FetchCycle + DfUB) + (D - DfUB) * Rem < EpiAdvUB)
      return false;
    FetchDead = true;
  }
  if (S2.IssueBusyCycle - S1.IssueBusyCycle != D ||
      S3.IssueBusyCycle - S2.IssueBusyCycle != D)
    return false;

  if (S1.IssuedThisCycle != S2.IssuedThisCycle ||
      S2.IssuedThisCycle != S3.IssuedThisCycle)
    return false;
  if (S1.RetiredThisCycle != S2.RetiredThisCycle ||
      S2.RetiredThisCycle != S3.RetiredThisCycle)
    return false;
  if (S1.LastFetchLine != S2.LastFetchLine ||
      S2.LastFetchLine != S3.LastFetchLine)
    return false;

  // Discrete machine state must be at a genuine fixed point.
  if (S1.PredHistory != S2.PredHistory || S2.PredHistory != S3.PredHistory)
    return false;
  if (S1.PredCounters != S2.PredCounters ||
      S2.PredCounters != S3.PredCounters)
    return false;
  if (S2.ICacheMisses != S1.ICacheMisses ||
      S3.ICacheMisses != S2.ICacheMisses)
    return false;
  if (Touch1 != Touch2)
    return false;

  uint64_t DBm = S2.BranchMispredicts - S1.BranchMispredicts;
  if (S3.BranchMispredicts - S2.BranchMispredicts != DBm)
    return false;

  // Dispatch lower bound at s1: the oldest in-flight retire time. It is
  // nondecreasing forever after, so any register readiness at or below it
  // can never win an operand max again.
  Cycle RobFloor = S1.RobRetire[S1.RobHead % RobEntries];
  Plan.RegMoves.assign(S1.RegReady.size(), false);
  for (size_t R = 0; R != S1.RegReady.size(); ++R) {
    Cycle D12 = S2.RegReady[R] - S1.RegReady[R];
    Cycle D23 = S3.RegReady[R] - S2.RegReady[R];
    if (D12 != D23)
      return false;
    if (D12 == D) {
      Plan.RegMoves[R] = true;
      continue;
    }
    if (D12 == 0 && S1.RegReady[R] <= RobFloor)
      continue; // Inert: provably never observed again.
    return false;
  }

  // The ROB ring, compared at matching logical offsets from the head.
  for (unsigned S = 0; S != RobEntries; ++S) {
    Cycle E1 = S1.RobRetire[(S1.RobHead + S) % RobEntries];
    Cycle E2 = S2.RobRetire[(S2.RobHead + S) % RobEntries];
    Cycle E3 = S3.RobRetire[(S3.RobHead + S) % RobEntries];
    if (E2 - E1 != D || E3 - E2 != D)
      return false;
  }

  Plan.D = D;
  Plan.DBm = DBm;
  Plan.FetchDead = FetchDead;
  return true;
}

/// Retires \p Rem body repetitions (of \p K records each) in closed form.
void applyCpuFold(CpuPipeline &Pipe, const CpuFoldPlan &Plan, uint64_t Rem,
                  size_t K, uint64_t BranchesPerRep,
                  const std::vector<Addr> &Touch) {
  const Cycle Adv = Plan.D * Rem;
  // A dead fetch clock stays where it is: the reference run's fetch also
  // trails every dispatch floor through the folded windows and the
  // epilogue, so neither value is ever observed (checkCpuFold's margin).
  if (!Plan.FetchDead)
    Pipe.FetchCycle += Adv;
  Pipe.IssueBusyCycle += Adv;
  Pipe.LastRetire += Adv;
  for (size_t R = 0; R != Pipe.RegReady.size(); ++R)
    if (Plan.RegMoves[R])
      Pipe.RegReady[R] += Adv;

  // Slot p of the ring holds the retire time of the newest record with
  // index ≡ p (mod Rob). Advancing the stream by Rem*K records maps slot
  // (p - Rem*K) onto slot p with its value translated by Adv.
  const uint64_t Rob = Pipe.RobRetire.size();
  const uint64_t Shift = (Rem % Rob) * (K % Rob) % Rob;
  std::vector<Cycle> Rotated(Rob);
  for (uint64_t P = 0; P != Rob; ++P)
    Rotated[P] = Pipe.RobRetire[(P + Rob - Shift) % Rob] + Adv;
  Pipe.RobRetire = std::move(Rotated);
  Pipe.RobHead += Rem * K;

  Pipe.Result.BranchMispredicts += Plan.DBm * Rem;
  Pipe.Predictor.creditFolded(BranchesPerRep * Rem, Plan.DBm * Rem);

  if (Pipe.Config.ModelInstructionFetch && !Touch.empty()) {
    // Every window re-touches the same resident lines in the same order:
    // each advances the LRU clock by |Touch| and leaves every touched
    // line's stamp |Touch| higher than a window earlier.
    const uint64_t A = Touch.size();
    Pipe.ICache.creditFoldedHits(A * Rem, A * Rem);
    std::vector<Addr> Distinct(Touch);
    std::sort(Distinct.begin(), Distinct.end());
    Distinct.erase(std::unique(Distinct.begin(), Distinct.end()),
                   Distinct.end());
    for (Addr Line : Distinct)
      Pipe.ICache.advanceLineStamp(Line, A * Rem);
  }
}

/// The memory-side half of the fixed-point check for bodies that touch
/// global memory: result scalars must advance by equal per-window deltas,
/// the observed worst-case latency must already be saturated, and every
/// store-buffer entry must either translate by D or be provably inert
/// (constant at or below the issue clock at s1, which only grows — a
/// forwarding max against it can never win again).
bool checkCpuMemFold(const CpuSnap &S1, const CpuSnap &S2,
                     const CpuSnap &S3, CpuFoldPlan &Plan) {
  uint64_t DMa = S2.MemAccesses - S1.MemAccesses;
  if (S3.MemAccesses - S2.MemAccesses != DMa)
    return false;
  uint64_t DMl = S2.MemLatencySum - S1.MemLatencySum;
  if (S3.MemLatencySum - S2.MemLatencySum != DMl)
    return false;
  uint64_t DFw = S2.StoreForwards - S1.StoreForwards;
  if (S3.StoreForwards - S2.StoreForwards != DFw)
    return false;
  // Faults never fold (they cannot repeat); the observer rejects them by
  // flag, and the scalar view must agree.
  if (S1.PageFaults != S3.PageFaults ||
      S1.PageFaultCycles != S3.PageFaultCycles)
    return false;
  // The per-window latency multiset is fixed (identical response logs),
  // so the max is final iff the second window did not raise it.
  if (S2.MemLatencyMax != S3.MemLatencyMax)
    return false;

  if (S1.StoreDump.size() != S2.StoreDump.size() ||
      S2.StoreDump.size() != S3.StoreDump.size())
    return false;
  Plan.StoreMoves.clear();
  const Cycle Floor = S1.IssueBusyCycle;
  for (size_t I = 0; I != S1.StoreDump.size(); ++I) {
    if (S1.StoreDump[I].first != S2.StoreDump[I].first ||
        S2.StoreDump[I].first != S3.StoreDump[I].first)
      return false;
    Cycle D12 = S2.StoreDump[I].second - S1.StoreDump[I].second;
    Cycle D23 = S3.StoreDump[I].second - S2.StoreDump[I].second;
    if (D12 != D23)
      return false;
    if (D12 == Plan.D) {
      Plan.StoreMoves.push_back(S1.StoreDump[I].first);
      continue;
    }
    if (D12 == 0 && S1.StoreDump[I].second <= Floor)
      continue; // Inert: forwarding resolves to IssueCycle + 1 forever.
    return false;
  }

  Plan.DMemAccesses = DMa;
  Plan.DMemLatencySum = DMl;
  Plan.DStoreForwards = DFw;
  return true;
}

/// Applies the memory-side scalars and store-buffer translation for
/// \p Rem folded repetitions.
void applyCpuMemFold(CpuPipeline &Pipe, const CpuFoldPlan &Plan,
                     uint64_t Rem) {
  Pipe.Result.MemAccesses += Plan.DMemAccesses * Rem;
  Pipe.Result.MemLatencySum += Plan.DMemLatencySum * Rem;
  Pipe.Result.StoreForwards += Plan.DStoreForwards * Rem;
  const Cycle Adv = Plan.D * Rem;
  for (Addr A : Plan.StoreMoves)
    if (Cycle *C = Pipe.StoreBuffer.find(A))
      *C += Adv;
}

bool spanTouchesGlobalMemory(const TraceBuffer &Body) {
  for (const TraceRecord &R : Body)
    if (isGlobalMemoryOp(R.Op))
      return true;
  return false;
}

uint64_t countBranches(const TraceBuffer &Body) {
  uint64_t N = 0;
  for (const TraceRecord &R : Body)
    N += isBranchOp(R.Op) ? 1 : 0;
  return N;
}

} // namespace

SegmentResult CpuCore::run(const TraceBuffer &Trace, Cycle StartCycle) {
  return run(Trace.records().data(), Trace.size(), StartCycle);
}

SegmentResult CpuCore::run(const TraceRecord *Records, size_t Count,
                           Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Count;
  if (Count == 0)
    return Result;

  CpuPipeline Pipe(Config, Mem, Predictor, ICache, Result, StartCycle);
  Pipe.runSpan(Records, Count);

  assert(Pipe.LastRetire >= StartCycle && "time went backwards");
  Result.Cycles = Pipe.LastRetire - StartCycle;
  return Result;
}

SegmentResult CpuCore::run(const SharedTrace &Trace, Cycle StartCycle) {
  const BlockTrace *Block = Trace.blocks();
  if (!Block || !fastPathEnabled())
    return run(Trace.buffer(), StartCycle);
  if (Block->kind() == BlockTrace::Kind::Pattern)
    return runPatternBlock(*Block, StartCycle);
  return runWindowed(*Block, StartCycle);
}

SegmentResult CpuCore::runWindowed(const BlockTrace &Block,
                                   Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Block.totalRecords();
  if (Result.Insts == 0)
    return Result;

  if (Mem.memFastModeCached() == MemFastMode::Sampled &&
      Block.kind() != BlockTrace::Kind::Pattern &&
      Block.generator().streamStructure().SteadyStride &&
      Result.Insts >= 8 * ComputeWindowRecords)
    return runSampled(Block, StartCycle);

  CpuPipeline Pipe(Config, Mem, Predictor, ICache, Result, StartCycle);
  BlockExpander Expander(Block);
  TraceBuffer Window;
  while (!Expander.done()) {
    BlockExpander::Span Span = Expander.nextSpan(Window);
    Pipe.runSpan(Span.Data, size_t(Span.Count));
  }

  assert(Pipe.LastRetire >= StartCycle && "time went backwards");
  Result.Cycles = Pipe.LastRetire - StartCycle;
  return Result;
}

/// The sampled memory tier (HETSIM_MEMFAST=sampled, DESIGN.md §11):
/// simulate a few warm-up windows in full, then alternate one re-warm
/// window, one measured window, and a burst of skipped windows whose time
/// and counters are extrapolated from the measured window's per-record
/// rates. Skipped records never touch the memory system; the reported
/// error bound is the skipped records' spread between the best and worst
/// measured rates. Never used by goldens.
SegmentResult CpuCore::runSampled(const BlockTrace &Block,
                                  Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Block.totalRecords();

  CpuPipeline Pipe(Config, Mem, Predictor, ICache, Result, StartCycle);
  BlockExpander Expander(Block);
  TraceBuffer Window;
  MemorySystem::MemFastCounters &MFC = Mem.memfastCounters();
  const unsigned SkipN = memFastSampleSkip();

  double RateMin = 0, RateMax = 0;
  bool HaveRate = false;
  unsigned WarmLeft = 4;
  while (!Expander.done()) {
    if (WarmLeft != 0) {
      BlockExpander::Span Span = Expander.nextWindow(Window);
      Pipe.runSpan(Span.Data, size_t(Span.Count));
      --WarmLeft;
      continue;
    }

    // Measure one window.
    const Cycle C0 = Pipe.LastRetire;
    const SegmentResult R0 = Result;
    BlockExpander::Span Span = Expander.nextWindow(Window);
    Pipe.runSpan(Span.Data, size_t(Span.Count));
    const uint64_t Nm = Span.Count;
    if (Nm == 0)
      break;
    const Cycle Dm = Pipe.LastRetire - C0;
    const uint64_t DMa = Result.MemAccesses - R0.MemAccesses;
    const uint64_t DMl = Result.MemLatencySum - R0.MemLatencySum;
    const uint64_t DBm = Result.BranchMispredicts - R0.BranchMispredicts;
    const uint64_t DIc = Result.ICacheMisses - R0.ICacheMisses;
    const uint64_t DFw = Result.StoreForwards - R0.StoreForwards;
    const double Rate = double(Dm) / double(Nm);
    RateMin = HaveRate ? std::min(RateMin, Rate) : Rate;
    RateMax = HaveRate ? std::max(RateMax, Rate) : Rate;
    HaveRate = true;

    // Skip a burst, extrapolating the measured rates.
    uint64_t SkipRecords = 0;
    for (unsigned I = 0; I != SkipN && !Expander.done(); ++I)
      SkipRecords += Expander.skip(Window);
    if (SkipRecords != 0) {
      const Cycle Adv = Dm * SkipRecords / Nm;
      Pipe.FetchCycle += Adv;
      Pipe.IssueBusyCycle += Adv;
      Pipe.LastRetire += Adv;
      for (Cycle &C : Pipe.RegReady)
        C += Adv;
      for (Cycle &C : Pipe.RobRetire)
        C += Adv;
      Pipe.RobHead += SkipRecords;
      Result.MemAccesses += DMa * SkipRecords / Nm;
      Result.MemLatencySum += DMl * SkipRecords / Nm;
      Result.BranchMispredicts += DBm * SkipRecords / Nm;
      Result.ICacheMisses += DIc * SkipRecords / Nm;
      Result.StoreForwards += DFw * SkipRecords / Nm;
      Result.SampledRecords += SkipRecords;
      Result.SampledErrorCycles += double(SkipRecords) * (RateMax - RateMin);
      ++*MFC.SampledWindows;
      *MFC.SampledRecords += SkipRecords;
      WarmLeft = 1; // Re-warm before the next measurement.
    }
  }

  assert(Pipe.LastRetire >= StartCycle && "time went backwards");
  Result.Cycles = Pipe.LastRetire - StartCycle;
  return Result;
}

SegmentResult CpuCore::runPatternBlock(const BlockTrace &Block,
                                       Cycle StartCycle) {
  const PatternBlock &P = Block.pattern();
  SegmentResult Result;
  Result.Insts = Block.totalRecords();
  if (Result.Insts == 0)
    return Result;

  CpuPipeline Pipe(Config, Mem, Predictor, ICache, Result, StartCycle);
  Pipe.runSpan(P.Prologue.records().data(), P.Prologue.size());

  const size_t K = P.Body.size();
  uint64_t Done = 0;
  // Compute-only bodies fold on pipeline state alone. Bodies with
  // global-memory records additionally need the whole memory system at a
  // verified per-period fixed point (the memory-phase fold, DESIGN.md
  // §11); that path is gated on HETSIM_MEMFAST — Off preserves the
  // detailed walk for every memory access, the bit-exact oracle.
  const bool MemBody = spanTouchesGlobalMemory(P.Body);
  const MemFastMode MF = Mem.memFastModeCached();
  const bool TryFold =
      K != 0 && P.BodyRepeats > 0 &&
      (!MemBody || MF == MemFastMode::Exact || MF == MemFastMode::Warm);
  if (TryFold) {
    // Warm until every ROB slot was written from steady-state body code
    // (plus two extra windows for cache/TLB contents to settle), then
    // observe two full windows.
    const uint64_t Warmup =
        (Config.RobEntries + K - 1) / K + 2 + (MemBody ? 2 : 0);
    if (P.BodyRepeats >= Warmup + 3) {
      for (; Done != Warmup; ++Done)
        Pipe.runSpan(P.Body.records().data(), K);
      std::unique_ptr<MemFoldObserver> Obs;
      if (MemBody) {
        ++*Mem.memfastCounters().FoldAttempts;
        Obs.reset(new MemFoldObserver(Mem, PuKind::Cpu));
        Obs->snapshot(0);
      }
      CpuSnap S1 = CpuSnap::of(Pipe, MemBody);
      std::vector<Addr> Touch1, Touch2;
      Pipe.TouchLog = &Touch1;
      if (Obs)
        Obs->beginLog(0);
      Pipe.runSpan(P.Body.records().data(), K);
      ++Done;
      if (Obs) {
        Obs->endLog();
        Obs->snapshot(1);
      }
      CpuSnap S2 = CpuSnap::of(Pipe, MemBody);
      Pipe.TouchLog = &Touch2;
      if (Obs)
        Obs->beginLog(1);
      Pipe.runSpan(P.Body.records().data(), K);
      ++Done;
      if (Obs) {
        Obs->endLog();
        Obs->snapshot(2);
      }
      CpuSnap S3 = CpuSnap::of(Pipe, MemBody);
      Pipe.TouchLog = nullptr;

      CpuFoldPlan Plan;
      bool Ok = checkCpuFold(S1, S2, S3, Touch1, Touch2, Config, K,
                             P.Epilogue.size(), P.BodyRepeats - Done, Plan);
      if (Obs) {
        MemFoldReason Reason = MemFoldReason::PipelineDrift;
        if (Ok && !checkCpuMemFold(S1, S2, S3, Plan))
          Ok = false; // Core-side memory state (store buffer) drifted.
        if (Ok)
          Ok = Obs->check(Plan.D, S1.IssueBusyCycle, Reason);
        if (Ok) {
          const uint64_t Rem = P.BodyRepeats - Done;
          applyCpuFold(Pipe, Plan, Rem, K, countBranches(P.Body), Touch2);
          applyCpuMemFold(Pipe, Plan, Rem);
          Obs->apply(Rem);
          ++*Mem.memfastCounters().Folds;
          *Mem.memfastCounters().FoldedRecords += K * Rem;
          Done = P.BodyRepeats;
        } else {
          ++*Mem.memfastCounters().Fallback[unsigned(Reason)];
        }
      } else if (Ok) {
        const uint64_t Rem = P.BodyRepeats - Done;
        applyCpuFold(Pipe, Plan, Rem, K, countBranches(P.Body), Touch2);
        Done = P.BodyRepeats;
      }
    }
  }
  for (; Done != P.BodyRepeats; ++Done)
    Pipe.runSpan(P.Body.records().data(), K);

  Pipe.runSpan(P.Epilogue.records().data(), P.Epilogue.size());

  assert(Pipe.LastRetire >= StartCycle && "time went backwards");
  Result.Cycles = Pipe.LastRetire - StartCycle;
  return Result;
}
