//===- cpu/CpuCore.cpp ----------------------------------------------------===//

#include "cpu/CpuCore.h"

#include "memory/MemorySystem.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace hetsim;

CpiStack hetsim::computeCpiStack(const SegmentResult &Result,
                                 const CpuConfig &Config) {
  CpiStack Stack;
  if (Result.Insts == 0)
    return Stack;
  double Insts = double(Result.Insts);
  Stack.BaseCpi = 1.0 / double(Config.IssueWidth);
  Stack.BranchCpi =
      double(Result.BranchMispredicts) * double(Config.MispredictPenalty) /
      Insts;
  Stack.FetchCpi =
      double(Result.ICacheMisses) * double(Config.L1IMissPenalty) / Insts;
  double Total = double(Result.Cycles) / Insts;
  Stack.MemDepCpi = Total - Stack.BaseCpi - Stack.BranchCpi - Stack.FetchCpi;
  if (Stack.MemDepCpi < 0)
    Stack.MemDepCpi = 0; // Overlap can hide charged penalties.
  return Stack;
}

CpuCore::CpuCore(const CpuConfig &Cfg, MemorySystem &Memory)
    : Config(Cfg), Mem(Memory), Predictor(Cfg.GshareTableBits),
      ICache(CacheConfig::cpuL1I(), /*RngSeed=*/23) {}

SegmentResult CpuCore::run(const TraceBuffer &Trace, Cycle StartCycle) {
  return run(Trace.records().data(), Trace.size(), StartCycle);
}

SegmentResult CpuCore::run(const TraceRecord *Records, size_t Count,
                           Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Count;
  if (Count == 0)
    return Result;

  // Operand readiness per architectural register.
  std::vector<Cycle> RegReady(NumTraceRegs, StartCycle);

  // Retire times of in-flight instructions, a ring buffer of ROB size:
  // instruction I cannot dispatch until instruction I - RobEntries retired.
  std::vector<Cycle> RobRetire(Config.RobEntries, StartCycle);
  uint64_t RobHead = 0;

  // Fetch: FetchWidth per cycle, stalled by mispredicted branches.
  Cycle FetchCycle = StartCycle;
  unsigned FetchedThisCycle = 0;

  // Issue bandwidth: IssueWidth per cycle.
  Cycle IssueBusyCycle = StartCycle;
  unsigned IssuedThisCycle = 0;

  // In-order retirement.
  Cycle LastRetire = StartCycle;
  unsigned RetiredThisCycle = 0;

  Addr LastFetchLine = ~Addr(0);

  // Store buffer for store-to-load forwarding: exact address -> cycle at
  // which the stored data is forwardable.
  std::unordered_map<Addr, Cycle> StoreBuffer;

  for (size_t Index = 0; Index != Count; ++Index) {
    const TraceRecord &R = Records[Index];
    // --- Fetch ---
    if (FetchedThisCycle >= Config.FetchWidth) {
      ++FetchCycle;
      FetchedThisCycle = 0;
    }
    // Instruction fetch goes through the L1I one line at a time; a miss
    // stalls the front end.
    if (Config.ModelInstructionFetch) {
      Addr FetchLine = alignDown(R.Pc, CacheLineBytes);
      if (FetchLine != LastFetchLine) {
        LastFetchLine = FetchLine;
        if (!ICache.access(FetchLine, /*IsWrite=*/false).Hit) {
          ++Result.ICacheMisses;
          FetchCycle += Config.L1IMissPenalty;
          FetchedThisCycle = 0;
        }
      }
    }
    ++FetchedThisCycle;

    // --- Dispatch: needs a ROB slot ---
    Cycle RobFree = RobRetire[RobHead % Config.RobEntries];
    Cycle DispatchCycle = std::max(FetchCycle, RobFree);

    // --- Issue: operands + an issue slot ---
    Cycle Ready = DispatchCycle;
    if (R.SrcRegA != NoReg)
      Ready = std::max(Ready, RegReady[R.SrcRegA]);
    if (R.SrcRegB != NoReg)
      Ready = std::max(Ready, RegReady[R.SrcRegB]);
    if (Ready > IssueBusyCycle) {
      IssueBusyCycle = Ready;
      IssuedThisCycle = 0;
    } else if (IssuedThisCycle >= Config.IssueWidth) {
      ++IssueBusyCycle;
      IssuedThisCycle = 0;
      Ready = IssueBusyCycle;
    } else {
      Ready = IssueBusyCycle;
    }
    ++IssuedThisCycle;
    Cycle IssueCycle = Ready;

    // --- Execute ---
    Cycle Complete = IssueCycle + executeLatency(PuKind::Cpu, R.Op);
    if (isGlobalMemoryOp(R.Op)) {
      MemAccessResult MemResult = Mem.access(
          PuKind::Cpu, R.MemAddr, std::max<uint32_t>(R.MemBytes, 1),
          isStoreOp(R.Op), IssueCycle);
      ++Result.MemAccesses;
      Result.MemLatencySum += MemResult.Latency;
      Result.MemLatencyMax = std::max(Result.MemLatencyMax,
                                      MemResult.Latency);
      if (MemResult.PageFault) {
        ++Result.PageFaults;
        Result.PageFaultCycles += MemResult.Latency;
      }
      // Stores complete for dependence purposes after address+data issue;
      // the store buffer hides their memory time. Loads wait for data —
      // unless a recent store to the same address forwards it.
      if (isStoreOp(R.Op)) {
        if (Config.EnableStoreForwarding)
          StoreBuffer[R.MemAddr] = IssueCycle + 1;
      } else {
        Complete = IssueCycle + MemResult.Latency;
        if (Config.EnableStoreForwarding) {
          auto Hit = StoreBuffer.find(R.MemAddr);
          if (Hit != StoreBuffer.end()) {
            ++Result.StoreForwards;
            Complete = std::max(IssueCycle + 1, Hit->second);
          }
        }
      }
    }

    if (R.DstReg != NoReg)
      RegReady[R.DstReg] = Complete;

    // --- Branch resolution ---
    if (isBranchOp(R.Op)) {
      bool Correct = Predictor.update(R.Pc, R.IsTaken);
      if (!Correct) {
        ++Result.BranchMispredicts;
        // Refetch from the resolved target.
        Cycle Refetch = Complete + Config.MispredictPenalty;
        if (Refetch > FetchCycle) {
          FetchCycle = Refetch;
          FetchedThisCycle = 0;
        }
      }
    }

    // --- In-order retirement ---
    Cycle Retire = std::max(Complete, LastRetire);
    if (Retire > LastRetire) {
      LastRetire = Retire;
      RetiredThisCycle = 0;
    } else if (RetiredThisCycle >= Config.RetireWidth) {
      ++LastRetire;
      RetiredThisCycle = 0;
      Retire = LastRetire;
    } else {
      Retire = LastRetire;
    }
    ++RetiredThisCycle;

    RobRetire[RobHead % Config.RobEntries] = Retire;
    ++RobHead;
  }

  assert(LastRetire >= StartCycle && "time went backwards");
  Result.Cycles = LastRetire - StartCycle;
  return Result;
}
