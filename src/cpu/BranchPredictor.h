//===- cpu/BranchPredictor.h - gshare branch predictor ----------*- C++ -*-===//
///
/// \file
/// The gshare predictor of Table II: a table of 2-bit saturating counters
/// indexed by PC xor global history.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CPU_BRANCHPREDICTOR_H
#define HETSIM_CPU_BRANCHPREDICTOR_H

#include "common/Types.h"

#include <vector>

namespace hetsim {

/// Prediction statistics.
struct BranchStats {
  uint64_t Predictions = 0;
  uint64_t Mispredictions = 0;

  double accuracy() const {
    return Predictions == 0
               ? 1.0
               : 1.0 - double(Mispredictions) / double(Predictions);
  }
};

/// gshare: global history xor PC indexes a pattern history table.
class GsharePredictor {
public:
  /// \p TableBits selects 2^TableBits two-bit counters.
  explicit GsharePredictor(unsigned TableBits = 12);

  /// Predicts the direction of the branch at \p Pc.
  bool predict(Addr Pc) const;

  /// Updates predictor state with the actual outcome; returns true if the
  /// prediction was correct.
  bool update(Addr Pc, bool Taken);

  const BranchStats &stats() const { return Stats; }

  /// Raw table and history, exposed so the closed-form retire path can
  /// prove the predictor reached a per-window fixed point (state equal at
  /// consecutive window boundaries) before crediting folded outcomes.
  const std::vector<uint8_t> &counters() const { return Counters; }
  uint64_t history() const { return History; }

  /// Credits folded outcomes without state updates; sound only when the
  /// caller proved the replayed windows leave Counters/History unchanged.
  void creditFolded(uint64_t FoldedPredictions, uint64_t FoldedMispredictions) {
    Stats.Predictions += FoldedPredictions;
    Stats.Mispredictions += FoldedMispredictions;
  }

  void reset();

private:
  unsigned index(Addr Pc) const;

  unsigned TableBits;
  std::vector<uint8_t> Counters; ///< 2-bit saturating counters.
  uint64_t History = 0;
  BranchStats Stats;
};

} // namespace hetsim

#endif // HETSIM_CPU_BRANCHPREDICTOR_H
