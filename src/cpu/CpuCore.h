//===- cpu/CpuCore.h - Out-of-order CPU timing model ------------*- C++ -*-===//
///
/// \file
/// The 3.5GHz out-of-order CPU core of Table II. A one-pass timing model:
/// each trace instruction's dispatch is limited by fetch bandwidth, ROB
/// occupancy, and branch-misprediction refetch; its issue waits for source
/// operands and an issue slot; loads and stores walk the memory hierarchy.
/// Retirement is in order. This captures ILP, memory-level parallelism,
/// and branch behaviour in O(1) work per instruction.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CPU_CPUCORE_H
#define HETSIM_CPU_CPUCORE_H

#include "cache/Cache.h"
#include "cpu/BranchPredictor.h"
#include "trace/TraceBuffer.h"

#include <vector>

namespace hetsim {

class MemorySystem;

/// CPU core parameters (Sandy-Bridge-like defaults).
struct CpuConfig {
  unsigned FetchWidth = 4;
  unsigned IssueWidth = 4;
  unsigned RetireWidth = 4;
  unsigned RobEntries = 168;
  Cycle MispredictPenalty = 15;
  unsigned GshareTableBits = 12;

  /// Model instruction fetch through the L1I (Table II: 32KB 8-way,
  /// 2-cycle). Loop kernels fit easily, so this mostly matters for
  /// large-footprint code; misses stall fetch for L1IMissPenalty.
  bool ModelInstructionFetch = true;
  Cycle L1IMissPenalty = 10;

  /// Store-to-load forwarding: a load whose address matches a recent
  /// store gets its data from the store buffer (1 cycle after the store
  /// issued) instead of waiting on the hierarchy.
  bool EnableStoreForwarding = true;
};

/// Results of running one trace segment on a core.
struct SegmentResult {
  Cycle Cycles = 0; ///< Core cycles from segment start to last retire.
  uint64_t Insts = 0;
  uint64_t MemAccesses = 0;
  uint64_t MemLatencySum = 0; ///< Total memory-hierarchy cycles observed.
  Cycle MemLatencyMax = 0;    ///< Worst single access (tail latency).
  uint64_t BranchMispredicts = 0;
  uint64_t ICacheMisses = 0;
  uint64_t StoreForwards = 0;
  uint64_t PageFaults = 0;
  Cycle PageFaultCycles = 0;

  /// Sampled memory tier only (HETSIM_MEMFAST=sampled, never goldens):
  /// records advanced in closed form between measured windows, and the
  /// reported bound on the Cycles error that introduced (the skipped
  /// records' spread between the best and worst measured rates).
  uint64_t SampledRecords = 0;
  double SampledErrorCycles = 0;

  double ipc() const {
    return Cycles == 0 ? 0.0 : double(Insts) / double(Cycles);
  }
};

/// A coarse CPI stack for a segment: where did the cycles beyond the
/// ideal-width baseline go? Branch and fetch components are exact
/// (penalties are charged per event); the remainder is attributed to
/// memory/dependence stalls.
struct CpiStack {
  double BaseCpi = 0;   ///< Insts / IssueWidth.
  double BranchCpi = 0; ///< Mispredict bubbles.
  double FetchCpi = 0;  ///< I-cache miss stalls.
  double MemDepCpi = 0; ///< Everything else: memory + dependence chains.

  double totalCpi() const {
    return BaseCpi + BranchCpi + FetchCpi + MemDepCpi;
  }
};

/// Decomposes \p Result into a CPI stack for a core of \p Config.
CpiStack computeCpiStack(const SegmentResult &Result,
                         const CpuConfig &Config);

/// The out-of-order core.
class CpuCore {
public:
  CpuCore(const CpuConfig &Config, MemorySystem &Mem);

  /// Runs \p Trace to completion starting at core cycle \p StartCycle and
  /// returns its timing. Core state (predictor, I-cache) persists across
  /// segments; register readiness is reset per segment (segments are
  /// separated by synchronization anyway).
  SegmentResult run(const TraceBuffer &Trace, Cycle StartCycle);

  /// Same, over a raw record span (used by the interleaved-contention
  /// driver to run a trace in slices).
  SegmentResult run(const TraceRecord *Records, size_t Count,
                    Cycle StartCycle);

  /// Runs a shared trace handle. Block-backed handles take the fast path:
  /// windowed expansion for generator blocks, and closed-form retirement
  /// of the steady-state body for Pattern blocks once the pipeline reaches
  /// a verified per-period fixed point (see DESIGN.md §8). Results are
  /// identical to running the materialized trace through the reference
  /// loop.
  SegmentResult run(const SharedTrace &Trace, Cycle StartCycle);

  const CpuConfig &config() const { return Config; }
  GsharePredictor &predictor() { return Predictor; }
  Cache &instructionCache() { return ICache; }

private:
  SegmentResult runWindowed(const BlockTrace &Block, Cycle StartCycle);
  SegmentResult runPatternBlock(const BlockTrace &Block, Cycle StartCycle);
  SegmentResult runSampled(const BlockTrace &Block, Cycle StartCycle);

  CpuConfig Config;
  MemorySystem &Mem;
  GsharePredictor Predictor;
  Cache ICache; ///< L1 instruction cache (Table II).
};

} // namespace hetsim

#endif // HETSIM_CPU_CPUCORE_H
