//===- core/ResultStore.h - Content-addressed sweep results -----*- C++ -*-===//
///
/// \file
/// An on-disk cache of finished sweep points, keyed by *content*: the
/// FNV-1a fingerprint of the fully resolved SystemConfig, the fingerprint
/// of every trace the lowered program will execute, and a code-version
/// constant that is bumped whenever simulator semantics change. Two sweep
/// points with the same key are guaranteed to produce the same RunResult
/// (the simulator is deterministic in exactly those inputs), so a stored
/// entry can be served in place of a simulation.
///
/// Resumability falls out of the keying: an interrupted sweep has already
/// persisted every completed point, so re-running the same sweep command
/// loads those and simulates only the remainder — and because stored
/// doubles round-trip exactly (hex-float serialization), the resumed
/// output is byte-identical to an uninterrupted run.
///
/// Entries are written atomically (temp file + rename) so a killed writer
/// can never leave a half-entry that a resume would trust; a corrupt or
/// truncated file is treated as a miss and overwritten.
///
/// Enabled by HETSIM_RESULT_STORE=<dir> (the sweep runner picks it up) or
/// `hetsim sweep --resume [--store <dir>]`.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_RESULTSTORE_H
#define HETSIM_CORE_RESULTSTORE_H

#include "core/HeteroSimulator.h"
#include "core/Lowering.h"
#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace hetsim {

/// Folded into every key; bump on any change to simulator semantics so a
/// new binary can never serve results computed by an old model.
constexpr uint64_t ResultStoreCodeVersion = 1;

/// Content fingerprint of a fully resolved system configuration (every
/// field the simulator reads, nested configs included).
uint64_t hashSystemConfig(const SystemConfig &Config);

/// Content fingerprint of every trace \p Program executes: block-backed
/// traces hash their recipes (generator inputs + layout fingerprint),
/// materialized traces hash their record streams field by field, and
/// non-trace step attributes (kind, bytes, direction, objects) are folded
/// in so two programs with equal traces but different communication steps
/// never collide.
uint64_t hashLoweredTraces(const LoweredProgram &Program);

/// The content-addressed on-disk result cache.
class ResultStore {
public:
  /// A fully derived key. Also the on-disk identity: entries live at
  /// <root>/<config-hash>-<trace-hash>-<version>.result.
  struct Key {
    uint64_t ConfigHash = 0;
    uint64_t TraceHash = 0;
    uint64_t CodeVersion = ResultStoreCodeVersion;
  };

  /// Everything the sweep runner needs to skip a point.
  struct Entry {
    RunResult Result;
    MetricsSnapshot Metrics;
  };

  /// A store rooted at \p Dir (created lazily on first save). An empty
  /// \p Dir disables the store: load() always misses, save() is a no-op.
  explicit ResultStore(std::string Dir);

  /// The HETSIM_RESULT_STORE-configured store (disabled when unset).
  static ResultStore fromEnvironment();

  bool enabled() const { return !Root.empty(); }
  const std::string &root() const { return Root; }

  /// Derives the key for one sweep point. \p Config must be the final,
  /// override-applied configuration \p Program was lowered for.
  static Key keyFor(const SystemConfig &Config,
                    const LoweredProgram &Program);

  /// Loads the entry for \p K. Returns false on miss or on a corrupt /
  /// truncated / version-mismatched file (which a later save overwrites).
  bool load(const Key &K, Entry &Out) const;

  /// Persists \p E under \p K via write-to-temp + atomic rename, so
  /// readers (including a concurrent or future resume) only ever see
  /// complete entries. Returns false on I/O failure.
  bool save(const Key &K, const Entry &E) const;

  /// Counters since construction (telemetry).
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t stores() const { return Stores.load(std::memory_order_relaxed); }

private:
  std::string entryPath(const Key &K) const;

  std::string Root;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
  mutable std::atomic<uint64_t> Stores{0};
};

} // namespace hetsim

#endif // HETSIM_CORE_RESULTSTORE_H
