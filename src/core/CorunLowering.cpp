//===- core/CorunLowering.cpp ---------------------------------------------===//

#include "core/CorunLowering.h"

#include <algorithm>

using namespace hetsim;

bool CorunProgram::isSharedBase(const std::string &Base) const {
  return std::find(SharedBases.begin(), SharedBases.end(), Base) !=
         SharedBases.end();
}

std::string CorunProgram::objectName(size_t Agent,
                                     const std::string &Base) const {
  if (isSharedBase(Base))
    return Base;
  if (Agent < Agents.size())
    return Agents[Agent].Name + "." + Base;
  return Base;
}

size_t CorunProgram::totalSteps() const {
  size_t Total = 0;
  for (const CorunAgent &Agent : Agents)
    Total += Agent.Program.Steps.size();
  return Total;
}

CorunProgram hetsim::lowerCorun(const std::vector<KernelId> &Kernels,
                                const SystemConfig &Config,
                                const std::vector<std::string> &SharedBases) {
  CorunProgram Corun;
  Corun.Config = Config;
  for (size_t I = 0; I != Kernels.size(); ++I) {
    CorunAgent Agent;
    Agent.Name = "a" + std::to_string(I);
    Agent.Kernel = Kernels[I];
    Agent.Program = lowerKernel(Kernels[I], Config);
    Corun.Agents.push_back(std::move(Agent));
  }
  // Keep only shared names that exist in at least one agent's object
  // set, so the alias list always names real allocations.
  for (const std::string &Base : SharedBases) {
    bool Known = false;
    for (const CorunAgent &Agent : Corun.Agents)
      for (const DataObjectSpec &Spec : kernelDataObjects(Agent.Kernel))
        if (Base == Spec.Name)
          Known = true;
    if (Known)
      Corun.SharedBases.push_back(Base);
  }
  return Corun;
}

CorunProgram hetsim::corunFromSingle(LoweredProgram Program,
                                     const SystemConfig &Config) {
  CorunProgram Corun;
  Corun.Config = Config;
  CorunAgent Agent;
  Agent.Name = "a0";
  Agent.Kernel = Program.Kernel;
  Agent.Program = std::move(Program);
  Corun.Agents.push_back(std::move(Agent));
  return Corun;
}
