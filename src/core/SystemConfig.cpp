//===- core/SystemConfig.cpp ----------------------------------------------===//

#include "core/SystemConfig.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::caseStudyName(CaseStudy Study) {
  switch (Study) {
  case CaseStudy::CpuGpu:
    return "CPU+GPU";
  case CaseStudy::Lrb:
    return "LRB";
  case CaseStudy::Gmac:
    return "GMAC";
  case CaseStudy::Fusion:
    return "Fusion";
  case CaseStudy::IdealHetero:
    return "IDEAL-HETERO";
  }
  hetsim_unreachable("invalid case study");
}

const std::vector<CaseStudy> &hetsim::allCaseStudies() {
  static const std::vector<CaseStudy> Studies = {
      CaseStudy::CpuGpu, CaseStudy::Lrb, CaseStudy::Gmac, CaseStudy::Fusion,
      CaseStudy::IdealHetero,
  };
  return Studies;
}

void SystemConfig::applyOverrides(const ConfigStore &Overrides) {
  Comm = CommParams::fromConfig(Overrides);

  Hier.TlbMissPenalty =
      Overrides.getUInt("mem.tlb_miss_penalty", Hier.TlbMissPenalty);
  Hier.GpuPageBytes = Overrides.getUInt("mem.gpu_page_bytes",
                                        Hier.GpuPageBytes);
  Hier.CpuPageBytes = Overrides.getUInt("mem.cpu_page_bytes",
                                        Hier.CpuPageBytes);
  Hier.L3.SizeBytes = Overrides.getUInt("mem.l3_bytes", Hier.L3.SizeBytes);
  Hier.EnableL2Prefetch =
      Overrides.getBool("mem.l2_prefetch", Hier.EnableL2Prefetch);
  if (Overrides.getString("mem.noc", "ring") == "mesh")
    Hier.UseMeshNoc = true;
  Hier.Prefetch.Degree = unsigned(
      Overrides.getUInt("mem.prefetch_degree", Hier.Prefetch.Degree));

  Cpu.RobEntries =
      unsigned(Overrides.getUInt("cpu.rob_entries", Cpu.RobEntries));
  Cpu.MispredictPenalty =
      Overrides.getUInt("cpu.mispredict_penalty", Cpu.MispredictPenalty);
  Gpu.BranchStall = Overrides.getUInt("gpu.branch_stall", Gpu.BranchStall);

  if (Overrides.has("sys.ideal_comm"))
    IdealComm = Overrides.getBool("sys.ideal_comm", IdealComm);
  if (Overrides.has("sys.first_touch_faults"))
    FirstTouchFaults =
        Overrides.getBool("sys.first_touch_faults", FirstTouchFaults);
  if (Overrides.has("sys.async_copies"))
    AsyncCopies = Overrides.getBool("sys.async_copies", AsyncCopies);
  InterleavedContention = Overrides.getBool("sys.interleaved_contention",
                                            InterleavedContention);
  CpuWorkFraction =
      Overrides.getDouble("sys.cpu_work_fraction", CpuWorkFraction);
  if (CpuWorkFraction < 0.0)
    CpuWorkFraction = 0.0;
  if (CpuWorkFraction > 1.0)
    CpuWorkFraction = 1.0;
}

SystemConfig SystemConfig::forCaseStudy(CaseStudy Study,
                                        const ConfigStore &Overrides) {
  // To isolate memory-system effects, all five systems share identical
  // CPUs and GPUs (Section V-A); only the memory organization differs.
  SystemConfig C;
  C.Name = caseStudyName(Study);

  switch (Study) {
  case CaseStudy::CpuGpu:
    // Discrete GPU over PCI-E; two private hierarchies, two memories.
    C.AddrSpace = AddressSpaceKind::Disjoint;
    C.Connection = ConnectionKind::PciExpress;
    C.Hier.SeparateGpuDram = true;
    C.Hier.GpuSharesL3 = false;
    C.Locality = {LocalityMgmt::Implicit, LocalityMgmt::Explicit,
                  SharedLocality::NoSharedLevel};
    break;

  case CaseStudy::Lrb:
    // Partially shared space through the PCI aperture with ownership and
    // first-touch page faults (Section V-A).
    C.AddrSpace = AddressSpaceKind::PartiallyShared;
    C.Connection = ConnectionKind::PciExpress;
    C.Hier.SeparateGpuDram = true;
    C.Hier.GpuSharesL3 = false;
    C.UseOwnership = true;
    C.FirstTouchFaults = true;
    C.Locality = {LocalityMgmt::Implicit, LocalityMgmt::Implicit,
                  SharedLocality::Implicit};
    break;

  case CaseStudy::Gmac:
    // ADSM over PCI-E; asynchronous copies hide communication.
    C.AddrSpace = AddressSpaceKind::Adsm;
    C.Connection = ConnectionKind::PciExpress;
    C.Hier.SeparateGpuDram = true;
    C.Hier.GpuSharesL3 = false;
    C.AsyncCopies = true;
    C.Locality = {LocalityMgmt::Explicit, LocalityMgmt::Implicit,
                  SharedLocality::Implicit};
    break;

  case CaseStudy::Fusion:
    // Disjoint spaces in one package: transfers go through the memory
    // controllers of a single shared DRAM.
    C.AddrSpace = AddressSpaceKind::Disjoint;
    C.Connection = ConnectionKind::MemoryController;
    C.Hier.SeparateGpuDram = false;
    C.Hier.GpuSharesL3 = false;
    C.Locality = {LocalityMgmt::Implicit, LocalityMgmt::Explicit,
                  SharedLocality::NoSharedLevel};
    break;

  case CaseStudy::IdealHetero:
    // Unified, fully coherent, shared LLC; communication is free.
    C.AddrSpace = AddressSpaceKind::Unified;
    C.Connection = ConnectionKind::None;
    C.Hier.SeparateGpuDram = false;
    C.Hier.GpuSharesL3 = true;
    C.Hier.HwCoherence = true;
    C.IdealComm = true;
    C.Locality = {LocalityMgmt::Implicit, LocalityMgmt::Implicit,
                  SharedLocality::Implicit};
    break;
  }

  C.applyOverrides(Overrides);
  return C;
}

SystemConfig SystemConfig::sandyBridgeStyle(const ConfigStore &Overrides) {
  SystemConfig C = forCaseStudy(CaseStudy::Fusion);
  C.Name = "SandyBridge-style";
  C.Hier.GpuSharesL3 = true; // Disjoint spaces, shared LLC (II-A2).
  C.applyOverrides(Overrides);
  return C;
}

SystemConfig
SystemConfig::forAddressSpaceStudy(AddressSpaceKind Kind,
                                   const ConfigStore &Overrides) {
  // Figure 7's setup: "we assume that all the systems share the cache"
  // and communication overhead is ideal — only the extra data-handling
  // instructions remain.
  SystemConfig C;
  C.Name = addressSpaceShortName(Kind);
  C.AddrSpace = Kind;
  C.Connection = ConnectionKind::None;
  C.Hier.SeparateGpuDram = false;
  C.Hier.GpuSharesL3 = true;
  C.IdealComm = true;
  C.UseOwnership = Kind == AddressSpaceKind::PartiallyShared;
  C.Locality = {LocalityMgmt::Implicit, LocalityMgmt::Implicit,
                SharedLocality::Implicit};
  C.applyOverrides(Overrides);
  return C;
}
