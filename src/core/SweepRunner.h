//===- core/SweepRunner.h - Parallel design-space sweeps --------*- C++ -*-===//
///
/// \file
/// The sweep engine every experiment harness and bench routes through.
/// A sweep is a vector of independent (system config, kernel, overrides)
/// jobs; the runner fans them out over a ThreadPool and returns results
/// in submission order, so a table rendered from a parallel sweep is
/// byte-identical to the serial harness. Each sweep also collects
/// wall-clock telemetry (points/s, simulated-ns throughput, trace-cache
/// hit rate) that benches print and append to out/bench_timing.json so
/// the repo keeps a perf trajectory across PRs.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_SWEEPRUNNER_H
#define HETSIM_CORE_SWEEPRUNNER_H

#include "core/HeteroSimulator.h"

#include <string>
#include <vector>

namespace hetsim {

/// One independent sweep job. A non-empty Overrides store is applied on
/// top of Config right before the run (so a shared base config can be
/// swept by key). Note SystemConfig::applyOverrides rebuilds comm.*
/// params wholesale from the store — when sweeping comm keys, put every
/// comm override for the point in this store (or bake them all into
/// Config via forCaseStudy and leave this empty).
struct SweepPoint {
  SystemConfig Config;
  KernelId Kernel = KernelId::Reduction;
  ConfigStore Overrides;

  SweepPoint() = default;
  SweepPoint(SystemConfig Cfg, KernelId K, ConfigStore Store = {})
      : Config(std::move(Cfg)), Kernel(K), Overrides(std::move(Store)) {}
};

/// Wall-clock telemetry of one sweep.
struct SweepTelemetry {
  unsigned Jobs = 1;      ///< Worker count the sweep ran with.
  /// Where Jobs came from: "explicit" (caller passed a count),
  /// "HETSIM_JOBS" (environment), or "hardware" (hardware_concurrency).
  std::string JobsSource = "explicit";
  uint64_t Points = 0;    ///< Sweep points executed.
  double WallSeconds = 0; ///< End-to-end wall time of the sweep.
  double SimNsTotal = 0;  ///< Sum of simulated total-ns over all points.
  /// CPU seconds spent producing trace records during the sweep, summed
  /// across worker threads (can exceed WallSeconds when parallel).
  double TraceGenSeconds = 0;
  uint64_t CacheHits = 0;   ///< Trace-cache hits during the sweep.
  uint64_t CacheMisses = 0; ///< Trace-cache misses during the sweep.

  double pointsPerSecond() const {
    return WallSeconds <= 0 ? 0.0 : double(Points) / WallSeconds;
  }
  /// Simulated nanoseconds retired per wall-clock second.
  double simNsPerWallSecond() const {
    return WallSeconds <= 0 ? 0.0 : SimNsTotal / WallSeconds;
  }
  double cacheHitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total == 0 ? 0.0 : double(CacheHits) / double(Total);
  }
  /// Wall time not attributable to trace generation (clamped at zero —
  /// with parallel workers gen CPU-seconds can exceed wall time).
  double simulateSeconds() const {
    return TraceGenSeconds >= WallSeconds ? 0.0
                                          : WallSeconds - TraceGenSeconds;
  }

  /// One human-readable summary line (no trailing newline).
  std::string summary() const;

  /// Accumulates a later sweep into this one (multi-sweep benches).
  void merge(const SweepTelemetry &Other);
};

/// Runs sweeps. Construct with an explicit job count, or 0 to take
/// HETSIM_JOBS / hardware_concurrency(). jobs=1 executes inline on the
/// calling thread in submission order (the serial harness).
class SweepRunner {
public:
  explicit SweepRunner(unsigned Jobs = 0);

  /// Runs every point and returns results in submission order.
  std::vector<RunResult> run(const std::vector<SweepPoint> &Points);

  /// Telemetry of the most recent run().
  const SweepTelemetry &telemetry() const { return Telemetry; }

  /// Per-point metrics snapshots of the most recent run(), in submission
  /// order (same index space as the returned results). When
  /// $HETSIM_METRICS_JSON names a file, run() also dumps these as one
  /// "hetsim-sweep-metrics-v1" document there.
  const std::vector<MetricsSnapshot> &metrics() const { return Metrics; }

  unsigned jobs() const { return Jobs; }

private:
  unsigned Jobs;
  std::string JobsSource;
  SweepTelemetry Telemetry;
  std::vector<MetricsSnapshot> Metrics;
};

/// Renders sweep metrics as a "hetsim-sweep-metrics-v1" document. The
/// per-point labels ("system", "kernel") come from \p Points; \p Metrics
/// must be index-aligned with it.
std::string renderSweepMetricsJson(const std::vector<SweepPoint> &Points,
                                   const std::vector<MetricsSnapshot> &Metrics);

/// Appends one JSON record for \p Bench to the timing log. The path is
/// $HETSIM_TIMING_JSON when set, else out/bench_timing.json (directories
/// are created as needed). Returns true if a record was written.
bool appendBenchTiming(const std::string &Bench, const SweepTelemetry &T);

} // namespace hetsim

#endif // HETSIM_CORE_SWEEPRUNNER_H
