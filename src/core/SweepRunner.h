//===- core/SweepRunner.h - Parallel design-space sweeps --------*- C++ -*-===//
///
/// \file
/// The sweep engine every experiment harness and bench routes through.
/// A sweep is a vector of independent (system config, kernel, overrides)
/// jobs; the runner fans them out over a ThreadPool and returns results
/// in submission order, so a table rendered from a parallel sweep is
/// byte-identical to the serial harness. Each sweep also collects
/// wall-clock telemetry (points/s, simulated-ns throughput, trace-cache
/// hit rate) that benches print and append to out/bench_timing.json so
/// the repo keeps a perf trajectory across PRs.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_SWEEPRUNNER_H
#define HETSIM_CORE_SWEEPRUNNER_H

#include "core/HeteroSimulator.h"

#include <string>
#include <vector>

namespace hetsim {

/// One independent sweep job. A non-empty Overrides store is applied on
/// top of Config right before the run (so a shared base config can be
/// swept by key). Note SystemConfig::applyOverrides rebuilds comm.*
/// params wholesale from the store — when sweeping comm keys, put every
/// comm override for the point in this store (or bake them all into
/// Config via forCaseStudy and leave this empty).
struct SweepPoint {
  SystemConfig Config;
  KernelId Kernel = KernelId::Reduction;
  ConfigStore Overrides;

  SweepPoint() = default;
  SweepPoint(SystemConfig Cfg, KernelId K, ConfigStore Store = {})
      : Config(std::move(Cfg)), Kernel(K), Overrides(std::move(Store)) {}
};

/// Wall-clock telemetry of one sweep. Phase attribution is per-worker:
/// each worker diffs its *thread-local* gen / cache-wait counters around
/// every point, so the sums below are true per-thread seconds — on an
/// oversubscribed host they still include timesharing stretch, but they
/// are never double-counted across workers, and the phase-seconds
/// accessors normalize them against total busy time instead of naively
/// subtracting from wall time (which used to clamp simulate to 0 the
/// moment gen sums exceeded the wall clock).
struct SweepTelemetry {
  unsigned Jobs = 1;      ///< Worker count the sweep ran with.
  /// Where Jobs came from: "explicit" (caller passed a count),
  /// "HETSIM_JOBS" (environment), or "hardware" (hardware_concurrency).
  std::string JobsSource = "explicit";
  uint64_t Points = 0;    ///< Sweep points executed.
  double WallSeconds = 0; ///< End-to-end wall time of the sweep.
  double SimNsTotal = 0;  ///< Sum of simulated total-ns over all points.
  /// Seconds workers spent inside sweep points, summed per worker (up to
  /// Jobs x WallSeconds when parallel).
  double BusySeconds = 0;
  /// Seconds spent producing trace records, summed per worker.
  double TraceGenSeconds = 0;
  /// Seconds workers spent blocked inside the trace cache (waiting on
  /// another worker's single-flight generation or a shard lock), summed
  /// per worker.
  double LockWaitSeconds = 0;
  uint64_t CacheHits = 0;   ///< Trace-cache hits during the sweep.
  uint64_t CacheMisses = 0; ///< Trace-cache misses during the sweep.
  uint64_t StoreHits = 0;   ///< Points served from the result store.
  uint64_t StoreMisses = 0; ///< Points simulated (store enabled but cold).

  double pointsPerSecond() const {
    return WallSeconds <= 0 ? 0.0 : double(Points) / WallSeconds;
  }
  /// Simulated nanoseconds retired per wall-clock second.
  double simNsPerWallSecond() const {
    return WallSeconds <= 0 ? 0.0 : SimNsTotal / WallSeconds;
  }
  double cacheHitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total == 0 ? 0.0 : double(CacheHits) / double(Total);
  }

  /// Wall seconds attributed to a phase occupying \p PhaseBusySeconds of
  /// the workers' busy time: WallSeconds scaled by the phase's share.
  double normalizedPhaseSeconds(double PhaseBusySeconds) const {
    if (BusySeconds <= 0 || PhaseBusySeconds <= 0)
      return 0.0;
    double Share = PhaseBusySeconds / BusySeconds;
    return WallSeconds * (Share > 1.0 ? 1.0 : Share);
  }

  /// Wall seconds attributed to trace generation (per-worker normalized).
  double traceGenWallSeconds() const {
    return normalizedPhaseSeconds(TraceGenSeconds);
  }
  /// Wall seconds attributed to cache blocking (per-worker normalized).
  double lockWaitWallSeconds() const {
    return normalizedPhaseSeconds(LockWaitSeconds);
  }
  /// Wall seconds attributed to simulation proper: the busy share that
  /// is neither trace generation nor cache blocking. Serial sweeps reduce
  /// to WallSeconds - gen - wait; parallel sweeps stay meaningful
  /// instead of clamping to zero.
  double simulateSeconds() const {
    return normalizedPhaseSeconds(BusySeconds - TraceGenSeconds -
                                  LockWaitSeconds);
  }

  /// One human-readable summary line (no trailing newline).
  std::string summary() const;

  /// Accumulates a later sweep into this one (multi-sweep benches).
  void merge(const SweepTelemetry &Other);
};

/// Runs sweeps. Construct with an explicit job count, or 0 to take
/// HETSIM_JOBS / hardware_concurrency(). jobs=1 executes inline on the
/// calling thread in submission order (the serial harness).
class SweepRunner {
public:
  explicit SweepRunner(unsigned Jobs = 0);

  /// Runs every point and returns results in submission order.
  std::vector<RunResult> run(const std::vector<SweepPoint> &Points);

  /// Routes results through a content-addressed on-disk store rooted at
  /// \p Dir (see core/ResultStore.h): completed points are persisted,
  /// already-stored points are served without simulating. Overrides the
  /// HETSIM_RESULT_STORE environment default; an empty \p Dir returns to
  /// that default.
  void setResultStoreDir(std::string Dir) { StoreDir = std::move(Dir); }

  /// Telemetry of the most recent run().
  const SweepTelemetry &telemetry() const { return Telemetry; }

  /// Per-point metrics snapshots of the most recent run(), in submission
  /// order (same index space as the returned results). When
  /// $HETSIM_METRICS_JSON names a file, run() also dumps these as one
  /// "hetsim-sweep-metrics-v1" document there.
  const std::vector<MetricsSnapshot> &metrics() const { return Metrics; }

  unsigned jobs() const { return Jobs; }

private:
  unsigned Jobs;
  std::string JobsSource;
  std::string StoreDir;
  SweepTelemetry Telemetry;
  std::vector<MetricsSnapshot> Metrics;
};

/// Renders sweep metrics as a "hetsim-sweep-metrics-v1" document. The
/// per-point labels ("system", "kernel") come from \p Points; \p Metrics
/// must be index-aligned with it.
std::string renderSweepMetricsJson(const std::vector<SweepPoint> &Points,
                                   const std::vector<MetricsSnapshot> &Metrics);

/// Appends one JSON record for \p Bench to the timing log. The path is
/// $HETSIM_TIMING_JSON when set, else out/bench_timing.json (directories
/// are created as needed). Returns true if a record was written.
bool appendBenchTiming(const std::string &Bench, const SweepTelemetry &T);

} // namespace hetsim

#endif // HETSIM_CORE_SWEEPRUNNER_H
