//===- core/DesignSpace.h - The memory-model design space -------*- C++ -*-===//
///
/// \file
/// Enumerations spanning the design space the paper explores: memory
/// address spaces (Section II-A), hardware connections, coherence and
/// consistency support, and locality-management schemes (Section II-B).
/// Table I classifies existing systems along exactly these axes.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_DESIGNSPACE_H
#define HETSIM_CORE_DESIGNSPACE_H

#include "memory/AddressSpaceModel.h"

namespace hetsim {

/// Physical connection between the PUs (Table I "Connection").
enum class ConnectionKind : uint8_t {
  PciExpress,
  MemoryController,
  Interconnection,
  CacheFsb,
  Bus,
  None,
};

const char *connectionName(ConnectionKind Kind);

/// Coherence support (Table I "coherence").
enum class CoherenceKind : uint8_t {
  None,
  HardwareDirectory, ///< Full hardware directory (e.g. COMIC's directory).
  HardwareOrSoftware,///< Hybrid HW/SW (Rigel/Cohesion style).
  RuntimeProtocol,   ///< Software runtime protocol (GMAC).
  OneSideOnly,       ///< Coherent only within one PU's domain (LRB/CPU).
  Possible,          ///< Architecture permits coherence (EXOCHI).
};

const char *coherenceName(CoherenceKind Kind);

/// Consistency model (Table I "consistency").
enum class ConsistencyKind : uint8_t {
  Weak,
  CentralizedRelease,
  Strong,
  Unspecified,
};

const char *consistencyName(ConsistencyKind Kind);

/// Locality management of one storage level (Section II-B): implicit
/// (hardware/runtime) or explicit (programmer/compiler).
enum class LocalityMgmt : uint8_t {
  Implicit,
  Explicit,
};

const char *localityMgmtName(LocalityMgmt Mgmt);

/// How the shared level manages locality (the second-level cache in the
/// paper's discussion). Hybrid is Section II-B5: the shared cache serves
/// implicit and explicit blocks simultaneously.
enum class SharedLocality : uint8_t {
  NoSharedLevel, ///< Disjoint spaces: only private caches exist.
  Implicit,
  Explicit,
  Hybrid,
};

const char *sharedLocalityName(SharedLocality Kind);

/// A full locality-management scheme: per-PU private policy plus the
/// shared level (Sections II-B1 .. II-B5).
struct LocalityScheme {
  LocalityMgmt CpuPrivate = LocalityMgmt::Implicit;
  LocalityMgmt GpuPrivate = LocalityMgmt::Implicit;
  SharedLocality Shared = SharedLocality::Implicit;

  /// True if the two PUs use different private schemes (the
  /// "implicit-private-explicit-private-*" options of II-B3/II-B4).
  bool mixedPrivate() const { return CpuPrivate != GpuPrivate; }

  /// Renders e.g. "impl-pri/expl-pri/impl-shared".
  std::string render() const;
};

/// Returns the locality-scheme combinations Section II-B enumerates, in
/// presentation order (II-B1 through II-B5 plus the uniform baselines).
const std::vector<LocalityScheme> &canonicalLocalitySchemes();

/// Counts the locality-management options an address space admits; the
/// paper's conclusion 3 is that the partially shared space admits the
/// most.
unsigned localityOptionCount(AddressSpaceKind Kind);

} // namespace hetsim

#endif // HETSIM_CORE_DESIGNSPACE_H
