//===- core/LocalityValidation.h - Push-before-use checking -----*- C++ -*-===//
///
/// \file
/// Section II-B6 points to Sequoia as the example of a language that
/// *strictly enforces* locality. This validator brings that discipline to
/// explicit shared-locality programs: under an explicit scheme, every
/// shared object a parallel round touches must have been staged into the
/// shared cache by a preceding `push` — using it unstaged is a locality
/// bug (the paper's II-B4 discussion: "cache hits for the shared memory
/// space cannot be guaranteed" without it).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_LOCALITYVALIDATION_H
#define HETSIM_CORE_LOCALITYVALIDATION_H

#include "core/Lowering.h"

namespace hetsim {

/// One unstaged use.
struct LocalityViolation {
  unsigned Round = 0;
  std::string Object;
};

/// Checks \p Program's parallel rounds: every shared object must be
/// covered by a PushLocality step earlier in the program (pushes stay
/// valid until the object's ownership returns to the CPU, which
/// invalidates the staged copy's usefulness for the next round).
std::vector<LocalityViolation>
findUnstagedSharedUses(const LoweredProgram &Program);

/// True if \p Program satisfies the strict (Sequoia-style) discipline.
bool validateExplicitLocality(const LoweredProgram &Program);

} // namespace hetsim

#endif // HETSIM_CORE_LOCALITYVALIDATION_H
