//===- core/HeteroSimulator.h - The co-simulation driver --------*- C++ -*-===//
///
/// \file
/// Drives one lowered program on one system configuration: the CPU core
/// executes serial segments, both cores execute parallel rounds, and the
/// configured communication fabric executes transfers. Execution time is
/// split into the paper's three categories (Section V-A): sequential,
/// parallel, and communication — where communication is everything a
/// mechanism adds to the makespan (synchronous copy time, async-copy
/// stalls, ownership actions, and first-touch page-fault handling).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_HETEROSIMULATOR_H
#define HETSIM_CORE_HETEROSIMULATOR_H

#include "comm/CommFabric.h"
#include "core/Lowering.h"
#include "obs/Metrics.h"
#include "obs/Phase.h"
#include "obs/TraceEvents.h"

#include <memory>

namespace hetsim {

/// The three-way time split of Figure 5, in nanoseconds.
struct TimeBreakdown {
  double SequentialNs = 0;
  double ParallelNs = 0;
  double CommunicationNs = 0;

  double totalNs() const {
    return SequentialNs + ParallelNs + CommunicationNs;
  }
  double commFraction() const {
    double Total = totalNs();
    return Total == 0 ? 0.0 : CommunicationNs / Total;
  }
};

/// Everything one run produces.
struct RunResult {
  TimeBreakdown Time;
  /// Finer-grained attribution of the same wall-clock: phase sums
  /// reconcile exactly with Time (compute == sequential+parallel,
  /// communication == the rest).
  PhaseBreakdown Phases;
  SegmentResult CpuTotal;     ///< Aggregated over CPU segments.
  SegmentResult GpuTotal;     ///< Aggregated over GPU segments.
  uint64_t TransferredBytes = 0;
  uint64_t TransferCount = 0;
  uint64_t PageFaults = 0;    ///< Batched first-touch faults charged.
  uint64_t OwnershipActions = 0;
  double PushNs = 0;          ///< Explicit-locality push time (in comm).
  unsigned CommSourceLines = 0; ///< Table V cell for this (kernel, model).
};

/// One simulated system instance. Construct once per configuration; each
/// run() builds a fresh memory system so runs are independent.
class HeteroSimulator {
public:
  explicit HeteroSimulator(const SystemConfig &Config);
  ~HeteroSimulator();

  /// Lowers and runs \p Kernel.
  RunResult run(KernelId Kernel);

  /// Runs an already-lowered program (for tests and custom programs).
  RunResult runLowered(const LoweredProgram &Program);

  const SystemConfig &config() const { return Config; }

  /// The memory system of the most recent run (for post-run inspection).
  MemorySystem &memory();

  /// The event timeline of the most recent run. Populated on every run;
  /// written to `$HETSIM_TRACE_EVENTS/<system>_<kernel>.trace.json` when
  /// that variable names a directory.
  const TraceEventLog &trace() const { return Trace; }

  /// Flattens \p Result plus the last run's memory-system state into a
  /// metrics snapshot ("run.*" values over the captureMetrics() base),
  /// including the conservation verdict ("run.conservation_ok").
  MetricsSnapshot collectMetrics(const RunResult &Result);

private:
  void buildMachine();
  std::unique_ptr<CommFabric> buildFabric();

  SystemConfig Config;
  std::unique_ptr<MemorySystem> Mem;
  std::unique_ptr<CpuCore> Cpu;
  std::unique_ptr<GpuCore> Gpu;
  std::unique_ptr<CommFabric> Fabric;
  OwnershipRegistry Ownership;
  TraceEventLog Trace;
};

} // namespace hetsim

#endif // HETSIM_CORE_HETEROSIMULATOR_H
