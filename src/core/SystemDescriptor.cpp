//===- core/SystemDescriptor.cpp ------------------------------------------===//

#include "core/SystemDescriptor.h"

using namespace hetsim;

const std::vector<SystemDescriptor> &hetsim::tableOneSurvey() {
  using AS = AddressSpaceKind;
  using CN = ConnectionKind;
  using CH = CoherenceKind;
  using CS = ConsistencyKind;
  static const std::vector<SystemDescriptor> Rows = {
      {"CPU+CUDA*", AS::Disjoint, CN::PciExpress, CH::None, "NA", CS::Weak,
       "-", "impl-pri-expl-pri"},
      {"EXOCHI", AS::Unified, CN::MemoryController, CH::Possible,
       "CHI runtime API", CS::Weak, "unknown", "impl-pri"},
      {"CPU+LRB", AS::PartiallyShared, CN::PciExpress, CH::OneSideOnly,
       "type qualifier, ownership", CS::Weak, "APIs", "impl-pri"},
      {"COMIC", AS::Unified, CN::Interconnection, CH::HardwareDirectory,
       "COMIC API functions", CS::CentralizedRelease, "barrier function",
       "expl-pri-impl-pri-impl-shared"},
      {"Rigel", AS::Unified, CN::Interconnection, CH::HardwareOrSoftware,
       "global memory operation", CS::Weak, "implicit barrier/Rigel LPI",
       "expl"},
      {"GMAC", AS::Adsm, CN::PciExpress, CH::RuntimeProtocol,
       "global memory operation", CS::Weak, "sync API",
       "expl-private-impl-shared"},
      {"Sandy Bridge", AS::Disjoint, CN::MemoryController, CH::None, "-",
       CS::Weak, "-", "impl-priv-exp-priv"},
      {"Fusion", AS::Disjoint, CN::MemoryController, CH::None, "-",
       CS::Unspecified, "-", "-"},
      {"IBM Cell", AS::Disjoint, CN::Interconnection, CH::None, "-",
       CS::Weak, "-", "expl-pri-impl-priv-impl-shared"},
      {"Xbox 360", AS::Disjoint, CN::CacheFsb, CH::None,
       "Lock-set cache, copy", CS::Unspecified, "-", "impl-priv-exp-shared"},
      {"CUBA", AS::Disjoint, CN::Bus, CH::None,
       "direct access to local storage", CS::Weak, "-", "exp-priv"},
      {"CUDA 4.0", AS::Unified, CN::None, CH::None, "explicit copy",
       CS::Weak, "-", "exp-priv"},
      {"OpenCL", AS::Unified, CN::None, CH::None, "explicit copy", CS::Weak,
       "-", "exp-priv"},
  };
  return Rows;
}

const SystemDescriptor *hetsim::findSurveyEntry(const std::string &Scheme) {
  for (const SystemDescriptor &Row : tableOneSurvey())
    if (Row.Scheme == Scheme)
      return &Row;
  return nullptr;
}

unsigned hetsim::surveyCount(AddressSpaceKind Kind) {
  unsigned Count = 0;
  for (const SystemDescriptor &Row : tableOneSurvey())
    if (Row.AddrSpace == Kind)
      ++Count;
  return Count;
}

bool hetsim::surveyHasUnifiedFullyCoherentStrong() {
  for (const SystemDescriptor &Row : tableOneSurvey()) {
    if (Row.AddrSpace == AddressSpaceKind::Unified &&
        Row.Coherence == CoherenceKind::HardwareDirectory &&
        Row.Consistency == ConsistencyKind::Strong)
      return true;
  }
  return false;
}
