//===- core/SourceLineModel.cpp -------------------------------------------===//

#include "core/SourceLineModel.h"

#include "common/Error.h"

using namespace hetsim;

static std::string joinNames(const std::vector<DataObjectSpec> &Objects) {
  std::string Out;
  for (const DataObjectSpec &Spec : Objects) {
    if (!Out.empty())
      Out += ", ";
    Out += Spec.Name;
  }
  return Out;
}

HostSource hetsim::emitCommunicationSource(KernelId Kernel,
                                           AddressSpaceKind Kind) {
  HostSource Source;
  const std::vector<DataObjectSpec> &Objects = kernelDataObjects(Kernel);
  const KernelProgram Program = KernelProgram::build(Kernel);

  switch (Kind) {
  case AddressSpaceKind::Unified:
    // No special APIs are required (Section V-C).
    break;

  case AddressSpaceKind::PartiallyShared: {
    // Figure 2(b): one release before and one acquire after each GPU
    // round. Emitted per Parallel phase — convolution's two rounds are
    // distinct program sections and k-means' rounds repeat the pair.
    for (const KernelPhase &Phase : Program.phases()) {
      if (Phase.Kind != PhaseKind::Parallel)
        continue;
      Source.Statements.push_back("releaseOwnership(" + joinNames(Objects) +
                                  ");");
      std::string Outs;
      for (const DataObjectSpec &Spec : Objects)
        if (Spec.Dir == TransferDir::DeviceToHost)
          Outs += Outs.empty() ? Spec.Name : std::string(", ") + Spec.Name;
      Source.Statements.push_back("acquireOwnership(" + Outs + ");");
    }
    break;
  }

  case AddressSpaceKind::Disjoint:
    // Figure 3(a): per object, a duplicated-pointer GPU allocation, a
    // memcpy in its primary direction, and a free.
    for (const DataObjectSpec &Spec : Objects)
      Source.Statements.push_back(std::string("int *gpu_") + Spec.Name +
                                  " = GPUmemallocate(" +
                                  std::to_string(Spec.Bytes) + ");");
    for (const DataObjectSpec &Spec : Objects) {
      if (Spec.Dir == TransferDir::HostToDevice)
        Source.Statements.push_back(std::string("Memcpy(gpu_") + Spec.Name +
                                    ", " + Spec.Name +
                                    ", MemcpyHostToDevice);");
      else
        Source.Statements.push_back(std::string("Memcpy(") + Spec.Name +
                                    ", gpu_" + Spec.Name +
                                    ", MemcpyDeviceToHost);");
    }
    for (const DataObjectSpec &Spec : Objects)
      Source.Statements.push_back(std::string("GPUfree(gpu_") + Spec.Name +
                                  ");");
    break;

  case AddressSpaceKind::Adsm:
    // Figure 3(b): adsmAlloc/accfree per object; the GMAC runtime syncs
    // data implicitly at kernel boundaries, so no copy statements.
    for (const DataObjectSpec &Spec : Objects)
      Source.Statements.push_back(std::string(Spec.Name) + " = adsmAlloc(" +
                                  std::to_string(Spec.Bytes) + ");");
    for (const DataObjectSpec &Spec : Objects)
      Source.Statements.push_back(std::string("accfree(") + Spec.Name +
                                  ");");
    break;
  }

  return Source;
}

unsigned hetsim::communicationSourceLines(KernelId Kernel,
                                          AddressSpaceKind Kind) {
  return emitCommunicationSource(Kernel, Kind).lineCount();
}
