//===- core/LocalityValidation.cpp ----------------------------------------===//

#include "core/LocalityValidation.h"

#include <set>

using namespace hetsim;

std::vector<LocalityViolation>
hetsim::findUnstagedSharedUses(const LoweredProgram &Program) {
  std::vector<LocalityViolation> Violations;
  std::set<std::string> Staged;

  for (const ExecStep &Step : Program.Steps) {
    switch (Step.Kind) {
    case ExecKind::PushLocality:
      for (const std::string &Name : Step.Objects)
        Staged.insert(Name);
      break;

    case ExecKind::ParallelCompute:
      for (const std::string &Name : Program.Place.SharedObjects)
        if (Staged.count(Name) == 0)
          Violations.push_back({Step.Round, Name});
      break;

    case ExecKind::OwnershipToCpu:
      // The CPU re-acquiring an object invalidates its staged copy for
      // subsequent rounds: it must be pushed again.
      for (const std::string &Name : Step.Objects)
        Staged.erase(Name);
      break;

    default:
      break;
    }
  }
  return Violations;
}

bool hetsim::validateExplicitLocality(const LoweredProgram &Program) {
  return findUnstagedSharedUses(Program).empty();
}
