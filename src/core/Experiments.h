//===- core/Experiments.h - Paper experiment harness ------------*- C++ -*-===//
///
/// \file
/// Runs the paper's experiments and renders their tables/figures as text.
/// Each bench binary regenerates one table or figure by calling into this
/// harness; tests assert on the same data.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_EXPERIMENTS_H
#define HETSIM_CORE_EXPERIMENTS_H

#include "common/TextTable.h"
#include "core/SweepRunner.h"

namespace hetsim {

/// One (system, kernel) measurement.
struct ExperimentRow {
  std::string System;
  KernelId Kernel = KernelId::Reduction;
  RunResult Result;
};

/// Runs all six kernels on the five case-study systems (Figures 5 and 6)
/// through the parallel sweep engine. \p Jobs selects the worker count
/// (0 = HETSIM_JOBS / hardware_concurrency; 1 = serial); rows come back
/// in the fixed (system, kernel) presentation order regardless of job
/// count. When \p Telemetry is non-null the sweep's wall-clock stats are
/// stored there.
std::vector<ExperimentRow> runCaseStudies(const ConfigStore &Overrides = {},
                                          unsigned Jobs = 0,
                                          SweepTelemetry *Telemetry = nullptr);

/// Runs all six kernels on the four address-space options with shared
/// cache and ideal communication (Figure 7). Same sweep-engine contract
/// as runCaseStudies.
std::vector<ExperimentRow>
runAddressSpaceStudy(const ConfigStore &Overrides = {}, unsigned Jobs = 0,
                     SweepTelemetry *Telemetry = nullptr);

/// Figure 5: execution time (normalized to IDEAL-HETERO per kernel, when
/// present) split into sequential / parallel / communication.
TextTable renderFigure5(const std::vector<ExperimentRow> &Rows);

/// Figure 6: communication overhead only (microseconds and fraction).
TextTable renderFigure6(const std::vector<ExperimentRow> &Rows);

/// Figure 7: total time per address-space option, normalized to UNI.
TextTable renderFigure7(const std::vector<ExperimentRow> &Rows);

/// Table I: the qualitative system survey.
TextTable renderTable1();

/// Table II: the baseline system configuration in use.
TextTable renderTable2(const SystemConfig &Config);

/// Table III: benchmark characteristics, as *measured* from the lowered
/// programs (instruction counts, communications, initial transfer size).
TextTable renderTable3();

/// Table IV: communication-overhead parameters in use.
TextTable renderTable4(const CommParams &Params);

/// Table V: communication source lines per kernel and address space.
TextTable renderTable5();

/// One point of a work-partitioning sweep (the Qilin-style extension;
/// the paper divides work evenly and cites [25] for optimal splits).
struct PartitionPoint {
  double CpuFraction = 0.5;
  double TotalNs = 0;
  double ParallelNs = 0;
};

/// Runs \p Kernel on \p Config at Steps+1 evenly spaced CPU fractions
/// in [0, 1] through the sweep engine and returns the measured points in
/// fraction order.
std::vector<PartitionPoint> sweepPartition(const SystemConfig &Config,
                                           KernelId Kernel,
                                           unsigned Steps = 10,
                                           unsigned Jobs = 0,
                                           SweepTelemetry *Telemetry = nullptr);

/// Returns the sweep point with the lowest total time.
PartitionPoint findBestPartition(const SystemConfig &Config, KernelId Kernel,
                                 unsigned Steps = 10);

/// Writes \p Table as CSV to $HETSIM_CSV_DIR/<Name>.csv when that
/// environment variable is set (machine-readable experiment export).
/// Returns true if a file was written.
bool maybeExportCsv(const std::string &Name, const TextTable &Table);

} // namespace hetsim

#endif // HETSIM_CORE_EXPERIMENTS_H
