//===- core/KernelModel.h - Model-independent kernel programs ---*- C++ -*-===//
///
/// \file
/// The abstract (memory-model-independent) structure of each benchmark:
/// a sequence of phases — parallel compute rounds split across the PUs,
/// sequential merge/finalize parts, and the points where data logically
/// crosses the CPU/GPU boundary. The per-memory-model lowering
/// (core/Lowering.h) turns the same program into different instruction
/// streams and host source, which is what keeps the timing results
/// (Figures 5-7) and programmability results (Table V) consistent.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_KERNELMODEL_H
#define HETSIM_CORE_KERNELMODEL_H

#include "trace/Kernel.h"

#include <string>
#include <vector>

namespace hetsim {

/// Kinds of abstract program phases.
enum class PhaseKind : uint8_t {
  Serial,      ///< CPU-only sequential work.
  Parallel,    ///< CPU and GPU compute concurrently (one GPU round).
  TransferIn,  ///< Data must be visible to the GPU before the next round.
  TransferOut, ///< GPU results must be visible to the CPU.
};

/// One phase.
struct KernelPhase {
  PhaseKind Kind;
  uint64_t CpuInsts = 0; ///< Parallel: CPU-half instructions.
  uint64_t GpuInsts = 0; ///< Parallel: GPU-half instructions.
  uint64_t SerialInsts = 0;
  std::vector<std::string> Objects; ///< Transfer phases: object names.
  unsigned Round = 0;               ///< GPU round this phase belongs to.
};

/// The abstract program of one kernel.
class KernelProgram {
public:
  /// Builds the program for \p Id from its Table III characteristics.
  /// Postconditions (checked by tests): instruction totals match Table
  /// III, the number of transfer phases equals Table III's "# of
  /// communications", and the number of Parallel phases equals GpuRounds.
  static KernelProgram build(KernelId Id);

  KernelId kernel() const { return Id; }
  const std::vector<KernelPhase> &phases() const { return Phases; }
  unsigned rounds() const { return Rounds; }

  /// Number of TransferIn + TransferOut phases.
  unsigned communicationCount() const;

  /// Sums of instruction budgets across phases.
  uint64_t totalCpuInsts() const;
  uint64_t totalGpuInsts() const;
  uint64_t totalSerialInsts() const;

  /// Total bytes named by the first TransferIn (the "initial transfer").
  uint64_t initialTransferBytes() const;

private:
  KernelId Id = KernelId::Reduction;
  std::vector<KernelPhase> Phases;
  unsigned Rounds = 1;
};

} // namespace hetsim

#endif // HETSIM_CORE_KERNELMODEL_H
