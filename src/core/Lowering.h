//===- core/Lowering.h - Programming-model lowering -------------*- C++ -*-===//
///
/// \file
/// Lowers an abstract KernelProgram onto one SystemConfig, producing the
/// executable step sequence the driver simulates. This is where the
/// paper's programming-model differences become concrete (Section IV-C:
/// "to model different programming model effects, we use a series of
/// special instructions"): disjoint spaces get explicit transfers, the
/// partially shared space gets ownership actions, aperture transfers, and
/// batched first-touch page faults, ADSM gets (optionally asynchronous)
/// runtime copies with waits, and unified spaces get nothing.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_LOWERING_H
#define HETSIM_CORE_LOWERING_H

#include "core/KernelModel.h"
#include "core/SourceLineModel.h"
#include "core/SystemConfig.h"
#include "trace/TraceBuffer.h"

namespace hetsim {

/// Kinds of executable steps.
enum class ExecKind : uint8_t {
  SerialCompute,
  ParallelCompute,
  Transfer,         ///< Bulk data movement on the configured fabric.
  DmaWait,          ///< Block until outstanding async copies finish.
  OwnershipToGpu,   ///< Host releases shared objects; GPU side acquires.
  OwnershipToCpu,   ///< GPU side releases; host acquires the outputs.
  PushLocality,     ///< Explicit `push` of objects into the shared cache.
};

/// Returns a short name for an ExecKind.
const char *execKindName(ExecKind Kind);

/// One executable step. Traces are held through SharedTrace handles so
/// sweep points with identical generation inputs share one immutable
/// buffer (see trace/TraceCache.h); consumers read them exactly like
/// `const TraceBuffer` values.
struct ExecStep {
  ExecKind Kind = ExecKind::SerialCompute;
  SharedTrace CpuTrace;
  SharedTrace GpuTrace;
  uint64_t Bytes = 0;
  TransferDir Dir = TransferDir::HostToDevice;
  bool Async = false;
  std::vector<std::string> Objects;
  /// Shared pages the GPU faults in during this parallel phase (batched
  /// lib-pf charging; LRB only).
  uint64_t PageFaultPages = 0;
  unsigned Round = 0;
};

/// The lowered program.
struct LoweredProgram {
  KernelId Kernel = KernelId::Reduction;
  Placement Place;
  std::vector<ExecStep> Steps;
  /// Host communication statements (the Table V programmability view of
  /// the same lowering decisions).
  HostSource Source;

  /// True when produced by lowerKernel() (enables the driver's
  /// consistency validation, which replays the kernel's object structure).
  bool BuiltFromKernel = false;

  /// Counts steps of a given kind.
  unsigned countSteps(ExecKind Kind) const;
  /// Sum of Transfer step bytes.
  uint64_t totalTransferBytes() const;
  /// Sum of batched page-fault pages.
  uint64_t totalPageFaultPages() const;
};

/// Lowers \p Kernel for \p Config.
LoweredProgram lowerKernel(KernelId Kernel, const SystemConfig &Config);

} // namespace hetsim

#endif // HETSIM_CORE_LOWERING_H
