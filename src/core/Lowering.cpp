//===- core/Lowering.cpp --------------------------------------------------===//

#include "core/Lowering.h"

#include "common/Error.h"
#include "memory/SoftwareCoherence.h"
#include "trace/KernelTraceGenerator.h"
#include "trace/TraceCache.h"

#include <cassert>
#include <unordered_set>

using namespace hetsim;

const char *hetsim::execKindName(ExecKind Kind) {
  switch (Kind) {
  case ExecKind::SerialCompute:
    return "serial";
  case ExecKind::ParallelCompute:
    return "parallel";
  case ExecKind::Transfer:
    return "transfer";
  case ExecKind::DmaWait:
    return "dma-wait";
  case ExecKind::OwnershipToGpu:
    return "ownership-to-gpu";
  case ExecKind::OwnershipToCpu:
    return "ownership-to-cpu";
  case ExecKind::PushLocality:
    return "push";
  }
  hetsim_unreachable("invalid exec kind");
}

unsigned LoweredProgram::countSteps(ExecKind Kind) const {
  unsigned Count = 0;
  for (const ExecStep &Step : Steps)
    if (Step.Kind == Kind)
      ++Count;
  return Count;
}

uint64_t LoweredProgram::totalTransferBytes() const {
  uint64_t Bytes = 0;
  for (const ExecStep &Step : Steps)
    if (Step.Kind == ExecKind::Transfer)
      Bytes += Step.Bytes;
  return Bytes;
}

uint64_t LoweredProgram::totalPageFaultPages() const {
  uint64_t Pages = 0;
  for (const ExecStep &Step : Steps)
    Pages += Step.PageFaultPages;
  return Pages;
}

namespace {

/// Stateful helper that walks the abstract phases and appends steps.
class LoweringContext {
public:
  LoweringContext(KernelId K, const SystemConfig &Cfg)
      : Kernel(K), Config(Cfg) {
    Program = KernelProgram::build(K);
    Out.Kernel = K;
    Out.Place = AddressSpaceModel::forKind(Cfg.AddrSpace).place(K);
    Out.Source = emitCommunicationSource(K, Cfg.AddrSpace);

    // ADSM uses the software (runtime) coherence protocol to decide
    // which kernel-boundary crossings actually move data (Section
    // II-A4): inputs start host-valid, pure outputs accelerator-valid.
    if (Config.AddrSpace == AddressSpaceKind::Adsm) {
      for (const DataObjectSpec &Spec : kernelDataObjects(Kernel))
        Runtime.registerObject(Spec.Name, Spec.Bytes,
                               Spec.Dir == TransferDir::DeviceToHost
                                   ? SwCohState::AccValid
                                   : SwCohState::HostValid);
    }
  }

  LoweredProgram take() {
    for (const KernelPhase &Phase : Program.phases())
      lowerPhase(Phase);
    if (Config.AsyncCopies)
      appendWait(); // Drain anything still in flight at program end.
    Out.BuiltFromKernel = true;
    return std::move(Out);
  }

private:
  uint64_t objectBytes(const std::string &Name) const {
    return Out.Place.CpuLayout.segment(Name).Bytes;
  }

  uint64_t sumBytes(const std::vector<std::string> &Names) const {
    uint64_t Bytes = 0;
    for (const std::string &Name : Names)
      Bytes += objectBytes(Name);
    return Bytes;
  }

  void appendWait() {
    // Collapse adjacent waits: one drain is enough.
    if (!Out.Steps.empty() && Out.Steps.back().Kind == ExecKind::DmaWait)
      return;
    ExecStep Step;
    Step.Kind = ExecKind::DmaWait;
    Out.Steps.push_back(std::move(Step));
  }

  /// Pages of the shared region the GPU touches for the first time in a
  /// parallel phase: the GPU half of every shared object (using exactly
  /// the generator's split rule), deduplicated across rounds.
  uint64_t newGpuFaultPages() {
    if (!Config.FirstTouchFaults)
      return 0;
    uint64_t PageBytes = Config.Hier.GpuPageBytes;
    uint64_t NewPages = 0;
    for (const DataSegment &Segment : Out.Place.GpuLayout.segments()) {
      if (regionOf(Segment.Base) != MemRegion::Shared)
        continue;
      StreamCursor Cursor = KernelTraceGenerator::cursorFor(
          Segment, WorkSplit::SecondHalf);
      Addr First = Cursor.Base / PageBytes;
      Addr Last = (Cursor.Base + Cursor.Bytes - 1) / PageBytes;
      for (Addr Page = First; Page <= Last; ++Page)
        if (TouchedPages.insert(Page).second)
          ++NewPages;
    }
    return NewPages;
  }

  void lowerPhase(const KernelPhase &Phase) {
    switch (Phase.Kind) {
    case PhaseKind::Serial:
      lowerSerial(Phase);
      break;
    case PhaseKind::Parallel:
      lowerParallel(Phase);
      break;
    case PhaseKind::TransferIn:
      lowerTransfer(Phase, TransferDir::HostToDevice);
      break;
    case PhaseKind::TransferOut:
      lowerTransfer(Phase, TransferDir::DeviceToHost);
      break;
    }
  }

  void lowerSerial(const KernelPhase &Phase) {
    // A serial phase that consumes asynchronously returned results does
    // NOT insert a blocking wait: the ADSM runtime pages results in on
    // demand, so the copy overlaps the serial pass and the driver charges
    // only the portion that outlasts it. (The program-end wait in take()
    // still drains everything.)
    ExecStep Step;
    Step.Kind = ExecKind::SerialCompute;
    Step.CpuTrace = TraceCache::global().serialShared(
        Kernel, Phase.SerialInsts, Out.Place.CpuLayout, SeedCounter++);
    Out.Steps.push_back(std::move(Step));
  }

  void lowerParallel(const KernelPhase &Phase) {
    // ADSM: kernel launch is the runtime's sync point — consult the
    // protocol for every shared object the kernel touches and move only
    // what is stale on the accelerator. An object the kernel *consumes*
    // (an input, or anything the abstract program's TransferIn named for
    // this round) may need a copy-in; a pure output is overwritten
    // wholesale and never copied in (write-invalidate).
    if (Config.AddrSpace == AddressSpaceKind::Adsm) {
      ExecStep Sync;
      Sync.Kind = ExecKind::Transfer;
      Sync.Dir = TransferDir::HostToDevice;
      Sync.Async = Config.AsyncCopies;
      Sync.Round = Phase.Round;
      for (const DataObjectSpec &Spec : kernelDataObjects(Kernel)) {
        bool GpuWrites = Spec.Dir == TransferDir::DeviceToHost;
        bool Consumed = Spec.Dir == TransferDir::HostToDevice ||
                        PendingTransferIn.count(Spec.Name) != 0;
        if (!Consumed) {
          Runtime.onAccOverwrite(Spec.Name);
          continue;
        }
        uint64_t Needed = Runtime.onAccAccess(Spec.Name, GpuWrites);
        if (Needed != 0) {
          Sync.Bytes += Needed;
          Sync.Objects.push_back(Spec.Name);
        }
      }
      PendingTransferIn.clear();
      if (Sync.Bytes != 0) {
        Out.Steps.push_back(std::move(Sync));
        PendingAsync = Config.AsyncCopies;
      }
    }

    // Explicit shared-cache locality: push the shared objects in first.
    if (Config.Locality.Shared == SharedLocality::Explicit ||
        Config.Locality.Shared == SharedLocality::Hybrid) {
      ExecStep Push;
      Push.Kind = ExecKind::PushLocality;
      for (const std::string &Name : Out.Place.SharedObjects)
        Push.Objects.push_back(Name);
      Push.Bytes = sumBytes(Push.Objects);
      if (!Push.Objects.empty())
        Out.Steps.push_back(std::move(Push));
    }

    // Ownership: host releases the shared objects to the GPU round.
    if (Config.UseOwnership) {
      ExecStep Release;
      Release.Kind = ExecKind::OwnershipToGpu;
      Release.Objects = Out.Place.SharedObjects;
      Release.Round = Phase.Round;
      Out.Steps.push_back(std::move(Release));
    }

    ExecStep Step;
    Step.Kind = ExecKind::ParallelCompute;
    Step.Round = Phase.Round;
    // Work partitioning: Table III's budgets correspond to the paper's
    // even split; other fractions scale each PU's share proportionally
    // (the Qilin-style knob).
    double F = Config.CpuWorkFraction;
    auto ScaledCpu = uint64_t(double(Phase.CpuInsts) * 2.0 * F + 0.5);
    auto ScaledGpu =
        uint64_t(double(Phase.GpuInsts) * 2.0 * (1.0 - F) + 0.5);
    GenRequest CpuReq;
    CpuReq.Pu = PuKind::Cpu;
    CpuReq.InstCount = ScaledCpu;
    CpuReq.Seed = SeedCounter++;
    CpuReq.Split = WorkSplit::FirstHalf;
    Step.CpuTrace = TraceCache::global().computeShared(Kernel, CpuReq,
                                                       Out.Place.CpuLayout);
    GenRequest GpuReq;
    GpuReq.Pu = PuKind::Gpu;
    GpuReq.InstCount = ScaledGpu;
    GpuReq.Seed = SeedCounter++;
    GpuReq.Split = WorkSplit::SecondHalf;
    Step.GpuTrace = TraceCache::global().computeShared(Kernel, GpuReq,
                                                       Out.Place.GpuLayout);
    Step.PageFaultPages = Config.IdealComm ? 0 : newGpuFaultPages();
    Out.Steps.push_back(std::move(Step));
  }

  void lowerTransfer(const KernelPhase &Phase, TransferDir Dir) {
    switch (Config.AddrSpace) {
    case AddressSpaceKind::Unified:
      // Data is visible everywhere; nothing to do.
      return;

    case AddressSpaceKind::Disjoint: {
      // Every logical boundary crossing is an explicit copy.
      ExecStep Step;
      Step.Kind = ExecKind::Transfer;
      Step.Objects = Phase.Objects;
      Step.Bytes = sumBytes(Phase.Objects);
      Step.Dir = Dir;
      Step.Async = Config.AsyncCopies;
      Step.Round = Phase.Round;
      Out.Steps.push_back(std::move(Step));
      PendingAsync = Step.Async;
      return;
    }

    case AddressSpaceKind::PartiallyShared: {
      // Data already allocated in the shared space needs no transfer; the
      // initial placement of each object still pays an aperture transfer
      // (Section V-A). Results are read in place: TransferOut only moves
      // ownership, which lowerParallel/below handle.
      if (Dir == TransferDir::HostToDevice) {
        std::vector<std::string> Fresh;
        for (const std::string &Name : Phase.Objects)
          if (InitializedShared.insert(Name).second)
            Fresh.push_back(Name);
        if (!Fresh.empty()) {
          ExecStep Step;
          Step.Kind = ExecKind::Transfer;
          Step.Objects = Fresh;
          Step.Bytes = sumBytes(Fresh);
          Step.Dir = Dir;
          Step.Round = Phase.Round;
          Out.Steps.push_back(std::move(Step));
        }
        return;
      }
      // TransferOut: host re-acquires the round's outputs.
      if (Config.UseOwnership) {
        ExecStep Acquire;
        Acquire.Kind = ExecKind::OwnershipToCpu;
        Acquire.Objects = Phase.Objects;
        Acquire.Round = Phase.Round;
        Out.Steps.push_back(std::move(Acquire));
      }
      return;
    }

    case AddressSpaceKind::Adsm: {
      // TransferIn is handled lazily at kernel launch (lowerParallel) —
      // its object list marks what the next round consumes. TransferOut
      // asks the protocol what the host's access makes move.
      if (Dir == TransferDir::HostToDevice) {
        for (const std::string &Name : Phase.Objects)
          PendingTransferIn.insert(Name);
        return;
      }
      ExecStep Step;
      Step.Kind = ExecKind::Transfer;
      Step.Dir = Dir;
      Step.Async = Config.AsyncCopies;
      Step.Round = Phase.Round;
      for (const std::string &Name : Phase.Objects) {
        // The host both reads the results and updates them (merge).
        uint64_t Needed = Runtime.onHostAccess(Name, /*IsWrite=*/true);
        if (Needed != 0) {
          Step.Bytes += Needed;
          Step.Objects.push_back(Name);
        }
      }
      if (Step.Bytes != 0) {
        Out.Steps.push_back(std::move(Step));
        PendingAsync = Config.AsyncCopies;
      }
      return;
    }
    }
    hetsim_unreachable("invalid address space");
  }

  KernelId Kernel;
  const SystemConfig &Config;
  KernelProgram Program;
  LoweredProgram Out;
  uint64_t SeedCounter = 1;
  bool PendingAsync = false;
  SoftwareCoherence Runtime;
  std::unordered_set<std::string> PendingTransferIn;
  std::unordered_set<std::string> InitializedShared;
  std::unordered_set<Addr> TouchedPages;
};

} // namespace

LoweredProgram hetsim::lowerKernel(KernelId Kernel,
                                   const SystemConfig &Config) {
  return LoweringContext(Kernel, Config).take();
}
