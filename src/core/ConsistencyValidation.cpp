//===- core/ConsistencyValidation.cpp -------------------------------------===//

#include "core/ConsistencyValidation.h"

using namespace hetsim;

namespace {

std::string cpuHalf(const std::string &Name) { return Name + ".cpu"; }
std::string gpuHalf(const std::string &Name) { return Name + ".gpu"; }

/// Objects by transfer direction for the program's kernel.
std::vector<std::string> objectNames(const LoweredProgram &Program,
                                     TransferDir Dir) {
  std::vector<std::string> Names;
  for (const DataObjectSpec &Spec : kernelDataObjects(Program.Kernel))
    if (Spec.Dir == Dir)
      Names.push_back(Spec.Name);
  return Names;
}

} // namespace

ConsistencyChecker hetsim::buildSyncHistory(const LoweredProgram &Program,
                                            ConsistencyModel Model) {
  ConsistencyChecker Checker(Model);
  std::vector<std::string> Inputs =
      objectNames(Program, TransferDir::HostToDevice);
  std::vector<std::string> Outputs =
      objectNames(Program, TransferDir::DeviceToHost);

  for (const ExecStep &Step : Program.Steps) {
    switch (Step.Kind) {
    case ExecKind::SerialCompute:
      // The merge/finalize pass touches whole output objects (both
      // halves) on the CPU.
      for (const std::string &Name : Outputs) {
        Checker.read(PuKind::Cpu, cpuHalf(Name));
        Checker.read(PuKind::Cpu, gpuHalf(Name));
        Checker.write(PuKind::Cpu, cpuHalf(Name));
        Checker.write(PuKind::Cpu, gpuHalf(Name));
      }
      break;

    case ExecKind::ParallelCompute:
      // The driver launches the GPU round and joins at its end.
      Checker.kernelLaunch();
      for (const std::string &Name : Inputs) {
        Checker.read(PuKind::Cpu, cpuHalf(Name));
        Checker.read(PuKind::Gpu, gpuHalf(Name));
      }
      for (const std::string &Name : Outputs) {
        Checker.write(PuKind::Cpu, cpuHalf(Name));
        Checker.write(PuKind::Gpu, gpuHalf(Name));
      }
      Checker.kernelReturn();
      break;

    case ExecKind::Transfer:
      // The copy engine acts on the host's behalf and reads the moved
      // ranges (both halves: transfers move whole objects).
      for (const std::string &Name : Step.Objects) {
        Checker.read(PuKind::Cpu, cpuHalf(Name));
        Checker.read(PuKind::Cpu, gpuHalf(Name));
      }
      break;

    case ExecKind::DmaWait:
      // Orders prior CPU-issued copies with later CPU work: already
      // program order on the CPU.
      break;

    case ExecKind::OwnershipToGpu:
      for (const std::string &Name : Step.Objects) {
        Checker.release(PuKind::Cpu, cpuHalf(Name));
        Checker.release(PuKind::Cpu, gpuHalf(Name));
        Checker.acquire(PuKind::Gpu, cpuHalf(Name));
        Checker.acquire(PuKind::Gpu, gpuHalf(Name));
      }
      break;

    case ExecKind::OwnershipToCpu:
      for (const std::string &Name : Step.Objects) {
        Checker.release(PuKind::Gpu, cpuHalf(Name));
        Checker.release(PuKind::Gpu, gpuHalf(Name));
        Checker.acquire(PuKind::Cpu, cpuHalf(Name));
        Checker.acquire(PuKind::Cpu, gpuHalf(Name));
      }
      break;

    case ExecKind::PushLocality:
      for (const std::string &Name : Step.Objects)
        Checker.read(PuKind::Cpu, cpuHalf(Name));
      break;
    }
  }
  return Checker;
}

bool hetsim::validateRaceFree(const LoweredProgram &Program,
                              ConsistencyModel Model) {
  return buildSyncHistory(Program, Model).isRaceFree();
}
