//===- core/ConsistencyValidation.cpp -------------------------------------===//

#include "core/ConsistencyValidation.h"

#include "common/Random.h"

#include <functional>

using namespace hetsim;

namespace {

std::string cpuHalf(const std::string &Name) { return Name + ".cpu"; }
std::string gpuHalf(const std::string &Name) { return Name + ".gpu"; }

/// Maps a kernel-local base object name to the name used in checker
/// events (identity for single programs; co-run qualification otherwise).
using NameMapper = std::function<std::string(const std::string &)>;

/// Base object names of \p Kernel by transfer direction.
std::vector<std::string> objectNames(KernelId Kernel, TransferDir Dir) {
  std::vector<std::string> Names;
  for (const DataObjectSpec &Spec : kernelDataObjects(Kernel))
    if (Spec.Dir == Dir)
      Names.push_back(Spec.Name);
  return Names;
}

/// Emits the events of one driver step into \p Checker. The kernel's
/// object structure supplies what compute steps touch; transfer-like
/// steps carry their own object lists.
void appendStepEvents(ConsistencyChecker &Checker, const ExecStep &Step,
                      const std::vector<std::string> &Inputs,
                      const std::vector<std::string> &Outputs,
                      const NameMapper &Map) {
  switch (Step.Kind) {
  case ExecKind::SerialCompute:
    // The merge/finalize pass touches whole output objects (both
    // halves) on the CPU.
    for (const std::string &Name : Outputs) {
      Checker.read(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.read(PuKind::Cpu, gpuHalf(Map(Name)));
      Checker.write(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.write(PuKind::Cpu, gpuHalf(Map(Name)));
    }
    break;

  case ExecKind::ParallelCompute:
    // The driver launches the GPU round and joins at its end.
    Checker.kernelLaunch();
    for (const std::string &Name : Inputs) {
      Checker.read(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.read(PuKind::Gpu, gpuHalf(Map(Name)));
    }
    for (const std::string &Name : Outputs) {
      Checker.write(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.write(PuKind::Gpu, gpuHalf(Map(Name)));
    }
    Checker.kernelReturn();
    break;

  case ExecKind::Transfer:
    // The copy engine acts on the host's behalf and reads the moved
    // ranges (both halves: transfers move whole objects).
    for (const std::string &Name : Step.Objects) {
      Checker.read(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.read(PuKind::Cpu, gpuHalf(Map(Name)));
    }
    break;

  case ExecKind::DmaWait:
    // Orders prior CPU-issued copies with later CPU work: already
    // program order on the CPU.
    break;

  case ExecKind::OwnershipToGpu:
    for (const std::string &Name : Step.Objects) {
      Checker.release(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.release(PuKind::Cpu, gpuHalf(Map(Name)));
      Checker.acquire(PuKind::Gpu, cpuHalf(Map(Name)));
      Checker.acquire(PuKind::Gpu, gpuHalf(Map(Name)));
    }
    break;

  case ExecKind::OwnershipToCpu:
    for (const std::string &Name : Step.Objects) {
      Checker.release(PuKind::Gpu, cpuHalf(Map(Name)));
      Checker.release(PuKind::Gpu, gpuHalf(Map(Name)));
      Checker.acquire(PuKind::Cpu, cpuHalf(Map(Name)));
      Checker.acquire(PuKind::Cpu, gpuHalf(Map(Name)));
    }
    break;

  case ExecKind::PushLocality:
    for (const std::string &Name : Step.Objects)
      Checker.read(PuKind::Cpu, cpuHalf(Map(Name)));
    break;
  }
}

} // namespace

ConsistencyChecker hetsim::buildSyncHistory(const LoweredProgram &Program,
                                            ConsistencyModel Model) {
  ConsistencyChecker Checker(Model);
  std::vector<std::string> Inputs =
      objectNames(Program.Kernel, TransferDir::HostToDevice);
  std::vector<std::string> Outputs =
      objectNames(Program.Kernel, TransferDir::DeviceToHost);
  NameMapper Identity = [](const std::string &Name) { return Name; };
  for (const ExecStep &Step : Program.Steps)
    appendStepEvents(Checker, Step, Inputs, Outputs, Identity);
  return Checker;
}

bool hetsim::validateRaceFree(const LoweredProgram &Program,
                              ConsistencyModel Model) {
  return buildSyncHistory(Program, Model).isRaceFree();
}

std::vector<CorunSchedule> hetsim::corunSchedules(const CorunProgram &Corun,
                                                  size_t RandomCount,
                                                  uint64_t Seed) {
  size_t NumAgents = Corun.Agents.size();
  std::vector<CorunSchedule> Schedules;
  if (NumAgents == 0)
    return Schedules;

  auto StepsOf = [&](size_t Agent) {
    return Corun.Agents[Agent].Program.Steps.size();
  };

  // Sequential orders: run each agent to completion, rotating which one
  // starts.
  for (size_t First = 0; First != NumAgents; ++First) {
    CorunSchedule S;
    for (size_t Off = 0; Off != NumAgents; ++Off) {
      size_t Agent = (First + Off) % NumAgents;
      for (size_t Step = 0; Step != StepsOf(Agent); ++Step)
        S.emplace_back(Agent, Step);
    }
    Schedules.push_back(std::move(S));
  }

  // Round-robin interleaving.
  {
    CorunSchedule S;
    std::vector<size_t> Next(NumAgents, 0);
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (size_t Agent = 0; Agent != NumAgents; ++Agent) {
        if (Next[Agent] < StepsOf(Agent)) {
          S.emplace_back(Agent, Next[Agent]++);
          Progress = true;
        }
      }
    }
    Schedules.push_back(std::move(S));
  }

  // Seeded random merges (each agent's steps stay in program order).
  XorShiftRng Rng(Seed);
  for (size_t R = 0; R != RandomCount; ++R) {
    CorunSchedule S;
    std::vector<size_t> Next(NumAgents, 0);
    size_t Remaining = Corun.totalSteps();
    while (Remaining != 0) {
      size_t Agent = Rng.nextBelow(NumAgents);
      while (Next[Agent] >= StepsOf(Agent))
        Agent = (Agent + 1) % NumAgents;
      S.emplace_back(Agent, Next[Agent]++);
      --Remaining;
    }
    Schedules.push_back(std::move(S));
  }
  return Schedules;
}

ConsistencyChecker hetsim::buildCorunSyncHistory(const CorunProgram &Corun,
                                                 const CorunSchedule &Schedule,
                                                 ConsistencyModel Model) {
  ConsistencyChecker Checker(Model);
  // Per-agent object structure, with co-run-qualified names.
  std::vector<std::vector<std::string>> Inputs(Corun.Agents.size());
  std::vector<std::vector<std::string>> Outputs(Corun.Agents.size());
  for (size_t A = 0; A != Corun.Agents.size(); ++A) {
    Inputs[A] = objectNames(Corun.Agents[A].Kernel, TransferDir::HostToDevice);
    Outputs[A] =
        objectNames(Corun.Agents[A].Kernel, TransferDir::DeviceToHost);
  }
  for (const std::pair<size_t, size_t> &Entry : Schedule) {
    size_t Agent = Entry.first;
    size_t StepIndex = Entry.second;
    if (Agent >= Corun.Agents.size())
      continue;
    const std::vector<ExecStep> &Steps = Corun.Agents[Agent].Program.Steps;
    if (StepIndex >= Steps.size())
      continue;
    NameMapper Map = [&Corun, Agent](const std::string &Name) {
      return Corun.objectName(Agent, Name);
    };
    appendStepEvents(Checker, Steps[StepIndex], Inputs[Agent], Outputs[Agent],
                     Map);
  }
  return Checker;
}

bool hetsim::validateCorunRaceFree(const CorunProgram &Corun,
                                   ConsistencyModel Model,
                                   size_t RandomSchedules, uint64_t Seed) {
  for (const CorunSchedule &S :
       corunSchedules(Corun, RandomSchedules, Seed))
    if (!buildCorunSyncHistory(Corun, S, Model).isRaceFree())
      return false;
  return true;
}
