//===- core/ExtraWorkloads.h - Workloads beyond Table III -------*- C++ -*-===//
///
/// \file
/// Five additional workloads beyond the paper's six kernels, built
/// directly as lowered programs so the design-space machinery can be
/// exercised on patterns Table III does not cover:
///
///   stream triad — a[i] = b[i] + s*c[i]: pure bandwidth, zero reuse;
///   histogram    — data-dependent scatter into a small hot bin table;
///   spmv         — CSR sparse matrix-vector: irregular gathers of x[];
///   fft          — butterfly passes with doubling strides (cache-hostile
///                  at large strides, twiddle-table reuse);
///   bfs          — frontier expansion with random neighbor gathers and
///                  data-dependent visited checks.
///
/// They use the same placement models and transfer lowering rules as the
/// paper kernels; sizes are parameters, so scaling studies (communication
/// fraction vs. data size) are possible.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_EXTRAWORKLOADS_H
#define HETSIM_CORE_EXTRAWORKLOADS_H

#include "core/Lowering.h"

namespace hetsim {

/// The extra workloads.
enum class ExtraWorkloadId : uint8_t {
  StreamTriad = 0,
  Histogram,
  Spmv,
  Fft,
  Bfs,
};

inline constexpr unsigned NumExtraWorkloads = 5;

/// Display name ("stream triad", "histogram", "spmv", "fft", "bfs").
const char *extraWorkloadName(ExtraWorkloadId Id);

/// All extra workloads.
const std::vector<ExtraWorkloadId> &allExtraWorkloads();

/// Builds a lowered program for \p Id on \p Config. \p Elements sets the
/// problem size (4B elements per stream; histogram input count; SpMV
/// non-zeros). The program has the canonical single-round shape:
/// transfer-in (model-dependent), one parallel round split evenly, a
/// transfer-out, and a small sequential finish.
LoweredProgram buildExtraWorkload(ExtraWorkloadId Id,
                                  const SystemConfig &Config,
                                  uint64_t Elements = 65536);

} // namespace hetsim

#endif // HETSIM_CORE_EXTRAWORKLOADS_H
