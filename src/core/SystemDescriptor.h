//===- core/SystemDescriptor.h - Table I system survey ----------*- C++ -*-===//
///
/// \file
/// The qualitative survey of Table I: previously proposed heterogeneous
/// computing systems and their memory-system classification along the
/// design-space axes, plus Rigel as the homogeneous comparison point.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_SYSTEMDESCRIPTOR_H
#define HETSIM_CORE_SYSTEMDESCRIPTOR_H

#include "core/DesignSpace.h"

#include <string>
#include <vector>

namespace hetsim {

/// One row of Table I.
struct SystemDescriptor {
  std::string Scheme;       ///< System name ("CPU+CUDA*", "GMAC", ...).
  AddressSpaceKind AddrSpace;
  ConnectionKind Connection;
  CoherenceKind Coherence;
  std::string SharedDataUse; ///< "how to use shared data".
  ConsistencyKind Consistency;
  std::string Synchronization;
  std::string Locality;     ///< Locality string as Table I prints it.
};

/// Returns all Table I rows in the paper's order.
const std::vector<SystemDescriptor> &tableOneSurvey();

/// Finds a survey row by name; returns nullptr if absent.
const SystemDescriptor *findSurveyEntry(const std::string &Scheme);

/// Counts survey rows with the given address space — the paper observes
/// most existing systems are disjoint and none is unified + fully
/// coherent + strongly consistent.
unsigned surveyCount(AddressSpaceKind Kind);

/// Returns true if any surveyed system is simultaneously unified, fully
/// hardware-coherent, and strongly consistent (the paper: none is).
bool surveyHasUnifiedFullyCoherentStrong();

} // namespace hetsim

#endif // HETSIM_CORE_SYSTEMDESCRIPTOR_H
