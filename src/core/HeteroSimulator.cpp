//===- core/HeteroSimulator.cpp -------------------------------------------===//

#include "core/HeteroSimulator.h"

#include "comm/DmaEngine.h"
#include "comm/MemControllerLink.h"
#include "comm/PciAperture.h"
#include "comm/PciExpressLink.h"
#include "common/Error.h"
#include "common/Units.h"
#include "analysis/ProgramLinter.h"
#include "common/Log.h"
#include "core/ConsistencyValidation.h"
#include "core/LocalityValidation.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace hetsim;

namespace {
/// Figure 7's "ideal communication": a mechanism costs only its handful of
/// extra instructions. We charge this many CPU cycles per host statement
/// or transfer object.
constexpr Cycle IdealCommCyclesPerOp = 10;

void accumulate(SegmentResult &Total, const SegmentResult &Part) {
  Total.Cycles += Part.Cycles;
  Total.Insts += Part.Insts;
  Total.MemAccesses += Part.MemAccesses;
  Total.MemLatencySum += Part.MemLatencySum;
  Total.BranchMispredicts += Part.BranchMispredicts;
  Total.ICacheMisses += Part.ICacheMisses;
  Total.StoreForwards += Part.StoreForwards;
  Total.PageFaults += Part.PageFaults;
  Total.PageFaultCycles += Part.PageFaultCycles;
}
} // namespace

HeteroSimulator::HeteroSimulator(const SystemConfig &Cfg) : Config(Cfg) {
  buildMachine();
}

HeteroSimulator::~HeteroSimulator() = default;

MemorySystem &HeteroSimulator::memory() {
  assert(Mem && "machine not built");
  return *Mem;
}

void HeteroSimulator::buildMachine() {
  Mem = std::make_unique<MemorySystem>(Config.Hier);
  Cpu = std::make_unique<CpuCore>(Config.Cpu, *Mem);
  Gpu = std::make_unique<GpuCore>(Config.Gpu, *Mem);
  Ownership.clear();
  Fabric = buildFabric();
}

std::unique_ptr<CommFabric> HeteroSimulator::buildFabric() {
  if (Config.IdealComm || Config.Connection == ConnectionKind::None)
    return nullptr;
  switch (Config.Connection) {
  case ConnectionKind::PciExpress: {
    // The partially shared space communicates through the PCI aperture
    // (Section II-A3); other PCI-E systems use plain memcpy-style links.
    std::unique_ptr<CommFabric> Link;
    if (Config.AddrSpace == AddressSpaceKind::PartiallyShared)
      Link = std::make_unique<PciAperture>(Config.Comm);
    else
      Link = std::make_unique<PciExpressLink>(Config.Comm);
    if (Config.AsyncCopies)
      return std::make_unique<DmaEngine>(Config.Comm, std::move(Link));
    return Link;
  }
  case ConnectionKind::MemoryController:
    return std::make_unique<MemControllerLink>(Mem->cpuDram());
  case ConnectionKind::Interconnection:
  case ConnectionKind::CacheFsb:
  case ConnectionKind::Bus:
    // Modeled as a memory-controller-class on-chip path.
    return std::make_unique<MemControllerLink>(Mem->cpuDram());
  case ConnectionKind::None:
    return nullptr;
  }
  hetsim_unreachable("invalid connection kind");
}

RunResult HeteroSimulator::run(KernelId Kernel) {
  LoweredProgram Program = lowerKernel(Kernel, Config);
  return runLowered(Program);
}

namespace {
/// The pre-run lint hook is on by default; HETSIM_LINT=0 bypasses it
/// (e.g. to run a deliberately broken lowering into the dynamic checker).
bool lintEnabled() {
  static const bool Enabled = [] {
    const char *Env = std::getenv("HETSIM_LINT");
    return Env == nullptr || std::string(Env) != "0";
  }();
  return Enabled;
}
} // namespace

RunResult HeteroSimulator::runLowered(const LoweredProgram &Program) {
  // Static pre-run validation: the memory-model linter proves the
  // lowering legal for this design point before any cycles are spent.
  // Errors are lowering bugs and abort the run; warnings (dead copies)
  // are left to hetsim_lint so sweeps stay quiet.
  if (Program.BuiltFromKernel && lintEnabled()) {
    LintReport Report = lintProgram(Program, Config);
    if (Report.errorCount() != 0) {
      for (const LintDiagnostic &D : Report.Diags)
        HETSIM_WARN("lint[%s/%s]: %s", Config.Name.c_str(),
                    kernelName(Program.Kernel),
                    D.render(D.StepIndex < Program.Steps.size()
                                 ? execKindName(
                                       Program.Steps[D.StepIndex].Kind)
                                 : "end")
                        .c_str());
      fatalError("pre-run lint found memory-model hazards in the lowered "
                 "program (set HETSIM_LINT=0 to bypass)");
    }
  }

  // Lowered kernel programs must be data-race-free under the weak
  // consistency model all evaluated systems use (Table I): the lowering
  // is responsible for inserting enough synchronization. A violation
  // here is a lowering bug, not a workload property.
  assert(!Program.BuiltFromKernel ||
         validateRaceFree(Program, ConsistencyModel::Weak));

  // Under an explicit shared-locality scheme the Sequoia-style
  // discipline must hold: shared objects are pushed before every round.
  assert(!(Program.BuiltFromKernel &&
           (Config.Locality.Shared == SharedLocality::Explicit ||
            Config.Locality.Shared == SharedLocality::Hybrid)) ||
         validateExplicitLocality(Program));

  // Fresh machine per run: runs must not contaminate each other.
  buildMachine();

  RunResult Result;
  Result.CommSourceLines = Program.Source.lineCount();

  // Map every placed object into the owning PU's page table.
  for (const DataSegment &Segment : Program.Place.CpuLayout.segments())
    Mem->mapRange(PuKind::Cpu, Segment.Base, Segment.Bytes);
  for (const DataSegment &Segment : Program.Place.GpuLayout.segments())
    Mem->mapRange(PuKind::Gpu, Segment.Base, Segment.Bytes);

  // Enforce the address-space model's visibility rules on every access.
  {
    SharedSpacePolicy Policy;
    Policy.SpaceModel = &AddressSpaceModel::forKind(Config.AddrSpace);
    Mem->setSharedPolicy(Policy);
  }

  // Register shared objects for ownership bookkeeping.
  if (Config.UseOwnership) {
    for (const std::string &Name : Program.Place.SharedObjects) {
      const DataSegment &Segment = Program.Place.CpuLayout.segment(Name);
      Ownership.registerObject(Name, Segment.Base, Segment.Bytes,
                               PuKind::Cpu);
    }
  }

  Cycle CpuNow = 0; // Absolute time in CPU cycles.
  TimeBreakdown &Time = Result.Time;

  auto ChargeComm = [&](Cycle CpuCycles) {
    Time.CommunicationNs += cyclesToNs(PuKind::Cpu, CpuCycles);
    CpuNow += CpuCycles;
  };

  for (const ExecStep &Step : Program.Steps) {
    switch (Step.Kind) {
    case ExecKind::SerialCompute: {
      SegmentResult Seg = Cpu->run(Step.CpuTrace, CpuNow);
      accumulate(Result.CpuTotal, Seg);
      Time.SequentialNs += cyclesToNs(PuKind::Cpu, Seg.Cycles);
      // In-flight async copies (ADSM lazy paging) overlap the serial
      // pass; only time beyond it is exposed as communication.
      Cycle Span = Seg.Cycles;
      if (Fabric) {
        Cycle Busy = Fabric->busyUntil();
        if (Busy > CpuNow + Seg.Cycles)
          Span = Busy - CpuNow;
      }
      Time.CommunicationNs += cyclesToNs(PuKind::Cpu, Span - Seg.Cycles);
      CpuNow += Span;
      break;
    }

    case ExecKind::ParallelCompute: {
      // The GPU cannot start until in-flight copies of its inputs land.
      Cycle DelayCpuCycles = 0;
      if (Fabric && Fabric->busyUntil() > CpuNow)
        DelayCpuCycles = Fabric->busyUntil() - CpuNow;
      double DelayNs = cyclesToNs(PuKind::Cpu, DelayCpuCycles);
      Cycle GpuStart = nsToCycles(
          PuKind::Gpu, cyclesToNs(PuKind::Cpu, CpuNow + DelayCpuCycles));

      SegmentResult CpuSeg, GpuSeg;
      if (!Config.InterleavedContention) {
        CpuSeg = Cpu->run(Step.CpuTrace, CpuNow);
        GpuSeg = Gpu->run(Step.GpuTrace, GpuStart);
      } else {
        // Interleave slices of the two traces by simulated time so the
        // shared uncore sees the PUs' accesses in temporal order.
        const size_t Slice = std::max(1u, Config.ContentionSliceRecords);
        const TraceRecord *CpuRecords = Step.CpuTrace.records().data();
        const TraceRecord *GpuRecords = Step.GpuTrace.records().data();
        size_t CpuLeft = Step.CpuTrace.size();
        size_t GpuLeft = Step.GpuTrace.size();
        Cycle CpuCursor = CpuNow;
        Cycle GpuCursor = GpuStart;
        while (CpuLeft != 0 || GpuLeft != 0) {
          bool PickCpu;
          if (CpuLeft == 0)
            PickCpu = false;
          else if (GpuLeft == 0)
            PickCpu = true;
          else
            PickCpu = cyclesToNs(PuKind::Cpu, CpuCursor) <=
                      cyclesToNs(PuKind::Gpu, GpuCursor);
          if (PickCpu) {
            size_t N = std::min(Slice, CpuLeft);
            SegmentResult Part = Cpu->run(CpuRecords, N, CpuCursor);
            CpuCursor += Part.Cycles;
            CpuRecords += N;
            CpuLeft -= N;
            accumulate(CpuSeg, Part);
          } else {
            size_t N = std::min(Slice, GpuLeft);
            SegmentResult Part = Gpu->run(GpuRecords, N, GpuCursor);
            GpuCursor += Part.Cycles;
            GpuRecords += N;
            GpuLeft -= N;
            accumulate(GpuSeg, Part);
          }
        }
        CpuSeg.Cycles = CpuCursor - CpuNow;
        GpuSeg.Cycles = GpuCursor - GpuStart;
        CpuSeg.Insts = Step.CpuTrace.size();
        GpuSeg.Insts = Step.GpuTrace.size();
      }
      accumulate(Result.CpuTotal, CpuSeg);
      accumulate(Result.GpuTotal, GpuSeg);
      double CpuNs = cyclesToNs(PuKind::Cpu, CpuSeg.Cycles);
      double GpuNs = cyclesToNs(PuKind::Gpu, GpuSeg.Cycles);

      // Batched first-touch page faults stall the GPU round (LRB).
      double FaultNs = 0;
      if (Step.PageFaultPages != 0) {
        Result.PageFaults += Step.PageFaultPages;
        FaultNs = cyclesToNs(PuKind::Cpu,
                             Step.PageFaultPages * Config.Comm.LibPageFault);
      }

      double SpanNs = std::max(CpuNs, DelayNs + GpuNs + FaultNs);
      double ComputeSpanNs = std::max(CpuNs, GpuNs);
      Time.ParallelNs += ComputeSpanNs;
      Time.CommunicationNs += SpanNs - ComputeSpanNs;
      CpuNow += nsToCycles(PuKind::Cpu, SpanNs);
      break;
    }

    case ExecKind::Transfer: {
      ++Result.TransferCount;
      Result.TransferredBytes += Step.Bytes;
      if (!Fabric) {
        // Ideal communication: only the data-handling instructions.
        Cycle Ops = std::max<Cycle>(1, Step.Objects.size());
        ChargeComm(Ops * IdealCommCyclesPerOp);
        break;
      }
      TransferTiming Timing = Fabric->transfer(Step.Bytes, Step.Dir, CpuNow);
      ChargeComm(Timing.CpuBusyCycles);
      break;
    }

    case ExecKind::DmaWait: {
      if (Fabric)
        ChargeComm(Fabric->waitAll(CpuNow));
      break;
    }

    case ExecKind::OwnershipToGpu: {
      // Host releases what it owns; the GPU round acquires (Figure 2(b)).
      // Objects the GPU kept from a previous round need no transition.
      for (const std::string &Name : Step.Objects) {
        if (Ownership.ownerOfObject(Name) == PuKind::Gpu)
          continue;
        Ownership.release(Name, PuKind::Cpu);
        Ownership.acquire(Name, PuKind::Gpu);
      }
      Result.OwnershipActions += Step.Objects.empty() ? 0 : 2;
      ChargeComm(Config.IdealComm ? IdealCommCyclesPerOp
                                  : Config.Comm.ApiAcquire);
      break;
    }

    case ExecKind::OwnershipToCpu: {
      for (const std::string &Name : Step.Objects) {
        if (Ownership.ownerOfObject(Name) == PuKind::Cpu)
          continue;
        Ownership.release(Name, PuKind::Gpu);
        Ownership.acquire(Name, PuKind::Cpu);
      }
      Result.OwnershipActions += Step.Objects.empty() ? 0 : 2;
      // Release semantics: the GPU's dirty shared lines become visible.
      Mem->flushPrivate(PuKind::Gpu);
      ChargeComm(Config.IdealComm ? IdealCommCyclesPerOp
                                  : Config.Comm.ApiAcquire);
      break;
    }

    case ExecKind::PushLocality: {
      Cycle Cost = 0;
      for (const std::string &Name : Step.Objects) {
        const DataSegment &Segment = Program.Place.CpuLayout.segment(Name);
        Cost += Mem->pushToShared(PuKind::Cpu, Segment.Base, Segment.Bytes,
                                  CpuNow + Cost);
      }
      Result.PushNs += cyclesToNs(PuKind::Cpu, Cost);
      ChargeComm(Cost);
      break;
    }
    }
  }

  if (Fabric)
    ChargeComm(Fabric->waitAll(CpuNow));

  if (Fabric) {
    // Fabric counters supersede the step-level tally when present.
    Result.TransferredBytes = Fabric->bytesMoved();
    Result.TransferCount = Fabric->transferCount();
  }
  return Result;
}
