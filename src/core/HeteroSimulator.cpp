//===- core/HeteroSimulator.cpp -------------------------------------------===//

#include "core/HeteroSimulator.h"

#include "comm/DmaEngine.h"
#include "comm/MemControllerLink.h"
#include "comm/PciAperture.h"
#include "comm/PciExpressLink.h"
#include "common/Error.h"
#include "common/Units.h"
#include "analysis/ProgramLinter.h"
#include "common/Log.h"
#include "core/ConsistencyValidation.h"
#include "core/LocalityValidation.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace hetsim;

namespace {
/// Figure 7's "ideal communication": a mechanism costs only its handful of
/// extra instructions. We charge this many CPU cycles per host statement
/// or transfer object.
constexpr Cycle IdealCommCyclesPerOp = 10;

void accumulate(SegmentResult &Total, const SegmentResult &Part) {
  Total.Cycles += Part.Cycles;
  Total.Insts += Part.Insts;
  Total.MemAccesses += Part.MemAccesses;
  Total.MemLatencySum += Part.MemLatencySum;
  Total.MemLatencyMax = std::max(Total.MemLatencyMax, Part.MemLatencyMax);
  Total.BranchMispredicts += Part.BranchMispredicts;
  Total.ICacheMisses += Part.ICacheMisses;
  Total.StoreForwards += Part.StoreForwards;
  Total.PageFaults += Part.PageFaults;
  Total.PageFaultCycles += Part.PageFaultCycles;
  Total.SampledRecords += Part.SampledRecords;
  Total.SampledErrorCycles += Part.SampledErrorCycles;
}
} // namespace

HeteroSimulator::HeteroSimulator(const SystemConfig &Cfg) : Config(Cfg) {
  buildMachine();
}

HeteroSimulator::~HeteroSimulator() = default;

MemorySystem &HeteroSimulator::memory() {
  assert(Mem && "machine not built");
  return *Mem;
}

void HeteroSimulator::buildMachine() {
  Mem = std::make_unique<MemorySystem>(Config.Hier);
  Cpu = std::make_unique<CpuCore>(Config.Cpu, *Mem);
  Gpu = std::make_unique<GpuCore>(Config.Gpu, *Mem);
  Ownership.clear();
  Fabric = buildFabric();
}

std::unique_ptr<CommFabric> HeteroSimulator::buildFabric() {
  if (Config.IdealComm || Config.Connection == ConnectionKind::None)
    return nullptr;
  switch (Config.Connection) {
  case ConnectionKind::PciExpress: {
    // The partially shared space communicates through the PCI aperture
    // (Section II-A3); other PCI-E systems use plain memcpy-style links.
    std::unique_ptr<CommFabric> Link;
    if (Config.AddrSpace == AddressSpaceKind::PartiallyShared)
      Link = std::make_unique<PciAperture>(Config.Comm);
    else
      Link = std::make_unique<PciExpressLink>(Config.Comm);
    if (Config.AsyncCopies)
      return std::make_unique<DmaEngine>(Config.Comm, std::move(Link));
    return Link;
  }
  case ConnectionKind::MemoryController:
    return std::make_unique<MemControllerLink>(Mem->cpuDram(), 1000,
                                               &Mem->stats());
  case ConnectionKind::Interconnection:
  case ConnectionKind::CacheFsb:
  case ConnectionKind::Bus:
    // Modeled as a memory-controller-class on-chip path.
    return std::make_unique<MemControllerLink>(Mem->cpuDram(), 1000,
                                               &Mem->stats());
  case ConnectionKind::None:
    return nullptr;
  }
  hetsim_unreachable("invalid connection kind");
}

RunResult HeteroSimulator::run(KernelId Kernel) {
  LoweredProgram Program = lowerKernel(Kernel, Config);
  return runLowered(Program);
}

namespace {
/// The pre-run lint hook is on by default; HETSIM_LINT=0 bypasses it
/// (e.g. to run a deliberately broken lowering into the dynamic checker).
bool lintEnabled() {
  static const bool Enabled = [] {
    const char *Env = std::getenv("HETSIM_LINT");
    return Env == nullptr || std::string(Env) != "0";
  }();
  return Enabled;
}
} // namespace

RunResult HeteroSimulator::runLowered(const LoweredProgram &Program) {
  // Static pre-run validation: the memory-model linter proves the
  // lowering legal for this design point before any cycles are spent.
  // Errors are lowering bugs and abort the run; warnings (dead copies)
  // are left to hetsim_lint so sweeps stay quiet.
  if (Program.BuiltFromKernel && lintEnabled()) {
    LintReport Report = lintProgram(Program, Config);
    if (Report.errorCount() != 0) {
      for (const LintDiagnostic &D : Report.Diags)
        HETSIM_WARN("lint[%s/%s]: %s", Config.Name.c_str(),
                    kernelName(Program.Kernel),
                    D.render(D.StepIndex < Program.Steps.size()
                                 ? execKindName(
                                       Program.Steps[D.StepIndex].Kind)
                                 : "end")
                        .c_str());
      fatalError("pre-run lint found memory-model hazards in the lowered "
                 "program (set HETSIM_LINT=0 to bypass)");
    }
  }

  // Lowered kernel programs must be data-race-free under the weak
  // consistency model all evaluated systems use (Table I): the lowering
  // is responsible for inserting enough synchronization. A violation
  // here is a lowering bug, not a workload property.
  assert(!Program.BuiltFromKernel ||
         validateRaceFree(Program, ConsistencyModel::Weak));

  // Under an explicit shared-locality scheme the Sequoia-style
  // discipline must hold: shared objects are pushed before every round.
  assert(!(Program.BuiltFromKernel &&
           (Config.Locality.Shared == SharedLocality::Explicit ||
            Config.Locality.Shared == SharedLocality::Hybrid)) ||
         validateExplicitLocality(Program));

  // Fresh machine per run: runs must not contaminate each other.
  buildMachine();

  // Timeline recording (cheap; capped). Background DRAM drains happen
  // deep inside the memory system, which cannot depend on obs — they
  // reach the timeline through the hook.
  Trace.clear();
  Mem->setBgDrainHook([this](const MemorySystem::BgDrainEvent &E) {
    Trace.complete(TraceTrack::Dram, "bg_drain",
                   cyclesToNs(PuKind::Cpu, E.StartCpu) / 1000.0,
                   cyclesToNs(PuKind::Cpu, E.DurationCpu) / 1000.0,
                   "requests", E.Requests);
  });

  RunResult Result;
  Result.CommSourceLines = Program.Source.lineCount();

  // Map every placed object into the owning PU's page table.
  for (const DataSegment &Segment : Program.Place.CpuLayout.segments())
    Mem->mapRange(PuKind::Cpu, Segment.Base, Segment.Bytes);
  for (const DataSegment &Segment : Program.Place.GpuLayout.segments())
    Mem->mapRange(PuKind::Gpu, Segment.Base, Segment.Bytes);

  // Enforce the address-space model's visibility rules on every access.
  {
    SharedSpacePolicy Policy;
    Policy.SpaceModel = &AddressSpaceModel::forKind(Config.AddrSpace);
    Mem->setSharedPolicy(Policy);
  }

  // Register shared objects for ownership bookkeeping.
  if (Config.UseOwnership) {
    for (const std::string &Name : Program.Place.SharedObjects) {
      const DataSegment &Segment = Program.Place.CpuLayout.segment(Name);
      Ownership.registerObject(Name, Segment.Base, Segment.Bytes,
                               PuKind::Cpu);
    }
  }

  Cycle CpuNow = 0; // Absolute time in CPU cycles.
  TimeBreakdown &Time = Result.Time;

  // Trace-event timestamps are microseconds of simulated time.
  auto CpuUs = [](Cycle C) { return cyclesToNs(PuKind::Cpu, C) / 1000.0; };

  auto ChargeComm = [&](RunPhase Phase, Cycle CpuCycles) {
    double Ns = cyclesToNs(PuKind::Cpu, CpuCycles);
    Time.CommunicationNs += Ns;
    Result.Phases.add(Phase, Ns);
    CpuNow += CpuCycles;
  };

  for (const ExecStep &Step : Program.Steps) {
    switch (Step.Kind) {
    case ExecKind::SerialCompute: {
      SegmentResult Seg = Cpu->run(Step.CpuTrace, CpuNow);
      accumulate(Result.CpuTotal, Seg);
      double SegNs = cyclesToNs(PuKind::Cpu, Seg.Cycles);
      Time.SequentialNs += SegNs;
      Result.Phases.add(RunPhase::SerialCompute, SegNs);
      Trace.complete(TraceTrack::Cpu, "serial_compute", CpuUs(CpuNow),
                     SegNs / 1000.0, "insts", Seg.Insts);
      // In-flight async copies (ADSM lazy paging) overlap the serial
      // pass; only time beyond it is exposed as communication.
      Cycle Span = Seg.Cycles;
      if (Fabric) {
        Cycle Busy = Fabric->busyUntil();
        if (Busy > CpuNow + Seg.Cycles)
          Span = Busy - CpuNow;
      }
      double ExposedNs = cyclesToNs(PuKind::Cpu, Span - Seg.Cycles);
      Time.CommunicationNs += ExposedNs;
      Result.Phases.add(RunPhase::CopyOverlapStall, ExposedNs);
      if (Span > Seg.Cycles)
        Trace.complete(TraceTrack::Fabric, "async_copy_exposed",
                       CpuUs(CpuNow + Seg.Cycles), ExposedNs / 1000.0);
      CpuNow += Span;
      break;
    }

    case ExecKind::ParallelCompute: {
      // The GPU cannot start until in-flight copies of its inputs land.
      Cycle DelayCpuCycles = 0;
      if (Fabric && Fabric->busyUntil() > CpuNow)
        DelayCpuCycles = Fabric->busyUntil() - CpuNow;
      double DelayNs = cyclesToNs(PuKind::Cpu, DelayCpuCycles);
      Cycle GpuStart = nsToCycles(
          PuKind::Gpu, cyclesToNs(PuKind::Cpu, CpuNow + DelayCpuCycles));

      SegmentResult CpuSeg, GpuSeg;
      if (!Config.InterleavedContention) {
        CpuSeg = Cpu->run(Step.CpuTrace, CpuNow);
        GpuSeg = Gpu->run(Step.GpuTrace, GpuStart);
      } else {
        // Interleave slices of the two traces by simulated time so the
        // shared uncore sees the PUs' accesses in temporal order.
        const size_t Slice = std::max(1u, Config.ContentionSliceRecords);
        const TraceRecord *CpuRecords = Step.CpuTrace.records().data();
        const TraceRecord *GpuRecords = Step.GpuTrace.records().data();
        size_t CpuLeft = Step.CpuTrace.size();
        size_t GpuLeft = Step.GpuTrace.size();
        Cycle CpuCursor = CpuNow;
        Cycle GpuCursor = GpuStart;
        while (CpuLeft != 0 || GpuLeft != 0) {
          bool PickCpu;
          if (CpuLeft == 0)
            PickCpu = false;
          else if (GpuLeft == 0)
            PickCpu = true;
          else
            PickCpu = cyclesToNs(PuKind::Cpu, CpuCursor) <=
                      cyclesToNs(PuKind::Gpu, GpuCursor);
          if (PickCpu) {
            size_t N = std::min(Slice, CpuLeft);
            SegmentResult Part = Cpu->run(CpuRecords, N, CpuCursor);
            CpuCursor += Part.Cycles;
            CpuRecords += N;
            CpuLeft -= N;
            accumulate(CpuSeg, Part);
          } else {
            size_t N = std::min(Slice, GpuLeft);
            SegmentResult Part = Gpu->run(GpuRecords, N, GpuCursor);
            GpuCursor += Part.Cycles;
            GpuRecords += N;
            GpuLeft -= N;
            accumulate(GpuSeg, Part);
          }
        }
        CpuSeg.Cycles = CpuCursor - CpuNow;
        GpuSeg.Cycles = GpuCursor - GpuStart;
        CpuSeg.Insts = Step.CpuTrace.size();
        GpuSeg.Insts = Step.GpuTrace.size();
      }
      accumulate(Result.CpuTotal, CpuSeg);
      accumulate(Result.GpuTotal, GpuSeg);
      double CpuNs = cyclesToNs(PuKind::Cpu, CpuSeg.Cycles);
      double GpuNs = cyclesToNs(PuKind::Gpu, GpuSeg.Cycles);

      // Batched first-touch page faults stall the GPU round (LRB).
      double FaultNs = 0;
      if (Step.PageFaultPages != 0) {
        Result.PageFaults += Step.PageFaultPages;
        FaultNs = cyclesToNs(PuKind::Cpu,
                             Step.PageFaultPages * Config.Comm.LibPageFault);
      }

      double SpanNs = std::max(CpuNs, DelayNs + GpuNs + FaultNs);
      double ComputeSpanNs = std::max(CpuNs, GpuNs);
      Time.ParallelNs += ComputeSpanNs;
      Time.CommunicationNs += SpanNs - ComputeSpanNs;
      Result.Phases.add(RunPhase::ParallelCompute, ComputeSpanNs);
      // The exposed (non-compute) slice of the round is page-fault
      // handling first, residual copy/queueing stall after.
      double ExtraNs = SpanNs - ComputeSpanNs;
      double FaultAttrNs = std::min(FaultNs, ExtraNs);
      Result.Phases.add(RunPhase::PageFault, FaultAttrNs);
      Result.Phases.add(RunPhase::CopyOverlapStall, ExtraNs - FaultAttrNs);

      double StartNs = cyclesToNs(PuKind::Cpu, CpuNow);
      if (CpuSeg.Cycles != 0)
        Trace.complete(TraceTrack::Cpu, "parallel_compute", StartNs / 1000.0,
                       CpuNs / 1000.0, "insts", CpuSeg.Insts);
      if (GpuSeg.Cycles != 0)
        Trace.complete(TraceTrack::Gpu, "parallel_compute",
                       (StartNs + DelayNs) / 1000.0, GpuNs / 1000.0, "insts",
                       GpuSeg.Insts);
      if (FaultAttrNs > 0)
        Trace.complete(TraceTrack::Driver, "page_faults",
                       (StartNs + DelayNs + GpuNs) / 1000.0,
                       FaultAttrNs / 1000.0, "pages", Step.PageFaultPages);
      CpuNow += nsToCycles(PuKind::Cpu, SpanNs);
      break;
    }

    case ExecKind::Transfer: {
      ++Result.TransferCount;
      Result.TransferredBytes += Step.Bytes;
      Cycle TransferStart = CpuNow;
      if (!Fabric) {
        // Ideal communication: only the data-handling instructions.
        Cycle Ops = std::max<Cycle>(1, Step.Objects.size());
        ChargeComm(RunPhase::Transfer, Ops * IdealCommCyclesPerOp);
      } else {
        TransferTiming Timing =
            Fabric->transfer(Step.Bytes, Step.Dir, CpuNow);
        ChargeComm(RunPhase::Transfer, Timing.CpuBusyCycles);
      }
      Trace.complete(TraceTrack::Fabric, "transfer", CpuUs(TransferStart),
                     CpuUs(CpuNow - TransferStart), "bytes", Step.Bytes);
      break;
    }

    case ExecKind::DmaWait: {
      if (Fabric) {
        Cycle WaitStart = CpuNow;
        ChargeComm(RunPhase::DmaWait, Fabric->waitAll(CpuNow));
        if (CpuNow > WaitStart)
          Trace.complete(TraceTrack::Fabric, "dma_wait", CpuUs(WaitStart),
                         CpuUs(CpuNow - WaitStart));
      }
      break;
    }

    case ExecKind::OwnershipToGpu: {
      // Host releases what it owns; the GPU round acquires (Figure 2(b)).
      // Objects the GPU kept from a previous round need no transition.
      for (const std::string &Name : Step.Objects) {
        if (Ownership.ownerOfObject(Name) == PuKind::Gpu)
          continue;
        Ownership.release(Name, PuKind::Cpu);
        Ownership.acquire(Name, PuKind::Gpu);
      }
      Result.OwnershipActions += Step.Objects.empty() ? 0 : 2;
      Cycle OwnStart = CpuNow;
      ChargeComm(RunPhase::Ownership, Config.IdealComm
                                          ? IdealCommCyclesPerOp
                                          : Config.Comm.ApiAcquire);
      Trace.complete(TraceTrack::Driver, "ownership_to_gpu", CpuUs(OwnStart),
                     CpuUs(CpuNow - OwnStart), "objects",
                     Step.Objects.size());
      break;
    }

    case ExecKind::OwnershipToCpu: {
      for (const std::string &Name : Step.Objects) {
        if (Ownership.ownerOfObject(Name) == PuKind::Cpu)
          continue;
        Ownership.release(Name, PuKind::Gpu);
        Ownership.acquire(Name, PuKind::Cpu);
      }
      Result.OwnershipActions += Step.Objects.empty() ? 0 : 2;
      // Release semantics: the GPU's dirty shared lines become visible.
      Mem->flushPrivate(PuKind::Gpu);
      Cycle OwnStart = CpuNow;
      ChargeComm(RunPhase::Ownership, Config.IdealComm
                                          ? IdealCommCyclesPerOp
                                          : Config.Comm.ApiAcquire);
      Trace.complete(TraceTrack::Driver, "ownership_to_cpu", CpuUs(OwnStart),
                     CpuUs(CpuNow - OwnStart), "objects",
                     Step.Objects.size());
      break;
    }

    case ExecKind::PushLocality: {
      Cycle Cost = 0;
      for (const std::string &Name : Step.Objects) {
        const DataSegment &Segment = Program.Place.CpuLayout.segment(Name);
        Cost += Mem->pushToShared(PuKind::Cpu, Segment.Base, Segment.Bytes,
                                  CpuNow + Cost);
      }
      Result.PushNs += cyclesToNs(PuKind::Cpu, Cost);
      Cycle PushStart = CpuNow;
      ChargeComm(RunPhase::Push, Cost);
      Trace.complete(TraceTrack::Driver, "push_locality", CpuUs(PushStart),
                     CpuUs(Cost), "objects", Step.Objects.size());
      break;
    }
    }
  }

  if (Fabric) {
    Cycle WaitStart = CpuNow;
    ChargeComm(RunPhase::DmaWait, Fabric->waitAll(CpuNow));
    if (CpuNow > WaitStart)
      Trace.complete(TraceTrack::Fabric, "dma_wait", CpuUs(WaitStart),
                     CpuUs(CpuNow - WaitStart));
  }

  if (Fabric) {
    // Fabric counters supersede the step-level tally when present.
    Result.TransferredBytes = Fabric->bytesMoved();
    Result.TransferCount = Fabric->transferCount();
  }

  // Coherence traffic is too frequent to trace per message; summarize the
  // run's protocol activity as one span on its own track.
  if (uint64_t Remote = Mem->stats().counter("mem.coh_remote"))
    Trace.complete(TraceTrack::Coherence, "coh_remote_total", 0.0,
                   CpuUs(CpuNow), "events", Remote);

  if (traceEventsEnabled()) {
    std::string RunName =
        Config.Name + "_" +
        (Program.BuiltFromKernel ? kernelName(Program.Kernel) : "custom");
    std::string Path = traceEventPath(RunName);
    if (!Trace.writeFile(Path, RunName))
      HETSIM_WARN("cannot write trace events to %s", Path.c_str());
  }
  return Result;
}

MetricsSnapshot HeteroSimulator::collectMetrics(const RunResult &Result) {
  assert(Mem && "machine not built");
  MetricsSnapshot M;
  captureMetrics(*Mem, M);

  M.add("run.total_ns", Result.Time.totalNs());
  M.add("run.sequential_ns", Result.Time.SequentialNs);
  M.add("run.parallel_ns", Result.Time.ParallelNs);
  M.add("run.communication_ns", Result.Time.CommunicationNs);
  for (unsigned P = 0; P != NumRunPhases; ++P)
    M.add(std::string("run.phase.") + runPhaseName(RunPhase(P)) + "_ns",
          Result.Phases.Ns[P]);

  M.add("run.transfer_bytes", double(Result.TransferredBytes));
  M.add("run.transfers", double(Result.TransferCount));
  M.add("run.page_faults", double(Result.PageFaults));
  M.add("run.ownership_actions", double(Result.OwnershipActions));
  M.add("run.push_ns", Result.PushNs);
  M.add("run.comm_source_lines", double(Result.CommSourceLines));

  M.add("run.cpu.cycles", double(Result.CpuTotal.Cycles));
  M.add("run.cpu.insts", double(Result.CpuTotal.Insts));
  M.add("run.cpu.mem_accesses", double(Result.CpuTotal.MemAccesses));
  M.add("run.cpu.mem_latency_max", double(Result.CpuTotal.MemLatencyMax));
  M.add("run.gpu.cycles", double(Result.GpuTotal.Cycles));
  M.add("run.gpu.insts", double(Result.GpuTotal.Insts));
  M.add("run.gpu.mem_accesses", double(Result.GpuTotal.MemAccesses));
  M.add("run.gpu.mem_latency_max", double(Result.GpuTotal.MemLatencyMax));

  // Sampled memory tier accounting (zero outside HETSIM_MEMFAST=sampled):
  // how much of the stream was extrapolated and the reported error bound.
  M.add("run.sampled_records", double(Result.CpuTotal.SampledRecords +
                                      Result.GpuTotal.SampledRecords));
  M.add("run.sampled_error_cycles", Result.CpuTotal.SampledErrorCycles +
                                        Result.GpuTotal.SampledErrorCycles);

  M.add("run.trace_events", double(Trace.size()));
  M.add("run.trace_events_dropped", double(Trace.dropped()));

  ConservationReport Report = checkConservation(*Mem);
  M.add("run.conservation_ok", Report.Ok ? 1.0 : 0.0);
  return M;
}
