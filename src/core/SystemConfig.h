//===- core/SystemConfig.h - Simulated system configurations ----*- C++ -*-===//
///
/// \file
/// A SystemConfig is one point in the design space, fully determining how
/// a kernel is lowered and simulated. The five case studies of Section V-A
/// (CPU+GPU(CUDA), LRB, GMAC, Fusion, IDEAL-HETERO) are presets; Figure 7
/// uses address-space variants with ideal communication; ablations sweep
/// individual parameters through a ConfigStore.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_SYSTEMCONFIG_H
#define HETSIM_CORE_SYSTEMCONFIG_H

#include "comm/CommParams.h"
#include "core/DesignSpace.h"
#include "cpu/CpuCore.h"
#include "gpu/GpuCore.h"
#include "memory/MemorySystem.h"

namespace hetsim {

/// The five case-study systems of Section V-A.
enum class CaseStudy : uint8_t {
  CpuGpu = 0,  ///< Disjoint space over PCI-E (CUDA-style).
  Lrb,         ///< Partially shared space with PCI aperture + ownership.
  Gmac,        ///< ADSM over PCI-E with asynchronous copies.
  Fusion,      ///< Disjoint space with memory-controller connection.
  IdealHetero, ///< Unified, fully coherent; zero communication cost.
};

inline constexpr unsigned NumCaseStudies = 5;

/// Display name ("CPU+GPU", "LRB", "GMAC", "Fusion", "IDEAL-HETERO").
const char *caseStudyName(CaseStudy Study);

/// All case studies in presentation order.
const std::vector<CaseStudy> &allCaseStudies();

/// One fully specified design point.
struct SystemConfig {
  std::string Name = "custom";
  AddressSpaceKind AddrSpace = AddressSpaceKind::Unified;
  ConnectionKind Connection = ConnectionKind::None;
  LocalityScheme Locality;

  /// Copies overlap with computation (GMAC's DMA engine).
  bool AsyncCopies = false;
  /// Ownership acquire/release commands are issued (LRB model).
  bool UseOwnership = false;
  /// First GPU touch of freshly shared pages faults (lib-pf).
  bool FirstTouchFaults = false;
  /// Communication mechanisms are free except for their instructions
  /// (Figure 7's "ideal communication overhead").
  bool IdealComm = false;

  /// Run parallel phases with time-interleaved CPU/GPU slices so the two
  /// PUs contend for shared uncore state (L3, NoC, DRAM) in temporal
  /// order, instead of the default CPU-segment-then-GPU-segment pass.
  /// Slightly slower to simulate; use for contention studies.
  bool InterleavedContention = false;

  /// Records per interleaving slice.
  unsigned ContentionSliceRecords = 4096;

  /// Fraction of each parallel round's work executed by the CPU. The
  /// paper divides the work evenly (0.5) and defers optimal partitioning
  /// to Qilin [25]; sweeping this reproduces that study's effect. At 0.5
  /// the Table III instruction counts are used verbatim; other values
  /// scale the per-PU budgets proportionally.
  double CpuWorkFraction = 0.5;

  CpuConfig Cpu;
  GpuConfig Gpu;
  MemHierConfig Hier;
  CommParams Comm;

  /// Builds the preset for \p Study, applying \p Overrides (e.g.
  /// "comm.api_pci_base=1000") last.
  static SystemConfig forCaseStudy(CaseStudy Study,
                                   const ConfigStore &Overrides = {});

  /// Builds the Figure 7 configuration for \p Kind: the given address
  /// space with a shared cache and ideal communication.
  static SystemConfig forAddressSpaceStudy(AddressSpaceKind Kind,
                                           const ConfigStore &Overrides = {});

  /// A Sandy-Bridge-style design (Table I): disjoint address spaces, the
  /// memory-controller connection, but a *shared last-level cache* —
  /// Section II-A2's point that a disjoint space can still share the
  /// cache "for better resource management". Not part of the paper's five
  /// case studies; used by the shared-LLC ablation.
  static SystemConfig sandyBridgeStyle(const ConfigStore &Overrides = {});

  /// Applies generic overrides (comm.* keys and a few hier/cpu knobs).
  void applyOverrides(const ConfigStore &Overrides);
};

} // namespace hetsim

#endif // HETSIM_CORE_SYSTEMCONFIG_H
