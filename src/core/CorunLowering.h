//===- core/CorunLowering.h - Cross-kernel co-run composition ---*- C++ -*-===//
///
/// \file
/// Composes the lowered programs of multiple concurrently running kernels
/// into one whole-system workload (the ROADMAP's CPU+GPU co-run axis).
/// Each kernel instance is an *agent* with its own driver/GPU/DMA
/// timelines; the agents share one SystemConfig (they run on the same
/// machine) but their data objects are private by default — every base
/// object name is qualified with the agent name ("a1.in"). A co-run may
/// declare base names *shared*: those alias one host-visible allocation
/// across all agents that have an object of that name, which is how the
/// race verifier's cross-agent conflicts arise (two kernels reducing
/// into one shared output is a race unless something orders the rounds).
/// Device-private copies (disjoint GPU buffers, ADSM accelerator pages)
/// are never aliased: sharing is a host-allocation property.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_CORUNLOWERING_H
#define HETSIM_CORE_CORUNLOWERING_H

#include "core/Lowering.h"

namespace hetsim {

/// One concurrently running kernel instance.
struct CorunAgent {
  std::string Name; ///< Qualifier for private objects ("a0", "a1", ...).
  KernelId Kernel = KernelId::Reduction;
  LoweredProgram Program;
};

/// A composed co-run workload.
struct CorunProgram {
  SystemConfig Config;
  std::vector<CorunAgent> Agents;
  /// Base object names aliased to one host allocation across agents.
  std::vector<std::string> SharedBases;

  /// True if \p Base is declared shared across agents.
  bool isSharedBase(const std::string &Base) const;

  /// The globally unique object name of agent \p Agent's base object
  /// \p Base: the base itself when shared, "<agent>.<base>" otherwise.
  std::string objectName(size_t Agent, const std::string &Base) const;

  /// Total steps across all agents.
  size_t totalSteps() const;
};

/// Lowers each kernel of \p Kernels for \p Config and composes the
/// results. Agents are named "a0", "a1", ... in order. \p SharedBases
/// declares cross-agent aliased host allocations; names that match no
/// agent's data objects are ignored.
CorunProgram lowerCorun(const std::vector<KernelId> &Kernels,
                        const SystemConfig &Config,
                        const std::vector<std::string> &SharedBases = {});

/// Wraps an already-lowered single program as a one-agent co-run (agent
/// name "a0"; nothing shared) so single-kernel and co-run analyses run
/// through one code path.
CorunProgram corunFromSingle(LoweredProgram Program,
                             const SystemConfig &Config);

} // namespace hetsim

#endif // HETSIM_CORE_CORUNLOWERING_H
