//===- core/ExtraWorkloads.cpp --------------------------------------------===//

#include "core/ExtraWorkloads.h"

#include "common/Error.h"
#include "common/Random.h"
#include "trace/KernelTraceGenerator.h"

using namespace hetsim;

const char *hetsim::extraWorkloadName(ExtraWorkloadId Id) {
  switch (Id) {
  case ExtraWorkloadId::StreamTriad:
    return "stream triad";
  case ExtraWorkloadId::Histogram:
    return "histogram";
  case ExtraWorkloadId::Spmv:
    return "spmv";
  case ExtraWorkloadId::Fft:
    return "fft";
  case ExtraWorkloadId::Bfs:
    return "bfs";
  }
  hetsim_unreachable("invalid extra workload");
}

const std::vector<ExtraWorkloadId> &hetsim::allExtraWorkloads() {
  static const std::vector<ExtraWorkloadId> Ids = {
      ExtraWorkloadId::StreamTriad, ExtraWorkloadId::Histogram,
      ExtraWorkloadId::Spmv, ExtraWorkloadId::Fft, ExtraWorkloadId::Bfs};
  return Ids;
}

namespace {

/// Object lists per workload. Sizes derive from Elements at build time;
/// names are static strings (DataObjectSpec holds const char*).
std::vector<DataObjectSpec> objectsFor(ExtraWorkloadId Id,
                                       uint64_t Elements) {
  const uint64_t Bytes = Elements * 4;
  switch (Id) {
  case ExtraWorkloadId::StreamTriad:
    return {{"b", Bytes, TransferDir::HostToDevice},
            {"c", Bytes, TransferDir::HostToDevice},
            {"a", Bytes, TransferDir::DeviceToHost}};
  case ExtraWorkloadId::Histogram:
    return {{"input", Bytes, TransferDir::HostToDevice},
            {"bins", 256 * 4, TransferDir::DeviceToHost}};
  case ExtraWorkloadId::Spmv:
    // nnz values + column indices + the dense vector in; y out.
    return {{"vals", Bytes, TransferDir::HostToDevice},
            {"cols", Bytes, TransferDir::HostToDevice},
            {"x", Bytes / 4, TransferDir::HostToDevice},
            {"y", Bytes / 8, TransferDir::DeviceToHost}};
  case ExtraWorkloadId::Fft:
    // Complex samples in place (in->out buffers) + twiddle table.
    return {{"samples", Bytes * 2, TransferDir::HostToDevice},
            {"twiddles", 4096, TransferDir::HostToDevice},
            {"spectrum", Bytes * 2, TransferDir::DeviceToHost}};
  case ExtraWorkloadId::Bfs:
    // CSR adjacency (offsets+edges), frontier in, distances out.
    return {{"offsets", Bytes / 4, TransferDir::HostToDevice},
            {"edges", Bytes, TransferDir::HostToDevice},
            {"dist", Bytes / 4, TransferDir::DeviceToHost}};
  }
  hetsim_unreachable("invalid extra workload");
}

/// CPU-side compute trace for one workload over its element half.
TraceBuffer cpuTrace(ExtraWorkloadId Id, const KernelDataLayout &Layout,
                     uint64_t Elements, uint64_t Seed) {
  TraceBuffer Trace;
  XorShiftRng Rng(Seed);
  const uint32_t Pc = 0xA00000 + uint32_t(Id) * 0x10000;
  switch (Id) {
  case ExtraWorkloadId::StreamTriad: {
    StreamCursor B = KernelTraceGenerator::cursorFor(Layout.segment("b"),
                                                     WorkSplit::FirstHalf);
    StreamCursor C = KernelTraceGenerator::cursorFor(Layout.segment("c"),
                                                     WorkSplit::FirstHalf);
    StreamCursor A = KernelTraceGenerator::cursorFor(Layout.segment("a"),
                                                     WorkSplit::FirstHalf);
    for (uint64_t I = 0; I != Elements; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitLoad(Pc + 0, V, B.advance(4), 4);
      Trace.emitLoad(Pc + 4, uint8_t(V + 1), C.advance(4), 4);
      Trace.emitAlu(Opcode::FpMac, Pc + 8, uint8_t(V + 2), V,
                    uint8_t(V + 1));
      Trace.emitStore(Pc + 12, uint8_t(V + 2), A.advance(4), 4);
      Trace.emitBranch(Pc + 16, true, 0);
    }
    break;
  }
  case ExtraWorkloadId::Histogram: {
    StreamCursor In = KernelTraceGenerator::cursorFor(
        Layout.segment("input"), WorkSplit::FirstHalf);
    const DataSegment &Bins = Layout.segment("bins");
    for (uint64_t I = 0; I != Elements; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitLoad(Pc + 0, V, In.advance(4), 4);
      // Data-dependent bin: read-modify-write of a hot 1KB table.
      Addr Bin = Bins.Base + Rng.nextBelow(256) * 4;
      Trace.emitLoad(Pc + 4, uint8_t(V + 1), Bin, 4, V);
      Trace.emitAlu(Opcode::IntAlu, Pc + 8, uint8_t(V + 1), uint8_t(V + 1));
      Trace.emitStore(Pc + 12, uint8_t(V + 1), Bin, 4);
      Trace.emitBranch(Pc + 16, true, 0);
    }
    break;
  }
  case ExtraWorkloadId::Spmv: {
    StreamCursor Vals = KernelTraceGenerator::cursorFor(
        Layout.segment("vals"), WorkSplit::FirstHalf);
    StreamCursor Cols = KernelTraceGenerator::cursorFor(
        Layout.segment("cols"), WorkSplit::FirstHalf);
    const DataSegment &X = Layout.segment("x");
    StreamCursor Y = KernelTraceGenerator::cursorFor(Layout.segment("y"),
                                                     WorkSplit::FirstHalf);
    for (uint64_t I = 0; I != Elements; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitLoad(Pc + 0, V, Vals.advance(4), 4);
      Trace.emitLoad(Pc + 4, uint8_t(V + 1), Cols.advance(4), 4);
      // Irregular gather of x[col].
      Addr Gather = X.Base + alignDown(Rng.nextBelow(X.Bytes), 4);
      Trace.emitLoad(Pc + 8, uint8_t(V + 2), Gather, 4, uint8_t(V + 1));
      Trace.emitAlu(Opcode::FpMac, Pc + 12, 7, V, uint8_t(V + 2));
      if (I % 8 == 7) {
        Trace.emitStore(Pc + 16, 7, Y.advance(4), 4);
        Trace.emitBranch(Pc + 20, true, 0);
      }
    }
    break;
  }
  case ExtraWorkloadId::Fft: {
    const DataSegment &Samples = Layout.segment("samples");
    const DataSegment &Twiddles = Layout.segment("twiddles");
    StreamCursor Out = KernelTraceGenerator::cursorFor(
        Layout.segment("spectrum"), WorkSplit::FirstHalf);
    // Butterfly passes: the stride doubles each stage, so late stages
    // touch a new line on every load (cache-hostile); the twiddle table
    // stays resident.
    uint64_t Half = Samples.Bytes / 2;
    uint64_t Stride = 8;
    uint64_t Pos = 0;
    for (uint64_t I = 0; I != Elements; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Addr Even = Samples.Base + Pos;
      Addr Odd = Samples.Base + ((Pos + Stride) % Half);
      Trace.emitLoad(Pc + 0, V, Even, 8);
      Trace.emitLoad(Pc + 4, uint8_t(V + 1), Odd, 8);
      Trace.emitLoad(Pc + 8, uint8_t(V + 2),
                     Twiddles.Base + (I % 512) * 8, 8);
      Trace.emitAlu(Opcode::FpMul, Pc + 12, uint8_t(V + 3), uint8_t(V + 1),
                    uint8_t(V + 2));
      Trace.emitAlu(Opcode::FpAlu, Pc + 16, uint8_t(V + 3), V,
                    uint8_t(V + 3));
      Trace.emitStore(Pc + 20, uint8_t(V + 3), Out.advance(8), 8);
      Trace.emitBranch(Pc + 24, true, 0);
      Pos += 16;
      if (Pos >= Half) {
        Pos = 0;
        Stride = Stride >= Half / 2 ? 8 : Stride * 2; // Next stage.
      }
    }
    break;
  }
  case ExtraWorkloadId::Bfs: {
    StreamCursor Offsets = KernelTraceGenerator::cursorFor(
        Layout.segment("offsets"), WorkSplit::FirstHalf);
    const DataSegment &Edges = Layout.segment("edges");
    const DataSegment &Dist = Layout.segment("dist");
    for (uint64_t I = 0; I != Elements; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitLoad(Pc + 0, V, Offsets.advance(4), 4);
      // Random neighbor gather through the edge list.
      Addr Edge = Edges.Base + alignDown(Rng.nextBelow(Edges.Bytes), 4);
      Trace.emitLoad(Pc + 4, uint8_t(V + 1), Edge, 4, V);
      // Visited check on dist[neighbor]: data-dependent branch.
      Addr Visited = Dist.Base + alignDown(Rng.nextBelow(Dist.Bytes), 4);
      Trace.emitLoad(Pc + 8, uint8_t(V + 2), Visited, 4, uint8_t(V + 1));
      Trace.emitBranch(Pc + 12, Rng.nextBool(0.4), uint8_t(V + 2));
      if (I % 3 == 0)
        Trace.emitStore(Pc + 16, uint8_t(V + 2), Visited, 4);
      Trace.emitAlu(Opcode::IntAlu, Pc + 20, 0, 0);
      Trace.emitBranch(Pc + 24, true, 0);
    }
    break;
  }
  }
  return Trace;
}

/// GPU-side warp trace (8-wide) over the other half.
TraceBuffer gpuTrace(ExtraWorkloadId Id, const KernelDataLayout &Layout,
                     uint64_t Elements, uint64_t Seed) {
  TraceBuffer Trace;
  XorShiftRng Rng(Seed * 7 + 3);
  const uint32_t Pc = 0xB00000 + uint32_t(Id) * 0x10000;
  const uint64_t Warps = Elements / 8;
  switch (Id) {
  case ExtraWorkloadId::StreamTriad: {
    StreamCursor B = KernelTraceGenerator::cursorFor(Layout.segment("b"),
                                                     WorkSplit::SecondHalf);
    StreamCursor C = KernelTraceGenerator::cursorFor(Layout.segment("c"),
                                                     WorkSplit::SecondHalf);
    StreamCursor A = KernelTraceGenerator::cursorFor(Layout.segment("a"),
                                                     WorkSplit::SecondHalf);
    for (uint64_t I = 0; I != Warps; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitSimdLoad(Pc + 0, V, B.advance(32), 4, 8, 4);
      Trace.emitSimdLoad(Pc + 4, uint8_t(V + 1), C.advance(32), 4, 8, 4);
      Trace.emitAlu(Opcode::FpMac, Pc + 8, uint8_t(V + 2), V,
                    uint8_t(V + 1));
      Trace.emitSimdStore(Pc + 12, uint8_t(V + 2), A.advance(32), 4, 8, 4);
      Trace.emitBranch(Pc + 16, true, 0);
    }
    break;
  }
  case ExtraWorkloadId::Histogram: {
    StreamCursor In = KernelTraceGenerator::cursorFor(
        Layout.segment("input"), WorkSplit::SecondHalf);
    const DataSegment &Bins = Layout.segment("bins");
    for (uint64_t I = 0; I != Warps; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitSimdLoad(Pc + 0, V, In.advance(32), 4, 8, 4);
      // Scattered atomic-style bin updates: one lane-scattered access.
      Addr Bin = Bins.Base + Rng.nextBelow(32) * 4;
      Trace.emitSimdLoad(Pc + 4, uint8_t(V + 1), Bin, 4, 8, 28);
      Trace.emitAlu(Opcode::IntAlu, Pc + 8, uint8_t(V + 1), uint8_t(V + 1));
      Trace.emitSimdStore(Pc + 12, uint8_t(V + 1), Bin, 4, 8, 28);
      Trace.emitBranch(Pc + 16, true, 0);
    }
    break;
  }
  case ExtraWorkloadId::Spmv: {
    StreamCursor Vals = KernelTraceGenerator::cursorFor(
        Layout.segment("vals"), WorkSplit::SecondHalf);
    const DataSegment &X = Layout.segment("x");
    StreamCursor Y = KernelTraceGenerator::cursorFor(Layout.segment("y"),
                                                     WorkSplit::SecondHalf);
    for (uint64_t I = 0; I != Warps; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitSimdLoad(Pc + 0, V, Vals.advance(32), 4, 8, 4);
      // Divergent gathers: wide lane stride defeats coalescing.
      Addr Gather = X.Base + alignDown(Rng.nextBelow(X.Bytes / 2), 4);
      Trace.emitSimdLoad(Pc + 4, uint8_t(V + 1), Gather, 4, 8, 512);
      Trace.emitAlu(Opcode::FpMac, Pc + 8, 7, V, uint8_t(V + 1));
      if (I % 8 == 7)
        Trace.emitSimdStore(Pc + 12, 7, Y.advance(32), 4, 8, 4);
      Trace.emitBranch(Pc + 16, true, 0);
    }
    break;
  }
  case ExtraWorkloadId::Fft: {
    const DataSegment &Samples = Layout.segment("samples");
    const DataSegment &Twiddles = Layout.segment("twiddles");
    StreamCursor Out = KernelTraceGenerator::cursorFor(
        Layout.segment("spectrum"), WorkSplit::SecondHalf);
    uint64_t Half = Samples.Bytes / 2;
    uint64_t Stride = 64;
    uint64_t Pos = Half; // GPU works the upper half.
    for (uint64_t I = 0; I != Warps; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Addr Even = Samples.Base + Pos;
      Addr Odd = Samples.Base + Half + ((Pos - Half + Stride) % Half);
      Trace.emitSimdLoad(Pc + 0, V, Even, 8, 8, 8);
      Trace.emitSimdLoad(Pc + 4, uint8_t(V + 1), Odd, 8, 8, 8);
      Trace.emitLoad(Pc + 8, uint8_t(V + 2),
                     Twiddles.Base + (I % 512) * 8, 8);
      Trace.emitAlu(Opcode::FpMul, Pc + 12, uint8_t(V + 3), uint8_t(V + 1),
                    uint8_t(V + 2));
      Trace.emitAlu(Opcode::FpAlu, Pc + 16, uint8_t(V + 3), V,
                    uint8_t(V + 3));
      Trace.emitSimdStore(Pc + 20, uint8_t(V + 3), Out.advance(64), 8, 8, 8);
      Trace.emitBranch(Pc + 24, true, 0);
      Pos += 128;
      if (Pos >= Samples.Bytes) {
        Pos = Half;
        Stride = Stride >= Half / 2 ? 64 : Stride * 2;
      }
    }
    break;
  }
  case ExtraWorkloadId::Bfs: {
    StreamCursor Offsets = KernelTraceGenerator::cursorFor(
        Layout.segment("offsets"), WorkSplit::SecondHalf);
    const DataSegment &Edges = Layout.segment("edges");
    const DataSegment &Dist = Layout.segment("dist");
    for (uint64_t I = 0; I != Warps; ++I) {
      uint8_t V = uint8_t(8 + I % 20);
      Trace.emitSimdLoad(Pc + 0, V, Offsets.advance(32), 4, 8, 4);
      // Divergent gathers: wide lane stride models per-lane neighbors.
      Addr Edge = Edges.Base + alignDown(Rng.nextBelow(Edges.Bytes / 2), 4);
      Trace.emitSimdLoad(Pc + 4, uint8_t(V + 1), Edge, 4, 8, 256);
      Addr Visited = Dist.Base + alignDown(Rng.nextBelow(Dist.Bytes / 2), 4);
      Trace.emitSimdLoad(Pc + 8, uint8_t(V + 2), Visited, 4, 8, 128);
      // Divergent visited-check branch.
      Trace.emitBranch(Pc + 12, Rng.nextBool(0.4), uint8_t(V + 2));
      if (I % 3 == 0)
        Trace.emitSimdStore(Pc + 16, uint8_t(V + 2), Visited, 4, 8, 128);
      Trace.emitAlu(Opcode::IntAlu, Pc + 20, 0, 0);
      Trace.emitBranch(Pc + 24, true, 0);
    }
    break;
  }
  }
  return Trace;
}

uint64_t sumBytes(const std::vector<DataObjectSpec> &Objects,
                  TransferDir Dir) {
  uint64_t Bytes = 0;
  for (const DataObjectSpec &Spec : Objects)
    if (Spec.Dir == Dir)
      Bytes += Spec.Bytes;
  return Bytes;
}

std::vector<std::string> names(const std::vector<DataObjectSpec> &Objects,
                               TransferDir Dir) {
  std::vector<std::string> Names;
  for (const DataObjectSpec &Spec : Objects)
    if (Spec.Dir == Dir)
      Names.push_back(Spec.Name);
  return Names;
}

} // namespace

LoweredProgram hetsim::buildExtraWorkload(ExtraWorkloadId Id,
                                          const SystemConfig &Config,
                                          uint64_t Elements) {
  if (Elements < 64)
    fatalError("extra workload needs at least 64 elements");

  std::vector<DataObjectSpec> Objects = objectsFor(Id, Elements);
  LoweredProgram Program;
  Program.Place =
      AddressSpaceModel::forKind(Config.AddrSpace).placeObjects(Objects);

  const bool NeedsCopies =
      AddressSpaceModel::forKind(Config.AddrSpace).needsExplicitTransfer();

  if (NeedsCopies && !Config.IdealComm) {
    ExecStep In;
    In.Kind = ExecKind::Transfer;
    In.Dir = TransferDir::HostToDevice;
    In.Objects = names(Objects, TransferDir::HostToDevice);
    In.Bytes = sumBytes(Objects, TransferDir::HostToDevice);
    In.Async = Config.AsyncCopies;
    Program.Steps.push_back(std::move(In));
  }

  ExecStep Compute;
  Compute.Kind = ExecKind::ParallelCompute;
  Compute.CpuTrace =
      cpuTrace(Id, Program.Place.CpuLayout, Elements / 2, Elements);
  Compute.GpuTrace =
      gpuTrace(Id, Program.Place.GpuLayout, Elements - Elements / 2,
               Elements);
  Program.Steps.push_back(std::move(Compute));

  if (NeedsCopies && !Config.IdealComm) {
    ExecStep OutStep;
    OutStep.Kind = ExecKind::Transfer;
    OutStep.Dir = TransferDir::DeviceToHost;
    OutStep.Objects = names(Objects, TransferDir::DeviceToHost);
    OutStep.Bytes = sumBytes(Objects, TransferDir::DeviceToHost);
    OutStep.Async = Config.AsyncCopies;
    Program.Steps.push_back(std::move(OutStep));
  }
  if (Config.AsyncCopies) {
    ExecStep Wait;
    Wait.Kind = ExecKind::DmaWait;
    Program.Steps.push_back(std::move(Wait));
  }

  // A short sequential finish over the outputs (reduce/verify pass).
  ExecStep Finish;
  Finish.Kind = ExecKind::SerialCompute;
  const KernelTraceGenerator &AnyGen =
      KernelTraceGenerator::forKernel(KernelId::Reduction);
  (void)AnyGen;
  {
    TraceBuffer Serial;
    const DataSegment &Out = Program.Place.CpuLayout.segments().back();
    StreamCursor Cursor =
        KernelTraceGenerator::cursorFor(Out, WorkSplit::FullRange);
    const uint32_t Pc = 0xC00000;
    uint64_t SerialOps = std::min<uint64_t>(Elements / 4, 16384);
    for (uint64_t I = 0; I != SerialOps; ++I) {
      Serial.emitLoad(Pc, 8, Cursor.advance(4), 4);
      Serial.emitAlu(Opcode::FpAlu, Pc + 4, 7, 7, 8);
      Serial.emitBranch(Pc + 8, true, 0);
    }
    Finish.CpuTrace = std::move(Serial);
  }
  Program.Steps.push_back(std::move(Finish));
  return Program;
}
