//===- core/ResultStore.cpp -----------------------------------------------===//

#include "core/ResultStore.h"

#include "common/Log.h"
#include "trace/ComputeBlock.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unistd.h>

using namespace hetsim;

namespace {

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

/// FNV-1a folding helper. Every field is widened to a fixed 8-byte word
/// before hashing, so the fingerprint is independent of struct padding
/// and field widths and only ever changes when a value (or the explicit
/// enumeration order below) does.
class Fingerprint {
public:
  Fingerprint &word(uint64_t Value) {
    for (unsigned I = 0; I != 8; ++I) {
      Hash ^= (Value >> (8 * I)) & 0xffu;
      Hash *= 1099511628211ull;
    }
    return *this;
  }

  Fingerprint &real(double Value) {
    uint64_t Bits = 0;
    static_assert(sizeof(Bits) == sizeof(Value));
    std::memcpy(&Bits, &Value, sizeof(Bits));
    return word(Bits);
  }

  Fingerprint &text(const std::string &Value) {
    word(Value.size());
    for (char C : Value) {
      Hash ^= static_cast<unsigned char>(C);
      Hash *= 1099511628211ull;
    }
    return *this;
  }

  template <typename E> Fingerprint &kind(E Value) {
    return word(static_cast<uint64_t>(Value));
  }

  uint64_t take() const { return Hash; }

private:
  uint64_t Hash = 14695981039346656037ull;
};

void foldCache(Fingerprint &F, const CacheConfig &C) {
  F.text(C.Name)
      .word(C.SizeBytes)
      .word(C.Ways)
      .word(C.LineBytes)
      .word(C.HitLatency)
      .kind(C.Replacement)
      .word(C.MaxExplicitWays);
}

void foldTrace(Fingerprint &F, const SharedTrace &Trace) {
  if (const BlockTrace *Block = Trace.blocks()) {
    F.kind(Block->kind()).word(Block->totalRecords());
    if (Block->kind() == BlockTrace::Kind::Pattern) {
      const PatternBlock &P = Block->pattern();
      F.word(P.BodyRepeats);
      for (const TraceBuffer *Part : {&P.Prologue, &P.Body, &P.Epilogue}) {
        F.word(Part->size());
        for (const TraceRecord &R : *Part)
          F.word(R.MemAddr)
              .word(R.Pc)
              .word(R.MemBytes)
              .word(R.LaneStrideBytes)
              .kind(R.Op)
              .word(R.DstReg)
              .word(R.SrcRegA)
              .word(R.SrcRegB)
              .word(R.SimdLanes)
              .word(R.IsTaken ? 1 : 0);
      }
      return;
    }
    // Generator-backed block: the recipe determines the stream exactly
    // (that is the fast path's correctness contract), so hash the
    // generator inputs instead of expanding millions of records.
    const GenRequest &Req = Block->request();
    F.kind(Req.Pu)
        .kind(Req.Split)
        .word(Req.InstCount)
        .word(Req.Seed)
        .word(Block->layout().fingerprint());
    return;
  }
  // Materialized handle (fast path off): hash the records themselves.
  const TraceBuffer &Buffer = Trace.buffer();
  F.word(uint64_t(0xb0f)).word(Buffer.size());
  for (const TraceRecord &R : Buffer)
    F.word(R.MemAddr)
        .word(R.Pc)
        .word(R.MemBytes)
        .word(R.LaneStrideBytes)
        .kind(R.Op)
        .word(R.DstReg)
        .word(R.SrcRegA)
        .word(R.SrcRegB)
        .word(R.SimdLanes)
        .word(R.IsTaken ? 1 : 0);
}

//===----------------------------------------------------------------------===//
// Entry serialization
//===----------------------------------------------------------------------===//

void writeSegment(std::FILE *File, const char *Tag, const SegmentResult &S) {
  std::fprintf(File,
               "%s %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
               " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
               "\n",
               Tag, S.Cycles, S.Insts, S.MemAccesses, S.MemLatencySum,
               S.MemLatencyMax, S.BranchMispredicts, S.ICacheMisses,
               S.StoreForwards, S.PageFaults, S.PageFaultCycles);
}

bool readSegment(std::FILE *File, const char *Tag, SegmentResult &S) {
  char Expect[16];
  std::snprintf(Expect, sizeof(Expect), "%s", Tag);
  char Got[16];
  if (std::fscanf(File, "%15s", Got) != 1 || std::strcmp(Got, Expect) != 0)
    return false;
  return std::fscanf(File,
                     "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                     " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                     " %" SCNu64 " %" SCNu64,
                     &S.Cycles, &S.Insts, &S.MemAccesses, &S.MemLatencySum,
                     &S.MemLatencyMax, &S.BranchMispredicts, &S.ICacheMisses,
                     &S.StoreForwards, &S.PageFaults,
                     &S.PageFaultCycles) == 10;
}

} // namespace

uint64_t hetsim::hashSystemConfig(const SystemConfig &Config) {
  Fingerprint F;
  F.text(Config.Name)
      .kind(Config.AddrSpace)
      .kind(Config.Connection)
      .kind(Config.Locality.CpuPrivate)
      .kind(Config.Locality.GpuPrivate)
      .kind(Config.Locality.Shared)
      .word(Config.AsyncCopies ? 1 : 0)
      .word(Config.UseOwnership ? 1 : 0)
      .word(Config.FirstTouchFaults ? 1 : 0)
      .word(Config.IdealComm ? 1 : 0)
      .word(Config.InterleavedContention ? 1 : 0)
      .word(Config.ContentionSliceRecords)
      .real(Config.CpuWorkFraction);

  const CpuConfig &Cpu = Config.Cpu;
  F.word(Cpu.FetchWidth)
      .word(Cpu.IssueWidth)
      .word(Cpu.RetireWidth)
      .word(Cpu.RobEntries)
      .word(Cpu.MispredictPenalty)
      .word(Cpu.GshareTableBits)
      .word(Cpu.ModelInstructionFetch ? 1 : 0)
      .word(Cpu.L1IMissPenalty)
      .word(Cpu.EnableStoreForwarding ? 1 : 0);

  const GpuConfig &Gpu = Config.Gpu;
  F.word(Gpu.IssueWidth)
      .word(Gpu.BranchStall)
      .word(Gpu.DivergentBranchFactor)
      .word(Gpu.MaxPendingLoads)
      .word(Gpu.NumWarps)
      .word(Gpu.WarpChunkRecords);

  const MemHierConfig &Hier = Config.Hier;
  foldCache(F, Hier.CpuL1);
  foldCache(F, Hier.CpuL2);
  foldCache(F, Hier.GpuL1);
  foldCache(F, Hier.L3);
  F.word(Hier.Dram.Channels)
      .word(Hier.Dram.BanksPerChannel)
      .word(Hier.Dram.RowBytes)
      .word(Hier.Dram.RowHitLatency)
      .word(Hier.Dram.RowMissLatency)
      .word(Hier.Dram.BusCyclesPerLine)
      .word(Hier.Dram.MaxQueueDelay)
      .word(Hier.Dram.ClosedPage ? 1 : 0)
      .word(Hier.Ring.NumStops)
      .word(Hier.Ring.HopLatency)
      .word(Hier.Ring.InjectOccupancy)
      .word(Hier.Ring.MaxQueueDelay)
      .word(Hier.UseMeshNoc ? 1 : 0)
      .word(Hier.Mesh.Width)
      .word(Hier.Mesh.Height)
      .word(Hier.Mesh.HopLatency)
      .word(Hier.Mesh.InjectOccupancy)
      .word(Hier.Mesh.MaxQueueDelay)
      .word(Hier.EnableL3 ? 1 : 0)
      .word(Hier.GpuSharesL3 ? 1 : 0)
      .word(Hier.SeparateGpuDram ? 1 : 0)
      .word(Hier.HwCoherence ? 1 : 0)
      .word(Hier.TlbMissPenalty)
      .word(Hier.CpuTlbEntries)
      .word(Hier.GpuTlbEntries)
      .word(Hier.TlbWays)
      .word(Hier.CpuPageBytes)
      .word(Hier.GpuPageBytes)
      .word(Hier.CpuMshrs)
      .word(Hier.GpuMshrs)
      .word(Hier.ScratchpadBytes)
      .word(Hier.ScratchpadLatency)
      .word(Hier.DeviceBytes)
      .word(Hier.EnableL2Prefetch ? 1 : 0)
      .word(Hier.Prefetch.NumStreams)
      .word(Hier.Prefetch.Degree)
      .word(Hier.Prefetch.MinConfidence)
      .word(Hier.Prefetch.MatchWindowBytes);

  const CommParams &Comm = Config.Comm;
  F.word(Comm.ApiPciBase)
      .real(Comm.PciBytesPerSec)
      .word(Comm.ApiAcquire)
      .word(Comm.ApiTransfer)
      .word(Comm.LibPageFault)
      .word(Comm.AsyncIssueOverhead)
      .word(Comm.PinnedHostMemory ? 1 : 0)
      .real(Comm.PageableRateFactor)
      .word(Comm.PageableStagingOverhead);

  return F.take();
}

uint64_t hetsim::hashLoweredTraces(const LoweredProgram &Program) {
  Fingerprint F;
  F.kind(Program.Kernel).word(Program.Steps.size());
  for (const ExecStep &Step : Program.Steps) {
    F.kind(Step.Kind)
        .word(Step.Bytes)
        .kind(Step.Dir)
        .word(Step.Async ? 1 : 0)
        .word(Step.PageFaultPages)
        .word(Step.Round)
        .word(Step.Objects.size());
    for (const std::string &Object : Step.Objects)
      F.text(Object);
    foldTrace(F, Step.CpuTrace);
    foldTrace(F, Step.GpuTrace);
  }
  return F.take();
}

//===----------------------------------------------------------------------===//
// ResultStore
//===----------------------------------------------------------------------===//

ResultStore::ResultStore(std::string Dir) : Root(std::move(Dir)) {}

ResultStore ResultStore::fromEnvironment() {
  const char *Env = std::getenv("HETSIM_RESULT_STORE");
  return ResultStore(Env ? Env : "");
}

ResultStore::Key ResultStore::keyFor(const SystemConfig &Config,
                                     const LoweredProgram &Program) {
  Key K;
  K.ConfigHash = hashSystemConfig(Config);
  K.TraceHash = hashLoweredTraces(Program);
  K.CodeVersion = ResultStoreCodeVersion;
  return K;
}

std::string ResultStore::entryPath(const Key &K) const {
  char Name[80];
  std::snprintf(Name, sizeof(Name),
                "%016" PRIx64 "-%016" PRIx64 "-%" PRIu64 ".result",
                K.ConfigHash, K.TraceHash, K.CodeVersion);
  return Root + "/" + Name;
}

bool ResultStore::load(const Key &K, Entry &Out) const {
  if (!enabled())
    return false;
  std::FILE *File = std::fopen(entryPath(K).c_str(), "r");
  if (!File) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool Ok = [&] {
    char Magic[32];
    if (std::fscanf(File, "%31s", Magic) != 1 ||
        std::strcmp(Magic, "hetsim-result-v1") != 0)
      return false;
    uint64_t Cfg = 0, Trace = 0, Version = 0;
    char Tag[16];
    if (std::fscanf(File, "%15s %" SCNx64 " %" SCNx64 " %" SCNu64, Tag,
                    &Cfg, &Trace, &Version) != 4 ||
        std::strcmp(Tag, "key") != 0 || Cfg != K.ConfigHash ||
        Trace != K.TraceHash || Version != K.CodeVersion)
      return false;

    RunResult &R = Out.Result;
    R = RunResult();
    if (std::fscanf(File, "%15s %la %la %la", Tag, &R.Time.SequentialNs,
                    &R.Time.ParallelNs, &R.Time.CommunicationNs) != 4 ||
        std::strcmp(Tag, "time") != 0)
      return false;
    if (std::fscanf(File, "%15s", Tag) != 1 ||
        std::strcmp(Tag, "phases") != 0)
      return false;
    for (double &Ns : R.Phases.Ns)
      if (std::fscanf(File, "%la", &Ns) != 1)
        return false;
    if (!readSegment(File, "cpu", R.CpuTotal) ||
        !readSegment(File, "gpu", R.GpuTotal))
      return false;
    unsigned long long Lines = 0;
    if (std::fscanf(File,
                    "%15s %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64,
                    Tag, &R.TransferredBytes, &R.TransferCount,
                    &R.PageFaults, &R.OwnershipActions) != 5 ||
        std::strcmp(Tag, "xfer") != 0)
      return false;
    if (std::fscanf(File, "%15s %la", Tag, &R.PushNs) != 2 ||
        std::strcmp(Tag, "push") != 0)
      return false;
    if (std::fscanf(File, "%15s %llu", Tag, &Lines) != 2 ||
        std::strcmp(Tag, "commlines") != 0)
      return false;
    R.CommSourceLines = static_cast<unsigned>(Lines);

    unsigned long long Count = 0;
    if (std::fscanf(File, "%15s %llu", Tag, &Count) != 2 ||
        std::strcmp(Tag, "metrics") != 0)
      return false;
    Out.Metrics = MetricsSnapshot();
    char Name[256];
    for (unsigned long long I = 0; I != Count; ++I) {
      double Value = 0;
      if (std::fscanf(File, "%15s %255s %la", Tag, Name, &Value) != 3 ||
          std::strcmp(Tag, "m") != 0)
        return false;
      Out.Metrics.add(Name, Value);
    }
    if (std::fscanf(File, "%15s", Tag) != 1 || std::strcmp(Tag, "end") != 0)
      return false;
    return true;
  }();

  std::fclose(File);
  (Ok ? Hits : Misses).fetch_add(1, std::memory_order_relaxed);
  return Ok;
}

bool ResultStore::save(const Key &K, const Entry &E) const {
  if (!enabled())
    return false;

  std::error_code Ec;
  std::filesystem::create_directories(Root, Ec);

  // Unique temp name per writer so concurrent workers (or processes)
  // never interleave into the same file; rename() then publishes the
  // complete entry atomically.
  static std::atomic<uint64_t> TempCounter{0};
  std::string Final = entryPath(K);
  char Suffix[48];
  std::snprintf(Suffix, sizeof(Suffix), ".tmp.%ld.%" PRIu64,
                static_cast<long>(::getpid()),
                TempCounter.fetch_add(1, std::memory_order_relaxed));
  std::string Temp = Final + Suffix;

  std::FILE *File = std::fopen(Temp.c_str(), "w");
  if (!File) {
    HETSIM_WARN("result store: cannot write %s", Temp.c_str());
    return false;
  }

  const RunResult &R = E.Result;
  std::fprintf(File, "hetsim-result-v1\n");
  std::fprintf(File, "key %016" PRIx64 " %016" PRIx64 " %" PRIu64 "\n",
               K.ConfigHash, K.TraceHash, K.CodeVersion);
  // Hex-float (%a) round-trips doubles exactly: a loaded entry is
  // bit-identical to the freshly simulated one.
  std::fprintf(File, "time %a %a %a\n", R.Time.SequentialNs,
               R.Time.ParallelNs, R.Time.CommunicationNs);
  std::fprintf(File, "phases");
  for (double Ns : R.Phases.Ns)
    std::fprintf(File, " %a", Ns);
  std::fprintf(File, "\n");
  writeSegment(File, "cpu", R.CpuTotal);
  writeSegment(File, "gpu", R.GpuTotal);
  std::fprintf(File, "xfer %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
               R.TransferredBytes, R.TransferCount, R.PageFaults,
               R.OwnershipActions);
  std::fprintf(File, "push %a\n", R.PushNs);
  std::fprintf(File, "commlines %u\n", R.CommSourceLines);
  std::fprintf(File, "metrics %zu\n", E.Metrics.size());
  for (const auto &[Name, Value] : E.Metrics.values())
    std::fprintf(File, "m %s %a\n", Name.c_str(), Value);
  std::fprintf(File, "end\n");

  bool WriteOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!WriteOk) {
    std::remove(Temp.c_str());
    return false;
  }

  std::filesystem::rename(Temp, Final, Ec);
  if (Ec) {
    HETSIM_WARN("result store: cannot publish %s", Final.c_str());
    std::remove(Temp.c_str());
    return false;
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
  return true;
}
