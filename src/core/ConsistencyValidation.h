//===- core/ConsistencyValidation.h - Lowered-program races ----*- C++ -*-===//
///
/// \file
/// Replays a lowered program as a synchronization history and checks it
/// against a consistency model (Table I's consistency column). All the
/// evaluated systems are weakly consistent: cross-PU visibility is only
/// guaranteed through the synchronization the lowering inserted (kernel
/// launch/join, ownership transfers, runtime copies). A lowering bug
/// that, say, dropped the join after a GPU round would show up here as a
/// data race, not as a silently wrong timing number.
///
/// Compute accesses are modeled at split-object granularity: each data
/// object contributes a ".cpu" and ".gpu" sub-object matching the work
/// split, so the two PUs writing their own halves does not alias.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_CONSISTENCYVALIDATION_H
#define HETSIM_CORE_CONSISTENCYVALIDATION_H

#include "core/Lowering.h"
#include "memory/ConsistencyChecker.h"

namespace hetsim {

/// Replays \p Program into a checker under \p Model.
ConsistencyChecker buildSyncHistory(const LoweredProgram &Program,
                                    ConsistencyModel Model);

/// True if \p Program has no cross-PU races under \p Model.
bool validateRaceFree(const LoweredProgram &Program,
                      ConsistencyModel Model = ConsistencyModel::Weak);

} // namespace hetsim

#endif // HETSIM_CORE_CONSISTENCYVALIDATION_H
