//===- core/ConsistencyValidation.h - Lowered-program races ----*- C++ -*-===//
///
/// \file
/// Replays lowered programs as synchronization histories and checks them
/// against a consistency model (Table I's consistency column). All the
/// evaluated systems are weakly consistent: cross-PU visibility is only
/// guaranteed through the synchronization the lowering inserted (kernel
/// launch/join, ownership transfers, runtime copies). A lowering bug
/// that, say, dropped the join after a GPU round would show up here as a
/// data race, not as a silently wrong timing number.
///
/// Compute accesses are modeled at split-object granularity: each data
/// object contributes a ".cpu" and ".gpu" sub-object matching the work
/// split, so the two PUs writing their own halves does not alias.
///
/// Co-run workloads replay through the same event emission: a
/// CorunSchedule fixes one interleaving of the agents' driver steps, the
/// events carry co-run-qualified object names (CorunProgram::objectName),
/// and the differential fuzzer explores many schedules per workload —
/// the static verifier must be clean only if every explored schedule
/// replays race-free.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_CONSISTENCYVALIDATION_H
#define HETSIM_CORE_CONSISTENCYVALIDATION_H

#include "core/CorunLowering.h"
#include "core/Lowering.h"
#include "memory/ConsistencyChecker.h"

#include <utility>

namespace hetsim {

/// Replays \p Program into a checker under \p Model.
ConsistencyChecker buildSyncHistory(const LoweredProgram &Program,
                                    ConsistencyModel Model);

/// True if \p Program has no cross-PU races under \p Model.
bool validateRaceFree(const LoweredProgram &Program,
                      ConsistencyModel Model = ConsistencyModel::Weak);

/// One interleaved execution order of a co-run: (agent index, step
/// index) pairs, each agent's steps in program order.
using CorunSchedule = std::vector<std::pair<size_t, size_t>>;

/// Builds a deterministic schedule set for \p Corun: each agent run to
/// completion in turn (one per agent rotation start), a round-robin
/// interleaving, and \p RandomCount seeded random merges.
std::vector<CorunSchedule> corunSchedules(const CorunProgram &Corun,
                                          size_t RandomCount, uint64_t Seed);

/// Replays \p Corun in the order \p Schedule into a checker under
/// \p Model, with co-run-qualified object names.
ConsistencyChecker buildCorunSyncHistory(const CorunProgram &Corun,
                                         const CorunSchedule &Schedule,
                                         ConsistencyModel Model);

/// True if every schedule from corunSchedules(Corun, RandomSchedules,
/// Seed) replays race-free under \p Model.
bool validateCorunRaceFree(const CorunProgram &Corun,
                           ConsistencyModel Model = ConsistencyModel::Weak,
                           size_t RandomSchedules = 4, uint64_t Seed = 1);

} // namespace hetsim

#endif // HETSIM_CORE_CONSISTENCYVALIDATION_H
