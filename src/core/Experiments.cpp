//===- core/Experiments.cpp -----------------------------------------------===//

#include "core/Experiments.h"

#include "common/Log.h"
#include "common/StringUtil.h"
#include "common/Units.h"
#include "core/SystemDescriptor.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace hetsim;

namespace {
/// Fans a (system x kernel) grid out over the sweep engine and zips the
/// results back into presentation-ordered rows.
std::vector<ExperimentRow>
runSystemKernelGrid(const std::vector<SystemConfig> &Systems, unsigned Jobs,
                    SweepTelemetry *Telemetry) {
  std::vector<SweepPoint> Points;
  Points.reserve(Systems.size() * allKernels().size());
  for (const SystemConfig &Config : Systems)
    for (KernelId Kernel : allKernels())
      Points.emplace_back(Config, Kernel);

  SweepRunner Runner(Jobs);
  std::vector<RunResult> Results = Runner.run(Points);
  if (Telemetry)
    *Telemetry = Runner.telemetry();

  std::vector<ExperimentRow> Rows;
  Rows.reserve(Points.size());
  for (size_t I = 0; I != Points.size(); ++I) {
    ExperimentRow Row;
    Row.System = Points[I].Config.Name;
    Row.Kernel = Points[I].Kernel;
    Row.Result = std::move(Results[I]);
    Rows.push_back(std::move(Row));
  }
  return Rows;
}
} // namespace

std::vector<ExperimentRow>
hetsim::runCaseStudies(const ConfigStore &Overrides, unsigned Jobs,
                       SweepTelemetry *Telemetry) {
  std::vector<SystemConfig> Systems;
  for (CaseStudy Study : allCaseStudies())
    Systems.push_back(SystemConfig::forCaseStudy(Study, Overrides));
  return runSystemKernelGrid(Systems, Jobs, Telemetry);
}

std::vector<ExperimentRow>
hetsim::runAddressSpaceStudy(const ConfigStore &Overrides, unsigned Jobs,
                             SweepTelemetry *Telemetry) {
  static const AddressSpaceKind Kinds[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  std::vector<SystemConfig> Systems;
  for (AddressSpaceKind Kind : Kinds)
    Systems.push_back(SystemConfig::forAddressSpaceStudy(Kind, Overrides));
  return runSystemKernelGrid(Systems, Jobs, Telemetry);
}

namespace {
/// Total time of a reference system per kernel (for normalization).
std::map<KernelId, double>
referenceTotals(const std::vector<ExperimentRow> &Rows,
                const std::string &System) {
  std::map<KernelId, double> Ref;
  for (const ExperimentRow &Row : Rows)
    if (Row.System == System)
      Ref[Row.Kernel] = Row.Result.Time.totalNs();
  return Ref;
}
} // namespace

TextTable hetsim::renderFigure5(const std::vector<ExperimentRow> &Rows) {
  std::map<KernelId, double> Ref = referenceTotals(Rows, "IDEAL-HETERO");
  TextTable Table({"kernel", "system", "seq_us", "par_us", "comm_us",
                   "total_us", "norm_to_ideal", "comm_frac"});
  for (const ExperimentRow &Row : Rows) {
    const TimeBreakdown &T = Row.Result.Time;
    double Norm = 0;
    auto It = Ref.find(Row.Kernel);
    if (It != Ref.end() && It->second > 0)
      Norm = T.totalNs() / It->second;
    Table.addRow({kernelName(Row.Kernel), Row.System,
                  formatDouble(T.SequentialNs / 1e3, 2),
                  formatDouble(T.ParallelNs / 1e3, 2),
                  formatDouble(T.CommunicationNs / 1e3, 2),
                  formatDouble(T.totalNs() / 1e3, 2),
                  Norm == 0 ? "-" : formatDouble(Norm, 3),
                  formatPercent(T.commFraction())});
  }
  return Table;
}

TextTable hetsim::renderFigure6(const std::vector<ExperimentRow> &Rows) {
  TextTable Table({"kernel", "system", "comm_us", "comm_frac",
                   "bytes_moved", "transfers", "page_faults"});
  for (const ExperimentRow &Row : Rows) {
    const RunResult &R = Row.Result;
    Table.addRow({kernelName(Row.Kernel), Row.System,
                  formatDouble(R.Time.CommunicationNs / 1e3, 2),
                  formatPercent(R.Time.commFraction()),
                  formatCount(R.TransferredBytes),
                  std::to_string(R.TransferCount),
                  std::to_string(R.PageFaults)});
  }
  return Table;
}

TextTable hetsim::renderFigure7(const std::vector<ExperimentRow> &Rows) {
  std::map<KernelId, double> Ref = referenceTotals(Rows, "UNI");
  TextTable Table({"kernel", "space", "total_us", "norm_to_uni",
                   "comm_us"});
  for (const ExperimentRow &Row : Rows) {
    const TimeBreakdown &T = Row.Result.Time;
    double Norm = 0;
    auto It = Ref.find(Row.Kernel);
    if (It != Ref.end() && It->second > 0)
      Norm = T.totalNs() / It->second;
    Table.addRow({kernelName(Row.Kernel), Row.System,
                  formatDouble(T.totalNs() / 1e3, 2),
                  Norm == 0 ? "-" : formatDouble(Norm, 4),
                  formatDouble(T.CommunicationNs / 1e3, 3)});
  }
  return Table;
}

bool hetsim::maybeExportCsv(const std::string &Name,
                            const TextTable &Table) {
  const char *Dir = std::getenv("HETSIM_CSV_DIR");
  if (!Dir || Dir[0] == '\0')
    return false;
  std::string Path = std::string(Dir) + "/" + Name + ".csv";
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    HETSIM_WARN("cannot write CSV export to %s", Path.c_str());
    return false;
  }
  std::string Csv = Table.renderCsv();
  std::fwrite(Csv.data(), 1, Csv.size(), File);
  std::fclose(File);
  return true;
}

TextTable hetsim::renderTable1() {
  TextTable Table({"scheme", "address space", "Connection", "coherence",
                   "how to use shared data", "consistency",
                   "synchronization", "Locality"});
  for (const SystemDescriptor &Row : tableOneSurvey())
    Table.addRow({Row.Scheme, addressSpaceName(Row.AddrSpace),
                  connectionName(Row.Connection),
                  coherenceName(Row.Coherence), Row.SharedDataUse,
                  consistencyName(Row.Consistency), Row.Synchronization,
                  Row.Locality});
  return Table;
}

TextTable hetsim::renderTable2(const SystemConfig &Config) {
  const MemHierConfig &H = Config.Hier;
  TextTable Table({"component", "CPU", "GPU"});
  Table.addRow({"# cores", "1", "1"});
  Table.addRow({"Execution engine", "3.5GHz, out-of-order",
                "1.5GHz, in-order, 8-wide SIMD"});
  Table.addRow({"Branch predictor",
                "gshare (" +
                    std::to_string(1u << Config.Cpu.GshareTableBits) +
                    " entries)",
                "N/A (stall on branch)"});
  Table.addRow({"L1 Dcache",
                formatBytes(H.CpuL1.SizeBytes) + " " +
                    std::to_string(H.CpuL1.Ways) + "-way (" +
                    std::to_string(H.CpuL1.HitLatency) + "-cycle)",
                formatBytes(H.GpuL1.SizeBytes) + " " +
                    std::to_string(H.GpuL1.Ways) + "-way (" +
                    std::to_string(H.GpuL1.HitLatency) + "-cycle)"});
  Table.addRow({"s/w managed cache", "-",
                formatBytes(H.ScratchpadBytes) + " (" +
                    std::to_string(H.ScratchpadLatency) + "-cycle)"});
  Table.addRow({"L2", formatBytes(H.CpuL2.SizeBytes) + " " +
                          std::to_string(H.CpuL2.Ways) + "-way (" +
                          std::to_string(H.CpuL2.HitLatency) + "-cycle)",
                "N/A"});
  Table.addRow({"L3 (shared)",
                formatBytes(H.L3.SizeBytes) + " " +
                    std::to_string(H.L3.Ways) + "-way, 4 tiles (" +
                    std::to_string(H.L3.HitLatency) + "-cycle)",
                H.GpuSharesL3 ? "shared" : "not shared"});
  Table.addRow({"Interconnection", "Ring-bus network", ""});
  Table.addRow({"DRAM",
                "DDR3-1333, " + std::to_string(H.Dram.Channels) +
                    " controllers, 41.6GB/s, FR-FCFS",
                H.SeparateGpuDram ? "discrete device" : "shared device"});
  Table.addRow({"Pages", formatBytes(H.CpuPageBytes),
                formatBytes(H.GpuPageBytes)});
  return Table;
}

TextTable hetsim::renderTable3() {
  TextTable Table({"Name", "compute pattern", "#inst CPU", "#inst GPU",
                   "#inst serial", "# comms", "initial transfer (B)"});
  for (KernelId Kernel : allKernels()) {
    const KernelCharacteristics &K = kernelCharacteristics(Kernel);
    // Measure from the built program, not the metadata: the program must
    // reproduce Table III by construction.
    KernelProgram Program = KernelProgram::build(Kernel);
    Table.addRow({K.Name, K.Pattern, formatCount(Program.totalCpuInsts()),
                  formatCount(Program.totalGpuInsts()),
                  formatCount(Program.totalSerialInsts()),
                  std::to_string(Program.communicationCount()),
                  std::to_string(Program.initialTransferBytes())});
  }
  return Table;
}

TextTable hetsim::renderTable4(const CommParams &Params) {
  TextTable Table({"Name", "Description", "System", "Latency"});
  Table.addRow({"api-pci", "mem copy using PCI-E", "CPU+GPU, GMAC",
                std::to_string(Params.ApiPciBase) + "+trans_rate (" +
                    formatDouble(Params.PciBytesPerSec / 1e9, 0) + "GB/s)"});
  Table.addRow({"api-acq", "acquire action", "LRB",
                std::to_string(Params.ApiAcquire)});
  Table.addRow({"api-tr", "data transfer", "LRB",
                std::to_string(Params.ApiTransfer)});
  Table.addRow({"lib-pf", "page fault", "LRB",
                std::to_string(Params.LibPageFault)});
  return Table;
}

std::vector<PartitionPoint>
hetsim::sweepPartition(const SystemConfig &Config, KernelId Kernel,
                       unsigned Steps, unsigned Jobs,
                       SweepTelemetry *Telemetry) {
  std::vector<SweepPoint> Grid;
  Grid.reserve(Steps + 1);
  for (unsigned I = 0; I <= Steps; ++I) {
    SystemConfig Variant = Config;
    Variant.CpuWorkFraction = double(I) / double(Steps);
    Grid.emplace_back(std::move(Variant), Kernel);
  }

  SweepRunner Runner(Jobs);
  std::vector<RunResult> Results = Runner.run(Grid);
  if (Telemetry)
    *Telemetry = Runner.telemetry();

  std::vector<PartitionPoint> Points;
  Points.reserve(Results.size());
  for (size_t I = 0; I != Results.size(); ++I) {
    PartitionPoint Point;
    Point.CpuFraction = Grid[I].Config.CpuWorkFraction;
    Point.TotalNs = Results[I].Time.totalNs();
    Point.ParallelNs = Results[I].Time.ParallelNs;
    Points.push_back(Point);
  }
  return Points;
}

PartitionPoint hetsim::findBestPartition(const SystemConfig &Config,
                                         KernelId Kernel, unsigned Steps) {
  std::vector<PartitionPoint> Points = sweepPartition(Config, Kernel, Steps);
  PartitionPoint Best = Points.front();
  for (const PartitionPoint &Point : Points)
    if (Point.TotalNs < Best.TotalNs)
      Best = Point;
  return Best;
}

TextTable hetsim::renderTable5() {
  TextTable Table({"kernel", "Comp", "UNI", "PAS", "DIS", "ADSM"});
  static const KernelId Order[] = {KernelId::MatrixMul, KernelId::MergeSort,
                                   KernelId::Dct,       KernelId::Reduction,
                                   KernelId::Convolution,
                                   KernelId::KMeans};
  for (KernelId Kernel : Order) {
    const KernelCharacteristics &K = kernelCharacteristics(Kernel);
    Table.addRow(
        {K.Name, std::to_string(K.CompLines),
         std::to_string(
             communicationSourceLines(Kernel, AddressSpaceKind::Unified)),
         std::to_string(communicationSourceLines(
             Kernel, AddressSpaceKind::PartiallyShared)),
         std::to_string(
             communicationSourceLines(Kernel, AddressSpaceKind::Disjoint)),
         std::to_string(
             communicationSourceLines(Kernel, AddressSpaceKind::Adsm))});
  }
  return Table;
}
