//===- core/SweepRunner.cpp -----------------------------------------------===//

#include "core/SweepRunner.h"

#include "common/Log.h"
#include "common/ThreadPool.h"
#include "common/WallTimer.h"
#include "obs/Json.h"
#include "trace/TraceCache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace hetsim;

std::string SweepTelemetry::summary() const {
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "sweep: %llu points in %.3f s (%.1f points/s, %.3g sim-ns "
                "per wall-s, jobs=%u, trace cache %.0f%% hits)",
                static_cast<unsigned long long>(Points), WallSeconds,
                pointsPerSecond(), simNsPerWallSecond(), Jobs,
                100.0 * cacheHitRate());
  return Buffer;
}

void SweepTelemetry::merge(const SweepTelemetry &Other) {
  Jobs = Other.Jobs;
  Points += Other.Points;
  WallSeconds += Other.WallSeconds;
  SimNsTotal += Other.SimNsTotal;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
}

SweepRunner::SweepRunner(unsigned JobCount)
    : Jobs(JobCount == 0 ? ThreadPool::defaultJobs() : JobCount) {}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepPoint> &Points) {
  std::vector<RunResult> Results(Points.size());
  Metrics.assign(Points.size(), MetricsSnapshot());

  TraceCacheStats Before = TraceCache::global().stats();
  WallTimer Timer;
  {
    ThreadPool Pool(Jobs);
    Pool.parallelFor(Points.size(), [&](size_t I) {
      const SweepPoint &Point = Points[I];
      SystemConfig Config = Point.Config;
      // applyOverrides rebuilds CommParams wholesale from the store, so
      // an empty store would reset comm.* values baked into Point.Config
      // by forCaseStudy(Study, Overrides). Only apply a real store.
      if (Point.Overrides.size() != 0)
        Config.applyOverrides(Point.Overrides);
      HeteroSimulator Simulator(Config);
      Results[I] = Simulator.run(Point.Kernel);
      // Snapshot while the simulator (and its memory system) is alive;
      // each worker writes only its own slot.
      Metrics[I] = Simulator.collectMetrics(Results[I]);
    });
  }

  if (const char *Env = std::getenv("HETSIM_METRICS_JSON"))
    if (Env[0] != '\0' &&
        !writeTextFile(Env, renderSweepMetricsJson(Points, Metrics) + "\n"))
      HETSIM_WARN("cannot write sweep metrics to %s", Env);

  Telemetry = SweepTelemetry();
  Telemetry.Jobs = Jobs;
  Telemetry.Points = Points.size();
  Telemetry.WallSeconds = Timer.elapsedSeconds();
  for (const RunResult &Result : Results)
    Telemetry.SimNsTotal += Result.Time.totalNs();
  TraceCacheStats After = TraceCache::global().stats();
  Telemetry.CacheHits = After.Hits - Before.Hits;
  Telemetry.CacheMisses = After.Misses - Before.Misses;
  return Results;
}

std::string
hetsim::renderSweepMetricsJson(const std::vector<SweepPoint> &Points,
                               const std::vector<MetricsSnapshot> &Metrics) {
  JsonWriter W;
  W.beginObject();
  W.value("schema", "hetsim-sweep-metrics-v1");
  W.beginArray("points");
  for (size_t I = 0; I != Metrics.size(); ++I) {
    W.beginObject();
    if (I < Points.size()) {
      W.value("system", Points[I].Config.Name);
      W.value("kernel", kernelName(Points[I].Kernel));
    }
    appendMetricsObject(W, "metrics", Metrics[I]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

bool hetsim::appendBenchTiming(const std::string &Bench,
                               const SweepTelemetry &T) {
  std::string Path = "out/bench_timing.json";
  if (const char *Env = std::getenv("HETSIM_TIMING_JSON"))
    if (Env[0] != '\0')
      Path = Env;

  std::error_code Ec;
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty())
    std::filesystem::create_directories(Parent, Ec);

  std::FILE *File = std::fopen(Path.c_str(), "a");
  if (!File) {
    HETSIM_WARN("cannot append bench timing to %s", Path.c_str());
    return false;
  }
  // One JSON object per line (JSON-lines), fixed key order for easy
  // grepping from shell scripts.
  std::fprintf(File,
               "{\"bench\":\"%s\",\"points\":%llu,\"jobs\":%u,"
               "\"wall_s\":%.6f,\"points_per_s\":%.3f,"
               "\"sim_ns_per_wall_s\":%.1f,\"cache_hits\":%llu,"
               "\"cache_misses\":%llu,\"cache_hit_rate\":%.4f}\n",
               Bench.c_str(), static_cast<unsigned long long>(T.Points),
               T.Jobs, T.WallSeconds, T.pointsPerSecond(),
               T.simNsPerWallSecond(),
               static_cast<unsigned long long>(T.CacheHits),
               static_cast<unsigned long long>(T.CacheMisses),
               T.cacheHitRate());
  std::fclose(File);
  return true;
}
