//===- core/SweepRunner.cpp -----------------------------------------------===//

#include "core/SweepRunner.h"

#include "common/Log.h"
#include "common/ThreadPool.h"
#include "common/WallTimer.h"
#include "core/ResultStore.h"
#include "obs/Json.h"
#include "trace/ComputeBlock.h"
#include "trace/TraceCache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace hetsim;

std::string SweepTelemetry::summary() const {
  char Buffer[384];
  std::snprintf(Buffer, sizeof(Buffer),
                "sweep: %llu points in %.3f s (%.1f points/s, %.3g sim-ns "
                "per wall-s, gen %.3f s / sim %.3f s / wait %.3f s, "
                "jobs=%u from %s, trace cache %.0f%% hits)",
                static_cast<unsigned long long>(Points), WallSeconds,
                pointsPerSecond(), simNsPerWallSecond(),
                traceGenWallSeconds(), simulateSeconds(),
                lockWaitWallSeconds(), Jobs, JobsSource.c_str(),
                100.0 * cacheHitRate());
  return Buffer;
}

void SweepTelemetry::merge(const SweepTelemetry &Other) {
  Jobs = Other.Jobs;
  JobsSource = Other.JobsSource;
  Points += Other.Points;
  WallSeconds += Other.WallSeconds;
  SimNsTotal += Other.SimNsTotal;
  BusySeconds += Other.BusySeconds;
  TraceGenSeconds += Other.TraceGenSeconds;
  LockWaitSeconds += Other.LockWaitSeconds;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  StoreHits += Other.StoreHits;
  StoreMisses += Other.StoreMisses;
}

/// Where a zero job-count request actually resolved from.
static std::string resolveJobsSource(unsigned Requested) {
  if (Requested != 0)
    return "explicit";
  if (const char *Env = std::getenv("HETSIM_JOBS")) {
    char *End = nullptr;
    long Value = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Value >= 1)
      return "HETSIM_JOBS";
  }
  return "hardware";
}

SweepRunner::SweepRunner(unsigned JobCount)
    : Jobs(JobCount == 0 ? ThreadPool::defaultJobs() : JobCount),
      JobsSource(resolveJobsSource(JobCount)) {}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepPoint> &Points) {
  std::vector<RunResult> Results(Points.size());
  Metrics.assign(Points.size(), MetricsSnapshot());

  ResultStore Store =
      StoreDir.empty() ? ResultStore::fromEnvironment() : ResultStore(StoreDir);

  // Per-worker phase counters. Worker ids from parallelForWorkers are
  // stable in [0, min(Points, Jobs)), so each worker owns one slot and
  // no atomics are needed.
  struct WorkerCounters {
    uint64_t BusyNs = 0;
    uint64_t GenNs = 0;
    uint64_t WaitNs = 0;
  };
  std::vector<WorkerCounters> Workers(
      std::max<size_t>(1, std::min(Points.size(), size_t(Jobs))));

  TraceCacheStats Before = TraceCache::global().stats();
  WallTimer Timer;
  {
    ThreadPool Pool(Jobs);
    Pool.parallelForWorkers(Points.size(), [&](size_t I, unsigned Worker) {
      const SweepPoint &Point = Points[I];
      SystemConfig Config = Point.Config;
      // applyOverrides rebuilds CommParams wholesale from the store, so
      // an empty store would reset comm.* values baked into Point.Config
      // by forCaseStudy(Study, Overrides). Only apply a real store.
      if (Point.Overrides.size() != 0)
        Config.applyOverrides(Point.Overrides);

      // Diff this thread's own gen / cache-wait clocks around the point
      // (a worker thread only ever runs one point at a time, so the
      // diffs attribute exactly this point's work to this worker).
      auto BusyStart = std::chrono::steady_clock::now();
      uint64_t GenStart = threadTraceGenNanos();
      uint64_t WaitStart = threadTraceCacheWaitNanos();

      HeteroSimulator Simulator(Config);
      if (Store.enabled()) {
        LoweredProgram Program = lowerKernel(Point.Kernel, Config);
        ResultStore::Key K = ResultStore::keyFor(Config, Program);
        ResultStore::Entry E;
        if (Store.load(K, E)) {
          Results[I] = E.Result;
          Metrics[I] = E.Metrics;
        } else {
          Results[I] = Simulator.runLowered(Program);
          Metrics[I] = Simulator.collectMetrics(Results[I]);
          Store.save(K, {Results[I], Metrics[I]});
        }
      } else {
        Results[I] = Simulator.run(Point.Kernel);
        // Snapshot while the simulator (and its memory system) is alive;
        // each worker writes only its own slot.
        Metrics[I] = Simulator.collectMetrics(Results[I]);
      }

      WorkerCounters &C = Workers[Worker];
      C.BusyNs += uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - BusyStart)
                               .count());
      C.GenNs += threadTraceGenNanos() - GenStart;
      C.WaitNs += threadTraceCacheWaitNanos() - WaitStart;
    });
  }

  if (const char *Env = std::getenv("HETSIM_METRICS_JSON"))
    if (Env[0] != '\0' &&
        !writeTextFile(Env, renderSweepMetricsJson(Points, Metrics) + "\n"))
      HETSIM_WARN("cannot write sweep metrics to %s", Env);

  Telemetry = SweepTelemetry();
  Telemetry.Jobs = Jobs;
  Telemetry.JobsSource = JobsSource;
  Telemetry.Points = Points.size();
  Telemetry.WallSeconds = Timer.elapsedSeconds();
  for (const WorkerCounters &C : Workers) {
    Telemetry.BusySeconds += double(C.BusyNs) * 1e-9;
    Telemetry.TraceGenSeconds += double(C.GenNs) * 1e-9;
    Telemetry.LockWaitSeconds += double(C.WaitNs) * 1e-9;
  }
  Telemetry.StoreHits = Store.hits();
  Telemetry.StoreMisses = Store.misses();
  for (const RunResult &Result : Results)
    Telemetry.SimNsTotal += Result.Time.totalNs();
  TraceCacheStats After = TraceCache::global().stats();
  Telemetry.CacheHits = After.Hits - Before.Hits;
  Telemetry.CacheMisses = After.Misses - Before.Misses;
  // Mirror the process-lifetime cache counters into the stats registry so
  // observability consumers see them without knowing about TraceCache.
  TraceCache::global().publishStats(processStats());
  return Results;
}

std::string
hetsim::renderSweepMetricsJson(const std::vector<SweepPoint> &Points,
                               const std::vector<MetricsSnapshot> &Metrics) {
  JsonWriter W;
  W.beginObject();
  W.value("schema", "hetsim-sweep-metrics-v1");
  W.beginArray("points");
  for (size_t I = 0; I != Metrics.size(); ++I) {
    W.beginObject();
    if (I < Points.size()) {
      W.value("system", Points[I].Config.Name);
      W.value("kernel", kernelName(Points[I].Kernel));
    }
    appendMetricsObject(W, "metrics", Metrics[I]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

bool hetsim::appendBenchTiming(const std::string &Bench,
                               const SweepTelemetry &T) {
  std::string Path = "out/bench_timing.json";
  if (const char *Env = std::getenv("HETSIM_TIMING_JSON"))
    if (Env[0] != '\0')
      Path = Env;

  std::error_code Ec;
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty())
    std::filesystem::create_directories(Parent, Ec);

  std::FILE *File = std::fopen(Path.c_str(), "a");
  if (!File) {
    HETSIM_WARN("cannot append bench timing to %s", Path.c_str());
    return false;
  }
  // One JSON object per line (JSON-lines), fixed key order for easy
  // grepping from shell scripts.
  std::fprintf(File,
               "{\"bench\":\"%s\",\"points\":%llu,\"jobs\":%u,"
               "\"wall_s\":%.6f,\"points_per_s\":%.3f,"
               "\"sim_ns_per_wall_s\":%.1f,\"cache_hits\":%llu,"
               "\"cache_misses\":%llu,\"cache_hit_rate\":%.4f,"
               "\"jobs_source\":\"%s\",\"trace_gen_s\":%.6f,"
               "\"simulate_s\":%.6f,\"lock_wait_s\":%.6f,"
               "\"store_hits\":%llu,\"store_misses\":%llu}\n",
               Bench.c_str(), static_cast<unsigned long long>(T.Points),
               T.Jobs, T.WallSeconds, T.pointsPerSecond(),
               T.simNsPerWallSecond(),
               static_cast<unsigned long long>(T.CacheHits),
               static_cast<unsigned long long>(T.CacheMisses),
               T.cacheHitRate(), T.JobsSource.c_str(),
               T.traceGenWallSeconds(), T.simulateSeconds(),
               T.lockWaitWallSeconds(),
               static_cast<unsigned long long>(T.StoreHits),
               static_cast<unsigned long long>(T.StoreMisses));
  std::fclose(File);
  return true;
}
