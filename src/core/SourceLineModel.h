//===- core/SourceLineModel.h - Programmability (Table V) -------*- C++ -*-===//
///
/// \file
/// The programmability metric of Section V-C: the number of source lines a
/// programmer must add to handle data communication under each address
/// space. Instead of hand counting, we *emit* the host-side communication
/// statements each model requires (mirroring the paper's Figures 2 and 3)
/// and count them:
///
///   unified          — nothing: no special APIs (0 lines).
///   partially shared — releaseOwnership(...) before and
///                      acquireOwnership(...) after every GPU round
///                      (sharedmalloc replaces malloc: not an extra line).
///   disjoint         — per shared object: a GPU-side allocation with its
///                      duplicated pointer, a Memcpy in the object's
///                      direction, and a free.
///   ADSM             — per shared object: adsmAlloc and accfree (the GMAC
///                      runtime moves data implicitly, so no copy line).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CORE_SOURCELINEMODEL_H
#define HETSIM_CORE_SOURCELINEMODEL_H

#include "core/KernelModel.h"
#include "memory/AddressSpaceModel.h"

namespace hetsim {

/// The emitted host-side communication code for one (kernel, model) pair.
struct HostSource {
  /// One statement per line, in program order.
  std::vector<std::string> Statements;

  /// The Table V count.
  unsigned lineCount() const { return unsigned(Statements.size()); }
};

/// Emits the communication statements \p Kernel needs under \p Kind.
HostSource emitCommunicationSource(KernelId Kernel, AddressSpaceKind Kind);

/// Convenience: just the line count (one Table V cell).
unsigned communicationSourceLines(KernelId Kernel, AddressSpaceKind Kind);

} // namespace hetsim

#endif // HETSIM_CORE_SOURCELINEMODEL_H
