//===- core/KernelModel.cpp -----------------------------------------------===//

#include "core/KernelModel.h"

#include "common/Error.h"

#include <cassert>

using namespace hetsim;

static std::vector<std::string> objectsWithDir(KernelId Id, TransferDir Dir) {
  std::vector<std::string> Names;
  for (const DataObjectSpec &Spec : kernelDataObjects(Id))
    if (Spec.Dir == Dir)
      Names.push_back(Spec.Name);
  return Names;
}

KernelProgram KernelProgram::build(KernelId Id) {
  const KernelCharacteristics &K = kernelCharacteristics(Id);
  KernelProgram P;
  P.Id = Id;
  P.Rounds = K.GpuRounds;

  std::vector<std::string> Inputs =
      objectsWithDir(Id, TransferDir::HostToDevice);
  std::vector<std::string> Outputs =
      objectsWithDir(Id, TransferDir::DeviceToHost);

  auto Par = [&](unsigned Round, uint64_t CpuN, uint64_t GpuN) {
    KernelPhase Phase;
    Phase.Kind = PhaseKind::Parallel;
    Phase.CpuInsts = CpuN;
    Phase.GpuInsts = GpuN;
    Phase.Round = Round;
    P.Phases.push_back(std::move(Phase));
  };
  auto Serial = [&](uint64_t N) {
    if (N == 0)
      return;
    KernelPhase Phase;
    Phase.Kind = PhaseKind::Serial;
    Phase.SerialInsts = N;
    P.Phases.push_back(std::move(Phase));
  };
  auto Xfer = [&](PhaseKind Kind, std::vector<std::string> Objs,
                  unsigned Round) {
    KernelPhase Phase;
    Phase.Kind = Kind;
    Phase.Objects = std::move(Objs);
    Phase.Round = Round;
    P.Phases.push_back(std::move(Phase));
  };

  switch (Id) {
  case KernelId::Reduction:
  case KernelId::MatrixMul:
  case KernelId::Dct:
  case KernelId::MergeSort:
    // parallel -> merge -> sequential (or fully parallel): one round.
    Xfer(PhaseKind::TransferIn, Inputs, 0);
    Par(0, K.CpuInsts, K.GpuInsts);
    Xfer(PhaseKind::TransferOut, Outputs, 0);
    Serial(K.SerialInsts);
    break;

  case KernelId::Convolution: {
    // parallel -> merge -> parallel: two rounds, three communications
    // (initial in, mid out, final out); round-2 inputs stay in place.
    uint64_t CpuHalf = K.CpuInsts / 2;
    uint64_t GpuHalf = K.GpuInsts / 2;
    Xfer(PhaseKind::TransferIn, Inputs, 0);
    Par(0, CpuHalf, GpuHalf);
    Xfer(PhaseKind::TransferOut, Outputs, 0);
    Serial(K.SerialInsts);
    Par(1, K.CpuInsts - CpuHalf, K.GpuInsts - GpuHalf);
    Xfer(PhaseKind::TransferOut, Outputs, 1);
    break;
  }

  case KernelId::KMeans: {
    // parallel -> merge -> sequential, repeated: three rounds; each round
    // sends centroids down, brings them back, and updates sequentially.
    uint64_t CpuPer = K.CpuInsts / K.GpuRounds;
    uint64_t GpuPer = K.GpuInsts / K.GpuRounds;
    uint64_t SerialPer = K.SerialInsts / K.GpuRounds;
    for (unsigned R = 0; R != K.GpuRounds; ++R) {
      bool Last = R + 1 == K.GpuRounds;
      // Round 0 moves the whole input; later rounds re-send centroids.
      Xfer(PhaseKind::TransferIn, R == 0 ? Inputs : Outputs, R);
      Par(R, Last ? K.CpuInsts - CpuPer * (K.GpuRounds - 1) : CpuPer,
          Last ? K.GpuInsts - GpuPer * (K.GpuRounds - 1) : GpuPer);
      Xfer(PhaseKind::TransferOut, Outputs, R);
      Serial(Last ? K.SerialInsts - SerialPer * (K.GpuRounds - 1)
                  : SerialPer);
    }
    break;
  }
  }

  assert(P.communicationCount() == K.NumComms &&
         "phase structure disagrees with Table III communications");
  assert(P.totalCpuInsts() == K.CpuInsts && "CPU instruction total drifted");
  assert(P.totalGpuInsts() == K.GpuInsts && "GPU instruction total drifted");
  assert(P.totalSerialInsts() == K.SerialInsts &&
         "serial instruction total drifted");
  return P;
}

unsigned KernelProgram::communicationCount() const {
  unsigned Count = 0;
  for (const KernelPhase &Phase : Phases)
    if (Phase.Kind == PhaseKind::TransferIn ||
        Phase.Kind == PhaseKind::TransferOut)
      ++Count;
  return Count;
}

uint64_t KernelProgram::totalCpuInsts() const {
  uint64_t Total = 0;
  for (const KernelPhase &Phase : Phases)
    Total += Phase.CpuInsts;
  return Total;
}

uint64_t KernelProgram::totalGpuInsts() const {
  uint64_t Total = 0;
  for (const KernelPhase &Phase : Phases)
    Total += Phase.GpuInsts;
  return Total;
}

uint64_t KernelProgram::totalSerialInsts() const {
  uint64_t Total = 0;
  for (const KernelPhase &Phase : Phases)
    Total += Phase.SerialInsts;
  return Total;
}

uint64_t KernelProgram::initialTransferBytes() const {
  for (const KernelPhase &Phase : Phases) {
    if (Phase.Kind != PhaseKind::TransferIn)
      continue;
    uint64_t Bytes = 0;
    for (const std::string &Name : Phase.Objects)
      for (const DataObjectSpec &Spec : kernelDataObjects(Id))
        if (Name == Spec.Name)
          Bytes += Spec.Bytes;
    return Bytes;
  }
  return 0;
}
