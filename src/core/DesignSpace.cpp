//===- core/DesignSpace.cpp -----------------------------------------------===//

#include "core/DesignSpace.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::connectionName(ConnectionKind Kind) {
  switch (Kind) {
  case ConnectionKind::PciExpress:
    return "PCI-E";
  case ConnectionKind::MemoryController:
    return "Memory controller";
  case ConnectionKind::Interconnection:
    return "interconnection";
  case ConnectionKind::CacheFsb:
    return "cache/FSB";
  case ConnectionKind::Bus:
    return "BUS";
  case ConnectionKind::None:
    return "-";
  }
  hetsim_unreachable("invalid connection kind");
}

const char *hetsim::coherenceName(CoherenceKind Kind) {
  switch (Kind) {
  case CoherenceKind::None:
    return "-";
  case CoherenceKind::HardwareDirectory:
    return "directory";
  case CoherenceKind::HardwareOrSoftware:
    return "HW/SW";
  case CoherenceKind::RuntimeProtocol:
    return "runtime protocol";
  case CoherenceKind::OneSideOnly:
    return "coherent one side only";
  case CoherenceKind::Possible:
    return "can be coherent";
  }
  hetsim_unreachable("invalid coherence kind");
}

const char *hetsim::consistencyName(ConsistencyKind Kind) {
  switch (Kind) {
  case ConsistencyKind::Weak:
    return "weak consistency";
  case ConsistencyKind::CentralizedRelease:
    return "centralized release consistency";
  case ConsistencyKind::Strong:
    return "strong consistency";
  case ConsistencyKind::Unspecified:
    return "-";
  }
  hetsim_unreachable("invalid consistency kind");
}

const char *hetsim::localityMgmtName(LocalityMgmt Mgmt) {
  return Mgmt == LocalityMgmt::Implicit ? "impl" : "expl";
}

const char *hetsim::sharedLocalityName(SharedLocality Kind) {
  switch (Kind) {
  case SharedLocality::NoSharedLevel:
    return "none";
  case SharedLocality::Implicit:
    return "impl-shared";
  case SharedLocality::Explicit:
    return "expl-shared";
  case SharedLocality::Hybrid:
    return "hybrid-shared";
  }
  hetsim_unreachable("invalid shared-locality kind");
}

std::string LocalityScheme::render() const {
  std::string Out;
  Out += localityMgmtName(CpuPrivate);
  Out += "-pri/";
  Out += localityMgmtName(GpuPrivate);
  Out += "-pri/";
  Out += sharedLocalityName(Shared);
  return Out;
}

const std::vector<LocalityScheme> &hetsim::canonicalLocalitySchemes() {
  using LM = LocalityMgmt;
  using SL = SharedLocality;
  static const std::vector<LocalityScheme> Schemes = {
      // Uniform baselines.
      {LM::Implicit, LM::Implicit, SL::Implicit},
      {LM::Explicit, LM::Explicit, SL::Explicit},
      // II-B1: implicit-private, explicit-shared.
      {LM::Implicit, LM::Implicit, SL::Explicit},
      // II-B2: explicit-private, implicit-shared.
      {LM::Explicit, LM::Explicit, SL::Implicit},
      // II-B3: mixed private, explicit shared.
      {LM::Implicit, LM::Explicit, SL::Explicit},
      // II-B4: mixed private, implicit shared.
      {LM::Implicit, LM::Explicit, SL::Implicit},
      // II-B5: hybrid second level.
      {LM::Implicit, LM::Explicit, SL::Hybrid},
  };
  return Schemes;
}

unsigned hetsim::localityOptionCount(AddressSpaceKind Kind) {
  unsigned Count = 0;
  for (const LocalityScheme &Scheme : canonicalLocalitySchemes()) {
    switch (Kind) {
    case AddressSpaceKind::Disjoint:
      // No shared space: only the uniform private baselines apply.
      if (Scheme.Shared == SharedLocality::Implicit && !Scheme.mixedPrivate())
        ++Count;
      break;
    case AddressSpaceKind::Unified:
      // Section II-B1: explicit shared management is undesirable when the
      // whole space is (potentially) shared; implicit shared options only.
      if (Scheme.Shared == SharedLocality::Implicit)
        ++Count;
      break;
    case AddressSpaceKind::Adsm:
      // The accelerator side is private-only; hybrid shared management is
      // limited to the CPU side, so hybrid does not apply.
      if (Scheme.Shared != SharedLocality::Hybrid)
        ++Count;
      break;
    case AddressSpaceKind::PartiallyShared:
      ++Count; // All options apply (the paper's conclusion 3).
      break;
    }
  }
  return Count;
}
