//===- trace/TraceRecord.h - One dynamic instruction ------------*- C++ -*-===//
///
/// \file
/// The dynamic-instruction record consumed by the core timing models. CPU
/// records describe one scalar instruction; GPU records describe one warp
/// (SIMD) instruction whose memory operands cover SimdLanes lanes separated
/// by LaneStrideBytes.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_TRACERECORD_H
#define HETSIM_TRACE_TRACERECORD_H

#include "trace/Opcode.h"

namespace hetsim {

/// Register index meaning "no register operand".
inline constexpr uint8_t NoReg = 0xFF;

/// Number of architectural registers modeled per core.
inline constexpr unsigned NumTraceRegs = 64;

/// One dynamic instruction in a trace.
struct TraceRecord {
  /// Base effective address for memory ops (lane 0 for SIMD).
  Addr MemAddr = 0;

  /// Static PC of the instruction (used by the branch predictor).
  uint32_t Pc = 0;

  /// Bytes accessed per lane for memory ops.
  uint16_t MemBytes = 0;

  /// Byte distance between consecutive lanes' addresses (GPU memory ops).
  uint16_t LaneStrideBytes = 0;

  Opcode Op = Opcode::Nop;

  /// Destination register, or NoReg.
  uint8_t DstReg = NoReg;

  /// Source registers, or NoReg.
  uint8_t SrcRegA = NoReg;
  uint8_t SrcRegB = NoReg;

  /// Active SIMD lanes (1 for CPU instructions, up to 8 for GPU warps).
  uint8_t SimdLanes = 1;

  /// Branch outcome (valid when Op == Branch).
  bool IsTaken = false;

  /// Returns the total byte footprint of a memory op across all lanes.
  uint64_t totalBytes() const {
    return uint64_t(MemBytes) * uint64_t(SimdLanes);
  }
};

static_assert(sizeof(TraceRecord) <= 24,
              "TraceRecord should stay compact; traces hold millions");

} // namespace hetsim

#endif // HETSIM_TRACE_TRACERECORD_H
