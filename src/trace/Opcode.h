//===- trace/Opcode.h - Trace instruction opcodes ---------------*- C++ -*-===//
///
/// \file
/// Opcode classes for trace records. The simulator is trace-driven (like
/// MacSim, which the paper used): it models timing, not semantics, so
/// opcodes are latency classes rather than a full ISA.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_OPCODE_H
#define HETSIM_TRACE_OPCODE_H

#include "common/Types.h"

namespace hetsim {

/// Instruction classes recognized by the core timing models.
enum class Opcode : uint8_t {
  Nop = 0,
  IntAlu,   ///< 1-cycle integer ALU op.
  IntMul,   ///< Integer multiply.
  IntDiv,   ///< Integer divide (long latency).
  FpAlu,    ///< FP add/sub/compare.
  FpMul,    ///< FP multiply.
  FpMac,    ///< Fused multiply-accumulate.
  FpDiv,    ///< FP divide (long latency).
  Load,     ///< Memory load.
  Store,    ///< Memory store.
  Branch,   ///< Conditional branch.
  SmemLoad, ///< GPU software-managed-cache (scratchpad) load.
  SmemStore,///< GPU software-managed-cache (scratchpad) store.
};

/// Number of opcode values (for latency tables).
inline constexpr unsigned NumOpcodes = 13;

/// Returns a stable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// True for Load/Store/SmemLoad/SmemStore.
inline bool isMemoryOp(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store ||
         Op == Opcode::SmemLoad || Op == Opcode::SmemStore;
}

/// True for ops that access the cache hierarchy (not the scratchpad).
inline bool isGlobalMemoryOp(Opcode Op) {
  return Op == Opcode::Load || Op == Opcode::Store;
}

/// True for ops that write memory.
inline bool isStoreOp(Opcode Op) {
  return Op == Opcode::Store || Op == Opcode::SmemStore;
}

/// True for Branch.
inline bool isBranchOp(Opcode Op) { return Op == Opcode::Branch; }

/// Execution latency (cycles in the owning PU's clock) of \p Op, excluding
/// any memory-hierarchy time. These follow common Sandy-Bridge-class
/// latencies for the CPU and Fermi-class latencies for the GPU.
Cycle executeLatency(PuKind Pu, Opcode Op);

} // namespace hetsim

#endif // HETSIM_TRACE_OPCODE_H
