//===- trace/TraceIO.cpp --------------------------------------------------===//

#include "trace/TraceIO.h"

#include <cstdio>
#include <cstring>

using namespace hetsim;

namespace {

constexpr char TraceMagic[8] = {'H', 'E', 'T', 'T', 'R', 'A', 'C', 'E'};

void putU64(std::string &Out, uint64_t Value) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(char((Value >> (8 * I)) & 0xFF));
}

void putU32(std::string &Out, uint32_t Value) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(char((Value >> (8 * I)) & 0xFF));
}

void putU16(std::string &Out, uint16_t Value) {
  Out.push_back(char(Value & 0xFF));
  Out.push_back(char((Value >> 8) & 0xFF));
}

class ByteReader {
public:
  explicit ByteReader(const std::string &Data, size_t Start = 0)
      : Bytes(Data), Pos(Start) {}

  bool u64(uint64_t &Out) {
    if (Pos + 8 > Bytes.size())
      return false;
    Out = 0;
    for (int I = 0; I != 8; ++I)
      Out |= uint64_t(uint8_t(Bytes[Pos + I])) << (8 * I);
    Pos += 8;
    return true;
  }

  bool u32(uint32_t &Out) {
    if (Pos + 4 > Bytes.size())
      return false;
    Out = 0;
    for (int I = 0; I != 4; ++I)
      Out |= uint32_t(uint8_t(Bytes[Pos + I])) << (8 * I);
    Pos += 4;
    return true;
  }

  bool u16(uint16_t &Out) {
    if (Pos + 2 > Bytes.size())
      return false;
    Out = uint16_t(uint8_t(Bytes[Pos])) |
          uint16_t(uint16_t(uint8_t(Bytes[Pos + 1])) << 8);
    Pos += 2;
    return true;
  }

  bool u8(uint8_t &Out) {
    if (Pos >= Bytes.size())
      return false;
    Out = uint8_t(Bytes[Pos]);
    ++Pos;
    return true;
  }

  bool atEnd() const { return Pos == Bytes.size(); }

private:
  const std::string &Bytes;
  size_t Pos = 0;
};

} // namespace

std::string hetsim::serializeTrace(const TraceBuffer &Trace) {
  std::string Out;
  Out.reserve(16 + 8 + Trace.size() * 20);
  Out.append(TraceMagic, sizeof(TraceMagic));
  putU32(Out, TraceFileVersion);
  putU32(Out, 0); // Reserved.
  putU64(Out, Trace.size());
  for (const TraceRecord &R : Trace) {
    putU64(Out, R.MemAddr);
    putU32(Out, R.Pc);
    putU16(Out, R.MemBytes);
    putU16(Out, R.LaneStrideBytes);
    Out.push_back(char(static_cast<uint8_t>(R.Op)));
    Out.push_back(char(R.DstReg));
    Out.push_back(char(R.SrcRegA));
    Out.push_back(char(R.SrcRegB));
    Out.push_back(char(R.SimdLanes));
    Out.push_back(char(R.IsTaken ? 1 : 0));
  }
  return Out;
}

bool hetsim::deserializeTrace(const std::string &Bytes, TraceBuffer &Out) {
  Out.clear();
  if (Bytes.size() < 24)
    return false;
  if (std::memcmp(Bytes.data(), TraceMagic, sizeof(TraceMagic)) != 0)
    return false;

  ByteReader Reader(Bytes, sizeof(TraceMagic));
  uint32_t Version = 0, Reserved = 0;
  uint64_t Count = 0;
  if (!Reader.u32(Version) || !Reader.u32(Reserved) || !Reader.u64(Count))
    return false;
  if (Version != TraceFileVersion)
    return false;

  Out.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    TraceRecord R;
    uint8_t Op = 0, Taken = 0;
    if (!Reader.u64(R.MemAddr) || !Reader.u32(R.Pc) ||
        !Reader.u16(R.MemBytes) || !Reader.u16(R.LaneStrideBytes) ||
        !Reader.u8(Op) || !Reader.u8(R.DstReg) || !Reader.u8(R.SrcRegA) ||
        !Reader.u8(R.SrcRegB) || !Reader.u8(R.SimdLanes) ||
        !Reader.u8(Taken))
      return false;
    if (Op >= NumOpcodes)
      return false;
    R.Op = static_cast<Opcode>(Op);
    R.IsTaken = Taken != 0;
    Out.append(R);
  }
  return Reader.atEnd();
}

bool hetsim::saveTrace(const TraceBuffer &Trace, const std::string &Path) {
  std::string Bytes = serializeTrace(Trace);
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  bool Ok = std::fclose(File) == 0 && Written == Bytes.size();
  return Ok;
}

bool hetsim::loadTrace(const std::string &Path, TraceBuffer &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::string Bytes;
  char Buffer[64 * 1024];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Bytes.append(Buffer, Read);
  std::fclose(File);
  return deserializeTrace(Bytes, Out);
}
