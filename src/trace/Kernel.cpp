//===- trace/Kernel.cpp ---------------------------------------------------===//

#include "trace/Kernel.h"

#include "common/Error.h"

#include <cstring>

using namespace hetsim;

namespace {

// Table III, verbatim. GpuRounds is derived from the compute pattern:
// convolution performs two parallel rounds separated by a merge, and k-mean
// repeats its round three times (3 rounds x 2 transfers = 6 communications).
const KernelCharacteristics Characteristics[NumKernels] = {
    {KernelId::Reduction, "reduction", "parallel->merge->sequential", 70006,
     70001, 99996, 2, 320512, 1, 142},
    {KernelId::MatrixMul, "matrix mul", "fully parallel", 8585229, 8585228,
     16384, 2, 524288, 1, 39},
    {KernelId::Convolution, "convolution", "parallel->merge->parallel",
     448260, 448259, 65536, 3, 65536, 2, 75},
    {KernelId::Dct, "dct", "fully parallel", 2359298, 2359298, 262144, 2,
     262244, 1, 410},
    {KernelId::MergeSort, "merge sort", "parallel->merge->sequential",
     161233, 157233, 97668, 2, 39936, 1, 112},
    {KernelId::KMeans, "k-mean", "parallel->merge->sequential (repeated)",
     1847765, 1844981, 36784, 6, 136192, 3, 332},
};

// Shared data objects. HostToDevice sizes sum to InitialTransferBytes.
const std::vector<DataObjectSpec> ReductionObjects = {
    {"a", 160256, TransferDir::HostToDevice},
    {"b", 160256, TransferDir::HostToDevice},
    {"c", 160256, TransferDir::DeviceToHost},
};
const std::vector<DataObjectSpec> MatrixMulObjects = {
    {"A", 262144, TransferDir::HostToDevice},
    {"B", 262144, TransferDir::HostToDevice},
    {"C", 262144, TransferDir::DeviceToHost},
};
const std::vector<DataObjectSpec> ConvolutionObjects = {
    {"image", 61440, TransferDir::HostToDevice},
    {"filter", 4096, TransferDir::HostToDevice},
    {"out", 61440, TransferDir::DeviceToHost},
};
const std::vector<DataObjectSpec> DctObjects = {
    {"blocks", 262244, TransferDir::HostToDevice},
    {"coeffs", 262144, TransferDir::DeviceToHost},
};
const std::vector<DataObjectSpec> MergeSortObjects = {
    {"keys", 39936, TransferDir::HostToDevice},
    {"sorted", 39936, TransferDir::DeviceToHost},
};
const std::vector<DataObjectSpec> KMeansObjects = {
    {"points", 136192, TransferDir::HostToDevice},
    {"centroids", 5120, TransferDir::DeviceToHost},
};

} // namespace

const std::vector<KernelId> &hetsim::allKernels() {
  static const std::vector<KernelId> Ids = {
      KernelId::Reduction, KernelId::MatrixMul, KernelId::Convolution,
      KernelId::Dct,       KernelId::MergeSort, KernelId::KMeans,
  };
  return Ids;
}

const KernelCharacteristics &hetsim::kernelCharacteristics(KernelId Id) {
  unsigned Index = static_cast<unsigned>(Id);
  if (Index >= NumKernels)
    fatalError("kernelCharacteristics: invalid kernel id");
  return Characteristics[Index];
}

const std::vector<DataObjectSpec> &hetsim::kernelDataObjects(KernelId Id) {
  switch (Id) {
  case KernelId::Reduction:
    return ReductionObjects;
  case KernelId::MatrixMul:
    return MatrixMulObjects;
  case KernelId::Convolution:
    return ConvolutionObjects;
  case KernelId::Dct:
    return DctObjects;
  case KernelId::MergeSort:
    return MergeSortObjects;
  case KernelId::KMeans:
    return KMeansObjects;
  }
  hetsim_unreachable("invalid kernel id");
}

const char *hetsim::kernelName(KernelId Id) {
  return kernelCharacteristics(Id).Name;
}

bool hetsim::kernelByName(const char *Name, KernelId &Out) {
  for (KernelId Id : allKernels()) {
    if (std::strcmp(Name, kernelName(Id)) == 0) {
      Out = Id;
      return true;
    }
  }
  return false;
}
