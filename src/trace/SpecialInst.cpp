//===- trace/SpecialInst.cpp ----------------------------------------------===//

#include "trace/SpecialInst.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::specialInstName(SpecialInst Inst) {
  switch (Inst) {
  case SpecialInst::None:
    return "none";
  case SpecialInst::ApiPci:
    return "api-pci";
  case SpecialInst::ApiTr:
    return "api-tr";
  case SpecialInst::ApiAcq:
    return "api-acq";
  case SpecialInst::LibPf:
    return "lib-pf";
  case SpecialInst::DmaWait:
    return "dma-wait";
  case SpecialInst::KernelLaunch:
    return "kernel-launch";
  case SpecialInst::KernelJoin:
    return "kernel-join";
  }
  hetsim_unreachable("invalid special instruction");
}

const char *hetsim::fenceEffectName(FenceEffect Effect) {
  switch (Effect) {
  case FenceEffect::None:
    return "none";
  case FenceEffect::Acquire:
    return "acquire";
  case FenceEffect::Release:
    return "release";
  case FenceEffect::AcquireRelease:
    return "acquire-release";
  case FenceEffect::TransferComplete:
    return "transfer-complete";
  case FenceEffect::EngineDrain:
    return "engine-drain";
  }
  hetsim_unreachable("invalid fence effect");
}

FenceEffect hetsim::fenceEffect(SpecialInst Inst) {
  switch (Inst) {
  case SpecialInst::None:
    return FenceEffect::None;
  case SpecialInst::ApiPci:
  case SpecialInst::ApiTr:
    return FenceEffect::TransferComplete;
  case SpecialInst::ApiAcq:
    return FenceEffect::AcquireRelease;
  case SpecialInst::LibPf:
    // The fault handler orders the faulted page, which the batched
    // lib-pf charging folds into the owning round: model-wise the page
    // is published with the round's launch.
    return FenceEffect::Acquire;
  case SpecialInst::DmaWait:
    return FenceEffect::EngineDrain;
  case SpecialInst::KernelLaunch:
    return FenceEffect::Release;
  case SpecialInst::KernelJoin:
    return FenceEffect::Acquire;
  }
  hetsim_unreachable("invalid special instruction");
}
