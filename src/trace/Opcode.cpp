//===- trace/Opcode.cpp ---------------------------------------------------===//

#include "trace/Opcode.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::IntAlu:
    return "ialu";
  case Opcode::IntMul:
    return "imul";
  case Opcode::IntDiv:
    return "idiv";
  case Opcode::FpAlu:
    return "falu";
  case Opcode::FpMul:
    return "fmul";
  case Opcode::FpMac:
    return "fmac";
  case Opcode::FpDiv:
    return "fdiv";
  case Opcode::Load:
    return "ld";
  case Opcode::Store:
    return "st";
  case Opcode::Branch:
    return "br";
  case Opcode::SmemLoad:
    return "smem_ld";
  case Opcode::SmemStore:
    return "smem_st";
  }
  hetsim_unreachable("unknown opcode");
}

Cycle hetsim::executeLatency(PuKind Pu, Opcode Op) {
  // CPU latencies roughly follow Sandy Bridge; the in-order GPU pipeline
  // uses Fermi-like latencies (SIMD ops take longer but cover 8 lanes).
  const bool IsCpu = Pu == PuKind::Cpu;
  switch (Op) {
  case Opcode::Nop:
    return 1;
  case Opcode::IntAlu:
    return 1;
  case Opcode::IntMul:
    return IsCpu ? 3 : 4;
  case Opcode::IntDiv:
    return IsCpu ? 20 : 40;
  case Opcode::FpAlu:
    return IsCpu ? 3 : 4;
  case Opcode::FpMul:
    return IsCpu ? 5 : 4;
  case Opcode::FpMac:
    return IsCpu ? 5 : 4;
  case Opcode::FpDiv:
    return IsCpu ? 14 : 32;
  case Opcode::Load:
  case Opcode::Store:
    return 1; // Address generation; hierarchy time is added separately.
  case Opcode::Branch:
    return 1;
  case Opcode::SmemLoad:
  case Opcode::SmemStore:
    return 1; // Scratchpad time is added by the GPU core model.
  }
  hetsim_unreachable("unknown opcode");
}
