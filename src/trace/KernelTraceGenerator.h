//===- trace/KernelTraceGenerator.h - Synthetic kernel traces ---*- C++ -*-===//
///
/// \file
/// Synthetic trace generators for the six evaluated kernels. The paper used
/// real CPU/GPU traces fed to MacSim; we substitute deterministic synthetic
/// generators whose instruction counts match Table III exactly and whose
/// access patterns follow each kernel's compute pattern (streaming for
/// reduction, strided reuse for matrix multiply, overlapping windows for
/// convolution, blocked ALU-heavy work for dct, data-dependent branches for
/// merge sort, and repeated passes with a hot centroid table for k-means).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_KERNELTRACEGENERATOR_H
#define HETSIM_TRACE_KERNELTRACEGENERATOR_H

#include "common/Random.h"
#include "trace/DataLayout.h"
#include "trace/TraceBuffer.h"

#include <array>

namespace hetsim {

/// How a PU's compute segment divides a kernel's data range. The paper
/// divides the computational work evenly between CPU and GPU (Section
/// IV-B); the CPU processes the first half of each object and the GPU the
/// second half.
enum class WorkSplit : uint8_t {
  FullRange,
  FirstHalf,
  SecondHalf,
};

/// Parameters of one generated compute segment.
struct GenRequest {
  PuKind Pu = PuKind::Cpu;
  uint64_t InstCount = 0;   ///< Exact number of records to produce.
  uint64_t Seed = 1;        ///< RNG seed (data-dependent branch outcomes).
  WorkSplit Split = WorkSplit::FullRange;
};

/// Budget-limited emission wrapper. Emitters become no-ops once the exact
/// instruction budget is reached, so generator loop bodies never overshoot.
class TraceEmitter {
public:
  TraceEmitter(TraceBuffer &Out, uint64_t Budget)
      : TraceEmitter(Out, Budget, size_t(Budget)) {}

  /// \p ReserveHint caps the up-front reservation: windowed expansion
  /// passes the window size so a small reusable buffer is never grown to
  /// the full remaining budget.
  TraceEmitter(TraceBuffer &Out, uint64_t Budget, size_t ReserveHint)
      : Buffer(Out), Remaining(Budget) {
    Out.reserve(Out.size() +
                size_t(Budget < ReserveHint ? Budget : ReserveHint));
  }

  bool done() const { return Remaining == 0; }
  uint64_t remaining() const { return Remaining; }

  void alu(Opcode Op, uint32_t Pc, uint8_t Dst, uint8_t SrcA,
           uint8_t SrcB = NoReg) {
    if (!take())
      return;
    Buffer.emitAlu(Op, Pc, Dst, SrcA, SrcB);
  }

  void load(uint32_t Pc, uint8_t Dst, Addr Address, uint16_t Bytes) {
    if (!take())
      return;
    Buffer.emitLoad(Pc, Dst, Address, Bytes);
  }

  void store(uint32_t Pc, uint8_t Src, Addr Address, uint16_t Bytes) {
    if (!take())
      return;
    Buffer.emitStore(Pc, Src, Address, Bytes);
  }

  void branch(uint32_t Pc, bool Taken, uint8_t CondReg = NoReg) {
    if (!take())
      return;
    Buffer.emitBranch(Pc, Taken, CondReg);
  }

  void simdLoad(uint32_t Pc, uint8_t Dst, Addr Address, uint16_t BytesPerLane,
                uint8_t Lanes, uint16_t StrideBytes) {
    if (!take())
      return;
    Buffer.emitSimdLoad(Pc, Dst, Address, BytesPerLane, Lanes, StrideBytes);
  }

  void simdStore(uint32_t Pc, uint8_t Src, Addr Address,
                 uint16_t BytesPerLane, uint8_t Lanes,
                 uint16_t StrideBytes) {
    if (!take())
      return;
    Buffer.emitSimdStore(Pc, Src, Address, BytesPerLane, Lanes, StrideBytes);
  }

  void smem(bool IsStore, uint32_t Pc, uint8_t Reg, Addr Offset,
            uint16_t Bytes, uint8_t Lanes = 8, uint16_t StrideBytes = 4) {
    if (!take())
      return;
    Buffer.emitSmem(IsStore, Pc, Reg, Offset, Bytes, Lanes, StrideBytes);
  }

private:
  bool take() {
    if (Remaining == 0)
      return false;
    --Remaining;
    return true;
  }

  TraceBuffer &Buffer;
  uint64_t Remaining;
};

/// A circular cursor over (part of) a data segment.
struct StreamCursor {
  Addr Base = 0;
  uint64_t Bytes = 0;
  uint64_t Pos = 0;

  /// Returns the current address and advances by \p Step, wrapping.
  Addr advance(uint64_t Step) {
    Addr Current = Base + Pos;
    Pos += Step;
    if (Pos >= Bytes)
      Pos %= Bytes;
    return Current;
  }

  /// Current address without advancing.
  Addr current() const { return Base + Pos; }
};

/// Explicit expansion state for one trace generation: the data cursors,
/// the RNG, and the iteration counter. Generators themselves are
/// stateless; every mutation lands in a caller-owned GenState, so an
/// expansion can be suspended at any window boundary and resumed
/// bit-exactly, and two threads can expand the same kernel concurrently.
struct GenState {
  std::array<StreamCursor, 3> Cur; ///< Kernel-defined cursor slots.
  XorShiftRng Rng{1};
  uint64_t Iter = 0;
};

/// Coarse structural facts a generator announces about the record stream
/// it emits. Approximate execution modes (the sampled memory tier,
/// DESIGN.md §11) gate on these instead of probing the stream.
struct StreamStructure {
  /// The stream is a long loop with a fixed per-iteration record shape
  /// and steady address strides, so windowed time-sampling extrapolates
  /// meaningfully between measured windows.
  bool SteadyStride = false;
};

/// Base class for the six kernel generators.
class KernelTraceGenerator {
public:
  virtual ~KernelTraceGenerator();

  /// The kernel this generator models.
  virtual KernelId kernel() const = 0;

  /// Structural facts about the emitted stream (conservative default:
  /// nothing is promised).
  virtual StreamStructure streamStructure() const { return {}; }

  /// Produces exactly Req.InstCount records of compute for Req.Pu.
  TraceBuffer generateCompute(const GenRequest &Req,
                              const KernelDataLayout &Layout) const;

  /// Produces exactly \p InstCount records for the sequential (CPU-only)
  /// portion: a merge/finalize pass over the kernel's output object.
  TraceBuffer generateSerial(uint64_t InstCount,
                             const KernelDataLayout &Layout,
                             uint64_t Seed = 1) const;

  /// Seeds \p S for an incremental compute expansion of \p Req. Combined
  /// with emitCompute this produces the same record stream as
  /// generateCompute, one window at a time.
  void beginCompute(GenState &S, const GenRequest &Req,
                    const KernelDataLayout &Layout) const;

  /// Emits the next window of an expansion started by beginCompute: whole
  /// iterations until \p Window grew by at least \p WindowTarget records
  /// or \p Budget (the remaining total) is exhausted. The final iteration
  /// may stop mid-body when the budget runs out — exactly like single-
  /// shot generation. Returns the number of records emitted.
  uint64_t emitCompute(GenState &S, const GenRequest &Req,
                       TraceBuffer &Window, uint64_t Budget,
                       size_t WindowTarget) const;

  /// Incremental equivalents of generateSerial.
  void beginSerial(GenState &S, const KernelDataLayout &Layout,
                   uint64_t Seed) const;
  uint64_t emitSerial(GenState &S, TraceBuffer &Window, uint64_t Budget,
                      size_t WindowTarget) const;

  /// Returns the generator for \p Id (static lifetime).
  static const KernelTraceGenerator &forKernel(KernelId Id);

  /// Restricts \p Segment to the half selected by \p Split, 64B-aligned;
  /// tiny objects (constant tables) are never split. Exposed so the
  /// lowering can reason about exactly the byte ranges each PU touches
  /// (e.g. which shared pages the GPU faults in first).
  static StreamCursor cursorFor(const DataSegment &Segment, WorkSplit Split);

protected:
  /// Emits one CPU loop iteration reading/advancing \p S. Implementations
  /// must emit at least one record per call while budget remains; the
  /// caller bumps S.Iter after each iteration.
  virtual void cpuIteration(TraceEmitter &E, GenState &S) const = 0;

  /// Emits one GPU (warp-granularity) loop iteration.
  virtual void gpuIteration(TraceEmitter &E, GenState &S) const = 0;

  /// Called before iteration loops so subclasses can set up cursors over
  /// the placed data objects in S.Cur.
  virtual void setUpCursors(GenState &S, const KernelDataLayout &Layout,
                            WorkSplit Split) const = 0;

  /// The PC region for this kernel's code (distinct per kernel so branch
  /// predictor state does not alias across kernels).
  uint32_t pcBase() const {
    return (static_cast<uint32_t>(kernel()) + 1u) * 0x100000u;
  }
};

/// Declarations of the six concrete generators. Cursor-slot conventions
/// are private to each kernel's setUpCursors/iteration pair.
class ReductionGenerator final : public KernelTraceGenerator {
public:
  KernelId kernel() const override { return KernelId::Reduction; }
  StreamStructure streamStructure() const override { return {true}; }

protected:
  void setUpCursors(GenState &S, const KernelDataLayout &L,
                    WorkSplit Split) const override;
  void cpuIteration(TraceEmitter &E, GenState &S) const override;
  void gpuIteration(TraceEmitter &E, GenState &S) const override;
};

class MatrixMulGenerator final : public KernelTraceGenerator {
public:
  KernelId kernel() const override { return KernelId::MatrixMul; }
  StreamStructure streamStructure() const override { return {true}; }

protected:
  void setUpCursors(GenState &S, const KernelDataLayout &L,
                    WorkSplit Split) const override;
  void cpuIteration(TraceEmitter &E, GenState &S) const override;
  void gpuIteration(TraceEmitter &E, GenState &S) const override;
};

class ConvolutionGenerator final : public KernelTraceGenerator {
public:
  KernelId kernel() const override { return KernelId::Convolution; }
  StreamStructure streamStructure() const override { return {true}; }

protected:
  void setUpCursors(GenState &S, const KernelDataLayout &L,
                    WorkSplit Split) const override;
  void cpuIteration(TraceEmitter &E, GenState &S) const override;
  void gpuIteration(TraceEmitter &E, GenState &S) const override;
};

class DctGenerator final : public KernelTraceGenerator {
public:
  KernelId kernel() const override { return KernelId::Dct; }
  StreamStructure streamStructure() const override { return {true}; }

protected:
  void setUpCursors(GenState &S, const KernelDataLayout &L,
                    WorkSplit Split) const override;
  void cpuIteration(TraceEmitter &E, GenState &S) const override;
  void gpuIteration(TraceEmitter &E, GenState &S) const override;
};

class MergeSortGenerator final : public KernelTraceGenerator {
public:
  KernelId kernel() const override { return KernelId::MergeSort; }
  StreamStructure streamStructure() const override { return {true}; }

protected:
  void setUpCursors(GenState &S, const KernelDataLayout &L,
                    WorkSplit Split) const override;
  void cpuIteration(TraceEmitter &E, GenState &S) const override;
  void gpuIteration(TraceEmitter &E, GenState &S) const override;
};

class KMeansGenerator final : public KernelTraceGenerator {
public:
  KernelId kernel() const override { return KernelId::KMeans; }
  StreamStructure streamStructure() const override { return {true}; }

protected:
  void setUpCursors(GenState &S, const KernelDataLayout &L,
                    WorkSplit Split) const override;
  void cpuIteration(TraceEmitter &E, GenState &S) const override;
  void gpuIteration(TraceEmitter &E, GenState &S) const override;
};

} // namespace hetsim

#endif // HETSIM_TRACE_KERNELTRACEGENERATOR_H
