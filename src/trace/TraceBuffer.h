//===- trace/TraceBuffer.h - A materialized instruction trace ---*- C++ -*-===//
///
/// \file
/// A growable sequence of TraceRecords with emission helpers and summary
/// statistics. Kernel generators fill TraceBuffers; core models consume
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_TRACEBUFFER_H
#define HETSIM_TRACE_TRACEBUFFER_H

#include "trace/TraceRecord.h"

#include <memory>
#include <vector>

namespace hetsim {

/// Summary counts over a trace.
struct TraceMix {
  uint64_t Total = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Branches = 0;
  uint64_t Alu = 0;
  uint64_t Smem = 0;
  uint64_t MemBytes = 0;
};

/// A materialized trace plus convenience emitters used by the generators.
class TraceBuffer {
public:
  TraceBuffer() = default;

  /// Pre-allocates space for \p Count records.
  void reserve(size_t Count) { Records.reserve(Count); }

  /// Appends \p Record verbatim.
  void append(const TraceRecord &Record) { Records.push_back(Record); }

  /// Emits an ALU-class instruction Dst <- SrcA op SrcB.
  void emitAlu(Opcode Op, uint32_t Pc, uint8_t Dst, uint8_t SrcA,
               uint8_t SrcB = NoReg);

  /// Emits a scalar load of \p Bytes at \p Address into \p Dst.
  void emitLoad(uint32_t Pc, uint8_t Dst, Addr Address, uint16_t Bytes,
                uint8_t AddrReg = NoReg);

  /// Emits a scalar store of \p Bytes at \p Address from \p Src.
  void emitStore(uint32_t Pc, uint8_t Src, Addr Address, uint16_t Bytes,
                 uint8_t AddrReg = NoReg);

  /// Emits a conditional branch at \p Pc with outcome \p Taken, optionally
  /// depending on \p CondReg.
  void emitBranch(uint32_t Pc, bool Taken, uint8_t CondReg = NoReg);

  /// Emits a GPU warp load: \p Lanes lanes of \p BytesPerLane starting at
  /// \p Address with \p StrideBytes between lanes.
  void emitSimdLoad(uint32_t Pc, uint8_t Dst, Addr Address,
                    uint16_t BytesPerLane, uint8_t Lanes,
                    uint16_t StrideBytes);

  /// Emits a GPU warp store.
  void emitSimdStore(uint32_t Pc, uint8_t Src, Addr Address,
                     uint16_t BytesPerLane, uint8_t Lanes,
                     uint16_t StrideBytes);

  /// Emits a scratchpad (software-managed cache) access. \p StrideBytes
  /// is the lane stride (bank-conflict behaviour; 4 = conflict-free).
  void emitSmem(bool IsStore, uint32_t Pc, uint8_t Reg, Addr Offset,
                uint16_t Bytes, uint8_t Lanes = 1,
                uint16_t StrideBytes = 4);

  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  const TraceRecord &operator[](size_t I) const { return Records[I]; }

  const std::vector<TraceRecord> &records() const { return Records; }

  std::vector<TraceRecord>::const_iterator begin() const {
    return Records.begin();
  }
  std::vector<TraceRecord>::const_iterator end() const {
    return Records.end();
  }

  /// Computes the instruction-mix summary.
  TraceMix computeMix() const;

  /// Removes all records.
  void clear() { Records.clear(); }

private:
  std::vector<TraceRecord> Records;
};

/// An immutable, shareable trace handle. Lowered programs hold their
/// traces through this so N sweep points over the same (kernel, params)
/// share one materialized buffer (the trace cache hands out the same
/// underlying TraceBuffer to every thread). It reads exactly like a
/// `const TraceBuffer`: size/records/iteration/implicit conversion all
/// forward to the wrapped buffer; a default-constructed handle behaves as
/// an empty trace.
class SharedTrace {
public:
  SharedTrace() = default;

  /// Wraps a freshly generated buffer (takes sole ownership).
  SharedTrace(TraceBuffer Buffer)
      : Ptr(std::make_shared<const TraceBuffer>(std::move(Buffer))) {}

  /// Adopts an already-shared buffer (trace-cache hits).
  SharedTrace(std::shared_ptr<const TraceBuffer> Shared)
      : Ptr(std::move(Shared)) {}

  const TraceBuffer &buffer() const {
    static const TraceBuffer Empty;
    return Ptr ? *Ptr : Empty;
  }
  operator const TraceBuffer &() const { return buffer(); }

  size_t size() const { return Ptr ? Ptr->size() : 0; }
  bool empty() const { return size() == 0; }
  const TraceRecord &operator[](size_t I) const { return buffer()[I]; }
  const std::vector<TraceRecord> &records() const {
    return buffer().records();
  }
  std::vector<TraceRecord>::const_iterator begin() const {
    return buffer().begin();
  }
  std::vector<TraceRecord>::const_iterator end() const {
    return buffer().end();
  }

  /// Number of co-owners (telemetry: >1 means the cache deduplicated).
  long useCount() const { return Ptr ? Ptr.use_count() : 0; }

private:
  std::shared_ptr<const TraceBuffer> Ptr;
};

} // namespace hetsim

#endif // HETSIM_TRACE_TRACEBUFFER_H
