//===- trace/TraceBuffer.h - A materialized instruction trace ---*- C++ -*-===//
///
/// \file
/// A growable sequence of TraceRecords with emission helpers and summary
/// statistics. Kernel generators fill TraceBuffers; core models consume
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_TRACEBUFFER_H
#define HETSIM_TRACE_TRACEBUFFER_H

#include "trace/TraceRecord.h"

#include <cassert>
#include <memory>
#include <vector>

namespace hetsim {

/// Summary counts over a trace.
struct TraceMix {
  uint64_t Total = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Branches = 0;
  uint64_t Alu = 0;
  uint64_t Smem = 0;
  uint64_t MemBytes = 0;
};

/// A materialized trace plus convenience emitters used by the generators.
class TraceBuffer {
public:
  TraceBuffer() = default;

  /// Pre-allocates space for \p Count records.
  void reserve(size_t Count) { Records.reserve(Count); }

  /// Appends \p Record verbatim.
  void append(const TraceRecord &Record) { Records.push_back(Record); }

  // The emitters are inline and construct records in place: the window
  // expansion path runs them tens of millions of times per sweep, and an
  // out-of-line construct-then-push_back showed up at >10% of sweep time.

  /// Emits an ALU-class instruction Dst <- SrcA op SrcB.
  void emitAlu(Opcode Op, uint32_t Pc, uint8_t Dst, uint8_t SrcA,
               uint8_t SrcB = NoReg) {
    assert(!isMemoryOp(Op) && !isBranchOp(Op) && "use the typed emitters");
    TraceRecord &R = appendDefault();
    R.Op = Op;
    R.Pc = Pc;
    R.DstReg = Dst;
    R.SrcRegA = SrcA;
    R.SrcRegB = SrcB;
  }

  /// Emits a scalar load of \p Bytes at \p Address into \p Dst.
  void emitLoad(uint32_t Pc, uint8_t Dst, Addr Address, uint16_t Bytes,
                uint8_t AddrReg = NoReg) {
    TraceRecord &R = appendDefault();
    R.Op = Opcode::Load;
    R.Pc = Pc;
    R.DstReg = Dst;
    R.SrcRegA = AddrReg;
    R.MemAddr = Address;
    R.MemBytes = Bytes;
  }

  /// Emits a scalar store of \p Bytes at \p Address from \p Src.
  void emitStore(uint32_t Pc, uint8_t Src, Addr Address, uint16_t Bytes,
                 uint8_t AddrReg = NoReg) {
    TraceRecord &R = appendDefault();
    R.Op = Opcode::Store;
    R.Pc = Pc;
    R.SrcRegA = Src;
    R.SrcRegB = AddrReg;
    R.MemAddr = Address;
    R.MemBytes = Bytes;
  }

  /// Emits a conditional branch at \p Pc with outcome \p Taken, optionally
  /// depending on \p CondReg.
  void emitBranch(uint32_t Pc, bool Taken, uint8_t CondReg = NoReg) {
    TraceRecord &R = appendDefault();
    R.Op = Opcode::Branch;
    R.Pc = Pc;
    R.SrcRegA = CondReg;
    R.IsTaken = Taken;
  }

  /// Emits a GPU warp load: \p Lanes lanes of \p BytesPerLane starting at
  /// \p Address with \p StrideBytes between lanes.
  void emitSimdLoad(uint32_t Pc, uint8_t Dst, Addr Address,
                    uint16_t BytesPerLane, uint8_t Lanes,
                    uint16_t StrideBytes) {
    assert(Lanes >= 1 && Lanes <= 32 && "implausible lane count");
    TraceRecord &R = appendDefault();
    R.Op = Opcode::Load;
    R.Pc = Pc;
    R.DstReg = Dst;
    R.MemAddr = Address;
    R.MemBytes = BytesPerLane;
    R.SimdLanes = Lanes;
    R.LaneStrideBytes = StrideBytes;
  }

  /// Emits a GPU warp store.
  void emitSimdStore(uint32_t Pc, uint8_t Src, Addr Address,
                     uint16_t BytesPerLane, uint8_t Lanes,
                     uint16_t StrideBytes) {
    assert(Lanes >= 1 && Lanes <= 32 && "implausible lane count");
    TraceRecord &R = appendDefault();
    R.Op = Opcode::Store;
    R.Pc = Pc;
    R.SrcRegA = Src;
    R.MemAddr = Address;
    R.MemBytes = BytesPerLane;
    R.SimdLanes = Lanes;
    R.LaneStrideBytes = StrideBytes;
  }

  /// Emits a scratchpad (software-managed cache) access. \p StrideBytes
  /// is the lane stride (bank-conflict behaviour; 4 = conflict-free).
  void emitSmem(bool IsStore, uint32_t Pc, uint8_t Reg, Addr Offset,
                uint16_t Bytes, uint8_t Lanes = 1,
                uint16_t StrideBytes = 4) {
    TraceRecord &R = appendDefault();
    R.Op = IsStore ? Opcode::SmemStore : Opcode::SmemLoad;
    R.Pc = Pc;
    if (IsStore)
      R.SrcRegA = Reg;
    else
      R.DstReg = Reg;
    R.MemAddr = Offset;
    R.MemBytes = Bytes;
    R.SimdLanes = Lanes;
    R.LaneStrideBytes = StrideBytes;
  }

  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  const TraceRecord &operator[](size_t I) const { return Records[I]; }

  const std::vector<TraceRecord> &records() const { return Records; }

  std::vector<TraceRecord>::const_iterator begin() const {
    return Records.begin();
  }
  std::vector<TraceRecord>::const_iterator end() const {
    return Records.end();
  }

  /// Computes the instruction-mix summary.
  TraceMix computeMix() const;

  /// Removes all records.
  void clear() { Records.clear(); }

private:
  TraceRecord &appendDefault() {
    Records.emplace_back();
    return Records.back();
  }

  std::vector<TraceRecord> Records;
};

class BlockTrace;

/// An immutable, shareable trace handle. Lowered programs hold their
/// traces through this so N sweep points over the same (kernel, params)
/// share one materialized buffer (the trace cache hands out the same
/// underlying TraceBuffer to every thread). It reads exactly like a
/// `const TraceBuffer`: size/records/iteration/implicit conversion all
/// forward to the wrapped buffer; a default-constructed handle behaves as
/// an empty trace.
///
/// A handle may alternatively wrap a run-length BlockTrace (the compute
/// fast path). Cores check blocks() first and expand windows; any caller
/// that reaches for buffer()/records() transparently gets the block's
/// lazily materialized form instead, so existing consumers keep working
/// unchanged.
class SharedTrace {
public:
  SharedTrace() = default;

  /// Wraps a freshly generated buffer (takes sole ownership).
  SharedTrace(TraceBuffer Buffer)
      : Ptr(std::make_shared<const TraceBuffer>(std::move(Buffer))) {}

  /// Adopts an already-shared buffer (trace-cache hits).
  SharedTrace(std::shared_ptr<const TraceBuffer> Shared)
      : Ptr(std::move(Shared)) {}

  /// Adopts a run-length block (fast path).
  SharedTrace(std::shared_ptr<const BlockTrace> Block)
      : Blocks(std::move(Block)) {}

  /// The materialized record stream (materializes a block on first use).
  const TraceBuffer &buffer() const;
  operator const TraceBuffer &() const { return buffer(); }

  /// The run-length form, or nullptr for materialized handles.
  const BlockTrace *blocks() const { return Blocks.get(); }

  /// Record count without forcing materialization.
  size_t size() const;
  bool empty() const { return size() == 0; }
  const TraceRecord &operator[](size_t I) const { return buffer()[I]; }
  const std::vector<TraceRecord> &records() const {
    return buffer().records();
  }
  std::vector<TraceRecord>::const_iterator begin() const {
    return buffer().begin();
  }
  std::vector<TraceRecord>::const_iterator end() const {
    return buffer().end();
  }

  /// Number of co-owners (telemetry: >1 means the cache deduplicated).
  long useCount() const {
    return Ptr ? Ptr.use_count() : (Blocks ? Blocks.use_count() : 0);
  }

private:
  std::shared_ptr<const TraceBuffer> Ptr;
  std::shared_ptr<const BlockTrace> Blocks;
};

} // namespace hetsim

#endif // HETSIM_TRACE_TRACEBUFFER_H
