//===- trace/KernelTraceGenerator.cpp -------------------------------------===//

#include "trace/KernelTraceGenerator.h"

#include "common/Error.h"
#include "trace/ComputeBlock.h"

#include <cassert>

using namespace hetsim;

KernelTraceGenerator::~KernelTraceGenerator() = default;

StreamCursor KernelTraceGenerator::cursorFor(const DataSegment &Segment,
                                             WorkSplit Split) {
  StreamCursor Cursor;
  uint64_t Half = alignDown(Segment.Bytes / 2, CacheLineBytes);
  // Tiny objects (constant tables) are not split; both PUs read them whole.
  if (Half < CacheLineBytes)
    Split = WorkSplit::FullRange;
  switch (Split) {
  case WorkSplit::FullRange:
    Cursor.Base = Segment.Base;
    Cursor.Bytes = Segment.Bytes;
    break;
  case WorkSplit::FirstHalf:
    Cursor.Base = Segment.Base;
    Cursor.Bytes = Half;
    break;
  case WorkSplit::SecondHalf:
    Cursor.Base = Segment.Base + Half;
    Cursor.Bytes = Segment.Bytes - Half;
    break;
  }
  assert(Cursor.Bytes > 0 && "empty cursor range");
  return Cursor;
}

void KernelTraceGenerator::beginCompute(GenState &S, const GenRequest &Req,
                                        const KernelDataLayout &Layout) const {
  S = GenState();
  setUpCursors(S, Layout, Req.Split);
  S.Rng = XorShiftRng(Req.Seed * 2654435761u + static_cast<uint64_t>(Req.Pu));
  S.Iter = 0;
}

uint64_t KernelTraceGenerator::emitCompute(GenState &S, const GenRequest &Req,
                                           TraceBuffer &Window,
                                           uint64_t Budget,
                                           size_t WindowTarget) const {
  const size_t Before = Window.size();
  TraceEmitter Emitter(Window, Budget, WindowTarget + 64);
  if (Req.Pu == PuKind::Cpu) {
    while (!Emitter.done() && Window.size() - Before < WindowTarget) {
      cpuIteration(Emitter, S);
      ++S.Iter;
    }
  } else {
    while (!Emitter.done() && Window.size() - Before < WindowTarget) {
      gpuIteration(Emitter, S);
      ++S.Iter;
    }
  }
  return Window.size() - Before;
}

TraceBuffer
KernelTraceGenerator::generateCompute(const GenRequest &Req,
                                      const KernelDataLayout &Layout) const {
  TraceBuffer Buffer;
  if (Req.InstCount == 0)
    return Buffer;
  TraceGenScope Timer;
  GenState S;
  beginCompute(S, Req, Layout);
  emitCompute(S, Req, Buffer, Req.InstCount, size_t(Req.InstCount));
  assert(Buffer.size() == Req.InstCount && "generator missed its budget");
  return Buffer;
}

void KernelTraceGenerator::beginSerial(GenState &S,
                                       const KernelDataLayout &Layout,
                                       uint64_t Seed) const {
  S = GenState();
  const std::vector<DataSegment> &Segments = Layout.segments();
  assert(!Segments.empty() && "layout has no segments");
  const DataSegment *Output = &Segments.back();
  for (const DataSegment &Segment : Segments)
    if (Segment.Dir == TransferDir::DeviceToHost)
      Output = &Segment;
  S.Cur[0] = cursorFor(*Output, WorkSplit::FullRange);
  S.Rng = XorShiftRng(Seed * 0x9E3779B9u + 7);
}

uint64_t KernelTraceGenerator::emitSerial(GenState &S, TraceBuffer &Window,
                                          uint64_t Budget,
                                          size_t WindowTarget) const {
  // The sequential portion is a CPU-only merge/finalize pass over the
  // kernel's output object: load partial results, combine, occasionally
  // store, loop. One iteration is 8 instructions.
  const size_t Before = Window.size();
  TraceEmitter E(Window, Budget, WindowTarget + 16);
  StreamCursor &Out = S.Cur[0];
  const uint32_t Pc = pcBase() + 0x8000;
  while (!E.done() && Window.size() - Before < WindowTarget) {
    Addr Address = Out.advance(4);
    E.load(Pc + 0, 8, Address, 4);
    E.alu(Opcode::FpAlu, Pc + 4, 9, 8, 10);
    E.alu(Opcode::IntAlu, Pc + 8, 10, 9);
    E.alu(Opcode::FpAlu, Pc + 12, 11, 10, 9);
    if (S.Iter % 4 == 3)
      E.store(Pc + 16, 11, Address, 4);
    else
      E.alu(Opcode::IntAlu, Pc + 16, 12, 11);
    E.alu(Opcode::IntAlu, Pc + 20, 0, 0);
    E.alu(Opcode::IntAlu, Pc + 24, 13, 12, 11);
    E.branch(Pc + 28, /*Taken=*/true, 0);
    ++S.Iter;
  }
  return Window.size() - Before;
}

TraceBuffer
KernelTraceGenerator::generateSerial(uint64_t InstCount,
                                     const KernelDataLayout &Layout,
                                     uint64_t Seed) const {
  TraceBuffer Buffer;
  if (InstCount == 0)
    return Buffer;
  TraceGenScope Timer;
  GenState S;
  beginSerial(S, Layout, Seed);
  emitSerial(S, Buffer, InstCount, size_t(InstCount));
  assert(Buffer.size() == InstCount && "serial generator missed its budget");
  return Buffer;
}

const KernelTraceGenerator &KernelTraceGenerator::forKernel(KernelId Id) {
  static const ReductionGenerator Reduction;
  static const MatrixMulGenerator MatrixMul;
  static const ConvolutionGenerator Convolution;
  static const DctGenerator Dct;
  static const MergeSortGenerator MergeSort;
  static const KMeansGenerator KMeans;
  switch (Id) {
  case KernelId::Reduction:
    return Reduction;
  case KernelId::MatrixMul:
    return MatrixMul;
  case KernelId::Convolution:
    return Convolution;
  case KernelId::Dct:
    return Dct;
  case KernelId::MergeSort:
    return MergeSort;
  case KernelId::KMeans:
    return KMeans;
  }
  hetsim_unreachable("invalid kernel id");
}
