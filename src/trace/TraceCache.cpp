//===- trace/TraceCache.cpp -----------------------------------------------===//

#include "trace/TraceCache.h"

#include <cstdlib>
#include <cstring>

using namespace hetsim;

namespace {

/// FNV-1a over arbitrary bytes.
uint64_t fnv1a(uint64_t Hash, const void *Data, size_t Bytes) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Bytes; ++I) {
    Hash ^= P[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

uint64_t fnv1aU64(uint64_t Hash, uint64_t Value) {
  return fnv1a(Hash, &Value, sizeof(Value));
}

/// Fingerprints everything the generators read from a layout: segment
/// order, names, placed addresses, sizes, and transfer directions.
uint64_t layoutFingerprint(const KernelDataLayout &Layout) {
  uint64_t Hash = 14695981039346656037ull;
  for (const DataSegment &Segment : Layout.segments()) {
    Hash = fnv1a(Hash, Segment.Name.data(), Segment.Name.size());
    Hash = fnv1aU64(Hash, Segment.Base);
    Hash = fnv1aU64(Hash, Segment.Bytes);
    Hash = fnv1aU64(Hash, static_cast<uint64_t>(Segment.Dir));
  }
  return Hash;
}

} // namespace

size_t TraceCache::KeyHash::operator()(const Key &K) const {
  uint64_t Hash = 14695981039346656037ull;
  Hash = fnv1aU64(Hash, static_cast<uint64_t>(K.Kernel));
  Hash = fnv1aU64(Hash, K.Kind);
  Hash = fnv1aU64(Hash, K.Split);
  Hash = fnv1aU64(Hash, K.InstCount);
  Hash = fnv1aU64(Hash, K.Seed);
  Hash = fnv1aU64(Hash, K.LayoutHash);
  return static_cast<size_t>(Hash);
}

TraceCache::TraceCache() {
  if (const char *Env = std::getenv("HETSIM_TRACE_CACHE"))
    Enabled = std::strcmp(Env, "0") != 0;
}

TraceCache &TraceCache::global() {
  static TraceCache Instance;
  return Instance;
}

std::shared_ptr<const TraceBuffer>
TraceCache::getOrGenerate(const Key &K,
                          const KernelTraceGenerator &Generator,
                          const std::function<TraceBuffer()> &Generate) {
  unsigned GenIndex = static_cast<unsigned>(K.Kernel) % NumKernels;
  if (!Enabled) {
    // Bypass mode still serializes generation: the static generators'
    // cursor state is shared, cache or no cache.
    std::lock_guard<std::mutex> Gen(GenMutex[GenIndex]);
    (void)Generator;
    return std::make_shared<const TraceBuffer>(Generate());
  }

  {
    std::shared_lock<std::shared_mutex> Read(MapMutex);
    auto It = Map.find(K);
    if (It != Map.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }

  // Miss: take the kernel's generation lock, then re-check — another
  // thread may have generated this key while we waited.
  std::lock_guard<std::mutex> Gen(GenMutex[GenIndex]);
  {
    std::shared_lock<std::shared_mutex> Read(MapMutex);
    auto It = Map.find(K);
    if (It != Map.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }

  auto Trace = std::make_shared<const TraceBuffer>(Generate());
  Misses.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock<std::shared_mutex> Write(MapMutex);
    Map.emplace(K, Trace);
  }
  return Trace;
}

std::shared_ptr<const TraceBuffer>
TraceCache::compute(KernelId Kernel, const GenRequest &Req,
                    const KernelDataLayout &Layout) {
  const KernelTraceGenerator &Generator =
      KernelTraceGenerator::forKernel(Kernel);
  Key K;
  K.Kernel = Kernel;
  K.Kind = Req.Pu == PuKind::Cpu ? 0 : 1;
  K.Split = static_cast<uint8_t>(Req.Split);
  K.InstCount = Req.InstCount;
  K.Seed = Req.Seed;
  K.LayoutHash = layoutFingerprint(Layout);
  return getOrGenerate(K, Generator, [&] {
    return Generator.generateCompute(Req, Layout);
  });
}

std::shared_ptr<const TraceBuffer>
TraceCache::serial(KernelId Kernel, uint64_t InstCount,
                   const KernelDataLayout &Layout, uint64_t Seed) {
  const KernelTraceGenerator &Generator =
      KernelTraceGenerator::forKernel(Kernel);
  Key K;
  K.Kernel = Kernel;
  K.Kind = 2;
  K.Split = 0;
  K.InstCount = InstCount;
  K.Seed = Seed;
  K.LayoutHash = layoutFingerprint(Layout);
  return getOrGenerate(K, Generator, [&] {
    return Generator.generateSerial(InstCount, Layout, Seed);
  });
}

SharedTrace TraceCache::computeShared(KernelId Kernel, const GenRequest &Req,
                                      const KernelDataLayout &Layout) {
  if (!fastPathEnabled())
    return SharedTrace(compute(Kernel, Req, Layout));
  if (!Enabled)
    return SharedTrace(std::make_shared<const BlockTrace>(Kernel, Req,
                                                          Layout));
  Key K;
  K.Kernel = Kernel;
  K.Kind = Req.Pu == PuKind::Cpu ? 0 : 1;
  K.Split = static_cast<uint8_t>(Req.Split);
  K.InstCount = Req.InstCount;
  K.Seed = Req.Seed;
  K.LayoutHash = layoutFingerprint(Layout);
  {
    std::shared_lock<std::shared_mutex> Read(MapMutex);
    auto It = BlockMap.find(K);
    if (It != BlockMap.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return SharedTrace(It->second);
    }
  }
  auto Block = std::make_shared<const BlockTrace>(Kernel, Req, Layout);
  std::unique_lock<std::shared_mutex> Write(MapMutex);
  auto [It, Inserted] = BlockMap.emplace(K, std::move(Block));
  if (Inserted)
    Misses.fetch_add(1, std::memory_order_relaxed);
  else
    Hits.fetch_add(1, std::memory_order_relaxed);
  return SharedTrace(It->second);
}

SharedTrace TraceCache::serialShared(KernelId Kernel, uint64_t InstCount,
                                     const KernelDataLayout &Layout,
                                     uint64_t Seed) {
  if (!fastPathEnabled())
    return SharedTrace(serial(Kernel, InstCount, Layout, Seed));
  if (!Enabled)
    return SharedTrace(
        std::make_shared<const BlockTrace>(Kernel, InstCount, Seed, Layout));
  Key K;
  K.Kernel = Kernel;
  K.Kind = 2;
  K.Split = 0;
  K.InstCount = InstCount;
  K.Seed = Seed;
  K.LayoutHash = layoutFingerprint(Layout);
  {
    std::shared_lock<std::shared_mutex> Read(MapMutex);
    auto It = BlockMap.find(K);
    if (It != BlockMap.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return SharedTrace(It->second);
    }
  }
  auto Block =
      std::make_shared<const BlockTrace>(Kernel, InstCount, Seed, Layout);
  std::unique_lock<std::shared_mutex> Write(MapMutex);
  auto [It, Inserted] = BlockMap.emplace(K, std::move(Block));
  if (Inserted)
    Misses.fetch_add(1, std::memory_order_relaxed);
  else
    Hits.fetch_add(1, std::memory_order_relaxed);
  return SharedTrace(It->second);
}

TraceCacheStats TraceCache::stats() const {
  TraceCacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  return S;
}

void TraceCache::publishStats(StatRegistry &Registry) const {
  Registry.counterRef("trace_cache.hits") =
      Hits.load(std::memory_order_relaxed);
  Registry.counterRef("trace_cache.misses") =
      Misses.load(std::memory_order_relaxed);
}

void TraceCache::clear() {
  std::unique_lock<std::shared_mutex> Write(MapMutex);
  Map.clear();
  BlockMap.clear();
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
}

size_t TraceCache::entryCount() const {
  std::shared_lock<std::shared_mutex> Read(MapMutex);
  return Map.size() + BlockMap.size();
}
