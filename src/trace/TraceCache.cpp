//===- trace/TraceCache.cpp -----------------------------------------------===//

#include "trace/TraceCache.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace hetsim;

namespace {

/// FNV-1a over arbitrary bytes.
uint64_t fnv1a(uint64_t Hash, const void *Data, size_t Bytes) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Bytes; ++I) {
    Hash ^= P[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

uint64_t fnv1aU64(uint64_t Hash, uint64_t Value) {
  return fnv1a(Hash, &Value, sizeof(Value));
}

std::atomic<uint64_t> CacheWaitNanos{0};
thread_local uint64_t TlCacheWaitNanos = 0;

/// RAII accumulator for traceCacheWaitNanos(): times one blocking stretch
/// (future wait or exclusive-lock acquisition) on the cold paths only —
/// the shared-lock hit path is deliberately untimed.
class WaitScope {
public:
  WaitScope() : Start(std::chrono::steady_clock::now()) {}
  ~WaitScope() {
    auto Nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    CacheWaitNanos.fetch_add(uint64_t(Nanos), std::memory_order_relaxed);
    TlCacheWaitNanos += uint64_t(Nanos);
  }
  WaitScope(const WaitScope &) = delete;
  WaitScope &operator=(const WaitScope &) = delete;

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace

uint64_t hetsim::traceCacheWaitNanos() {
  return CacheWaitNanos.load(std::memory_order_relaxed);
}

uint64_t hetsim::threadTraceCacheWaitNanos() { return TlCacheWaitNanos; }

size_t TraceCache::KeyHash::operator()(const Key &K) const {
  uint64_t Hash = 14695981039346656037ull;
  Hash = fnv1aU64(Hash, static_cast<uint64_t>(K.Kernel));
  Hash = fnv1aU64(Hash, K.Kind);
  Hash = fnv1aU64(Hash, K.Split);
  Hash = fnv1aU64(Hash, K.InstCount);
  Hash = fnv1aU64(Hash, K.Seed);
  Hash = fnv1aU64(Hash, K.LayoutHash);
  return static_cast<size_t>(Hash);
}

TraceCache::TraceCache() {
  if (const char *Env = std::getenv("HETSIM_TRACE_CACHE"))
    Enabled = std::strcmp(Env, "0") != 0;
}

TraceCache &TraceCache::global() {
  static TraceCache Instance;
  return Instance;
}

TraceCache::Shard &TraceCache::shardFor(const Key &K, size_t &HashOut) {
  HashOut = KeyHash()(K);
  static_assert((NumShards & (NumShards - 1)) == 0,
                "shard selection needs a power of two");
  return Shards[(HashOut >> 60) & (NumShards - 1)];
}

TraceCache::TracePtr
TraceCache::getOrGenerate(const Key &K,
                          const std::function<TraceBuffer()> &Generate) {
  if (!Enabled) {
    // Bypass regenerates per request. Since PR 5 the generators are
    // stateless (all cursor state lives in a caller-owned GenState), so
    // concurrent bypass generation needs no serialization.
    return std::make_shared<const TraceBuffer>(Generate());
  }

  size_t Hash;
  Shard &S = shardFor(K, Hash);

  // Hot path: a shared lock on this key's shard only.
  std::shared_future<TracePtr> Flight;
  {
    std::shared_lock<std::shared_mutex> Read(S.Mutex);
    auto It = S.Map.find(K);
    if (It != S.Map.end())
      Flight = It->second;
  }
  if (Flight.valid()) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    if (Flight.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      WaitScope Wait;
      return Flight.get();
    }
    return Flight.get();
  }

  // Miss: install a single-flight slot for this key, or adopt the slot a
  // concurrent requester installed first. Only the installer generates.
  std::promise<TracePtr> Mine;
  bool Installed = false;
  {
    WaitScope Wait; // Exclusive-lock acquisition can block behind peers.
    std::unique_lock<std::shared_mutex> Write(S.Mutex);
    auto [It, Inserted] = S.Map.try_emplace(K);
    if (Inserted) {
      It->second = Mine.get_future().share();
      Installed = true;
    }
    Flight = It->second;
  }
  if (!Installed) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    WaitScope Wait;
    return Flight.get();
  }

  try {
    auto Trace = std::make_shared<const TraceBuffer>(Generate());
    Misses.fetch_add(1, std::memory_order_relaxed);
    Generations.fetch_add(1, std::memory_order_relaxed);
    Mine.set_value(Trace);
    return Trace;
  } catch (...) {
    // Failed generation must not wedge the key: drop the slot so a later
    // request retries, and propagate the error to current waiters.
    {
      std::unique_lock<std::shared_mutex> Write(S.Mutex);
      S.Map.erase(K);
    }
    Mine.set_exception(std::current_exception());
    throw;
  }
}

SharedTrace
TraceCache::getOrMakeBlock(const Key &K,
                           const std::function<BlockPtr()> &Make) {
  size_t Hash;
  Shard &S = shardFor(K, Hash);
  {
    std::shared_lock<std::shared_mutex> Read(S.Mutex);
    auto It = S.BlockMap.find(K);
    if (It != S.BlockMap.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return SharedTrace(It->second);
    }
  }
  // Recipe construction is a cheap layout copy; build outside any lock
  // and let the first inserter win. Losers adopt the winner's block, so
  // the pointer handed out for a key is stable.
  BlockPtr Block = Make();
  WaitScope Wait;
  std::unique_lock<std::shared_mutex> Write(S.Mutex);
  auto [It, Inserted] = S.BlockMap.emplace(K, std::move(Block));
  if (Inserted) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    // Cached blocks are expanded once per sweep point that shares them:
    // let the first expansion tee its output so the rest are zero-copy.
    It->second->enableExpansionReuse();
  } else {
    Hits.fetch_add(1, std::memory_order_relaxed);
  }
  return SharedTrace(It->second);
}

std::shared_ptr<const TraceBuffer>
TraceCache::compute(KernelId Kernel, const GenRequest &Req,
                    const KernelDataLayout &Layout) {
  const KernelTraceGenerator &Generator =
      KernelTraceGenerator::forKernel(Kernel);
  Key K;
  K.Kernel = Kernel;
  K.Kind = Req.Pu == PuKind::Cpu ? 0 : 1;
  K.Split = static_cast<uint8_t>(Req.Split);
  K.InstCount = Req.InstCount;
  K.Seed = Req.Seed;
  K.LayoutHash = Layout.fingerprint();
  return getOrGenerate(K, [&] {
    return Generator.generateCompute(Req, Layout);
  });
}

std::shared_ptr<const TraceBuffer>
TraceCache::serial(KernelId Kernel, uint64_t InstCount,
                   const KernelDataLayout &Layout, uint64_t Seed) {
  const KernelTraceGenerator &Generator =
      KernelTraceGenerator::forKernel(Kernel);
  Key K;
  K.Kernel = Kernel;
  K.Kind = 2;
  K.Split = 0;
  K.InstCount = InstCount;
  K.Seed = Seed;
  K.LayoutHash = Layout.fingerprint();
  return getOrGenerate(K, [&] {
    return Generator.generateSerial(InstCount, Layout, Seed);
  });
}

SharedTrace TraceCache::computeShared(KernelId Kernel, const GenRequest &Req,
                                      const KernelDataLayout &Layout) {
  if (!fastPathEnabled())
    return SharedTrace(compute(Kernel, Req, Layout));
  if (!Enabled)
    return SharedTrace(std::make_shared<const BlockTrace>(Kernel, Req,
                                                          Layout));
  Key K;
  K.Kernel = Kernel;
  K.Kind = Req.Pu == PuKind::Cpu ? 0 : 1;
  K.Split = static_cast<uint8_t>(Req.Split);
  K.InstCount = Req.InstCount;
  K.Seed = Req.Seed;
  K.LayoutHash = Layout.fingerprint();
  return getOrMakeBlock(K, [&] {
    return std::make_shared<const BlockTrace>(Kernel, Req, Layout);
  });
}

SharedTrace TraceCache::serialShared(KernelId Kernel, uint64_t InstCount,
                                     const KernelDataLayout &Layout,
                                     uint64_t Seed) {
  if (!fastPathEnabled())
    return SharedTrace(serial(Kernel, InstCount, Layout, Seed));
  if (!Enabled)
    return SharedTrace(
        std::make_shared<const BlockTrace>(Kernel, InstCount, Seed, Layout));
  Key K;
  K.Kernel = Kernel;
  K.Kind = 2;
  K.Split = 0;
  K.InstCount = InstCount;
  K.Seed = Seed;
  K.LayoutHash = Layout.fingerprint();
  return getOrMakeBlock(K, [&] {
    return std::make_shared<const BlockTrace>(Kernel, InstCount, Seed,
                                              Layout);
  });
}

TraceCacheStats TraceCache::stats() const {
  TraceCacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  return S;
}

uint64_t TraceCache::generations() const {
  return Generations.load(std::memory_order_relaxed);
}

void TraceCache::publishStats(StatRegistry &Registry) const {
  Registry.counterRef("trace_cache.hits") =
      Hits.load(std::memory_order_relaxed);
  Registry.counterRef("trace_cache.misses") =
      Misses.load(std::memory_order_relaxed);
  Registry.counterRef("trace_cache.wait_ns") = traceCacheWaitNanos();
}

void TraceCache::clear() {
  for (Shard &S : Shards) {
    std::unique_lock<std::shared_mutex> Write(S.Mutex);
    S.Map.clear();
    S.BlockMap.clear();
  }
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
  Generations.store(0, std::memory_order_relaxed);
}

size_t TraceCache::entryCount() const {
  size_t Count = 0;
  for (const Shard &S : Shards) {
    std::shared_lock<std::shared_mutex> Read(S.Mutex);
    Count += S.Map.size() + S.BlockMap.size();
  }
  return Count;
}
