//===- trace/SpecialInst.h - Special-instruction fence semantics *- C++ -*-===//
///
/// \file
/// The paper's special instructions (Section IV-C, Table IV) as a typed
/// vocabulary with fence annotations. The lowering models programming-model
/// effects "with a series of special instructions"; each one carries an
/// ordering effect in addition to its Table IV latency: api-acq is an
/// acquire/release fence on the shared region, api-tr and api-pci order the
/// moved data behind their completion, lib-pf orders the faulted page, and
/// dma-wait is the copy-engine drain. The static race verifier
/// (analysis/RaceDetector) consumes these annotations through the
/// per-model visibility tables in memory/FenceSemantics.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_SPECIALINST_H
#define HETSIM_TRACE_SPECIALINST_H

#include "common/Types.h"

namespace hetsim {

/// The special-instruction vocabulary of Table IV plus the two control
/// transfers every lowering uses implicitly.
enum class SpecialInst : uint8_t {
  None = 0,     ///< Plain compute; no ordering effect.
  ApiPci,       ///< api-pci: PCI-E memcpy API call (disjoint spaces).
  ApiTr,        ///< api-tr: transfer through the PCI aperture (LRB).
  ApiAcq,       ///< api-acq: ownership acquire/release action (LRB).
  LibPf,        ///< lib-pf: shared-space page-fault handler (LRB).
  DmaWait,      ///< Drain of the asynchronous copy engine (GMAC).
  KernelLaunch, ///< CPU -> GPU control transfer (round start).
  KernelJoin,   ///< GPU -> CPU control transfer (round end).
};

/// Number of SpecialInst values.
inline constexpr unsigned NumSpecialInsts = 8;

/// The ordering effect a special instruction has on the memory system.
enum class FenceEffect : uint8_t {
  None = 0,        ///< No cross-PU ordering.
  Acquire,         ///< Later accesses ordered after the paired release.
  Release,         ///< Earlier accesses published to the paired acquire.
  AcquireRelease,  ///< Both directions (api-acq transfers ownership).
  TransferComplete,///< The moved data is ordered behind completion.
  EngineDrain,     ///< All in-flight asynchronous copies are retired.
};

/// Stable mnemonic for \p Inst ("api-acq", "dma-wait", ...).
const char *specialInstName(SpecialInst Inst);

/// Stable name for \p Effect ("acquire-release", "engine-drain", ...).
const char *fenceEffectName(FenceEffect Effect);

/// The ordering effect \p Inst carries. This is the model-independent
/// annotation; whether a given memory model *needs* the fence for a given
/// object is the per-model visibility table's decision
/// (memory/FenceSemantics.h).
FenceEffect fenceEffect(SpecialInst Inst);

} // namespace hetsim

#endif // HETSIM_TRACE_SPECIALINST_H
