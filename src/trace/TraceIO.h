//===- trace/TraceIO.h - Trace file serialization ---------------*- C++ -*-===//
///
/// \file
/// Binary save/load for TraceBuffers, so workloads can be captured once
/// and replayed across design points (the trace-driven methodology's
/// natural file format). The format is a small fixed header (magic,
/// version, record count) followed by packed records; integers are
/// little-endian (we serialize field-by-field, so the format is
/// independent of struct layout changes).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_TRACEIO_H
#define HETSIM_TRACE_TRACEIO_H

#include "trace/TraceBuffer.h"

#include <string>

namespace hetsim {

/// Current trace-file format version.
inline constexpr uint32_t TraceFileVersion = 1;

/// Writes \p Trace to \p Path; returns false on I/O failure.
bool saveTrace(const TraceBuffer &Trace, const std::string &Path);

/// Reads a trace from \p Path into \p Out (replacing its contents).
/// Returns false on I/O failure, bad magic, or version mismatch.
bool loadTrace(const std::string &Path, TraceBuffer &Out);

/// Serializes to an in-memory byte string (the file body).
std::string serializeTrace(const TraceBuffer &Trace);

/// Deserializes from bytes produced by serializeTrace().
bool deserializeTrace(const std::string &Bytes, TraceBuffer &Out);

} // namespace hetsim

#endif // HETSIM_TRACE_TRACEIO_H
