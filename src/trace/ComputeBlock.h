//===- trace/ComputeBlock.h - Run-length compute trace blocks ---*- C++ -*-===//
///
/// \file
/// Compact (run-length) representations of compute traces. A BlockTrace
/// describes a record stream by its *recipe* — a (generator, request)
/// pair, or an explicit prologue/body×N/epilogue pattern — instead of a
/// materialized vector of millions of TraceRecords. Cores expand blocks a
/// window at a time (a few thousand records that stay L1-resident), or
/// retire the periodic part of a Pattern block in closed form when their
/// pipeline state reaches a per-period fixed point.
///
/// Expansion is exact: BlockExpander replays the same generator code over
/// the same GenState, so the concatenation of all windows is byte-identical
/// to the single-shot buffer generateCompute/generateSerial would produce.
/// `HETSIM_FASTPATH=0` (or setFastPathForTesting) disables block-backed
/// traces entirely and restores the fully materialized reference path.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_COMPUTEBLOCK_H
#define HETSIM_TRACE_COMPUTEBLOCK_H

#include "trace/KernelTraceGenerator.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace hetsim {

/// Returns true when block-backed traces and the cores' run-length fast
/// path are enabled. Controlled by HETSIM_FASTPATH (default on; "0"
/// disables) and overridable for differential testing.
bool fastPathEnabled();

/// Test hook: forces the fast path on (1), off (0), or back to the
/// environment setting (-1). Not thread-safe against concurrent runs;
/// intended for use between simulations in a single-threaded test.
void setFastPathForTesting(int Mode);

/// Number of records an expansion window aims for. Small enough that the
/// reusable window buffer (~96KB) stays cache-resident while a core
/// consumes it, large enough to amortize per-window bookkeeping.
constexpr size_t ComputeWindowRecords = 4096;

/// Process-wide CPU nanoseconds spent producing trace records (single-shot
/// generation and window expansion alike), summed across threads. The
/// sweep telemetry diffs this around a sweep to split wall time into
/// trace-gen vs simulate phases.
uint64_t traceGenNanos();
void addTraceGenNanos(uint64_t Nanos);

/// The calling thread's share of traceGenNanos(). Per-worker sweep
/// attribution diffs this instead of the global sum: on an oversubscribed
/// host N workers' wall-clock scopes overlap, and summing them makes
/// trace-gen appear to balloon with the job count.
uint64_t threadTraceGenNanos();

/// Byte budget for expansion-reuse buffers (see BlockTrace::
/// enableExpansionReuse). HETSIM_EXPAND_REUSE_MB overrides; default 512.
uint64_t expandReuseBudgetBytes();

/// Bytes currently reserved against expandReuseBudgetBytes().
uint64_t expandReuseBytesInUse();

/// RAII accumulator for traceGenNanos().
class TraceGenScope {
public:
  TraceGenScope() : Start(std::chrono::steady_clock::now()) {}
  ~TraceGenScope() {
    addTraceGenNanos(uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - Start)
                                  .count()));
  }
  TraceGenScope(const TraceGenScope &) = delete;
  TraceGenScope &operator=(const TraceGenScope &) = delete;

private:
  std::chrono::steady_clock::time_point Start;
};

/// An explicit periodic trace: Prologue, then Body repeated BodyRepeats
/// times, then Epilogue. The natural shape for steady-state loop traces
/// whose per-iteration record sequence is literally identical (no RNG, no
/// address drift) — the cores' closed-form fold targets the Body.
struct PatternBlock {
  TraceBuffer Prologue;
  TraceBuffer Body;
  TraceBuffer Epilogue;
  uint64_t BodyRepeats = 0;

  uint64_t totalRecords() const {
    return Prologue.size() + Body.size() * BodyRepeats + Epilogue.size();
  }
};

/// A run-length trace handle: the recipe for a record stream plus a lazy
/// fully-materialized form for consumers that need random access (the
/// interleaved-contention path, tests, trace dumps).
class BlockTrace {
public:
  enum class Kind : uint8_t {
    ComputeGen, ///< generateCompute(Req, Layout) of one kernel.
    SerialGen,  ///< generateSerial(InstCount, Layout, Seed).
    Pattern,    ///< Explicit PatternBlock.
  };

  /// A compute segment: the stream generateCompute(\p Req, \p Layout)
  /// would produce for \p Kernel.
  BlockTrace(KernelId Kernel, const GenRequest &Req,
             const KernelDataLayout &Layout);

  /// A serial segment: generateSerial(\p InstCount, \p Layout, \p Seed).
  BlockTrace(KernelId Kernel, uint64_t InstCount, uint64_t Seed,
             const KernelDataLayout &Layout);

  /// An explicit pattern.
  explicit BlockTrace(PatternBlock Pattern);

  Kind kind() const { return K; }
  uint64_t totalRecords() const { return Total; }

  /// Valid only for Kind::Pattern.
  const PatternBlock &pattern() const { return Pat; }

  /// Valid only for ComputeGen/SerialGen.
  const KernelTraceGenerator &generator() const {
    return KernelTraceGenerator::forKernel(Kernel);
  }
  const GenRequest &request() const { return Req; }
  const KernelDataLayout &layout() const { return Layout; }
  uint64_t serialSeed() const { return Req.Seed; }

  /// The full record stream, materialized once on first use (thread-safe)
  /// and cached for the lifetime of the block.
  const TraceBuffer &materialized() const;

  ~BlockTrace();

  /// Opts this block into expansion reuse: the *first* window expansion
  /// tees its output into a full buffer (budget permitting), and every
  /// later expander serves zero-copy spans from that buffer instead of
  /// re-running the generator. The trace cache enables this on the blocks
  /// it shares across sweep points; per-run throwaway blocks (cache
  /// bypassed) stay windowed, since they are never expanded twice.
  void enableExpansionReuse() const;

  /// True when a full buffer exists that expanders can serve spans from.
  bool expansionReuseReady() const {
    return MatReady.load(std::memory_order_acquire);
  }

private:
  friend class BlockExpander;

  /// Claims the right to tee this block's first expansion. Reserves
  /// Total*sizeof(TraceRecord) bytes against the process-wide budget;
  /// returns false (and never retries the reservation) if the budget is
  /// exhausted or another expander already claimed it.
  bool claimTee() const;

  /// Installs a teed buffer as the materialized stream and marks it ready.
  void finishTee(std::unique_ptr<TraceBuffer> Teed) const;

  /// Abandons an in-flight tee (expander destroyed before draining):
  /// releases the reservation and reopens the claim for a later expander.
  void abortTee() const;

  Kind K;
  KernelId Kernel = KernelId::Reduction;
  GenRequest Req;           ///< SerialGen reuses InstCount/Seed fields.
  KernelDataLayout Layout;  ///< Empty for Pattern blocks.
  PatternBlock Pat;         ///< Empty for generator blocks.
  uint64_t Total = 0;

  mutable std::once_flag MatOnce;
  mutable std::unique_ptr<TraceBuffer> Mat;
  mutable std::atomic<bool> ReuseEnabled{false};
  mutable std::atomic<bool> MatReady{false};
  mutable std::atomic<int> TeeState{0}; ///< 0 open, 1 in flight, 2 done, 3 denied.
  mutable std::atomic<uint64_t> ReservedBytes{0};
};

/// Streams a BlockTrace into caller-owned windows. The window boundary
/// falls between generator iterations (except when the total budget ends
/// mid-iteration, exactly as single-shot generation would), so the
/// concatenation of windows equals the materialized stream record for
/// record.
class BlockExpander {
public:
  explicit BlockExpander(const BlockTrace &Block);
  ~BlockExpander();

  bool done() const { return Remaining == 0; }
  uint64_t remaining() const { return Remaining; }

  /// Clears \p Window and fills it with the next ~\p Target records.
  /// Returns the number of records produced (0 only when done()).
  uint64_t next(TraceBuffer &Window, size_t Target = ComputeWindowRecords);

  /// A run of expanded records. Points either into \p Window (generated
  /// this call) or into the block's shared materialized buffer (reuse);
  /// valid until the next call on this expander.
  struct Span {
    const TraceRecord *Data = nullptr;
    uint64_t Count = 0;
  };

  /// Like next(), but zero-copy when the block's materialized stream is
  /// available: serves the entire remainder as one span into the shared
  /// buffer without touching \p Window or the generator.
  Span nextSpan(TraceBuffer &Window, size_t Target = ComputeWindowRecords);

  /// Sampled-mode stepping (DESIGN.md §11): like nextSpan, but bounded to
  /// ~\p Target records even on the zero-copy reuse path, so the caller
  /// can window-sample the stream.
  Span nextWindow(TraceBuffer &Window, size_t Target = ComputeWindowRecords);

  /// Advances the stream by ~\p Target records without handing them to a
  /// core. Free on the reuse path (a cursor bump); otherwise the records
  /// are generated into \p Scratch — keeping generator state and any
  /// in-flight tee exact — and discarded. Returns the records skipped.
  uint64_t skip(TraceBuffer &Scratch, size_t Target = ComputeWindowRecords);

private:
  /// Appends a generated window to the in-flight tee buffer and installs
  /// it on the block once the stream is drained.
  void tee(const TraceBuffer &Window);

  const BlockTrace &Block;
  GenState S;
  uint64_t Remaining = 0;
  uint64_t PatPos = 0; ///< Pattern: global index into the logical stream.
  bool FromMat = false;  ///< Serving from the shared materialized buffer.
  uint64_t MatPos = 0;   ///< Cursor into that buffer.
  std::unique_ptr<TraceBuffer> Tee; ///< Non-null while teeing this expansion.
};

} // namespace hetsim

#endif // HETSIM_TRACE_COMPUTEBLOCK_H
