//===- trace/DataLayout.h - Placed kernel data objects ----------*- C++ -*-===//
///
/// \file
/// A KernelDataLayout assigns virtual base addresses to a kernel's data
/// objects. The address-space models (src/memory) decide placement (private
/// vs. shared region); trace generators then produce loads and stores whose
/// addresses fall inside the placed objects.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_DATALAYOUT_H
#define HETSIM_TRACE_DATALAYOUT_H

#include "trace/Kernel.h"

#include <string>
#include <vector>

namespace hetsim {

/// One placed data object.
struct DataSegment {
  std::string Name;
  Addr Base = 0;
  uint64_t Bytes = 0;
  TransferDir Dir = TransferDir::HostToDevice;

  /// Returns true if \p Address falls inside this segment.
  bool contains(Addr Address) const {
    return Address >= Base && Address < Base + Bytes;
  }
};

/// The set of placed data objects for one kernel instance.
class KernelDataLayout {
public:
  KernelDataLayout() = default;

  /// Adds a segment; names must be unique.
  void addSegment(DataSegment Segment);

  /// Finds a segment by name; aborts if absent (placement bugs should fail
  /// loudly, not silently generate wild addresses).
  const DataSegment &segment(const std::string &Name) const;

  /// Returns true if a segment named \p Name exists.
  bool hasSegment(const std::string &Name) const;

  /// Returns the segment containing \p Address, or nullptr.
  const DataSegment *segmentContaining(Addr Address) const;

  const std::vector<DataSegment> &segments() const { return Segments; }

  /// Sum of all segment sizes.
  uint64_t totalBytes() const;

  /// Places all of \p Kernel's data objects back to back starting at
  /// \p Base, aligning each to \p Align. This is the default layout used
  /// when no address-space model dictates placement.
  static KernelDataLayout makeLinear(KernelId Kernel, Addr Base,
                                     uint64_t Align = 4096);

  /// Same, for an arbitrary object list (custom workloads).
  static KernelDataLayout makeLinear(const std::vector<DataObjectSpec> &Objects,
                                     Addr Base, uint64_t Align = 4096);

  /// FNV-1a fingerprint over everything the trace generators read from
  /// this layout: segment order, names, placed addresses, sizes, and
  /// transfer directions. Identical fingerprints mean identical generated
  /// address streams; the trace cache and the result store both key on it.
  uint64_t fingerprint() const;

private:
  std::vector<DataSegment> Segments;
};

} // namespace hetsim

#endif // HETSIM_TRACE_DATALAYOUT_H
