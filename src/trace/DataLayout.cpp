//===- trace/DataLayout.cpp -----------------------------------------------===//

#include "trace/DataLayout.h"

#include "common/Error.h"

#include <cassert>

using namespace hetsim;

void KernelDataLayout::addSegment(DataSegment Segment) {
  assert(!hasSegment(Segment.Name) && "duplicate data-segment name");
  assert(Segment.Bytes > 0 && "empty data segment");
  Segments.push_back(std::move(Segment));
}

const DataSegment &KernelDataLayout::segment(const std::string &Name) const {
  for (const DataSegment &S : Segments)
    if (S.Name == Name)
      return S;
  fatalError(("unknown data segment: " + Name).c_str());
}

bool KernelDataLayout::hasSegment(const std::string &Name) const {
  for (const DataSegment &S : Segments)
    if (S.Name == Name)
      return true;
  return false;
}

const DataSegment *KernelDataLayout::segmentContaining(Addr Address) const {
  for (const DataSegment &S : Segments)
    if (S.contains(Address))
      return &S;
  return nullptr;
}

namespace {

uint64_t fnv1aBytes(uint64_t Hash, const void *Data, size_t Bytes) {
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Bytes; ++I) {
    Hash ^= P[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

uint64_t fnv1aWord(uint64_t Hash, uint64_t Value) {
  return fnv1aBytes(Hash, &Value, sizeof(Value));
}

} // namespace

uint64_t KernelDataLayout::fingerprint() const {
  uint64_t Hash = 14695981039346656037ull;
  for (const DataSegment &Segment : Segments) {
    Hash = fnv1aBytes(Hash, Segment.Name.data(), Segment.Name.size());
    Hash = fnv1aWord(Hash, Segment.Base);
    Hash = fnv1aWord(Hash, Segment.Bytes);
    Hash = fnv1aWord(Hash, static_cast<uint64_t>(Segment.Dir));
  }
  return Hash;
}

uint64_t KernelDataLayout::totalBytes() const {
  uint64_t Total = 0;
  for (const DataSegment &S : Segments)
    Total += S.Bytes;
  return Total;
}

KernelDataLayout KernelDataLayout::makeLinear(KernelId Kernel, Addr Base,
                                              uint64_t Align) {
  return makeLinear(kernelDataObjects(Kernel), Base, Align);
}

KernelDataLayout
KernelDataLayout::makeLinear(const std::vector<DataObjectSpec> &Objects,
                             Addr Base, uint64_t Align) {
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  KernelDataLayout Layout;
  Addr Cursor = alignUp(Base, Align);
  for (const DataObjectSpec &Spec : Objects) {
    DataSegment Segment;
    Segment.Name = Spec.Name;
    Segment.Base = Cursor;
    Segment.Bytes = Spec.Bytes;
    Segment.Dir = Spec.Dir;
    Cursor = alignUp(Cursor + Spec.Bytes, Align);
    Layout.addSegment(std::move(Segment));
  }
  return Layout;
}
