//===- trace/ComputeBlock.cpp ---------------------------------------------===//

#include "trace/ComputeBlock.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace hetsim;

static std::atomic<int> FastPathOverride{-1};
static std::atomic<uint64_t> GenNanos{0};
static thread_local uint64_t TlGenNanos = 0;
static std::atomic<uint64_t> ReuseBytesUsed{0};

uint64_t hetsim::traceGenNanos() {
  return GenNanos.load(std::memory_order_relaxed);
}

void hetsim::addTraceGenNanos(uint64_t Nanos) {
  GenNanos.fetch_add(Nanos, std::memory_order_relaxed);
  TlGenNanos += Nanos;
}

uint64_t hetsim::threadTraceGenNanos() { return TlGenNanos; }

uint64_t hetsim::expandReuseBudgetBytes() {
  static const uint64_t Budget = [] {
    if (const char *Env = std::getenv("HETSIM_EXPAND_REUSE_MB"))
      return uint64_t(std::strtoull(Env, nullptr, 10)) * 1024 * 1024;
    return uint64_t(512) * 1024 * 1024;
  }();
  return Budget;
}

uint64_t hetsim::expandReuseBytesInUse() {
  return ReuseBytesUsed.load(std::memory_order_relaxed);
}

static bool reserveReuseBytes(uint64_t Bytes) {
  const uint64_t Budget = hetsim::expandReuseBudgetBytes();
  uint64_t Current = ReuseBytesUsed.load(std::memory_order_relaxed);
  do {
    if (Current + Bytes > Budget)
      return false;
  } while (!ReuseBytesUsed.compare_exchange_weak(Current, Current + Bytes,
                                                 std::memory_order_relaxed));
  return true;
}

static void releaseReuseBytes(uint64_t Bytes) {
  if (Bytes)
    ReuseBytesUsed.fetch_sub(Bytes, std::memory_order_relaxed);
}

bool hetsim::fastPathEnabled() {
  int Forced = FastPathOverride.load(std::memory_order_relaxed);
  if (Forced >= 0)
    return Forced != 0;
  static const bool FromEnv = [] {
    const char *Env = std::getenv("HETSIM_FASTPATH");
    return !Env || std::strcmp(Env, "0") != 0;
  }();
  return FromEnv;
}

void hetsim::setFastPathForTesting(int Mode) {
  assert(Mode >= -1 && Mode <= 1 && "invalid fast-path override");
  FastPathOverride.store(Mode, std::memory_order_relaxed);
}

BlockTrace::BlockTrace(KernelId Kernel, const GenRequest &Req,
                       const KernelDataLayout &Layout)
    : K(Kind::ComputeGen), Kernel(Kernel), Req(Req), Layout(Layout),
      Total(Req.InstCount) {}

BlockTrace::BlockTrace(KernelId Kernel, uint64_t InstCount, uint64_t Seed,
                       const KernelDataLayout &Layout)
    : K(Kind::SerialGen), Kernel(Kernel), Layout(Layout), Total(InstCount) {
  Req.Pu = PuKind::Cpu;
  Req.InstCount = InstCount;
  Req.Seed = Seed;
}

BlockTrace::BlockTrace(PatternBlock Pattern)
    : K(Kind::Pattern), Pat(std::move(Pattern)), Total(Pat.totalRecords()) {}

const TraceBuffer &BlockTrace::materialized() const {
  std::call_once(MatOnce, [this] {
    auto Buffer = std::make_unique<TraceBuffer>();
    switch (K) {
    case Kind::ComputeGen:
      *Buffer = generator().generateCompute(Req, Layout);
      break;
    case Kind::SerialGen:
      *Buffer = generator().generateSerial(Req.InstCount, Layout, Req.Seed);
      break;
    case Kind::Pattern:
      Buffer->reserve(size_t(Total));
      for (const TraceRecord &R : Pat.Prologue)
        Buffer->append(R);
      for (uint64_t Rep = 0; Rep != Pat.BodyRepeats; ++Rep)
        for (const TraceRecord &R : Pat.Body)
          Buffer->append(R);
      for (const TraceRecord &R : Pat.Epilogue)
        Buffer->append(R);
      break;
    }
    assert(Buffer->size() == Total && "materialization missed the total");
    Mat = std::move(Buffer);
  });
  MatReady.store(true, std::memory_order_release);
  return *Mat;
}

BlockTrace::~BlockTrace() {
  releaseReuseBytes(ReservedBytes.load(std::memory_order_relaxed));
}

void BlockTrace::enableExpansionReuse() const {
  ReuseEnabled.store(true, std::memory_order_relaxed);
}

bool BlockTrace::claimTee() const {
  if (!ReuseEnabled.load(std::memory_order_relaxed) || Total == 0 ||
      expansionReuseReady())
    return false;
  int Expected = 0;
  if (!TeeState.compare_exchange_strong(Expected, 1,
                                        std::memory_order_acq_rel))
    return false;
  uint64_t Bytes = Total * sizeof(TraceRecord);
  if (!reserveReuseBytes(Bytes)) {
    // Denied is sticky: the budget only shrinks when blocks die, so
    // retrying the reservation on every expansion would just add an
    // atomic RMW to the hot path for a claim that keeps failing.
    TeeState.store(3, std::memory_order_release);
    return false;
  }
  ReservedBytes.store(Bytes, std::memory_order_relaxed);
  return true;
}

void BlockTrace::finishTee(std::unique_ptr<TraceBuffer> Teed) const {
  assert(Teed->size() == Total && "tee missed the total");
  bool Installed = false;
  std::call_once(MatOnce, [&] {
    Mat = std::move(Teed);
    Installed = true;
  });
  if (!Installed)
    // materialized() ran concurrently and built its own buffer (which is
    // not budget-tracked); drop our reservation with the duplicate.
    releaseReuseBytes(ReservedBytes.exchange(0, std::memory_order_relaxed));
  MatReady.store(true, std::memory_order_release);
  TeeState.store(2, std::memory_order_release);
}

void BlockTrace::abortTee() const {
  releaseReuseBytes(ReservedBytes.exchange(0, std::memory_order_relaxed));
  TeeState.store(0, std::memory_order_release);
}

BlockExpander::BlockExpander(const BlockTrace &Block)
    : Block(Block), Remaining(Block.totalRecords()) {
  switch (Block.kind()) {
  case BlockTrace::Kind::ComputeGen:
  case BlockTrace::Kind::SerialGen:
    // A ready materialized stream beats regeneration: serve spans out of
    // it and skip the generator entirely.
    if (Block.expansionReuseReady()) {
      FromMat = true;
      return;
    }
    if (Block.kind() == BlockTrace::Kind::ComputeGen)
      Block.generator().beginCompute(S, Block.request(), Block.layout());
    else
      Block.generator().beginSerial(S, Block.layout(), Block.serialSeed());
    // First expansion of a shared block: tee the windows into a full
    // buffer so later expanders of this block get zero-copy spans.
    if (Block.claimTee()) {
      Tee = std::make_unique<TraceBuffer>();
      Tee->reserve(size_t(Remaining));
    }
    break;
  case BlockTrace::Kind::Pattern:
    break;
  }
}

BlockExpander::~BlockExpander() {
  if (Tee)
    Block.abortTee();
}

uint64_t BlockExpander::next(TraceBuffer &Window, size_t Target) {
  Window.clear();
  if (Remaining == 0)
    return 0;

  if (FromMat) {
    // Reuse path: copy the next run out of the shared buffer. nextSpan()
    // avoids even this copy; next() keeps the windowed contract for
    // callers that hold on to the window.
    const TraceBuffer &M = Block.materialized();
    uint64_t Run = std::min<uint64_t>(Remaining, Target);
    Window.reserve(size_t(Run));
    for (uint64_t I = 0; I != Run; ++I)
      Window.append(M[size_t(MatPos + I)]);
    MatPos += Run;
    Remaining -= Run;
    return Run;
  }

  TraceGenScope Timer;

  switch (Block.kind()) {
  case BlockTrace::Kind::ComputeGen: {
    uint64_t Emitted = Block.generator().emitCompute(
        S, Block.request(), Window, Remaining, Target);
    Remaining -= Emitted;
    tee(Window);
    return Emitted;
  }
  case BlockTrace::Kind::SerialGen: {
    uint64_t Emitted =
        Block.generator().emitSerial(S, Window, Remaining, Target);
    Remaining -= Emitted;
    tee(Window);
    return Emitted;
  }
  case BlockTrace::Kind::Pattern: {
    // Copy contiguous runs out of the logical prologue/body^N/epilogue
    // stream. Unlike generator windows there is no iteration alignment
    // to preserve; a plain record count boundary is exact.
    const PatternBlock &P = Block.pattern();
    const uint64_t ProEnd = P.Prologue.size();
    const uint64_t BodyEnd = ProEnd + P.Body.size() * P.BodyRepeats;
    Window.reserve(size_t(std::min<uint64_t>(Remaining, Target)));
    uint64_t Emitted = 0;
    while (Remaining != 0 && Emitted < Target) {
      const TraceBuffer *Src;
      uint64_t Offset;
      uint64_t RunEnd;
      if (PatPos < ProEnd) {
        Src = &P.Prologue;
        Offset = PatPos;
        RunEnd = ProEnd;
      } else if (PatPos < BodyEnd) {
        Src = &P.Body;
        Offset = (PatPos - ProEnd) % P.Body.size();
        RunEnd = PatPos + (P.Body.size() - Offset);
      } else {
        Src = &P.Epilogue;
        Offset = PatPos - BodyEnd;
        RunEnd = BodyEnd + P.Epilogue.size();
      }
      uint64_t Run = std::min({RunEnd - PatPos, Remaining,
                               uint64_t(Target) - Emitted});
      for (uint64_t I = 0; I != Run; ++I)
        Window.append((*Src)[size_t(Offset + I)]);
      PatPos += Run;
      Remaining -= Run;
      Emitted += Run;
    }
    return Emitted;
  }
  }
  return 0;
}

void BlockExpander::tee(const TraceBuffer &Window) {
  if (!Tee)
    return;
  for (const TraceRecord &R : Window)
    Tee->append(R);
  if (Remaining == 0)
    Block.finishTee(std::move(Tee));
}

BlockExpander::Span BlockExpander::nextSpan(TraceBuffer &Window,
                                            size_t Target) {
  if (Remaining == 0)
    return {};
  if (FromMat) {
    // The shared buffer is contiguous and immutable: hand the pipeline
    // the whole remainder as one span, exactly like the reference
    // (fully materialized) path does.
    const TraceBuffer &M = Block.materialized();
    Span Out{M.records().data() + MatPos, Remaining};
    MatPos += Remaining;
    Remaining = 0;
    return Out;
  }
  if (Tee) {
    // Zero-copy tee: generate straight into the tee buffer's tail and
    // hand out a span over the appended records. The buffer was reserved
    // to the block's full size up front and TraceEmitter never reserves
    // past the remaining budget, so appends cannot reallocate out from
    // under the span.
    TraceGenScope Timer;
    const size_t Start = Tee->size();
    uint64_t Emitted = 0;
    switch (Block.kind()) {
    case BlockTrace::Kind::ComputeGen:
      Emitted = Block.generator().emitCompute(S, Block.request(), *Tee,
                                              Remaining, Target);
      break;
    case BlockTrace::Kind::SerialGen:
      Emitted = Block.generator().emitSerial(S, *Tee, Remaining, Target);
      break;
    case BlockTrace::Kind::Pattern:
      break; // a tee is only ever claimed for generator-backed blocks
    }
    Remaining -= Emitted;
    Span Out{Tee->records().data() + Start, Emitted};
    if (Remaining == 0)
      // Moving the unique_ptr does not move the heap array, so the span
      // stays valid while this (final) window is consumed.
      Block.finishTee(std::move(Tee));
    return Out;
  }
  uint64_t Emitted = next(Window, Target);
  return {Window.records().data(), Emitted};
}

BlockExpander::Span BlockExpander::nextWindow(TraceBuffer &Window,
                                              size_t Target) {
  if (Remaining == 0)
    return {};
  if (FromMat) {
    const TraceBuffer &M = Block.materialized();
    uint64_t Run = std::min<uint64_t>(Remaining, Target);
    Span Out{M.records().data() + MatPos, Run};
    MatPos += Run;
    Remaining -= Run;
    return Out;
  }
  uint64_t Emitted = next(Window, Target);
  return {Window.records().data(), Emitted};
}

uint64_t BlockExpander::skip(TraceBuffer &Scratch, size_t Target) {
  if (Remaining == 0)
    return 0;
  if (FromMat) {
    uint64_t Run = std::min<uint64_t>(Remaining, Target);
    MatPos += Run;
    Remaining -= Run;
    return Run;
  }
  // No reuse buffer: the records must still be produced so the generator
  // state (cursors, RNG) and any in-flight tee advance exactly; only the
  // core simulation is skipped.
  return next(Scratch, Target);
}
