//===- trace/ComputeBlock.cpp ---------------------------------------------===//

#include "trace/ComputeBlock.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace hetsim;

static std::atomic<int> FastPathOverride{-1};
static std::atomic<uint64_t> GenNanos{0};

uint64_t hetsim::traceGenNanos() {
  return GenNanos.load(std::memory_order_relaxed);
}

void hetsim::addTraceGenNanos(uint64_t Nanos) {
  GenNanos.fetch_add(Nanos, std::memory_order_relaxed);
}

bool hetsim::fastPathEnabled() {
  int Forced = FastPathOverride.load(std::memory_order_relaxed);
  if (Forced >= 0)
    return Forced != 0;
  static const bool FromEnv = [] {
    const char *Env = std::getenv("HETSIM_FASTPATH");
    return !Env || std::strcmp(Env, "0") != 0;
  }();
  return FromEnv;
}

void hetsim::setFastPathForTesting(int Mode) {
  assert(Mode >= -1 && Mode <= 1 && "invalid fast-path override");
  FastPathOverride.store(Mode, std::memory_order_relaxed);
}

BlockTrace::BlockTrace(KernelId Kernel, const GenRequest &Req,
                       const KernelDataLayout &Layout)
    : K(Kind::ComputeGen), Kernel(Kernel), Req(Req), Layout(Layout),
      Total(Req.InstCount) {}

BlockTrace::BlockTrace(KernelId Kernel, uint64_t InstCount, uint64_t Seed,
                       const KernelDataLayout &Layout)
    : K(Kind::SerialGen), Kernel(Kernel), Layout(Layout), Total(InstCount) {
  Req.Pu = PuKind::Cpu;
  Req.InstCount = InstCount;
  Req.Seed = Seed;
}

BlockTrace::BlockTrace(PatternBlock Pattern)
    : K(Kind::Pattern), Pat(std::move(Pattern)), Total(Pat.totalRecords()) {}

const TraceBuffer &BlockTrace::materialized() const {
  std::call_once(MatOnce, [this] {
    auto Buffer = std::make_unique<TraceBuffer>();
    switch (K) {
    case Kind::ComputeGen:
      *Buffer = generator().generateCompute(Req, Layout);
      break;
    case Kind::SerialGen:
      *Buffer = generator().generateSerial(Req.InstCount, Layout, Req.Seed);
      break;
    case Kind::Pattern:
      Buffer->reserve(size_t(Total));
      for (const TraceRecord &R : Pat.Prologue)
        Buffer->append(R);
      for (uint64_t Rep = 0; Rep != Pat.BodyRepeats; ++Rep)
        for (const TraceRecord &R : Pat.Body)
          Buffer->append(R);
      for (const TraceRecord &R : Pat.Epilogue)
        Buffer->append(R);
      break;
    }
    assert(Buffer->size() == Total && "materialization missed the total");
    Mat = std::move(Buffer);
  });
  return *Mat;
}

BlockExpander::BlockExpander(const BlockTrace &Block)
    : Block(Block), Remaining(Block.totalRecords()) {
  switch (Block.kind()) {
  case BlockTrace::Kind::ComputeGen:
    Block.generator().beginCompute(S, Block.request(), Block.layout());
    break;
  case BlockTrace::Kind::SerialGen:
    Block.generator().beginSerial(S, Block.layout(), Block.serialSeed());
    break;
  case BlockTrace::Kind::Pattern:
    break;
  }
}

uint64_t BlockExpander::next(TraceBuffer &Window, size_t Target) {
  Window.clear();
  if (Remaining == 0)
    return 0;
  TraceGenScope Timer;

  switch (Block.kind()) {
  case BlockTrace::Kind::ComputeGen: {
    uint64_t Emitted = Block.generator().emitCompute(
        S, Block.request(), Window, Remaining, Target);
    Remaining -= Emitted;
    return Emitted;
  }
  case BlockTrace::Kind::SerialGen: {
    uint64_t Emitted =
        Block.generator().emitSerial(S, Window, Remaining, Target);
    Remaining -= Emitted;
    return Emitted;
  }
  case BlockTrace::Kind::Pattern: {
    // Copy contiguous runs out of the logical prologue/body^N/epilogue
    // stream. Unlike generator windows there is no iteration alignment
    // to preserve; a plain record count boundary is exact.
    const PatternBlock &P = Block.pattern();
    const uint64_t ProEnd = P.Prologue.size();
    const uint64_t BodyEnd = ProEnd + P.Body.size() * P.BodyRepeats;
    Window.reserve(size_t(std::min<uint64_t>(Remaining, Target)));
    uint64_t Emitted = 0;
    while (Remaining != 0 && Emitted < Target) {
      const TraceBuffer *Src;
      uint64_t Offset;
      uint64_t RunEnd;
      if (PatPos < ProEnd) {
        Src = &P.Prologue;
        Offset = PatPos;
        RunEnd = ProEnd;
      } else if (PatPos < BodyEnd) {
        Src = &P.Body;
        Offset = (PatPos - ProEnd) % P.Body.size();
        RunEnd = PatPos + (P.Body.size() - Offset);
      } else {
        Src = &P.Epilogue;
        Offset = PatPos - BodyEnd;
        RunEnd = BodyEnd + P.Epilogue.size();
      }
      uint64_t Run = std::min({RunEnd - PatPos, Remaining,
                               uint64_t(Target) - Emitted});
      for (uint64_t I = 0; I != Run; ++I)
        Window.append((*Src)[size_t(Offset + I)]);
      PatPos += Run;
      Remaining -= Run;
      Emitted += Run;
    }
    return Emitted;
  }
  }
  return 0;
}
