//===- trace/KernelGenerators.cpp - The six kernel loop bodies ------------===//
///
/// \file
/// Loop-body emission for the six kernels. CPU iterations emit scalar
/// instructions; GPU iterations emit warp (8-wide SIMD) instructions. Each
/// body is a stylized version of the kernel's inner loop with the paper's
/// compute pattern: register dependences create realistic ILP chains and
/// address streams create each kernel's locality behaviour.
///
/// Bodies read and advance only the caller's GenState (cursor slots, RNG,
/// iteration counter), so an expansion can pause between iterations and
/// resume bit-exactly — the windowed fast path depends on this.
///
//===----------------------------------------------------------------------===//

#include "trace/KernelTraceGenerator.h"

using namespace hetsim;

// Register conventions shared by all generators: r0-r7 loop/index state,
// r8-r31 rotating data values. Rotation creates independent chains so the
// out-of-order CPU model can extract ILP.
static uint8_t rotReg(uint64_t I) { return uint8_t(8 + (I % 24)); }

//===----------------------------------------------------------------------===//
// Reduction: c[i] = a[i] + b[i] plus a running partial sum. Pure streaming:
// two input streams, one output stream, a loop-carried accumulator chain.
// Cursor slots: 0 = a, 1 = b, 2 = c.
//===----------------------------------------------------------------------===//

void ReductionGenerator::setUpCursors(GenState &S, const KernelDataLayout &L,
                                      WorkSplit Split) const {
  S.Cur[0] = cursorFor(L.segment("a"), Split);
  S.Cur[1] = cursorFor(L.segment("b"), Split);
  S.Cur[2] = cursorFor(L.segment("c"), Split);
}

void ReductionGenerator::cpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase();
  StreamCursor &A = S.Cur[0], &B = S.Cur[1], &C = S.Cur[2];
  uint8_t V = rotReg(S.Iter);
  E.load(Pc + 0, V, A.advance(4), 4);
  E.load(Pc + 4, uint8_t(V + 1), B.advance(4), 4);
  E.alu(Opcode::FpAlu, Pc + 8, uint8_t(V + 2), V, uint8_t(V + 1));
  E.store(Pc + 12, uint8_t(V + 2), C.advance(4), 4);
  // Accumulator r7 is a loop-carried dependence (the reduction itself).
  E.alu(Opcode::FpAlu, Pc + 16, 7, 7, uint8_t(V + 2));
  E.branch(Pc + 20, /*Taken=*/true, 0);
}

void ReductionGenerator::gpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase() + 0x1000;
  StreamCursor &A = S.Cur[0], &B = S.Cur[1], &C = S.Cur[2];
  uint8_t V = rotReg(S.Iter);
  E.simdLoad(Pc + 0, V, A.advance(32), 4, 8, 4);
  E.simdLoad(Pc + 4, uint8_t(V + 1), B.advance(32), 4, 8, 4);
  E.alu(Opcode::FpAlu, Pc + 8, uint8_t(V + 2), V, uint8_t(V + 1));
  E.simdStore(Pc + 12, uint8_t(V + 2), C.advance(32), 4, 8, 4);
  E.alu(Opcode::FpAlu, Pc + 16, 7, 7, uint8_t(V + 2));
  E.branch(Pc + 20, /*Taken=*/true, 0);
}

//===----------------------------------------------------------------------===//
// Matrix multiply: inner-product loop. A streams sequentially, B is strided
// by a 256-float row (1KB), C is written once per 8 multiply-accumulates.
// High reuse: the B working set cycles and stays cache-resident per block.
// Cursor slots: 0 = A, 1 = B, 2 = C.
//===----------------------------------------------------------------------===//

namespace {
constexpr uint64_t MatRowBytes = 1024; // 256 floats per row.
} // namespace

void MatrixMulGenerator::setUpCursors(GenState &S, const KernelDataLayout &L,
                                      WorkSplit Split) const {
  S.Cur[0] = cursorFor(L.segment("A"), Split);
  S.Cur[1] = cursorFor(L.segment("B"), WorkSplit::FullRange);
  S.Cur[2] = cursorFor(L.segment("C"), Split);
}

void MatrixMulGenerator::cpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase();
  StreamCursor &MatA = S.Cur[0], &MatB = S.Cur[1], &MatC = S.Cur[2];
  uint8_t V = rotReg(S.Iter);
  E.load(Pc + 0, V, MatA.advance(4), 4);
  E.load(Pc + 4, uint8_t(V + 1), MatB.advance(MatRowBytes), 4);
  E.alu(Opcode::FpMac, Pc + 8, 7, V, uint8_t(V + 1));
  if (S.Iter % 8 == 7) {
    E.store(Pc + 12, 7, MatC.advance(4), 4);
    E.alu(Opcode::IntAlu, Pc + 16, 0, 0);
    E.branch(Pc + 20, /*Taken=*/true, 0);
  }
}

void MatrixMulGenerator::gpuIteration(TraceEmitter &E, GenState &S) const {
  // Fermi-style tile: global loads staged through the software-managed
  // cache (16KB, Table II), then MACs read from the scratchpad.
  const uint32_t Pc = pcBase() + 0x1000;
  StreamCursor &MatA = S.Cur[0], &MatB = S.Cur[1], &MatC = S.Cur[2];
  uint8_t V = rotReg(S.Iter);
  Addr SmemOff = (S.Iter * 32) % (16 * 1024);
  E.simdLoad(Pc + 0, V, MatA.advance(32), 4, 8, 4);
  E.smem(/*IsStore=*/true, Pc + 4, V, SmemOff, 4);
  E.simdLoad(Pc + 8, uint8_t(V + 1), MatB.advance(MatRowBytes), 4, 8, 4);
  E.smem(/*IsStore=*/false, Pc + 12, uint8_t(V + 2), SmemOff, 4);
  E.alu(Opcode::FpMac, Pc + 16, 7, uint8_t(V + 1), uint8_t(V + 2));
  if (S.Iter % 8 == 7) {
    E.simdStore(Pc + 20, 7, MatC.advance(32), 4, 8, 4);
    E.branch(Pc + 24, /*Taken=*/true, 0);
  }
}

//===----------------------------------------------------------------------===//
// Convolution: sliding window. Overlapping image loads (high spatial
// locality), a small filter table that stays resident, one store per tap
// group. Cursor slots: 0 = image, 1 = filter, 2 = out.
//===----------------------------------------------------------------------===//

void ConvolutionGenerator::setUpCursors(GenState &S, const KernelDataLayout &L,
                                        WorkSplit Split) const {
  S.Cur[0] = cursorFor(L.segment("image"), Split);
  S.Cur[1] = cursorFor(L.segment("filter"), WorkSplit::FullRange);
  S.Cur[2] = cursorFor(L.segment("out"), Split);
}

void ConvolutionGenerator::cpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase();
  StreamCursor &Image = S.Cur[0], &Filter = S.Cur[1], &Out = S.Cur[2];
  uint8_t V = rotReg(S.Iter);
  Addr Window = Image.advance(4);
  E.load(Pc + 0, V, Window, 4);
  E.load(Pc + 4, uint8_t(V + 1), Window + 4, 4);
  E.load(Pc + 8, uint8_t(V + 2), Filter.advance(4), 4);
  E.alu(Opcode::FpMac, Pc + 12, uint8_t(V + 3), V, uint8_t(V + 2));
  E.alu(Opcode::FpMac, Pc + 16, uint8_t(V + 3), uint8_t(V + 1),
        uint8_t(V + 2));
  E.store(Pc + 20, uint8_t(V + 3), Out.advance(4), 4);
  E.alu(Opcode::IntAlu, Pc + 24, 0, 0);
  E.branch(Pc + 28, /*Taken=*/true, 0);
}

void ConvolutionGenerator::gpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase() + 0x1000;
  StreamCursor &Image = S.Cur[0], &Filter = S.Cur[1], &Out = S.Cur[2];
  uint8_t V = rotReg(S.Iter);
  Addr Window = Image.advance(32);
  E.simdLoad(Pc + 0, V, Window, 4, 8, 4);
  E.simdLoad(Pc + 4, uint8_t(V + 1), Window + 4, 4, 8, 4);
  E.load(Pc + 8, uint8_t(V + 2), Filter.advance(4), 4);
  E.alu(Opcode::FpMac, Pc + 12, uint8_t(V + 3), V, uint8_t(V + 2));
  E.alu(Opcode::FpMac, Pc + 16, uint8_t(V + 3), uint8_t(V + 1),
        uint8_t(V + 2));
  E.simdStore(Pc + 20, uint8_t(V + 3), Out.advance(32), 4, 8, 4);
  E.alu(Opcode::IntAlu, Pc + 24, 0, 0);
  E.branch(Pc + 28, /*Taken=*/true, 0);
}

//===----------------------------------------------------------------------===//
// DCT: 8-point butterfly per iteration. ALU-heavy (the paper's dct has the
// largest Comp line count), in-place blocks object, coefficient output.
// Cursor slots: 0 = blocks, 1 = coeffs.
//===----------------------------------------------------------------------===//

void DctGenerator::setUpCursors(GenState &S, const KernelDataLayout &L,
                                WorkSplit Split) const {
  S.Cur[0] = cursorFor(L.segment("blocks"), Split);
  S.Cur[1] = cursorFor(L.segment("coeffs"), Split);
}

void DctGenerator::cpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase();
  StreamCursor &Blocks = S.Cur[0], &Coeffs = S.Cur[1];
  uint8_t V = rotReg(S.Iter * 4);
  Addr Row = Blocks.advance(32);
  E.load(Pc + 0, V, Row, 4);
  E.load(Pc + 4, uint8_t(V + 1), Row + 16, 4);
  E.alu(Opcode::FpAlu, Pc + 8, uint8_t(V + 2), V, uint8_t(V + 1));
  E.alu(Opcode::FpAlu, Pc + 12, uint8_t(V + 3), V, uint8_t(V + 1));
  E.alu(Opcode::FpMul, Pc + 16, uint8_t(V + 2), uint8_t(V + 2), 6);
  E.alu(Opcode::FpMul, Pc + 20, uint8_t(V + 3), uint8_t(V + 3), 6);
  E.alu(Opcode::FpMac, Pc + 24, uint8_t(V + 2), uint8_t(V + 2), 5);
  E.alu(Opcode::FpMac, Pc + 28, uint8_t(V + 3), uint8_t(V + 3), 5);
  E.store(Pc + 32, uint8_t(V + 2), Coeffs.advance(8), 4);
  E.alu(Opcode::IntAlu, Pc + 36, 0, 0);
  E.branch(Pc + 40, /*Taken=*/true, 0);
}

void DctGenerator::gpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase() + 0x1000;
  StreamCursor &Blocks = S.Cur[0], &Coeffs = S.Cur[1];
  uint8_t V = rotReg(S.Iter * 4);
  Addr Row = Blocks.advance(32);
  Addr SmemOff = (S.Iter * 32) % (16 * 1024);
  E.simdLoad(Pc + 0, V, Row, 4, 8, 4);
  E.smem(/*IsStore=*/true, Pc + 4, V, SmemOff, 4);
  E.smem(/*IsStore=*/false, Pc + 8, uint8_t(V + 1), SmemOff, 4);
  E.alu(Opcode::FpAlu, Pc + 12, uint8_t(V + 2), uint8_t(V + 1), 6);
  E.alu(Opcode::FpMul, Pc + 16, uint8_t(V + 2), uint8_t(V + 2), 6);
  E.alu(Opcode::FpMac, Pc + 20, uint8_t(V + 3), uint8_t(V + 2), 5);
  E.alu(Opcode::FpMac, Pc + 24, uint8_t(V + 3), uint8_t(V + 3), 5);
  E.simdStore(Pc + 28, uint8_t(V + 3), Coeffs.advance(32), 4, 8, 4);
  E.alu(Opcode::IntAlu, Pc + 32, 0, 0);
  E.branch(Pc + 36, /*Taken=*/true, 0);
}

//===----------------------------------------------------------------------===//
// Merge sort: two run cursors, one data-dependent compare branch per
// element (about 50% taken: hard to predict, the paper's merge sort has
// high communication AND branchy behaviour), one output store.
// Cursor slots: 0 = keys, 1 = sorted.
//===----------------------------------------------------------------------===//

void MergeSortGenerator::setUpCursors(GenState &S, const KernelDataLayout &L,
                                      WorkSplit Split) const {
  S.Cur[0] = cursorFor(L.segment("keys"), Split);
  S.Cur[1] = cursorFor(L.segment("sorted"), Split);
}

void MergeSortGenerator::cpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase();
  StreamCursor &Keys = S.Cur[0], &Sorted = S.Cur[1];
  uint8_t V = rotReg(S.Iter);
  Addr Left = Keys.advance(4);
  uint64_t HalfRun = Keys.Bytes / 2;
  Addr Right = Keys.Base + (Left - Keys.Base + HalfRun) % Keys.Bytes;
  E.load(Pc + 0, V, Left, 4);
  E.load(Pc + 4, uint8_t(V + 1), Right, 4);
  E.alu(Opcode::IntAlu, Pc + 8, uint8_t(V + 2), V, uint8_t(V + 1));
  E.branch(Pc + 12, S.Rng.nextBool(0.5), uint8_t(V + 2));
  E.store(Pc + 16, uint8_t(V + 2), Sorted.advance(4), 4);
  E.alu(Opcode::IntAlu, Pc + 20, 0, 0);
  E.branch(Pc + 24, /*Taken=*/true, 0);
}

void MergeSortGenerator::gpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase() + 0x1000;
  StreamCursor &Keys = S.Cur[0], &Sorted = S.Cur[1];
  uint8_t V = rotReg(S.Iter);
  Addr Left = Keys.advance(32);
  uint64_t HalfRun = Keys.Bytes / 2;
  Addr Right = Keys.Base + (Left - Keys.Base + HalfRun) % Keys.Bytes;
  E.simdLoad(Pc + 0, V, Left, 4, 8, 4);
  E.simdLoad(Pc + 4, uint8_t(V + 1), Right, 4, 8, 4);
  E.alu(Opcode::IntAlu, Pc + 8, uint8_t(V + 2), V, uint8_t(V + 1));
  // The GPU stalls on every branch (Table II: no predictor); divergent
  // compare branches are the expensive part of GPU merge sort.
  E.branch(Pc + 12, S.Rng.nextBool(0.5), uint8_t(V + 2));
  E.simdStore(Pc + 16, uint8_t(V + 2), Sorted.advance(32), 4, 8, 4);
  E.alu(Opcode::IntAlu, Pc + 20, 0, 0);
  E.branch(Pc + 24, /*Taken=*/true, 0);
}

//===----------------------------------------------------------------------===//
// K-means: per point, distance to a hot centroid table (cache-resident),
// argmin with a mildly data-dependent branch, assignment store. Repeated
// passes model the outer iteration (3 rounds in the paper's run).
// Cursor slots: 0 = points, 1 = centroids.
//===----------------------------------------------------------------------===//

void KMeansGenerator::setUpCursors(GenState &S, const KernelDataLayout &L,
                                   WorkSplit Split) const {
  S.Cur[0] = cursorFor(L.segment("points"), Split);
  S.Cur[1] = cursorFor(L.segment("centroids"), WorkSplit::FullRange);
}

void KMeansGenerator::cpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase();
  StreamCursor &Points = S.Cur[0], &Centroids = S.Cur[1];
  uint8_t V = rotReg(S.Iter * 2);
  Addr Point = Points.advance(8);
  E.load(Pc + 0, V, Point, 8);
  // Distances to 4 centroids; the table is tiny and stays in L1.
  for (unsigned K = 0; K != 4; ++K) {
    E.load(Pc + 4 + 12 * K, uint8_t(V + 1), Centroids.advance(8), 8);
    E.alu(Opcode::FpAlu, Pc + 8 + 12 * K, uint8_t(V + 2), V, uint8_t(V + 1));
    E.alu(Opcode::FpMac, Pc + 12 + 12 * K, uint8_t(V + 3), uint8_t(V + 2),
          uint8_t(V + 2));
  }
  E.branch(Pc + 52, S.Rng.nextBool(0.75), uint8_t(V + 3));
  E.store(Pc + 56, uint8_t(V + 3), Point, 4);
  E.alu(Opcode::IntAlu, Pc + 60, 0, 0);
  E.branch(Pc + 64, /*Taken=*/true, 0);
}

void KMeansGenerator::gpuIteration(TraceEmitter &E, GenState &S) const {
  const uint32_t Pc = pcBase() + 0x1000;
  StreamCursor &Points = S.Cur[0], &Centroids = S.Cur[1];
  uint8_t V = rotReg(S.Iter * 2);
  Addr Point = Points.advance(64);
  E.simdLoad(Pc + 0, V, Point, 8, 8, 8);
  for (unsigned K = 0; K != 4; ++K) {
    E.load(Pc + 4 + 12 * K, uint8_t(V + 1), Centroids.advance(8), 8);
    E.alu(Opcode::FpAlu, Pc + 8 + 12 * K, uint8_t(V + 2), V, uint8_t(V + 1));
    E.alu(Opcode::FpMac, Pc + 12 + 12 * K, uint8_t(V + 3), uint8_t(V + 2),
          uint8_t(V + 2));
  }
  E.branch(Pc + 52, S.Rng.nextBool(0.75), uint8_t(V + 3));
  E.simdStore(Pc + 56, uint8_t(V + 3), Point, 4, 8, 8);
  E.alu(Opcode::IntAlu, Pc + 60, 0, 0);
  E.branch(Pc + 64, /*Taken=*/true, 0);
}
