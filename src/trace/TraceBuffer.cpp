//===- trace/TraceBuffer.cpp ----------------------------------------------===//

#include "trace/TraceBuffer.h"

#include <cassert>

using namespace hetsim;

void TraceBuffer::emitAlu(Opcode Op, uint32_t Pc, uint8_t Dst, uint8_t SrcA,
                          uint8_t SrcB) {
  assert(!isMemoryOp(Op) && !isBranchOp(Op) && "use the typed emitters");
  TraceRecord R;
  R.Op = Op;
  R.Pc = Pc;
  R.DstReg = Dst;
  R.SrcRegA = SrcA;
  R.SrcRegB = SrcB;
  Records.push_back(R);
}

void TraceBuffer::emitLoad(uint32_t Pc, uint8_t Dst, Addr Address,
                           uint16_t Bytes, uint8_t AddrReg) {
  TraceRecord R;
  R.Op = Opcode::Load;
  R.Pc = Pc;
  R.DstReg = Dst;
  R.SrcRegA = AddrReg;
  R.MemAddr = Address;
  R.MemBytes = Bytes;
  Records.push_back(R);
}

void TraceBuffer::emitStore(uint32_t Pc, uint8_t Src, Addr Address,
                            uint16_t Bytes, uint8_t AddrReg) {
  TraceRecord R;
  R.Op = Opcode::Store;
  R.Pc = Pc;
  R.SrcRegA = Src;
  R.SrcRegB = AddrReg;
  R.MemAddr = Address;
  R.MemBytes = Bytes;
  Records.push_back(R);
}

void TraceBuffer::emitBranch(uint32_t Pc, bool Taken, uint8_t CondReg) {
  TraceRecord R;
  R.Op = Opcode::Branch;
  R.Pc = Pc;
  R.SrcRegA = CondReg;
  R.IsTaken = Taken;
  Records.push_back(R);
}

void TraceBuffer::emitSimdLoad(uint32_t Pc, uint8_t Dst, Addr Address,
                               uint16_t BytesPerLane, uint8_t Lanes,
                               uint16_t StrideBytes) {
  assert(Lanes >= 1 && Lanes <= 32 && "implausible lane count");
  TraceRecord R;
  R.Op = Opcode::Load;
  R.Pc = Pc;
  R.DstReg = Dst;
  R.MemAddr = Address;
  R.MemBytes = BytesPerLane;
  R.SimdLanes = Lanes;
  R.LaneStrideBytes = StrideBytes;
  Records.push_back(R);
}

void TraceBuffer::emitSimdStore(uint32_t Pc, uint8_t Src, Addr Address,
                                uint16_t BytesPerLane, uint8_t Lanes,
                                uint16_t StrideBytes) {
  assert(Lanes >= 1 && Lanes <= 32 && "implausible lane count");
  TraceRecord R;
  R.Op = Opcode::Store;
  R.Pc = Pc;
  R.SrcRegA = Src;
  R.MemAddr = Address;
  R.MemBytes = BytesPerLane;
  R.SimdLanes = Lanes;
  R.LaneStrideBytes = StrideBytes;
  Records.push_back(R);
}

void TraceBuffer::emitSmem(bool IsStore, uint32_t Pc, uint8_t Reg,
                           Addr Offset, uint16_t Bytes, uint8_t Lanes,
                           uint16_t StrideBytes) {
  TraceRecord R;
  R.Op = IsStore ? Opcode::SmemStore : Opcode::SmemLoad;
  R.Pc = Pc;
  if (IsStore)
    R.SrcRegA = Reg;
  else
    R.DstReg = Reg;
  R.MemAddr = Offset;
  R.MemBytes = Bytes;
  R.SimdLanes = Lanes;
  R.LaneStrideBytes = StrideBytes;
  Records.push_back(R);
}

TraceMix TraceBuffer::computeMix() const {
  TraceMix Mix;
  Mix.Total = Records.size();
  for (const TraceRecord &R : Records) {
    switch (R.Op) {
    case Opcode::Load:
      ++Mix.Loads;
      Mix.MemBytes += R.totalBytes();
      break;
    case Opcode::Store:
      ++Mix.Stores;
      Mix.MemBytes += R.totalBytes();
      break;
    case Opcode::Branch:
      ++Mix.Branches;
      break;
    case Opcode::SmemLoad:
    case Opcode::SmemStore:
      ++Mix.Smem;
      break;
    default:
      ++Mix.Alu;
      break;
    }
  }
  return Mix;
}
