//===- trace/TraceBuffer.cpp ----------------------------------------------===//

#include "trace/TraceBuffer.h"

#include "trace/ComputeBlock.h"

#include <cassert>

using namespace hetsim;

TraceMix TraceBuffer::computeMix() const {
  TraceMix Mix;
  Mix.Total = Records.size();
  for (const TraceRecord &R : Records) {
    switch (R.Op) {
    case Opcode::Load:
      ++Mix.Loads;
      Mix.MemBytes += R.totalBytes();
      break;
    case Opcode::Store:
      ++Mix.Stores;
      Mix.MemBytes += R.totalBytes();
      break;
    case Opcode::Branch:
      ++Mix.Branches;
      break;
    case Opcode::SmemLoad:
    case Opcode::SmemStore:
      ++Mix.Smem;
      break;
    default:
      ++Mix.Alu;
      break;
    }
  }
  return Mix;
}

//===----------------------------------------------------------------------===//
// SharedTrace — out of line so the header needs only a forward declaration
// of BlockTrace.
//===----------------------------------------------------------------------===//

const TraceBuffer &SharedTrace::buffer() const {
  static const TraceBuffer Empty;
  if (Ptr)
    return *Ptr;
  if (Blocks)
    return Blocks->materialized();
  return Empty;
}

size_t SharedTrace::size() const {
  if (Ptr)
    return Ptr->size();
  if (Blocks)
    return size_t(Blocks->totalRecords());
  return 0;
}
