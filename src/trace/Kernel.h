//===- trace/Kernel.h - The six evaluated kernels ---------------*- C++ -*-===//
///
/// \file
/// Identifiers, Table III characteristics, and shared-data-object structure
/// for the six kernels the paper evaluates (Section IV-B): reduction,
/// matrix multiply, convolution, dct, merge sort, and k-means.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_KERNEL_H
#define HETSIM_TRACE_KERNEL_H

#include "common/Types.h"

#include <vector>

namespace hetsim {

/// The six evaluated kernels.
enum class KernelId : uint8_t {
  Reduction = 0,
  MatrixMul,
  Convolution,
  Dct,
  MergeSort,
  KMeans,
};

/// Number of kernels.
inline constexpr unsigned NumKernels = 6;

/// All kernel ids in Table III order (reduction, matrix mul, convolution,
/// dct, merge sort, k-mean).
const std::vector<KernelId> &allKernels();

/// Transfer direction of a shared data object relative to the GPU.
enum class TransferDir : uint8_t {
  HostToDevice, ///< Input: moved CPU -> GPU before GPU compute.
  DeviceToHost, ///< Output: moved GPU -> CPU after GPU compute.
};

/// One data object that crosses the CPU/GPU boundary. The per-memory-model
/// lowering turns these into allocations, copies, and ownership changes.
struct DataObjectSpec {
  const char *Name;
  uint64_t Bytes;
  TransferDir Dir;
};

/// Static, per-kernel facts reproducing Table III plus the structure needed
/// by the programmability model (Table V).
struct KernelCharacteristics {
  KernelId Id;
  const char *Name;        ///< Table III name ("reduction", "matrix mul"...).
  const char *Pattern;     ///< Compute pattern string from Table III.
  uint64_t CpuInsts;       ///< Dynamic instructions in the CPU half.
  uint64_t GpuInsts;       ///< Dynamic instructions in the GPU half.
  uint64_t SerialInsts;    ///< Dynamic instructions in the sequential part.
  unsigned NumComms;       ///< Number of CPU<->GPU communications.
  uint64_t InitialTransferBytes; ///< Initial CPU->GPU transfer size.
  unsigned GpuRounds;      ///< GPU kernel invocations (ownership rounds).
  unsigned CompLines;      ///< Source lines for computation (Table V Comp).
};

/// Returns the Table III characteristics of \p Id.
const KernelCharacteristics &kernelCharacteristics(KernelId Id);

/// Returns the shared data objects of \p Id. Their HostToDevice sizes sum
/// to InitialTransferBytes.
const std::vector<DataObjectSpec> &kernelDataObjects(KernelId Id);

/// Returns the Table III display name of \p Id.
const char *kernelName(KernelId Id);

/// Looks a kernel up by its Table III name; returns true on success.
bool kernelByName(const char *Name, KernelId &Out);

} // namespace hetsim

#endif // HETSIM_TRACE_KERNEL_H
