//===- trace/TraceCache.h - Keyed cache of generated traces -----*- C++ -*-===//
///
/// \file
/// Generated kernel traces are deterministic functions of (kernel, PU,
/// instruction count, seed, work split, data layout), but the lowering
/// used to regenerate them inside every run. This cache keys traces by
/// those inputs and hands out shared_ptr<const TraceBuffer> handles, so N
/// sweep points over the same kernel share one immutable buffer across
/// threads.
///
/// Concurrency design (PR 6): the single shared_mutex map plus per-kernel
/// generation locks of PR 1 serialized *distinct* keys of the same kernel
/// and made every hot lookup touch one contended lock word. The cache is
/// now striped into NumShards independent shards (key hash selects the
/// shard, so unrelated lookups never share a lock), and generation is
/// single-flight *per key*: a miss installs a shared_future slot and
/// generates outside any lock, so one thread generates while concurrent
/// requesters of that key wait on the future — requesters of every other
/// key proceed untouched. Consequently the miss counter equals the number
/// of distinct keys ever requested, at any job count. Time spent blocked
/// on another thread's in-flight generation (plus the miss-path exclusive
/// lock) is accumulated in traceCacheWaitNanos() for sweep telemetry.
///
/// With the fast path on (see trace/ComputeBlock.h), computeShared /
/// serialShared hand out run-length BlockTrace handles instead: a cache
/// entry is then a ~200-byte recipe rather than a multi-MB record vector,
/// and cores expand it window by window.
///
/// Set HETSIM_TRACE_CACHE=0 to bypass the cache entirely (every request
/// regenerates) — the seed harness behaviour, kept for perf bisection.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_TRACECACHE_H
#define HETSIM_TRACE_TRACECACHE_H

#include "common/Stats.h"
#include "trace/ComputeBlock.h"
#include "trace/KernelTraceGenerator.h"

#include <array>
#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

namespace hetsim {

/// Process-wide nanoseconds threads spent blocked inside the trace cache:
/// waiting for another thread's single-flight generation of the same key,
/// or acquiring a shard's exclusive lock on the miss path. Summed across
/// threads (wall time per waiting thread, so it can exceed elapsed time).
uint64_t traceCacheWaitNanos();

/// The calling thread's share of traceCacheWaitNanos().
uint64_t threadTraceCacheWaitNanos();

/// Cache statistics snapshot.
struct TraceCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  uint64_t lookups() const { return Hits + Misses; }
  double hitRate() const {
    uint64_t Total = lookups();
    return Total == 0 ? 0.0 : double(Hits) / double(Total);
  }
};

/// A process-wide, thread-safe cache of generated traces.
class TraceCache {
public:
  /// Shard count. Power of two; key hashes select shards by their top
  /// bits (the maps consume the low bits), so striping stays uniform.
  static constexpr unsigned NumShards = 16;

  /// The process-wide instance every lowering goes through.
  static TraceCache &global();

  /// Cached equivalent of KernelTraceGenerator::generateCompute.
  std::shared_ptr<const TraceBuffer>
  compute(KernelId Kernel, const GenRequest &Req,
          const KernelDataLayout &Layout);

  /// Cached equivalent of KernelTraceGenerator::generateSerial.
  std::shared_ptr<const TraceBuffer> serial(KernelId Kernel,
                                            uint64_t InstCount,
                                            const KernelDataLayout &Layout,
                                            uint64_t Seed);

  /// Like compute()/serial(), but returns a SharedTrace that wraps a
  /// run-length BlockTrace when the fast path is enabled (and a
  /// materialized buffer otherwise, preserving reference behaviour).
  SharedTrace computeShared(KernelId Kernel, const GenRequest &Req,
                            const KernelDataLayout &Layout);
  SharedTrace serialShared(KernelId Kernel, uint64_t InstCount,
                           const KernelDataLayout &Layout, uint64_t Seed);

  /// Snapshot of the hit/miss counters.
  TraceCacheStats stats() const;

  /// Number of times a generator actually ran on behalf of the cache
  /// (bypass mode excluded). With single-flight generation this equals
  /// the number of distinct materialized-trace keys ever requested — the
  /// stress test's "no duplicate generation" invariant.
  uint64_t generations() const;

  /// Publishes the counters into \p Registry as "trace_cache.hits" /
  /// "trace_cache.misses" / "trace_cache.wait_ns" (absolute values,
  /// idempotent).
  void publishStats(StatRegistry &Registry) const;

  /// Drops every cached trace and resets the counters (tests).
  void clear();

  /// Number of distinct traces currently cached.
  size_t entryCount() const;

  /// True when HETSIM_TRACE_CACHE=0 disabled caching for this process.
  bool enabled() const { return Enabled; }

private:
  TraceCache();

  /// Cache key: every input the generators read. The layout is folded to
  /// a fingerprint over its (name, base, bytes, dir) segments.
  struct Key {
    KernelId Kernel;
    uint8_t Kind;  ///< 0 = CPU compute, 1 = GPU compute, 2 = serial.
    uint8_t Split; ///< WorkSplit (0 for serial).
    uint64_t InstCount;
    uint64_t Seed;
    uint64_t LayoutHash;

    bool operator==(const Key &Other) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  using TracePtr = std::shared_ptr<const TraceBuffer>;
  using BlockPtr = std::shared_ptr<const BlockTrace>;

  /// One independent stripe of the cache. Materialized entries are
  /// shared_future slots so generation can be single-flight per key;
  /// block entries hold the (cheap to construct) recipe directly.
  struct Shard {
    mutable std::shared_mutex Mutex;
    std::unordered_map<Key, std::shared_future<TracePtr>, KeyHash> Map;
    std::unordered_map<Key, BlockPtr, KeyHash> BlockMap;
  };

  Shard &shardFor(const Key &K, size_t &HashOut);

  TracePtr getOrGenerate(const Key &K,
                         const std::function<TraceBuffer()> &Generate);

  /// Looks up / inserts a block recipe. \p Make runs outside the shard
  /// lock; losers of a construction race adopt the winner's block, so
  /// pointers per key are stable.
  SharedTrace getOrMakeBlock(const Key &K,
                             const std::function<BlockPtr()> &Make);

  bool Enabled = true;
  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Generations{0};
};

} // namespace hetsim

#endif // HETSIM_TRACE_TRACECACHE_H
