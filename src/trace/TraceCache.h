//===- trace/TraceCache.h - Keyed cache of generated traces -----*- C++ -*-===//
///
/// \file
/// Generated kernel traces are deterministic functions of (kernel, PU,
/// instruction count, seed, work split, data layout), but the lowering
/// used to regenerate them inside every run. This cache keys traces by
/// those inputs and hands out shared_ptr<const TraceBuffer> handles, so N
/// sweep points over the same kernel share one immutable buffer across
/// threads. Lookups take a shared lock; generation on a miss is
/// serialized per kernel so concurrent threads never duplicate the same
/// expensive materialization.
///
/// With the fast path on (see trace/ComputeBlock.h), computeShared /
/// serialShared hand out run-length BlockTrace handles instead: a cache
/// entry is then a ~200-byte recipe rather than a multi-MB record vector,
/// and cores expand it window by window.
///
/// Set HETSIM_TRACE_CACHE=0 to bypass the cache entirely (every request
/// regenerates) — the seed harness behaviour, kept for perf bisection.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_TRACE_TRACECACHE_H
#define HETSIM_TRACE_TRACECACHE_H

#include "common/Stats.h"
#include "trace/ComputeBlock.h"
#include "trace/KernelTraceGenerator.h"

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace hetsim {

/// Cache statistics snapshot.
struct TraceCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  uint64_t lookups() const { return Hits + Misses; }
  double hitRate() const {
    uint64_t Total = lookups();
    return Total == 0 ? 0.0 : double(Hits) / double(Total);
  }
};

/// A process-wide, thread-safe cache of generated traces.
class TraceCache {
public:
  /// The process-wide instance every lowering goes through.
  static TraceCache &global();

  /// Cached equivalent of KernelTraceGenerator::generateCompute.
  std::shared_ptr<const TraceBuffer>
  compute(KernelId Kernel, const GenRequest &Req,
          const KernelDataLayout &Layout);

  /// Cached equivalent of KernelTraceGenerator::generateSerial.
  std::shared_ptr<const TraceBuffer> serial(KernelId Kernel,
                                            uint64_t InstCount,
                                            const KernelDataLayout &Layout,
                                            uint64_t Seed);

  /// Like compute()/serial(), but returns a SharedTrace that wraps a
  /// run-length BlockTrace when the fast path is enabled (and a
  /// materialized buffer otherwise, preserving reference behaviour).
  SharedTrace computeShared(KernelId Kernel, const GenRequest &Req,
                            const KernelDataLayout &Layout);
  SharedTrace serialShared(KernelId Kernel, uint64_t InstCount,
                           const KernelDataLayout &Layout, uint64_t Seed);

  /// Snapshot of the hit/miss counters.
  TraceCacheStats stats() const;

  /// Publishes the counters into \p Registry as "trace_cache.hits" /
  /// "trace_cache.misses" (absolute values, idempotent).
  void publishStats(StatRegistry &Registry) const;

  /// Drops every cached trace and resets the counters (tests).
  void clear();

  /// Number of distinct traces currently cached.
  size_t entryCount() const;

  /// True when HETSIM_TRACE_CACHE=0 disabled caching for this process.
  bool enabled() const { return Enabled; }

private:
  TraceCache();

  /// Cache key: every input the generators read. The layout is folded to
  /// a fingerprint over its (name, base, bytes, dir) segments.
  struct Key {
    KernelId Kernel;
    uint8_t Kind;  ///< 0 = CPU compute, 1 = GPU compute, 2 = serial.
    uint8_t Split; ///< WorkSplit (0 for serial).
    uint64_t InstCount;
    uint64_t Seed;
    uint64_t LayoutHash;

    bool operator==(const Key &Other) const = default;
  };

  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  std::shared_ptr<const TraceBuffer>
  getOrGenerate(const Key &K, const KernelTraceGenerator &Generator,
                const std::function<TraceBuffer()> &Generate);

  bool Enabled = true;
  mutable std::shared_mutex MapMutex;
  std::unordered_map<Key, std::shared_ptr<const TraceBuffer>, KeyHash> Map;
  /// Run-length entries, same keys. Block construction is a cheap layout
  /// copy, so it needs no generation lock — only MapMutex.
  std::unordered_map<Key, std::shared_ptr<const BlockTrace>, KeyHash>
      BlockMap;
  /// Generation serialization, one lock per kernel, so two threads never
  /// duplicate the same kernel's (expensive) materialization.
  std::array<std::mutex, NumKernels> GenMutex;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace hetsim

#endif // HETSIM_TRACE_TRACECACHE_H
