//===- gpu/Coalescer.cpp --------------------------------------------------===//

#include "gpu/Coalescer.h"

#include <algorithm>
#include <cassert>

using namespace hetsim;

void hetsim::coalesceWarpAccess(const TraceRecord &Record,
                                std::vector<Addr> &Lines) {
  assert(isGlobalMemoryOp(Record.Op) && "not a global memory op");
  Lines.clear();
  for (unsigned Lane = 0; Lane != Record.SimdLanes; ++Lane) {
    Addr LaneAddr =
        Record.MemAddr + uint64_t(Lane) * Record.LaneStrideBytes;
    // A lane access can straddle a line boundary; cover both lines.
    Addr First = alignDown(LaneAddr, CacheLineBytes);
    Addr Last = alignDown(LaneAddr + std::max<uint32_t>(Record.MemBytes, 1) - 1,
                          CacheLineBytes);
    for (Addr Line = First; Line <= Last; Line += CacheLineBytes)
      Lines.push_back(Line);
  }
  std::sort(Lines.begin(), Lines.end());
  Lines.erase(std::unique(Lines.begin(), Lines.end()), Lines.end());
}

std::vector<Addr> hetsim::coalesceWarpAccess(const TraceRecord &Record) {
  std::vector<Addr> Lines;
  coalesceWarpAccess(Record, Lines);
  return Lines;
}
