//===- gpu/Coalescer.h - SIMD memory coalescing -----------------*- C++ -*-===//
///
/// \file
/// Coalesces a warp memory instruction's per-lane addresses into the set of
/// distinct cache lines it touches. Unit-stride word accesses coalesce into
/// one or two line transactions; scattered accesses fan out to one per
/// lane, which is the main GPU memory-efficiency effect the model needs.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_GPU_COALESCER_H
#define HETSIM_GPU_COALESCER_H

#include "trace/TraceRecord.h"

#include <vector>

namespace hetsim {

/// Fills \p Lines with the distinct cache-line base addresses touched by a
/// warp memory instruction (sorted ascending). The vector is cleared first;
/// passing the same vector across calls reuses its capacity, so the warp
/// issue loop performs no per-record allocation.
void coalesceWarpAccess(const TraceRecord &Record, std::vector<Addr> &Lines);

/// Returns the distinct cache-line base addresses touched by a warp memory
/// instruction (sorted ascending).
std::vector<Addr> coalesceWarpAccess(const TraceRecord &Record);

} // namespace hetsim

#endif // HETSIM_GPU_COALESCER_H
