//===- gpu/GpuCore.h - In-order SIMD GPU timing model -----------*- C++ -*-===//
///
/// \file
/// The 1.5GHz in-order 8-wide SIMD GPU core of Table II. One trace record
/// is one warp instruction. Issue is in order with scoreboarded operands
/// (independent instructions overlap outstanding loads); there is no
/// branch predictor — the core stalls on every branch (Table II: "stall on
/// branch"); warp memory accesses are coalesced into line transactions;
/// SmemLoad/SmemStore use the 16KB software-managed cache.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_GPU_GPUCORE_H
#define HETSIM_GPU_GPUCORE_H

#include "cpu/CpuCore.h" // SegmentResult.
#include "trace/TraceBuffer.h"

namespace hetsim {

class MemorySystem;

/// GPU core parameters (Fermi-SM-like defaults).
struct GpuConfig {
  unsigned IssueWidth = 1;    ///< Warp instructions per cycle.
  Cycle BranchStall = 8;      ///< Pipeline drain on every branch.
  /// Divergence: a data-dependent branch (one with a condition register)
  /// is assumed to split the warp, which then executes both paths —
  /// multiplying the branch's stall by this factor. Loop branches (no
  /// condition register in our traces) never diverge.
  unsigned DivergentBranchFactor = 2;
  unsigned MaxPendingLoads = 64; ///< Scoreboard depth for memory overlap.
  /// Resident warp contexts. The trace is striped across contexts in
  /// chunks (a zero-overhead warp scheduler): one warp's load latency is
  /// hidden by issuing from the others, which is how real GPUs tolerate
  /// memory latency.
  unsigned NumWarps = 16;
  /// Consecutive records assigned to one warp before rotating. Chunks are
  /// larger than a loop iteration so intra-iteration register dependences
  /// stay within one warp's register file.
  unsigned WarpChunkRecords = 32;
};

/// The in-order SIMD core.
class GpuCore {
public:
  GpuCore(const GpuConfig &Config, MemorySystem &Mem);

  /// Runs \p Trace (warp instructions) starting at GPU cycle \p StartCycle.
  SegmentResult run(const TraceBuffer &Trace, Cycle StartCycle);

  /// Same, over a raw record span (sliced interleaved execution).
  SegmentResult run(const TraceRecord *Records, size_t Count,
                    Cycle StartCycle);

  /// Runs a shared trace handle. Block-backed handles expand window by
  /// window; a Pattern block whose body divides evenly into the warp
  /// rotation retires its steady state in closed form once the per-warp
  /// pipelines reach a verified per-period fixed point (DESIGN.md §8).
  SegmentResult run(const SharedTrace &Trace, Cycle StartCycle);

  const GpuConfig &config() const { return Config; }

private:
  SegmentResult runWindowed(const BlockTrace &Block, Cycle StartCycle);
  SegmentResult runPatternBlock(const BlockTrace &Block, Cycle StartCycle);
  SegmentResult runSampled(const BlockTrace &Block, Cycle StartCycle);

  GpuConfig Config;
  MemorySystem &Mem;
};

} // namespace hetsim

#endif // HETSIM_GPU_GPUCORE_H
