//===- gpu/GpuCore.cpp ----------------------------------------------------===//

#include "gpu/GpuCore.h"

#include "common/Error.h"
#include "gpu/Coalescer.h"
#include "memory/MemorySystem.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace hetsim;

GpuCore::GpuCore(const GpuConfig &Cfg, MemorySystem &Memory)
    : Config(Cfg), Mem(Memory) {
  if (Cfg.NumWarps == 0 || Cfg.IssueWidth == 0)
    fatalError("GPU needs at least one warp context and issue slot");
}

namespace {

/// In-order execution state of one warp context.
struct WarpState {
  std::vector<Cycle> RegReady;
  Cycle NextIssue;
  std::vector<Cycle> Pending; // Outstanding memory completions.
  Cycle LastComplete;

  explicit WarpState(Cycle Start)
      : RegReady(NumTraceRegs, Start), NextIssue(Start), LastComplete(Start) {}

  void retirePendingBefore(Cycle Now) {
    Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                 [Now](Cycle C) { return C <= Now; }),
                  Pending.end());
  }
};

} // namespace

SegmentResult GpuCore::run(const TraceBuffer &Trace, Cycle StartCycle) {
  return run(Trace.records().data(), Trace.size(), StartCycle);
}

SegmentResult GpuCore::run(const TraceRecord *Records, size_t Count,
                           Cycle StartCycle) {
  // Throughput model: the trace is striped across NumWarps contexts in
  // chunks of WarpChunkRecords (so whole loop iterations stay inside one
  // register file). Each context executes strictly in order with
  // scoreboarded operands and stall-on-branch; contexts are independent,
  // which models a zero-overhead warp scheduler hiding one warp's memory
  // latency under the others. The segment's cycle count is the slowest
  // context, floored by the core's issue bandwidth (IssueWidth per cycle).
  SegmentResult Result;
  Result.Insts = Count;
  if (Count == 0)
    return Result;

  const unsigned W = Config.NumWarps;
  const unsigned Chunk = std::max(1u, Config.WarpChunkRecords);
  const unsigned PendingPerWarp =
      std::max(1u, Config.MaxPendingLoads / W + 1);

  std::vector<WarpState> Warps(W, WarpState(StartCycle));
  Cycle LastComplete = StartCycle;

  for (size_t I = 0; I != Count; ++I) {
    const TraceRecord &R = Records[I];
    WarpState &Warp = Warps[(I / Chunk) % W];

    Cycle IssueCycle = Warp.NextIssue;
    if (R.SrcRegA != NoReg)
      IssueCycle = std::max(IssueCycle, Warp.RegReady[R.SrcRegA]);
    if (R.SrcRegB != NoReg)
      IssueCycle = std::max(IssueCycle, Warp.RegReady[R.SrcRegB]);

    Cycle Complete = IssueCycle + executeLatency(PuKind::Gpu, R.Op);

    if (isGlobalMemoryOp(R.Op)) {
      Warp.retirePendingBefore(IssueCycle);
      if (Warp.Pending.size() >= PendingPerWarp) {
        Cycle Oldest =
            *std::min_element(Warp.Pending.begin(), Warp.Pending.end());
        IssueCycle = std::max(IssueCycle, Oldest);
        Warp.retirePendingBefore(IssueCycle);
      }
      Cycle WarpDone = IssueCycle;
      for (Addr Line : coalesceWarpAccess(R)) {
        MemAccessResult MemResult = Mem.access(
            PuKind::Gpu, Line, CacheLineBytes, isStoreOp(R.Op), IssueCycle);
        ++Result.MemAccesses;
        Result.MemLatencySum += MemResult.Latency;
        Result.MemLatencyMax = std::max(Result.MemLatencyMax,
                                        MemResult.Latency);
        if (MemResult.PageFault) {
          ++Result.PageFaults;
          Result.PageFaultCycles += MemResult.Latency;
        }
        WarpDone = std::max(WarpDone, IssueCycle + MemResult.Latency);
      }
      if (!isStoreOp(R.Op)) {
        Complete = WarpDone;
        Warp.Pending.push_back(WarpDone);
      }
    } else if (R.Op == Opcode::SmemLoad || R.Op == Opcode::SmemStore) {
      Complete = IssueCycle +
                 Mem.scratchpadWarpAccess(R.MemAddr, R.MemBytes, R.SimdLanes,
                                          R.LaneStrideBytes, isStoreOp(R.Op));
    }

    if (R.DstReg != NoReg)
      Warp.RegReady[R.DstReg] = Complete;

    Warp.NextIssue = IssueCycle + 1;
    if (isBranchOp(R.Op)) {
      // No predictor: this warp's pipeline drains on every branch
      // (Table II); the other warps keep the core busy. Data-dependent
      // branches additionally diverge the warp (both paths execute).
      Cycle Stall = Config.BranchStall;
      if (R.SrcRegA != NoReg && R.SrcRegA != 0)
        Stall *= std::max(1u, Config.DivergentBranchFactor);
      Warp.NextIssue = Complete + Stall;
      ++Result.BranchMispredicts; // Every branch pays the stall.
    }

    Warp.LastComplete = std::max(Warp.LastComplete, Complete);
    LastComplete = std::max(LastComplete, Complete);
  }

  assert(LastComplete >= StartCycle && "time went backwards");
  Cycle CriticalPath = LastComplete - StartCycle;
  Cycle BandwidthFloor = ceilDiv(Count, Config.IssueWidth);
  Result.Cycles = std::max(CriticalPath, BandwidthFloor);
  return Result;
}
