//===- gpu/GpuCore.cpp ----------------------------------------------------===//

#include "gpu/GpuCore.h"

#include "cache/Scratchpad.h"
#include "common/Error.h"
#include "gpu/Coalescer.h"
#include "memory/MemFast.h"
#include "memory/MemorySystem.h"
#include "trace/ComputeBlock.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

using namespace hetsim;

GpuCore::GpuCore(const GpuConfig &Cfg, MemorySystem &Memory)
    : Config(Cfg), Mem(Memory) {
  if (Cfg.NumWarps == 0 || Cfg.IssueWidth == 0)
    fatalError("GPU needs at least one warp context and issue slot");
}

namespace {

/// In-order execution state of one warp context.
struct WarpState {
  std::vector<Cycle> RegReady;
  Cycle NextIssue;
  std::vector<Cycle> Pending; // Outstanding memory completions.
  Cycle LastComplete;

  explicit WarpState(Cycle Start)
      : RegReady(NumTraceRegs, Start), NextIssue(Start), LastComplete(Start) {}

  void retirePendingBefore(Cycle Now) {
    Pending.erase(std::remove_if(Pending.begin(), Pending.end(),
                                 [Now](Cycle C) { return C <= Now; }),
                  Pending.end());
  }
};

/// The throughput model's full state with the reference per-record update
/// in step(). The trace is striped across NumWarps contexts in chunks of
/// WarpChunkRecords (so whole loop iterations stay inside one register
/// file); each context executes strictly in order with scoreboarded
/// operands and stall-on-branch; contexts are independent, which models a
/// zero-overhead warp scheduler hiding one warp's memory latency under the
/// others. Both the reference loop and the fast paths drive this one
/// update function.
struct GpuPipeline {
  const GpuConfig &Config;
  MemorySystem &Mem;
  SegmentResult &Result;

  const unsigned W;
  const unsigned Chunk;
  const unsigned PendingPerWarp;

  std::vector<WarpState> Warps;
  Cycle LastComplete;
  uint64_t Index = 0; ///< Global record index (drives warp striping).
  std::vector<Addr> Lines; // Reused across records: no per-record allocation.

  GpuPipeline(const GpuConfig &Cfg, MemorySystem &Memory, SegmentResult &Res,
              Cycle StartCycle)
      : Config(Cfg), Mem(Memory), Result(Res), W(Cfg.NumWarps),
        Chunk(std::max(1u, Cfg.WarpChunkRecords)),
        PendingPerWarp(std::max(1u, Cfg.MaxPendingLoads / W + 1)),
        Warps(W, WarpState(StartCycle)), LastComplete(StartCycle) {}

  void step(const TraceRecord &R) {
    WarpState &Warp = Warps[(Index / Chunk) % W];
    ++Index;

    Cycle IssueCycle = Warp.NextIssue;
    if (R.SrcRegA != NoReg)
      IssueCycle = std::max(IssueCycle, Warp.RegReady[R.SrcRegA]);
    if (R.SrcRegB != NoReg)
      IssueCycle = std::max(IssueCycle, Warp.RegReady[R.SrcRegB]);

    Cycle Complete = IssueCycle + executeLatency(PuKind::Gpu, R.Op);

    if (isGlobalMemoryOp(R.Op)) {
      Warp.retirePendingBefore(IssueCycle);
      if (Warp.Pending.size() >= PendingPerWarp) {
        Cycle Oldest =
            *std::min_element(Warp.Pending.begin(), Warp.Pending.end());
        IssueCycle = std::max(IssueCycle, Oldest);
        Warp.retirePendingBefore(IssueCycle);
      }
      Cycle WarpDone = IssueCycle;
      coalesceWarpAccess(R, Lines);
      for (Addr Line : Lines) {
        MemAccessResult MemResult = Mem.access(
            PuKind::Gpu, Line, CacheLineBytes, isStoreOp(R.Op), IssueCycle);
        ++Result.MemAccesses;
        Result.MemLatencySum += MemResult.Latency;
        Result.MemLatencyMax = std::max(Result.MemLatencyMax,
                                        MemResult.Latency);
        if (MemResult.PageFault) {
          ++Result.PageFaults;
          Result.PageFaultCycles += MemResult.Latency;
        }
        WarpDone = std::max(WarpDone, IssueCycle + MemResult.Latency);
      }
      if (!isStoreOp(R.Op)) {
        Complete = WarpDone;
        Warp.Pending.push_back(WarpDone);
      }
    } else if (R.Op == Opcode::SmemLoad || R.Op == Opcode::SmemStore) {
      Complete = IssueCycle +
                 Mem.scratchpadWarpAccess(R.MemAddr, R.MemBytes, R.SimdLanes,
                                          R.LaneStrideBytes, isStoreOp(R.Op));
    }

    if (R.DstReg != NoReg)
      Warp.RegReady[R.DstReg] = Complete;

    Warp.NextIssue = IssueCycle + 1;
    if (isBranchOp(R.Op)) {
      // No predictor: this warp's pipeline drains on every branch
      // (Table II); the other warps keep the core busy. Data-dependent
      // branches additionally diverge the warp (both paths execute).
      Cycle Stall = Config.BranchStall;
      if (R.SrcRegA != NoReg && R.SrcRegA != 0)
        Stall *= std::max(1u, Config.DivergentBranchFactor);
      Warp.NextIssue = Complete + Stall;
      ++Result.BranchMispredicts; // Every branch pays the stall.
    }

    Warp.LastComplete = std::max(Warp.LastComplete, Complete);
    LastComplete = std::max(LastComplete, Complete);
  }

  void runSpan(const TraceRecord *Records, size_t Count) {
    for (size_t I = 0; I != Count; ++I)
      step(Records[I]);
  }
};

/// A boundary snapshot for the fixed-point check: every cycle-valued
/// component of every warp, plus the counters the fold must extrapolate.
struct GpuSnap {
  std::vector<std::vector<Cycle>> RegReady; // Per warp.
  std::vector<Cycle> NextIssue;
  std::vector<Cycle> WarpLastComplete;
  Cycle LastComplete;
  uint64_t BranchMispredicts;
  uint64_t SmemReads, SmemWrites, SmemConflicts;

  // Memory-body extension (DESIGN.md §11): outstanding completions per
  // warp and the memory result scalars.
  std::vector<std::vector<Cycle>> Pending;
  uint64_t MemAccesses = 0, MemLatencySum = 0, PageFaults = 0;
  Cycle MemLatencyMax = 0, PageFaultCycles = 0;

  static GpuSnap of(const GpuPipeline &P, const Scratchpad &Smem,
                    bool WithMem = false) {
    GpuSnap S;
    S.RegReady.reserve(P.Warps.size());
    for (const WarpState &Warp : P.Warps) {
      S.RegReady.push_back(Warp.RegReady);
      S.NextIssue.push_back(Warp.NextIssue);
      S.WarpLastComplete.push_back(Warp.LastComplete);
    }
    S.LastComplete = P.LastComplete;
    S.BranchMispredicts = P.Result.BranchMispredicts;
    S.SmemReads = Smem.readCount();
    S.SmemWrites = Smem.writeCount();
    S.SmemConflicts = Smem.bankConflictCount();
    if (WithMem) {
      S.Pending.reserve(P.Warps.size());
      for (const WarpState &Warp : P.Warps)
        S.Pending.push_back(Warp.Pending);
      S.MemAccesses = P.Result.MemAccesses;
      S.MemLatencySum = P.Result.MemLatencySum;
      S.MemLatencyMax = P.Result.MemLatencyMax;
      S.PageFaults = P.Result.PageFaults;
      S.PageFaultCycles = P.Result.PageFaultCycles;
    }
    return S;
  }
};

struct GpuFoldPlan {
  Cycle D = 0;
  std::vector<std::vector<bool>> RegMoves; // Per warp, per register.
  uint64_t DBm = 0;
  uint64_t DSmemReads = 0, DSmemWrites = 0, DSmemConflicts = 0;
  uint64_t DMemAccesses = 0, DMemLatencySum = 0;
};

/// GPU analogue of the CPU fixed-point check: both observed windows must
/// advance every warp's cycle state by the same D, with non-advancing
/// registers provably inert (constant value at or below the warp's
/// strictly-increasing NextIssue at s1), and counter deltas equal.
bool checkGpuFold(const GpuSnap &S1, const GpuSnap &S2, const GpuSnap &S3,
                  GpuFoldPlan &Plan) {
  if (S2.LastComplete < S1.LastComplete)
    return false;
  Cycle D = S2.LastComplete - S1.LastComplete;
  if (S3.LastComplete - S2.LastComplete != D)
    return false;

  const size_t W = S1.NextIssue.size();
  Plan.RegMoves.assign(W, {});
  for (size_t Wi = 0; Wi != W; ++Wi) {
    if (S2.NextIssue[Wi] - S1.NextIssue[Wi] != D ||
        S3.NextIssue[Wi] - S2.NextIssue[Wi] != D)
      return false;
    if (S2.WarpLastComplete[Wi] - S1.WarpLastComplete[Wi] != D ||
        S3.WarpLastComplete[Wi] - S2.WarpLastComplete[Wi] != D)
      return false;
    Plan.RegMoves[Wi].assign(S1.RegReady[Wi].size(), false);
    for (size_t R = 0; R != S1.RegReady[Wi].size(); ++R) {
      Cycle D12 = S2.RegReady[Wi][R] - S1.RegReady[Wi][R];
      Cycle D23 = S3.RegReady[Wi][R] - S2.RegReady[Wi][R];
      if (D12 != D23)
        return false;
      if (D12 == D) {
        Plan.RegMoves[Wi][R] = true;
        continue;
      }
      if (D12 == 0 && S1.RegReady[Wi][R] <= S1.NextIssue[Wi])
        continue; // Inert: NextIssue only grows, so this max never wins.
      return false;
    }
  }

  uint64_t DBm = S2.BranchMispredicts - S1.BranchMispredicts;
  if (S3.BranchMispredicts - S2.BranchMispredicts != DBm)
    return false;
  Plan.DSmemReads = S2.SmemReads - S1.SmemReads;
  Plan.DSmemWrites = S2.SmemWrites - S1.SmemWrites;
  Plan.DSmemConflicts = S2.SmemConflicts - S1.SmemConflicts;
  if (S3.SmemReads - S2.SmemReads != Plan.DSmemReads ||
      S3.SmemWrites - S2.SmemWrites != Plan.DSmemWrites ||
      S3.SmemConflicts - S2.SmemConflicts != Plan.DSmemConflicts)
    return false;

  Plan.D = D;
  Plan.DBm = DBm;
  return true;
}

void applyGpuFold(GpuPipeline &Pipe, const GpuFoldPlan &Plan, uint64_t Rem,
                  size_t K, Scratchpad &Smem) {
  const Cycle Adv = Plan.D * Rem;
  Pipe.LastComplete += Adv;
  for (size_t Wi = 0; Wi != Pipe.Warps.size(); ++Wi) {
    WarpState &Warp = Pipe.Warps[Wi];
    Warp.NextIssue += Adv;
    Warp.LastComplete += Adv;
    for (size_t R = 0; R != Warp.RegReady.size(); ++R)
      if (Plan.RegMoves[Wi][R])
        Warp.RegReady[R] += Adv;
  }
  Pipe.Index += Rem * K;
  Pipe.Result.BranchMispredicts += Plan.DBm * Rem;
  Smem.creditFolded(Plan.DSmemReads * Rem, Plan.DSmemWrites * Rem,
                    Plan.DSmemConflicts * Rem);
}

/// The memory-side half of the GPU fixed-point check. Outstanding
/// completions must translate strictly by D: an entry sitting constant in
/// a warp that issues memory operations would eventually fall at or below
/// the growing retire clock, get dropped, and change the occupancy stall
/// behaviour of extrapolated windows — so no inert tier exists here.
bool checkGpuMemFold(const GpuSnap &S1, const GpuSnap &S2,
                     const GpuSnap &S3, GpuFoldPlan &Plan) {
  uint64_t DMa = S2.MemAccesses - S1.MemAccesses;
  if (S3.MemAccesses - S2.MemAccesses != DMa)
    return false;
  uint64_t DMl = S2.MemLatencySum - S1.MemLatencySum;
  if (S3.MemLatencySum - S2.MemLatencySum != DMl)
    return false;
  if (S1.PageFaults != S3.PageFaults ||
      S1.PageFaultCycles != S3.PageFaultCycles)
    return false;
  if (S2.MemLatencyMax != S3.MemLatencyMax)
    return false;

  const size_t W = S1.Pending.size();
  for (size_t Wi = 0; Wi != W; ++Wi) {
    if (S1.Pending[Wi].size() != S2.Pending[Wi].size() ||
        S2.Pending[Wi].size() != S3.Pending[Wi].size())
      return false;
    for (size_t I = 0; I != S1.Pending[Wi].size(); ++I) {
      if (S2.Pending[Wi][I] - S1.Pending[Wi][I] != Plan.D ||
          S3.Pending[Wi][I] - S2.Pending[Wi][I] != Plan.D)
        return false;
    }
  }

  Plan.DMemAccesses = DMa;
  Plan.DMemLatencySum = DMl;
  return true;
}

void applyGpuMemFold(GpuPipeline &Pipe, const GpuFoldPlan &Plan,
                     uint64_t Rem) {
  Pipe.Result.MemAccesses += Plan.DMemAccesses * Rem;
  Pipe.Result.MemLatencySum += Plan.DMemLatencySum * Rem;
  const Cycle Adv = Plan.D * Rem;
  for (WarpState &Warp : Pipe.Warps)
    for (Cycle &C : Warp.Pending)
      C += Adv;
}

bool gpuSpanTouchesGlobalMemory(const TraceBuffer &Body) {
  for (const TraceRecord &R : Body)
    if (isGlobalMemoryOp(R.Op))
      return true;
  return false;
}

} // namespace

SegmentResult GpuCore::run(const TraceBuffer &Trace, Cycle StartCycle) {
  return run(Trace.records().data(), Trace.size(), StartCycle);
}

SegmentResult GpuCore::run(const TraceRecord *Records, size_t Count,
                           Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Count;
  if (Count == 0)
    return Result;

  GpuPipeline Pipe(Config, Mem, Result, StartCycle);
  Pipe.runSpan(Records, Count);

  assert(Pipe.LastComplete >= StartCycle && "time went backwards");
  Cycle CriticalPath = Pipe.LastComplete - StartCycle;
  Cycle BandwidthFloor = ceilDiv(Count, Config.IssueWidth);
  Result.Cycles = std::max(CriticalPath, BandwidthFloor);
  return Result;
}

SegmentResult GpuCore::run(const SharedTrace &Trace, Cycle StartCycle) {
  const BlockTrace *Block = Trace.blocks();
  if (!Block || !fastPathEnabled())
    return run(Trace.buffer(), StartCycle);
  if (Block->kind() == BlockTrace::Kind::Pattern)
    return runPatternBlock(*Block, StartCycle);
  return runWindowed(*Block, StartCycle);
}

SegmentResult GpuCore::runWindowed(const BlockTrace &Block,
                                   Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Block.totalRecords();
  if (Result.Insts == 0)
    return Result;

  if (Mem.memFastModeCached() == MemFastMode::Sampled &&
      Block.kind() != BlockTrace::Kind::Pattern &&
      Block.generator().streamStructure().SteadyStride &&
      Result.Insts >= 8 * ComputeWindowRecords)
    return runSampled(Block, StartCycle);

  GpuPipeline Pipe(Config, Mem, Result, StartCycle);
  BlockExpander Expander(Block);
  TraceBuffer Window;
  while (!Expander.done()) {
    BlockExpander::Span Span = Expander.nextSpan(Window);
    Pipe.runSpan(Span.Data, size_t(Span.Count));
  }

  assert(Pipe.LastComplete >= StartCycle && "time went backwards");
  Cycle CriticalPath = Pipe.LastComplete - StartCycle;
  Cycle BandwidthFloor = ceilDiv(Result.Insts, Config.IssueWidth);
  Result.Cycles = std::max(CriticalPath, BandwidthFloor);
  return Result;
}

/// GPU half of the sampled memory tier (DESIGN.md §11): same schedule as
/// the CPU one — warm, measure, skip — with the whole warp array
/// translated by the extrapolated advance. Skipped records keep the
/// record-to-warp striping aligned via Index. Never used by goldens.
SegmentResult GpuCore::runSampled(const BlockTrace &Block,
                                  Cycle StartCycle) {
  SegmentResult Result;
  Result.Insts = Block.totalRecords();

  GpuPipeline Pipe(Config, Mem, Result, StartCycle);
  BlockExpander Expander(Block);
  TraceBuffer Window;
  MemorySystem::MemFastCounters &MFC = Mem.memfastCounters();
  const unsigned SkipN = memFastSampleSkip();

  double RateMin = 0, RateMax = 0;
  bool HaveRate = false;
  unsigned WarmLeft = 4;
  while (!Expander.done()) {
    if (WarmLeft != 0) {
      BlockExpander::Span Span = Expander.nextWindow(Window);
      Pipe.runSpan(Span.Data, size_t(Span.Count));
      --WarmLeft;
      continue;
    }

    const Cycle C0 = Pipe.LastComplete;
    const SegmentResult R0 = Result;
    BlockExpander::Span Span = Expander.nextWindow(Window);
    Pipe.runSpan(Span.Data, size_t(Span.Count));
    const uint64_t Nm = Span.Count;
    if (Nm == 0)
      break;
    const Cycle Dm = Pipe.LastComplete - C0;
    const uint64_t DMa = Result.MemAccesses - R0.MemAccesses;
    const uint64_t DMl = Result.MemLatencySum - R0.MemLatencySum;
    const uint64_t DBm = Result.BranchMispredicts - R0.BranchMispredicts;
    const double Rate = double(Dm) / double(Nm);
    RateMin = HaveRate ? std::min(RateMin, Rate) : Rate;
    RateMax = HaveRate ? std::max(RateMax, Rate) : Rate;
    HaveRate = true;

    uint64_t SkipRecords = 0;
    for (unsigned I = 0; I != SkipN && !Expander.done(); ++I)
      SkipRecords += Expander.skip(Window);
    if (SkipRecords != 0) {
      const Cycle Adv = Dm * SkipRecords / Nm;
      Pipe.LastComplete += Adv;
      for (WarpState &Warp : Pipe.Warps) {
        Warp.NextIssue += Adv;
        Warp.LastComplete += Adv;
        for (Cycle &C : Warp.RegReady)
          C += Adv;
        for (Cycle &C : Warp.Pending)
          C += Adv;
      }
      Pipe.Index += SkipRecords;
      Result.MemAccesses += DMa * SkipRecords / Nm;
      Result.MemLatencySum += DMl * SkipRecords / Nm;
      Result.BranchMispredicts += DBm * SkipRecords / Nm;
      Result.SampledRecords += SkipRecords;
      Result.SampledErrorCycles += double(SkipRecords) * (RateMax - RateMin);
      ++*MFC.SampledWindows;
      *MFC.SampledRecords += SkipRecords;
      WarmLeft = 1;
    }
  }

  assert(Pipe.LastComplete >= StartCycle && "time went backwards");
  Cycle CriticalPath = Pipe.LastComplete - StartCycle;
  Cycle BandwidthFloor = ceilDiv(Result.Insts, Config.IssueWidth);
  Result.Cycles = std::max(CriticalPath, BandwidthFloor);
  return Result;
}

SegmentResult GpuCore::runPatternBlock(const BlockTrace &Block,
                                       Cycle StartCycle) {
  const PatternBlock &P = Block.pattern();
  SegmentResult Result;
  Result.Insts = Block.totalRecords();
  if (Result.Insts == 0)
    return Result;

  GpuPipeline Pipe(Config, Mem, Result, StartCycle);
  Pipe.runSpan(P.Prologue.records().data(), P.Prologue.size());

  const size_t K = P.Body.size();
  const uint64_t Rotation = uint64_t(Pipe.Chunk) * Pipe.W;
  uint64_t Done = 0;
  // Fold preconditions: the body must be a whole number of warp
  // rotations, so every repetition stripes records onto warps the same
  // way. Scratchpad traffic is fine — its timing is stateless and its
  // counters extrapolate linearly. Bodies with global-memory records
  // additionally need the whole memory system at a verified per-period
  // fixed point (the memory-phase fold, DESIGN.md §11), gated on
  // HETSIM_MEMFAST.
  const bool MemBody = gpuSpanTouchesGlobalMemory(P.Body);
  const MemFastMode MF = Mem.memFastModeCached();
  const bool TryFold =
      K != 0 && P.BodyRepeats > 0 && K % Rotation == 0 &&
      (!MemBody || MF == MemFastMode::Exact || MF == MemFastMode::Warm);
  if (TryFold) {
    const uint64_t Warmup = 3 + (MemBody ? 2 : 0);
    if (P.BodyRepeats >= Warmup + 3) {
      Scratchpad &Smem = Mem.scratchpad();
      for (; Done != Warmup; ++Done)
        Pipe.runSpan(P.Body.records().data(), K);
      std::unique_ptr<MemFoldObserver> Obs;
      if (MemBody) {
        ++*Mem.memfastCounters().FoldAttempts;
        Obs.reset(new MemFoldObserver(Mem, PuKind::Gpu));
        Obs->snapshot(0);
      }
      GpuSnap S1 = GpuSnap::of(Pipe, Smem, MemBody);
      if (Obs)
        Obs->beginLog(0);
      Pipe.runSpan(P.Body.records().data(), K);
      ++Done;
      if (Obs) {
        Obs->endLog();
        Obs->snapshot(1);
      }
      GpuSnap S2 = GpuSnap::of(Pipe, Smem, MemBody);
      if (Obs)
        Obs->beginLog(1);
      Pipe.runSpan(P.Body.records().data(), K);
      ++Done;
      if (Obs) {
        Obs->endLog();
        Obs->snapshot(2);
      }
      GpuSnap S3 = GpuSnap::of(Pipe, Smem, MemBody);

      GpuFoldPlan Plan;
      bool Ok = checkGpuFold(S1, S2, S3, Plan);
      if (Obs) {
        MemFoldReason Reason = MemFoldReason::PipelineDrift;
        if (Ok && !checkGpuMemFold(S1, S2, S3, Plan))
          Ok = false; // Core-side memory state (pending loads) drifted.
        if (Ok) {
          // The smallest GPU cycle any future access can carry: every
          // warp's issue clock only grows.
          Cycle FloorPu =
              *std::min_element(S1.NextIssue.begin(), S1.NextIssue.end());
          Ok = Obs->check(Plan.D, FloorPu, Reason);
        }
        if (Ok) {
          const uint64_t Rem = P.BodyRepeats - Done;
          applyGpuFold(Pipe, Plan, Rem, K, Smem);
          applyGpuMemFold(Pipe, Plan, Rem);
          Obs->apply(Rem);
          ++*Mem.memfastCounters().Folds;
          *Mem.memfastCounters().FoldedRecords += K * Rem;
          Done = P.BodyRepeats;
        } else {
          ++*Mem.memfastCounters().Fallback[unsigned(Reason)];
        }
      } else if (Ok) {
        uint64_t Rem = P.BodyRepeats - Done;
        applyGpuFold(Pipe, Plan, Rem, K, Smem);
        Done = P.BodyRepeats;
      }
    }
  }
  for (; Done != P.BodyRepeats; ++Done)
    Pipe.runSpan(P.Body.records().data(), K);

  Pipe.runSpan(P.Epilogue.records().data(), P.Epilogue.size());

  assert(Pipe.LastComplete >= StartCycle && "time went backwards");
  Cycle CriticalPath = Pipe.LastComplete - StartCycle;
  Cycle BandwidthFloor = ceilDiv(Result.Insts, Config.IssueWidth);
  Result.Cycles = std::max(CriticalPath, BandwidthFloor);
  return Result;
}
