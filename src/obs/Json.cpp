//===- obs/Json.cpp -------------------------------------------------------===//

#include "obs/Json.h"

#include <cassert>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace hetsim;

void hetsim::jsonAppendEscaped(std::string &Out, const std::string &Text) {
  Out += '"';
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void JsonWriter::separator() {
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::key(const std::string &Name) {
  separator();
  jsonAppendEscaped(Out, Name);
  Out += ':';
}

void JsonWriter::number(double Value) {
  if (!std::isfinite(Value)) {
    // JSON has no inf/nan; clamp to null so documents stay parseable.
    Out += "null";
    return;
  }
  if (Value == uint64_t(Value) && std::fabs(Value) < 9.0e15) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%llu",
                  static_cast<unsigned long long>(Value));
    Out += Buffer;
    return;
  }
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  Out += Buffer;
}

void JsonWriter::beginObject() {
  separator();
  Out += '{';
  NeedComma.push_back(false);
}

void JsonWriter::beginObject(const std::string &Key) {
  key(Key);
  Out += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  assert(!NeedComma.empty() && "endObject with no open scope");
  Out += '}';
  NeedComma.pop_back();
}

void JsonWriter::beginArray() {
  separator();
  Out += '[';
  NeedComma.push_back(false);
}

void JsonWriter::beginArray(const std::string &Key) {
  key(Key);
  Out += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  assert(!NeedComma.empty() && "endArray with no open scope");
  Out += ']';
  NeedComma.pop_back();
}

void JsonWriter::value(const std::string &Key, const std::string &Text) {
  key(Key);
  jsonAppendEscaped(Out, Text);
}

void JsonWriter::value(const std::string &Key, const char *Text) {
  value(Key, std::string(Text));
}

void JsonWriter::value(const std::string &Key, double Number) {
  key(Key);
  number(Number);
}

void JsonWriter::value(const std::string &Key, uint64_t Number) {
  key(Key);
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%llu",
                static_cast<unsigned long long>(Number));
  Out += Buffer;
}

void JsonWriter::value(const std::string &Key, int Number) {
  value(Key, double(Number));
}

void JsonWriter::value(const std::string &Key, bool Flag) {
  key(Key);
  Out += Flag ? "true" : "false";
}

void JsonWriter::value(const std::string &Text) {
  separator();
  jsonAppendEscaped(Out, Text);
}

void JsonWriter::value(double Number) {
  separator();
  number(Number);
}

void JsonWriter::value(uint64_t Number) {
  separator();
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%llu",
                static_cast<unsigned long long>(Number));
  Out += Buffer;
}

std::string JsonWriter::take() {
  assert(NeedComma.empty() && "take() with unclosed JSON scopes");
  std::string Result;
  Result.swap(Out);
  return Result;
}

//===----------------------------------------------------------------------===//
// Reader.
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (Type != Kind::Object)
    return nullptr;
  for (const auto &KV : Members)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out, /*Depth=*/0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const char *Message) {
    char Buffer[128];
    std::snprintf(Buffer, sizeof(Buffer), "%s (at byte %zu)", Message, Pos);
    Error = Buffer;
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (unsigned I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // The writer only emits \u for control characters; decode the
        // BMP code point as UTF-8.
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xC0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3F));
        } else {
          Out += char(0xE0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3F));
          Out += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      size_t Before = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      return Pos != Before;
    };
    if (!Digits())
      return fail("expected digits");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!Digits())
        return fail("expected fraction digits");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!Digits())
        return fail("expected exponent digits");
    }
    Out.Type = JsonValue::Kind::Number;
    Out.NumberValue = std::strtod(Text.c_str() + Start, nullptr);
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out.Type = JsonValue::Kind::Object;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipSpace();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JsonValue Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.Members.emplace_back(std::move(Key), std::move(Member));
        skipSpace();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Out.Type = JsonValue::Kind::Array;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Element;
        if (!parseValue(Element, Depth + 1))
          return false;
        Out.Elements.push_back(std::move(Element));
        skipSpace();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.Type = JsonValue::Kind::String;
      return parseString(Out.StringValue);
    }
    if (C == 't') {
      Out.Type = JsonValue::Kind::Bool;
      Out.BoolValue = true;
      return literal("true");
    }
    if (C == 'f') {
      Out.Type = JsonValue::Kind::Bool;
      Out.BoolValue = false;
      return literal("false");
    }
    if (C == 'n') {
      Out.Type = JsonValue::Kind::Null;
      return literal("null");
    }
    return parseNumber(Out);
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool hetsim::parseJson(const std::string &Text, JsonValue &Out,
                       std::string &Error) {
  Out = JsonValue();
  return Parser(Text, Error).parse(Out);
}

bool hetsim::isValidJson(const std::string &Text) {
  JsonValue Value;
  std::string Error;
  return parseJson(Text, Value, Error);
}

bool hetsim::writeTextFile(const std::string &Path,
                           const std::string &Contents) {
  std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
  if (!Out)
    return false;
  Out.write(Contents.data(), std::streamsize(Contents.size()));
  return bool(Out);
}

bool hetsim::readTextFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}
