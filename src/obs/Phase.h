//===- obs/Phase.h - Per-phase time attribution -----------------*- C++ -*-===//
///
/// \file
/// Run-phase taxonomy for the observability layer. Every nanosecond a
/// simulated run spends is attributed to exactly one RunPhase, giving the
/// paper's Figure-style compute/communication breakdowns a finer-grained,
/// machine-checkable form: the phase sums must reconcile with the coarse
/// TimeBreakdown (sequential/parallel/communication) the simulator already
/// reports.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_OBS_PHASE_H
#define HETSIM_OBS_PHASE_H

#include <cstdint>

namespace hetsim {

/// Where a slice of wall-clock (simulated ns) went.
enum class RunPhase : uint8_t {
  SerialCompute,    ///< CPU serial segments (exposed, non-overlapped part).
  ParallelCompute,  ///< Offloaded kernel execution on the parallel PU.
  Transfer,         ///< Explicit copies (memcpy/DMA issue + bus time).
  DmaWait,          ///< Blocking on outstanding asynchronous DMA.
  Ownership,        ///< Ownership transfer / release-flush boundaries.
  Push,             ///< Explicit locality pushes into the shared L3.
  PageFault,        ///< First-touch page-fault handling inside kernels.
  CopyOverlapStall, ///< Kernel-visible stall from copy/contention overlap.
};

constexpr unsigned NumRunPhases = 8;

/// Stable lowercase name ("serial_compute", ...), used as the JSON key
/// and the Chrome trace-event name.
const char *runPhaseName(RunPhase Phase);

/// Nanoseconds attributed per phase. Plain aggregate so RunResult can
/// embed it by value.
struct PhaseBreakdown {
  double Ns[NumRunPhases] = {};

  void add(RunPhase Phase, double DeltaNs) {
    Ns[unsigned(Phase)] += DeltaNs;
  }
  double ns(RunPhase Phase) const { return Ns[unsigned(Phase)]; }

  double totalNs() const {
    double Total = 0;
    for (double N : Ns)
      Total += N;
    return Total;
  }

  /// Compute side of the paper's split: serial + parallel kernel time.
  double computeNs() const {
    return ns(RunPhase::SerialCompute) + ns(RunPhase::ParallelCompute);
  }

  /// Communication side: everything that is not kernel compute.
  double communicationNs() const { return totalNs() - computeNs(); }
};

} // namespace hetsim

#endif // HETSIM_OBS_PHASE_H
