//===- obs/Metrics.cpp ----------------------------------------------------===//

#include "obs/Metrics.h"

#include "common/Stats.h"
#include "memory/MemorySystem.h"
#include "obs/Json.h"

#include <cstdio>

using namespace hetsim;

static void addCache(MetricsSnapshot &Out, const std::string &Prefix,
                     const CacheStats &S) {
  Out.add(Prefix + ".accesses", double(S.Accesses));
  Out.add(Prefix + ".hits", double(S.Hits));
  Out.add(Prefix + ".misses", double(S.Misses));
  Out.add(Prefix + ".evictions", double(S.Evictions));
  Out.add(Prefix + ".writebacks", double(S.Writebacks));
  Out.add(Prefix + ".bypassed_fills", double(S.BypassedFills));
}

static void addDram(MetricsSnapshot &Out, const std::string &Prefix,
                    const DramSystem &Dram) {
  const DramStats &S = Dram.stats();
  Out.add(Prefix + ".reads", double(S.Reads));
  Out.add(Prefix + ".writes", double(S.Writes));
  Out.add(Prefix + ".row_hits", double(S.RowHits));
  Out.add(Prefix + ".row_misses", double(S.RowMisses));
  Out.add(Prefix + ".bytes", double(S.BytesTransferred));
  Out.add(Prefix + ".batch_drains", double(S.BatchDrains));
  Out.add(Prefix + ".batched_reqs", double(S.BatchedRequests));
  Out.add(Prefix + ".peak_queue_depth", double(S.PeakQueueDepth));
  Out.add(Prefix + ".queued", double(Dram.queuedRequests()));
}

static void addTlb(MetricsSnapshot &Out, const std::string &Prefix,
                   const TlbStats &S) {
  Out.add(Prefix + ".lookups", double(S.Lookups));
  Out.add(Prefix + ".hits", double(S.Hits));
  Out.add(Prefix + ".misses", double(S.Misses));
}

void hetsim::captureMetrics(MemorySystem &Mem, MetricsSnapshot &Out) {
  addCache(Out, "cache.cpu_l1", Mem.cpuL1().stats());
  addCache(Out, "cache.cpu_l2", Mem.cpuL2().stats());
  addCache(Out, "cache.gpu_l1", Mem.gpuL1().stats());
  addCache(Out, "cache.l3", Mem.l3().stats());

  addDram(Out, "dram.cpu", Mem.cpuDram());
  if (Mem.config().SeparateGpuDram)
    addDram(Out, "dram.gpu", Mem.gpuDram());

  const NocStats &Noc = Mem.noc().stats();
  Out.add("noc.messages", double(Noc.Messages));
  Out.add("noc.hops", double(Noc.TotalHops));
  Out.add("noc.contention_cycles", double(Noc.ContentionCycles));
  Out.add("noc.contended_messages", double(Noc.ContendedMessages));

  addTlb(Out, "tlb.cpu", Mem.tlb(PuKind::Cpu).stats());
  addTlb(Out, "tlb.gpu", Mem.tlb(PuKind::Gpu).stats());

  const PrefetcherStats &Pf = Mem.prefetcher().stats();
  Out.add("prefetcher.lookups", double(Pf.Lookups));
  Out.add("prefetcher.streams", double(Pf.StreamAllocations));
  Out.add("prefetcher.issued", double(Pf.PrefetchesIssued));

  const StatRegistry &Stats = Mem.stats();
  for (const std::string &Name : Stats.counterNames())
    Out.add(Name, double(Stats.counter(Name)));
  for (const std::string &Name : Stats.histogramNames()) {
    const StatHistogram &H = Stats.histogram(Name);
    Out.add(Name + ".count", double(H.count()));
    Out.add(Name + ".sum", double(H.sum()));
    Out.add(Name + ".mean", H.mean());
    Out.add(Name + ".max", double(H.max()));
    Out.add(Name + ".p50", double(H.approxPercentile(0.50)));
    Out.add(Name + ".p99", double(H.approxPercentile(0.99)));
  }
}

std::string ConservationReport::summary() const {
  if (Violations.empty())
    return "ok";
  std::string Out;
  for (const std::string &V : Violations) {
    if (!Out.empty())
      Out += "; ";
    Out += V;
  }
  return Out;
}

static void checkDevice(ConservationReport &Report, const char *Label,
                        const DramSystem &Dram, uint64_t Charged) {
  char Buffer[160];
  if (Dram.queuedRequests() != 0) {
    std::snprintf(Buffer, sizeof(Buffer),
                  "%s: %zu requests still queued at quiescence", Label,
                  Dram.queuedRequests());
    Report.Ok = false;
    Report.Violations.push_back(Buffer);
  }
  uint64_t Served = Dram.stats().Reads + Dram.stats().Writes;
  if (Served != Charged) {
    std::snprintf(Buffer, sizeof(Buffer),
                  "%s: served %llu requests but charged %llu", Label,
                  static_cast<unsigned long long>(Served),
                  static_cast<unsigned long long>(Charged));
    Report.Ok = false;
    Report.Violations.push_back(Buffer);
  }
}

ConservationReport hetsim::checkConservation(MemorySystem &Mem) {
  ConservationReport Report;
  const StatRegistry &Stats = Mem.stats();

  uint64_t CpuCharged = Stats.counter("dram.cpu.demand") +
                        Stats.counter("dram.cpu.writebacks") +
                        Stats.counter("dram.cpu.prefetch_reads") +
                        Stats.counter("dram.cpu.transfer_reqs");
  checkDevice(Report, "dram.cpu", Mem.cpuDram(), CpuCharged);

  if (Mem.config().SeparateGpuDram)
    checkDevice(Report, "dram.gpu", Mem.gpuDram(),
                Stats.counter("dram.gpu.demand"));
  return Report;
}

void hetsim::appendMetricsObject(JsonWriter &W, const std::string &Key,
                                 const MetricsSnapshot &M) {
  W.beginObject(Key);
  for (const auto &KV : M.values())
    W.value(KV.first, KV.second);
  W.endObject();
}

std::string hetsim::renderMetricsJson(const MetricsSnapshot &M) {
  JsonWriter W;
  W.beginObject();
  W.value("schema", "hetsim-metrics-v1");
  appendMetricsObject(W, "metrics", M);
  W.endObject();
  return W.take();
}

bool hetsim::writeMetricsJson(const std::string &Path,
                              const MetricsSnapshot &M) {
  return writeTextFile(Path, renderMetricsJson(M) + "\n");
}

static bool allNumericMembers(const JsonValue &Object, std::string &Error) {
  for (const auto &KV : Object.Members) {
    if (KV.second.isNumber() || KV.second.Type == JsonValue::Kind::Null)
      continue;
    Error = "metric '" + KV.first + "' is not a number";
    return false;
  }
  return true;
}

bool hetsim::validateMetricsJson(const std::string &Text, std::string &Error) {
  JsonValue Doc;
  if (!parseJson(Text, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "document is not an object";
    return false;
  }
  const JsonValue *Schema = Doc.find("schema");
  if (!Schema || !Schema->isString()) {
    Error = "missing 'schema' string";
    return false;
  }

  if (Schema->StringValue == "hetsim-metrics-v1") {
    const JsonValue *Metrics = Doc.find("metrics");
    if (!Metrics || !Metrics->isObject()) {
      Error = "missing 'metrics' object";
      return false;
    }
    return allNumericMembers(*Metrics, Error);
  }

  if (Schema->StringValue == "hetsim-sweep-metrics-v1") {
    const JsonValue *Points = Doc.find("points");
    if (!Points || !Points->isArray()) {
      Error = "missing 'points' array";
      return false;
    }
    for (const JsonValue &Point : Points->Elements) {
      if (!Point.isObject()) {
        Error = "sweep point is not an object";
        return false;
      }
      const JsonValue *Metrics = Point.find("metrics");
      if (!Metrics || !Metrics->isObject()) {
        Error = "sweep point missing 'metrics' object";
        return false;
      }
      if (!allNumericMembers(*Metrics, Error))
        return false;
    }
    return true;
  }

  Error = "unknown schema '" + Schema->StringValue + "'";
  return false;
}
