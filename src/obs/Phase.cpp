//===- obs/Phase.cpp ------------------------------------------------------===//

#include "obs/Phase.h"

#include "common/Error.h"

using namespace hetsim;

const char *hetsim::runPhaseName(RunPhase Phase) {
  switch (Phase) {
  case RunPhase::SerialCompute:
    return "serial_compute";
  case RunPhase::ParallelCompute:
    return "parallel_compute";
  case RunPhase::Transfer:
    return "transfer";
  case RunPhase::DmaWait:
    return "dma_wait";
  case RunPhase::Ownership:
    return "ownership";
  case RunPhase::Push:
    return "push";
  case RunPhase::PageFault:
    return "page_fault";
  case RunPhase::CopyOverlapStall:
    return "copy_overlap_stall";
  }
  hetsim_unreachable("unknown RunPhase");
}
