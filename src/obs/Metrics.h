//===- obs/Metrics.h - Flat metrics snapshots and conservation --*- C++ -*-===//
///
/// \file
/// The metrics side of the observability layer: a flat name->value
/// snapshot captured from a MemorySystem (cache/DRAM/NoC/TLB structs,
/// registry counters, histogram summaries), a JSON renderer/validator
/// for the `out/metrics.json` artifact, and the DRAM traffic
/// conservation check that turns this PR's accounting bugfixes into a
/// permanently-enforced invariant.
///
/// Conservation contract: every request the memory system submits to a
/// DRAM device is charged, at the submission site, to exactly one
/// source-category counter —
///   dram.cpu.demand          demand misses served by the CPU/unified device
///   dram.cpu.writebacks      L2/L3 victim writebacks (incl. pushToShared)
///   dram.cpu.prefetch_reads  L2 stream-prefetch fills
///   dram.cpu.transfer_reqs   fused memory-controller transfer requests
///   dram.gpu.demand          demand misses served by a discrete GPU device
/// so the device's served total (DramStats Reads+Writes) must equal the
/// category sum, and the FR-FCFS background queue must be empty whenever
/// a run is quiescent.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_OBS_METRICS_H
#define HETSIM_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetsim {

class JsonWriter;
class MemorySystem;

/// A flat, sorted name->value map of everything one run observed.
/// Components and the simulator add values under dotted lowercase names
/// (the StatRegistry convention); duplicates overwrite.
class MetricsSnapshot {
public:
  void add(const std::string &Name, double Value) { Values[Name] = Value; }

  bool has(const std::string &Name) const { return Values.count(Name) != 0; }
  double get(const std::string &Name) const {
    auto It = Values.find(Name);
    return It == Values.end() ? 0.0 : It->second;
  }
  size_t size() const { return Values.size(); }
  const std::map<std::string, double> &values() const { return Values; }

private:
  std::map<std::string, double> Values;
};

/// Captures the full memory-system state into \p Out: per-cache structs
/// ("cache.cpu_l1.hits"), DRAM devices ("dram.cpu.reads"), NoC, TLBs,
/// prefetcher, every registry counter verbatim, and histogram summaries
/// ("<name>.count/.sum/.mean/.max/.p50/.p99").
void captureMetrics(MemorySystem &Mem, MetricsSnapshot &Out);

/// Result of the DRAM traffic-conservation audit.
struct ConservationReport {
  bool Ok = true;
  std::vector<std::string> Violations;

  /// All violations joined with "; " ("ok" when none).
  std::string summary() const;
};

/// Audits \p Mem against the conservation contract above: background
/// queues empty, and each device's served requests equal to the sum of
/// its charged source categories.
ConservationReport checkConservation(MemorySystem &Mem);

/// Writes `"Key":{"name":value,...}` into an open JSON object scope.
void appendMetricsObject(JsonWriter &W, const std::string &Key,
                         const MetricsSnapshot &M);

/// Renders the single-run document:
/// `{"schema":"hetsim-metrics-v1","metrics":{...}}`.
std::string renderMetricsJson(const MetricsSnapshot &M);

/// Renders and writes the single-run document to \p Path.
bool writeMetricsJson(const std::string &Path, const MetricsSnapshot &M);

/// Schema check for metrics documents. Accepts the single-run shape
/// (schema "hetsim-metrics-v1" + "metrics" object of numbers) and the
/// sweep shape (schema "hetsim-sweep-metrics-v1" + "points" array whose
/// elements each carry a "metrics" object of numbers). Returns false and
/// sets \p Error on any deviation.
bool validateMetricsJson(const std::string &Text, std::string &Error);

} // namespace hetsim

#endif // HETSIM_OBS_METRICS_H
