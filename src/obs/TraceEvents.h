//===- obs/TraceEvents.h - Chrome trace-event timeline ----------*- C++ -*-===//
///
/// \file
/// A bounded in-memory timeline of simulated activity, exported in the
/// Chrome trace-event JSON format (load the file in chrome://tracing or
/// Perfetto). Tracks are rendered as named threads of one process:
/// kernel phases on the cpu/gpu tracks, explicit copies on the fabric
/// track, background-queue drains on the dram track, coherence traffic
/// on its own track, and driver/runtime overheads (ownership, faults) on
/// the driver track.
///
/// Recording is cheap (no allocation past the reserved cap) and gated by
/// the `HETSIM_TRACE_EVENTS` environment variable, which names an output
/// *directory*: parallel sweep workers each write their own
/// `<dir>/<run>.trace.json` file, so no cross-thread file clobbering.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_OBS_TRACEEVENTS_H
#define HETSIM_OBS_TRACEEVENTS_H

#include <cstdint>
#include <string>
#include <vector>

namespace hetsim {

/// Which timeline row an event belongs to.
enum class TraceTrack : uint8_t { Cpu, Gpu, Fabric, Dram, Coherence, Driver };

constexpr unsigned NumTraceTracks = 6;

/// Stable lowercase track name ("cpu", "fabric", ...).
const char *traceTrackName(TraceTrack Track);

/// An append-only event log. All timestamps are microseconds of
/// simulated time (the trace-event format's native unit).
class TraceEventLog {
public:
  /// Hard cap on retained events; later events are counted as dropped
  /// rather than grown without bound (long sweeps, tight memory).
  static constexpr size_t MaxEvents = 1u << 16;

  /// Records one complete ("ph":"X") event.
  void complete(TraceTrack Track, std::string Name, double StartUs,
                double DurUs);

  /// Records one complete event carrying a single numeric argument
  /// (e.g. bytes moved, lines drained).
  void complete(TraceTrack Track, std::string Name, double StartUs,
                double DurUs, std::string ArgKey, uint64_t ArgValue);

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  uint64_t dropped() const { return Dropped; }
  void clear();

  /// Renders the full Chrome trace-event document. \p ProcessName labels
  /// the process row (typically "<system>/<kernel>").
  std::string renderChromeJson(const std::string &ProcessName) const;

  /// Renders and writes the document to \p Path. Returns false on I/O
  /// failure.
  bool writeFile(const std::string &Path,
                 const std::string &ProcessName) const;

private:
  struct Event {
    std::string Name;
    std::string ArgKey; ///< Empty when the event has no argument.
    double StartUs = 0;
    double DurUs = 0;
    uint64_t ArgValue = 0;
    TraceTrack Track = TraceTrack::Cpu;
  };

  std::vector<Event> Events;
  uint64_t Dropped = 0;
};

/// True when `HETSIM_TRACE_EVENTS` is set to a non-empty value.
bool traceEventsEnabled();

/// The directory named by `HETSIM_TRACE_EVENTS` ("" when disabled).
std::string traceEventsDir();

/// `<traceEventsDir()>/<RunName>.trace.json`, with characters outside
/// [A-Za-z0-9._-] in \p RunName replaced by '_'. Empty when disabled.
std::string traceEventPath(const std::string &RunName);

} // namespace hetsim

#endif // HETSIM_OBS_TRACEEVENTS_H
