//===- obs/Json.h - Minimal JSON writer and reader --------------*- C++ -*-===//
///
/// \file
/// The observability layer's JSON support: a streaming writer used by the
/// metrics and trace-event exporters, and a small recursive-descent
/// reader used by `hetsim_stats` and the schema-checking tests. Both are
/// dependency-free by design — the toolchain image carries no JSON
/// library, and the subset emitted here (objects, arrays, strings,
/// finite numbers, booleans, null) round-trips exactly.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_OBS_JSON_H
#define HETSIM_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hetsim {

/// Appends \p Text to \p Out with JSON string escaping (quotes included).
void jsonAppendEscaped(std::string &Out, const std::string &Text);

/// A streaming JSON writer: push objects/arrays, emit keyed or bare
/// values, pop. Comma placement is handled automatically; the result is
/// a compact single-line document retrieved with take().
class JsonWriter {
public:
  void beginObject();
  void beginObject(const std::string &Key);
  void endObject();
  void beginArray();
  void beginArray(const std::string &Key);
  void endArray();

  void value(const std::string &Key, const std::string &Text);
  void value(const std::string &Key, const char *Text);
  void value(const std::string &Key, double Number);
  void value(const std::string &Key, uint64_t Number);
  void value(const std::string &Key, int Number);
  void value(const std::string &Key, bool Flag);

  /// Bare values inside arrays.
  void value(const std::string &Text);
  void value(double Number);
  void value(uint64_t Number);

  /// Returns the finished document; the writer must be back at nesting
  /// depth zero.
  std::string take();

private:
  void separator();
  void key(const std::string &Name);
  void number(double Value);

  std::string Out;
  std::vector<bool> NeedComma; // One flag per open scope.
};

/// One parsed JSON value (a small DOM).
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind Type = Kind::Null;
  bool BoolValue = false;
  double NumberValue = 0;
  std::string StringValue;
  std::vector<JsonValue> Elements;                 // Array.
  std::vector<std::pair<std::string, JsonValue>> Members; // Object, ordered.

  bool isObject() const { return Type == Kind::Object; }
  bool isArray() const { return Type == Kind::Array; }
  bool isNumber() const { return Type == Kind::Number; }
  bool isString() const { return Type == Kind::String; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;
};

/// Parses \p Text into \p Out. Returns false (and sets \p Error to a
/// message with a byte offset) on malformed input or trailing garbage.
bool parseJson(const std::string &Text, JsonValue &Out, std::string &Error);

/// True if \p Text is a syntactically valid JSON document.
bool isValidJson(const std::string &Text);

/// Writes \p Contents to \p Path (truncating). Returns false on failure.
bool writeTextFile(const std::string &Path, const std::string &Contents);

/// Reads all of \p Path into \p Out. Returns false on failure.
bool readTextFile(const std::string &Path, std::string &Out);

} // namespace hetsim

#endif // HETSIM_OBS_JSON_H
