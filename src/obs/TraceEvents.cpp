//===- obs/TraceEvents.cpp ------------------------------------------------===//

#include "obs/TraceEvents.h"

#include "common/Error.h"
#include "obs/Json.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace hetsim;

const char *hetsim::traceTrackName(TraceTrack Track) {
  switch (Track) {
  case TraceTrack::Cpu:
    return "cpu";
  case TraceTrack::Gpu:
    return "gpu";
  case TraceTrack::Fabric:
    return "fabric";
  case TraceTrack::Dram:
    return "dram";
  case TraceTrack::Coherence:
    return "coherence";
  case TraceTrack::Driver:
    return "driver";
  }
  hetsim_unreachable("unknown TraceTrack");
}

void TraceEventLog::complete(TraceTrack Track, std::string Name,
                             double StartUs, double DurUs) {
  complete(Track, std::move(Name), StartUs, DurUs, std::string(), 0);
}

void TraceEventLog::complete(TraceTrack Track, std::string Name,
                             double StartUs, double DurUs, std::string ArgKey,
                             uint64_t ArgValue) {
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    return;
  }
  Event E;
  E.Name = std::move(Name);
  E.ArgKey = std::move(ArgKey);
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.ArgValue = ArgValue;
  E.Track = Track;
  Events.push_back(std::move(E));
}

void TraceEventLog::clear() {
  Events.clear();
  Dropped = 0;
}

std::string
TraceEventLog::renderChromeJson(const std::string &ProcessName) const {
  JsonWriter W;
  W.beginObject();
  W.beginArray("traceEvents");

  // Metadata events name the process and one thread per track so the
  // viewer shows readable rows instead of bare pid/tid integers.
  W.beginObject();
  W.value("ph", "M");
  W.value("pid", 1);
  W.value("tid", 0);
  W.value("name", "process_name");
  W.beginObject("args");
  W.value("name", ProcessName);
  W.endObject();
  W.endObject();
  for (unsigned T = 0; T != NumTraceTracks; ++T) {
    W.beginObject();
    W.value("ph", "M");
    W.value("pid", 1);
    W.value("tid", int(T));
    W.value("name", "thread_name");
    W.beginObject("args");
    W.value("name", traceTrackName(TraceTrack(T)));
    W.endObject();
    W.endObject();
  }

  for (const Event &E : Events) {
    W.beginObject();
    W.value("ph", "X");
    W.value("pid", 1);
    W.value("tid", int(E.Track));
    W.value("name", E.Name);
    W.value("cat", traceTrackName(E.Track));
    W.value("ts", E.StartUs);
    W.value("dur", E.DurUs);
    if (!E.ArgKey.empty()) {
      W.beginObject("args");
      W.value(E.ArgKey, E.ArgValue);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.value("displayTimeUnit", "ns");
  W.beginObject("otherData");
  W.value("events", uint64_t(Events.size()));
  W.value("dropped", Dropped);
  W.endObject();
  W.endObject();
  return W.take();
}

bool TraceEventLog::writeFile(const std::string &Path,
                              const std::string &ProcessName) const {
  std::error_code Ec;
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty())
    std::filesystem::create_directories(Parent, Ec);
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << renderChromeJson(ProcessName) << '\n';
  return bool(Out);
}

bool hetsim::traceEventsEnabled() { return !traceEventsDir().empty(); }

std::string hetsim::traceEventsDir() {
  const char *Dir = std::getenv("HETSIM_TRACE_EVENTS");
  return Dir ? std::string(Dir) : std::string();
}

std::string hetsim::traceEventPath(const std::string &RunName) {
  std::string Dir = traceEventsDir();
  if (Dir.empty())
    return std::string();
  std::string Safe;
  Safe.reserve(RunName.size());
  for (char C : RunName) {
    bool Keep = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    Safe += Keep ? C : '_';
  }
  return Dir + "/" + Safe + ".trace.json";
}
