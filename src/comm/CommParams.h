//===- comm/CommParams.h - Table IV communication parameters ----*- C++ -*-===//
///
/// \file
/// The communication-overhead parameters of Table IV. All latencies are in
/// CPU (3.5GHz) cycles; api-pci additionally charges bytes at the PCI-E 2.0
/// rate (16GB/s). Experiments sweep these through ConfigStore keys
/// ("comm.api_pci_base", "comm.api_acq", "comm.api_tr", "comm.lib_pf",
/// "comm.pci_bytes_per_sec").
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_COMMPARAMS_H
#define HETSIM_COMM_COMMPARAMS_H

#include "common/Config.h"
#include "common/Types.h"

namespace hetsim {

/// Table IV defaults.
struct CommParams {
  /// api-pci: fixed cost of a PCI-E memcpy API call.
  Cycle ApiPciBase = 33250;
  /// trans_rate: PCI-E 2.0 payload bandwidth.
  double PciBytesPerSec = 16.0e9;
  /// api-acq: ownership acquire action (LRB).
  Cycle ApiAcquire = 1000;
  /// api-tr: data transfer through the PCI aperture (LRB).
  Cycle ApiTransfer = 7000;
  /// lib-pf: page-fault handling in the shared space (LRB).
  Cycle LibPageFault = 42000;
  /// Issue overhead of starting an asynchronous copy (GMAC).
  Cycle AsyncIssueOverhead = 500;

  /// Host buffers are pinned (page-locked). Pageable buffers force the
  /// driver to stage through an internal pinned buffer: lower effective
  /// bandwidth plus a fixed staging cost per copy. CUDA's classic
  /// pinned-vs-pageable distinction; Table IV's numbers assume pinned.
  bool PinnedHostMemory = true;
  double PageableRateFactor = 0.55;
  Cycle PageableStagingOverhead = 5000;

  /// Cycles a synchronous PCI-E copy of \p Bytes takes (honours the
  /// pinned/pageable setting).
  Cycle pciCopyCycles(uint64_t Bytes) const;

  /// Reads overrides from \p Config (missing keys keep defaults).
  static CommParams fromConfig(const ConfigStore &Config);

  /// Writes all parameters into \p Config.
  void toConfig(ConfigStore &Config) const;
};

} // namespace hetsim

#endif // HETSIM_COMM_COMMPARAMS_H
