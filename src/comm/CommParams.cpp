//===- comm/CommParams.cpp ------------------------------------------------===//

#include "comm/CommParams.h"

#include "common/Units.h"

using namespace hetsim;

Cycle CommParams::pciCopyCycles(uint64_t Bytes) const {
  if (PinnedHostMemory)
    return ApiPciBase + transferCycles(PuKind::Cpu, Bytes, PciBytesPerSec);
  return ApiPciBase + PageableStagingOverhead +
         transferCycles(PuKind::Cpu, Bytes,
                        PciBytesPerSec * PageableRateFactor);
}

CommParams CommParams::fromConfig(const ConfigStore &Config) {
  CommParams P;
  P.ApiPciBase = Config.getUInt("comm.api_pci_base", P.ApiPciBase);
  P.PciBytesPerSec =
      Config.getDouble("comm.pci_bytes_per_sec", P.PciBytesPerSec);
  P.ApiAcquire = Config.getUInt("comm.api_acq", P.ApiAcquire);
  P.ApiTransfer = Config.getUInt("comm.api_tr", P.ApiTransfer);
  P.LibPageFault = Config.getUInt("comm.lib_pf", P.LibPageFault);
  P.AsyncIssueOverhead =
      Config.getUInt("comm.async_issue", P.AsyncIssueOverhead);
  P.PinnedHostMemory =
      Config.getBool("comm.pinned_host", P.PinnedHostMemory);
  P.PageableRateFactor =
      Config.getDouble("comm.pageable_rate_factor", P.PageableRateFactor);
  P.PageableStagingOverhead = Config.getUInt("comm.pageable_staging",
                                             P.PageableStagingOverhead);
  return P;
}

void CommParams::toConfig(ConfigStore &Config) const {
  Config.setInt("comm.api_pci_base", int64_t(ApiPciBase));
  Config.setDouble("comm.pci_bytes_per_sec", PciBytesPerSec);
  Config.setInt("comm.api_acq", int64_t(ApiAcquire));
  Config.setInt("comm.api_tr", int64_t(ApiTransfer));
  Config.setInt("comm.lib_pf", int64_t(LibPageFault));
  Config.setInt("comm.async_issue", int64_t(AsyncIssueOverhead));
  Config.setBool("comm.pinned_host", PinnedHostMemory);
  Config.setDouble("comm.pageable_rate_factor", PageableRateFactor);
  Config.setInt("comm.pageable_staging", int64_t(PageableStagingOverhead));
}
