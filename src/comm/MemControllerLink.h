//===- comm/MemControllerLink.h - Fusion-style transfers --------*- C++ -*-===//
///
/// \file
/// Fusion's communication path (Section V-A): CPU<->GPU transfers go
/// through the memory controllers, "generating memory accesses for all
/// data transfer" — a read and a write per cache line, scheduled FR-FCFS
/// on the shared DRAM. Much cheaper than PCI-E.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_MEMCONTROLLERLINK_H
#define HETSIM_COMM_MEMCONTROLLERLINK_H

#include "comm/CommFabric.h"

namespace hetsim {

class DramSystem;

/// Memory-controller transfer fabric backed by the DRAM model.
class MemControllerLink final : public CommFabric {
public:
  /// \p Dram is the shared memory device (non-owning). \p ApiOverhead is
  /// the fixed software cost of initiating the copy.
  MemControllerLink(DramSystem &Device, Cycle Overhead = 1000)
      : Dram(Device), ApiOverhead(Overhead) {}

  const char *name() const override { return "mem-controller"; }

  TransferTiming transfer(uint64_t Bytes, TransferDir Dir,
                          Cycle NowCpu) override;

private:
  DramSystem &Dram;
  Cycle ApiOverhead;
  Addr NextSrc = 0x200000000ull; // Staging addresses for the line stream.
};

} // namespace hetsim

#endif // HETSIM_COMM_MEMCONTROLLERLINK_H
