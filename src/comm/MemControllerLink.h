//===- comm/MemControllerLink.h - Fusion-style transfers --------*- C++ -*-===//
///
/// \file
/// Fusion's communication path (Section V-A): CPU<->GPU transfers go
/// through the memory controllers, "generating memory accesses for all
/// data transfer" — a read and a write per cache line, scheduled FR-FCFS
/// on the shared DRAM. Much cheaper than PCI-E.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_MEMCONTROLLERLINK_H
#define HETSIM_COMM_MEMCONTROLLERLINK_H

#include "comm/CommFabric.h"

namespace hetsim {

class DramSystem;
class StatRegistry;

/// Memory-controller transfer fabric backed by the DRAM model.
class MemControllerLink final : public CommFabric {
public:
  /// \p Dram is the shared memory device (non-owning). \p ApiOverhead is
  /// the fixed software cost of initiating the copy. \p Registry, when
  /// given, receives the conservation counters ("dram.cpu.transfer_reqs",
  /// "dram.cpu.stale_drained") for the device's traffic audit.
  MemControllerLink(DramSystem &Device, Cycle Overhead = 1000,
                    StatRegistry *Registry = nullptr)
      : Dram(Device), Stats(Registry), ApiOverhead(Overhead) {}

  const char *name() const override { return "mem-controller"; }

  TransferTiming transfer(uint64_t Bytes, TransferDir Dir,
                          Cycle NowCpu) override;

private:
  DramSystem &Dram;
  StatRegistry *Stats;
  Cycle ApiOverhead;
  Addr NextSrc = 0x200000000ull; // Staging addresses for the line stream.
};

} // namespace hetsim

#endif // HETSIM_COMM_MEMCONTROLLERLINK_H
