//===- comm/PciAperture.cpp -----------------------------------------------===//

#include "comm/PciAperture.h"

using namespace hetsim;

TransferTiming PciAperture::transfer(uint64_t Bytes, TransferDir,
                                     Cycle NowCpu) {
  note(Bytes);
  TransferTiming T;
  uint64_t Windows = Bytes == 0 ? 1 : ceilDiv(Bytes, WindowBytes);
  T.CpuBusyCycles = Windows * Params.ApiTransfer;
  T.CompleteCycle = NowCpu + T.CpuBusyCycles;
  return T;
}
