//===- comm/DmaEngine.cpp -------------------------------------------------===//

#include "comm/DmaEngine.h"

#include <algorithm>

using namespace hetsim;

TransferTiming DmaEngine::transfer(uint64_t Bytes, TransferDir Dir,
                                   Cycle NowCpu) {
  note(Bytes);
  // The engine performs the copy on the wrapped link, starting when both
  // the request is issued and the engine is free.
  Cycle Start = std::max(NowCpu + Params.AsyncIssueOverhead, EngineFree);
  TransferTiming LinkTiming = Link->transfer(Bytes, Dir, Start);
  EngineFree = Start + LinkTiming.CpuBusyCycles;
  TotalBusy += LinkTiming.CpuBusyCycles;

  TransferTiming T;
  T.Asynchronous = true;
  T.CpuBusyCycles = Params.AsyncIssueOverhead;
  T.CompleteCycle = EngineFree;
  return T;
}

Cycle DmaEngine::waitAll(Cycle NowCpu) {
  if (EngineFree <= NowCpu)
    return 0; // Fully hidden under computation.
  Cycle Stall = EngineFree - NowCpu;
  TotalStall += Stall;
  return Stall;
}
