//===- comm/MemControllerLink.cpp -----------------------------------------===//

#include "comm/MemControllerLink.h"

#include "dram/Dram.h"

using namespace hetsim;

TransferTiming MemControllerLink::transfer(uint64_t Bytes, TransferDir,
                                           Cycle NowCpu) {
  note(Bytes);
  TransferTiming T;
  uint64_t Lines = Bytes == 0 ? 0 : ceilDiv(Bytes, CacheLineBytes);

  // A read of the source line and a write of the destination line per
  // 64B, streamed through the controllers under FR-FCFS. Source and
  // destination streams are sequential, so row hits dominate — exactly why
  // Fusion's communication is cheap.
  for (uint64_t I = 0; I != Lines; ++I) {
    Addr Line = NextSrc + I * CacheLineBytes;
    Dram.enqueue(Line, /*IsWrite=*/false);
    Dram.enqueue(Line + (1ull << 33), /*IsWrite=*/true);
  }
  NextSrc += Lines * CacheLineBytes;

  Cycle Start = NowCpu + ApiOverhead;
  Cycle Done = Lines == 0 ? Start : Dram.drainFrFcfs(Start);
  T.CpuBusyCycles = Done - NowCpu;
  T.CompleteCycle = Done;
  return T;
}
