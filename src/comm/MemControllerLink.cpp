//===- comm/MemControllerLink.cpp -----------------------------------------===//

#include "comm/MemControllerLink.h"

#include "common/Stats.h"
#include "dram/Dram.h"

using namespace hetsim;

TransferTiming MemControllerLink::transfer(uint64_t Bytes, TransferDir,
                                           Cycle NowCpu) {
  note(Bytes);
  TransferTiming T;
  uint64_t Lines = Bytes == 0 ? 0 : ceilDiv(Bytes, CacheLineBytes);

  // The memory system drains its own background (writeback/prefetch)
  // traffic at its boundaries, so the queue is normally empty here. If an
  // external producer still left requests behind, drain them now on their
  // own time: stale backlog must never be billed to this transfer's
  // CpuBusyCycles.
  if (size_t Stale = Dram.queuedRequests()) {
    Dram.drainFrFcfs(NowCpu);
    if (Stats)
      Stats->counterRef("dram.cpu.stale_drained") += Stale;
  }

  // A read of the source line and a write of the destination line per
  // 64B, streamed through the controllers under FR-FCFS. Source and
  // destination streams are sequential, so row hits dominate — exactly why
  // Fusion's communication is cheap.
  for (uint64_t I = 0; I != Lines; ++I) {
    Addr Line = NextSrc + I * CacheLineBytes;
    Dram.enqueue(Line, /*IsWrite=*/false);
    Dram.enqueue(Line + (1ull << 33), /*IsWrite=*/true);
  }
  NextSrc += Lines * CacheLineBytes;
  if (Stats && Lines != 0)
    Stats->counterRef("dram.cpu.transfer_reqs") += 2 * Lines;

  Cycle Start = NowCpu + ApiOverhead;
  Cycle Done = Lines == 0 ? Start : Dram.drainFrFcfs(Start);
  T.CpuBusyCycles = Done - NowCpu;
  T.CompleteCycle = Done;
  return T;
}
