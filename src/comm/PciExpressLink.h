//===- comm/PciExpressLink.h - Synchronous PCI-E copies ---------*- C++ -*-===//
///
/// \file
/// The api-pci mechanism of Table IV: a synchronous memcpy over PCI-E 2.0
/// (fixed API cost + bytes at 16GB/s). Used by the CPU+GPU(CUDA) case
/// study, and as the raw link underneath GMAC's DMA engine.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_PCIEXPRESSLINK_H
#define HETSIM_COMM_PCIEXPRESSLINK_H

#include "comm/CommFabric.h"

namespace hetsim {

/// Synchronous PCI-E transfer fabric.
class PciExpressLink final : public CommFabric {
public:
  explicit PciExpressLink(const CommParams &P) : Params(P) {}

  const char *name() const override { return "pci-e"; }

  TransferTiming transfer(uint64_t Bytes, TransferDir Dir,
                          Cycle NowCpu) override;

  const CommParams &params() const { return Params; }

private:
  CommParams Params;
};

} // namespace hetsim

#endif // HETSIM_COMM_PCIEXPRESSLINK_H
