//===- comm/CommFabric.h - CPU<->GPU data-transfer fabrics ------*- C++ -*-===//
///
/// \file
/// Hardware communication mechanisms between the PUs. The paper's case
/// studies differ mainly here (Section V-A): PCI-E links (CPU+GPU, GMAC),
/// the PCI aperture (LRB), and memory-controller transfers (Fusion).
/// GMAC additionally overlaps copies with compute via a DMA engine.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_COMMFABRIC_H
#define HETSIM_COMM_COMMFABRIC_H

#include "comm/CommParams.h"
#include "trace/Kernel.h"

namespace hetsim {

/// Timing of one bulk transfer.
struct TransferTiming {
  /// Cycles the CPU is blocked issuing/performing the transfer.
  Cycle CpuBusyCycles = 0;
  /// Absolute CPU cycle at which the data is fully moved. For synchronous
  /// fabrics this equals start + CpuBusyCycles; asynchronous fabrics
  /// complete later while the CPU continues.
  Cycle CompleteCycle = 0;
  /// True if the transfer proceeds in the background.
  bool Asynchronous = false;
};

/// Abstract transfer fabric.
class CommFabric {
public:
  virtual ~CommFabric();

  virtual const char *name() const = 0;

  /// Transfers \p Bytes starting at CPU cycle \p NowCpu.
  virtual TransferTiming transfer(uint64_t Bytes, TransferDir Dir,
                                  Cycle NowCpu) = 0;

  /// Blocks until every transfer issued so far has completed; returns the
  /// stall in CPU cycles when waiting at \p NowCpu. Synchronous fabrics
  /// never stall here.
  virtual Cycle waitAll(Cycle NowCpu);

  /// Absolute CPU cycle at which all issued transfers are done (0 when
  /// idle). Non-blocking query used for overlap accounting.
  virtual Cycle busyUntil() const;

  /// Total bytes moved.
  uint64_t bytesMoved() const { return BytesMoved; }
  /// Number of transfers issued.
  uint64_t transferCount() const { return Transfers; }

protected:
  void note(uint64_t Bytes) {
    BytesMoved += Bytes;
    ++Transfers;
  }

private:
  uint64_t BytesMoved = 0;
  uint64_t Transfers = 0;
};

} // namespace hetsim

#endif // HETSIM_COMM_COMMFABRIC_H
