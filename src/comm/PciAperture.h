//===- comm/PciAperture.h - LRB PCI-aperture transfers ----------*- C++ -*-===//
///
/// \file
/// The PCI-aperture mechanism used by the LRB partially shared space
/// (Section II-A3): a portion of the aperture is mapped into user space as
/// a common buffer between the PUs, enabling very low-cost communication
/// (api-tr in Table IV: 7000 cycles per transfer) — but it is intended for
/// small portions of memory, so transfers larger than the mapped window
/// pay one api-tr per window.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_PCIAPERTURE_H
#define HETSIM_COMM_PCIAPERTURE_H

#include "comm/CommFabric.h"

namespace hetsim {

/// PCI-aperture fabric.
class PciAperture final : public CommFabric {
public:
  /// \p WindowBytes is the user-space aperture window; Table III's largest
  /// initial transfer (512KB) fits the default, so LRB pays one api-tr per
  /// communication in the paper's runs.
  PciAperture(const CommParams &P, uint64_t Window = 1ull << 20)
      : Params(P), WindowBytes(Window) {}

  const char *name() const override { return "pci-aperture"; }

  TransferTiming transfer(uint64_t Bytes, TransferDir Dir,
                          Cycle NowCpu) override;

  uint64_t windowBytes() const { return WindowBytes; }

private:
  CommParams Params;
  uint64_t WindowBytes;
};

} // namespace hetsim

#endif // HETSIM_COMM_PCIAPERTURE_H
