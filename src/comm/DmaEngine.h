//===- comm/DmaEngine.h - Asynchronous copy engine (GMAC) -------*- C++ -*-===//
///
/// \file
/// GMAC's asynchronous copies (Section V-A): "asynchronous copies are
/// performed during computation, so the communication cost can be easily
/// hidden". The DMA engine wraps an underlying synchronous fabric: issuing
/// a copy costs only the API overhead; the copy itself proceeds in the
/// background on the wrapped link, serialized with other outstanding
/// copies. waitAll() charges whatever has not been hidden.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMM_DMAENGINE_H
#define HETSIM_COMM_DMAENGINE_H

#include "comm/CommFabric.h"

#include <memory>

namespace hetsim {

/// Asynchronous wrapper over a synchronous link.
class DmaEngine final : public CommFabric {
public:
  DmaEngine(const CommParams &P, std::unique_ptr<CommFabric> Backend)
      : Params(P), Link(std::move(Backend)) {}

  const char *name() const override { return "dma-async"; }

  TransferTiming transfer(uint64_t Bytes, TransferDir Dir,
                          Cycle NowCpu) override;

  Cycle waitAll(Cycle NowCpu) override;

  Cycle busyUntil() const override { return EngineFree; }

  /// Cycle at which the engine becomes idle (all issued copies done).
  Cycle idleAt() const { return EngineFree; }

  /// Cycles of copy time hidden under computation: total link-busy time
  /// minus the stalls the CPU actually paid in waitAll().
  uint64_t hiddenCycles() const {
    return TotalBusy > TotalStall ? TotalBusy - TotalStall : 0;
  }

private:
  CommParams Params;
  std::unique_ptr<CommFabric> Link;
  Cycle EngineFree = 0;
  uint64_t TotalBusy = 0;
  uint64_t TotalStall = 0;
};

} // namespace hetsim

#endif // HETSIM_COMM_DMAENGINE_H
