//===- comm/PciExpressLink.cpp --------------------------------------------===//

#include "comm/PciExpressLink.h"

using namespace hetsim;

CommFabric::~CommFabric() = default;

Cycle CommFabric::waitAll(Cycle) { return 0; }

Cycle CommFabric::busyUntil() const { return 0; }

TransferTiming PciExpressLink::transfer(uint64_t Bytes, TransferDir,
                                        Cycle NowCpu) {
  note(Bytes);
  TransferTiming T;
  T.CpuBusyCycles = Params.pciCopyCycles(Bytes);
  T.CompleteCycle = NowCpu + T.CpuBusyCycles;
  return T;
}
