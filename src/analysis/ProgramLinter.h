//===- analysis/ProgramLinter.h - Kernel-IR memory-model linter -*- C++ -*-===//
///
/// \file
/// The static linter over lowered programs. Where the dynamic
/// ConsistencyChecker validates one executed event history, the linter
/// proves the *lowering* legal for a design point before any cycle
/// simulation runs: it rebuilds the kernel's abstract phase structure
/// (the ground truth of what each round consumes and produces), walks
/// the ExecSteps with a per-address-space object state machine derived
/// from Table I's legality rules, and consults the static happens-before
/// graph (HbGraph) for the asynchronous-copy hazards. Every rule fires
/// with a precise step index and a fix-it hint phrased as the step the
/// lowering should have emitted.
///
/// The three front ends share this one entry point: the hetsim_lint CLI,
/// the HeteroSimulator pre-run hook (HETSIM_LINT=0 bypasses), and the
/// sweep-wide differential mode (analysis/SweepLinter.h).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_PROGRAMLINTER_H
#define HETSIM_ANALYSIS_PROGRAMLINTER_H

#include "analysis/HbGraph.h"
#include "analysis/LintDiagnostic.h"
#include "core/Lowering.h"
#include "core/SystemConfig.h"

namespace hetsim {

/// Lints \p Program as lowered for \p Config. The program's Kernel field
/// selects the abstract phase structure the data-flow rules replay; a
/// program whose compute steps do not match that structure gets one
/// StructureMismatch diagnostic and only the structure-free rules.
LintReport lintProgram(const LoweredProgram &Program,
                       const SystemConfig &Config);

/// Convenience: lowers \p Kernel for \p Config and lints the result.
LintReport lintDesignPoint(KernelId Kernel, const SystemConfig &Config);

/// Renders every diagnostic of \p Report (one per line, with the step
/// kind names resolved against \p Program).
std::string renderReport(const LintReport &Report,
                         const LoweredProgram &Program);

} // namespace hetsim

#endif // HETSIM_ANALYSIS_PROGRAMLINTER_H
