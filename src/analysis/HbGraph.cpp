//===- analysis/HbGraph.cpp -----------------------------------------------===//

#include "analysis/HbGraph.h"

#include <sstream>

using namespace hetsim;

const char *hetsim::hbLaneName(HbLane Lane) {
  switch (Lane) {
  case HbLane::Cpu:
    return "cpu";
  case HbLane::Gpu:
    return "gpu";
  case HbLane::Dma:
    return "dma";
  }
  return "unknown";
}

const char *hetsim::hbEdgeKindName(HbEdgeKind Kind) {
  switch (Kind) {
  case HbEdgeKind::DriverOrder:
    return "driver-order";
  case HbEdgeKind::DmaIssue:
    return "dma-issue";
  case HbEdgeKind::DmaDrain:
    return "dma-drain";
  case HbEdgeKind::LazyPull:
    return "lazy-pull";
  case HbEdgeKind::ReleaseAcquire:
    return "release-acquire";
  case HbEdgeKind::KernelLaunch:
    return "kernel-launch";
  case HbEdgeKind::KernelJoin:
    return "kernel-join";
  case HbEdgeKind::AgentFork:
    return "agent-fork";
  case HbEdgeKind::AgentJoin:
    return "agent-join";
  }
  return "unknown";
}

size_t HbGraph::addNode(const HbNode &Node) {
  Nodes.push_back(Node);
  return Nodes.size() - 1;
}

void HbGraph::addEdge(size_t From, size_t To, HbEdgeKind Kind) {
  Edges.push_back({From, To, Kind});
}

HbGraph HbGraph::build(const LoweredProgram &Program,
                       const SystemConfig &Config) {
  HbGraph G;
  const std::vector<ExecStep> &Steps = Program.Steps;
  G.StepToNode.assign(Steps.size(), npos);
  G.StepToDma.assign(Steps.size(), npos);

  G.Nodes.push_back({HbNodeKind::Start, 0});
  for (size_t I = 0; I != Steps.size(); ++I) {
    G.StepToNode[I] = G.Nodes.size();
    G.Nodes.push_back({HbNodeKind::Step, I});
  }
  // Completion nodes for asynchronous transfers live on the DMA timeline.
  for (size_t I = 0; I != Steps.size(); ++I) {
    if (Steps[I].Kind == ExecKind::Transfer && Steps[I].Async) {
      G.StepToDma[I] = G.Nodes.size();
      G.Nodes.push_back({HbNodeKind::DmaCompletion, I, 0, HbLane::Dma});
    }
  }
  size_t End = G.Nodes.size();
  G.Nodes.push_back({HbNodeKind::End, Steps.size()});

  // Driver timeline: Start -> step 0 -> ... -> End.
  size_t Prev = G.startNode();
  for (size_t I = 0; I != Steps.size(); ++I) {
    G.addEdge(Prev, G.StepToNode[I], HbEdgeKind::DriverOrder);
    Prev = G.StepToNode[I];
  }
  G.addEdge(Prev, End, HbEdgeKind::DriverOrder);

  for (size_t I = 0; I != Steps.size(); ++I) {
    const ExecStep &Step = Steps[I];

    // DMA timeline: issue, then completion ordered before the next drain
    // point. DmaWait blocks the driver on the engine; a kernel launch
    // does the same for the GPU side (the driver delays the round start
    // until in-flight copies of its inputs land). Under ADSM the runtime
    // additionally serves serial consumers by paging results on demand,
    // so the copy is correctness-ordered (but not time-ordered) before
    // the serial pass.
    if (Step.Kind == ExecKind::Transfer && Step.Async) {
      size_t Dma = G.StepToDma[I];
      G.addEdge(G.StepToNode[I], Dma, HbEdgeKind::DmaIssue);
      bool LazyConsumerSeen = false;
      for (size_t J = I + 1; J != Steps.size(); ++J) {
        if (Steps[J].Kind == ExecKind::DmaWait ||
            Steps[J].Kind == ExecKind::ParallelCompute) {
          G.addEdge(Dma, G.StepToNode[J], HbEdgeKind::DmaDrain);
          break;
        }
        if (Steps[J].Kind == ExecKind::SerialCompute &&
            Config.AddrSpace == AddressSpaceKind::Adsm &&
            !LazyConsumerSeen) {
          G.addEdge(Dma, G.StepToNode[J], HbEdgeKind::LazyPull);
          LazyConsumerSeen = true;
        }
      }
    }

    // Ownership: the host's release is acquired at the next round's
    // launch; the round's results are released to the next host acquire.
    if (Step.Kind == ExecKind::OwnershipToGpu) {
      for (size_t J = I + 1; J != Steps.size(); ++J) {
        if (Steps[J].Kind == ExecKind::ParallelCompute) {
          G.addEdge(G.StepToNode[I], G.StepToNode[J],
                    HbEdgeKind::ReleaseAcquire);
          break;
        }
      }
    }
    if (Step.Kind == ExecKind::OwnershipToCpu) {
      for (size_t J = I; J-- != 0;) {
        if (Steps[J].Kind == ExecKind::ParallelCompute) {
          G.addEdge(G.StepToNode[J], G.StepToNode[I],
                    HbEdgeKind::ReleaseAcquire);
          break;
        }
      }
    }
  }

  G.finalize();
  return G;
}

void HbGraph::computeRelation(std::vector<std::vector<uint64_t>> &Rel,
                              bool IncludeLaunchJoin) const {
  size_t N = Nodes.size();
  size_t Words = (N + 63) / 64;
  Rel.assign(N, std::vector<uint64_t>(Words, 0));
  std::vector<std::vector<size_t>> Succ(N);
  for (const HbEdge &E : Edges) {
    if (!IncludeLaunchJoin && (E.Kind == HbEdgeKind::KernelLaunch ||
                               E.Kind == HbEdgeKind::KernelJoin))
      continue;
    Succ[E.From].push_back(E.To);
  }
  // Nodes are appended in a near-topological order, but cross-lane edges
  // can point both ways across the numbering, so iterate to a fixed
  // point (graphs are tiny).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t F = N; F-- != 0;) {
      std::vector<uint64_t> &Row = Rel[F];
      for (size_t T : Succ[F]) {
        uint64_t &Word = Row[T / 64];
        uint64_t Bit = uint64_t(1) << (T % 64);
        if ((Word & Bit) == 0) {
          Word |= Bit;
          Changed = true;
        }
        const std::vector<uint64_t> &Sub = Rel[T];
        for (size_t W = 0; W != Sub.size(); ++W) {
          uint64_t Merged = Row[W] | Sub[W];
          if (Merged != Row[W]) {
            Row[W] = Merged;
            Changed = true;
          }
        }
      }
    }
  }
}

void HbGraph::finalize() {
  computeRelation(Reach, /*IncludeLaunchJoin=*/true);
  computeRelation(ScopedReach, /*IncludeLaunchJoin=*/false);
}

size_t HbGraph::stepNode(size_t StepIndex) const {
  return StepIndex < StepToNode.size() ? StepToNode[StepIndex] : npos;
}

size_t HbGraph::dmaNode(size_t StepIndex) const {
  return StepIndex < StepToDma.size() ? StepToDma[StepIndex] : npos;
}

bool HbGraph::reaches(size_t From, size_t To) const {
  if (From >= Nodes.size() || To >= Nodes.size())
    return false;
  return (Reach[From][To / 64] >> (To % 64)) & 1;
}

bool HbGraph::reachesScoped(size_t From, size_t To) const {
  if (From >= Nodes.size() || To >= Nodes.size())
    return false;
  return (ScopedReach[From][To / 64] >> (To % 64)) & 1;
}

bool HbGraph::hasCycle() const {
  // Kahn's algorithm: a cycle leaves nodes with nonzero in-degree.
  size_t N = Nodes.size();
  std::vector<size_t> InDegree(N, 0);
  std::vector<std::vector<size_t>> Succ(N);
  for (const HbEdge &E : Edges) {
    if (E.From >= N || E.To >= N)
      continue;
    Succ[E.From].push_back(E.To);
    ++InDegree[E.To];
  }
  std::vector<size_t> Queue;
  for (size_t I = 0; I != N; ++I)
    if (InDegree[I] == 0)
      Queue.push_back(I);
  size_t Popped = 0;
  while (!Queue.empty()) {
    size_t Node = Queue.back();
    Queue.pop_back();
    ++Popped;
    for (size_t T : Succ[Node])
      if (--InDegree[T] == 0)
        Queue.push_back(T);
  }
  return Popped != N;
}

std::vector<HbEdge> HbGraph::transitiveReduction() const {
  // An edge u->v is redundant when some other successor w of u already
  // reaches v (including via a parallel duplicate): removing it keeps
  // reachability intact. On a DAG this yields the unique minimal graph.
  std::vector<HbEdge> Kept;
  for (size_t I = 0; I != Edges.size(); ++I) {
    const HbEdge &E = Edges[I];
    if (E.From == E.To)
      continue;
    bool Redundant = false;
    for (size_t J = 0; J != Edges.size() && !Redundant; ++J) {
      if (J == I || Edges[J].From != E.From)
        continue;
      size_t W = Edges[J].To;
      if (W == E.To) {
        // Parallel duplicate: keep only the first occurrence.
        Redundant = J < I;
        continue;
      }
      Redundant = W != E.From && reaches(W, E.To);
    }
    if (!Redundant)
      Kept.push_back(E);
  }
  return Kept;
}

std::vector<size_t> HbGraph::undrainedTransfers() const {
  std::vector<bool> Drained(Nodes.size(), false);
  for (const HbEdge &E : Edges)
    if (E.Kind == HbEdgeKind::DmaDrain)
      Drained[E.From] = true;
  std::vector<size_t> Result;
  for (size_t I = 0; I != StepToDma.size(); ++I)
    if (StepToDma[I] != npos && !Drained[StepToDma[I]])
      Result.push_back(I);
  return Result;
}

std::string HbGraph::renderDot(const LoweredProgram &Program) const {
  std::ostringstream Os;
  Os << "digraph hb {\n  rankdir=LR;\n  node [shape=box,fontsize=10];\n";
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const HbNode &Node = Nodes[I];
    Os << "  n" << I << " [label=\"";
    if (Node.Agent != 0)
      Os << "a" << Node.Agent << " ";
    switch (Node.Kind) {
    case HbNodeKind::Start:
      Os << "start";
      break;
    case HbNodeKind::End:
      Os << "end";
      break;
    case HbNodeKind::Step:
      Os << "s" << Node.StepIndex;
      if (Node.StepIndex < Program.Steps.size())
        Os << ": " << execKindName(Program.Steps[Node.StepIndex].Kind);
      break;
    case HbNodeKind::GpuRound:
      Os << "s" << Node.StepIndex << " gpu round";
      break;
    case HbNodeKind::Join:
      Os << "s" << Node.StepIndex << " join";
      break;
    case HbNodeKind::DmaCompletion:
      Os << "dma s" << Node.StepIndex << " done";
      break;
    }
    Os << "\"];\n";
  }
  for (const HbEdge &E : Edges) {
    Os << "  n" << E.From << " -> n" << E.To;
    if (E.Kind != HbEdgeKind::DriverOrder)
      Os << " [label=\"" << hbEdgeKindName(E.Kind) << "\",style=dashed]";
    Os << ";\n";
  }
  Os << "}\n";
  return Os.str();
}
