//===- analysis/LintJson.h - Machine-readable lint output -------*- C++ -*-===//
///
/// \file
/// The "hetsim-lint-v1" diagnostics schema, registered alongside the
/// metrics schemas ("hetsim-metrics-v1"/"hetsim-sweep-metrics-v1") and
/// accepted by `hetsim_stats validate|show|audit`. One document carries
/// the verdicts of one hetsim_lint invocation — any number of points,
/// each with its linter diagnostics, race witnesses, and dynamic-oracle
/// verdict:
///
///   { "schema": "hetsim-lint-v1", "model": "weak consistency",
///     "points": [ { "system": "LRB", "kernels": ["reduction"],
///                   "shared": [], "errors": 0, "warnings": 0,
///                   "race_count": 0, "races_truncated": false,
///                   "dynamically_race_free": true,
///                   "disagreement": false,
///                   "diagnostics": [ { "kind": "...", "severity": "...",
///                       "step": 3, "object": "a", "message": "...",
///                       "fix": "..." } ],
///                   "races": [ { "location": "...", "missing_edge": "...",
///                       "first": { "agent": 0, "step": 3, "lane": "cpu",
///                           "write": true, "description": "..." },
///                       "second": { ... },
///                       "interleaving": ["...", "..."] } ] } ],
///     "summary": { "points": 1, "errors": 0, "warnings": 0,
///                  "races": 0, "disagreements": 0 } }
///
/// Start/end-anchored race accesses carry "step": -1.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_LINTJSON_H
#define HETSIM_ANALYSIS_LINTJSON_H

#include "analysis/LintDiagnostic.h"
#include "analysis/RaceDetector.h"

#include <string>
#include <vector>

namespace hetsim {

/// The verdicts of one linted point, ready for serialization.
struct LintJsonPoint {
  std::string System;
  std::vector<std::string> Kernels;
  /// Co-run allocations shared across agents (empty for single points).
  std::vector<std::string> SharedBases;
  LintReport Report;
  RaceReport Races;
  bool DynamicallyRaceFree = true;
  /// Static-clean but dynamically racy: a soundness bug in one analysis.
  bool Disagreement = false;
};

/// Serializes \p Points as one "hetsim-lint-v1" document.
std::string writeLintJson(const std::vector<LintJsonPoint> &Points,
                          ConsistencyModel Model);

/// Validates \p Text against the "hetsim-lint-v1" schema (shape and
/// summary-count consistency). Returns false and fills \p Error on the
/// first violation.
bool validateLintJson(const std::string &Text, std::string &Error);

} // namespace hetsim

#endif // HETSIM_ANALYSIS_LINTJSON_H
