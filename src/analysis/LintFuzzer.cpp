//===- analysis/LintFuzzer.cpp --------------------------------------------===//

#include "analysis/LintFuzzer.h"

#include "analysis/ProgramLinter.h"
#include "common/Error.h"
#include "common/Random.h"
#include "core/ConsistencyValidation.h"

#include <algorithm>
#include <sstream>

using namespace hetsim;

const char *hetsim::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::None:
    return "none";
  case MutationKind::DropDmaWait:
    return "drop-dma-wait";
  case MutationKind::DropOwnershipToGpu:
    return "drop-ownership-to-gpu";
  case MutationKind::DropOwnershipToCpu:
    return "drop-ownership-to-cpu";
  case MutationKind::MakeTransferAsync:
    return "make-transfer-async";
  case MutationKind::DropTransfer:
    return "drop-transfer";
  case MutationKind::DuplicateTransfer:
    return "duplicate-transfer";
  case MutationKind::ShareOutputAcrossAgents:
    return "share-output-across-agents";
  }
  hetsim_unreachable("unknown MutationKind");
}

const char *hetsim::expectedVerdictName(ExpectedVerdict Verdict) {
  switch (Verdict) {
  case ExpectedVerdict::Clean:
    return "clean";
  case ExpectedVerdict::RaceInjected:
    return "race-injected";
  case ExpectedVerdict::LintExpected:
    return "lint-expected";
  case ExpectedVerdict::Benign:
    return "benign";
  }
  hetsim_unreachable("unknown ExpectedVerdict");
}

std::string FuzzCase::describe() const {
  std::ostringstream Os;
  Os << "case " << Index << ": " << System << " /";
  for (KernelId Kernel : Kernels)
    Os << " " << kernelName(Kernel);
  Os << ", " << mutationKindName(Mutation);
  if (MutatedStep != size_t(-1))
    Os << " at a" << MutatedAgent << " step " << MutatedStep;
  Os << " (expect " << expectedVerdictName(Expected) << ")";
  return Os.str();
}

namespace {

/// The nine shipped system configurations (five case studies plus the
/// four Figure 7 address-space studies).
std::vector<SystemConfig> shippedSystems() {
  std::vector<SystemConfig> Systems;
  for (CaseStudy Study : allCaseStudies())
    Systems.push_back(SystemConfig::forCaseStudy(Study));
  const AddressSpaceKind Spaces[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Space : Spaces)
    Systems.push_back(SystemConfig::forAddressSpaceStudy(Space));
  return Systems;
}

/// Step indices of \p Kind in \p Steps.
std::vector<size_t> stepsOfKind(const std::vector<ExecStep> &Steps,
                                ExecKind Kind) {
  std::vector<size_t> Indices;
  for (size_t I = 0; I != Steps.size(); ++I)
    if (Steps[I].Kind == Kind)
      Indices.push_back(I);
  return Indices;
}

/// True when a drain point (dma-wait, kernel launch, or — under a lazy
/// serial-pull runtime — a serial consumer) exists at or after \p From.
bool drainedAfter(const std::vector<ExecStep> &Steps, size_t From,
                  bool LazySerialPull) {
  for (size_t I = From; I < Steps.size(); ++I) {
    if (Steps[I].Kind == ExecKind::DmaWait ||
        Steps[I].Kind == ExecKind::ParallelCompute)
      return true;
    if (LazySerialPull && Steps[I].Kind == ExecKind::SerialCompute)
      return true;
  }
  return false;
}

/// True when some asynchronous copy in \p Steps has no drain point after
/// its issue: the engine may still be busy when its data is observed.
bool anyUndrained(const std::vector<ExecStep> &Steps, bool LazySerialPull) {
  for (size_t I = 0; I != Steps.size(); ++I)
    if (Steps[I].Kind == ExecKind::Transfer && Steps[I].Async &&
        !drainedAfter(Steps, I + 1, LazySerialPull))
      return true;
  return false;
}

/// First device-to-host object of \p Kernel (every kernel has one).
std::string firstOutput(KernelId Kernel) {
  for (const DataObjectSpec &Spec : kernelDataObjects(Kernel))
    if (Spec.Dir == TransferDir::DeviceToHost)
      return Spec.Name;
  return "";
}

/// One generated case: the mutated co-run plus its classification.
struct GeneratedCase {
  FuzzCase Info;
  CorunProgram Corun;
};

/// Applies one randomly chosen applicable mutation to a fresh lowering
/// of (\p Config, \p Kernel). \p Rng drives every choice.
GeneratedCase generateCase(size_t Index, const SystemConfig &Config,
                           KernelId Kernel, XorShiftRng &Rng) {
  GeneratedCase Out;
  Out.Info.Index = Index;
  Out.Info.System = Config.Name;
  Out.Info.Kernels = {Kernel};

  LoweredProgram Program = lowerKernel(Kernel, Config);
  FenceSemantics Sem =
      fenceSemanticsFor(Config, ConsistencyModel::Weak);
  std::vector<ExecStep> &Steps = Program.Steps;

  // Which mutations apply to this lowering?
  std::vector<MutationKind> Applicable = {
      MutationKind::None, MutationKind::ShareOutputAcrossAgents};
  std::vector<size_t> Waits = stepsOfKind(Steps, ExecKind::DmaWait);
  std::vector<size_t> ToGpu = stepsOfKind(Steps, ExecKind::OwnershipToGpu);
  std::vector<size_t> ToCpu = stepsOfKind(Steps, ExecKind::OwnershipToCpu);
  std::vector<size_t> Transfers = stepsOfKind(Steps, ExecKind::Transfer);
  std::vector<size_t> SyncReadbacks;
  for (size_t I : Transfers)
    if (!Steps[I].Async && Steps[I].Dir == TransferDir::DeviceToHost)
      SyncReadbacks.push_back(I);
  if (!Waits.empty())
    Applicable.push_back(MutationKind::DropDmaWait);
  if (!ToGpu.empty())
    Applicable.push_back(MutationKind::DropOwnershipToGpu);
  if (!ToCpu.empty())
    Applicable.push_back(MutationKind::DropOwnershipToCpu);
  if (!SyncReadbacks.empty())
    Applicable.push_back(MutationKind::MakeTransferAsync);
  if (!Transfers.empty()) {
    Applicable.push_back(MutationKind::DropTransfer);
    Applicable.push_back(MutationKind::DuplicateTransfer);
  }

  MutationKind Kind = Applicable[Rng.nextBelow(Applicable.size())];
  Out.Info.Mutation = Kind;

  auto Erase = [&](size_t I) {
    Out.Info.MutatedStep = I;
    Steps.erase(Steps.begin() + static_cast<long>(I));
  };

  switch (Kind) {
  case MutationKind::None:
    Out.Info.Expected = ExpectedVerdict::Clean;
    break;

  case MutationKind::DropDmaWait: {
    // Races only when the dropped fence was the last thing standing
    // between an in-flight copy and the program end: the shipped
    // lowerings drain every copy, so any undrained transfer after the
    // erase is the dropped wait's doing.
    Erase(Waits[Rng.nextBelow(Waits.size())]);
    Out.Info.Expected = anyUndrained(Steps, Sem.LazySerialPull)
                            ? ExpectedVerdict::RaceInjected
                            : ExpectedVerdict::Benign;
    break;
  }

  case MutationKind::DropOwnershipToGpu:
  case MutationKind::DropOwnershipToCpu: {
    // Every api-acq handoff carries the only ordering its round's
    // shared-region accesses have: dropping any one injects a race.
    std::vector<size_t> &Pool =
        Kind == MutationKind::DropOwnershipToGpu ? ToGpu : ToCpu;
    Erase(Pool[Rng.nextBelow(Pool.size())]);
    Out.Info.Expected = ExpectedVerdict::RaceInjected;
    break;
  }

  case MutationKind::MakeTransferAsync: {
    // The last synchronous readback: making it asynchronous models the
    // classic "early read" bug — the host observes the output while the
    // copy may still be in flight.
    size_t I = SyncReadbacks.back();
    Steps[I].Async = true;
    Out.Info.MutatedStep = I;
    Out.Info.Expected = drainedAfter(Steps, I + 1, Sem.LazySerialPull)
                            ? ExpectedVerdict::Benign
                            : ExpectedVerdict::RaceInjected;
    break;
  }

  case MutationKind::DropTransfer:
    // The first copy of the program is always live (it feeds the first
    // round), so dropping it must trip the data-flow linter; it removes
    // accesses, so it can never inject a race.
    Erase(Transfers.front());
    Out.Info.Expected = ExpectedVerdict::LintExpected;
    break;

  case MutationKind::DuplicateTransfer: {
    // A redundant copy re-runs on the same engine as the original and
    // serializes behind it: dead work, never a race.
    size_t I = Transfers[Rng.nextBelow(Transfers.size())];
    Steps.insert(Steps.begin() + static_cast<long>(I), Steps[I]);
    Out.Info.MutatedStep = I;
    Out.Info.Expected = ExpectedVerdict::Benign;
    break;
  }

  case MutationKind::ShareOutputAcrossAgents: {
    // Two instances of the same kernel write one output allocation with
    // no inter-agent synchronization: a guaranteed write-write race.
    Out.Info.Kernels = {Kernel, Kernel};
    Out.Info.Expected = ExpectedVerdict::RaceInjected;
    Out.Corun = lowerCorun({Kernel, Kernel}, Config, {firstOutput(Kernel)});
    return Out;
  }
  }

  Out.Corun = corunFromSingle(std::move(Program), Config);
  return Out;
}

void addFailure(FuzzStats &Stats, const FuzzCase &Info,
                const std::string &Reason, size_t MaxFailures) {
  if (Stats.Failures.size() < MaxFailures)
    Stats.Failures.push_back({Info, Reason});
  else if (Stats.Failures.size() == MaxFailures)
    Stats.Failures.push_back({{}, "(further failures suppressed)"});
}

} // namespace

bool hetsim::validateWitness(const RaceDetector &Detector,
                             const RaceWitness &Witness, std::string &Error) {
  const HbGraph &Graph = Detector.graph();
  const RaceAccess &A = Witness.First;
  const RaceAccess &B = Witness.Second;
  if (Witness.Location.empty())
    return Error = "empty location", false;
  if (A.Location != Witness.Location || B.Location != Witness.Location)
    return Error = "access locations disagree with the witness", false;
  if (A.Node >= Graph.nodeCount() || B.Node >= Graph.nodeCount())
    return Error = "witness names a node outside the graph", false;
  if (A.Node >= B.Node)
    return Error = "witness accesses not ordered by node id", false;
  if (!A.IsWrite && !B.IsWrite)
    return Error = "read-read pair reported as a race", false;
  if (A.Agent == B.Agent && A.Lane == B.Lane)
    return Error = "same execution resource cannot race", false;
  if (A.OwnershipScoped != B.OwnershipScoped)
    return Error = "accesses disagree on the ordering relation", false;
  bool Ordered = A.OwnershipScoped
                     ? (Graph.reachesScoped(A.Node, B.Node) ||
                        Graph.reachesScoped(B.Node, A.Node))
                     : (Graph.reaches(A.Node, B.Node) ||
                        Graph.reaches(B.Node, A.Node));
  if (Ordered)
    return Error = "witness accesses are ordered in the graph", false;
  if (Witness.MissingEdge.empty())
    return Error = "missing-edge hint absent", false;
  if (Witness.Interleaving.empty() ||
      Witness.Interleaving.back().find("unordered") == std::string::npos)
    return Error = "interleaving does not state the unordered pair", false;
  return true;
}

std::string FuzzStats::render() const {
  std::ostringstream Os;
  Os << Cases << " fuzz cases:";
  for (size_t K = 0; K != NumMutationKinds; ++K)
    if (ByKind[K] != 0)
      Os << " " << mutationKindName(static_cast<MutationKind>(K)) << "="
         << ByKind[K];
  Os << "\n";
  Os << "  injected races flagged: " << RacesFlagged << "/" << RacesInjected
     << "; witnesses validated: " << WitnessesChecked
     << "; dynamic schedules replayed: " << DynamicReplays << "\n";
  for (const FuzzFailure &Failure : Failures) {
    if (!Failure.Reason.empty() && Failure.Case.System.empty())
      Os << "  " << Failure.Reason << "\n";
    else
      Os << "  FAIL " << Failure.Case.describe() << ": " << Failure.Reason
         << "\n";
  }
  Os << (passed() ? "differential fuzz: PASS" : "differential fuzz: FAIL")
     << "\n";
  return Os.str();
}

FuzzStats hetsim::fuzzVerifier(size_t Cases, uint64_t Seed,
                               size_t MaxFailures) {
  FuzzStats Stats;
  Stats.Cases = Cases;
  std::vector<SystemConfig> Systems = shippedSystems();
  std::vector<KernelId> Kernels = allKernels();
  XorShiftRng Master(Seed);

  for (size_t Index = 0; Index != Cases; ++Index) {
    XorShiftRng Rng(Master.next());
    const SystemConfig &Config = Systems[Rng.nextBelow(Systems.size())];
    KernelId Kernel = Kernels[Rng.nextBelow(Kernels.size())];
    GeneratedCase Case = generateCase(Index, Config, Kernel, Rng);
    const FuzzCase &Info = Case.Info;
    Stats.ByKind[static_cast<size_t>(Info.Mutation)] += 1;

    RaceDetector Detector(Case.Corun);
    RaceReport Report = Detector.detect();

    // Every reported witness must be structurally valid, whatever the
    // expectation.
    for (const RaceWitness &Witness : Report.Races) {
      std::string Error;
      if (validateWitness(Detector, Witness, Error))
        Stats.WitnessesChecked += 1;
      else
        addFailure(Stats, Info, "invalid witness on " + Witness.Location +
                                    ": " + Error,
                   MaxFailures);
    }

    switch (Info.Expected) {
    case ExpectedVerdict::RaceInjected:
      Stats.RacesInjected += 1;
      if (!Report.clean())
        Stats.RacesFlagged += 1;
      else
        addFailure(Stats, Info, "injected race not flagged", MaxFailures);
      break;
    case ExpectedVerdict::Clean:
    case ExpectedVerdict::Benign:
      if (!Report.clean())
        addFailure(Stats, Info,
                   "false positive: " + Report.summary(), MaxFailures);
      break;
    case ExpectedVerdict::LintExpected: {
      if (!Report.clean())
        addFailure(Stats, Info,
                   "false positive: " + Report.summary(), MaxFailures);
      const CorunAgent &Agent = Case.Corun.Agents.front();
      LintReport Lint = lintProgram(Agent.Program, Case.Corun.Config);
      if (Lint.errorCount() == 0)
        addFailure(Stats, Info, "dropped live transfer not flagged by linter",
                   MaxFailures);
      break;
    }
    }

    // The soundness contract: verifier-clean programs must replay
    // race-free on every explored schedule of the dynamic checker.
    if (Report.clean()) {
      std::vector<CorunSchedule> Schedules =
          corunSchedules(Case.Corun, /*RandomCount=*/4, Rng.next());
      for (const CorunSchedule &Schedule : Schedules) {
        Stats.DynamicReplays += 1;
        if (!buildCorunSyncHistory(Case.Corun, Schedule,
                                   ConsistencyModel::Weak)
                 .isRaceFree()) {
          addFailure(Stats, Info,
                     "verifier-clean program races dynamically", MaxFailures);
          break;
        }
      }
    }
  }
  return Stats;
}
