//===- analysis/LintDiagnostic.h - Static lint diagnostics ------*- C++ -*-===//
///
/// \file
/// The diagnostic vocabulary of the kernel-IR memory-model linter. Each
/// diagnostic names a legality rule derived from Table I's design axes
/// (address space, consistency, ownership) that a lowered program
/// violates, anchored to the offending ExecStep and carrying a fix-it
/// hint phrased in terms of the step the lowering should have emitted.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_LINTDIAGNOSTIC_H
#define HETSIM_ANALYSIS_LINTDIAGNOSTIC_H

#include "trace/Kernel.h"

#include <cstddef>
#include <string>
#include <vector>

namespace hetsim {

/// The legality rules the linter enforces.
enum class LintKind : uint8_t {
  /// A compute step consumes an object whose copy on the executing PU is
  /// stale: no transfer refreshed it since the other PU's last write
  /// (disjoint spaces), or the ADSM runtime state says the accelerator
  /// copy is invalid.
  UseBeforeTransfer,
  /// The host observes (serial merge or program end) an object last
  /// written by the GPU with no device-to-host transfer — the readback
  /// would return stale data.
  StaleReadback,
  /// An asynchronous copy is still in flight when the program ends: no
  /// DmaWait (or synchronizing kernel launch) drains it.
  MissingDmaWait,
  /// Under an ownership discipline, a PU touches a shared object it does
  /// not own: a release/acquire pair is missing.
  MissingOwnership,
  /// An ownership step transitions nothing: every listed object is
  /// already owned by the target PU.
  DoubleOwnership,
  /// A transfer moves data that is already valid at the destination —
  /// a dead copy the lowering should have elided.
  RedundantTransfer,
  /// Explicit shared-locality discipline: a parallel round uses a shared
  /// object never staged by a preceding push.
  UnstagedSharedUse,
  /// Two conflicting cross-PU accesses with no ordering edge under the
  /// consistency model (e.g. a compute step overlapping an undrained
  /// asynchronous copy of the same object).
  CrossPuRace,
  /// A step is meaningless under the configured memory model (explicit
  /// transfer in a unified space, ownership without ownership support...).
  ModelMismatch,
  /// The step sequence does not match the kernel's abstract phase
  /// structure (compute steps added or removed); data-flow rules that
  /// need the phase skeleton were skipped.
  StructureMismatch,
};

/// Short kebab-case rule name ("use-before-transfer", ...).
const char *lintKindName(LintKind Kind);

/// Diagnostic severities. Errors are hazards (the run would be wrong on
/// real hardware); warnings are dead work (the run is correct but the
/// lowering wastes communication).
enum class LintSeverity : uint8_t { Warning, Error };

const char *lintSeverityName(LintSeverity Severity);

/// One diagnostic, anchored to a step of the lowered program.
struct LintDiagnostic {
  LintKind Kind = LintKind::UseBeforeTransfer;
  LintSeverity Severity = LintSeverity::Error;
  /// Index into LoweredProgram::Steps of the step the rule fired on.
  size_t StepIndex = 0;
  /// The data object involved (empty for program-wide diagnostics).
  std::string Object;
  /// Human-readable statement of the violation.
  std::string Message;
  /// What the lowering should have emitted, phrased as an edit.
  std::string FixHint;

  /// Renders "step 3 (parallel): error: use-before-transfer: ...".
  std::string render(const char *StepName) const;
};

/// Everything one lint of one (program, config) produced.
struct LintReport {
  KernelId Kernel = KernelId::Reduction;
  std::string System;
  std::vector<LintDiagnostic> Diags;

  bool clean() const { return Diags.empty(); }
  unsigned errorCount() const;
  unsigned warningCount() const;
  bool hasKind(LintKind Kind) const;
  /// First diagnostic of \p Kind, or nullptr.
  const LintDiagnostic *findKind(LintKind Kind) const;
};

} // namespace hetsim

#endif // HETSIM_ANALYSIS_LINTDIAGNOSTIC_H
