//===- analysis/ProgramLinter.cpp -----------------------------------------===//

#include "analysis/ProgramLinter.h"

#include "core/KernelModel.h"
#include "core/LocalityValidation.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace hetsim;

const char *hetsim::lintKindName(LintKind Kind) {
  switch (Kind) {
  case LintKind::UseBeforeTransfer:
    return "use-before-transfer";
  case LintKind::StaleReadback:
    return "stale-readback";
  case LintKind::MissingDmaWait:
    return "missing-dma-wait";
  case LintKind::MissingOwnership:
    return "missing-ownership";
  case LintKind::DoubleOwnership:
    return "double-ownership";
  case LintKind::RedundantTransfer:
    return "redundant-transfer";
  case LintKind::UnstagedSharedUse:
    return "unstaged-shared-use";
  case LintKind::CrossPuRace:
    return "cross-pu-race";
  case LintKind::ModelMismatch:
    return "model-mismatch";
  case LintKind::StructureMismatch:
    return "structure-mismatch";
  }
  return "unknown";
}

const char *hetsim::lintSeverityName(LintSeverity Severity) {
  return Severity == LintSeverity::Error ? "error" : "warning";
}

std::string LintDiagnostic::render(const char *StepName) const {
  std::ostringstream Os;
  Os << "step " << StepIndex << " (" << StepName
     << "): " << lintSeverityName(Severity) << ": " << lintKindName(Kind)
     << ": " << Message;
  if (!FixHint.empty())
    Os << " [fix: " << FixHint << "]";
  return Os.str();
}

unsigned LintReport::errorCount() const {
  unsigned Count = 0;
  for (const LintDiagnostic &D : Diags)
    if (D.Severity == LintSeverity::Error)
      ++Count;
  return Count;
}

unsigned LintReport::warningCount() const {
  unsigned Count = 0;
  for (const LintDiagnostic &D : Diags)
    if (D.Severity == LintSeverity::Warning)
      ++Count;
  return Count;
}

bool LintReport::hasKind(LintKind Kind) const {
  return findKind(Kind) != nullptr;
}

const LintDiagnostic *LintReport::findKind(LintKind Kind) const {
  for (const LintDiagnostic &D : Diags)
    if (D.Kind == Kind)
      return &D;
  return nullptr;
}

namespace {

using StringSet = std::unordered_set<std::string>;

/// The per-program walk. One instance lints one (program, config) pair.
class Linter {
public:
  Linter(const LoweredProgram &Prog, const SystemConfig &Cfg)
      : Program(Prog), Config(Cfg) {
    Report.Kernel = Program.Kernel;
    Report.System = Config.Name;
    for (const DataObjectSpec &Spec : kernelDataObjects(Program.Kernel)) {
      if (Spec.Dir == TransferDir::HostToDevice)
        Inputs.insert(Spec.Name);
      else
        Outputs.insert(Spec.Name);
    }
  }

  LintReport run() {
    bool StructureOk = checkStructure();
    checkAsyncHazards();
    checkLocality();
    if (StructureOk) {
      computeConsumedSets();
      switch (Config.AddrSpace) {
      case AddressSpaceKind::Unified:
        lintUnified();
        break;
      case AddressSpaceKind::Disjoint:
        lintDisjoint();
        break;
      case AddressSpaceKind::PartiallyShared:
        lintPartiallyShared();
        break;
      case AddressSpaceKind::Adsm:
        lintAdsm();
        break;
      }
      if (Config.UseOwnership &&
          (Config.AddrSpace == AddressSpaceKind::PartiallyShared ||
           Config.AddrSpace == AddressSpaceKind::Unified))
        lintOwnership();
    }
    std::stable_sort(Report.Diags.begin(), Report.Diags.end(),
                     [](const LintDiagnostic &A, const LintDiagnostic &B) {
                       return A.StepIndex < B.StepIndex;
                     });
    return std::move(Report);
  }

private:
  void diag(LintKind Kind, LintSeverity Severity, size_t StepIndex,
            std::string Object, std::string Message, std::string Fix) {
    LintDiagnostic D;
    D.Kind = Kind;
    D.Severity = Severity;
    D.StepIndex = StepIndex;
    D.Object = std::move(Object);
    D.Message = std::move(Message);
    D.FixHint = std::move(Fix);
    Report.Diags.push_back(std::move(D));
  }

  /// The lowered compute steps must match the kernel's abstract phase
  /// skeleton one-for-one; the data-flow machines replay that skeleton.
  bool checkStructure() {
    Phases = KernelProgram::build(Program.Kernel);
    unsigned ParPhases = 0, SerialPhases = 0;
    for (const KernelPhase &Phase : Phases.phases()) {
      if (Phase.Kind == PhaseKind::Parallel)
        ++ParPhases;
      if (Phase.Kind == PhaseKind::Serial)
        ++SerialPhases;
    }
    unsigned ParSteps = Program.countSteps(ExecKind::ParallelCompute);
    unsigned SerialSteps = Program.countSteps(ExecKind::SerialCompute);
    if (ParSteps == ParPhases && SerialSteps == SerialPhases)
      return true;
    std::ostringstream Os;
    Os << "compute steps do not match the kernel's phase structure ("
       << ParSteps << " parallel vs " << ParPhases << " expected, "
       << SerialSteps << " serial vs " << SerialPhases
       << " expected); data-flow rules skipped";
    diag(LintKind::StructureMismatch, LintSeverity::Error, 0, "",
         Os.str(), "lower the program with lowerKernel()");
    return false;
  }

  /// What the k-th parallel round consumes: the kernel's inputs plus
  /// everything a TransferIn phase named since the previous round (the
  /// exact rule the ADSM lowering applies; k-means re-consumes its
  /// centroids this way, convolution's second round consumes nothing
  /// fresh).
  void computeConsumedSets() {
    StringSet Pending;
    for (const KernelPhase &Phase : Phases.phases()) {
      if (Phase.Kind == PhaseKind::TransferIn)
        Pending.insert(Phase.Objects.begin(), Phase.Objects.end());
      if (Phase.Kind == PhaseKind::Parallel) {
        StringSet Consumed = Inputs;
        Consumed.insert(Pending.begin(), Pending.end());
        ConsumedPerRound.push_back(std::move(Consumed));
        Pending.clear();
      }
    }
  }

  bool touches(const ExecStep &Step, const std::vector<std::string> &Objs,
               StringSet &Hit) const {
    Hit.clear();
    if (Step.Kind == ExecKind::SerialCompute) {
      for (const std::string &Name : Objs)
        if (Outputs.count(Name))
          Hit.insert(Name);
    } else if (Step.Kind == ExecKind::Transfer) {
      for (const std::string &Name : Objs)
        if (std::find(Step.Objects.begin(), Step.Objects.end(), Name) !=
            Step.Objects.end())
          Hit.insert(Name);
    }
    return !Hit.empty();
  }

  /// Hazards on the DMA timeline, from the happens-before graph:
  /// asynchronous copies nothing drains, waits with nothing in flight,
  /// and steps that touch an in-flight copy's objects with no ordering
  /// edge from its completion.
  void checkAsyncHazards() {
    HbGraph Graph = HbGraph::build(Program, Config);
    for (size_t I : Graph.undrainedTransfers())
      diag(LintKind::MissingDmaWait, LintSeverity::Error, I,
           joinNames(Program.Steps[I].Objects),
           "asynchronous transfer may still be in flight when the "
           "program ends",
           "append a dma-wait before the program ends");

    unsigned InFlight = 0;
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Step = Program.Steps[I];
      if (Step.Kind == ExecKind::Transfer && Step.Async)
        ++InFlight;
      if (Step.Kind == ExecKind::ParallelCompute)
        InFlight = 0;
      if (Step.Kind == ExecKind::DmaWait) {
        if (InFlight == 0)
          diag(LintKind::ModelMismatch, LintSeverity::Warning, I, "",
               "dma-wait with no asynchronous copy in flight",
               "drop this wait");
        InFlight = 0;
      }
    }

    StringSet Hit;
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Transfer = Program.Steps[I];
      if (Transfer.Kind != ExecKind::Transfer || !Transfer.Async)
        continue;
      size_t Dma = Graph.dmaNode(I);
      for (size_t J = I + 1; J != Program.Steps.size(); ++J) {
        if (Graph.reaches(Dma, Graph.stepNode(J)))
          continue;
        if (!touches(Program.Steps[J], Transfer.Objects, Hit))
          continue;
        diag(LintKind::CrossPuRace, LintSeverity::Error, J,
             joinNames(Hit),
             "step overlaps the asynchronous copy issued at step " +
                 std::to_string(I) + " with no ordering edge",
             "emit a dma-wait between the copy and this step");
      }
    }
  }

  /// Strict (Sequoia-style) explicit shared locality: every shared
  /// object a round touches must have been staged by a preceding push.
  void checkLocality() {
    if (Config.Locality.Shared != SharedLocality::Explicit &&
        Config.Locality.Shared != SharedLocality::Hybrid)
      return;
    for (const LocalityViolation &V : findUnstagedSharedUses(Program)) {
      size_t StepIndex = parStepOfRound(V.Round);
      diag(LintKind::UnstagedSharedUse, LintSeverity::Error, StepIndex,
           V.Object,
           "round " + std::to_string(V.Round) + " uses shared object '" +
               V.Object + "' never staged into the shared cache",
           "emit a push of '" + V.Object + "' before this round");
    }
  }

  //===--------------------------------------------------------------===//
  // Disjoint spaces: every boundary crossing needs an explicit copy.
  // HostDirty = host writes not yet pushed to the device copy;
  // GpuDirty = device results not yet copied back.
  //===--------------------------------------------------------------===//

  void lintDisjoint() {
    std::unordered_map<std::string, bool> HostDirty, GpuDirty;
    for (const std::string &Name : Inputs)
      HostDirty[Name] = true; // The host initialized the inputs.
    size_t LastPar = 0;
    unsigned Round = 0;
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Step = Program.Steps[I];
      switch (Step.Kind) {
      case ExecKind::Transfer:
        for (const std::string &Name : Step.Objects) {
          if (Step.Dir == TransferDir::HostToDevice) {
            if (!HostDirty[Name])
              diag(LintKind::RedundantTransfer, LintSeverity::Warning, I,
                   Name,
                   "copies '" + Name +
                       "', already valid on the device — a dead copy",
                   "drop '" + Name + "' from this transfer");
            if (GpuDirty[Name])
              diag(LintKind::CrossPuRace, LintSeverity::Error, I, Name,
                   "host-to-device copy overwrites device results for '" +
                       Name + "' never copied back",
                   "emit a device-to-host transfer of '" + Name +
                       "' first");
            HostDirty[Name] = false;
            GpuDirty[Name] = false;
          } else {
            if (!GpuDirty[Name])
              diag(LintKind::RedundantTransfer, LintSeverity::Warning, I,
                   Name,
                   "copies back '" + Name +
                       "', which the device never updated — a dead copy",
                   "drop '" + Name + "' from this transfer");
            GpuDirty[Name] = false;
            HostDirty[Name] = false;
          }
        }
        break;
      case ExecKind::ParallelCompute:
        for (const std::string &Name : consumed(Round))
          if (HostDirty[Name])
            diag(LintKind::UseBeforeTransfer, LintSeverity::Error, I,
                 Name,
                 "round consumes '" + Name +
                     "' but the device copy is stale (host writes were "
                     "never transferred)",
                 "emit a host-to-device transfer of '" + Name +
                     "' before this round");
        for (const std::string &Name : Outputs)
          GpuDirty[Name] = true;
        LastPar = I;
        ++Round;
        break;
      case ExecKind::SerialCompute:
        for (const std::string &Name : Outputs) {
          if (GpuDirty[Name])
            diag(LintKind::StaleReadback, LintSeverity::Error, I, Name,
                 "host merges '" + Name +
                     "' but the device results were never copied back",
                 "emit a device-to-host transfer of '" + Name +
                     "' before this step");
          HostDirty[Name] = true;
        }
        break;
      case ExecKind::OwnershipToGpu:
      case ExecKind::OwnershipToCpu:
        diag(LintKind::ModelMismatch, LintSeverity::Warning, I, "",
             "ownership transfer in a disjoint space, which has no "
             "shared objects",
             "drop this step");
        break;
      default:
        break;
      }
    }
    for (const std::string &Name : Outputs)
      if (GpuDirty[Name])
        diag(LintKind::StaleReadback, LintSeverity::Error, LastPar, Name,
             "program ends with device results for '" + Name +
                 "' never copied back",
             "emit a device-to-host transfer of '" + Name +
                 "' after this round");
  }

  //===--------------------------------------------------------------===//
  // Partially shared space: data lives in the shared region; each
  // object pays one initial aperture transfer and results are read in
  // place. Ownership legality is checked separately (lintOwnership).
  //===--------------------------------------------------------------===//

  void lintPartiallyShared() {
    StringSet Initialized;
    unsigned Round = 0;
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Step = Program.Steps[I];
      switch (Step.Kind) {
      case ExecKind::Transfer:
        if (Step.Dir == TransferDir::DeviceToHost) {
          diag(LintKind::ModelMismatch, LintSeverity::Warning, I,
               joinNames(Step.Objects),
               "device-to-host copy in a partially shared space; "
               "results are read in place",
               "drop this transfer");
          break;
        }
        for (const std::string &Name : Step.Objects) {
          if (!Initialized.insert(Name).second)
            diag(LintKind::RedundantTransfer, LintSeverity::Warning, I,
                 Name,
                 "aperture transfer re-initializes '" + Name +
                     "', already placed in the shared region",
                 "drop '" + Name + "' from this transfer");
        }
        break;
      case ExecKind::ParallelCompute:
        // Device writes land in the shared region directly, but they do
        // not substitute for an object's one-time aperture placement —
        // outputs the program re-consumes (k-means centroids) still pay
        // their initial transfer when first named by a TransferIn.
        for (const std::string &Name : consumed(Round))
          if (!Initialized.count(Name) && !Outputs.count(Name))
            diag(LintKind::UseBeforeTransfer, LintSeverity::Error, I,
                 Name,
                 "round consumes '" + Name +
                     "' before its initial aperture transfer placed it "
                     "in the shared region",
                 "emit an aperture transfer of '" + Name +
                     "' before this round");
        ++Round;
        break;
      default:
        break;
      }
    }
  }

  //===--------------------------------------------------------------===//
  // Ownership discipline (LRB): shared objects must be released to the
  // PU that touches them. Owner tracks who holds each shared object.
  //===--------------------------------------------------------------===//

  void lintOwnership() {
    enum class Pu { Cpu, Gpu };
    std::unordered_map<std::string, Pu> Owner;
    for (const std::string &Name : Program.Place.SharedObjects)
      Owner[Name] = Pu::Cpu;
    size_t LastPar = 0;
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Step = Program.Steps[I];
      switch (Step.Kind) {
      case ExecKind::OwnershipToGpu:
      case ExecKind::OwnershipToCpu: {
        Pu Target =
            Step.Kind == ExecKind::OwnershipToGpu ? Pu::Gpu : Pu::Cpu;
        bool AnyChange = Step.Objects.empty();
        for (const std::string &Name : Step.Objects) {
          if (Owner[Name] != Target)
            AnyChange = true;
          Owner[Name] = Target;
        }
        if (!AnyChange)
          diag(LintKind::DoubleOwnership, LintSeverity::Warning, I,
               joinNames(Step.Objects),
               "every listed object is already owned by the "
               "acquiring side",
               "drop this ownership transfer");
        break;
      }
      case ExecKind::ParallelCompute:
        for (const std::string &Name : Program.Place.SharedObjects)
          if (Owner[Name] != Pu::Gpu)
            diag(LintKind::MissingOwnership, LintSeverity::Error, I,
                 Name,
                 "device computes on '" + Name +
                     "' while the host still owns it",
                 "emit an ownership-to-gpu of '" + Name +
                     "' before this round");
        LastPar = I;
        break;
      case ExecKind::SerialCompute:
        for (const std::string &Name : Outputs)
          if (Owner.count(Name) && Owner[Name] == Pu::Gpu)
            diag(LintKind::StaleReadback, LintSeverity::Error, I, Name,
                 "host merges '" + Name +
                     "' without re-acquiring it from the device",
                 "emit an ownership-to-cpu of '" + Name +
                     "' before this step");
        break;
      default:
        break;
      }
    }
    for (const std::string &Name : Outputs)
      if (Owner.count(Name) && Owner[Name] == Pu::Gpu)
        diag(LintKind::MissingOwnership, LintSeverity::Error, LastPar,
             Name,
             "program ends with '" + Name + "' still owned by the device",
             "emit an ownership-to-cpu of '" + Name +
                 "' after this round");
  }

  //===--------------------------------------------------------------===//
  // ADSM: replay the software-coherence protocol. Each object is
  // host-valid, accelerator-valid, or both; the runtime's sync points
  // (kernel launch, host access) must move exactly the stale copies.
  //===--------------------------------------------------------------===//

  void lintAdsm() {
    enum class V { Host, Acc, Both };
    std::unordered_map<std::string, V> State;
    for (const std::string &Name : Inputs)
      State[Name] = V::Host;
    for (const std::string &Name : Outputs)
      State[Name] = V::Acc;
    size_t LastPar = 0;
    unsigned Round = 0;
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Step = Program.Steps[I];
      switch (Step.Kind) {
      case ExecKind::Transfer:
        for (const std::string &Name : Step.Objects) {
          if (Step.Dir == TransferDir::HostToDevice) {
            if (State[Name] != V::Host)
              diag(LintKind::RedundantTransfer, LintSeverity::Warning, I,
                   Name,
                   "runtime copies '" + Name +
                       "' although the accelerator copy is valid",
                   "drop '" + Name + "' from this sync transfer");
            State[Name] = V::Both;
          } else {
            if (State[Name] != V::Acc)
              diag(LintKind::RedundantTransfer, LintSeverity::Warning, I,
                   Name,
                   "runtime copies back '" + Name +
                       "' although the host copy is valid",
                   "drop '" + Name + "' from this sync transfer");
            // The host access both reads and updates the results, so
            // the accelerator copy is invalidated.
            State[Name] = V::Host;
          }
        }
        break;
      case ExecKind::ParallelCompute:
        for (const std::string &Name : consumed(Round))
          if (State[Name] == V::Host)
            diag(LintKind::UseBeforeTransfer, LintSeverity::Error, I,
                 Name,
                 "round consumes '" + Name +
                     "' while the accelerator copy is invalid (the "
                     "kernel-launch sync never copied it)",
                 "emit the runtime sync transfer of '" + Name +
                     "' before this round");
        for (const std::string &Name : Outputs)
          State[Name] = V::Acc;
        LastPar = I;
        ++Round;
        break;
      case ExecKind::SerialCompute:
        for (const std::string &Name : Outputs) {
          if (State[Name] == V::Acc)
            diag(LintKind::StaleReadback, LintSeverity::Error, I, Name,
                 "host merges '" + Name +
                     "' while its copy is invalid (no host-access sync "
                     "transfer)",
                 "emit the runtime sync transfer of '" + Name +
                     "' before this step");
          State[Name] = V::Host;
        }
        break;
      case ExecKind::OwnershipToGpu:
      case ExecKind::OwnershipToCpu:
        diag(LintKind::ModelMismatch, LintSeverity::Warning, I, "",
             "ownership transfer under ADSM; the runtime protocol "
             "already tracks validity",
             "drop this step");
        break;
      default:
        break;
      }
    }
    for (const std::string &Name : Outputs)
      if (State[Name] == V::Acc)
        diag(LintKind::StaleReadback, LintSeverity::Error, LastPar, Name,
             "program ends with '" + Name +
                 "' valid only on the accelerator",
             "emit the runtime sync transfer of '" + Name +
                 "' after this round");
  }

  //===--------------------------------------------------------------===//
  // Unified space: data is visible everywhere; explicit movement is
  // dead work (and ownership without the discipline enabled is noise).
  //===--------------------------------------------------------------===//

  void lintUnified() {
    for (size_t I = 0; I != Program.Steps.size(); ++I) {
      const ExecStep &Step = Program.Steps[I];
      if (Step.Kind == ExecKind::Transfer)
        diag(LintKind::ModelMismatch, LintSeverity::Warning, I,
             joinNames(Step.Objects),
             "explicit transfer in a unified space; data is already "
             "visible everywhere",
             "drop this transfer");
      if (!Config.UseOwnership && (Step.Kind == ExecKind::OwnershipToGpu ||
                                   Step.Kind == ExecKind::OwnershipToCpu))
        diag(LintKind::ModelMismatch, LintSeverity::Warning, I,
             joinNames(Step.Objects),
             "ownership transfer without the ownership discipline "
             "enabled",
             "drop this step");
    }
  }

  const StringSet &consumed(unsigned Round) const {
    static const StringSet Empty;
    return Round < ConsumedPerRound.size() ? ConsumedPerRound[Round]
                                           : Empty;
  }

  size_t parStepOfRound(unsigned Round) const {
    for (size_t I = 0; I != Program.Steps.size(); ++I)
      if (Program.Steps[I].Kind == ExecKind::ParallelCompute &&
          Program.Steps[I].Round == Round)
        return I;
    return 0;
  }

  template <class Container>
  static std::string joinNames(const Container &Names) {
    std::string Joined;
    for (const std::string &Name : Names) {
      if (!Joined.empty())
        Joined += ",";
      Joined += Name;
    }
    return Joined;
  }

  const LoweredProgram &Program;
  const SystemConfig &Config;
  LintReport Report;
  KernelProgram Phases;
  StringSet Inputs;
  StringSet Outputs;
  std::vector<StringSet> ConsumedPerRound;
};

} // namespace

LintReport hetsim::lintProgram(const LoweredProgram &Program,
                               const SystemConfig &Config) {
  return Linter(Program, Config).run();
}

LintReport hetsim::lintDesignPoint(KernelId Kernel,
                                   const SystemConfig &Config) {
  LoweredProgram Program = lowerKernel(Kernel, Config);
  return lintProgram(Program, Config);
}

std::string hetsim::renderReport(const LintReport &Report,
                                 const LoweredProgram &Program) {
  std::ostringstream Os;
  for (const LintDiagnostic &D : Report.Diags) {
    const char *StepName = D.StepIndex < Program.Steps.size()
                               ? execKindName(Program.Steps[D.StepIndex].Kind)
                               : "end";
    Os << D.render(StepName) << "\n";
  }
  return Os.str();
}
