//===- analysis/SweepLinter.h - Design-space-wide linting -------*- C++ -*-===//
///
/// \file
/// Lints every (kernel x memory-model) point of a design-space sweep and
/// cross-checks each static verdict against the dynamic
/// ConsistencyChecker as a differential oracle: a point the linter
/// passes must replay race-free (static-clean => dynamically race-free).
/// A disagreement means one of the two analyses has a soundness bug —
/// the sweep mode exists to catch exactly that while the simulator is
/// being refactored.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_SWEEPLINTER_H
#define HETSIM_ANALYSIS_SWEEPLINTER_H

#include "analysis/ProgramLinter.h"
#include "analysis/RaceDetector.h"
#include "core/SweepRunner.h"
#include "memory/ConsistencyChecker.h"

namespace hetsim {

/// The verdicts for one swept point.
struct SweepLintResult {
  std::string System;
  KernelId Kernel = KernelId::Reduction;
  LintReport Report;
  /// The static race verifier's verdict for the same lowered program.
  RaceReport Races;
  /// The dynamic oracle's verdict for the same lowered program.
  bool DynamicallyRaceFree = true;
  /// Pre-rendered diagnostics + race witnesses, produced in the worker
  /// while the lowered program is alive (empty when the point is clean).
  /// Diagnostics are ordered by (step, kind, object), so the rendering
  /// is byte-stable whatever the worker count.
  std::string Rendered;

  /// True when the differential oracle disagrees: neither static
  /// analysis found an error but the dynamic replay races.
  bool disagreement() const {
    return Report.errorCount() == 0 && Races.clean() && !DynamicallyRaceFree;
  }
};

/// Aggregated verdicts over one sweep.
struct SweepLintSummary {
  std::vector<SweepLintResult> Results;

  unsigned points() const { return unsigned(Results.size()); }
  unsigned pointsWithErrors() const;
  unsigned pointsWithWarnings() const;
  unsigned pointsWithRaces() const;
  unsigned disagreements() const;
  bool clean() const {
    return pointsWithErrors() == 0 && pointsWithRaces() == 0 &&
           disagreements() == 0;
  }

  /// One human-readable summary line (no trailing newline).
  std::string summary() const;
  /// Every point's Rendered block concatenated, then the summary line:
  /// the whole report, byte-identical across job counts.
  std::string render() const;
};

/// The shipped design space: the five Section V-A case studies plus the
/// four Figure 7 address-space studies, each across all six kernels.
std::vector<SweepPoint> shippedDesignSpace();

/// Lints every point of \p Points (fanning out over a ThreadPool; \p Jobs
/// follows the ThreadPool convention, 0 = HETSIM_JOBS/hardware) and runs
/// the dynamic oracle under \p Model. Results keep submission order.
SweepLintSummary lintSweep(const std::vector<SweepPoint> &Points,
                           unsigned Jobs = 0,
                           ConsistencyModel Model = ConsistencyModel::Weak);

} // namespace hetsim

#endif // HETSIM_ANALYSIS_SWEEPLINTER_H
