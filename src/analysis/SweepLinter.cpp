//===- analysis/SweepLinter.cpp -------------------------------------------===//

#include "analysis/SweepLinter.h"

#include "common/ThreadPool.h"
#include "core/ConsistencyValidation.h"

#include <algorithm>
#include <sstream>

using namespace hetsim;

unsigned SweepLintSummary::pointsWithErrors() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (R.Report.errorCount() != 0)
      ++Count;
  return Count;
}

unsigned SweepLintSummary::pointsWithWarnings() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (R.Report.warningCount() != 0)
      ++Count;
  return Count;
}

unsigned SweepLintSummary::pointsWithRaces() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (!R.Races.clean())
      ++Count;
  return Count;
}

unsigned SweepLintSummary::disagreements() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (R.disagreement())
      ++Count;
  return Count;
}

std::string SweepLintSummary::summary() const {
  std::ostringstream Os;
  Os << points() << " points linted: " << pointsWithErrors()
     << " with errors, " << pointsWithWarnings() << " with warnings, "
     << pointsWithRaces() << " with static races, " << disagreements()
     << " static/dynamic disagreements";
  return Os.str();
}

std::string SweepLintSummary::render() const {
  std::string Out;
  for (const SweepLintResult &R : Results)
    Out += R.Rendered;
  Out += summary();
  Out += "\n";
  return Out;
}

std::vector<SweepPoint> hetsim::shippedDesignSpace() {
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : allCaseStudies())
    for (KernelId Kernel : allKernels())
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);
  const AddressSpaceKind Spaces[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Space : Spaces)
    for (KernelId Kernel : allKernels())
      Points.emplace_back(SystemConfig::forAddressSpaceStudy(Space),
                          Kernel);
  return Points;
}

SweepLintSummary hetsim::lintSweep(const std::vector<SweepPoint> &Points,
                                   unsigned Jobs,
                                   ConsistencyModel Model) {
  SweepLintSummary Summary;
  Summary.Results.resize(Points.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Points.size(), [&](size_t I) {
    SystemConfig Config = Points[I].Config;
    Config.applyOverrides(Points[I].Overrides);
    LoweredProgram Program = lowerKernel(Points[I].Kernel, Config);
    SweepLintResult &R = Summary.Results[I];
    R.System = Config.Name;
    R.Kernel = Points[I].Kernel;
    R.Report = lintProgram(Program, Config);
    // Fix the diagnostic order so the rendering below never depends on
    // rule-scan order.
    std::stable_sort(R.Report.Diags.begin(), R.Report.Diags.end(),
                     [](const LintDiagnostic &A, const LintDiagnostic &B) {
                       if (A.StepIndex != B.StepIndex)
                         return A.StepIndex < B.StepIndex;
                       if (A.Kind != B.Kind)
                         return A.Kind < B.Kind;
                       return A.Object < B.Object;
                     });
    R.Races = RaceDetector::analyze(Program, Config, Model);
    R.DynamicallyRaceFree = validateRaceFree(Program, Model);
    // Render while the program (step names) is still alive; clean points
    // contribute nothing.
    if (!R.Report.clean() || !R.Races.clean() || R.disagreement()) {
      std::ostringstream Os;
      Os << R.System << " / " << kernelName(R.Kernel) << ":\n";
      Os << renderReport(R.Report, Program);
      if (!R.Races.clean())
        Os << R.Races.render();
      if (R.disagreement())
        Os << "  disagreement: static-clean but dynamically racy under "
           << consistencyModelName(Model) << " consistency\n";
      R.Rendered = Os.str();
    }
  });
  return Summary;
}
