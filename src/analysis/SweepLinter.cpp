//===- analysis/SweepLinter.cpp -------------------------------------------===//

#include "analysis/SweepLinter.h"

#include "common/ThreadPool.h"
#include "core/ConsistencyValidation.h"

#include <sstream>

using namespace hetsim;

unsigned SweepLintSummary::pointsWithErrors() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (R.Report.errorCount() != 0)
      ++Count;
  return Count;
}

unsigned SweepLintSummary::pointsWithWarnings() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (R.Report.warningCount() != 0)
      ++Count;
  return Count;
}

unsigned SweepLintSummary::disagreements() const {
  unsigned Count = 0;
  for (const SweepLintResult &R : Results)
    if (R.disagreement())
      ++Count;
  return Count;
}

std::string SweepLintSummary::summary() const {
  std::ostringstream Os;
  Os << points() << " points linted: " << pointsWithErrors()
     << " with errors, " << pointsWithWarnings() << " with warnings, "
     << disagreements() << " static/dynamic disagreements";
  return Os.str();
}

std::vector<SweepPoint> hetsim::shippedDesignSpace() {
  std::vector<SweepPoint> Points;
  for (CaseStudy Study : allCaseStudies())
    for (KernelId Kernel : allKernels())
      Points.emplace_back(SystemConfig::forCaseStudy(Study), Kernel);
  const AddressSpaceKind Spaces[] = {
      AddressSpaceKind::Unified, AddressSpaceKind::PartiallyShared,
      AddressSpaceKind::Disjoint, AddressSpaceKind::Adsm};
  for (AddressSpaceKind Space : Spaces)
    for (KernelId Kernel : allKernels())
      Points.emplace_back(SystemConfig::forAddressSpaceStudy(Space),
                          Kernel);
  return Points;
}

SweepLintSummary hetsim::lintSweep(const std::vector<SweepPoint> &Points,
                                   unsigned Jobs,
                                   ConsistencyModel Model) {
  SweepLintSummary Summary;
  Summary.Results.resize(Points.size());
  ThreadPool Pool(Jobs);
  Pool.parallelFor(Points.size(), [&](size_t I) {
    SystemConfig Config = Points[I].Config;
    Config.applyOverrides(Points[I].Overrides);
    LoweredProgram Program = lowerKernel(Points[I].Kernel, Config);
    SweepLintResult &R = Summary.Results[I];
    R.System = Config.Name;
    R.Kernel = Points[I].Kernel;
    R.Report = lintProgram(Program, Config);
    R.DynamicallyRaceFree = validateRaceFree(Program, Model);
  });
  return Summary;
}
