//===- analysis/LintFuzzer.h - Differential verifier fuzzing ----*- C++ -*-===//
///
/// \file
/// The randomized differential oracle that closes the loop between the
/// static race verifier (RaceDetector) and the dynamic consistency
/// checker. Each fuzz case picks a shipped design point, applies one
/// seeded ordering mutation to its lowering — a dropped fence, an early
/// (asynchronous) readback, a dropped or duplicated copy, or a co-run
/// sharing an output across agents — and checks the verdicts against a
/// ground truth derived from the mutation construction itself, not from
/// either analysis:
///
///  - a mutation built to break ordering (dropped ownership transfer,
///    undrained asynchronous copy, cross-agent shared output) must be
///    flagged with at least one structurally valid race witness;
///  - a mutation that only removes dead ordering (a wait whose copies a
///    later launch drains anyway) must stay race-free;
///  - a dropped live transfer must keep the program race-free but trip
///    the data-flow linter;
///  - and on *every* case, the soundness contract holds: a program the
///    verifier calls race-free must replay race-free on every explored
///    interleaving of the dynamic checker.
///
/// A witness is validated structurally: same location on both sides, at
/// least one write, different execution resources, genuinely unordered
/// in the happens-before relation the location consults, and a
/// non-empty missing-edge hint plus interleaving narrative.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_LINTFUZZER_H
#define HETSIM_ANALYSIS_LINTFUZZER_H

#include "analysis/RaceDetector.h"

#include <array>
#include <string>
#include <vector>

namespace hetsim {

/// The seeded ordering mutations the fuzzer applies.
enum class MutationKind : uint8_t {
  None,                    ///< Control: unmodified shipped lowering.
  DropDmaWait,             ///< Erase one dma-wait fence (GMAC).
  DropOwnershipToGpu,      ///< Erase one api-acq handoff to the GPU.
  DropOwnershipToCpu,      ///< Erase one api-acq handoff back to the CPU.
  MakeTransferAsync,       ///< Turn the last sync readback into an early
                           ///< (asynchronous) copy nobody drains.
  DropTransfer,            ///< Erase the first (always live) copy.
  DuplicateTransfer,       ///< Insert a redundant copy of one transfer.
  ShareOutputAcrossAgents, ///< Co-run two instances sharing an output.
};
inline constexpr size_t NumMutationKinds = 8;

const char *mutationKindName(MutationKind Kind);

/// What the construction guarantees about the mutated program.
enum class ExpectedVerdict : uint8_t {
  Clean,        ///< Race-free and lint-clean (the control class).
  RaceInjected, ///< The verifier must report at least one race.
  LintExpected, ///< Race-free, but the data-flow linter must object.
  Benign,       ///< Race-free; lint verdict unconstrained.
};

const char *expectedVerdictName(ExpectedVerdict Verdict);

/// One generated case, kept for failure reporting.
struct FuzzCase {
  size_t Index = 0;
  std::string System;
  std::vector<KernelId> Kernels;
  MutationKind Mutation = MutationKind::None;
  ExpectedVerdict Expected = ExpectedVerdict::Clean;
  /// (Agent, step) the mutation touched; npos when not step-anchored.
  size_t MutatedAgent = 0;
  size_t MutatedStep = size_t(-1);

  /// "case 17: GMAC / convolution, drop-dma-wait at a0 step 6".
  std::string describe() const;
};

/// One contract violation.
struct FuzzFailure {
  FuzzCase Case;
  std::string Reason;
};

/// Aggregate result of one fuzz run.
struct FuzzStats {
  size_t Cases = 0;
  /// Cases per mutation kind (indexed by MutationKind).
  std::array<size_t, NumMutationKinds> ByKind{};
  size_t RacesInjected = 0;    ///< Cases the construction guarantees racy.
  size_t RacesFlagged = 0;     ///< ...of which the verifier flagged.
  size_t WitnessesChecked = 0; ///< Structurally validated witnesses.
  size_t DynamicReplays = 0;   ///< Schedules replayed by the oracle.
  std::vector<FuzzFailure> Failures; ///< First few violations, verbatim.

  bool passed() const { return Failures.empty(); }
  /// Multi-line human-readable account (ends with PASS/FAIL line).
  std::string render() const;
};

/// Validates \p Witness against \p Detector's graph and location model.
/// Returns false and fills \p Error on the first structural defect.
bool validateWitness(const RaceDetector &Detector, const RaceWitness &Witness,
                     std::string &Error);

/// Runs \p Cases seeded mutation cases under weak consistency. At most
/// \p MaxFailures violations are recorded in detail (the counters keep
/// counting).
FuzzStats fuzzVerifier(size_t Cases, uint64_t Seed, size_t MaxFailures = 8);

} // namespace hetsim

#endif // HETSIM_ANALYSIS_LINTFUZZER_H
