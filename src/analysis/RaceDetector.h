//===- analysis/RaceDetector.h - Whole-system static races ------*- C++ -*-===//
///
/// \file
/// The cross-agent static race verifier. Where the per-program linter
/// (ProgramLinter.h) checks one lowering against Table I's legality
/// rules, the RaceDetector proves the *whole system* data-race-free: it
/// composes the happens-before graphs of every co-running kernel (one
/// CPU-driver / GPU / DMA timeline set per agent), maps every access to
/// a per-model memory location — object x work-split half x physical
/// copy (host, device, shared-region, ADSM accelerator, or unified) —
/// and reports every conflicting pair of accesses with no ordering path
/// as a race witness: the two accesses, the relation that failed, the
/// missing fence (memory/FenceSemantics.h), and a minimal interleaving
/// that exhibits the race.
///
/// Ordering is model-sensitive: shared-region locations under an
/// ownership discipline consult the *scoped* reachability relation
/// (kernel launch/join excluded — only api-acq edges publish owned
/// data), everything else the full relation. Accesses on the same agent
/// and lane are serialized by their execution resource and never race.
/// Under Strong consistency every access is globally ordered and the
/// detector reports nothing, mirroring the dynamic checker.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_RACEDETECTOR_H
#define HETSIM_ANALYSIS_RACEDETECTOR_H

#include "analysis/HbGraph.h"
#include "core/CorunLowering.h"
#include "memory/FenceSemantics.h"

#include <string>
#include <vector>

namespace hetsim {

/// Builds the per-model visibility table for \p Config (core-level
/// wrapper over FenceSemantics::make).
FenceSemantics fenceSemanticsFor(const SystemConfig &Config,
                                 ConsistencyModel Model);

/// The physical copy of an object a location names.
enum class CopyKind : uint8_t {
  Uni,          ///< The one copy of a unified space.
  Host,         ///< Host-side copy (disjoint/ADSM host memory, staging).
  Dev,          ///< GPU-private copy of a disjoint space (never aliased).
  SharedRegion, ///< The partially shared region (LRB).
  Acc,          ///< ADSM accelerator-resident copy (never aliased).
};

const char *copyKindName(CopyKind Copy);

/// One access the verifier extracted from the composed programs.
struct RaceAccess {
  size_t Node = 0;      ///< HbGraph node the access executes at.
  uint32_t Agent = 0;   ///< Owning agent.
  size_t StepIndex = 0; ///< Step in that agent's program (npos: start/end).
  HbLane Lane = HbLane::Cpu;
  bool IsWrite = false;
  /// Location: "<qualified-object>.<half>@<copy>", e.g. "a0.out.gpu@host".
  std::string Location;
  /// True when the location's ordering uses the scoped relation
  /// (ownership-disciplined shared region).
  bool OwnershipScoped = false;
  /// Rendered form ("a0 s5 dma-completion writes a0.out.gpu@host").
  std::string Description;

  static constexpr size_t npos = static_cast<size_t>(-1);
};

/// One reported race: two unordered conflicting accesses.
struct RaceWitness {
  std::string Location;
  RaceAccess First;  ///< Lower node id.
  RaceAccess Second; ///< Higher node id.
  /// The fence that would have ordered the pair.
  std::string MissingEdge;
  /// A minimal interleaving exhibiting the race, one narrative line per
  /// entry; the last line states the unordered pair.
  std::vector<std::string> Interleaving;
};

/// Everything one verification produced.
struct RaceReport {
  std::vector<RaceWitness> Races;
  /// True when the pair scan hit the witness cap (more races exist).
  bool Truncated = false;

  bool clean() const { return Races.empty(); }
  /// One summary line ("2 races, first on a0.out.gpu@host" / "race-free").
  std::string summary() const;
  /// Full human-readable listing (one block per witness).
  std::string render() const;
};

/// The verifier. Holds a reference to \p Corun: keep it alive for the
/// detector's lifetime.
class RaceDetector {
public:
  explicit RaceDetector(const CorunProgram &Corun,
                        ConsistencyModel Model = ConsistencyModel::Weak);

  const HbGraph &graph() const { return Graph; }
  const FenceSemantics &semantics() const { return Sem; }
  const std::vector<RaceAccess> &accesses() const { return Accesses; }

  /// Runs the pair scan; at most \p MaxRaces witnesses (one per
  /// unordered node pair) are materialized.
  RaceReport detect(size_t MaxRaces = 64) const;

  /// Convenience: wraps \p Program as a one-agent co-run and verifies it.
  static RaceReport analyze(const LoweredProgram &Program,
                            const SystemConfig &Config,
                            ConsistencyModel Model = ConsistencyModel::Weak);

private:
  void buildGraph();
  void collectAccesses();
  void addAccess(size_t Node, uint32_t Agent, size_t StepIndex, HbLane Lane,
                 bool IsWrite, const std::string &Base, const char *Half,
                 CopyKind Copy, const std::string &Point);
  std::string locationName(uint32_t Agent, const std::string &Base,
                           const char *Half, CopyKind Copy) const;
  std::vector<std::string> interleavingFor(const RaceAccess &First,
                                           const RaceAccess &Second) const;

  const CorunProgram &Corun;
  FenceSemantics Sem;
  HbGraph Graph;
  std::vector<RaceAccess> Accesses;
  /// Per agent: node ids of each step, its GPU round, its join, and its
  /// DMA completion (npos when absent).
  struct AgentNodes {
    std::vector<size_t> Step;
    std::vector<size_t> Gpu;
    std::vector<size_t> Join;
    std::vector<size_t> Dma;
  };
  std::vector<AgentNodes> NodesOf;
  size_t StartNode = 0;
  size_t EndNode = 0;
};

} // namespace hetsim

#endif // HETSIM_ANALYSIS_RACEDETECTOR_H
