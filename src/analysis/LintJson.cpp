//===- analysis/LintJson.cpp ----------------------------------------------===//

#include "analysis/LintJson.h"

#include "obs/Json.h"

using namespace hetsim;

namespace {

void writeAccess(JsonWriter &W, const std::string &Key,
                 const RaceAccess &Access) {
  W.beginObject(Key);
  W.value("agent", uint64_t(Access.Agent));
  W.value("step",
          Access.StepIndex == RaceAccess::npos ? -1 : int(Access.StepIndex));
  W.value("lane", hbLaneName(Access.Lane));
  W.value("write", Access.IsWrite);
  W.value("description", Access.Description);
  W.endObject();
}

/// Fetches a required member of \p Kind from \p Obj; nullptr + \p Error
/// otherwise.
const JsonValue *require(const JsonValue &Obj, const char *Key,
                         JsonValue::Kind Kind, const std::string &Where,
                         std::string &Error) {
  const JsonValue *Member = Obj.find(Key);
  if (!Member || Member->Type != Kind) {
    Error = Where + ": missing or mistyped '" + Key + "'";
    return nullptr;
  }
  return Member;
}

bool validateAccess(const JsonValue &Access, const std::string &Where,
                    std::string &Error) {
  if (!Access.isObject())
    return Error = Where + ": access is not an object", false;
  return require(Access, "agent", JsonValue::Kind::Number, Where, Error) &&
         require(Access, "step", JsonValue::Kind::Number, Where, Error) &&
         require(Access, "lane", JsonValue::Kind::String, Where, Error) &&
         require(Access, "write", JsonValue::Kind::Bool, Where, Error) &&
         require(Access, "description", JsonValue::Kind::String, Where,
                 Error);
}

} // namespace

std::string hetsim::writeLintJson(const std::vector<LintJsonPoint> &Points,
                                  ConsistencyModel Model) {
  JsonWriter W;
  W.beginObject();
  W.value("schema", "hetsim-lint-v1");
  W.value("model", consistencyModelName(Model));
  uint64_t Errors = 0, Warnings = 0, Races = 0, Disagreements = 0;
  W.beginArray("points");
  for (const LintJsonPoint &Point : Points) {
    W.beginObject();
    W.value("system", Point.System);
    W.beginArray("kernels");
    for (const std::string &Kernel : Point.Kernels)
      W.value(Kernel);
    W.endArray();
    W.beginArray("shared");
    for (const std::string &Base : Point.SharedBases)
      W.value(Base);
    W.endArray();
    W.value("errors", uint64_t(Point.Report.errorCount()));
    W.value("warnings", uint64_t(Point.Report.warningCount()));
    W.value("race_count", uint64_t(Point.Races.Races.size()));
    W.value("races_truncated", Point.Races.Truncated);
    W.value("dynamically_race_free", Point.DynamicallyRaceFree);
    W.value("disagreement", Point.Disagreement);
    W.beginArray("diagnostics");
    for (const LintDiagnostic &Diag : Point.Report.Diags) {
      W.beginObject();
      W.value("kind", lintKindName(Diag.Kind));
      W.value("severity", lintSeverityName(Diag.Severity));
      W.value("step", uint64_t(Diag.StepIndex));
      W.value("object", Diag.Object);
      W.value("message", Diag.Message);
      W.value("fix", Diag.FixHint);
      W.endObject();
    }
    W.endArray();
    W.beginArray("races");
    for (const RaceWitness &Witness : Point.Races.Races) {
      W.beginObject();
      W.value("location", Witness.Location);
      W.value("missing_edge", Witness.MissingEdge);
      writeAccess(W, "first", Witness.First);
      writeAccess(W, "second", Witness.Second);
      W.beginArray("interleaving");
      for (const std::string &Line : Witness.Interleaving)
        W.value(Line);
      W.endArray();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    Errors += Point.Report.errorCount();
    Warnings += Point.Report.warningCount();
    Races += Point.Races.Races.size();
    Disagreements += Point.Disagreement ? 1 : 0;
  }
  W.endArray();
  W.beginObject("summary");
  W.value("points", uint64_t(Points.size()));
  W.value("errors", Errors);
  W.value("warnings", Warnings);
  W.value("races", Races);
  W.value("disagreements", Disagreements);
  W.endObject();
  W.endObject();
  return W.take();
}

bool hetsim::validateLintJson(const std::string &Text, std::string &Error) {
  JsonValue Doc;
  if (!parseJson(Text, Doc, Error))
    return false;
  const JsonValue *Schema =
      require(Doc, "schema", JsonValue::Kind::String, "document", Error);
  if (!Schema)
    return false;
  if (Schema->StringValue != "hetsim-lint-v1") {
    Error = "unknown schema '" + Schema->StringValue + "'";
    return false;
  }
  if (!require(Doc, "model", JsonValue::Kind::String, "document", Error))
    return false;
  const JsonValue *Points =
      require(Doc, "points", JsonValue::Kind::Array, "document", Error);
  if (!Points)
    return false;

  uint64_t Errors = 0, Warnings = 0, Races = 0, Disagreements = 0;
  for (size_t I = 0; I != Points->Elements.size(); ++I) {
    const JsonValue &Point = Points->Elements[I];
    std::string Where = "point " + std::to_string(I);
    if (!Point.isObject())
      return Error = Where + ": not an object", false;
    if (!require(Point, "system", JsonValue::Kind::String, Where, Error) ||
        !require(Point, "kernels", JsonValue::Kind::Array, Where, Error) ||
        !require(Point, "shared", JsonValue::Kind::Array, Where, Error) ||
        !require(Point, "errors", JsonValue::Kind::Number, Where, Error) ||
        !require(Point, "warnings", JsonValue::Kind::Number, Where, Error) ||
        !require(Point, "race_count", JsonValue::Kind::Number, Where,
                 Error) ||
        !require(Point, "races_truncated", JsonValue::Kind::Bool, Where,
                 Error) ||
        !require(Point, "dynamically_race_free", JsonValue::Kind::Bool,
                 Where, Error) ||
        !require(Point, "disagreement", JsonValue::Kind::Bool, Where,
                 Error))
      return false;
    const JsonValue *Diags =
        require(Point, "diagnostics", JsonValue::Kind::Array, Where, Error);
    const JsonValue *RaceArr =
        require(Point, "races", JsonValue::Kind::Array, Where, Error);
    if (!Diags || !RaceArr)
      return false;
    for (size_t D = 0; D != Diags->Elements.size(); ++D) {
      const JsonValue &Diag = Diags->Elements[D];
      std::string DiagWhere = Where + " diagnostic " + std::to_string(D);
      if (!Diag.isObject())
        return Error = DiagWhere + ": not an object", false;
      if (!require(Diag, "kind", JsonValue::Kind::String, DiagWhere,
                   Error) ||
          !require(Diag, "severity", JsonValue::Kind::String, DiagWhere,
                   Error) ||
          !require(Diag, "step", JsonValue::Kind::Number, DiagWhere,
                   Error) ||
          !require(Diag, "message", JsonValue::Kind::String, DiagWhere,
                   Error))
        return false;
    }
    for (size_t R = 0; R != RaceArr->Elements.size(); ++R) {
      const JsonValue &Witness = RaceArr->Elements[R];
      std::string RaceWhere = Where + " race " + std::to_string(R);
      if (!Witness.isObject())
        return Error = RaceWhere + ": not an object", false;
      if (!require(Witness, "location", JsonValue::Kind::String, RaceWhere,
                   Error) ||
          !require(Witness, "missing_edge", JsonValue::Kind::String,
                   RaceWhere, Error) ||
          !require(Witness, "interleaving", JsonValue::Kind::Array,
                   RaceWhere, Error))
        return false;
      const JsonValue *First = Witness.find("first");
      const JsonValue *Second = Witness.find("second");
      if (!First || !validateAccess(*First, RaceWhere + " first", Error))
        return false;
      if (!Second || !validateAccess(*Second, RaceWhere + " second", Error))
        return false;
    }
    const JsonValue *PErr = Point.find("errors");
    const JsonValue *PWarn = Point.find("warnings");
    const JsonValue *PRaces = Point.find("race_count");
    Errors += uint64_t(PErr->NumberValue);
    Warnings += uint64_t(PWarn->NumberValue);
    Races += uint64_t(PRaces->NumberValue);
    if (Point.find("disagreement")->BoolValue)
      Disagreements += 1;
    if (uint64_t(PRaces->NumberValue) != RaceArr->Elements.size())
      return Error = Where + ": race_count disagrees with races array",
             false;
  }

  const JsonValue *Summary =
      require(Doc, "summary", JsonValue::Kind::Object, "document", Error);
  if (!Summary)
    return false;
  struct {
    const char *Key;
    uint64_t Want;
  } Counts[] = {{"points", Points->Elements.size()},
                {"errors", Errors},
                {"warnings", Warnings},
                {"races", Races},
                {"disagreements", Disagreements}};
  for (const auto &Count : Counts) {
    const JsonValue *Member = require(*Summary, Count.Key,
                                      JsonValue::Kind::Number, "summary",
                                      Error);
    if (!Member)
      return false;
    if (uint64_t(Member->NumberValue) != Count.Want) {
      Error = std::string("summary.") + Count.Key +
              " disagrees with the points array";
      return false;
    }
  }
  return true;
}
