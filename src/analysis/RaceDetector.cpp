//===- analysis/RaceDetector.cpp ------------------------------------------===//

#include "analysis/RaceDetector.h"

#include <map>
#include <set>
#include <sstream>

using namespace hetsim;

FenceSemantics hetsim::fenceSemanticsFor(const SystemConfig &Config,
                                         ConsistencyModel Model) {
  return FenceSemantics::make(Config.AddrSpace, Config.UseOwnership,
                              Config.AsyncCopies, Model);
}

const char *hetsim::copyKindName(CopyKind Copy) {
  switch (Copy) {
  case CopyKind::Uni:
    return "uni";
  case CopyKind::Host:
    return "host";
  case CopyKind::Dev:
    return "dev";
  case CopyKind::SharedRegion:
    return "shared";
  case CopyKind::Acc:
    return "acc";
  }
  return "unknown";
}

namespace {

/// Where each access class lands per address space.
CopyKind initCopy(AddressSpaceKind Space) {
  return Space == AddressSpaceKind::Unified ? CopyKind::Uni : CopyKind::Host;
}

/// Host-side observation/compute copy (serial merges, program end).
CopyKind hostCopy(AddressSpaceKind Space) {
  switch (Space) {
  case AddressSpaceKind::Unified:
    return CopyKind::Uni;
  case AddressSpaceKind::Disjoint:
    return CopyKind::Host;
  case AddressSpaceKind::PartiallyShared:
    return CopyKind::SharedRegion;
  case AddressSpaceKind::Adsm:
    return CopyKind::Host;
  }
  return CopyKind::Host;
}

/// GPU-side compute copy.
CopyKind gpuCopy(AddressSpaceKind Space) {
  switch (Space) {
  case AddressSpaceKind::Unified:
    return CopyKind::Uni;
  case AddressSpaceKind::Disjoint:
    return CopyKind::Dev;
  case AddressSpaceKind::PartiallyShared:
    return CopyKind::SharedRegion;
  case AddressSpaceKind::Adsm:
    return CopyKind::Acc;
  }
  return CopyKind::Dev;
}

/// Source/destination copies of a bulk transfer.
CopyKind transferSource(AddressSpaceKind Space, TransferDir Dir) {
  if (Dir == TransferDir::HostToDevice)
    return initCopy(Space);
  return gpuCopy(Space);
}

CopyKind transferDest(AddressSpaceKind Space, TransferDir Dir) {
  if (Dir == TransferDir::HostToDevice)
    return gpuCopy(Space);
  return hostCopy(Space);
}

/// Device-resident copies belong to exactly one agent's allocation even
/// when the host allocation is shared.
bool isDeviceCopy(CopyKind Copy) {
  return Copy == CopyKind::Dev || Copy == CopyKind::Acc;
}

std::vector<std::string> baseNames(KernelId Kernel, TransferDir Dir) {
  std::vector<std::string> Names;
  for (const DataObjectSpec &Spec : kernelDataObjects(Kernel))
    if (Spec.Dir == Dir)
      Names.push_back(Spec.Name);
  return Names;
}

} // namespace

std::string RaceReport::summary() const {
  if (Races.empty())
    return "race-free";
  std::ostringstream Os;
  Os << Races.size() << (Truncated ? "+" : "") << " race"
     << (Races.size() == 1 && !Truncated ? "" : "s") << ", first on "
     << Races.front().Location;
  return Os.str();
}

std::string RaceReport::render() const {
  std::ostringstream Os;
  for (const RaceWitness &W : Races) {
    Os << "race on " << W.Location << ":\n";
    Os << "  first:  " << W.First.Description << "\n";
    Os << "  second: " << W.Second.Description << "\n";
    Os << "  missing edge: " << W.MissingEdge << "\n";
    Os << "  interleaving:\n";
    for (const std::string &Line : W.Interleaving)
      Os << "    " << Line << "\n";
  }
  if (Truncated)
    Os << "(witness cap reached; more races exist)\n";
  return Os.str();
}

RaceDetector::RaceDetector(const CorunProgram &CorunIn,
                           ConsistencyModel Model)
    : Corun(CorunIn), Sem(fenceSemanticsFor(CorunIn.Config, Model)) {
  buildGraph();
  collectAccesses();
}

void RaceDetector::buildGraph() {
  StartNode = Graph.addNode({HbNodeKind::Start, RaceAccess::npos, 0,
                             HbLane::Cpu});
  NodesOf.resize(Corun.Agents.size());

  for (size_t A = 0; A != Corun.Agents.size(); ++A) {
    const std::vector<ExecStep> &Steps = Corun.Agents[A].Program.Steps;
    AgentNodes &N = NodesOf[A];
    N.Step.assign(Steps.size(), HbGraph::npos);
    N.Gpu.assign(Steps.size(), HbGraph::npos);
    N.Join.assign(Steps.size(), HbGraph::npos);
    N.Dma.assign(Steps.size(), HbGraph::npos);
    auto Agent = uint32_t(A);

    for (size_t I = 0; I != Steps.size(); ++I) {
      N.Step[I] = Graph.addNode({HbNodeKind::Step, I, Agent, HbLane::Cpu});
      if (Steps[I].Kind == ExecKind::ParallelCompute) {
        N.Gpu[I] =
            Graph.addNode({HbNodeKind::GpuRound, I, Agent, HbLane::Gpu});
        N.Join[I] = Graph.addNode({HbNodeKind::Join, I, Agent, HbLane::Cpu});
      }
      if (Steps[I].Kind == ExecKind::Transfer && Steps[I].Async)
        N.Dma[I] = Graph.addNode(
            {HbNodeKind::DmaCompletion, I, Agent, HbLane::Dma});
    }
  }
  EndNode = Graph.addNode({HbNodeKind::End, RaceAccess::npos, 0,
                           HbLane::Cpu});

  for (size_t A = 0; A != Corun.Agents.size(); ++A) {
    const std::vector<ExecStep> &Steps = Corun.Agents[A].Program.Steps;
    AgentNodes &N = NodesOf[A];

    // Driver timeline with fork/join to the global start and end. Each
    // ParallelCompute contributes launch/round/join: the launch edge and
    // join edge carry the control-transfer fence semantics (excluded
    // from the scoped relation), the Step->Join edge is plain driver
    // blocking.
    size_t Prev = StartNode;
    HbEdgeKind Link = HbEdgeKind::AgentFork;
    for (size_t I = 0; I != Steps.size(); ++I) {
      Graph.addEdge(Prev, N.Step[I], Link);
      Link = HbEdgeKind::DriverOrder;
      Prev = N.Step[I];
      if (Steps[I].Kind == ExecKind::ParallelCompute) {
        Graph.addEdge(N.Step[I], N.Gpu[I], HbEdgeKind::KernelLaunch);
        Graph.addEdge(N.Gpu[I], N.Join[I], HbEdgeKind::KernelJoin);
        Graph.addEdge(N.Step[I], N.Join[I], HbEdgeKind::DriverOrder);
        Prev = N.Join[I];
      }
    }
    Graph.addEdge(Prev, EndNode,
                  Steps.empty() ? HbEdgeKind::AgentFork
                                : HbEdgeKind::AgentJoin);

    for (size_t I = 0; I != Steps.size(); ++I) {
      const ExecStep &Step = Steps[I];

      // DMA lane: issue at the step, completion before the next drain
      // point (DmaWait or a synchronizing kernel launch); under ADSM
      // the runtime lazily pages async results in for a serial consumer.
      if (Step.Kind == ExecKind::Transfer && Step.Async) {
        size_t Dma = N.Dma[I];
        Graph.addEdge(N.Step[I], Dma, HbEdgeKind::DmaIssue);
        bool LazyConsumerSeen = false;
        for (size_t J = I + 1; J != Steps.size(); ++J) {
          if (Steps[J].Kind == ExecKind::DmaWait ||
              Steps[J].Kind == ExecKind::ParallelCompute) {
            Graph.addEdge(Dma, N.Step[J], HbEdgeKind::DmaDrain);
            break;
          }
          if (Steps[J].Kind == ExecKind::SerialCompute &&
              Sem.LazySerialPull && !LazyConsumerSeen) {
            Graph.addEdge(Dma, N.Step[J], HbEdgeKind::LazyPull);
            LazyConsumerSeen = true;
          }
        }
      }

      // Ownership edges bind the release/acquire to the GPU-lane round
      // node, so an owned shared-region object is ordered through
      // api-acq even though launch/join are scoped out.
      if (Step.Kind == ExecKind::OwnershipToGpu) {
        for (size_t J = I + 1; J != Steps.size(); ++J) {
          if (Steps[J].Kind == ExecKind::ParallelCompute) {
            Graph.addEdge(N.Step[I], N.Gpu[J], HbEdgeKind::ReleaseAcquire);
            break;
          }
        }
      }
      if (Step.Kind == ExecKind::OwnershipToCpu) {
        for (size_t J = I; J-- != 0;) {
          if (Steps[J].Kind == ExecKind::ParallelCompute) {
            Graph.addEdge(N.Gpu[J], N.Step[I], HbEdgeKind::ReleaseAcquire);
            break;
          }
        }
      }
    }
  }

  Graph.finalize();
}

std::string RaceDetector::locationName(uint32_t Agent,
                                       const std::string &Base,
                                       const char *Half,
                                       CopyKind Copy) const {
  std::string Name;
  if (isDeviceCopy(Copy) && Agent < Corun.Agents.size())
    Name = Corun.Agents[Agent].Name + "." + Base;
  else
    Name = Corun.objectName(Agent, Base);
  Name += ".";
  Name += Half;
  Name += "@";
  Name += copyKindName(Copy);
  return Name;
}

void RaceDetector::addAccess(size_t Node, uint32_t Agent, size_t StepIndex,
                             HbLane Lane, bool IsWrite,
                             const std::string &Base, const char *Half,
                             CopyKind Copy, const std::string &Point) {
  RaceAccess Access;
  Access.Node = Node;
  Access.Agent = Agent;
  Access.StepIndex = StepIndex;
  Access.Lane = Lane;
  Access.IsWrite = IsWrite;
  Access.Location = locationName(Agent, Base, Half, Copy);
  Access.OwnershipScoped =
      Copy == CopyKind::SharedRegion && Sem.OwnershipRequired;
  std::string AgentName =
      Agent < Corun.Agents.size() ? Corun.Agents[Agent].Name : "a?";
  Access.Description = AgentName + " " + Point +
                       (IsWrite ? " writes " : " reads ") + Access.Location;
  Accesses.push_back(std::move(Access));
}

void RaceDetector::collectAccesses() {
  AddressSpaceKind Space = Corun.Config.AddrSpace;

  for (size_t A = 0; A != Corun.Agents.size(); ++A) {
    auto Agent = uint32_t(A);
    const std::vector<ExecStep> &Steps = Corun.Agents[A].Program.Steps;
    std::vector<std::string> Inputs =
        baseNames(Corun.Agents[A].Kernel, TransferDir::HostToDevice);
    std::vector<std::string> Outputs =
        baseNames(Corun.Agents[A].Kernel, TransferDir::DeviceToHost);
    const AgentNodes &N = NodesOf[A];

    // Program entry initializes the inputs in host-visible memory;
    // program exit observes the outputs there.
    for (const std::string &Base : Inputs) {
      addAccess(StartNode, Agent, RaceAccess::npos, HbLane::Cpu, true, Base,
                "cpu", initCopy(Space), "start");
      addAccess(StartNode, Agent, RaceAccess::npos, HbLane::Cpu, true, Base,
                "gpu", initCopy(Space), "start");
    }
    for (const std::string &Base : Outputs) {
      addAccess(EndNode, Agent, RaceAccess::npos, HbLane::Cpu, false, Base,
                "cpu", hostCopy(Space), "end");
      addAccess(EndNode, Agent, RaceAccess::npos, HbLane::Cpu, false, Base,
                "gpu", hostCopy(Space), "end");
    }

    for (size_t I = 0; I != Steps.size(); ++I) {
      const ExecStep &Step = Steps[I];
      std::string SI = "s" + std::to_string(I);
      switch (Step.Kind) {
      case ExecKind::SerialCompute:
        // The merge/finalize pass touches whole output objects (both
        // halves) on the CPU.
        for (const std::string &Base : Outputs) {
          addAccess(N.Step[I], Agent, I, HbLane::Cpu, false, Base, "cpu",
                    hostCopy(Space), SI + " (serial)");
          addAccess(N.Step[I], Agent, I, HbLane::Cpu, false, Base, "gpu",
                    hostCopy(Space), SI + " (serial)");
          addAccess(N.Step[I], Agent, I, HbLane::Cpu, true, Base, "cpu",
                    hostCopy(Space), SI + " (serial)");
          addAccess(N.Step[I], Agent, I, HbLane::Cpu, true, Base, "gpu",
                    hostCopy(Space), SI + " (serial)");
        }
        break;

      case ExecKind::ParallelCompute:
        // CPU half on the driver node between launch and join; GPU half
        // on the GPU-lane round node.
        for (const std::string &Base : Inputs) {
          addAccess(N.Step[I], Agent, I, HbLane::Cpu, false, Base, "cpu",
                    hostCopy(Space), SI + " (parallel cpu-half)");
          addAccess(N.Gpu[I], Agent, I, HbLane::Gpu, false, Base, "gpu",
                    gpuCopy(Space), SI + " (gpu round)");
        }
        for (const std::string &Base : Outputs) {
          addAccess(N.Step[I], Agent, I, HbLane::Cpu, true, Base, "cpu",
                    hostCopy(Space), SI + " (parallel cpu-half)");
          addAccess(N.Gpu[I], Agent, I, HbLane::Gpu, true, Base, "gpu",
                    gpuCopy(Space), SI + " (gpu round)");
        }
        break;

      case ExecKind::Transfer: {
        // Unified spaces have no transfers; a (mutated) one moves
        // nothing. Elsewhere the copy reads the source copy and writes
        // the destination copy — at the completion node when
        // asynchronous, at the issuing step when blocking.
        if (Space == AddressSpaceKind::Unified)
          break;
        size_t Node = Step.Async ? N.Dma[I] : N.Step[I];
        HbLane Lane = Step.Async ? HbLane::Dma : HbLane::Cpu;
        std::string Point =
            SI + (Step.Async ? " (dma-completion)" : " (transfer)");
        CopyKind Src = transferSource(Space, Step.Dir);
        CopyKind Dst = transferDest(Space, Step.Dir);
        for (const std::string &Base : Step.Objects) {
          for (const char *Half : {"cpu", "gpu"}) {
            addAccess(Node, Agent, I, Lane, false, Base, Half, Src, Point);
            addAccess(Node, Agent, I, Lane, true, Base, Half, Dst, Point);
          }
        }
        break;
      }

      case ExecKind::DmaWait:
      case ExecKind::OwnershipToGpu:
      case ExecKind::OwnershipToCpu:
        // Pure synchronization; no data accesses.
        break;

      case ExecKind::PushLocality:
        // The push streams the objects through the shared cache (reads).
        for (const std::string &Base : Step.Objects)
          for (const char *Half : {"cpu", "gpu"})
            addAccess(N.Step[I], Agent, I, HbLane::Cpu, false, Base, Half,
                      hostCopy(Space), SI + " (push)");
        break;
      }
    }
  }
}

std::vector<std::string>
RaceDetector::interleavingFor(const RaceAccess &First,
                              const RaceAccess &Second) const {
  auto AgentName = [&](uint32_t Agent) {
    return Agent < Corun.Agents.size() ? Corun.Agents[Agent].Name
                                       : std::string("a?");
  };
  auto ContextLine = [&](const RaceAccess &Access) -> std::string {
    const HbNode &Node = Graph.nodes()[Access.Node];
    std::string Name = AgentName(Access.Agent);
    switch (Node.Kind) {
    case HbNodeKind::Start:
      return "host initializes the inputs (program start)";
    case HbNodeKind::End:
      return Name + ": driver runs to completion; the host observes the "
                    "outputs";
    case HbNodeKind::DmaCompletion:
      return Name + ": run steps 0.." + std::to_string(Access.StepIndex) +
             "; the async copy issued at s" +
             std::to_string(Access.StepIndex) + " is still in flight";
    case HbNodeKind::GpuRound:
      return Name + ": run steps 0.." + std::to_string(Access.StepIndex) +
             "; the s" + std::to_string(Access.StepIndex) +
             " GPU round executes";
    case HbNodeKind::Step:
    case HbNodeKind::Join:
      return Name + ": run steps 0.." + std::to_string(Access.StepIndex);
    }
    return Name;
  };

  std::vector<std::string> Lines;
  Lines.push_back(ContextLine(First));
  std::string SecondLine = ContextLine(Second);
  if (SecondLine != Lines.back())
    Lines.push_back(SecondLine);
  Lines.push_back("unordered: [" + First.Description + "] and [" +
                  Second.Description +
                  "] may execute in either order (no happens-before path)");
  return Lines;
}

RaceReport RaceDetector::detect(size_t MaxRaces) const {
  RaceReport Report;
  if (Sem.everythingOrdered())
    return Report;

  // Group accesses per location; std::map keeps the scan order (and so
  // the witness list) deterministic at any composition order.
  std::map<std::string, std::vector<const RaceAccess *>> ByLocation;
  for (const RaceAccess &Access : Accesses)
    ByLocation[Access.Location].push_back(&Access);

  std::set<std::pair<size_t, size_t>> Reported;
  for (const auto &Entry : ByLocation) {
    const std::vector<const RaceAccess *> &List = Entry.second;
    for (size_t I = 0; I != List.size(); ++I) {
      for (size_t J = I + 1; J != List.size(); ++J) {
        const RaceAccess *A = List[I];
        const RaceAccess *B = List[J];
        if (!A->IsWrite && !B->IsWrite)
          continue;
        if (A->Node == B->Node)
          continue;
        // Same execution resource: serialized, never a race.
        if (A->Agent == B->Agent && A->Lane == B->Lane)
          continue;
        bool Ordered =
            A->OwnershipScoped
                ? (Graph.reachesScoped(A->Node, B->Node) ||
                   Graph.reachesScoped(B->Node, A->Node))
                : (Graph.reaches(A->Node, B->Node) ||
                   Graph.reaches(B->Node, A->Node));
        if (Ordered)
          continue;
        if (A->Node > B->Node)
          std::swap(A, B);
        if (!Reported.insert({A->Node, B->Node}).second)
          continue;
        if (Report.Races.size() >= MaxRaces) {
          Report.Truncated = true;
          return Report;
        }
        RaceWitness W;
        W.Location = Entry.first;
        W.First = *A;
        W.Second = *B;
        bool DmaInvolved =
            A->Lane == HbLane::Dma || B->Lane == HbLane::Dma;
        W.MissingEdge = Sem.missingEdgeHint(A->OwnershipScoped, DmaInvolved);
        W.Interleaving = interleavingFor(*A, *B);
        Report.Races.push_back(std::move(W));
      }
    }
  }
  return Report;
}

RaceReport RaceDetector::analyze(const LoweredProgram &Program,
                                 const SystemConfig &Config,
                                 ConsistencyModel Model) {
  CorunProgram Corun = corunFromSingle(Program, Config);
  return RaceDetector(Corun, Model).detect();
}
