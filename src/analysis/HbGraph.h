//===- analysis/HbGraph.h - Static happens-before graph ---------*- C++ -*-===//
///
/// \file
/// A static happens-before graph over a lowered program's ExecSteps. The
/// driver executes steps sequentially on the CPU thread, so every step is
/// a node on the driver timeline; the concurrent engines get extra nodes
/// and edges: each ParallelCompute carries implicit kernel-launch/join
/// synchronization (it is one node that drains the copy engine before the
/// GPU starts), and every asynchronous Transfer gets a separate
/// *completion* node on the DMA timeline whose only outgoing edges are
/// the drain points (DmaWait, the next kernel launch, or — under ADSM —
/// the runtime's lazy page-in serving a serial consumer). A completion
/// node no drain point blocks on is an undrained copy; a step that
/// touches an in-flight copy's objects without an incoming drain path is
/// a static race. Ownership steps contribute the release->acquire edges
/// that make weakly consistent rounds legal (Table I).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_HBGRAPH_H
#define HETSIM_ANALYSIS_HBGRAPH_H

#include "core/Lowering.h"
#include "core/SystemConfig.h"

#include <string>
#include <vector>

namespace hetsim {

/// Node kinds of the graph.
enum class HbNodeKind : uint8_t {
  Start,         ///< Program entry (host initializes the inputs).
  Step,          ///< One ExecStep on the driver timeline.
  DmaCompletion, ///< Completion of one asynchronous Transfer step.
  End,           ///< Program exit (host observes the outputs).
};

/// Edge kinds, by the synchronization they model.
enum class HbEdgeKind : uint8_t {
  DriverOrder,    ///< Program order on the sequential driver thread.
  DmaIssue,       ///< Async transfer step -> its completion node.
  DmaDrain,       ///< Completion -> the step that blocks on the engine.
  LazyPull,       ///< Completion -> ADSM serial consumer (paged on demand).
  ReleaseAcquire, ///< Ownership release -> the acquiring round (and back).
};

const char *hbEdgeKindName(HbEdgeKind Kind);

/// One node.
struct HbNode {
  HbNodeKind Kind = HbNodeKind::Step;
  /// Step index for Step and DmaCompletion nodes.
  size_t StepIndex = 0;
};

/// One directed edge between node ids.
struct HbEdge {
  size_t From = 0;
  size_t To = 0;
  HbEdgeKind Kind = HbEdgeKind::DriverOrder;
};

/// The graph. Node ids are dense; Start is 0 and End is nodeCount()-1.
class HbGraph {
public:
  /// Builds the graph for \p Program under \p Config.
  static HbGraph build(const LoweredProgram &Program,
                       const SystemConfig &Config);

  size_t nodeCount() const { return Nodes.size(); }
  const std::vector<HbNode> &nodes() const { return Nodes; }
  const std::vector<HbEdge> &edges() const { return Edges; }

  size_t startNode() const { return 0; }
  size_t endNode() const { return Nodes.size() - 1; }

  /// Node id of step \p StepIndex.
  size_t stepNode(size_t StepIndex) const;

  /// Node id of the completion of the async transfer at \p StepIndex, or
  /// npos when that step has none.
  size_t dmaNode(size_t StepIndex) const;

  /// True when a directed path From -> To exists.
  bool reaches(size_t From, size_t To) const;

  /// Step indices of asynchronous transfers no step ever blocks on (no
  /// DmaDrain edge): the engine may still be busy when the program ends.
  /// An ADSM lazy pull orders the data before its serial consumer but
  /// does not retire the copy, so it does not count as a drain.
  std::vector<size_t> undrainedTransfers() const;

  /// Graphviz rendering (for hetsim_lint --dot).
  std::string renderDot(const LoweredProgram &Program) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

private:
  void addEdge(size_t From, size_t To, HbEdgeKind Kind);
  void computeReachability();

  std::vector<HbNode> Nodes;
  std::vector<HbEdge> Edges;
  std::vector<size_t> StepToNode;
  std::vector<size_t> StepToDma;
  /// Reach[f] is a bitset over target nodes, one word-packed row per
  /// source node (programs are tens of steps, so this stays tiny).
  std::vector<std::vector<uint64_t>> Reach;
};

} // namespace hetsim

#endif // HETSIM_ANALYSIS_HBGRAPH_H
