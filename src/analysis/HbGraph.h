//===- analysis/HbGraph.h - Static happens-before graph ---------*- C++ -*-===//
///
/// \file
/// A static happens-before graph over lowered programs. The driver
/// executes steps sequentially on the CPU thread, so every step is a
/// node on the driver timeline; the concurrent engines get extra nodes
/// and edges: each ParallelCompute carries implicit kernel-launch/join
/// synchronization, and every asynchronous Transfer gets a separate
/// *completion* node on the DMA timeline whose only outgoing edges are
/// the drain points (DmaWait, the next kernel launch, or — under ADSM —
/// the runtime's lazy page-in serving a serial consumer). A completion
/// node no drain point blocks on is an undrained copy; a step that
/// touches an in-flight copy's objects without an incoming drain path is
/// a static race. Ownership steps contribute the release->acquire edges
/// that make weakly consistent rounds legal (Table I).
///
/// Two client shapes share the class: the per-program linter uses the
/// classic build() recipe (one agent, one Step node per ExecStep), and
/// the cross-agent race verifier (analysis/RaceDetector.h) constructs
/// multi-agent graphs through the public builder API — addNode/addEdge
/// per agent and lane, then finalize(). Reachability is kept in two
/// relations: the full one, and a *scoped* one that excludes the
/// KernelLaunch/KernelJoin edges, which is what ordering looks like to a
/// shared-region location under an ownership discipline (the launch does
/// not publish data that api-acq owns — see memory/FenceSemantics.h).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ANALYSIS_HBGRAPH_H
#define HETSIM_ANALYSIS_HBGRAPH_H

#include "core/Lowering.h"
#include "core/SystemConfig.h"

#include <string>
#include <vector>

namespace hetsim {

/// Node kinds of the graph.
enum class HbNodeKind : uint8_t {
  Start,         ///< Program entry (host initializes the inputs).
  Step,          ///< One ExecStep on an agent's driver timeline.
  GpuRound,      ///< GPU-lane execution of one ParallelCompute step.
  Join,          ///< Driver-side join at the end of one ParallelCompute.
  DmaCompletion, ///< Completion of one asynchronous Transfer step.
  End,           ///< Program exit (host observes the outputs).
};

/// The execution resource a node runs on. Accesses on the same agent and
/// lane are serialized by that resource and can never race.
enum class HbLane : uint8_t { Cpu, Gpu, Dma };

const char *hbLaneName(HbLane Lane);

/// Edge kinds, by the synchronization they model.
enum class HbEdgeKind : uint8_t {
  DriverOrder,    ///< Program order on the sequential driver thread.
  DmaIssue,       ///< Async transfer step -> its completion node.
  DmaDrain,       ///< Completion -> the step that blocks on the engine.
  LazyPull,       ///< Completion -> ADSM serial consumer (paged on demand).
  ReleaseAcquire, ///< Ownership release -> the acquiring round (and back).
  KernelLaunch,   ///< Driver launch point -> the round's GPU execution.
  KernelJoin,     ///< The round's GPU execution -> the driver-side join.
  AgentFork,      ///< Global start -> an agent's first node (co-run).
  AgentJoin,      ///< An agent's last node -> the global end (co-run).
};

const char *hbEdgeKindName(HbEdgeKind Kind);

/// One node.
struct HbNode {
  HbNodeKind Kind = HbNodeKind::Step;
  /// Step index for Step, GpuRound, Join, and DmaCompletion nodes.
  size_t StepIndex = 0;
  /// Agent (co-run kernel instance) the node belongs to; 0 for
  /// single-program graphs and the global Start/End.
  uint32_t Agent = 0;
  /// Execution resource.
  HbLane Lane = HbLane::Cpu;
};

/// One directed edge between node ids.
struct HbEdge {
  size_t From = 0;
  size_t To = 0;
  HbEdgeKind Kind = HbEdgeKind::DriverOrder;
};

/// The graph. With build(), node ids are dense with Start == 0 and
/// End == nodeCount()-1; builder-API graphs choose their own layout.
class HbGraph {
public:
  HbGraph() = default;

  /// Builds the classic single-program graph for \p Program under
  /// \p Config (one Step node per ExecStep; finalized).
  static HbGraph build(const LoweredProgram &Program,
                       const SystemConfig &Config);

  /// Appends a node and returns its id (builder API).
  size_t addNode(const HbNode &Node);

  /// Appends an edge. Self and duplicate edges are tolerated: a self
  /// edge is reported by hasCycle() and never by transitiveReduction();
  /// duplicates collapse in the reduction.
  void addEdge(size_t From, size_t To, HbEdgeKind Kind);

  /// Computes the reachability relations. Must be called after the last
  /// addNode/addEdge and before reaches()/reachesScoped(); build() calls
  /// it for you. Safe to call again after further edits.
  void finalize();

  size_t nodeCount() const { return Nodes.size(); }
  const std::vector<HbNode> &nodes() const { return Nodes; }
  const std::vector<HbEdge> &edges() const { return Edges; }

  size_t startNode() const { return 0; }
  size_t endNode() const { return Nodes.size() - 1; }

  /// Node id of step \p StepIndex (build() graphs only).
  size_t stepNode(size_t StepIndex) const;

  /// Node id of the completion of the async transfer at \p StepIndex, or
  /// npos when that step has none (build() graphs only).
  size_t dmaNode(size_t StepIndex) const;

  /// True when a directed path From -> To exists.
  bool reaches(size_t From, size_t To) const;

  /// Like reaches(), but ignoring KernelLaunch/KernelJoin edges: the
  /// ordering an ownership-scoped shared-region location observes.
  bool reachesScoped(size_t From, size_t To) const;

  /// True when the edge set contains a directed cycle (self edges
  /// included). Does not require finalize().
  bool hasCycle() const;

  /// The transitive reduction of a finalized acyclic graph: the unique
  /// minimal edge subset with the same reachability. Self edges and
  /// duplicates are dropped; of parallel edges with different kinds the
  /// first-added survives. The result preserves addEdge order.
  std::vector<HbEdge> transitiveReduction() const;

  /// Step indices of asynchronous transfers no step ever blocks on (no
  /// DmaDrain edge): the engine may still be busy when the program ends.
  /// An ADSM lazy pull orders the data before its serial consumer but
  /// does not retire the copy, so it does not count as a drain.
  std::vector<size_t> undrainedTransfers() const;

  /// Graphviz rendering (for hetsim_lint --dot).
  std::string renderDot(const LoweredProgram &Program) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

private:
  void computeRelation(std::vector<std::vector<uint64_t>> &Rel,
                       bool IncludeLaunchJoin) const;

  std::vector<HbNode> Nodes;
  std::vector<HbEdge> Edges;
  std::vector<size_t> StepToNode;
  std::vector<size_t> StepToDma;
  /// Reach[f] is a bitset over target nodes, one word-packed row per
  /// source node (programs are tens of steps, so this stays tiny).
  std::vector<std::vector<uint64_t>> Reach;
  /// Reachability without KernelLaunch/KernelJoin edges.
  std::vector<std::vector<uint64_t>> ScopedReach;
};

} // namespace hetsim

#endif // HETSIM_ANALYSIS_HBGRAPH_H
