//===- common/Error.cpp ---------------------------------------------------===//

#include "common/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace hetsim;

void hetsim::fatalError(const char *Message) {
  std::fprintf(stderr, "hetsim fatal error: %s\n", Message);
  std::abort();
}

void hetsim::unreachableInternal(const char *Message, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "hetsim unreachable executed at %s:%u: %s\n", File,
               Line, Message ? Message : "");
  std::abort();
}
