//===- common/ThreadPool.cpp ----------------------------------------------===//

#include "common/ThreadPool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

using namespace hetsim;

unsigned ThreadPool::defaultJobs() {
  if (const char *Env = std::getenv("HETSIM_JOBS")) {
    char *End = nullptr;
    long Value = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Value >= 1)
      return static_cast<unsigned>(Value);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw == 0 ? 1 : Hw;
}

ThreadPool::ThreadPool(unsigned Jobs)
    : JobCount(Jobs == 0 ? defaultJobs() : Jobs) {
  if (JobCount <= 1)
    return;
  Workers.reserve(JobCount);
  for (unsigned I = 0; I != JobCount; ++I)
    Workers.emplace_back(
        [this](const std::stop_token &Stop) { workerLoop(Stop); });
}

ThreadPool::~ThreadPool() {
  for (std::jthread &Worker : Workers)
    Worker.request_stop();
  QueueCv.notify_all();
  // jthread destructors join.
}

void ThreadPool::workerLoop(const std::stop_token &Stop) {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      if (!QueueCv.wait(Lock, Stop, [this] { return !Queue.empty(); }))
        return; // Stop requested and queue drained of interest.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (JobCount <= 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }

  /// Shared state of one parallelFor: a dynamic index dispenser plus
  /// completion/exception bookkeeping. Heap-allocated and shared with the
  /// queued tasks so stale queue entries can never dangle.
  struct Batch {
    const std::function<void(size_t)> &Fn;
    size_t N;
    std::atomic<size_t> Next{0};
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Pending; ///< Queued shares still running.
    std::exception_ptr Error;

    Batch(const std::function<void(size_t)> &Work, size_t Count,
          size_t Shares)
        : Fn(Work), N(Count), Pending(Shares) {}

    void drain() {
      for (;;) {
        size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= N)
          return;
        try {
          Fn(I);
        } catch (...) {
          std::lock_guard<std::mutex> Lock(Mutex);
          if (!Error)
            Error = std::current_exception();
          Next.store(N, std::memory_order_relaxed); // Skip the rest.
          return;
        }
      }
    }
  };

  size_t Shares = std::min<size_t>(N, JobCount);
  auto State = std::make_shared<Batch>(Fn, N, Shares);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I != Shares; ++I)
      Queue.push_back([State] {
        State->drain();
        std::lock_guard<std::mutex> BatchLock(State->Mutex);
        if (--State->Pending == 0)
          State->Done.notify_all();
      });
  }
  QueueCv.notify_all();

  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Done.wait(Lock, [&State] { return State->Pending == 0; });
  if (State->Error)
    std::rethrow_exception(State->Error);
}
