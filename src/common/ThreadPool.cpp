//===- common/ThreadPool.cpp ----------------------------------------------===//

#include "common/ThreadPool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

using namespace hetsim;

unsigned ThreadPool::defaultJobs() {
  if (const char *Env = std::getenv("HETSIM_JOBS")) {
    char *End = nullptr;
    long Value = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Value >= 1)
      return static_cast<unsigned>(Value);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw == 0 ? 1 : Hw;
}

ThreadPool::ThreadPool(unsigned Jobs)
    : JobCount(Jobs == 0 ? defaultJobs() : Jobs) {
  if (JobCount <= 1)
    return;
  Workers.reserve(JobCount);
  for (unsigned I = 0; I != JobCount; ++I)
    Workers.emplace_back(
        [this](const std::stop_token &Stop) { workerLoop(Stop); });
}

ThreadPool::~ThreadPool() {
  for (std::jthread &Worker : Workers)
    Worker.request_stop();
  QueueCv.notify_all();
  // jthread destructors join.
}

void ThreadPool::workerLoop(const std::stop_token &Stop) {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      if (!QueueCv.wait(Lock, Stop, [this] { return !Queue.empty(); }))
        return; // Stop requested and queue drained of interest.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  parallelForWorkers(N, [&Fn](size_t I, unsigned) { Fn(I); });
}

void ThreadPool::parallelForWorkers(
    size_t N, const std::function<void(size_t, unsigned)> &Fn) {
  if (N == 0)
    return;
  if (JobCount <= 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I, 0);
    return;
  }

  /// Shared state of one parallelForWorkers: per-worker index ranges with
  /// atomic cursors plus completion/exception bookkeeping. Heap-allocated
  /// and shared with the queued tasks so stale queue entries can never
  /// dangle.
  struct Batch {
    /// One worker's contiguous slice of the index space, drained through
    /// an atomic cursor so thieves and the owner can race safely.
    struct Range {
      std::atomic<size_t> Next{0};
      size_t End = 0;

      size_t left() const {
        size_t Cursor = Next.load(std::memory_order_relaxed);
        return Cursor >= End ? 0 : End - Cursor;
      }
    };

    const std::function<void(size_t, unsigned)> &Fn;
    std::vector<Range> Ranges;
    std::atomic<bool> Abort{false};
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Pending; ///< Queued shares still running.
    std::exception_ptr Error;

    Batch(const std::function<void(size_t, unsigned)> &Work, size_t Count,
          size_t Shares)
        : Fn(Work), Ranges(Shares), Pending(Shares) {
      // Contiguous partition; the first Count % Shares ranges take the
      // extra index.
      size_t Base = Count / Shares, Extra = Count % Shares, Cursor = 0;
      for (size_t I = 0; I != Shares; ++I) {
        size_t Len = Base + (I < Extra ? 1 : 0);
        Ranges[I].Next.store(Cursor, std::memory_order_relaxed);
        Cursor += Len;
        Ranges[I].End = Cursor;
      }
    }

    /// Runs one index out of \p R; false when the range is dry.
    bool runOne(Range &R, unsigned Worker) {
      size_t I = R.Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= R.End)
        return false;
      try {
        Fn(I, Worker);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (!Error)
          Error = std::current_exception();
        Abort.store(true, std::memory_order_relaxed);
      }
      return true;
    }

    void drain(unsigned Worker) {
      // Own range first, then repeatedly steal from the fullest range.
      while (!Abort.load(std::memory_order_relaxed) &&
             runOne(Ranges[Worker], Worker)) {
      }
      while (!Abort.load(std::memory_order_relaxed)) {
        size_t Victim = Ranges.size(), Best = 0;
        for (size_t I = 0; I != Ranges.size(); ++I) {
          size_t Left = Ranges[I].left();
          if (Left > Best) {
            Best = Left;
            Victim = I;
          }
        }
        if (Victim == Ranges.size() || !runOne(Ranges[Victim], Worker))
          break;
      }
    }
  };

  size_t Shares = std::min<size_t>(N, JobCount);
  auto State = std::make_shared<Batch>(Fn, N, Shares);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t I = 0; I != Shares; ++I)
      Queue.push_back([State, I] {
        State->drain(unsigned(I));
        std::lock_guard<std::mutex> BatchLock(State->Mutex);
        if (--State->Pending == 0)
          State->Done.notify_all();
      });
  }
  QueueCv.notify_all();

  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Done.wait(Lock, [&State] { return State->Pending == 0; });
  if (State->Error)
    std::rethrow_exception(State->Error);
}
