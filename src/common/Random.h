//===- common/Random.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
///
/// \file
/// A seeded xorshift64* generator. Every stochastic choice in the simulator
/// (synthetic address streams, random replacement) draws from an explicitly
/// seeded instance so runs are bit-for-bit reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_RANDOM_H
#define HETSIM_COMMON_RANDOM_H

#include <cassert>
#include <cstdint>

namespace hetsim {

/// xorshift64* PRNG; small, fast, and deterministic across platforms.
class XorShiftRng {
public:
  explicit XorShiftRng(uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : State(Seed == 0 ? 0x9E3779B97F4A7C15ull : Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Returns a value uniformly in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Returns a double uniformly in [0, 1).
  double nextDouble() {
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Raw generator state, exposed so fold-verification snapshots can
  /// prove "no draws happened in this window" (state unchanged) without
  /// perturbing the sequence.
  uint64_t state() const { return State; }

private:
  uint64_t State;
};

} // namespace hetsim

#endif // HETSIM_COMMON_RANDOM_H
