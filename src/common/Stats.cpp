//===- common/Stats.cpp ---------------------------------------------------===//

#include "common/Stats.h"

#include "common/StringUtil.h"

#include <bit>

using namespace hetsim;

void StatHistogram::addSample(uint64_t Value) {
  unsigned Bucket = unsigned(std::bit_width(Value));
  if (Bucket >= NumBuckets)
    Bucket = NumBuckets - 1;
  ++Buckets[Bucket];
  if (Count == 0) {
    Min = Value;
    Max = Value;
  } else {
    if (Value < Min)
      Min = Value;
    if (Value > Max)
      Max = Value;
  }
  ++Count;
  Sum += Value;
}

void StatHistogram::reset() { *this = StatHistogram(); }

uint64_t StatHistogram::approxPercentile(double Fraction) const {
  if (Count == 0)
    return 0;
  uint64_t Target = uint64_t(Fraction * double(Count));
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Target)
      return B == 0 ? 0 : (1ull << B) - 1; // Upper edge of bucket B.
  }
  return Max;
}

void StatDistribution::addSample(double Value) {
  if (Count == 0) {
    Min = Value;
    Max = Value;
  } else {
    if (Value < Min)
      Min = Value;
    if (Value > Max)
      Max = Value;
  }
  ++Count;
  Sum += Value;
}

void StatDistribution::reset() {
  Count = 0;
  Sum = 0.0;
  Min = 0.0;
  Max = 0.0;
}

void StatRegistry::increment(const std::string &Name, uint64_t Delta) {
  Counters[Name] += Delta;
}

uint64_t &StatRegistry::counterRef(const std::string &Name) {
  return Counters[Name];
}

StatHistogram &StatRegistry::histogramRef(const std::string &Name) {
  return Histograms[Name];
}

const StatHistogram &StatRegistry::histogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? EmptyHistogram : It->second;
}

std::vector<std::string> StatRegistry::histogramNames() const {
  std::vector<std::string> Names;
  Names.reserve(Histograms.size());
  for (const auto &KV : Histograms)
    Names.push_back(KV.first);
  return Names;
}

void StatRegistry::setCounter(const std::string &Name, uint64_t Value) {
  Counters[Name] = Value;
}

uint64_t StatRegistry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void StatRegistry::addSample(const std::string &Name, double Value) {
  Distributions[Name].addSample(Value);
}

const StatDistribution &
StatRegistry::distribution(const std::string &Name) const {
  auto It = Distributions.find(Name);
  return It == Distributions.end() ? EmptyDistribution : It->second;
}

std::vector<std::string> StatRegistry::counterNames() const {
  std::vector<std::string> Names;
  Names.reserve(Counters.size());
  for (const auto &KV : Counters)
    Names.push_back(KV.first);
  return Names;
}

std::vector<std::pair<std::string, uint64_t>>
StatRegistry::countersWithPrefix(const std::string &Prefix) const {
  std::vector<std::pair<std::string, uint64_t>> Result;
  for (auto It = Counters.lower_bound(Prefix); It != Counters.end(); ++It) {
    if (!startsWith(It->first, Prefix))
      break;
    Result.push_back(*It);
  }
  return Result;
}

void StatRegistry::reset() {
  Counters.clear();
  Distributions.clear();
  Histograms.clear();
}

std::string StatRegistry::renderCounters() const {
  std::string Out;
  for (const auto &KV : Counters) {
    Out += KV.first;
    Out += " = ";
    Out += std::to_string(KV.second);
    Out += '\n';
  }
  return Out;
}

StatRegistry &hetsim::processStats() {
  static StatRegistry Registry;
  return Registry;
}
