//===- common/StringUtil.h - Small string helpers ---------------*- C++ -*-===//
///
/// \file
/// String splitting, trimming, and numeric formatting helpers used across
/// the configuration store and report printers.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_STRINGUTIL_H
#define HETSIM_COMMON_STRINGUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace hetsim {

/// Splits \p Text on \p Sep; empty fields are preserved.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Strips leading/trailing spaces, tabs, and CR/LF.
std::string trim(const std::string &Text);

/// Formats \p Value with \p Precision fractional digits.
std::string formatDouble(double Value, int Precision);

/// Formats \p Value as a percentage string such as "12.3%".
std::string formatPercent(double Fraction, int Precision = 1);

/// Formats a byte count with a binary suffix (e.g. "64KB", "8MB").
std::string formatBytes(uint64_t Bytes);

/// Formats a count with thousands separators ("1,234,567").
std::string formatCount(uint64_t Value);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

} // namespace hetsim

#endif // HETSIM_COMMON_STRINGUTIL_H
