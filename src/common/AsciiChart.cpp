//===- common/AsciiChart.cpp ----------------------------------------------===//

#include "common/AsciiChart.h"

#include "common/StringUtil.h"

#include <algorithm>

using namespace hetsim;

namespace {
size_t maxLabelWidth(const std::vector<std::string> &Labels) {
  size_t Width = 0;
  for (const std::string &Label : Labels)
    Width = std::max(Width, Label.size());
  return Width;
}
} // namespace

std::string hetsim::renderBarChart(const std::vector<ChartBar> &Bars,
                                   unsigned Width, const std::string &Unit) {
  double Max = 0;
  std::vector<std::string> Labels;
  for (const ChartBar &Bar : Bars) {
    Max = std::max(Max, Bar.Value);
    Labels.push_back(Bar.Label);
  }
  size_t LabelWidth = maxLabelWidth(Labels);

  std::string Out;
  for (const ChartBar &Bar : Bars) {
    Out += Bar.Label;
    Out.append(LabelWidth - Bar.Label.size(), ' ');
    Out += " |";
    unsigned Cells =
        Max == 0 ? 0 : unsigned(Bar.Value / Max * double(Width) + 0.5);
    Out.append(Cells, '#');
    Out += ' ';
    Out += formatDouble(Bar.Value, 1);
    Out += Unit;
    Out += '\n';
  }
  return Out;
}

std::string hetsim::renderStackedBarChart(
    const std::vector<StackedBar> &Bars,
    const std::vector<std::string> &ComponentNames, const std::string &Glyphs,
    unsigned Width, const std::string &Unit) {
  double Max = 0;
  std::vector<std::string> Labels;
  for (const StackedBar &Bar : Bars) {
    double Total = 0;
    for (double Component : Bar.Components)
      Total += Component;
    Max = std::max(Max, Total);
    Labels.push_back(Bar.Label);
  }
  size_t LabelWidth = maxLabelWidth(Labels);

  std::string Out;
  for (const StackedBar &Bar : Bars) {
    Out += Bar.Label;
    Out.append(LabelWidth - Bar.Label.size(), ' ');
    Out += " |";
    double Total = 0;
    unsigned Drawn = 0;
    double Running = 0;
    for (double Component : Bar.Components)
      Total += Component;
    for (size_t I = 0; I != Bar.Components.size(); ++I) {
      Running += Bar.Components[I];
      unsigned UpTo =
          Max == 0 ? 0 : unsigned(Running / Max * double(Width) + 0.5);
      char Glyph = Glyphs.empty() ? '#' : Glyphs[I % Glyphs.size()];
      for (; Drawn < UpTo; ++Drawn)
        Out += Glyph;
    }
    Out += ' ';
    Out += formatDouble(Total, 1);
    Out += Unit;
    Out += '\n';
  }

  Out += "legend:";
  for (size_t I = 0; I != ComponentNames.size(); ++I) {
    Out += ' ';
    Out += Glyphs.empty() ? '#' : Glyphs[I % Glyphs.size()];
    Out += '=';
    Out += ComponentNames[I];
  }
  Out += '\n';
  return Out;
}
