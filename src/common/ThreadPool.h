//===- common/ThreadPool.h - Fixed-size worker pool -------------*- C++ -*-===//
///
/// \file
/// A fixed-size pool of std::jthread workers with a parallelFor primitive,
/// used by the sweep engine to fan independent simulations out over cores.
/// The worker count comes from the HETSIM_JOBS environment variable when
/// set, otherwise from std::thread::hardware_concurrency(). A pool of one
/// job runs everything inline on the calling thread, so jobs=1 reproduces
/// the serial harness exactly and golden-value tests can bisect
/// determinism problems between the scheduler and the models.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_THREADPOOL_H
#define HETSIM_COMMON_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetsim {

/// A fixed-size worker pool. Construction spawns the workers (none when
/// the job count is one); destruction stops and joins them. Pools are
/// cheap relative to any simulation, so harnesses create one per sweep.
class ThreadPool {
public:
  /// \p Jobs worker threads; 0 means defaultJobs().
  explicit ThreadPool(unsigned Jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The pool's parallelism (>= 1).
  unsigned jobs() const { return JobCount; }

  /// The environment-configured job count: HETSIM_JOBS when set to a
  /// positive integer, else hardware_concurrency(), never less than 1.
  static unsigned defaultJobs();

  /// Runs Fn(0) .. Fn(N-1), distributing indices dynamically over the
  /// workers, and blocks until every call returned. With one job (or
  /// N <= 1) the calls happen inline, in index order, on this thread.
  /// If any call throws, the first exception is rethrown here after all
  /// in-flight calls finish; remaining unstarted indices are skipped.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Work-stealing variant that also identifies the executing worker.
  /// The index space is split into one contiguous range per worker share
  /// (so neighbouring indices — which tend to share trace-cache keys —
  /// land on the same worker), each range drained through an atomic
  /// cursor; a worker that exhausts its own range steals from the range
  /// with the most work left. \p Fn receives (index, worker) where worker
  /// is a stable id in [0, min(N, jobs())): per-worker telemetry slots
  /// index by it. Inline (worker 0, index order) when jobs() == 1 or
  /// N == 1. Exceptions behave as in parallelFor.
  void parallelForWorkers(size_t N,
                          const std::function<void(size_t, unsigned)> &Fn);

private:
  void workerLoop(const std::stop_token &Stop);

  unsigned JobCount;
  std::mutex QueueMutex;
  std::condition_variable_any QueueCv;
  std::deque<std::function<void()>> Queue;
  std::vector<std::jthread> Workers; ///< Must be declared last: its
                                     ///< destruction joins the workers
                                     ///< while the rest is still alive.
};

} // namespace hetsim

#endif // HETSIM_COMMON_THREADPOOL_H
