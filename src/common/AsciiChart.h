//===- common/AsciiChart.h - Text bar charts --------------------*- C++ -*-===//
///
/// \file
/// Horizontal ASCII bar charts for the figure-regeneration benches, so
/// "Figure 5" prints as an actual figure: simple bars for single series
/// and stacked bars (one glyph per component) for breakdowns.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_ASCIICHART_H
#define HETSIM_COMMON_ASCIICHART_H

#include <string>
#include <vector>

namespace hetsim {

/// One bar of a simple chart.
struct ChartBar {
  std::string Label;
  double Value = 0;
};

/// Renders labeled horizontal bars scaled to \p Width columns; values are
/// printed after each bar with \p Unit appended.
std::string renderBarChart(const std::vector<ChartBar> &Bars,
                           unsigned Width = 50,
                           const std::string &Unit = "");

/// One bar of a stacked chart: the components are drawn in order, each
/// with its own glyph.
struct StackedBar {
  std::string Label;
  std::vector<double> Components;
};

/// Renders stacked bars. \p Glyphs supplies one fill character per
/// component (cycled if short); a legend line maps glyphs to
/// \p ComponentNames.
std::string
renderStackedBarChart(const std::vector<StackedBar> &Bars,
                      const std::vector<std::string> &ComponentNames,
                      const std::string &Glyphs = "#=.", unsigned Width = 50,
                      const std::string &Unit = "");

} // namespace hetsim

#endif // HETSIM_COMMON_ASCIICHART_H
