//===- common/TextTable.cpp -----------------------------------------------===//

#include "common/TextTable.h"

#include "common/StringUtil.h"

#include <algorithm>

using namespace hetsim;

TextTable::TextTable(std::vector<std::string> Columns)
    : Headers(std::move(Columns)) {}

void TextTable::addRow(std::vector<std::string> Cells) {
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

void TextTable::addNumericRow(const std::string &Label,
                              const std::vector<double> &Values,
                              int Precision) {
  std::vector<std::string> Cells;
  Cells.reserve(Values.size() + 1);
  Cells.push_back(Label);
  for (double V : Values)
    Cells.push_back(formatDouble(V, Precision));
  addRow(std::move(Cells));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        Line += "  ";
      Line += Cells[I];
      Line.append(Widths[I] - Cells[I].size(), ' ');
    }
    // Trim trailing padding.
    size_t End = Line.find_last_not_of(' ');
    Line.resize(End == std::string::npos ? 0 : End + 1);
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : 0, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string TextTable::renderCsv() const {
  auto RenderRow = [](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        Line += ',';
      Line += Cells[I];
    }
    Line += '\n';
    return Line;
  };
  std::string Out = RenderRow(Headers);
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
