//===- common/StringUtil.cpp ----------------------------------------------===//

#include "common/StringUtil.h"

#include <cstdio>

using namespace hetsim;

std::vector<std::string> hetsim::splitString(const std::string &Text,
                                             char Sep) {
  std::vector<std::string> Result;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string::npos) {
      Result.push_back(Text.substr(Start));
      return Result;
    }
    Result.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string hetsim::trim(const std::string &Text) {
  const char *Whitespace = " \t\r\n";
  size_t Begin = Text.find_first_not_of(Whitespace);
  if (Begin == std::string::npos)
    return "";
  size_t End = Text.find_last_not_of(Whitespace);
  return Text.substr(Begin, End - Begin + 1);
}

std::string hetsim::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string hetsim::formatPercent(double Fraction, int Precision) {
  return formatDouble(Fraction * 100.0, Precision) + "%";
}

std::string hetsim::formatBytes(uint64_t Bytes) {
  if (Bytes >= (1ull << 30) && Bytes % (1ull << 30) == 0)
    return std::to_string(Bytes >> 30) + "GB";
  if (Bytes >= (1ull << 20) && Bytes % (1ull << 20) == 0)
    return std::to_string(Bytes >> 20) + "MB";
  if (Bytes >= (1ull << 10) && Bytes % (1ull << 10) == 0)
    return std::to_string(Bytes >> 10) + "KB";
  return std::to_string(Bytes) + "B";
}

std::string hetsim::formatCount(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  unsigned Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}

bool hetsim::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}
