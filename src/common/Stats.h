//===- common/Stats.h - Named statistics registry ---------------*- C++ -*-===//
///
/// \file
/// Named counters and distributions. Every hardware model exposes its
/// activity (hits, misses, stalls, transfers) through a StatRegistry so
/// experiments can report and tests can assert on exact behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_STATS_H
#define HETSIM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetsim {

/// A power-of-two-bucketed histogram of unsigned samples (latencies,
/// queue depths). Bucket B counts samples whose value has B significant
/// bits (bucket 0 holds zeros), so 33 buckets cover the full 32-bit
/// latency range with O(1) insertion and no allocation. Obtained once
/// through StatRegistry::histogramRef() and sampled through the returned
/// reference, it adds no per-sample string hashing on hot paths.
class StatHistogram {
public:
  static constexpr unsigned NumBuckets = 33;

  void addSample(uint64_t Value);
  void reset();

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count == 0 ? 0 : Min; }
  uint64_t max() const { return Max; }
  double mean() const { return Count == 0 ? 0.0 : double(Sum) / double(Count); }
  uint64_t bucket(unsigned Index) const {
    return Index < NumBuckets ? Buckets[Index] : 0;
  }
  /// Smallest value v such that at least Fraction of samples are <= the
  /// upper edge of v's bucket (a coarse, bucket-resolution percentile).
  uint64_t approxPercentile(double Fraction) const;

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0;
  uint64_t Max = 0;
};

/// A streaming distribution: count, sum, min, max, mean.
class StatDistribution {
public:
  void addSample(double Value);
  void reset();

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }
  double mean() const { return Count == 0 ? 0.0 : Sum / double(Count); }

private:
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// A registry of named counters and distributions.
///
/// Counter names are dotted lowercase strings ("l1d.miss", "dram.reads").
/// Reading a counter that was never incremented returns zero.
class StatRegistry {
public:
  /// Adds \p Delta to counter \p Name.
  void increment(const std::string &Name, uint64_t Delta = 1);

  /// Returns a stable reference to counter \p Name (created at zero if
  /// absent). Components register their hot counters once and bump the
  /// returned reference directly, so per-access paths never hash a
  /// string. References stay valid until reset() — std::map nodes do not
  /// move.
  uint64_t &counterRef(const std::string &Name);

  /// Returns a stable reference to histogram \p Name (created empty if
  /// absent). Same registration-time contract as counterRef().
  StatHistogram &histogramRef(const std::string &Name);

  /// Returns the histogram \p Name (an empty one if absent).
  const StatHistogram &histogram(const std::string &Name) const;

  /// Returns all histogram names in sorted order.
  std::vector<std::string> histogramNames() const;

  /// Sets counter \p Name to an absolute value.
  void setCounter(const std::string &Name, uint64_t Value);

  /// Returns the value of counter \p Name (0 if absent).
  uint64_t counter(const std::string &Name) const;

  /// Adds a sample to distribution \p Name.
  void addSample(const std::string &Name, double Value);

  /// Returns the distribution \p Name (an empty one if absent).
  const StatDistribution &distribution(const std::string &Name) const;

  /// Returns all counter names in sorted order.
  std::vector<std::string> counterNames() const;

  /// Returns all counters whose name starts with \p Prefix.
  std::vector<std::pair<std::string, uint64_t>>
  countersWithPrefix(const std::string &Prefix) const;

  /// Resets all counters and distributions.
  void reset();

  /// Renders "name = value" lines, one per counter, sorted by name.
  std::string renderCounters() const;

private:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, StatDistribution> Distributions;
  std::map<std::string, StatHistogram> Histograms;
  StatDistribution EmptyDistribution;
  StatHistogram EmptyHistogram;
};

/// Process-wide registry for infrastructure (non-model) statistics:
/// trace-cache hit rates, harness telemetry. Model statistics live in each
/// simulation's own registry; this one aggregates cross-run machinery and
/// is NOT thread-safe for concurrent mutation — publish into it from the
/// coordinating thread (e.g. after a sweep joins its workers).
StatRegistry &processStats();

} // namespace hetsim

#endif // HETSIM_COMMON_STATS_H
