//===- common/Stats.h - Named statistics registry ---------------*- C++ -*-===//
///
/// \file
/// Named counters and distributions. Every hardware model exposes its
/// activity (hits, misses, stalls, transfers) through a StatRegistry so
/// experiments can report and tests can assert on exact behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_STATS_H
#define HETSIM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetsim {

/// A streaming distribution: count, sum, min, max, mean.
class StatDistribution {
public:
  void addSample(double Value);
  void reset();

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }
  double mean() const { return Count == 0 ? 0.0 : Sum / double(Count); }

private:
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// A registry of named counters and distributions.
///
/// Counter names are dotted lowercase strings ("l1d.miss", "dram.reads").
/// Reading a counter that was never incremented returns zero.
class StatRegistry {
public:
  /// Adds \p Delta to counter \p Name.
  void increment(const std::string &Name, uint64_t Delta = 1);

  /// Sets counter \p Name to an absolute value.
  void setCounter(const std::string &Name, uint64_t Value);

  /// Returns the value of counter \p Name (0 if absent).
  uint64_t counter(const std::string &Name) const;

  /// Adds a sample to distribution \p Name.
  void addSample(const std::string &Name, double Value);

  /// Returns the distribution \p Name (an empty one if absent).
  const StatDistribution &distribution(const std::string &Name) const;

  /// Returns all counter names in sorted order.
  std::vector<std::string> counterNames() const;

  /// Returns all counters whose name starts with \p Prefix.
  std::vector<std::pair<std::string, uint64_t>>
  countersWithPrefix(const std::string &Prefix) const;

  /// Resets all counters and distributions.
  void reset();

  /// Renders "name = value" lines, one per counter, sorted by name.
  std::string renderCounters() const;

private:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, StatDistribution> Distributions;
  StatDistribution EmptyDistribution;
};

} // namespace hetsim

#endif // HETSIM_COMMON_STATS_H
