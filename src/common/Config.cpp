//===- common/Config.cpp --------------------------------------------------===//

#include "common/Config.h"

#include "common/Error.h"
#include "common/StringUtil.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace hetsim;

void ConfigStore::set(const std::string &Key, const std::string &Value) {
  assert(!Key.empty() && "config keys must be non-empty");
  Entries[Key] = Value;
}

void ConfigStore::setInt(const std::string &Key, int64_t Value) {
  set(Key, std::to_string(Value));
}

void ConfigStore::setDouble(const std::string &Key, double Value) {
  set(Key, formatDouble(Value, 9));
}

void ConfigStore::setBool(const std::string &Key, bool Value) {
  set(Key, Value ? "true" : "false");
}

bool ConfigStore::has(const std::string &Key) const {
  return Entries.count(Key) != 0;
}

std::string ConfigStore::getString(const std::string &Key,
                                   const std::string &Default) const {
  auto It = Entries.find(Key);
  return It == Entries.end() ? Default : It->second;
}

int64_t ConfigStore::getInt(const std::string &Key, int64_t Default) const {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 0);
}

uint64_t ConfigStore::getUInt(const std::string &Key,
                              uint64_t Default) const {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return Default;
  return std::strtoull(It->second.c_str(), nullptr, 0);
}

double ConfigStore::getDouble(const std::string &Key, double Default) const {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

bool ConfigStore::getBool(const std::string &Key, bool Default) const {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return Default;
  const std::string &V = It->second;
  return V == "1" || V == "true" || V == "yes" || V == "on";
}

std::string ConfigStore::requireString(const std::string &Key) const {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    fatalError(("missing required config key: " + Key).c_str());
  return It->second;
}

int64_t ConfigStore::requireInt(const std::string &Key) const {
  return std::strtoll(requireString(Key).c_str(), nullptr, 0);
}

bool ConfigStore::parseAssignment(const std::string &Text) {
  std::string Trimmed = trim(Text);
  size_t Eq = Trimmed.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  std::string Key = trim(Trimmed.substr(0, Eq));
  std::string Value = trim(Trimmed.substr(Eq + 1));
  if (Key.empty())
    return false;
  set(Key, Value);
  return true;
}

unsigned ConfigStore::parseLines(const std::string &Text) {
  unsigned Applied = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    std::string Stripped = trim(Line.substr(0, Line.find('#')));
    if (Stripped.empty())
      continue;
    if (parseAssignment(Stripped))
      ++Applied;
  }
  return Applied;
}

bool ConfigStore::loadFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::string Text;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  std::fclose(File);
  parseLines(Text);
  return true;
}

void ConfigStore::mergeFrom(const ConfigStore &Other) {
  for (const auto &KV : Other.Entries)
    Entries[KV.first] = KV.second;
}

std::vector<std::string> ConfigStore::keys() const {
  std::vector<std::string> Result;
  Result.reserve(Entries.size());
  for (const auto &KV : Entries)
    Result.push_back(KV.first);
  return Result;
}

void ConfigStore::clear() { Entries.clear(); }
