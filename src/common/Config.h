//===- common/Config.h - Key/value configuration store ----------*- C++ -*-===//
///
/// \file
/// A typed key=value configuration store. Experiment harnesses and system
/// configurations read tunables (latencies, sizes, widths) through this so
/// sweeps can override any parameter by name.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_CONFIG_H
#define HETSIM_COMMON_CONFIG_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetsim {

/// An ordered key=value store with typed accessors.
///
/// Keys are dotted lowercase strings such as "cpu.rob_entries" or
/// "comm.api_pci_base". Lookups with a default never fail; lookups without a
/// default abort if the key is missing, which catches typos in experiment
/// scripts early.
class ConfigStore {
public:
  /// Sets \p Key to the string representation of a value.
  void set(const std::string &Key, const std::string &Value);
  void setInt(const std::string &Key, int64_t Value);
  void setDouble(const std::string &Key, double Value);
  void setBool(const std::string &Key, bool Value);

  /// Returns true if \p Key is present.
  bool has(const std::string &Key) const;

  /// Typed getters with a default for missing keys.
  std::string getString(const std::string &Key,
                        const std::string &Default) const;
  int64_t getInt(const std::string &Key, int64_t Default) const;
  uint64_t getUInt(const std::string &Key, uint64_t Default) const;
  double getDouble(const std::string &Key, double Default) const;
  bool getBool(const std::string &Key, bool Default) const;

  /// Typed getters that abort with a diagnostic when \p Key is missing.
  std::string requireString(const std::string &Key) const;
  int64_t requireInt(const std::string &Key) const;

  /// Parses a single "key=value" assignment; returns false on malformed
  /// input (no '=' or empty key).
  bool parseAssignment(const std::string &Text);

  /// Parses newline-separated assignments; '#' starts a comment. Returns the
  /// number of assignments applied.
  unsigned parseLines(const std::string &Text);

  /// Loads assignments from a file (same syntax as parseLines). Returns
  /// false if the file cannot be read.
  bool loadFile(const std::string &Path);

  /// Merges \p Other into this store; keys in \p Other win.
  void mergeFrom(const ConfigStore &Other);

  /// Returns all keys in sorted order (useful for dumping configurations).
  std::vector<std::string> keys() const;

  /// Removes every entry.
  void clear();

  /// Number of entries.
  size_t size() const { return Entries.size(); }

private:
  std::map<std::string, std::string> Entries;
};

} // namespace hetsim

#endif // HETSIM_COMMON_CONFIG_H
