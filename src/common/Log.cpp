//===- common/Log.cpp -----------------------------------------------------===//

#include "common/Log.h"

#include <cstdarg>
#include <cstdio>

using namespace hetsim;

namespace {
LogLevel CurrentLevel = LogLevel::Warning;

const char *levelTag(LogLevel Level) {
  switch (Level) {
  case LogLevel::Quiet:
    return "quiet";
  case LogLevel::Warning:
    return "warning";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}
} // namespace

void Logger::setLevel(LogLevel Level) { CurrentLevel = Level; }

LogLevel Logger::level() { return CurrentLevel; }

void Logger::log(LogLevel Level, const char *Format, ...) {
  if (static_cast<int>(Level) > static_cast<int>(CurrentLevel))
    return;
  std::fprintf(stderr, "hetsim %s: ", levelTag(Level));
  va_list Args;
  va_start(Args, Format);
  std::vfprintf(stderr, Format, Args);
  va_end(Args);
  std::fputc('\n', stderr);
}
