//===- common/Log.h - Leveled diagnostic logging ----------------*- C++ -*-===//
///
/// \file
/// A tiny printf-style leveled logger. Library code logs through this rather
/// than writing to stdio directly so tests and tools can silence it.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_LOG_H
#define HETSIM_COMMON_LOG_H

namespace hetsim {

/// Log severities, in increasing verbosity order.
enum class LogLevel : int {
  Quiet = 0,
  Warning = 1,
  Info = 2,
  Debug = 3,
};

/// Global logger configuration and sink.
class Logger {
public:
  /// Sets the maximum level that will be emitted.
  static void setLevel(LogLevel Level);

  /// Returns the current maximum level.
  static LogLevel level();

  /// Emits a printf-formatted message at \p Level if enabled.
  static void log(LogLevel Level, const char *Format, ...)
      __attribute__((format(printf, 2, 3)));
};

/// Convenience wrappers.
#define HETSIM_WARN(...)                                                      \
  ::hetsim::Logger::log(::hetsim::LogLevel::Warning, __VA_ARGS__)
#define HETSIM_INFO(...)                                                      \
  ::hetsim::Logger::log(::hetsim::LogLevel::Info, __VA_ARGS__)
#define HETSIM_DEBUG(...)                                                     \
  ::hetsim::Logger::log(::hetsim::LogLevel::Debug, __VA_ARGS__)

} // namespace hetsim

#endif // HETSIM_COMMON_LOG_H
