//===- common/FlatMap.h - Open-addressed hash map ---------------*- C++ -*-===//
///
/// \file
/// A flat open-addressed hash map from 64-bit keys to small values, for the
/// per-access hot paths (page-table walks, store-buffer probes, directory
/// lookups) where std::unordered_map's node allocation and pointer chasing
/// dominate. Linear probing over a power-of-two table keeps a lookup to one
/// multiply, one shift, and a short contiguous scan.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_FLATMAP_H
#define HETSIM_COMMON_FLATMAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hetsim {

/// Open-addressed map: uint64_t key -> \p V. Two key values are reserved
/// as slot markers (~0 and ~0-1); callers never use them (virtual page
/// numbers, line addresses, and store addresses are far below 2^64-2).
/// Erase uses tombstones; a rehash (on growth) drops them.
template <typename V> class FlatU64Map {
public:
  FlatU64Map() { rehash(InitialSlots); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  void clear() {
    Slots.clear();
    Count = 0;
    Tombstones = 0;
    rehash(InitialSlots);
  }

  /// Returns the value mapped to \p Key, or nullptr.
  const V *find(uint64_t Key) const {
    assert(Key < TombstoneKey && "reserved key");
    size_t I = indexOf(Key);
    while (true) {
      const Slot &S = Slots[I];
      if (S.Key == Key)
        return &S.Value;
      if (S.Key == EmptyKey)
        return nullptr;
      I = (I + 1) & Mask;
    }
  }

  V *find(uint64_t Key) {
    return const_cast<V *>(static_cast<const FlatU64Map *>(this)->find(Key));
  }

  bool contains(uint64_t Key) const { return find(Key) != nullptr; }

  /// Returns the value for \p Key, default-constructing it if absent.
  V &operator[](uint64_t Key) {
    assert(Key < TombstoneKey && "reserved key");
    maybeGrow();
    size_t I = indexOf(Key);
    size_t FirstFree = SIZE_MAX;
    while (true) {
      Slot &S = Slots[I];
      if (S.Key == Key)
        return S.Value;
      if (S.Key == TombstoneKey) {
        if (FirstFree == SIZE_MAX)
          FirstFree = I;
      } else if (S.Key == EmptyKey) {
        size_t Target = FirstFree != SIZE_MAX ? FirstFree : I;
        if (Slots[Target].Key == TombstoneKey)
          --Tombstones;
        Slots[Target].Key = Key;
        Slots[Target].Value = V();
        ++Count;
        return Slots[Target].Value;
      }
      I = (I + 1) & Mask;
    }
  }

  /// Removes \p Key if present; returns true when an entry was erased.
  bool erase(uint64_t Key) {
    assert(Key < TombstoneKey && "reserved key");
    size_t I = indexOf(Key);
    while (true) {
      Slot &S = Slots[I];
      if (S.Key == Key) {
        S.Key = TombstoneKey;
        S.Value = V();
        --Count;
        ++Tombstones;
        return true;
      }
      if (S.Key == EmptyKey)
        return false;
      I = (I + 1) & Mask;
    }
  }

  /// Calls \p Fn(key, value&) for every live entry (unspecified order).
  template <typename Fn> void forEach(Fn &&Callback) {
    for (Slot &S : Slots)
      if (S.Key < TombstoneKey)
        Callback(S.Key, S.Value);
  }

private:
  static constexpr uint64_t EmptyKey = ~uint64_t(0);
  static constexpr uint64_t TombstoneKey = ~uint64_t(0) - 1;
  static constexpr size_t InitialSlots = 64;

  struct Slot {
    uint64_t Key = EmptyKey;
    V Value{};
  };

  static uint64_t mix(uint64_t X) {
    // Fibonacci multiplicative hash with a finishing xor-shift: cheap and
    // strong enough to scatter page-aligned keys.
    X *= 0x9E3779B97F4A7C15ull;
    return X ^ (X >> 29);
  }

  size_t indexOf(uint64_t Key) const { return size_t(mix(Key)) & Mask; }

  void maybeGrow() {
    // Grow at 3/4 occupancy (live + tombstones) to bound probe lengths.
    if ((Count + Tombstones) * 4 >= Slots.size() * 3)
      rehash(Slots.size() * 2);
  }

  void rehash(size_t NewSlots) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSlots, Slot{});
    Mask = NewSlots - 1;
    Tombstones = 0;
    for (Slot &S : Old) {
      if (S.Key >= TombstoneKey)
        continue;
      size_t I = indexOf(S.Key);
      while (Slots[I].Key != EmptyKey)
        I = (I + 1) & Mask;
      Slots[I].Key = S.Key;
      Slots[I].Value = std::move(S.Value);
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
  size_t Tombstones = 0;
  size_t Mask = 0;
};

} // namespace hetsim

#endif // HETSIM_COMMON_FLATMAP_H
