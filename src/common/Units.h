//===- common/Units.h - Clock domains and time conversion -------*- C++ -*-===//
///
/// \file
/// Clock-domain definitions for the baseline system (Table II): a 3.5GHz
/// CPU, a 1.5GHz GPU, and an uncore (L3, ring, DRAM controller front end)
/// clocked with the CPU. Cross-domain latency arithmetic converts through
/// nanoseconds.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_UNITS_H
#define HETSIM_COMMON_UNITS_H

#include "common/Types.h"

namespace hetsim {

/// CPU core frequency in Hz (Table II: 3.5GHz out-of-order).
inline constexpr double CpuFreqHz = 3.5e9;

/// GPU core frequency in Hz (Table II: 1.5GHz in-order 8-wide SIMD).
inline constexpr double GpuFreqHz = 1.5e9;

/// PCI-E 2.0 transfer rate used by the api-pci model (Table IV: 16GB/s).
inline constexpr double PciE2BytesPerSec = 16.0e9;

/// DDR3-1333 aggregate bandwidth (Table II: 41.6GB/s over 4 controllers).
inline constexpr double DramBytesPerSec = 41.6e9;

/// Returns the frequency of \p Pu in Hz.
inline constexpr double puFreqHz(PuKind Pu) {
  return Pu == PuKind::Cpu ? CpuFreqHz : GpuFreqHz;
}

/// Converts \p Cycles in the clock of \p Pu to nanoseconds.
inline constexpr double cyclesToNs(PuKind Pu, Cycle Cycles) {
  return double(Cycles) * 1e9 / puFreqHz(Pu);
}

/// Converts \p Ns nanoseconds to (rounded-up) cycles of \p Pu.
inline constexpr Cycle nsToCycles(PuKind Pu, double Ns) {
  double Cycles = Ns * puFreqHz(Pu) / 1e9;
  Cycle Floor = static_cast<Cycle>(Cycles);
  return Cycles > double(Floor) ? Floor + 1 : Floor;
}

/// Converts cycles between PU clock domains, rounding up.
inline constexpr Cycle convertCycles(PuKind From, PuKind To, Cycle Cycles) {
  if (From == To)
    return Cycles;
  return nsToCycles(To, cyclesToNs(From, Cycles));
}

/// Cycles a transfer of \p Bytes occupies at \p BytesPerSec, in the clock
/// domain of \p Pu, rounded up.
inline constexpr Cycle transferCycles(PuKind Pu, uint64_t Bytes,
                                      double BytesPerSec) {
  double Seconds = double(Bytes) / BytesPerSec;
  double Cycles = Seconds * puFreqHz(Pu);
  Cycle Floor = static_cast<Cycle>(Cycles);
  return Cycles > double(Floor) ? Floor + 1 : Floor;
}

} // namespace hetsim

#endif // HETSIM_COMMON_UNITS_H
