//===- common/Types.h - Fundamental simulator types -------------*- C++ -*-===//
///
/// \file
/// Fundamental scalar types and enumerations shared by every HetSim module.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_TYPES_H
#define HETSIM_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace hetsim {

/// A virtual or physical byte address.
using Addr = uint64_t;

/// A cycle count in some clock domain (see common/Units.h for domains).
using Cycle = uint64_t;

/// A signed cycle delta, for latency arithmetic that may briefly go negative.
using CycleDelta = int64_t;

/// Identifier of a processing unit. The paper uses "PU" for either a CPU or
/// a GPU (Section II); all discussions generalize to other accelerators.
enum class PuKind : uint8_t {
  Cpu = 0,
  Gpu = 1,
};

/// Number of distinct PU kinds modeled.
inline constexpr unsigned NumPuKinds = 2;

/// Returns a short human-readable name ("CPU" / "GPU").
inline const char *puKindName(PuKind Kind) {
  return Kind == PuKind::Cpu ? "CPU" : "GPU";
}

/// Returns the other PU: the CPU for the GPU and vice versa.
inline PuKind otherPu(PuKind Kind) {
  return Kind == PuKind::Cpu ? PuKind::Gpu : PuKind::Cpu;
}

/// Index usable for per-PU arrays.
inline unsigned puIndex(PuKind Kind) { return static_cast<unsigned>(Kind); }

/// Cache-line size in bytes; the whole hierarchy uses 64B lines (Table II
/// models a Sandy-Bridge-like CPU and Fermi-like GPU, both 64B/128B-line
/// machines; we pick 64B uniformly).
inline constexpr unsigned CacheLineBytes = 64;

/// Default small page size (CPU).
inline constexpr unsigned SmallPageBytes = 4096;

/// Default large page size (GPU; Section II-A1 notes GPUs can use large
/// pages to accommodate high stream locality).
inline constexpr unsigned LargePageBytes = 64 * 1024;

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
inline constexpr uint64_t alignUp(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// Rounds \p Value down to a multiple of \p Align (a power of two).
inline constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  return Value & ~(Align - 1);
}

/// Returns true if \p Value is a power of two (and non-zero).
inline constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Integer log2 for powers of two.
inline constexpr unsigned log2Exact(uint64_t Value) {
  unsigned Result = 0;
  while (Value > 1) {
    Value >>= 1;
    ++Result;
  }
  return Result;
}

/// Ceiling division for unsigned integers.
inline constexpr uint64_t ceilDiv(uint64_t Num, uint64_t Den) {
  return (Num + Den - 1) / Den;
}

} // namespace hetsim

#endif // HETSIM_COMMON_TYPES_H
