//===- common/WallTimer.h - Wall-clock stopwatch ----------------*- C++ -*-===//
///
/// \file
/// A steady-clock stopwatch for harness telemetry (points/s, cache hit
/// rates, bench timing JSON). Wall-clock only — the simulated time lives
/// in TimeBreakdown, not here.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_WALLTIMER_H
#define HETSIM_COMMON_WALLTIMER_H

#include <chrono>

namespace hetsim {

/// Starts on construction; elapsed*() can be read repeatedly.
class WallTimer {
public:
  WallTimer() : Start(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = std::chrono::steady_clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace hetsim

#endif // HETSIM_COMMON_WALLTIMER_H
