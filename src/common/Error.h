//===- common/Error.h - Fatal errors and unreachable markers ----*- C++ -*-===//
///
/// \file
/// Programmatic-error helpers. HetSim does not use exceptions; invariant
/// violations abort with a message (LLVM-style), and unreachable code paths
/// are marked with hetsim_unreachable().
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_ERROR_H
#define HETSIM_COMMON_ERROR_H

namespace hetsim {

/// Prints "fatal error: <Message>" to stderr and aborts. Use for invariant
/// violations that must be diagnosed even in release builds.
[[noreturn]] void fatalError(const char *Message);

/// Implementation hook for hetsim_unreachable().
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace hetsim

/// Marks a point in code that should never be reached (e.g. after a fully
/// covered switch). Prints location information and aborts.
#define hetsim_unreachable(MSG)                                               \
  ::hetsim::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // HETSIM_COMMON_ERROR_H
