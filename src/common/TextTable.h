//===- common/TextTable.h - Aligned text-table rendering --------*- C++ -*-===//
///
/// \file
/// A column-aligned plain-text table used by the experiment report printers
/// (each bench binary prints the rows of one paper table or figure).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_COMMON_TEXTTABLE_H
#define HETSIM_COMMON_TEXTTABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace hetsim {

/// Builds and renders a table with a header row and aligned columns.
class TextTable {
public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> Headers);

  /// Appends a row; the row is padded or truncated to the column count.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: appends a row starting with a label and numeric cells.
  void addNumericRow(const std::string &Label,
                     const std::vector<double> &Values, int Precision = 3);

  /// Number of data rows.
  size_t rowCount() const { return Rows.size(); }

  /// Column headers and raw cell rows (the regression-check subsystem
  /// parses tables structurally instead of re-reading rendered text).
  const std::vector<std::string> &headers() const { return Headers; }
  const std::vector<std::vector<std::string>> &rows() const { return Rows; }

  /// Renders the table with a separator line under the header.
  std::string render() const;

  /// Renders as comma-separated values (for machine consumption).
  std::string renderCsv() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace hetsim

#endif // HETSIM_COMMON_TEXTTABLE_H
