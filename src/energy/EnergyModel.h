//===- energy/EnergyModel.h - Design-point energy accounting ----*- C++ -*-===//
///
/// \file
/// Event-based energy accounting for a simulated run. The paper's
/// conclusion motivates the partially shared space with "opportunities to
/// optimize hardware and save power/energy"; this model quantifies that:
/// each architectural event (cache access per level, DRAM line, ring hop,
/// executed instruction, transferred byte, page fault) carries an energy
/// cost, and a run's counters are folded into a per-component report.
///
/// Default per-event energies are CACTI-class ballpark numbers for a
/// ~32nm node (the paper's Sandy-Bridge/Fermi era); all are overridable
/// through ConfigStore keys ("energy.l1_pj", ...).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_ENERGY_ENERGYMODEL_H
#define HETSIM_ENERGY_ENERGYMODEL_H

#include "common/Config.h"
#include "common/Types.h"

#include <string>

namespace hetsim {

class MemorySystem;
struct RunResult;

/// Per-event energies in picojoules.
struct EnergyParams {
  double L1AccessPj = 15;       ///< 32KB L1 access.
  double L2AccessPj = 45;       ///< 256KB L2 access.
  double L3AccessPj = 180;      ///< 8MB L3 slice access.
  double DramLinePj = 2600;     ///< 64B DDR3 line (~40pJ/B class).
  double RingHopPj = 25;        ///< One flit-hop on the ring.
  double CpuInstPj = 350;       ///< Big-core instruction (incl. pipeline).
  double GpuInstPj = 120;       ///< SIMD warp instruction, per warp op.
  double ScratchpadPj = 8;      ///< 16KB scratchpad access.
  double PciPerBytePj = 250;    ///< PCI-E 2.0 transfer energy per byte.
  double MemCtrlPerBytePj = 60; ///< On-chip copy energy per byte.
  double PageFaultNj = 80;      ///< Fault handling (nanojoules!).
  double TlbMissPj = 50;        ///< Page walk.

  /// Reads overrides from "energy.*" keys.
  static EnergyParams fromConfig(const ConfigStore &Config);
};

/// Energy of one run, split by component (nanojoules).
struct EnergyReport {
  double CoreNj = 0;      ///< CPU + GPU instruction energy.
  double CacheNj = 0;     ///< L1 + L2 + L3 + scratchpad.
  double DramNj = 0;
  double NetworkNj = 0;   ///< Ring traffic.
  double CommNj = 0;      ///< Transfer fabric + page faults + TLB walks.

  double totalNj() const {
    return CoreNj + CacheNj + DramNj + NetworkNj + CommNj;
  }
  double totalUj() const { return totalNj() / 1e3; }

  /// Renders a one-line summary ("total 12.3uJ: core 40%, ...").
  std::string renderSummary() const;
};

/// Computes the energy of a finished run from the memory system's
/// counters and the run result. \p PciFabric selects the per-byte
/// transfer energy (true: PCI-E; false: on-chip memory-controller path).
EnergyReport computeEnergy(const EnergyParams &Params, MemorySystem &Mem,
                           const RunResult &Result, bool PciFabric);

} // namespace hetsim

#endif // HETSIM_ENERGY_ENERGYMODEL_H
