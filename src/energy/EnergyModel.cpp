//===- energy/EnergyModel.cpp ---------------------------------------------===//

#include "energy/EnergyModel.h"

#include "common/StringUtil.h"
#include "core/HeteroSimulator.h"
#include "memory/MemorySystem.h"

using namespace hetsim;

EnergyParams EnergyParams::fromConfig(const ConfigStore &Config) {
  EnergyParams P;
  P.L1AccessPj = Config.getDouble("energy.l1_pj", P.L1AccessPj);
  P.L2AccessPj = Config.getDouble("energy.l2_pj", P.L2AccessPj);
  P.L3AccessPj = Config.getDouble("energy.l3_pj", P.L3AccessPj);
  P.DramLinePj = Config.getDouble("energy.dram_line_pj", P.DramLinePj);
  P.RingHopPj = Config.getDouble("energy.ring_hop_pj", P.RingHopPj);
  P.CpuInstPj = Config.getDouble("energy.cpu_inst_pj", P.CpuInstPj);
  P.GpuInstPj = Config.getDouble("energy.gpu_inst_pj", P.GpuInstPj);
  P.ScratchpadPj = Config.getDouble("energy.smem_pj", P.ScratchpadPj);
  P.PciPerBytePj = Config.getDouble("energy.pci_byte_pj", P.PciPerBytePj);
  P.MemCtrlPerBytePj =
      Config.getDouble("energy.memctrl_byte_pj", P.MemCtrlPerBytePj);
  P.PageFaultNj = Config.getDouble("energy.pagefault_nj", P.PageFaultNj);
  P.TlbMissPj = Config.getDouble("energy.tlb_miss_pj", P.TlbMissPj);
  return P;
}

std::string EnergyReport::renderSummary() const {
  double Total = totalNj();
  auto Pct = [Total](double Part) {
    return Total == 0 ? std::string("0%")
                      : formatPercent(Part / Total, 0);
  };
  std::string Out = "total " + formatDouble(totalUj(), 1) + "uJ: ";
  Out += "core " + Pct(CoreNj) + ", cache " + Pct(CacheNj) + ", dram " +
         Pct(DramNj) + ", noc " + Pct(NetworkNj) + ", comm " + Pct(CommNj);
  return Out;
}

EnergyReport hetsim::computeEnergy(const EnergyParams &Params,
                                   MemorySystem &Mem, const RunResult &Result,
                                   bool PciFabric) {
  EnergyReport Report;

  // Cores: one event per retired instruction (warp ops on the GPU).
  Report.CoreNj += double(Result.CpuTotal.Insts) * Params.CpuInstPj / 1e3;
  Report.CoreNj += double(Result.GpuTotal.Insts) * Params.GpuInstPj / 1e3;

  // Caches.
  uint64_t L1Accesses =
      Mem.cpuL1().stats().Accesses + Mem.gpuL1().stats().Accesses;
  Report.CacheNj += double(L1Accesses) * Params.L1AccessPj / 1e3;
  Report.CacheNj +=
      double(Mem.cpuL2().stats().Accesses) * Params.L2AccessPj / 1e3;
  Report.CacheNj += double(Mem.l3().stats().Accesses) * Params.L3AccessPj / 1e3;
  uint64_t SmemAccesses =
      Mem.scratchpad().readCount() + Mem.scratchpad().writeCount();
  Report.CacheNj += double(SmemAccesses) * Params.ScratchpadPj / 1e3;

  // DRAM (both devices when discrete).
  uint64_t DramLines =
      Mem.cpuDram().stats().Reads + Mem.cpuDram().stats().Writes;
  if (&Mem.gpuDram() != &Mem.cpuDram())
    DramLines += Mem.gpuDram().stats().Reads + Mem.gpuDram().stats().Writes;
  Report.DramNj += double(DramLines) * Params.DramLinePj / 1e3;

  // Ring traffic.
  Report.NetworkNj +=
      double(Mem.ring().stats().TotalHops) * Params.RingHopPj / 1e3;

  // Communication fabric, faults, and page walks.
  double PerByte = PciFabric ? Params.PciPerBytePj : Params.MemCtrlPerBytePj;
  Report.CommNj += double(Result.TransferredBytes) * PerByte / 1e3;
  Report.CommNj += double(Result.PageFaults) * Params.PageFaultNj;
  uint64_t TlbMisses = Mem.tlb(PuKind::Cpu).stats().Misses +
                       Mem.tlb(PuKind::Gpu).stats().Misses;
  Report.CommNj += double(TlbMisses) * Params.TlbMissPj / 1e3;

  return Report;
}
