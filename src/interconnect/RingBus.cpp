//===- interconnect/RingBus.cpp -------------------------------------------===//

#include "interconnect/RingBus.h"

#include "common/Error.h"

#include <algorithm>
#include <cassert>

using namespace hetsim;

Interconnect::~Interconnect() = default;

RingBus::RingBus(const RingConfig &Cfg) : Config(Cfg) {
  if (Cfg.NumStops < 2)
    fatalError("ring bus needs at least two stops");
  PortFree.resize(Cfg.NumStops, 0);
}

unsigned RingBus::hopCount(unsigned From, unsigned To) const {
  assert(From < Config.NumStops && To < Config.NumStops &&
         "ring stop out of range");
  unsigned Clockwise =
      To >= From ? To - From : Config.NumStops - (From - To);
  unsigned Counter = Config.NumStops - Clockwise;
  return std::min(Clockwise, Counter);
}

Cycle RingBus::traverse(unsigned From, unsigned To, Cycle Now) {
  unsigned Hops = hopCount(From, To);
  Cycle Start =
      std::max(Now, std::min(PortFree[From], Now + Config.MaxQueueDelay));
  Stats.ContentionCycles += Start - Now;
  if (Start > Now)
    ++Stats.ContendedMessages;
  PortFree[From] = Start + Config.InjectOccupancy;
  ++Stats.Messages;
  Stats.TotalHops += Hops;
  return Start + Cycle(Hops) * Config.HopLatency;
}

unsigned RingBus::tileStopFor(Addr LineAddress) const {
  // Four tiles in the baseline; line-interleaved. With fewer stops than
  // the baseline layout, fall back to the last stop.
  unsigned NumTiles = 4;
  unsigned Tile =
      unsigned((LineAddress >> log2Exact(CacheLineBytes)) & (NumTiles - 1));
  unsigned Stop = ring::L3Tile0 + Tile;
  return Stop < Config.NumStops ? Stop : Config.NumStops - 1;
}

void RingBus::resetStats() {
  Stats = RingStats();
  std::fill(PortFree.begin(), PortFree.end(), 0);
}
