//===- interconnect/MeshNoc.h - 2D mesh on-chip network ---------*- C++ -*-===//
///
/// \file
/// A 2D mesh with dimension-ordered (XY) routing as an alternative NoC
/// topology. Stops use the same numbering as the ring (CPU=0, GPU=1,
/// tiles 2..5, memory controller 6) laid out row-major on the grid, so
/// the memory system can swap topologies without renumbering anything.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_INTERCONNECT_MESHNOC_H
#define HETSIM_INTERCONNECT_MESHNOC_H

#include "interconnect/Interconnect.h"

#include <vector>

namespace hetsim {

/// Mesh parameters. Width*Height must cover every stop in use.
struct MeshConfig {
  unsigned Width = 3;
  unsigned Height = 3;
  Cycle HopLatency = 1;
  Cycle InjectOccupancy = 1;
  Cycle MaxQueueDelay = 64;
};

/// The mesh network.
class MeshNoc final : public Interconnect {
public:
  explicit MeshNoc(const MeshConfig &Config = MeshConfig());

  const MeshConfig &config() const { return Config; }

  const char *name() const override { return "mesh"; }

  /// Manhattan distance under XY routing.
  unsigned hopCount(unsigned From, unsigned To) const override;

  Cycle traverse(unsigned From, unsigned To, Cycle Now) override;

  Cycle uncontendedLatency(unsigned From, unsigned To) const override {
    return Cycle(hopCount(From, To)) * Config.HopLatency;
  }

  unsigned tileStopFor(Addr LineAddress) const override;

  void resetStats() override;

  std::vector<Cycle> foldPorts() const override { return PortFree; }

  void applyFoldPorts(const std::vector<Cycle> &S2,
                      const std::vector<Cycle> &S3,
                      uint64_t Rem) override {
    for (size_t I = 0; I != PortFree.size(); ++I)
      PortFree[I] += (S3[I] - S2[I]) * Rem;
  }

  /// Grid coordinates of a stop (row-major numbering).
  unsigned xOf(unsigned Stop) const { return Stop % Config.Width; }
  unsigned yOf(unsigned Stop) const { return Stop / Config.Width; }

private:
  unsigned numStops() const { return Config.Width * Config.Height; }

  MeshConfig Config;
  std::vector<Cycle> PortFree;
};

} // namespace hetsim

#endif // HETSIM_INTERCONNECT_MESHNOC_H
