//===- interconnect/Interconnect.h - On-chip network interface --*- C++ -*-===//
///
/// \file
/// The abstract on-chip network: the uncore (L3 tiles, memory controller)
/// is reached through stops on some topology. Table II's baseline is a
/// ring bus; a 2D mesh is provided as a design alternative (Table I's
/// "interconnection" systems), so NoC topology is one more explorable
/// axis.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_INTERCONNECT_INTERCONNECT_H
#define HETSIM_INTERCONNECT_INTERCONNECT_H

#include "common/Types.h"

#include <vector>

namespace hetsim {

/// Statistics of NoC traffic.
struct NocStats {
  uint64_t Messages = 0;
  uint64_t TotalHops = 0;
  uint64_t ContentionCycles = 0;
  uint64_t ContendedMessages = 0; ///< Messages that waited to inject.
};

/// Abstract topology.
class Interconnect {
public:
  virtual ~Interconnect();

  /// Short topology name ("ring", "mesh").
  virtual const char *name() const = 0;

  /// Hops between two stops along the routing path.
  virtual unsigned hopCount(unsigned From, unsigned To) const = 0;

  /// Sends a message at \p Now; returns arrival cycle including
  /// injection contention.
  virtual Cycle traverse(unsigned From, unsigned To, Cycle Now) = 0;

  /// One-way latency with no contention.
  virtual Cycle uncontendedLatency(unsigned From, unsigned To) const = 0;

  /// Request + reply with no contention.
  Cycle roundTripLatency(unsigned From, unsigned To) const {
    return 2 * uncontendedLatency(From, To);
  }

  /// L3 tile stop that caches \p LineAddress.
  virtual unsigned tileStopFor(Addr LineAddress) const = 0;

  const NocStats &stats() const { return Stats; }
  virtual void resetStats() = 0;

  /// Per-port busy-until cycles, flattened in a topology-defined order.
  /// Used by the memory-phase fold verifier (DESIGN.md §11) to prove a
  /// window left injection state at a per-period fixed point.
  virtual std::vector<Cycle> foldPorts() const = 0;

  /// Advances every port's busy-until cycle by Rem times its per-window
  /// delta (\p S3 minus \p S2, elementwise over foldPorts()).
  virtual void applyFoldPorts(const std::vector<Cycle> &S2,
                              const std::vector<Cycle> &S3,
                              uint64_t Rem) = 0;

  /// Advances traffic counters by Rem times their per-window delta.
  void applyFoldStats(const NocStats &S2, const NocStats &S3,
                      uint64_t Rem) {
    Stats.Messages += (S3.Messages - S2.Messages) * Rem;
    Stats.TotalHops += (S3.TotalHops - S2.TotalHops) * Rem;
    Stats.ContentionCycles +=
        (S3.ContentionCycles - S2.ContentionCycles) * Rem;
    Stats.ContendedMessages +=
        (S3.ContendedMessages - S2.ContendedMessages) * Rem;
  }

protected:
  NocStats Stats;
};

} // namespace hetsim

#endif // HETSIM_INTERCONNECT_INTERCONNECT_H
