//===- interconnect/Interconnect.h - On-chip network interface --*- C++ -*-===//
///
/// \file
/// The abstract on-chip network: the uncore (L3 tiles, memory controller)
/// is reached through stops on some topology. Table II's baseline is a
/// ring bus; a 2D mesh is provided as a design alternative (Table I's
/// "interconnection" systems), so NoC topology is one more explorable
/// axis.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_INTERCONNECT_INTERCONNECT_H
#define HETSIM_INTERCONNECT_INTERCONNECT_H

#include "common/Types.h"

namespace hetsim {

/// Statistics of NoC traffic.
struct NocStats {
  uint64_t Messages = 0;
  uint64_t TotalHops = 0;
  uint64_t ContentionCycles = 0;
  uint64_t ContendedMessages = 0; ///< Messages that waited to inject.
};

/// Abstract topology.
class Interconnect {
public:
  virtual ~Interconnect();

  /// Short topology name ("ring", "mesh").
  virtual const char *name() const = 0;

  /// Hops between two stops along the routing path.
  virtual unsigned hopCount(unsigned From, unsigned To) const = 0;

  /// Sends a message at \p Now; returns arrival cycle including
  /// injection contention.
  virtual Cycle traverse(unsigned From, unsigned To, Cycle Now) = 0;

  /// One-way latency with no contention.
  virtual Cycle uncontendedLatency(unsigned From, unsigned To) const = 0;

  /// Request + reply with no contention.
  Cycle roundTripLatency(unsigned From, unsigned To) const {
    return 2 * uncontendedLatency(From, To);
  }

  /// L3 tile stop that caches \p LineAddress.
  virtual unsigned tileStopFor(Addr LineAddress) const = 0;

  const NocStats &stats() const { return Stats; }
  virtual void resetStats() = 0;

protected:
  NocStats Stats;
};

} // namespace hetsim

#endif // HETSIM_INTERCONNECT_INTERCONNECT_H
