//===- interconnect/MeshNoc.cpp -------------------------------------------===//

#include "interconnect/MeshNoc.h"

#include "common/Error.h"
#include "interconnect/RingBus.h" // Baseline stop numbering.

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace hetsim;

MeshNoc::MeshNoc(const MeshConfig &Cfg) : Config(Cfg) {
  if (Cfg.Width == 0 || Cfg.Height == 0 || Cfg.Width * Cfg.Height < 2)
    fatalError("mesh needs at least two nodes");
  PortFree.resize(numStops(), 0);
}

unsigned MeshNoc::hopCount(unsigned From, unsigned To) const {
  assert(From < numStops() && To < numStops() && "mesh stop out of range");
  unsigned Dx = xOf(From) > xOf(To) ? xOf(From) - xOf(To)
                                    : xOf(To) - xOf(From);
  unsigned Dy = yOf(From) > yOf(To) ? yOf(From) - yOf(To)
                                    : yOf(To) - yOf(From);
  return Dx + Dy;
}

Cycle MeshNoc::traverse(unsigned From, unsigned To, Cycle Now) {
  unsigned Hops = hopCount(From, To);
  Cycle Start =
      std::max(Now, std::min(PortFree[From], Now + Config.MaxQueueDelay));
  Stats.ContentionCycles += Start - Now;
  if (Start > Now)
    ++Stats.ContendedMessages;
  PortFree[From] = Start + Config.InjectOccupancy;
  ++Stats.Messages;
  Stats.TotalHops += Hops;
  return Start + Cycle(Hops) * Config.HopLatency;
}

unsigned MeshNoc::tileStopFor(Addr LineAddress) const {
  unsigned NumTiles = 4;
  unsigned Tile =
      unsigned((LineAddress >> log2Exact(CacheLineBytes)) & (NumTiles - 1));
  unsigned Stop = ring::L3Tile0 + Tile;
  return Stop < numStops() ? Stop : numStops() - 1;
}

void MeshNoc::resetStats() {
  Stats = NocStats();
  std::fill(PortFree.begin(), PortFree.end(), 0);
}
