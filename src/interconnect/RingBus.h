//===- interconnect/RingBus.h - Ring-bus on-chip network --------*- C++ -*-===//
///
/// \file
/// The ring-bus network of Table II connecting the CPU, the GPU, the four
/// L3 tiles, and the memory controller. Messages travel the shorter ring
/// direction, one cycle per hop, and each stop's injection port serializes
/// back-to-back messages (simple occupancy-based contention).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_INTERCONNECT_RINGBUS_H
#define HETSIM_INTERCONNECT_RINGBUS_H

#include "interconnect/Interconnect.h"

#include <vector>

namespace hetsim {

/// Historical alias: ring code predates the Interconnect interface.
using RingStats = NocStats;

/// Well-known ring stops for the baseline system. The ring itself is
/// topology-agnostic; these constants document the baseline layout:
/// CPU, GPU, 4 L3 tiles, memory controller.
namespace ring {
inline constexpr unsigned CpuStop = 0;
inline constexpr unsigned GpuStop = 1;
inline constexpr unsigned L3Tile0 = 2; // Tiles occupy stops 2..5.
inline constexpr unsigned MemCtrlStop = 6;
inline constexpr unsigned BaselineStops = 7;
} // namespace ring

/// Ring parameters.
struct RingConfig {
  unsigned NumStops = ring::BaselineStops;
  Cycle HopLatency = 1;      ///< Cycles per hop.
  Cycle InjectOccupancy = 1; ///< Cycles a message occupies its source port.
  /// Cap on the injection-queue delay one message can inherit (see
  /// DramConfig::MaxQueueDelay for the rationale).
  Cycle MaxQueueDelay = 64;
};

/// The ring network.
class RingBus final : public Interconnect {
public:
  explicit RingBus(const RingConfig &Config = RingConfig());

  const RingConfig &config() const { return Config; }

  const char *name() const override { return "ring"; }

  /// Minimal hop count between two stops (shorter direction).
  unsigned hopCount(unsigned From, unsigned To) const override;

  /// Sends a message from \p From to \p To at \p Now; returns its arrival
  /// cycle including injection contention.
  Cycle traverse(unsigned From, unsigned To, Cycle Now) override;

  Cycle uncontendedLatency(unsigned From, unsigned To) const override {
    return Cycle(hopCount(From, To)) * Config.HopLatency;
  }

  /// L3 tile stop that caches \p LineAddress (line-interleaved).
  unsigned tileStopFor(Addr LineAddress) const override;

  void resetStats() override;

  std::vector<Cycle> foldPorts() const override { return PortFree; }

  void applyFoldPorts(const std::vector<Cycle> &S2,
                      const std::vector<Cycle> &S3,
                      uint64_t Rem) override {
    for (size_t I = 0; I != PortFree.size(); ++I)
      PortFree[I] += (S3[I] - S2[I]) * Rem;
  }

private:
  RingConfig Config;
  std::vector<Cycle> PortFree; // Next free cycle of each injection port.
};

} // namespace hetsim

#endif // HETSIM_INTERCONNECT_RINGBUS_H
