//===- cache/Scratchpad.cpp -----------------------------------------------===//

#include "cache/Scratchpad.h"

#include "common/Error.h"

using namespace hetsim;

Cycle Scratchpad::access(Addr Offset, uint32_t Bytes, bool IsWrite) {
  if (Offset + Bytes > SizeBytes)
    fatalError("scratchpad access out of bounds");
  if (IsWrite)
    ++Writes;
  else
    ++Reads;
  return AccessLatency;
}

unsigned Scratchpad::conflictDegree(Addr Offset, unsigned Lanes,
                                    uint32_t StrideBytes) const {
  if (Lanes <= 1)
    return 1;
  // Words interleave across banks; count lanes per bank. Lanes hitting
  // the SAME word broadcast (no conflict), so track distinct words.
  unsigned Worst = 1;
  for (unsigned Bank = 0; Bank != NumBanks; ++Bank) {
    unsigned Count = 0;
    Addr SeenWord = ~Addr(0);
    for (unsigned Lane = 0; Lane != Lanes; ++Lane) {
      Addr Word = (Offset + Addr(Lane) * StrideBytes) / 4;
      if (Word % NumBanks != Bank)
        continue;
      if (Word == SeenWord)
        continue; // Broadcast.
      SeenWord = Word;
      ++Count;
    }
    if (Count > Worst)
      Worst = Count;
  }
  return Worst;
}

Cycle Scratchpad::warpAccess(Addr Offset, uint32_t BytesPerLane,
                             unsigned Lanes, uint32_t StrideBytes,
                             bool IsWrite) {
  Addr Last = Offset + (Lanes > 0 ? (Lanes - 1) * Addr(StrideBytes) : 0) +
              BytesPerLane;
  if (Last > SizeBytes)
    fatalError("scratchpad access out of bounds");
  if (IsWrite)
    ++Writes;
  else
    ++Reads;
  unsigned Degree = conflictDegree(Offset, Lanes, StrideBytes);
  if (Degree > 1)
    BankConflicts += Degree - 1;
  return AccessLatency * Degree;
}
