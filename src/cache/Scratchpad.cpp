//===- cache/Scratchpad.cpp -----------------------------------------------===//

#include "cache/Scratchpad.h"

#include "common/Error.h"

#include <vector>

using namespace hetsim;

Cycle Scratchpad::access(Addr Offset, uint32_t Bytes, bool IsWrite) {
  if (Offset + Bytes > SizeBytes)
    fatalError("scratchpad access out of bounds");
  if (IsWrite)
    ++Writes;
  else
    ++Reads;
  return AccessLatency;
}

unsigned Scratchpad::conflictDegree(Addr Offset, unsigned Lanes,
                                    uint32_t StrideBytes) const {
  if (Lanes <= 1)
    return 1;
  // The degree only depends on the offset modulo one full bank rotation
  // (4 bytes/word * NumBanks words), so a tiny memo covers the handful of
  // (offset-phase, stride, lanes) shapes a kernel produces.
  Addr OffsetMod = Offset % (Addr(4) * NumBanks);
  size_t Slot =
      (size_t(OffsetMod) * 31 + size_t(StrideBytes) * 7 + Lanes) % Memo.size();
  MemoEntry &E = Memo[Slot];
  if (E.OffsetMod == OffsetMod && E.Stride == StrideBytes && E.Lanes == Lanes)
    return E.Degree;
  unsigned Degree = conflictDegreeUncached(OffsetMod, Lanes, StrideBytes);
  E = {OffsetMod, StrideBytes, Lanes, Degree};
  return Degree;
}

unsigned Scratchpad::conflictDegreeUncached(Addr Offset, unsigned Lanes,
                                            uint32_t StrideBytes) const {
  // Words interleave across banks; count lanes per bank. Lanes hitting
  // the SAME word broadcast (no conflict): a bank counts a lane only when
  // its word differs from the previous lane counted against that bank,
  // mirroring the per-bank lane-order scan this replaces. One pass over
  // the lanes with per-bank running state instead of a banks*lanes sweep.
  constexpr unsigned MaxStackBanks = 64;
  unsigned CountsBuf[MaxStackBanks];
  Addr SeenBuf[MaxStackBanks];
  std::vector<unsigned> CountsHeap;
  std::vector<Addr> SeenHeap;
  unsigned *Counts = CountsBuf;
  Addr *Seen = SeenBuf;
  if (NumBanks > MaxStackBanks) {
    CountsHeap.assign(NumBanks, 0);
    SeenHeap.assign(NumBanks, ~Addr(0));
    Counts = CountsHeap.data();
    Seen = SeenHeap.data();
  } else {
    for (unsigned I = 0; I != NumBanks; ++I) {
      Counts[I] = 0;
      Seen[I] = ~Addr(0);
    }
  }
  unsigned Worst = 1;
  for (unsigned Lane = 0; Lane != Lanes; ++Lane) {
    Addr Word = (Offset + Addr(Lane) * StrideBytes) / 4;
    unsigned Bank = unsigned(Word % NumBanks);
    if (Word == Seen[Bank])
      continue; // Broadcast.
    Seen[Bank] = Word;
    if (++Counts[Bank] > Worst)
      Worst = Counts[Bank];
  }
  return Worst;
}

Cycle Scratchpad::warpAccess(Addr Offset, uint32_t BytesPerLane,
                             unsigned Lanes, uint32_t StrideBytes,
                             bool IsWrite) {
  Addr Last = Offset + (Lanes > 0 ? (Lanes - 1) * Addr(StrideBytes) : 0) +
              BytesPerLane;
  if (Last > SizeBytes)
    fatalError("scratchpad access out of bounds");
  if (IsWrite)
    ++Writes;
  else
    ++Reads;
  unsigned Degree = conflictDegree(Offset, Lanes, StrideBytes);
  if (Degree > 1)
    BankConflicts += Degree - 1;
  return AccessLatency * Degree;
}
