//===- cache/StreamPrefetcher.h - Stride/stream prefetcher ------*- C++ -*-===//
///
/// \file
/// A classic table-based stream prefetcher. It watches the miss/access
/// stream at one cache level, detects constant-stride streams, and once
/// confident issues prefetches Degree lines ahead. Disabled by default in
/// the baseline (Table II has no prefetcher); an ablation quantifies what
/// it buys the streaming kernels.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CACHE_STREAMPREFETCHER_H
#define HETSIM_CACHE_STREAMPREFETCHER_H

#include "common/Types.h"

#include <vector>

namespace hetsim {

/// Prefetcher parameters.
struct PrefetcherConfig {
  unsigned NumStreams = 8;   ///< Tracked concurrent streams.
  unsigned Degree = 2;       ///< Lines prefetched ahead per trigger.
  unsigned MinConfidence = 2; ///< Stride repeats before issuing.
  uint64_t MatchWindowBytes = 4096; ///< Stream-matching proximity.
};

/// Prefetcher statistics.
struct PrefetcherStats {
  uint64_t Lookups = 0;
  uint64_t StreamAllocations = 0;
  uint64_t PrefetchesIssued = 0;
};

/// The stream table.
class StreamPrefetcher {
public:
  explicit StreamPrefetcher(const PrefetcherConfig &Config = {});

  /// Observes a demand access to \p LineAddress and returns the line
  /// addresses to prefetch (empty while training).
  std::vector<Addr> onAccess(Addr LineAddress);

  const PrefetcherStats &stats() const { return Stats; }
  const PrefetcherConfig &config() const { return Config; }

  void reset();

private:
  struct Stream {
    Addr LastLine = 0;
    int64_t StrideLines = 0;
    unsigned Confidence = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  PrefetcherConfig Config;
  PrefetcherStats Stats;
  std::vector<Stream> Streams;
  uint64_t UseClock = 0;
};

} // namespace hetsim

#endif // HETSIM_CACHE_STREAMPREFETCHER_H
