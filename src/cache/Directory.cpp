//===- cache/Directory.cpp ------------------------------------------------===//

#include "cache/Directory.h"

#include <cassert>

using namespace hetsim;

CoherenceAction Directory::onAccess(PuKind Requestor, Addr LineAddress,
                                    bool IsWrite) {
  ++Stats.Lookups;
  CoherenceAction Action;
  Entry &E = Entries[LineAddress];

  const DirState MyExclusive = Requestor == PuKind::Cpu
                                   ? DirState::ExclusiveCpu
                                   : DirState::ExclusiveGpu;
  [[maybe_unused]] const DirState RemoteExclusive =
      Requestor == PuKind::Cpu ? DirState::ExclusiveGpu
                               : DirState::ExclusiveCpu;

  switch (E.State) {
  case DirState::Uncached:
    E.State = MyExclusive;
    E.Dirty = IsWrite;
    break;

  case DirState::SharedBoth:
    if (IsWrite) {
      // Upgrade: invalidate the other sharer.
      Action.InvalidateRemote = true;
      Action.Messages = 2; // invalidate + ack
      E.State = MyExclusive;
      E.Dirty = true;
    }
    break;

  default:
    if (E.State == MyExclusive) {
      if (IsWrite)
        E.Dirty = true;
      break;
    }
    assert(E.State == RemoteExclusive && "inconsistent directory state");
    if (E.Dirty) {
      Action.FetchFromRemote = true;
      ++Stats.RemoteFetches;
      Action.Messages += 2; // fetch request + data reply
    }
    if (IsWrite) {
      Action.InvalidateRemote = true;
      Action.Messages += 2; // invalidate + ack
      E.State = MyExclusive;
      E.Dirty = true;
    } else {
      E.State = DirState::SharedBoth;
      E.Dirty = false; // remote wrote back on the fetch
    }
    break;
  }

  if (Action.InvalidateRemote)
    ++Stats.RemoteInvalidations;
  Stats.Messages += Action.Messages;

  if (E.State == DirState::Uncached)
    Entries.erase(LineAddress);
  return Action;
}

void Directory::onEviction(PuKind Pu, Addr LineAddress) {
  Entry *Found = Entries.find(LineAddress);
  if (!Found)
    return;
  Entry &E = *Found;
  switch (E.State) {
  case DirState::Uncached:
    break;
  case DirState::SharedBoth:
    // The other PU becomes the sole (clean) holder.
    E.State = Pu == PuKind::Cpu ? DirState::ExclusiveGpu
                                : DirState::ExclusiveCpu;
    E.Dirty = false;
    return;
  case DirState::ExclusiveCpu:
    if (Pu != PuKind::Cpu)
      return; // Stale notification; ignore.
    break;
  case DirState::ExclusiveGpu:
    if (Pu != PuKind::Gpu)
      return;
    break;
  }
  Entries.erase(LineAddress);
}

DirState Directory::state(Addr LineAddress) const {
  const Entry *Found = Entries.find(LineAddress);
  return Found ? Found->State : DirState::Uncached;
}

bool Directory::isSharer(PuKind Pu, Addr LineAddress) const {
  switch (state(LineAddress)) {
  case DirState::Uncached:
    return false;
  case DirState::SharedBoth:
    return true;
  case DirState::ExclusiveCpu:
    return Pu == PuKind::Cpu;
  case DirState::ExclusiveGpu:
    return Pu == PuKind::Gpu;
  }
  return false;
}

void Directory::clear() {
  Entries.clear();
  Stats = DirectoryStats();
}
