//===- cache/Scratchpad.h - Software-managed cache --------------*- C++ -*-===//
///
/// \file
/// The GPU's 16KB software-managed cache (Table II). Explicitly managed:
/// accesses are bounds-checked offsets with a fixed latency — there are no
/// misses, which is the defining property the locality-management
/// discussion (Section II-B) relies on.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CACHE_SCRATCHPAD_H
#define HETSIM_CACHE_SCRATCHPAD_H

#include "common/Types.h"

#include <array>

namespace hetsim {

/// A fixed-latency explicitly-managed local store with banked access:
/// like Fermi's shared memory, the store has NumBanks word-interleaved
/// banks, and a warp access whose lanes collide on a bank serializes by
/// the conflict degree.
class Scratchpad {
public:
  Scratchpad(uint64_t Size, Cycle Latency, unsigned Banks = 16)
      : SizeBytes(Size), AccessLatency(Latency), NumBanks(Banks) {}

  /// Latency of a scalar access at \p Offset; aborts on out-of-bounds
  /// offsets (an explicit-management bug in the client).
  Cycle access(Addr Offset, uint32_t Bytes, bool IsWrite);

  /// Latency of a warp access: \p Lanes lanes starting at \p Offset with
  /// \p StrideBytes between lanes. Bank conflicts multiply the base
  /// latency by the worst per-bank collision count.
  Cycle warpAccess(Addr Offset, uint32_t BytesPerLane, unsigned Lanes,
                   uint32_t StrideBytes, bool IsWrite);

  /// Worst-case lanes hitting one bank for a strided warp access.
  unsigned conflictDegree(Addr Offset, unsigned Lanes,
                          uint32_t StrideBytes) const;

  uint64_t sizeBytes() const { return SizeBytes; }
  Cycle latency() const { return AccessLatency; }
  unsigned numBanks() const { return NumBanks; }

  uint64_t readCount() const { return Reads; }
  uint64_t writeCount() const { return Writes; }
  uint64_t bankConflictCount() const { return BankConflicts; }

  /// Bulk-credits \p Accesses folded accesses (closed-form fast path):
  /// \p Reads/Writes/Conflicts are the per-period deltas times the number
  /// of folded periods. Must mirror exactly what per-record replay of the
  /// same accesses would have accumulated.
  void creditFolded(uint64_t FoldedReads, uint64_t FoldedWrites,
                    uint64_t FoldedConflicts) {
    Reads += FoldedReads;
    Writes += FoldedWrites;
    BankConflicts += FoldedConflicts;
  }

private:
  /// Memoized conflict degrees. The degree is a pure function of
  /// (Offset mod 4*NumBanks, StrideBytes, Lanes): adding any multiple of
  /// 4*NumBanks to the offset shifts every lane's word index by the same
  /// multiple of NumBanks, preserving both bank assignment and word
  /// equality. Direct-mapped; collisions just recompute.
  struct MemoEntry {
    Addr OffsetMod = ~Addr(0);
    uint32_t Stride = 0;
    unsigned Lanes = 0;
    unsigned Degree = 0;
  };

  unsigned conflictDegreeUncached(Addr Offset, unsigned Lanes,
                                  uint32_t StrideBytes) const;

  uint64_t SizeBytes;
  Cycle AccessLatency;
  unsigned NumBanks;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t BankConflicts = 0;
  mutable std::array<MemoEntry, 64> Memo{};
};

} // namespace hetsim

#endif // HETSIM_CACHE_SCRATCHPAD_H
