//===- cache/Mshr.cpp -----------------------------------------------------===//

#include "cache/Mshr.h"

#include <algorithm>
#include <cassert>

using namespace hetsim;

void MshrFile::prune(Cycle Now) {
  for (size_t I = 0; I != Entries.size();) {
    if (Entries[I].second <= Now) {
      Entries[I] = Entries.back();
      Entries.pop_back();
    } else {
      ++I;
    }
  }
}

MshrDecision MshrFile::onMiss(Addr LineAddress, Cycle Now, Cycle FillDone,
                              Cycle MinReady) {
  assert(FillDone >= Now && "fill completes in the past");
  MshrDecision Decision;
  prune(Now);

  for (const auto &KV : Entries) {
    if (KV.first != LineAddress)
      continue;
    ++Merged;
    Decision.Merged = true;
    // The merged access still pays its own pre-miss latency (TLB walk,
    // page fault): the in-flight fill supplies the data, not a time
    // machine.
    Decision.ReadyCycle = std::max(KV.second, MinReady);
    return Decision;
  }

  Cycle IssueCycle = Now;
  if (Entries.size() >= Capacity) {
    // Stall until the earliest in-flight fill retires its entry.
    Cycle Earliest = FillDone;
    for (const auto &KV : Entries)
      Earliest = std::min(Earliest, KV.second);
    ++FullStalls;
    Decision.StallCycles = Earliest > Now ? Earliest - Now : 0;
    IssueCycle = Earliest;
    prune(IssueCycle);
  }

  Cycle Done = FillDone + Decision.StallCycles;
  Entries.emplace_back(LineAddress, Done);
  Decision.ReadyCycle = Done;
  return Decision;
}

unsigned MshrFile::inFlight(Cycle Now) {
  prune(Now);
  return unsigned(Entries.size());
}

void MshrFile::clear() {
  Entries.clear();
  Merged = 0;
  FullStalls = 0;
}
