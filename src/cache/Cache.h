//===- cache/Cache.h - Set-associative write-back cache ---------*- C++ -*-===//
///
/// \file
/// A set-associative, write-back, write-allocate cache with pluggable
/// replacement, per-line dirty/coherence state, and the hybrid-locality
/// management bit of Section II-B5 (one tag bit distinguishes explicitly-
/// from implicitly-managed blocks; replacement may not let implicit fills
/// evict explicit blocks).
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CACHE_CACHE_H
#define HETSIM_CACHE_CACHE_H

#include "cache/CacheConfig.h"
#include "common/Random.h"

#include <functional>
#include <vector>

namespace hetsim {

/// MESI coherence state of a cached line.
enum class CohState : uint8_t {
  Invalid = 0,
  Shared,
  Exclusive,
  Modified,
};

/// Result of an access or fill.
struct CacheAccessResult {
  bool Hit = false;
  /// True if the fill was refused because every candidate way holds an
  /// explicitly-managed block (HybridLru only); the access bypasses the
  /// cache.
  bool BypassedFill = false;
  /// True if a dirty line was evicted; its address is VictimAddr.
  bool WroteBack = false;
  Addr VictimAddr = 0;
};

/// Running counters for one cache instance.
struct CacheStats {
  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Writebacks = 0;
  uint64_t BypassedFills = 0;

  double hitRate() const {
    return Accesses == 0 ? 0.0 : double(Hits) / double(Accesses);
  }
};

/// A single cache level.
class Cache {
public:
  explicit Cache(const CacheConfig &Config, uint64_t RngSeed = 1);

  const CacheConfig &config() const { return Config; }
  const CacheStats &stats() const { return Stats; }

  /// Performs a demand access to \p Address. On a miss the line is filled
  /// (write-allocate), possibly evicting a victim. \p MarkExplicit tags the
  /// (filled or hit) line as explicitly managed (hybrid locality).
  CacheAccessResult access(Addr Address, bool IsWrite,
                           bool MarkExplicit = false);

  /// Returns true if \p Address is present (no state change).
  bool probe(Addr Address) const;

  /// Returns the coherence state of \p Address (Invalid if absent).
  CohState lineState(Addr Address) const;

  /// Sets the coherence state of a present line.
  void setLineState(Addr Address, CohState State);

  /// Invalidates \p Address if present; returns true if the line was dirty
  /// (the caller owes a writeback).
  bool invalidate(Addr Address);

  /// Downgrades \p Address to Shared if present; returns true if the line
  /// was dirty (Modified -> writeback needed).
  bool downgradeToShared(Addr Address);

  /// Invalidates every line, invoking \p WritebackFn for each dirty one.
  void flushAll(const std::function<void(Addr)> &WritebackFn);

  /// Number of valid lines currently resident.
  unsigned residentLines() const;

  /// Number of explicitly-managed resident lines.
  unsigned residentExplicitLines() const;

  /// Resets statistics (contents are kept).
  void resetStats() { Stats = CacheStats(); }

  /// Credits \p FoldedHits all-hit accesses without touching any line:
  /// the closed-form retire path uses this after proving a window repeats
  /// with every access hitting. \p StampAdvance moves the LRU clock
  /// exactly as the per-access hit path (stamp = NextStamp++) would have.
  void creditFoldedHits(uint64_t FoldedHits, uint64_t StampAdvance) {
    Stats.Accesses += FoldedHits;
    Stats.Hits += FoldedHits;
    NextStamp += StampAdvance;
  }

  /// Advances the LRU stamp of the (present) line holding \p Address by
  /// \p Delta — the folded equivalent of re-touching it once per window
  /// while the stamp clock advances uniformly. No-op if absent.
  void advanceLineStamp(Addr Address, uint64_t Delta) {
    if (Line *L = findLine(Address))
      L->LruStamp += Delta;
  }

  /// Full-state snapshot for the memory-phase fold verifier. Per-line
  /// tag/state bits plus LRU stamps, the stamp clock, the replacement
  /// RNG state, and counters — enough to prove a window left the cache
  /// at a per-period fixed point (see DESIGN.md §11).
  struct FoldSnap {
    struct LineSnap {
      Addr Tag = 0;
      uint64_t LruStamp = 0;
      CohState State = CohState::Invalid;
      bool Valid = false;
      bool Dirty = false;
      bool Explicit = false;
    };
    std::vector<LineSnap> Lines; // Sets x Ways, row-major.
    uint64_t NextStamp = 0;
    uint64_t RngState = 0;
    CacheStats Stats;
    unsigned Ways = 0;
  };

  FoldSnap foldSnapshot() const;

  /// Replays \p Rem more verified steady windows in closed form: every
  /// line stamp, the stamp clock, and the counters advance by Rem times
  /// their per-window delta (\p S3 minus \p S2). Only valid after the
  /// fold verifier accepted the S1/S2/S3 snapshots.
  void applyFold(const FoldSnap &S2, const FoldSnap &S3, uint64_t Rem);

private:
  struct Line {
    Addr Tag = 0;
    uint64_t LruStamp = 0;
    CohState State = CohState::Invalid;
    bool Valid = false;
    bool Dirty = false;
    bool Explicit = false;
  };

  unsigned setIndex(Addr Address) const;
  Addr tagOf(Addr Address) const;
  Addr lineAddr(Addr Address) const;
  Line *findLine(Addr Address);
  const Line *findLine(Addr Address) const;
  /// Picks a victim way in \p SetBase..SetBase+Ways; returns -1 when an
  /// implicit fill finds only explicit blocks (bypass).
  int chooseVictim(unsigned SetBase, bool FillIsExplicit);

  CacheConfig Config;
  std::vector<Line> Lines; // Sets x Ways, row-major.
  CacheStats Stats;
  XorShiftRng Rng;
  uint64_t NextStamp = 1;
  unsigned NumSets;
  unsigned LineShift;
};

} // namespace hetsim

#endif // HETSIM_CACHE_CACHE_H
