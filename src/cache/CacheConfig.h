//===- cache/CacheConfig.h - Cache geometry and timing ----------*- C++ -*-===//
///
/// \file
/// Geometry/latency description of one cache. Table II latencies come from
/// CACTI 6.5 in the paper; we take the table values directly.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CACHE_CACHECONFIG_H
#define HETSIM_CACHE_CACHECONFIG_H

#include "common/Types.h"

#include <string>

namespace hetsim {

/// Replacement policies supported by Cache.
enum class ReplacementKind : uint8_t {
  Lru,
  Random,
  /// LRU with the hybrid locality rule of Section II-B5: an
  /// implicitly-managed fill may not evict an explicitly-managed block, and
  /// explicit blocks are capped below the full cache size.
  HybridLru,
};

/// Geometry and timing of one cache level.
struct CacheConfig {
  std::string Name = "cache";
  uint64_t SizeBytes = 32 * 1024;
  unsigned Ways = 8;
  unsigned LineBytes = CacheLineBytes;
  Cycle HitLatency = 2;
  ReplacementKind Replacement = ReplacementKind::Lru;

  /// For HybridLru: maximum explicitly-managed ways per set. Section II-B5
  /// requires the explicitly managed size to be smaller than the physical
  /// cache, so the default leaves one way for implicit blocks.
  unsigned MaxExplicitWays = 0; // 0 = Ways - 1.

  /// Number of sets implied by the geometry.
  unsigned numSets() const {
    return unsigned(SizeBytes / (uint64_t(Ways) * LineBytes));
  }

  /// Validates the geometry (power-of-two sets, nonzero ways).
  bool isValid() const {
    if (SizeBytes == 0 || Ways == 0 || LineBytes == 0)
      return false;
    if (SizeBytes % (uint64_t(Ways) * LineBytes) != 0)
      return false;
    return isPowerOf2(numSets()) && isPowerOf2(LineBytes);
  }

  /// Named presets from Table II.
  static CacheConfig cpuL1D();
  static CacheConfig cpuL1I();
  static CacheConfig cpuL2();
  static CacheConfig gpuL1D();
  static CacheConfig gpuL1I();
  static CacheConfig sharedL3();
};

} // namespace hetsim

#endif // HETSIM_CACHE_CACHECONFIG_H
