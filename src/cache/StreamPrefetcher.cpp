//===- cache/StreamPrefetcher.cpp -----------------------------------------===//

#include "cache/StreamPrefetcher.h"

#include <cstdlib>

using namespace hetsim;

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &Cfg)
    : Config(Cfg) {
  Streams.resize(Config.NumStreams);
}

std::vector<Addr> StreamPrefetcher::onAccess(Addr LineAddress) {
  ++Stats.Lookups;
  ++UseClock;
  Addr Line = LineAddress / CacheLineBytes;

  // Find the closest tracked stream within the match window.
  Stream *Best = nullptr;
  uint64_t BestDistance = Config.MatchWindowBytes / CacheLineBytes + 1;
  for (Stream &S : Streams) {
    if (!S.Valid)
      continue;
    uint64_t Distance = Line > S.LastLine ? Line - S.LastLine
                                          : S.LastLine - Line;
    if (Distance < BestDistance) {
      BestDistance = Distance;
      Best = &S;
    }
  }

  if (!Best) {
    // Allocate a new stream over the LRU entry.
    Stream *Victim = &Streams[0];
    for (Stream &S : Streams) {
      if (!S.Valid) {
        Victim = &S;
        break;
      }
      if (S.LastUse < Victim->LastUse)
        Victim = &S;
    }
    *Victim = Stream();
    Victim->Valid = true;
    Victim->LastLine = Line;
    Victim->LastUse = UseClock;
    ++Stats.StreamAllocations;
    return {};
  }

  int64_t Stride = int64_t(Line) - int64_t(Best->LastLine);
  Best->LastUse = UseClock;
  if (Stride == 0)
    return {}; // Same line again; nothing to learn.

  if (Stride == Best->StrideLines) {
    if (Best->Confidence < 1000)
      ++Best->Confidence;
  } else {
    Best->StrideLines = Stride;
    Best->Confidence = 1;
  }
  Best->LastLine = Line;

  if (Best->Confidence < Config.MinConfidence)
    return {};

  std::vector<Addr> Prefetches;
  Prefetches.reserve(Config.Degree);
  for (unsigned I = 1; I <= Config.Degree; ++I) {
    int64_t Target = int64_t(Line) + Best->StrideLines * int64_t(I);
    if (Target <= 0)
      continue;
    Prefetches.push_back(Addr(Target) * CacheLineBytes);
  }
  Stats.PrefetchesIssued += Prefetches.size();
  return Prefetches;
}

void StreamPrefetcher::reset() {
  for (Stream &S : Streams)
    S = Stream();
  Stats = PrefetcherStats();
  UseClock = 0;
}
