//===- cache/Directory.h - MESI directory coherence controller --*- C++ -*-===//
///
/// \file
/// A directory-based MESI controller for lines shared between the CPU and
/// GPU private hierarchies. The paper's unified/partially-shared options
/// can maintain coherent data by hardware (Section II-A); this directory
/// is that hardware. It tracks sharers per line and tells the memory
/// system which remote invalidations/fetches an access requires.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CACHE_DIRECTORY_H
#define HETSIM_CACHE_DIRECTORY_H

#include "common/FlatMap.h"
#include "common/Types.h"

#include <algorithm>
#include <vector>

namespace hetsim {

/// What the requesting PU's access requires of the rest of the system.
struct CoherenceAction {
  /// The other PU holds the line and must invalidate it (write request).
  bool InvalidateRemote = false;
  /// The other PU holds the line dirty; data comes from its cache, which
  /// also downgrades (read) or invalidates (write).
  bool FetchFromRemote = false;
  /// Protocol messages exchanged (each one crosses the ring).
  unsigned Messages = 0;
};

/// Directory states for a tracked line.
enum class DirState : uint8_t {
  Uncached = 0,  ///< No PU caches the line.
  SharedBoth,    ///< Both PUs cache it clean.
  ExclusiveCpu,  ///< CPU holds it (possibly dirty).
  ExclusiveGpu,  ///< GPU holds it (possibly dirty).
};

/// Statistics of directory activity.
struct DirectoryStats {
  uint64_t Lookups = 0;
  uint64_t RemoteInvalidations = 0;
  uint64_t RemoteFetches = 0;
  uint64_t Messages = 0;
};

/// Sparse MESI directory covering the coherent portion of the address
/// space.
class Directory {
public:
  /// Handles a demand access from \p Requestor to \p LineAddress. \p Dirty
  /// means the requestor will hold the line modified (a write).
  CoherenceAction onAccess(PuKind Requestor, Addr LineAddress, bool IsWrite);

  /// Notes that \p Pu evicted \p LineAddress from its private hierarchy.
  void onEviction(PuKind Pu, Addr LineAddress);

  /// Returns the directory state of \p LineAddress.
  DirState state(Addr LineAddress) const;

  /// Returns true if \p Pu is a sharer of \p LineAddress.
  bool isSharer(PuKind Pu, Addr LineAddress) const;

  const DirectoryStats &stats() const { return Stats; }

  /// Number of tracked (non-Uncached) lines.
  size_t trackedLines() const { return Entries.size(); }

  void clear();

  /// Snapshot for the memory-phase fold verifier (DESIGN.md §11): every
  /// tracked line's state, sorted by address for order-free comparison,
  /// plus counters.
  struct FoldSnap {
    struct EntrySnap {
      Addr Line = 0;
      DirState State = DirState::Uncached;
      bool Dirty = false;

      bool operator==(const EntrySnap &O) const {
        return Line == O.Line && State == O.State && Dirty == O.Dirty;
      }
    };
    std::vector<EntrySnap> Entries;
    DirectoryStats Stats;
  };

  FoldSnap foldSnapshot() const {
    FoldSnap S;
    S.Entries.reserve(Entries.size());
    const_cast<FlatU64Map<Entry> &>(Entries).forEach(
        [&](uint64_t Line, Entry &E) {
          S.Entries.push_back({Line, E.State, E.Dirty});
        });
    std::sort(S.Entries.begin(), S.Entries.end(),
              [](const FoldSnap::EntrySnap &A, const FoldSnap::EntrySnap &B) {
                return A.Line < B.Line;
              });
    S.Stats = Stats;
    return S;
  }

  /// Advances counters by Rem times their per-window delta. Entry state
  /// must be identical across the verified windows, so only stats move.
  void applyFoldStats(const DirectoryStats &S2, const DirectoryStats &S3,
                      uint64_t Rem) {
    Stats.Lookups += (S3.Lookups - S2.Lookups) * Rem;
    Stats.RemoteInvalidations +=
        (S3.RemoteInvalidations - S2.RemoteInvalidations) * Rem;
    Stats.RemoteFetches += (S3.RemoteFetches - S2.RemoteFetches) * Rem;
    Stats.Messages += (S3.Messages - S2.Messages) * Rem;
  }

private:
  struct Entry {
    DirState State = DirState::Uncached;
    bool Dirty = false;
  };

  FlatU64Map<Entry> Entries; // line address -> state, open-addressed.
  DirectoryStats Stats;
};

} // namespace hetsim

#endif // HETSIM_CACHE_DIRECTORY_H
