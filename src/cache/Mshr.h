//===- cache/Mshr.h - Miss-status holding registers -------------*- C++ -*-===//
///
/// \file
/// MSHRs track outstanding line fills so that concurrent misses to the same
/// line merge onto one fill, and so a full MSHR file back-pressures the
/// core. The latency-walk timing model uses completion cycles rather than
/// events: an entry is live while its completion cycle is in the future.
///
//===----------------------------------------------------------------------===//

#ifndef HETSIM_CACHE_MSHR_H
#define HETSIM_CACHE_MSHR_H

#include "common/Types.h"

#include <utility>
#include <vector>

namespace hetsim {

/// Outcome of checking the MSHR file before issuing a miss.
struct MshrDecision {
  /// True if the miss merged onto an in-flight fill of the same line.
  bool Merged = false;
  /// Cycle at which the (merged or newly allocated) fill completes.
  Cycle ReadyCycle = 0;
  /// Extra cycles the requester stalled because the file was full.
  Cycle StallCycles = 0;
};

/// A bounded file of in-flight line fills.
class MshrFile {
public:
  explicit MshrFile(unsigned NumEntries) : Capacity(NumEntries) {}

  /// Records a miss on \p LineAddress observed at \p Now that would
  /// complete at \p FillDone if it issues immediately. Handles merging and
  /// full-file stalls; returns the final decision. \p MinReady floors the
  /// merged ReadyCycle: a merging access may have already accrued latency
  /// of its own (TLB miss, page fault) that an earlier, cheaper fill must
  /// not erase.
  MshrDecision onMiss(Addr LineAddress, Cycle Now, Cycle FillDone,
                      Cycle MinReady = 0);

  /// Number of entries still in flight at \p Now (lazily pruned).
  unsigned inFlight(Cycle Now);

  unsigned capacity() const { return Capacity; }

  uint64_t mergedCount() const { return Merged; }
  uint64_t fullStallCount() const { return FullStalls; }

  void clear();

  /// Full-state snapshot for the memory-phase fold verifier (DESIGN.md
  /// §11): the exact in-flight entry sequence plus merge/stall counters.
  struct FoldSnap {
    std::vector<std::pair<Addr, Cycle>> Entries;
    uint64_t Merged = 0;
    uint64_t FullStalls = 0;
  };

  FoldSnap foldSnapshot() const { return {Entries, Merged, FullStalls}; }

  /// Advances each in-flight entry's completion cycle and the counters
  /// by Rem times their per-window delta (\p S3 minus \p S2).
  void applyFold(const FoldSnap &S2, const FoldSnap &S3, uint64_t Rem) {
    for (size_t I = 0; I != Entries.size(); ++I)
      Entries[I].second +=
          (S3.Entries[I].second - S2.Entries[I].second) * Rem;
    Merged += (S3.Merged - S2.Merged) * Rem;
    FullStalls += (S3.FullStalls - S2.FullStalls) * Rem;
  }

private:
  void prune(Cycle Now);

  unsigned Capacity;
  /// line -> completion cycle. The file holds at most Capacity (16/32)
  /// entries, so flat storage with linear probes and swap-remove pruning
  /// stays in one or two cache lines; every decision (exact find, min,
  /// prune) is order-independent.
  std::vector<std::pair<Addr, Cycle>> Entries;
  uint64_t Merged = 0;
  uint64_t FullStalls = 0;
};

} // namespace hetsim

#endif // HETSIM_CACHE_MSHR_H
